// Commuters example: the Geolife-like scenario. Individuals with homes,
// workplaces and leisure venues are the hardest case for mobility
// privacy — their POIs identify them. The example compares the paper's
// pipeline against the geo-indistinguishability baseline under both the
// POI-retrieval attack and a background-knowledge re-identification
// attack.
//
// Run with: go run ./examples/commuters
package main

import (
	"fmt"
	"log"
	"time"

	"mobipriv"
	"mobipriv/internal/attack/poiattack"
	"mobipriv/internal/attack/reident"
	"mobipriv/internal/baseline/geoind"
	"mobipriv/internal/poi"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

func main() {
	log.SetFlags(0)

	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 20
	cfg.Sampling = time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population: %v, %d ground-truth stays\n\n", g.Dataset, len(g.Stays))

	// The attacker's background knowledge: every user's true POI
	// locations (e.g. harvested from social media).
	known := poiattack.TruePOIs(g.Stays, 250)

	// Candidate publications.
	publications := map[string]*trace.Dataset{
		"raw-pseudonymized": g.Dataset,
	}
	pipe, err := mobipriv.New(mobipriv.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Anonymize(g.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	publications["pipeline"] = res.Dataset
	gi, err := geoind.PerturbDataset(g.Dataset, geoind.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	publications["geo-i(eps=0.01)"] = gi

	fmt.Println("attack results (lower is better for the publisher):")
	for _, name := range []string{"raw-pseudonymized", "geo-i(eps=0.01)", "pipeline"} {
		ds := publications[name]
		atk, err := poiattack.Evaluate(ds, g.Stays, poiattack.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		// For raw and geo-i the identity mapping is trivial; for the
		// pipeline the majority owner is the right ground truth.
		truth := func(u string) string { return u }
		if name == "pipeline" {
			truth = res.MajorityOwner
		}
		link, err := reident.LinkByPOI(ds, known, truth, poi.DefaultConfig(), 250)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s POI F1 %.3f | re-identified %d/%d users (%.0f%%)\n",
			name, atk.Global.F1, link.Correct, link.Total, 100*link.Rate)
	}

	// Where did the zones come from? Natural meetings at shared venues.
	fmt.Printf("\npipeline internals: %d natural mix-zones, %d swapped, %d points suppressed\n",
		res.Zones, res.Swaps, res.SuppressedPoints)
	if len(g.Venues) > 0 {
		fmt.Printf("the city has %d shared venues; e.g. %s is a natural meeting place\n",
			len(g.Venues), g.Venues[0])
	}
}

// Commuters example: the Geolife-like scenario. Individuals with homes,
// workplaces and leisure venues are the hardest case for mobility
// privacy — their POIs identify them. The example compares the paper's
// pipeline against the geo-indistinguishability baseline under both the
// POI-retrieval attack and a background-knowledge re-identification
// attack.
//
// Run with: go run ./examples/commuters
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mobipriv"
	"mobipriv/internal/attack/poiattack"
	"mobipriv/internal/attack/reident"
	"mobipriv/internal/poi"
	"mobipriv/internal/synth"
)

func main() {
	log.SetFlags(0)

	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 20
	cfg.Sampling = time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population: %v, %d ground-truth stays\n\n", g.Dataset, len(g.Stays))

	// The attacker's background knowledge: every user's true POI
	// locations (e.g. harvested from social media).
	known := poiattack.TruePOIs(g.Stays, 250)

	// Candidate publications, resolved from the mechanism registry —
	// the same lineup specs the experiments and CLIs use.
	ctx := context.Background()
	results := make(map[string]*mobipriv.Result)
	for _, spec := range []string{"raw", "geoi(0.01)", "pipeline"} {
		mech, err := mobipriv.FromSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mech.Apply(ctx, g.Dataset)
		if err != nil {
			log.Fatal(err)
		}
		results[spec] = res
	}

	fmt.Println("attack results (lower is better for the publisher):")
	for _, spec := range []string{"raw", "geoi(0.01)", "pipeline"} {
		res := results[spec]
		atk, err := poiattack.Evaluate(res.Dataset, g.Stays, poiattack.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		// For raw and geo-i the identity mapping is trivial; for the
		// pipeline the majority owner is the right ground truth — both
		// are exactly what Result.MajorityOwner reports.
		link, err := reident.LinkByPOI(res.Dataset, known, res.MajorityOwner, poi.DefaultConfig(), 250)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s POI F1 %.3f | re-identified %d/%d users (%.0f%%)\n",
			spec, atk.Global.F1, link.Correct, link.Total, 100*link.Rate)
	}

	// Where did the zones come from? Natural meetings at shared venues.
	pipe := results["pipeline"]
	fmt.Printf("\npipeline internals: %d natural mix-zones, %d swapped, %d points suppressed\n",
		pipe.Zones(), pipe.Swaps(), pipe.SuppressedPoints())
	if len(g.Venues) > 0 {
		fmt.Printf("the city has %d shared venues; e.g. %s is a natural meeting place\n",
			len(g.Venues), g.Venues[0])
	}
}

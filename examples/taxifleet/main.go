// Taxi fleet example: the Cabspotting-like scenario from the paper's
// motivation. A fleet operator wants to publish vehicle traces for
// traffic research without revealing where drivers wait (taxi stands,
// depots). The example generates a synthetic fleet, anonymizes it, and
// evaluates both privacy (POI-retrieval attack) and utility (coverage,
// trip lengths, range queries).
//
// Run with: go run ./examples/taxifleet
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"mobipriv"
	"mobipriv/internal/attack/poiattack"
	"mobipriv/internal/metrics"
	"mobipriv/internal/stats"
	"mobipriv/internal/synth"
)

func main() {
	log.SetFlags(0)

	cfg := synth.DefaultTaxiConfig()
	cfg.Vehicles = 20
	cfg.TripsEach = 6
	g, err := synth.TaxiFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %v, %d ground-truth stand waits\n", g.Dataset, len(g.Stays))

	// Resolve the paper's pipeline from the mechanism registry and fan
	// the per-trace work across all CPUs; the published dataset is
	// byte-identical to a serial run.
	mech, err := mobipriv.FromSpec("pipeline")
	if err != nil {
		log.Fatal(err)
	}
	runner := mobipriv.NewRunner(mobipriv.WithWorkers(runtime.NumCPU()))
	res, err := runner.Run(context.Background(), mech, g.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published: %v (%d zones, %d swaps, %d points suppressed)\n\n",
		res.Dataset, res.Zones(), res.Swaps(), res.SuppressedPoints())

	// Privacy: can the adversary still find the stands?
	before, err := poiattack.Evaluate(g.Dataset, g.Stays, poiattack.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	after, err := poiattack.Evaluate(res.Dataset, g.Stays, poiattack.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("POI-retrieval attack (global location disclosure):")
	fmt.Printf("  raw:       %s\n", before.Global)
	fmt.Printf("  published: %s\n", after.Global)

	// Utility: does the published fleet still describe the city?
	cov, err := metrics.Coverage(g.Dataset, res.Dataset, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nutility @500 m cells:\n  coverage F1 %.3f (%d original cells, %d published)\n",
		cov.F1, cov.OrigCells, cov.AnonCells)
	lens, err := metrics.TripLengths(g.Dataset, res.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  trace length mean: %.1f km -> %.1f km\n", lens.OrigMean/1000, lens.AnonMean/1000)
	rq, err := metrics.RangeQueryError(g.Dataset, res.Dataset, 200, 500, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  range-query density error: mean %.3f, p95 %.3f\n",
		stats.Mean(rq), stats.Quantile(rq, 0.95))

	fmt.Printf("\n(total runtime excludes generation; anonymization handled %d points)\n",
		g.Dataset.TotalPoints())
}

// Mix-zones example: reproduces the paper's Figure 1 and writes the
// three stages as GeoJSON files for visual inspection in any GIS viewer
// (e.g. geojson.io): the original traces with their POI clusters, the
// constant-speed version, and the swapped version.
//
// Run with: go run ./examples/mixzones [-outdir /tmp]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mobipriv"
	"mobipriv/internal/geo"
	"mobipriv/internal/mixzone"
	"mobipriv/internal/poi"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

func main() {
	log.SetFlags(0)
	outdir := flag.String("outdir", ".", "directory for the GeoJSON stage files")
	flag.Parse()

	t0 := time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	center := geo.Point{Lat: 45.7640, Lng: 4.8357}

	// Figure 1's setting: two users, each with two points of interest,
	// paths crossing once in the middle.
	userA := figureTrace("userA", center, t0, 270)
	userB := figureTrace("userB", center, t0, 0)
	original := trace.MustNewDataset([]*trace.Trace{userA, userB})

	report := func(stage string, d *trace.Dataset) {
		total := 0
		for _, tr := range d.Traces() {
			pois, err := poi.Extract(tr, poi.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			total += len(pois)
		}
		fmt.Printf("%-22s %5d points, %d POIs visible to the attacker\n",
			stage, d.TotalPoints(), total)
	}

	report("(a) original", original)

	// Stage (c in operational order): swap at the natural crossing.
	mz, err := mixzone.Apply(original, swapConfig())
	if err != nil {
		log.Fatal(err)
	}
	report("(b) after swapping", mz.Dataset)
	fmt.Printf("    zones: %d, swapped: %v, suppressed points: %d\n",
		len(mz.Zones), mz.SwapCount() > 0, mz.Suppressed)
	for _, z := range mz.Zones {
		fmt.Printf("    zone at %s around %s with %v\n",
			z.Center, z.Time.Format("15:04:05"), z.Participants)
	}

	// Stage: enforce constant speed on the swapped composites. The
	// published stage is produced by the public pipeline API — the same
	// two stages, composed, without pseudonymization so the figure's
	// labels stay readable.
	swap := mobipriv.DefaultMixZoneSwap()
	swap.Seed = 2 // matches swapConfig: a permutation that swaps
	res, err := mobipriv.Pipeline(swap, mobipriv.DefaultSpeedSmooth()).
		Apply(context.Background(), original)
	if err != nil {
		log.Fatal(err)
	}
	smoothed := res.Dataset
	report("(c) constant speed", smoothed)

	// Write all three stages for visual comparison.
	for name, d := range map[string]*trace.Dataset{
		"stage_a_original.geojson":  original,
		"stage_b_swapped.geojson":   mz.Dataset,
		"stage_c_published.geojson": smoothed,
	} {
		path := filepath.Join(*outdir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := traceio.WriteGeoJSON(f, d); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

func swapConfig() mixzone.Config {
	cfg := mixzone.DefaultConfig()
	// Pick a seed whose permutation swaps, as in the figure.
	cfg.SwapSeed = 2
	return cfg
}

// figureTrace builds one of Figure 1's traces: stop, travel through the
// center, stop.
func figureTrace(user string, center geo.Point, t0 time.Time, brg float64) *trace.Trace {
	start := geo.Destination(center, brg, 1000)
	end := geo.Destination(center, brg+180, 1000)
	var pts []trace.Point
	now := t0
	for i := 0; i < 30; i++ { // 15-minute stop (a POI)
		pts = append(pts, trace.Point{Point: geo.Offset(start, float64(i%2)*2, 0), Time: now})
		now = now.Add(30 * time.Second)
	}
	for d := 100.0; d < 2000; d += 100 { // cross the center at 10 m/s
		pts = append(pts, trace.Point{Point: geo.Interpolate(start, end, d/2000), Time: now})
		now = now.Add(10 * time.Second)
	}
	for i := 0; i < 30; i++ { // 15-minute stop (a POI)
		pts = append(pts, trace.Point{Point: geo.Offset(end, float64(i%2)*2, 0), Time: now})
		now = now.Add(30 * time.Second)
	}
	return trace.MustNew(user, pts)
}

// Quickstart: build a small dataset with the public API, compose the
// paper's pipeline from its stages, anonymize, and inspect what
// changed.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mobipriv"
	"mobipriv/internal/geo"
)

func main() {
	log.SetFlags(0)

	// Two users with obvious points of interest: both stop for a while,
	// travel, and stop again; their paths cross mid-journey.
	t0 := time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	center := geo.Point{Lat: 45.7640, Lng: 4.8357}

	alice, err := mobipriv.NewTrace("alice", journey(center, t0, 270))
	if err != nil {
		log.Fatal(err)
	}
	bob, err := mobipriv.NewTrace("bob", journey(center, t0, 0))
	if err != nil {
		log.Fatal(err)
	}
	dataset, err := mobipriv.NewDataset([]*mobipriv.Trace{alice, bob})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %v\n", dataset)

	// Compose the paper's pipeline from its stages at the default
	// operating point: 100 m mix-zones, 100 m spacing, pseudonyms.
	// (Seed 2 draws a swapping permutation at the crossing, which makes
	// the demo output more interesting.)
	swap := mobipriv.DefaultMixZoneSwap()
	swap.Seed = 2
	mech := mobipriv.Pipeline(
		swap,
		mobipriv.DefaultSpeedSmooth(),
		mobipriv.Pseudonymize{Prefix: "p", Seed: 2},
	)
	res, err := mech.Apply(context.Background(), dataset)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("published: %v\n", res.Dataset)
	for _, rep := range res.Reports {
		fmt.Printf("  stage %-13s zones=%d swaps=%d suppressed=%d dropped=%d\n",
			rep.Stage, rep.Zones, rep.Swaps, rep.Suppressed, len(rep.Dropped))
	}
	fmt.Printf("mix-zones exploited: %d (of which %d swapped identities)\n", res.Zones(), res.Swaps())
	fmt.Printf("observations suppressed inside zones: %d\n", res.SuppressedPoints())
	for _, tr := range res.Dataset.Traces() {
		fmt.Printf("  %s: %d points over %s, %.0f m, constant speed %.2f m/s\n",
			tr.User, tr.Len(), tr.Duration().Round(time.Second), tr.Length(), tr.AverageSpeed())
	}

	// The evaluation-only ground truth: who is really behind each
	// pseudonym at the end of the day? (A real publisher keeps this
	// secret — it is here to show what the swapping did.)
	for _, tr := range res.Dataset.Traces() {
		owner := res.MajorityOwner(tr.User)
		fmt.Printf("  %s mostly carries %s's journey\n", tr.User, owner)
	}
}

// journey builds a stop–travel–stop trace heading through the center
// from the given bearing.
func journey(center geo.Point, t0 time.Time, brg float64) []mobipriv.Point {
	start := geo.Destination(center, brg, 1500)
	end := geo.Destination(center, brg+180, 1500)
	var pts []mobipriv.Point
	now := t0
	at := func(p geo.Point) {
		pts = append(pts, mobipriv.Point{Point: p, Time: now})
	}
	for i := 0; i < 20; i++ { // 10-minute stop
		at(geo.Offset(start, float64(i%2)*2, 0))
		now = now.Add(30 * time.Second)
	}
	for d := 100.0; d < 3000; d += 100 { // drive through the center
		at(geo.Interpolate(start, end, d/3000))
		now = now.Add(10 * time.Second)
	}
	for i := 0; i < 20; i++ { // 10-minute stop
		at(geo.Offset(end, float64(i%2)*2, 0))
		now = now.Add(30 * time.Second)
	}
	return pts
}

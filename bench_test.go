// Repository-level benchmarks: one per experiment (E1..E12, the tables
// and figure-series of the evaluation — see DESIGN.md §4) plus
// throughput benchmarks for the pipeline and each baseline. Regenerate
// everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks run at Quick scale so the whole suite stays
// in CI territory; the recorded full-scale tables live in EXPERIMENTS.md
// and are regenerated with cmd/mobibench.
package mobipriv_test

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"mobipriv"
	"mobipriv/internal/baseline/geoind"
	"mobipriv/internal/baseline/w4m"
	"mobipriv/internal/core"
	"mobipriv/internal/experiment"
	"mobipriv/internal/mixzone"
	"mobipriv/internal/obs"
	otrace "mobipriv/internal/obs/trace"
	"mobipriv/internal/stream"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := e.Run(experiment.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if err := table.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_Figure1(b *testing.B)          { benchExperiment(b, "E1") }
func BenchmarkE2_POIRetrieval(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3_GeoIRecall(b *testing.B)       { benchExperiment(b, "E3") }
func BenchmarkE4_Distortion(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5_Coverage(b *testing.B)         { benchExperiment(b, "E5") }
func BenchmarkE6_EpsilonSweep(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7_Reidentification(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE8_W4MSweep(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE9_ZoneSupply(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10_Throughput(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11_QuerySuite(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12_Ablations(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13_SemanticAttack(b *testing.B)  { benchExperiment(b, "E13") }
func BenchmarkE14_MMCAttack(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15_ZoneComposition(b *testing.B) { benchExperiment(b, "E15") }

// benchDataset builds a fixed commuter dataset for the throughput
// benchmarks.
func benchDataset(b *testing.B) *trace.Dataset {
	b.Helper()
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 10
	cfg.Sampling = time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return g.Dataset
}

// BenchmarkPipeline measures the full anonymization pipeline and
// reports throughput in input points per second.
func BenchmarkPipeline(b *testing.B) {
	d := benchDataset(b)
	a, err := mobipriv.New(mobipriv.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	points := float64(d.TotalPoints())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Anonymize(d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkSpeedSmoothing measures step 1 alone.
func BenchmarkSpeedSmoothing(b *testing.B) {
	d := benchDataset(b)
	cfg := core.DefaultConfig()
	points := float64(d.TotalPoints())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SmoothDataset(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkSmoothParallel sweeps the Runner's worker count over the
// speed-smoothing mechanism, so the speedup of the parallel runtime is
// visible in the bench trajectory. The output is byte-identical across
// worker counts (asserted by TestParallelSmoothingDeterministic); only
// the wall clock moves.
func BenchmarkSmoothParallel(b *testing.B) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 48
	cfg.Sampling = 30 * time.Second
	g, err := synth.Commuters(cfg)
	if err != nil {
		b.Fatal(err)
	}
	d := g.Dataset
	mech, err := mobipriv.FromSpec("promesse")
	if err != nil {
		b.Fatal(err)
	}
	points := float64(d.TotalPoints())
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runner := mobipriv.NewRunner(mobipriv.WithWorkers(workers))
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(ctx, mech, d); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkGeoIParallel sweeps the worker count over the planar
// Laplace baseline, the other embarrassingly parallel transform.
func BenchmarkGeoIParallel(b *testing.B) {
	d := benchDataset(b)
	mech, err := mobipriv.FromSpec("geoi(0.01)")
	if err != nil {
		b.Fatal(err)
	}
	points := float64(d.TotalPoints())
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runner := mobipriv.NewRunner(mobipriv.WithWorkers(workers))
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(ctx, mech, d); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// workerSweep returns the deduplicated worker counts 1, 4, NumCPU.
func workerSweep() []int {
	counts := []int{1, 4, runtime.NumCPU()}
	var out []int
	seen := make(map[int]bool)
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// streamBenchUpdates flattens the bench dataset into the time-ordered
// update stream a live ingestion path would see.
func streamBenchUpdates(b *testing.B, users int) []stream.Update {
	b.Helper()
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = users
	cfg.Sampling = 30 * time.Second
	g, err := synth.Commuters(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var out []stream.Update
	for _, tr := range g.Dataset.Traces() {
		for _, p := range tr.Points {
			out = append(out, stream.Update{User: tr.User, Point: p})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// benchStreamEngine replays the update stream through an engine running
// the given factory, reporting sustained points/sec (the serving-path
// throughput metric mobiserve's acceptance bar is measured against).
// When tracer is non-nil each pushed batch goes through the traced
// entry point the way mobiserve drives it: a root span per request
// (nil when the trace is not sampled — the common case this measures).
func benchStreamEngine(b *testing.B, shards int, instrument bool, tracer *otrace.Tracer, factory stream.Factory) {
	updates := streamBenchUpdates(b, 32)
	var consumed atomic.Uint64
	eng, err := stream.NewEngine(stream.Config{
		Shards: shards,
		Sink:   func(batch []stream.Update) { consumed.Add(uint64(len(batch))) },
	}, factory)
	if err != nil {
		b.Fatal(err)
	}
	if instrument {
		eng.RegisterMetrics(obs.NewRegistry())
	}
	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()
	ctx := context.Background()
	const batch = 256
	b.ReportAllocs()
	b.ResetTimer()
	req := uint64(0)
	for i := 0; i < b.N; i++ {
		for j := 0; j < len(updates); j += batch {
			end := j + batch
			if end > len(updates) {
				end = len(updates)
			}
			if tracer != nil {
				req++
				sp := tracer.Root("bench.push", tracer.DeriveID(req), 0)
				if err := eng.PushTraced(ctx, sp, updates[j:end]...); err != nil {
					b.Fatal(err)
				}
				sp.End()
			} else if err := eng.Push(ctx, updates[j:end]...); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Flush(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(updates))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	if consumed.Load() == 0 {
		b.Fatal("engine produced no output")
	}
}

// BenchmarkStreamEngine sweeps the shard count over the streaming
// engine running the windowed Promesse smoother — the online serving
// analogue of BenchmarkSmoothParallel.
func BenchmarkStreamEngine(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchStreamEngine(b, shards, false, nil, func(user string) stream.Mechanism {
				return stream.Promesse{Epsilon: 100, Window: 500}.New(user)
			})
		})
	}
}

// BenchmarkStreamEngineObs is BenchmarkStreamEngine with the metrics
// registry attached — the delta between the two is the full cost of
// instrumentation on the hot path (push latency histogram, queue
// high-water tracking). The acceptance bar is ≤5% points/s regression.
func BenchmarkStreamEngineObs(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchStreamEngine(b, shards, true, nil, func(user string) stream.Mechanism {
				return stream.Promesse{Epsilon: 100, Window: 500}.New(user)
			})
		})
	}
}

// BenchmarkStreamEngineTrace is BenchmarkStreamEngine with the metrics
// registry attached AND a tracer at sample rate 0 driving every push
// through the traced entry point — the exact configuration a
// production mobiserve runs in when no trace is sampled. The delta
// against BenchmarkStreamEngine is the full unsampled tracing
// overhead; the acceptance bar is ≤5% points/s regression.
func BenchmarkStreamEngineTrace(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tracer := otrace.New(otrace.Config{SampleRate: 0, Seed: 1})
			benchStreamEngine(b, shards, true, tracer, func(user string) stream.Mechanism {
				return stream.Promesse{Epsilon: 100, Window: 500}.New(user)
			})
		})
	}
}

// BenchmarkStreamEngineGeoI measures engine throughput with the
// per-point geoi mechanism (the cheapest adapter, so this is closest to
// the engine's raw points/sec ceiling).
func BenchmarkStreamEngineGeoI(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchStreamEngine(b, shards, false, nil, func(user string) stream.Mechanism {
				return stream.GeoI{Epsilon: 0.01, Seed: 1}.New(user)
			})
		})
	}
}

// BenchmarkMixZones measures step 2 alone (detection + swap).
func BenchmarkMixZones(b *testing.B) {
	d := benchDataset(b)
	cfg := mixzone.DefaultConfig()
	points := float64(d.TotalPoints())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mixzone.Apply(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkZoneDetection isolates the crossing detector.
func BenchmarkZoneDetection(b *testing.B) {
	d := benchDataset(b)
	cfg := mixzone.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mixzone.DetectZones(d, cfg)
	}
}

// BenchmarkGeoI measures the planar Laplace baseline.
func BenchmarkGeoI(b *testing.B) {
	d := benchDataset(b)
	points := float64(d.TotalPoints())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := geoind.PerturbDataset(d, geoind.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkW4M measures the (k,delta)-anonymity baseline.
func BenchmarkW4M(b *testing.B) {
	d := benchDataset(b)
	points := float64(d.TotalPoints())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w4m.Anonymize(d, w4m.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

package mobipriv

import (
	"context"
	"errors"
	"sync/atomic"

	"mobipriv/internal/obs"
	otrace "mobipriv/internal/obs/trace"
	"mobipriv/internal/par"
)

// Runner executes mechanisms with a configurable degree of per-trace
// parallelism. Parallelism is a property of the runtime, not of any
// mechanism: the Runner stores its worker budget in the context, and
// stages with embarrassingly parallel work (speed smoothing,
// geo-indistinguishability perturbation) fan out across the pool while
// producing output byte-identical to a serial run.
//
// Run applies a mechanism to an in-memory dataset; RunStore applies a
// per-trace-capable mechanism (AsPerTrace) end-to-end over on-disk
// .mstore stores with memory independent of the dataset size.
//
// The zero Runner is not valid; use NewRunner.
type Runner struct {
	workers int

	// Lifetime totals across every Run/RunStore on this Runner,
	// surfaced by RegisterMetrics for long-lived services.
	nTraces      atomic.Int64
	nPoints      atomic.Int64
	inFlightHigh atomic.Int64

	// tracer, when set, samples per-trace run.trace spans in RunStore.
	tracer atomic.Pointer[otrace.Tracer]
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithWorkers sets the worker-pool size for per-trace work. n <= 0
// means "one worker per CPU".
func WithWorkers(n int) RunnerOption {
	return func(r *Runner) { r.workers = n }
}

// NewRunner returns a Runner; without options it runs serially
// (one worker), matching a plain Mechanism.Apply call.
func NewRunner(opts ...RunnerOption) *Runner {
	r := &Runner{workers: 1}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Workers reports the configured pool size (0 meaning per-CPU).
func (r *Runner) Workers() int { return r.workers }

// SetTracer attaches a tracer to the Runner: RunStore then emits one
// sampled run.trace root span per processed trace, with the span's
// trace ID derived from the user name so the same users are sampled on
// every replay of the same dataset. Pass nil to detach. Safe to call
// concurrently with runs.
func (r *Runner) SetTracer(t *otrace.Tracer) { r.tracer.Store(t) }

// Run applies the mechanism with this Runner's worker budget attached
// to the context. Cancelling ctx aborts the work.
func (r *Runner) Run(ctx context.Context, m Mechanism, d *Dataset) (*Result, error) {
	if m == nil {
		return nil, errors.New("mobipriv: nil mechanism")
	}
	res, err := m.Apply(par.WithWorkers(ctx, r.workers), d)
	if err == nil {
		r.nTraces.Add(int64(d.Len()))
		r.nPoints.Add(int64(d.TotalPoints()))
	}
	return res, err
}

// RegisterMetrics publishes the Runner's lifetime counters on reg
// under stable runner_* names: traces and points accepted across every
// Run and RunStore, and the in-flight high-water mark of the
// store-native pipeline. Safe to call at any time.
func (r *Runner) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("runner_traces_total",
		"Input traces processed across every Run and RunStore.",
		func() float64 { return float64(r.nTraces.Load()) })
	reg.CounterFunc("runner_points_total",
		"Input points processed across every Run and RunStore.",
		func() float64 { return float64(r.nPoints.Load()) })
	reg.GaugeFunc("runner_in_flight_high_water",
		"Most traces alive in the store-native worker pipeline at once.",
		func() float64 { return float64(r.inFlightHigh.Load()) })
}

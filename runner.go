package mobipriv

import (
	"context"
	"errors"

	"mobipriv/internal/par"
)

// Runner executes mechanisms with a configurable degree of per-trace
// parallelism. Parallelism is a property of the runtime, not of any
// mechanism: the Runner stores its worker budget in the context, and
// stages with embarrassingly parallel work (speed smoothing,
// geo-indistinguishability perturbation) fan out across the pool while
// producing output byte-identical to a serial run.
//
// Run applies a mechanism to an in-memory dataset; RunStore applies a
// per-trace-capable mechanism (AsPerTrace) end-to-end over on-disk
// .mstore stores with memory independent of the dataset size.
//
// The zero Runner is not valid; use NewRunner.
type Runner struct {
	workers int
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithWorkers sets the worker-pool size for per-trace work. n <= 0
// means "one worker per CPU".
func WithWorkers(n int) RunnerOption {
	return func(r *Runner) { r.workers = n }
}

// NewRunner returns a Runner; without options it runs serially
// (one worker), matching a plain Mechanism.Apply call.
func NewRunner(opts ...RunnerOption) *Runner {
	r := &Runner{workers: 1}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Workers reports the configured pool size (0 meaning per-CPU).
func (r *Runner) Workers() int { return r.workers }

// Run applies the mechanism with this Runner's worker budget attached
// to the context. Cancelling ctx aborts the work.
func (r *Runner) Run(ctx context.Context, m Mechanism, d *Dataset) (*Result, error) {
	if m == nil {
		return nil, errors.New("mobipriv: nil mechanism")
	}
	return m.Apply(par.WithWorkers(ctx, r.workers), d)
}

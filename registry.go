package mobipriv

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrUnknownMechanism reports a spec whose mechanism name has not been
// registered.
var ErrUnknownMechanism = errors.New("mobipriv: unknown mechanism")

// Factory builds a mechanism from parsed spec parameters. A factory
// reads its parameters with the typed Params accessors and constructs
// the mechanism; FromSpec surfaces conversion errors and leftover
// (unknown) parameters after the factory returns, so factories do not
// need to check Params.Err themselves.
type Factory func(p *Params) (Mechanism, error)

var registry = struct {
	sync.RWMutex
	factories map[string]Factory
}{factories: make(map[string]Factory)}

// Register adds a mechanism factory under the given name, making it
// resolvable by FromSpec everywhere (CLIs, experiments, benchmarks).
// It panics if the name is empty, malformed, or already taken —
// registration conflicts are programmer errors.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("mobipriv: Register with empty name or nil factory")
	}
	if !validSpecName(name) {
		panic(fmt.Sprintf("mobipriv: Register %q: name must be letters, digits, '-' or '_'", name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		panic(fmt.Sprintf("mobipriv: Register %q: already registered", name))
	}
	registry.factories[name] = f
}

// Mechanisms returns the sorted names of all registered mechanisms.
func Mechanisms() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FromSpec resolves a mechanism spec of the form
//
//	name
//	name(value, ...)
//	name(key=value, ...)
//
// against the registry — e.g. "raw", "pipeline", "promesse(epsilon=200)",
// "geoi(0.01)", "w4m(k=4,delta=200)". Positional values are consumed in
// the parameter order documented by each mechanism. The returned
// mechanism's Name is the normalized spec and round-trips through
// FromSpec.
func FromSpec(spec string) (Mechanism, error) {
	name, p, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	registry.RLock()
	f, ok := registry.factories[name]
	registry.RUnlock()
	if !ok {
		if near := closestName(name, Mechanisms()); near != "" {
			return nil, fmt.Errorf("%w %q (did you mean %q? available: %s)",
				ErrUnknownMechanism, name, near, strings.Join(Mechanisms(), ", "))
		}
		return nil, fmt.Errorf("%w %q (available: %s)",
			ErrUnknownMechanism, name, strings.Join(Mechanisms(), ", "))
	}
	m, err := f(p)
	if err != nil {
		return nil, fmt.Errorf("mobipriv: spec %q: %w", spec, err)
	}
	if err := p.finish(); err != nil {
		return nil, fmt.Errorf("mobipriv: spec %q: %w", spec, err)
	}
	return named{name: p.normalized(name), Mechanism: m}, nil
}

// MustFromSpec is FromSpec that panics on error; for lineups and tests
// whose specs are compile-time constants.
func MustFromSpec(spec string) Mechanism {
	m, err := FromSpec(spec)
	if err != nil {
		panic(err)
	}
	return m
}

// SplitSpecs splits a comma-separated list of mechanism specs at
// top-level commas only, so parameterized specs survive:
// "raw,w4m(k=4,delta=200)" yields ["raw", "w4m(k=4,delta=200)"].
// Empty elements are skipped.
func SplitSpecs(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				if el := strings.TrimSpace(s[start:i]); el != "" {
					out = append(out, el)
				}
				start = i + 1
			}
		}
	}
	if el := strings.TrimSpace(s[start:]); el != "" {
		out = append(out, el)
	}
	return out
}

// closestName returns the candidate within Levenshtein distance 2 of
// name (ties broken by registry order, which is sorted), or "" if none
// is close enough — the "did you mean" half of unknown-spec errors.
func closestName(name string, candidates []string) string {
	best, bestDist := "", 3
	for _, c := range candidates {
		if d := editDistance(strings.ToLower(name), c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the classic two-row Levenshtein distance; spec names
// are short, so the quadratic cost is irrelevant.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func validSpecName(name string) bool {
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return name != ""
}

// parseSpec splits "name(arg, ...)" into the mechanism name and its
// parameters.
func parseSpec(spec string) (string, *Params, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return "", nil, errors.New("mobipriv: empty mechanism spec")
	}
	name := s
	var argList string
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return "", nil, fmt.Errorf("mobipriv: spec %q: missing closing parenthesis", spec)
		}
		name, argList = strings.TrimSpace(s[:i]), s[i+1:len(s)-1]
	}
	if !validSpecName(name) {
		return "", nil, fmt.Errorf("mobipriv: spec %q: invalid mechanism name %q", spec, name)
	}
	p := &Params{kv: make(map[string]string)}
	for _, arg := range strings.Split(argList, ",") {
		arg = strings.TrimSpace(arg)
		if arg == "" {
			continue
		}
		if eq := strings.IndexByte(arg, '='); eq >= 0 {
			key := strings.TrimSpace(arg[:eq])
			if key == "" {
				return "", nil, fmt.Errorf("mobipriv: spec %q: parameter %q has no key", spec, arg)
			}
			if _, dup := p.kv[key]; dup {
				return "", nil, fmt.Errorf("mobipriv: spec %q: duplicate parameter %q", spec, key)
			}
			val := strings.TrimSpace(arg[eq+1:])
			p.kv[key] = val
			p.args = append(p.args, key+"="+val)
		} else {
			if len(p.kv) > 0 {
				return "", nil, fmt.Errorf("mobipriv: spec %q: positional value %q after named parameters", spec, arg)
			}
			p.pos = append(p.pos, arg)
			p.args = append(p.args, arg)
		}
	}
	return name, p, nil
}

// Params carries the parsed arguments of a mechanism spec. Factories
// read values with the typed accessors; each accessor consumes the
// named parameter if present, otherwise the next positional value,
// otherwise the default. Conversion failures and leftover parameters
// are reported by FromSpec after the factory returns.
type Params struct {
	pos    []string
	posIdx int
	kv     map[string]string
	args   []string // original arguments, normalized, for Name round-tripping
	err    error
}

// take consumes the value for key: named first, then positional.
func (p *Params) take(key string) (string, bool) {
	if v, ok := p.kv[key]; ok {
		delete(p.kv, key)
		return v, true
	}
	if p.posIdx < len(p.pos) {
		v := p.pos[p.posIdx]
		p.posIdx++
		return v, true
	}
	return "", false
}

func (p *Params) fail(key, v, want string) {
	if p.err == nil {
		p.err = fmt.Errorf("parameter %s: cannot parse %q as %s", key, v, want)
	}
}

// Float reads a float64 parameter.
func (p *Params) Float(key string, def float64) float64 {
	v, ok := p.take(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.fail(key, v, "number")
		return def
	}
	return f
}

// Int reads an int parameter.
func (p *Params) Int(key string, def int) int {
	v, ok := p.take(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		p.fail(key, v, "integer")
		return def
	}
	return n
}

// Int64 reads an int64 parameter (seeds).
func (p *Params) Int64(key string, def int64) int64 {
	v, ok := p.take(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		p.fail(key, v, "integer")
		return def
	}
	return n
}

// Bool reads a boolean parameter ("true"/"false"/"1"/"0").
func (p *Params) Bool(key string, def bool) bool {
	v, ok := p.take(key)
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		p.fail(key, v, "boolean")
		return def
	}
	return b
}

// Duration reads a time.Duration parameter ("90s", "15m"); a bare
// number is taken as seconds.
func (p *Params) Duration(key string, def time.Duration) time.Duration {
	v, ok := p.take(key)
	if !ok {
		return def
	}
	if d, err := time.ParseDuration(v); err == nil {
		return d
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		return time.Duration(secs * float64(time.Second))
	}
	p.fail(key, v, "duration")
	return def
}

// String reads a string parameter verbatim.
func (p *Params) String(key string, def string) string {
	v, ok := p.take(key)
	if !ok {
		return def
	}
	return v
}

// Err returns the first conversion error, if a factory wants to check
// eagerly; FromSpec checks it in any case.
func (p *Params) Err() error { return p.err }

// finish reports the first conversion error or any parameter the
// factory never consumed.
func (p *Params) finish() error {
	if p.err != nil {
		return p.err
	}
	if len(p.kv) > 0 {
		keys := make([]string, 0, len(p.kv))
		for k := range p.kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return fmt.Errorf("unknown parameter(s): %s", strings.Join(keys, ", "))
	}
	if p.posIdx < len(p.pos) {
		return fmt.Errorf("too many positional values (%d unused)", len(p.pos)-p.posIdx)
	}
	return nil
}

// normalized rebuilds the canonical spec string: the original arguments
// with whitespace stripped.
func (p *Params) normalized(name string) string {
	if len(p.args) == 0 {
		return name
	}
	return name + "(" + strings.Join(p.args, ",") + ")"
}

package mobipriv

import (
	"strings"
	"testing"
	"time"

	"mobipriv/internal/attack/poiattack"
	"mobipriv/internal/geo"
	"mobipriv/internal/synth"
)

func commuterData(t testing.TB, users int) *synth.Generated {
	t.Helper()
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = users
	cfg.Sampling = 2 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAnonymizeEndToEnd(t *testing.T) {
	g := commuterData(t, 12)
	anon, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := anon.Anonymize(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Dataset.Validate(); err != nil {
		t.Fatalf("published dataset invalid: %v", err)
	}
	// All published identities are pseudonyms.
	for _, u := range res.Dataset.Users() {
		if !strings.HasPrefix(u, "p") {
			t.Errorf("published identity %q is not pseudonymized", u)
		}
		if g.Dataset.ByUser(u) != nil {
			t.Errorf("pseudonym %q collides with an original user", u)
		}
	}
	if res.Dataset.Len()+len(res.DroppedUsers()) != g.Dataset.Len() {
		t.Errorf("published %d + dropped %d != input %d",
			res.Dataset.Len(), len(res.DroppedUsers()), g.Dataset.Len())
	}
}

func TestAnonymizeHidesPOIs(t *testing.T) {
	g := commuterData(t, 12)
	anon, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := anon.Anonymize(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := poiattack.Evaluate(g.Dataset, g.Stays, poiattack.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	after, err := poiattack.Evaluate(res.Dataset, g.Stays, poiattack.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if raw.Global.F1 < 0.6 {
		t.Fatalf("attack is broken: raw global F1 = %v", raw.Global.F1)
	}
	if after.Global.F1 > raw.Global.F1*0.5 {
		t.Errorf("pipeline did not halve POI retrieval: %v -> %v", raw.Global.F1, after.Global.F1)
	}
}

func TestAnonymizeGroundTruth(t *testing.T) {
	g := commuterData(t, 10)
	anon, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := anon.Anonymize(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	// Every published identity resolves to some original user at the
	// midpoint of its span, and MajorityOwner is consistent with the
	// original user set.
	for _, tr := range res.Dataset.Traces() {
		mid := tr.Start().Time.Add(tr.Duration() / 2)
		u, ok := res.OriginalAt(tr.User, mid)
		if !ok {
			t.Errorf("OriginalAt(%q, mid) failed", tr.User)
			continue
		}
		if g.Dataset.ByUser(u) == nil {
			t.Errorf("OriginalAt returned unknown user %q", u)
		}
		owner := res.MajorityOwner(tr.User)
		if owner == "" || g.Dataset.ByUser(owner) == nil {
			t.Errorf("MajorityOwner(%q) = %q", tr.User, owner)
		}
	}
	// Unknown identity.
	if _, ok := res.OriginalAt("nope", time.Now()); ok {
		t.Error("unknown identity resolved")
	}
	if res.MajorityOwner("nope") != "" {
		t.Error("unknown identity has an owner")
	}
}

func TestAnonymizeDeterministic(t *testing.T) {
	g := commuterData(t, 8)
	anon, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := anon.Anonymize(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := anon.Anonymize(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Dataset.TotalPoints() != r2.Dataset.TotalPoints() || r1.Zones() != r2.Zones() || r1.Swaps() != r2.Swaps() {
		t.Fatal("same options + same input must give identical results")
	}
	u1, u2 := r1.Dataset.Users(), r2.Dataset.Users()
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatal("pseudonym assignment must be deterministic")
		}
	}
}

func TestAnonymizeAblations(t *testing.T) {
	g := commuterData(t, 10)

	noSwap := DefaultOptions()
	noSwap.DisableSwapping = true
	a1, err := New(noSwap)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := a1.Anonymize(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Swaps() != 0 {
		t.Errorf("DisableSwapping: %d swaps", r1.Swaps())
	}

	noSupp := DefaultOptions()
	noSupp.DisableSuppression = true
	a2, err := New(noSupp)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a2.Anonymize(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if r2.SuppressedPoints() != 0 {
		t.Errorf("DisableSuppression: %d suppressed", r2.SuppressedPoints())
	}

	noSmooth := DefaultOptions()
	noSmooth.DisableSmoothing = true
	a3, err := New(noSmooth)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := a3.Anonymize(g.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	// Without smoothing nothing is dropped for shortness and POIs leak.
	after, err := poiattack.Evaluate(r3.Dataset, g.Stays, poiattack.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if after.Global.F1 < 0.5 {
		t.Errorf("smoothing disabled but POIs hidden anyway (F1=%v): ablation not effective", after.Global.F1)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Epsilon: 0, ZoneRadius: 100, ZoneWindow: time.Minute},
		{Epsilon: 100, ZoneRadius: 0, ZoneWindow: time.Minute},
		{Epsilon: 100, ZoneRadius: 100, ZoneWindow: 0},
		{Epsilon: 100, ZoneRadius: 100, ZoneWindow: time.Minute, ZoneCooldown: -1},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	// DisableSmoothing makes Epsilon irrelevant.
	ok := DefaultOptions()
	ok.Epsilon = 0
	ok.DisableSmoothing = true
	if _, err := New(ok); err != nil {
		t.Errorf("DisableSmoothing with Epsilon=0 rejected: %v", err)
	}
}

func TestSmoothOnly(t *testing.T) {
	g := commuterData(t, 5)
	out, dropped, err := SmoothOnly(g.Dataset, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len()+len(dropped) != g.Dataset.Len() {
		t.Fatalf("out %d + dropped %d != in %d", out.Len(), len(dropped), g.Dataset.Len())
	}
	// Identities preserved by SmoothOnly.
	for _, u := range out.Users() {
		if g.Dataset.ByUser(u) == nil {
			t.Errorf("unknown user %q in smoothed output", u)
		}
	}
}

func TestNewTraceNewDataset(t *testing.T) {
	t0 := time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	origin := geo.Point{Lat: 45.76, Lng: 4.83}
	tr, err := NewTrace("u", []Point{
		{Point: origin, Time: t0},
		{Point: geo.Offset(origin, 100, 0), Time: t0.Add(time.Minute)},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDataset([]*Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatal("dataset should hold one trace")
	}
	if _, err := NewTrace("", nil); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

module mobipriv

go 1.24

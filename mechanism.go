package mobipriv

import (
	"context"
	"sort"
	"time"

	"mobipriv/internal/mixzone"
)

// Mechanism is one anonymization under a common contract: every CLI,
// example, experiment and benchmark in this repository resolves
// mechanisms through this interface (usually via FromSpec) instead of
// wiring concrete packages by hand.
//
// Implementations must be immutable and safe for concurrent use; each
// Apply call is self-contained. Apply must not modify the input
// dataset. Parallel execution is a property of the runtime, not of the
// mechanism: a Runner configured with WithWorkers passes the worker
// budget through the context, and mechanisms with per-trace work fan
// out accordingly while producing output identical to a serial run.
type Mechanism interface {
	// Name identifies the mechanism, parameters included; for
	// mechanisms resolved by FromSpec it is the normalized spec and
	// round-trips through FromSpec.
	Name() string
	// Apply anonymizes the dataset. It honors ctx cancellation and the
	// ctx worker budget set by Runner.
	Apply(ctx context.Context, d *Dataset) (*Result, error)
}

// mechanismFunc is the trivial Mechanism implementation used by
// adapters and custom registrations.
type mechanismFunc struct {
	name string
	fn   func(context.Context, *Dataset) (*Result, error)
}

func (m mechanismFunc) Name() string { return m.name }
func (m mechanismFunc) Apply(ctx context.Context, d *Dataset) (*Result, error) {
	return m.fn(ctx, d)
}

// NewMechanism wraps an apply function as a Mechanism, for callers
// registering custom mechanisms with Register.
func NewMechanism(name string, fn func(context.Context, *Dataset) (*Result, error)) Mechanism {
	return mechanismFunc{name: name, fn: fn}
}

// named re-labels a mechanism with the normalized spec it was resolved
// from, so Name round-trips through FromSpec.
type named struct {
	name string
	Mechanism
}

func (n named) Name() string { return n.name }

// Unwrap exposes the wrapped mechanism so capability probes (notably
// AsStreaming) can see through the spec-normalization layer.
func (n named) Unwrap() Mechanism { return n.Mechanism }

// StageReport describes what one pipeline stage (or one single-stage
// mechanism) did to the dataset flowing through it.
type StageReport struct {
	// Stage is the stage name ("mixzones", "smooth", "pseudonymize",
	// or a baseline mechanism name).
	Stage string
	// Zones is the number of natural mix-zones exploited (mix-zone
	// stage only).
	Zones int
	// Swaps is the number of zones whose permutation actually changed
	// identities (mix-zone stage only).
	Swaps int
	// Suppressed counts observations removed by the stage.
	Suppressed int
	// Dropped lists users whose traces the stage withheld entirely.
	Dropped []string
}

// Result is the outcome of applying a mechanism: the publishable
// dataset plus per-stage reports and — for the paper's pipeline — the
// evaluation ground truth (which a real publisher must keep secret).
type Result struct {
	// Dataset is the publishable anonymized dataset.
	Dataset *Dataset
	// Reports accumulates one StageReport per stage, in execution
	// order. Aggregates over all stages are available as methods
	// (Zones, Swaps, SuppressedPoints, DroppedUsers).
	Reports []StageReport

	segments  []mixzone.Segment // ground truth over pre-pseudonym labels
	pseudonym map[string]string // pre-pseudonym label -> published label
	original  map[string]string // published label -> pre-pseudonym label
}

// AddReport appends a stage report; stages and adapters call it while
// the dataset flows through them.
func (r *Result) AddReport(rep StageReport) { r.Reports = append(r.Reports, rep) }

// Report returns the report of the named stage, if any.
func (r *Result) Report(stage string) (StageReport, bool) {
	for _, rep := range r.Reports {
		if rep.Stage == stage {
			return rep, true
		}
	}
	return StageReport{}, false
}

// Zones is the total number of natural mix-zones exploited.
func (r *Result) Zones() int {
	var n int
	for _, rep := range r.Reports {
		n += rep.Zones
	}
	return n
}

// Swaps is the total number of zones whose permutation actually changed
// identities.
func (r *Result) Swaps() int {
	var n int
	for _, rep := range r.Reports {
		n += rep.Swaps
	}
	return n
}

// SuppressedPoints is the total number of observations suppressed by
// all stages.
func (r *Result) SuppressedPoints() int {
	var n int
	for _, rep := range r.Reports {
		n += rep.Suppressed
	}
	return n
}

// DroppedUsers lists the original users whose traces were withheld by
// any stage, sorted.
func (r *Result) DroppedUsers() []string {
	var out []string
	for _, rep := range r.Reports {
		out = append(out, rep.Dropped...)
	}
	sort.Strings(out)
	return out
}

// OriginalAt reports which original user's observations the published
// identity carries at the given instant. This is secret ground truth for
// evaluation; a real publisher would not release it. It is only
// populated by pipelines containing a MixZoneSwap stage.
//
// Caveat: the instant refers to the pre-smoothing timeline. Smoothing
// re-distributes timestamps along each composite path, so time-pointwise
// lookups are approximate near swap seams; identity-level conclusions
// (MajorityOwner, final identity) are exact.
func (r *Result) OriginalAt(published string, ts time.Time) (string, bool) {
	pre, ok := r.prePseudonym(published)
	if !ok {
		return "", false
	}
	if r.segments == nil {
		// No swapping stage ran: every published identity carries its
		// own (pre-pseudonym) journey end to end.
		if r.Dataset == nil || r.Dataset.ByUser(published) == nil {
			return "", false
		}
		return pre, true
	}
	for _, s := range r.segments {
		if s.Output == pre && !ts.Before(s.From) && !ts.After(s.To) {
			return s.Original, true
		}
	}
	return "", false
}

// MajorityOwner returns the original user contributing the longest total
// time to the published identity, or "" if unknown.
func (r *Result) MajorityOwner(published string) string {
	pre, ok := r.prePseudonym(published)
	if !ok {
		return ""
	}
	if r.segments == nil {
		if r.Dataset == nil || r.Dataset.ByUser(published) == nil {
			return ""
		}
		return pre
	}
	totals := make(map[string]time.Duration)
	for _, s := range r.segments {
		if s.Output == pre {
			totals[s.Original] += s.To.Sub(s.From)
		}
	}
	var best string
	var bestDur time.Duration = -1
	owners := make([]string, 0, len(totals))
	for u := range totals {
		owners = append(owners, u)
	}
	sort.Strings(owners)
	for _, u := range owners {
		if totals[u] > bestDur {
			best, bestDur = u, totals[u]
		}
	}
	return best
}

// PseudonymOf returns the published label of a pre-pseudonym identity.
// Evaluation-only.
func (r *Result) PseudonymOf(preLabel string) (string, bool) {
	if r.pseudonym == nil {
		// No pseudonymization stage ran: identities pass through.
		return preLabel, true
	}
	p, ok := r.pseudonym[preLabel]
	return p, ok
}

// prePseudonym resolves a published label back to its pre-pseudonym
// label via the reverse map built at pseudonymization time.
func (r *Result) prePseudonym(published string) (string, bool) {
	if r.original == nil {
		return published, true
	}
	pre, ok := r.original[published]
	return pre, ok
}

// setSegments records the mix-zone ground truth (pre-pseudonym labels).
func (r *Result) setSegments(segs []mixzone.Segment) { r.segments = segs }

// setPseudonyms records the forward and reverse pseudonym maps.
func (r *Result) setPseudonyms(forward map[string]string) {
	r.pseudonym = forward
	r.original = make(map[string]string, len(forward))
	for pre, pub := range forward {
		r.original[pub] = pre
	}
}

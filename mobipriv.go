// Package mobipriv is the public API of the mobility-data anonymization
// library reproducing Primault, Ben Mokhtar & Brunie, "Privacy-preserving
// Publication of Mobility Data with High Utility" (ICDCS 2015).
//
// The pipeline has two steps, applied by Anonymizer.Anonymize:
//
//   - Trajectory swapping in natural mix-zones: wherever users actually
//     meet (on the original timing), the few observations inside the
//     meeting area are suppressed and the user identifiers of the
//     crossing traces are shuffled, breaking trace linkability.
//   - Speed smoothing (time distortion): every composite trace is then
//     re-published with uniform spacing between points and uniform
//     timestamps, so the user appears to move at constant speed and her
//     stops (points of interest) are no longer visible. Space is almost
//     untouched; time carries the distortion, and the swap seams vanish
//     into the constant-speed geometry.
//
// Finally, identifiers are replaced with opaque pseudonyms. (The paper's
// Figure 1 presents smoothing first; see DESIGN.md §5.1 for why the
// operational order detects meetings before distorting time.)
//
// Quickstart:
//
//	anon, err := mobipriv.New(mobipriv.DefaultOptions())
//	...
//	res, err := anon.Anonymize(dataset)
//	...
//	publish(res.Dataset)
//
// The sub-packages under internal/ contain the substrates (trajectory
// model, geodesy, synthetic workloads, attacks, baselines, metrics) used
// by the examples, the experiment harness, and the benchmarks.
package mobipriv

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mobipriv/internal/core"
	"mobipriv/internal/mixzone"
	"mobipriv/internal/trace"
)

// Re-exported data model, so that library users need a single import.
type (
	// Dataset is a collection of per-user mobility traces.
	Dataset = trace.Dataset
	// Trace is one user's chronological GPS observations.
	Trace = trace.Trace
	// Point is a single timestamped GPS observation.
	Point = trace.Point
)

// NewDataset builds a validated dataset from traces.
func NewDataset(traces []*Trace) (*Dataset, error) { return trace.NewDataset(traces) }

// NewTrace builds a validated, time-sorted trace.
func NewTrace(user string, pts []Point) (*Trace, error) { return trace.New(user, pts) }

// Options configures the anonymization pipeline.
type Options struct {
	// Epsilon is the published inter-point spacing in meters (speed
	// smoothing). Default 100.
	Epsilon float64
	// Trim is the path distance removed from both trace ends, hiding the
	// first and last stops. Negative means "equal to Epsilon" (default).
	Trim float64
	// ZoneRadius is the mix-zone radius in meters. Default 100.
	ZoneRadius float64
	// ZoneWindow is the co-location window for meeting detection.
	// Default 1 minute.
	ZoneWindow time.Duration
	// ZoneCooldown limits repeated zones for the same user pair.
	// Default 15 minutes.
	ZoneCooldown time.Duration
	// Seed drives the swap permutations and pseudonym assignment.
	Seed int64
	// DisableSwapping keeps zone suppression but never swaps identities
	// (ablation).
	DisableSwapping bool
	// DisableSuppression keeps swapping but publishes in-zone points
	// (ablation).
	DisableSuppression bool
	// DisableSmoothing skips step 1 entirely (ablation).
	DisableSmoothing bool
	// PseudonymPrefix names output identities Prefix000, Prefix001, ...
	// Empty disables pseudonymization (identities remain the — possibly
	// swapped — original labels; useful for debugging).
	PseudonymPrefix string
}

// DefaultOptions returns the operating point used across the
// experiments.
func DefaultOptions() Options {
	return Options{
		Epsilon:         100,
		Trim:            -1,
		ZoneRadius:      100,
		ZoneWindow:      time.Minute,
		ZoneCooldown:    15 * time.Minute,
		Seed:            1,
		PseudonymPrefix: "p",
	}
}

func (o Options) validate() error {
	if o.Epsilon <= 0 && !o.DisableSmoothing {
		return errors.New("mobipriv: Epsilon must be positive")
	}
	if o.ZoneRadius <= 0 {
		return errors.New("mobipriv: ZoneRadius must be positive")
	}
	if o.ZoneWindow <= 0 {
		return errors.New("mobipriv: ZoneWindow must be positive")
	}
	if o.ZoneCooldown < 0 {
		return errors.New("mobipriv: ZoneCooldown must be non-negative")
	}
	return nil
}

// Anonymizer applies the two-step pipeline. It is immutable and safe
// for concurrent use by multiple goroutines (each Anonymize call is
// self-contained).
type Anonymizer struct {
	opts Options
}

// New validates the options and returns an Anonymizer.
func New(opts Options) (*Anonymizer, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Anonymizer{opts: opts}, nil
}

// Result is the outcome of anonymizing a dataset, including the
// evaluation ground truth (which the publisher must keep secret).
type Result struct {
	// Dataset is the publishable anonymized dataset.
	Dataset *Dataset
	// DroppedUsers lists original users whose traces were too short to
	// anonymize and were therefore withheld.
	DroppedUsers []string
	// Zones is the number of natural mix-zones exploited.
	Zones int
	// Swaps is the number of zones whose permutation actually changed
	// identities.
	Swaps int
	// SuppressedPoints counts observations removed inside mix-zones.
	SuppressedPoints int

	segments  []mixzone.Segment // ground truth over pre-pseudonym labels
	pseudonym map[string]string // pre-pseudonym label -> published label
}

// Anonymize runs the pipeline on d and returns the published dataset
// plus ground-truth metadata. The input dataset is not modified.
//
// Ordering note (DESIGN.md §5): mix-zones are detected and applied on
// the ORIGINAL timing, and speed smoothing runs afterwards on the
// swapped composite traces. The paper's Figure 1 presents the stages in
// the opposite order, but detection must see real simultaneity — after
// time distortion, users who met in reality no longer co-occur in
// published time, and the zone supply collapses (measured in E12).
// Swapping first and smoothing second also erases the swap seams: each
// published trace is a single constant-speed journey with no visible
// suture inside the zone.
func (a *Anonymizer) Anonymize(d *Dataset) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("mobipriv: %w", err)
	}
	res := &Result{}

	// Step 1: mix-zone swapping on the original timing.
	mz, err := mixzone.Apply(d, mixzone.Config{
		Radius:         a.opts.ZoneRadius,
		Window:         a.opts.ZoneWindow,
		Cooldown:       a.opts.ZoneCooldown,
		SwapSeed:       a.opts.Seed,
		NoSwap:         a.opts.DisableSwapping,
		NoSuppress:     a.opts.DisableSuppression,
		SuppressWindow: 0,
	})
	if err != nil {
		return nil, fmt.Errorf("mobipriv: mix-zones: %w", err)
	}
	res.Zones = len(mz.Zones)
	res.Swaps = mz.SwapCount()
	res.SuppressedPoints = mz.Suppressed
	res.DroppedUsers = append(res.DroppedUsers, mz.DroppedUsers...)
	res.segments = mz.Segments

	// Step 2: speed smoothing of the swapped composites.
	working := mz.Dataset
	if !a.opts.DisableSmoothing {
		smoothed, rep, err := core.SmoothDataset(working, core.Config{Epsilon: a.opts.Epsilon, Trim: a.opts.Trim})
		if err != nil {
			return nil, fmt.Errorf("mobipriv: smoothing: %w", err)
		}
		res.DroppedUsers = append(res.DroppedUsers, rep.Dropped...)
		working = smoothed
	}
	sort.Strings(res.DroppedUsers)

	// Step 3: pseudonymize output identities.
	out := working
	res.pseudonym = make(map[string]string, out.Len())
	if a.opts.PseudonymPrefix != "" {
		renamed := make([]*Trace, 0, out.Len())
		// Deterministic but label-decorrelated assignment: sort users,
		// then assign pseudonyms in an order scrambled by the seed.
		users := out.Users()
		perm := seededPerm(len(users), a.opts.Seed)
		for i, u := range users {
			res.pseudonym[u] = fmt.Sprintf("%s%03d", a.opts.PseudonymPrefix, perm[i])
		}
		for _, tr := range out.Traces() {
			cp := tr.Clone()
			cp.User = res.pseudonym[tr.User]
			renamed = append(renamed, cp)
		}
		out, err = trace.NewDataset(renamed)
		if err != nil {
			return nil, fmt.Errorf("mobipriv: pseudonymize: %w", err)
		}
	} else {
		for _, u := range out.Users() {
			res.pseudonym[u] = u
		}
	}
	res.Dataset = out
	return res, nil
}

// seededPerm returns a deterministic permutation of [0, n) derived from
// the seed without importing math/rand here: a simple multiplicative
// shuffle keyed by splitmix64.
func seededPerm(n int, seed int64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	s := uint64(seed) ^ 0x9e3779b97f4a7c15
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// OriginalAt reports which original user's observations the published
// identity carries at the given instant. This is secret ground truth for
// evaluation; a real publisher would not release it.
//
// Caveat: the instant refers to the pre-smoothing timeline. Smoothing
// re-distributes timestamps along each composite path, so time-pointwise
// lookups are approximate near swap seams; identity-level conclusions
// (MajorityOwner, final identity) are exact.
func (r *Result) OriginalAt(published string, ts time.Time) (string, bool) {
	pre, ok := r.prePseudonym(published)
	if !ok {
		return "", false
	}
	for _, s := range r.segments {
		if s.Output == pre && !ts.Before(s.From) && !ts.After(s.To) {
			return s.Original, true
		}
	}
	return "", false
}

// MajorityOwner returns the original user contributing the longest total
// time to the published identity, or "" if unknown.
func (r *Result) MajorityOwner(published string) string {
	pre, ok := r.prePseudonym(published)
	if !ok {
		return ""
	}
	totals := make(map[string]time.Duration)
	for _, s := range r.segments {
		if s.Output == pre {
			totals[s.Original] += s.To.Sub(s.From)
		}
	}
	var best string
	var bestDur time.Duration = -1
	owners := make([]string, 0, len(totals))
	for u := range totals {
		owners = append(owners, u)
	}
	sort.Strings(owners)
	for _, u := range owners {
		if totals[u] > bestDur {
			best, bestDur = u, totals[u]
		}
	}
	return best
}

// PseudonymOf returns the published label of a pre-pseudonym identity.
// Evaluation-only.
func (r *Result) PseudonymOf(preLabel string) (string, bool) {
	p, ok := r.pseudonym[preLabel]
	return p, ok
}

func (r *Result) prePseudonym(published string) (string, bool) {
	for pre, pub := range r.pseudonym {
		if pub == published {
			return pre, true
		}
	}
	return "", false
}

// SmoothOnly applies only the speed-smoothing step with the given
// spacing (meters) and default trimming — the minimal API for callers
// who publish single-user data and cannot benefit from swapping.
func SmoothOnly(d *Dataset, epsilon float64) (*Dataset, []string, error) {
	out, rep, err := core.SmoothDataset(d, core.Config{Epsilon: epsilon, Trim: -1})
	if err != nil {
		return nil, nil, err
	}
	return out, rep.Dropped, nil
}

// Package mobipriv is the public API of the mobility-data anonymization
// library reproducing Primault, Ben Mokhtar & Brunie, "Privacy-preserving
// Publication of Mobility Data with High Utility" (ICDCS 2015).
//
// The API has five pillars:
//
//   - Mechanism: every anonymization — the paper's pipeline, the
//     smoothing-only PROMESSE variant, and the geo-indistinguishability
//     and Wait4Me baselines — implements one interface
//     (Name/Apply), so CLIs, examples, experiments and benchmarks all
//     consume the same lineup.
//   - Composable stages: the paper's pipeline is Pipeline(stages...)
//     over Stage values — MixZoneSwap (trajectory swapping in natural
//     mix-zones, on the original timing), SpeedSmooth (constant-speed
//     re-publication that hides stops), and Pseudonymize. Result
//     accumulates one StageReport per stage plus the evaluation ground
//     truth (OriginalAt, MajorityOwner).
//   - Registry + parallel runtime: mechanisms register under a name
//     (Register) and resolve from a textual spec (FromSpec), e.g.
//     "promesse(epsilon=200)", "geoi(0.01)", "w4m(k=4,delta=200)";
//     a Runner with WithWorkers(n) fans independent per-trace work
//     across a pool with context cancellation, with output identical
//     to the serial run.
//   - Online streaming: mechanisms that can run over unbounded update
//     streams expose a Streaming capability (AsStreaming,
//     StreamingMechanisms) producing per-user Push/Flush adapters; the
//     sharded engine in internal/stream and the mobiserve service
//     apply them to live traffic with bounded per-user memory,
//     matching the batch path on replay (byte-identical for geoi).
//   - Store-native runs: mechanisms whose per-trace work is
//     independent expose a PerTrace capability (AsPerTrace,
//     PerTraceMechanisms); Runner.RunStore applies them end-to-end
//     over on-disk .mstore stores (internal/store) trace-by-trace, so
//     batch anonymization of datasets larger than RAM runs with
//     memory bounded by the worker count, and Load()s identical to
//     the in-memory path for the same spec and seed.
//
// The determinism contract spans all pillars: randomness always
// derives from (seed, user) — never from trace order, worker count, or
// shard assignment — so batch, parallel, streaming-replay and
// store-native runs of the same spec and seed publish the same points.
// docs/ARCHITECTURE.md maps the layers; docs/MSTORE.md specifies the
// on-disk format; docs/CLI.md documents the six commands.
//
// Quickstart:
//
//	mech, err := mobipriv.FromSpec("pipeline")
//	...
//	runner := mobipriv.NewRunner(mobipriv.WithWorkers(runtime.NumCPU()))
//	res, err := runner.Run(ctx, mech, dataset)
//	...
//	publish(res.Dataset)
//
// Or compose stages explicitly:
//
//	mech := mobipriv.Pipeline(
//		mobipriv.DefaultMixZoneSwap(),
//		mobipriv.SpeedSmooth{Epsilon: 200, Trim: -1},
//		mobipriv.DefaultPseudonymize(),
//	)
//
// The legacy constructor mobipriv.New(Options) remains as a thin shim
// over the same pipeline. (The paper's Figure 1 presents smoothing
// first; see DESIGN.md §5.1 for why the operational order detects
// meetings before distorting time.)
//
// The sub-packages under internal/ contain the substrates (trajectory
// model, geodesy, synthetic workloads, attacks, baselines, metrics) used
// by the examples, the experiment harness, and the benchmarks.
package mobipriv

import (
	"context"

	"mobipriv/internal/core"
	"mobipriv/internal/trace"
)

// Re-exported data model, so that library users need a single import.
type (
	// Dataset is a collection of per-user mobility traces.
	Dataset = trace.Dataset
	// Trace is one user's chronological GPS observations.
	Trace = trace.Trace
	// Point is a single timestamped GPS observation.
	Point = trace.Point
)

// NewDataset builds a validated dataset from traces.
func NewDataset(traces []*Trace) (*Dataset, error) { return trace.NewDataset(traces) }

// NewTrace builds a validated, time-sorted trace.
func NewTrace(user string, pts []Point) (*Trace, error) { return trace.New(user, pts) }

// Anonymizer is the legacy entry point to the paper's pipeline, kept as
// a thin shim over Pipeline(Options.stages()...). It is immutable and
// safe for concurrent use by multiple goroutines (each Anonymize call
// is self-contained).
type Anonymizer struct {
	opts Options
	mech Mechanism
}

// New validates the options and returns an Anonymizer.
func New(opts Options) (*Anonymizer, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Anonymizer{opts: opts, mech: Pipeline(opts.stages()...)}, nil
}

// Mechanism exposes the pipeline behind this Anonymizer, for callers
// migrating to the Mechanism API (Runner, registries).
func (a *Anonymizer) Mechanism() Mechanism { return a.mech }

// Anonymize runs the pipeline on d and returns the published dataset
// plus ground-truth metadata. The input dataset is not modified.
//
// Ordering note (DESIGN.md §5): mix-zones are detected and applied on
// the ORIGINAL timing, and speed smoothing runs afterwards on the
// swapped composite traces. The paper's Figure 1 presents the stages in
// the opposite order, but detection must see real simultaneity — after
// time distortion, users who met in reality no longer co-occur in
// published time, and the zone supply collapses (measured in E12).
// Swapping first and smoothing second also erases the swap seams: each
// published trace is a single constant-speed journey with no visible
// suture inside the zone.
func (a *Anonymizer) Anonymize(d *Dataset) (*Result, error) {
	return a.mech.Apply(context.Background(), d)
}

// AnonymizeContext is Anonymize honoring context cancellation and the
// Runner worker budget.
func (a *Anonymizer) AnonymizeContext(ctx context.Context, d *Dataset) (*Result, error) {
	return a.mech.Apply(ctx, d)
}

// SmoothOnly applies only the speed-smoothing step with the given
// spacing (meters) and default trimming — the minimal API for callers
// who publish single-user data and cannot benefit from swapping.
// Equivalent to applying the Promesse mechanism.
func SmoothOnly(d *Dataset, epsilon float64) (*Dataset, []string, error) {
	out, rep, err := core.SmoothDataset(d, core.Config{Epsilon: epsilon, Trim: -1})
	if err != nil {
		return nil, nil, err
	}
	return out, rep.Dropped, nil
}

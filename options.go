package mobipriv

import (
	"errors"
	"time"
)

// Options configures the paper's full anonymization pipeline. It is the
// legacy all-in-one configuration kept for the Anonymizer shim; new
// code composes Stage values with Pipeline directly, or resolves a
// mechanism with FromSpec.
type Options struct {
	// Epsilon is the published inter-point spacing in meters (speed
	// smoothing). Default 100.
	Epsilon float64
	// Trim is the path distance removed from both trace ends, hiding the
	// first and last stops. Negative means "equal to Epsilon" (default).
	Trim float64
	// ZoneRadius is the mix-zone radius in meters. Default 100.
	ZoneRadius float64
	// ZoneWindow is the co-location window for meeting detection.
	// Default 1 minute.
	ZoneWindow time.Duration
	// ZoneCooldown limits repeated zones for the same user pair.
	// Default 15 minutes.
	ZoneCooldown time.Duration
	// Seed drives the swap permutations and pseudonym assignment.
	Seed int64
	// DisableSwapping keeps zone suppression but never swaps identities
	// (ablation).
	DisableSwapping bool
	// DisableSuppression keeps swapping but publishes in-zone points
	// (ablation).
	DisableSuppression bool
	// DisableSmoothing skips the smoothing stage entirely (ablation).
	DisableSmoothing bool
	// DisableZones skips the mix-zone stage entirely (ablation). The
	// remaining stages are all trace-independent, so a zone-free
	// pipeline with an empty PseudonymPrefix gains the PerTrace
	// capability (store-native runs).
	DisableZones bool
	// PseudonymPrefix names output identities Prefix000, Prefix001, ...
	// Empty disables pseudonymization (identities remain the — possibly
	// swapped — original labels; useful for debugging).
	PseudonymPrefix string
}

// DefaultOptions returns the operating point used across the
// experiments.
func DefaultOptions() Options {
	return Options{
		Epsilon:         100,
		Trim:            -1,
		ZoneRadius:      100,
		ZoneWindow:      time.Minute,
		ZoneCooldown:    15 * time.Minute,
		Seed:            1,
		PseudonymPrefix: "p",
	}
}

func (o Options) validate() error {
	if o.Epsilon <= 0 && !o.DisableSmoothing {
		return errors.New("mobipriv: Epsilon must be positive")
	}
	if !o.DisableZones {
		if o.ZoneRadius <= 0 {
			return errors.New("mobipriv: ZoneRadius must be positive")
		}
		if o.ZoneWindow <= 0 {
			return errors.New("mobipriv: ZoneWindow must be positive")
		}
		if o.ZoneCooldown < 0 {
			return errors.New("mobipriv: ZoneCooldown must be non-negative")
		}
	}
	return nil
}

// stages translates the legacy Options into the equivalent composable
// stage sequence.
func (o Options) stages() []Stage {
	var stages []Stage
	if !o.DisableZones {
		stages = append(stages, MixZoneSwap{
			Radius:          o.ZoneRadius,
			Window:          o.ZoneWindow,
			Cooldown:        o.ZoneCooldown,
			Seed:            o.Seed,
			DisableSwap:     o.DisableSwapping,
			DisableSuppress: o.DisableSuppression,
		})
	}
	if !o.DisableSmoothing {
		stages = append(stages, SpeedSmooth{Epsilon: o.Epsilon, Trim: o.Trim})
	}
	return append(stages, Pseudonymize{Prefix: o.PseudonymPrefix, Seed: o.Seed})
}

package mobipriv_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestPackageDocsPresent pins the godoc contract: the packages that
// carry cross-cutting invariants must state them in their package
// comment, so `go doc` is the source of truth a new contributor can
// trust (see docs/ARCHITECTURE.md). Each entry lists substrings the
// package doc must mention, lowercased.
func TestPackageDocsPresent(t *testing.T) {
	cases := []struct {
		dir      string
		keywords []string
	}{
		// The public API: the five pillars and the determinism contract.
		{".", []string{"mechanism", "store-native", "determinism", "(seed, user)"}},
		// The store: shard pinning and first-wins microsecond dedup.
		{"internal/store", []string{"shard", "first-wins", "microsecond", "crc"}},
		// The fault-injection harness: the crash model behind the
		// crash-matrix tests.
		{"internal/store/storetest", []string{"crash", "torn", "durable", "fault"}},
		// The metrics: the accumulator determinism contract behind
		// store-native evaluation.
		{"internal/metrics", []string{"accumulator", "merge", "bit-identical", "evalstore"}},
		// The streaming engine: shard hashing and backpressure.
		{"internal/stream", []string{"hash(user)", "backpressure", "bounded"}},
		// The risk subsystem: streaming stay detection with bounded
		// state, and the attack accumulator's merge contract.
		{"internal/risk", []string{"stay", "accumulator", "merge", "bounded"}},
		// The parallel substrate: worker-count-independent determinism.
		{"internal/par", []string{"worker", "determinism", "(seed, user)"}},
		// The observability substrate: mergeable race-safe instruments
		// and the scrape-time callback contract.
		{"internal/obs", []string{"counter", "gauge", "histogram", "merge", "prometheus", "idempotent"}},
		// The load driver: deterministic traffic and checksums.
		{"internal/load", []string{"deterministic", "hash(user)", "checksum", "mergeable"}},
		// The placement helper: the single hash both the engine's
		// shards and the router's nodes are derived from.
		{"internal/rng", []string{"placement", "shard", "splitmix64", "fnv"}},
		// The router: stateless placement-contract forwarding, exact
		// stats aggregation, and loud partition failure.
		{"internal/router", []string{"placement", "batch", "retried", "503", "merge", "traceparent"}},
		// The tracing layer: deterministic identity and sampling,
		// nil-safe spans, and the flight-recorder retention story.
		{"internal/obs/trace", []string{"span", "deterministic", "sampling", "traceparent", "nil-safe", "ring", "exemplar"}},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			doc := strings.ToLower(packageDoc(t, tc.dir))
			if len(doc) < 200 {
				t.Fatalf("package doc for %s is %d chars — missing or perfunctory", tc.dir, len(doc))
			}
			for _, kw := range tc.keywords {
				if !strings.Contains(doc, kw) {
					t.Errorf("package doc for %s does not mention %q", tc.dir, kw)
				}
			}
		})
	}
}

// packageDoc returns the concatenated package-level doc comments of the
// non-test files in dir.
func packageDoc(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	notTest := func(fi fs.FileInfo) bool { return !strings.HasSuffix(fi.Name(), "_test.go") }
	pkgs, err := parser.ParseDir(fset, dir, notTest, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	var b strings.Builder
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Doc != nil {
				b.WriteString(f.Doc.Text())
			}
		}
	}
	return b.String()
}

package mobipriv_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mobipriv"
	"mobipriv/internal/store"
	"mobipriv/internal/trace"
)

// storeDataset builds a quantization-exact dataset whose traces are
// long enough (several km) to survive promesse's end trimming:
// coordinates are exact multiples of 1e-7°, timestamps whole seconds.
func storeDataset(users, pointsEach int) *trace.Dataset {
	base := time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC)
	var traces []*trace.Trace
	for u := 0; u < users; u++ {
		pts := make([]trace.Point, pointsEach)
		for i := range pts {
			// ~111 m per step: a pointsEach of 50 walks ~5.5 km.
			pts[i] = trace.P(
				float64(48_000_0000+100_000*u+10_000*i)/1e7,
				float64(2_000_0000+3_000*i)/1e7,
				base.Add(time.Duration(u*13+i*30)*time.Second),
			)
		}
		traces = append(traces, trace.MustNew(fmt.Sprintf("user%03d", u), pts))
	}
	return trace.MustNewDataset(traces)
}

// buildInputStore writes d into a store; fragmented spreads each user
// over many small interleaved blocks, the worst case for assembly.
func buildInputStore(t *testing.T, d *trace.Dataset, fragmented bool) *store.Store {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "in.mstore")
	if fragmented {
		w, err := store.Create(dir, store.Options{Shards: 4, BlockPoints: 4})
		if err != nil {
			t.Fatal(err)
		}
		max := 0
		for _, tr := range d.Traces() {
			if tr.Len() > max {
				max = tr.Len()
			}
		}
		for i := 0; i < max; i++ {
			for _, tr := range d.Traces() {
				if i < tr.Len() {
					if err := w.Append(tr.User, tr.Points[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	} else if err := store.WriteDataset(dir, d, store.Options{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// loadStore opens and loads a store directory.
func loadStore(t *testing.T, dir string) *trace.Dataset {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sameDatasets fails unless a and b agree exactly on users, timestamps
// and coordinates.
func sameDatasets(t *testing.T, a, b *trace.Dataset) {
	t.Helper()
	if !reflect.DeepEqual(a.Users(), b.Users()) {
		t.Fatalf("users %v != %v", a.Users(), b.Users())
	}
	for _, ta := range a.Traces() {
		tb := b.ByUser(ta.User)
		if ta.Len() != tb.Len() {
			t.Fatalf("user %q: %d points != %d", ta.User, ta.Len(), tb.Len())
		}
		for i := range ta.Points {
			pa, pb := ta.Points[i], tb.Points[i]
			if !pa.Time.Equal(pb.Time) || pa.Lat != pb.Lat || pa.Lng != pb.Lng {
				t.Fatalf("user %q point %d: %v != %v", ta.User, i, pa, pb)
			}
		}
	}
}

// TestRunStoreEquivalence pins the store-native acceptance criterion:
// for every per-trace mechanism, RunStore's output store Load()s
// identical to running the in-memory Runner on Load()ed input and
// storing the result — same spec, same seed, across worker counts and
// input fragmentation.
func TestRunStoreEquivalence(t *testing.T) {
	d := storeDataset(12, 50)
	specs := []string{"raw", "promesse(epsilon=200)", "geoi(epsilon=0.01,seed=7)"}
	for _, fragmented := range []bool{false, true} {
		in := buildInputStore(t, d, fragmented)
		for _, spec := range specs {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/fragmented=%t/workers=%d", spec, fragmented, workers), func(t *testing.T) {
					m := mobipriv.MustFromSpec(spec)
					runner := mobipriv.NewRunner(mobipriv.WithWorkers(workers))

					// Store-native path.
					outDir := filepath.Join(t.TempDir(), "native.mstore")
					w, err := store.Create(outDir, store.Options{})
					if err != nil {
						t.Fatal(err)
					}
					stats, err := runner.RunStore(context.Background(), in, w, m)
					if err != nil {
						t.Fatalf("RunStore: %v", err)
					}
					if err := w.Close(); err != nil {
						t.Fatal(err)
					}

					// In-memory reference path over the same store.
					loaded, err := in.Load(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					res, err := runner.Run(context.Background(), m, loaded)
					if err != nil {
						t.Fatalf("Run: %v", err)
					}
					refDir := filepath.Join(t.TempDir(), "ref.mstore")
					if err := store.WriteDataset(refDir, res.Dataset, store.Options{}); err != nil {
						t.Fatal(err)
					}

					sameDatasets(t, loadStore(t, refDir), loadStore(t, outDir))
					if want := res.DroppedUsers(); !reflect.DeepEqual(stats.Dropped, want) &&
						(len(stats.Dropped) != 0 || len(want) != 0) {
						t.Errorf("Dropped = %v, want %v", stats.Dropped, want)
					}
					if stats.Traces != int64(loaded.Len()) {
						t.Errorf("stats.Traces = %d, want %d", stats.Traces, loaded.Len())
					}
					if stats.OutTraces != int64(res.Dataset.Len()) {
						t.Errorf("stats.OutTraces = %d, want %d", stats.OutTraces, res.Dataset.Len())
					}
				})
			}
		}
	}
}

// TestRunStoreRejectsBatchOnly pins that batch-only mechanisms surface
// ErrNotPerTrace instead of silently degrading.
func TestRunStoreRejectsBatchOnly(t *testing.T) {
	d := storeDataset(3, 10)
	in := buildInputStore(t, d, false)
	outDir := filepath.Join(t.TempDir(), "out.mstore")
	w, err := store.Create(outDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	runner := mobipriv.NewRunner()
	for _, spec := range []string{"pipeline", "w4m(k=2,delta=500)"} {
		if _, err := runner.RunStore(context.Background(), in, w, mobipriv.MustFromSpec(spec)); !errors.Is(err, mobipriv.ErrNotPerTrace) {
			t.Errorf("RunStore(%s): err = %v, want ErrNotPerTrace", spec, err)
		}
	}
}

// TestPerTraceMechanisms pins which registered mechanisms expose the
// store-native capability.
func TestPerTraceMechanisms(t *testing.T) {
	want := []string{"geoi", "promesse", "raw"}
	if got := mobipriv.PerTraceMechanisms(); !reflect.DeepEqual(got, want) {
		t.Errorf("PerTraceMechanisms() = %v, want %v", got, want)
	}
	// The capability must survive FromSpec's wrapping with parameters.
	if _, ok := mobipriv.AsPerTrace(mobipriv.MustFromSpec("geoi(0.05,seed=3)")); !ok {
		t.Error("parameterized geoi spec lost the per-trace capability")
	}
	// And coexist with streaming on the same mechanism value.
	m := mobipriv.MustFromSpec("promesse(epsilon=150)")
	if _, ok := mobipriv.AsStreaming(m); !ok {
		t.Error("promesse lost streaming capability")
	}
	if _, ok := mobipriv.AsPerTrace(m); !ok {
		t.Error("promesse lost per-trace capability")
	}
}

// TestRunStoreFlatMemory pins the larger-than-RAM bound: the pipeline's
// high-water marks depend on the worker count and the input store's
// fragmentation — NOT on how many users flow through. A 10× dataset
// must report the same peaks as the 1× dataset.
func TestRunStoreFlatMemory(t *testing.T) {
	runner := mobipriv.NewRunner(mobipriv.WithWorkers(4))
	m := mobipriv.MustFromSpec("geoi(epsilon=0.01,seed=1)")
	for _, users := range []int{20, 200} {
		in := buildInputStore(t, storeDataset(users, 12), false)
		outDir := filepath.Join(t.TempDir(), fmt.Sprintf("out%d.mstore", users))
		w, err := store.Create(outDir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := runner.RunStore(context.Background(), in, w, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if stats.Traces != int64(users) {
			t.Fatalf("processed %d traces, want %d", stats.Traces, users)
		}
		// In-flight traces are capped by the bounded channel — one in
		// hand per worker, the queue, and one held per blocked
		// segment-scanning goroutine — at either scale.
		if bound := int64(3 * 4); stats.PeakInFlight > bound {
			t.Errorf("users=%d: PeakInFlight = %d > %d", users, stats.PeakInFlight, bound)
		}
		// A compacted input (one block per user) assembles with no
		// fragment buffering at all, at either scale.
		if stats.PeakBufferedUsers != 0 {
			t.Errorf("users=%d: PeakBufferedUsers = %d, want 0", users, stats.PeakBufferedUsers)
		}
	}
}

// TestRunStoreWithFilters pins the filtered store-native path:
// RunStoreWith over a user/time-restricted scan produces exactly what
// the in-memory Runner produces on the equivalently filtered dataset,
// and the skipped blocks are counted.
func TestRunStoreWithFilters(t *testing.T) {
	d := storeDataset(12, 50)
	in := buildInputStore(t, d, true)
	m := mobipriv.MustFromSpec("geoi(epsilon=0.01,seed=7)")
	runner := mobipriv.NewRunner(mobipriv.WithWorkers(4))

	users := []string{"user003", "user007"}
	filter := store.ScanOptions{Users: users}

	outDir := filepath.Join(t.TempDir(), "filtered.mstore")
	w, err := store.Create(outDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := runner.RunStoreWith(context.Background(), in, w, m, filter)
	if err != nil {
		t.Fatalf("RunStoreWith: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.Traces != 2 {
		t.Errorf("stats.Traces = %d, want 2", stats.Traces)
	}
	if stats.BlocksPruned == 0 {
		t.Errorf("user filter pruned no blocks: %+v", stats)
	}

	// Reference: the in-memory Runner over just the selected users.
	var kept []*trace.Trace
	for _, u := range users {
		kept = append(kept, d.ByUser(u))
	}
	res, err := runner.Run(context.Background(), m, trace.MustNewDataset(kept))
	if err != nil {
		t.Fatal(err)
	}
	refDir := filepath.Join(t.TempDir(), "ref.mstore")
	if err := store.WriteDataset(refDir, res.Dataset, store.Options{}); err != nil {
		t.Fatal(err)
	}
	sameDatasets(t, loadStore(t, refDir), loadStore(t, outDir))
}

// TestRunStorePipelineNoZones pins the pipeline's conditional per-trace
// capability: with the mix-zone stage disabled and no pseudonym prefix,
// every remaining stage is trace-independent, so the spec runs
// store-native and Load()s identical to the batch path. The default
// pipeline must keep refusing (TestRunStoreRejectsBatchOnly).
func TestRunStorePipelineNoZones(t *testing.T) {
	spec := "pipeline(no-zones=true,prefix=)"
	m := mobipriv.MustFromSpec(spec)
	if _, ok := mobipriv.AsPerTrace(m); !ok {
		t.Fatalf("%s should be per-trace capable", spec)
	}
	// A pseudonymizing or zone-ful pipeline must not be.
	for _, batchOnly := range []string{"pipeline(no-zones=true)", "pipeline(prefix=)"} {
		if _, ok := mobipriv.AsPerTrace(mobipriv.MustFromSpec(batchOnly)); ok {
			t.Errorf("%s should be batch-only", batchOnly)
		}
	}

	d := storeDataset(10, 60)
	for _, workers := range []int{1, 4} {
		in := buildInputStore(t, d, workers == 1)
		runner := mobipriv.NewRunner(mobipriv.WithWorkers(workers))
		outDir := filepath.Join(t.TempDir(), "native.mstore")
		w, err := store.Create(outDir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := runner.RunStore(context.Background(), in, w, m); err != nil {
			t.Fatalf("RunStore: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		loaded, err := in.Load(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.Run(context.Background(), m, loaded)
		if err != nil {
			t.Fatal(err)
		}
		refDir := filepath.Join(t.TempDir(), "ref.mstore")
		if err := store.WriteDataset(refDir, res.Dataset, store.Options{}); err != nil {
			t.Fatal(err)
		}
		sameDatasets(t, loadStore(t, refDir), loadStore(t, outDir))
	}
}

package core

package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/poi"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

var (
	t0     = time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	origin = geo.Point{Lat: 45.7640, Lng: 4.8357}
)

// stopGoTrace: 20 min stop at A, drive 3 km east, 20 min stop at B.
// Samples every 30 s.
func stopGoTrace() *trace.Trace {
	var pts []trace.Point
	now := t0
	a := origin
	b := geo.Destination(origin, 90, 3000)
	for i := 0; i < 40; i++ { // 20 min at A
		pts = append(pts, trace.Point{Point: geo.Offset(a, float64(i%2)*2, 0), Time: now})
		now = now.Add(30 * time.Second)
	}
	for d := 150.0; d < 3000; d += 150 { // drive at 5 m/s
		pts = append(pts, trace.Point{Point: geo.Destination(a, 90, d), Time: now})
		now = now.Add(30 * time.Second)
	}
	for i := 0; i < 40; i++ { // 20 min at B
		pts = append(pts, trace.Point{Point: geo.Offset(b, float64(i%2)*2, 0), Time: now})
		now = now.Add(30 * time.Second)
	}
	return trace.MustNew("u", pts)
}

func TestSmoothUniformSpacingAndTiming(t *testing.T) {
	tr := stopGoTrace()
	out, err := Smooth(tr, Config{Epsilon: 100, Trim: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.User != tr.User {
		t.Errorf("user changed: %q", out.User)
	}
	if out.Len() < 10 {
		t.Fatalf("too few output points: %d", out.Len())
	}
	// Uniform time steps.
	dt0 := out.Points[1].Time.Sub(out.Points[0].Time)
	for i := 2; i < out.Len(); i++ {
		dt := out.Points[i].Time.Sub(out.Points[i-1].Time)
		if diff := dt - dt0; diff > time.Millisecond || diff < -time.Millisecond {
			t.Fatalf("non-uniform time step at %d: %v vs %v", i, dt, dt0)
		}
	}
	// Uniform spacing (arc-length spacing exactly epsilon; chord distance
	// can only be <= epsilon, and on this near-straight path, close).
	for i := 1; i < out.Len(); i++ {
		d := geo.Distance(out.Points[i-1].Point, out.Points[i].Point)
		if d > 100.5 {
			t.Fatalf("gap %d = %v m > epsilon", i, d)
		}
		if d < 60 {
			t.Fatalf("gap %d = %v m, suspiciously small for this path", i, d)
		}
	}
	// Time window preserved.
	if !out.Start().Time.Equal(tr.Start().Time) || !out.End().Time.Equal(tr.End().Time) {
		t.Error("smoothing must preserve the observation time window when trim=0")
	}
}

func TestSmoothConstantSpeed(t *testing.T) {
	out, err := Smooth(stopGoTrace(), Config{Epsilon: 100, Trim: 0})
	if err != nil {
		t.Fatal(err)
	}
	speeds := out.Speeds()
	mean := 0.0
	for _, s := range speeds {
		mean += s
	}
	mean /= float64(len(speeds))
	for i, s := range speeds {
		if math.Abs(s-mean) > mean*0.05 {
			t.Fatalf("segment %d speed %v deviates from mean %v", i, s, mean)
		}
	}
}

func TestSmoothHidesPOIs(t *testing.T) {
	// The headline property: POI extraction finds the two stops on the
	// raw trace and nothing on the smoothed one.
	tr := stopGoTrace()
	cfg := poi.DefaultConfig()
	before, err := poi.Extract(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 2 {
		t.Fatalf("raw trace: %d POIs, want 2", len(before))
	}
	out, err := Smooth(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	after, err := poi.Extract(out, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 0 {
		t.Fatalf("smoothed trace: %d POIs, want 0", len(after))
	}
}

func TestSmoothStaysOnPath(t *testing.T) {
	tr := stopGoTrace()
	pl, err := tr.Polyline()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Smooth(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range out.Points {
		if d := pl.DistanceTo(p.Point); d > 1 {
			t.Fatalf("output point %d is %v m off the original path", i, d)
		}
	}
}

func TestSmoothTrimHidesEndpoints(t *testing.T) {
	tr := stopGoTrace()
	out, err := Smooth(tr, Config{Epsilon: 100, Trim: 500})
	if err != nil {
		t.Fatal(err)
	}
	// No published point within 400 m of the original endpoints' path
	// positions (500 m path-trim minus curvature slack).
	for _, p := range out.Points {
		if d := geo.Distance(p.Point, tr.Start().Point); d < 400 {
			t.Fatalf("published point %v m from start endpoint", d)
		}
		if d := geo.Distance(p.Point, tr.End().Point); d < 400 {
			t.Fatalf("published point %v m from end endpoint", d)
		}
	}
}

func TestSmoothErrors(t *testing.T) {
	tr := stopGoTrace()
	if _, err := Smooth(tr, Config{Epsilon: 0}); err == nil {
		t.Error("Epsilon=0 accepted")
	}
	// Trace shorter than trim.
	short := trace.MustNew("s", []trace.Point{
		trace.P(45.764, 4.8357, t0),
		{Point: geo.Destination(origin, 90, 50), Time: t0.Add(time.Minute)},
	})
	_, err := Smooth(short, Config{Epsilon: 100, Trim: 100})
	if !errors.Is(err, ErrTraceTooShort) {
		t.Errorf("short trace error = %v, want ErrTraceTooShort", err)
	}
	// Invalid trace.
	bad := &trace.Trace{User: "", Points: nil}
	if _, err := Smooth(bad, DefaultConfig()); err == nil {
		t.Error("invalid trace accepted")
	}
	// Zero-duration trace: a single instant cannot be smoothed. Build a
	// 2-point trace 1ns apart spanning 200m (unrealistic but legal).
	inst := trace.MustNew("z", []trace.Point{
		{Point: origin, Time: t0},
		{Point: geo.Destination(origin, 90, 300), Time: t0.Add(time.Nanosecond)},
	})
	if _, err := Smooth(inst, Config{Epsilon: 100, Trim: 0}); err == nil {
		t.Error("near-zero duration trace accepted")
	}
}

func TestSmoothDefaultTrimIsEpsilon(t *testing.T) {
	tr := stopGoTrace()
	def, err := Smooth(tr, Config{Epsilon: 100, Trim: -1})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Smooth(tr, Config{Epsilon: 100, Trim: 100})
	if err != nil {
		t.Fatal(err)
	}
	if def.Len() != explicit.Len() {
		t.Fatalf("default trim != epsilon trim: %d vs %d points", def.Len(), explicit.Len())
	}
}

func TestSmoothDataset(t *testing.T) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 6
	cfg.Sampling = time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := SmoothDataset(g.Dataset, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len()+len(rep.Dropped) != g.Dataset.Len() {
		t.Fatalf("output %d + dropped %d != input %d", out.Len(), len(rep.Dropped), g.Dataset.Len())
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("smoothed dataset invalid: %v", err)
	}
	// The mechanism's invariants hold on every published trace: uniform
	// time steps, and uniform arc-length spacing epsilon — which bounds
	// every chord at epsilon, with chords shorter than epsilon only at
	// path turns. (POI-attack effectiveness on whole datasets is measured
	// by the attack-level integration tests.)
	const epsilon = 100.0
	for _, tr := range out.Traces() {
		if tr.Len() < 3 {
			continue
		}
		dt0 := tr.Points[1].Time.Sub(tr.Points[0].Time)
		nearEps := 0
		for i := 1; i < tr.Len(); i++ {
			if i >= 2 {
				dt := tr.Points[i].Time.Sub(tr.Points[i-1].Time)
				if diff := dt - dt0; diff > time.Millisecond || diff < -time.Millisecond {
					t.Fatalf("user %s: non-uniform time step at %d: %v vs %v", tr.User, i, dt, dt0)
				}
			}
			chord := geo.Distance(tr.Points[i-1].Point, tr.Points[i].Point)
			if chord > epsilon*1.01 {
				t.Fatalf("user %s: chord %d = %v m exceeds epsilon", tr.User, i, chord)
			}
			if chord > epsilon*0.8 {
				nearEps++
			}
		}
		if frac := float64(nearEps) / float64(tr.Len()-1); frac < 0.6 {
			t.Fatalf("user %s: only %.0f%% of chords near epsilon (curvy beyond plausibility)", tr.User, frac*100)
		}
	}
}

func TestSmoothDatasetDropsShortTraces(t *testing.T) {
	long := stopGoTrace()
	short := trace.MustNew("tiny", []trace.Point{
		{Point: origin, Time: t0},
		{Point: geo.Destination(origin, 90, 80), Time: t0.Add(time.Minute)},
	})
	d := trace.MustNewDataset([]*trace.Trace{long, short})
	out, rep, err := SmoothDataset(d, Config{Epsilon: 100, Trim: 100})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || len(rep.Dropped) != 1 || rep.Dropped[0] != "tiny" {
		t.Fatalf("out=%d dropped=%v", out.Len(), rep.Dropped)
	}
}

func TestSmoothSpatialAccuracy(t *testing.T) {
	// Original observations (except near trimmed ends) must lie close to
	// the published geometry: smoothing does not displace the path.
	tr := stopGoTrace()
	out, err := Smooth(tr, Config{Epsilon: 100, Trim: 0})
	if err != nil {
		t.Fatal(err)
	}
	opl, err := out.Polyline()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range tr.Points {
		if d := opl.DistanceTo(p.Point); d > 55 { // ~epsilon/2 + noise
			t.Fatalf("original point %d is %v m from published path", i, d)
		}
	}
}

func BenchmarkSmooth(b *testing.B) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 1
	g, err := synth.Commuters(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr := g.Dataset.Traces()[0]
	sc := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Smooth(tr, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// Package core implements the primary contribution of the paper: the
// speed-smoothing (time-distortion) anonymization mechanism.
//
// A raw mobility trace betrays its user's points of interest because
// stops appear as dense clusters of observations. Instead of perturbing
// locations, the mechanism re-publishes the trace so that the user
// appears to move at constant speed along her own path:
//
//  1. the trace geometry is taken as a polyline and re-sampled at a
//     uniform arc-length spacing ε (the only spatial error introduced is
//     interpolation error, bounded by the geometry between samples);
//  2. timestamps are re-assigned uniformly between the trace's start and
//     end instants, so every published segment has the same duration and
//     the same length — constant speed, no stationary point;
//  3. a configurable distance is trimmed from both ends of the path:
//     the first and last stops of a trace (typically home) would
//     otherwise remain identifiable as the endpoints of the published
//     geometry.
//
// Time is distorted; space is almost untouched. See DESIGN.md §1.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/par"
	"mobipriv/internal/trace"
)

// Common errors returned by the smoother.
var (
	// ErrTraceTooShort reports a trace whose path is too short to survive
	// end trimming plus at least two output samples.
	ErrTraceTooShort = errors.New("core: trace too short to anonymize")
	// ErrZeroDuration reports a trace whose observations span no time.
	ErrZeroDuration = errors.New("core: trace has zero duration")
)

// Config parameterizes the speed smoother.
type Config struct {
	// Epsilon is the target spacing in meters between consecutive
	// published points. Smaller values preserve geometry better; larger
	// values merge more movement into straight segments. The paper's
	// companion evaluation uses 100 m as the default operating point.
	Epsilon float64
	// Trim is the path distance in meters removed from each end of the
	// trace before resampling, hiding the first and last stops. A
	// negative value means "use Epsilon". Zero disables trimming (used by
	// the E12 ablation).
	Trim float64
}

// DefaultConfig returns the operating point used across the experiments.
func DefaultConfig() Config {
	return Config{Epsilon: 100, Trim: -1}
}

func (c Config) trim() float64 {
	if c.Trim < 0 {
		return c.Epsilon
	}
	return c.Trim
}

func (c Config) validate() error {
	if c.Epsilon <= 0 {
		return errors.New("core: Epsilon must be positive")
	}
	return nil
}

// Smooth applies the speed-smoothing mechanism to one trace and returns
// the anonymized copy (same user identifier; identifier handling is the
// mix-zone step's job).
//
// The published trace:
//   - follows exactly the original path geometry (every output point
//     lies on the original polyline);
//   - has consecutive points ε apart (except possibly the final gap);
//   - has uniformly spaced timestamps spanning the original time window,
//     so speed is constant;
//   - excludes the first and last Trim meters of the path.
func Smooth(tr *trace.Trace, cfg Config) (*trace.Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if tr.Duration() <= 0 {
		return nil, fmt.Errorf("%w: user %q", ErrZeroDuration, tr.User)
	}
	// Collapse stationary jitter before measuring the path: while the
	// user is stopped, GPS noise draws a dense scribble that would
	// otherwise inflate the arc length at the stop and re-create a
	// slow-speed segment there, defeating the mechanism. Keeping only
	// points at least ε from the last kept point erases that scribble
	// while leaving genuine movement intact.
	pl, err := geo.NewPolyline(simplify(tr.Positions(), cfg.Epsilon))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	trim := cfg.trim()
	usable := pl.Length() - 2*trim
	// We need at least two output points ε apart to publish a moving
	// trace.
	if usable < cfg.Epsilon {
		return nil, fmt.Errorf("%w: user %q (path %.0f m, trim %.0f m, epsilon %.0f m)",
			ErrTraceTooShort, tr.User, pl.Length(), trim, cfg.Epsilon)
	}
	// Uniform spatial sampling of the trimmed path.
	n := int(usable/cfg.Epsilon) + 1
	positions := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		positions[i] = pl.PointAt(trim + float64(i)*cfg.Epsilon)
	}
	// Uniform time assignment across the original observation window.
	start := tr.Start().Time
	total := tr.Duration()
	step := total / time.Duration(n-1)
	if step <= 0 {
		return nil, fmt.Errorf("%w: user %q (%d points over %v)", ErrZeroDuration, tr.User, n, total)
	}
	pts := make([]trace.Point, n)
	for i := range positions {
		pts[i] = trace.Point{Point: positions[i], Time: start.Add(time.Duration(i) * step)}
	}
	out, err := trace.New(tr.User, pts)
	if err != nil {
		return nil, fmt.Errorf("core: build smoothed trace: %w", err)
	}
	return out, nil
}

// simplify returns the positions filtered so that consecutive kept
// points are at least minDist apart; the first point is always kept and
// the final point is appended if filtering dropped it (so the published
// path still reaches the end of the journey before trimming).
func simplify(positions []geo.Point, minDist float64) []geo.Point {
	out := make([]geo.Point, 0, len(positions))
	out = append(out, positions[0])
	for _, p := range positions[1:] {
		if geo.FastDistance(out[len(out)-1], p) >= minDist {
			out = append(out, p)
		}
	}
	if last := positions[len(positions)-1]; !out[len(out)-1].Equal(last) {
		out = append(out, last)
	}
	return out
}

// Report describes the outcome of smoothing a whole dataset.
type Report struct {
	// Dropped lists the users whose traces were too short to anonymize
	// (per the mechanism, publishing them would leak their endpoints).
	Dropped []string
}

// SmoothDataset applies Smooth to every trace of the dataset. Traces
// that are too short to anonymize are dropped — publishing them would
// reveal endpoints — and reported. Any other failure aborts.
func SmoothDataset(d *trace.Dataset, cfg Config) (*trace.Dataset, Report, error) {
	return SmoothDatasetCtx(context.Background(), d, cfg)
}

// SmoothDatasetCtx is SmoothDataset honoring context cancellation and
// fanning the per-trace work across the context's worker budget
// (par.Workers). Smoothing one trace is independent of every other, and
// results are collected by index, so the output is byte-identical to
// the serial run regardless of worker count.
func SmoothDatasetCtx(ctx context.Context, d *trace.Dataset, cfg Config) (*trace.Dataset, Report, error) {
	var rep Report
	traces := d.Traces()
	smoothed := make([]*trace.Trace, len(traces)) // nil marks a dropped trace
	dropped := make([]bool, len(traces))
	err := par.Map(ctx, len(traces), func(i int) error {
		sm, err := Smooth(traces[i], cfg)
		if err != nil {
			if errors.Is(err, ErrTraceTooShort) || errors.Is(err, ErrZeroDuration) {
				dropped[i] = true
				return nil
			}
			return err
		}
		smoothed[i] = sm
		return nil
	})
	if err != nil {
		return nil, rep, err
	}
	out := make([]*trace.Trace, 0, len(traces))
	for i, sm := range smoothed {
		if dropped[i] {
			rep.Dropped = append(rep.Dropped, traces[i].User)
			continue
		}
		out = append(out, sm)
	}
	ds, err := trace.NewDataset(out)
	if err != nil {
		return nil, rep, fmt.Errorf("core: assemble dataset: %w", err)
	}
	return ds, rep, nil
}

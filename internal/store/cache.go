package store

import (
	"container/list"
	"sync"

	"mobipriv/internal/trace"
)

// blockKey identifies one block within a store: segment index plus
// block index in that segment's footer.
type blockKey struct {
	seg   int
	block int
}

// cachedBlock is a decoded block held by the cache. The points slice is
// shared between the cache and every scan that hits it, so consumers
// must treat it as read-only.
type cachedBlock struct {
	user string
	pts  []trace.Point
}

// blockCache is a mutex-guarded LRU over decoded blocks, bounding the
// memory a scan-heavy workload re-decodes. Capacity is counted in
// blocks.
type blockCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheItem
	items map[blockKey]*list.Element
	hits  int64
	miss  int64
}

type cacheItem struct {
	key blockKey
	val cachedBlock
}

func newBlockCache(capacity int) *blockCache {
	if capacity <= 0 {
		return nil // caching disabled
	}
	return &blockCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[blockKey]*list.Element, capacity),
	}
}

// get returns the cached block and bumps its recency.
func (c *blockCache) get(k blockKey) (cachedBlock, bool) {
	if c == nil {
		return cachedBlock{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.miss++
		return cachedBlock{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// put inserts a decoded block, evicting the least recently used entry
// when over capacity.
func (c *blockCache) put(k blockKey, v cachedBlock) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheItem).val = v
		return
	}
	c.items[k] = c.ll.PushFront(&cacheItem{key: k, val: v})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheItem).key)
	}
}

// stats returns cumulative hit/miss counters.
func (c *blockCache) stats() (hits, miss int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}

package store

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/obs"
	"mobipriv/internal/par"
	"mobipriv/internal/trace"
)

// Store is an opened on-disk dataset. Segment footers are loaded
// eagerly (they are small); block payloads are read on demand with
// pread, so a Store is safe for concurrent scans and never holds more
// than the cached blocks in memory.
type Store struct {
	dir  string
	man  Manifest
	segs []*segReader
	// shards indexes segs by hash shard: shards[sh] lists the indices
	// of that shard's segments across all generations, oldest first.
	// Every scan walks one shard per goroutine in that order, so a
	// shard's generations are always read as one log and first-wins
	// dedup stays independent of the worker count.
	shards [][]int
	cache  *blockCache

	closed atomic.Bool

	// Lifetime totals across every scan on this Store, feeding
	// RegisterMetrics; per-scan deltas live in ScanStats.
	nPruned  atomic.Int64
	nDecoded atomic.Int64
	nBytes   atomic.Int64
}

// segReader is one opened segment: its file handle plus decoded footer.
type segReader struct {
	file    string
	gen     int
	f       *os.File
	entries []blockEntry
}

// OpenOptions tunes Open.
type OpenOptions struct {
	// CacheBlocks is the LRU block-cache capacity in decoded blocks
	// (default 256; negative disables caching).
	CacheBlocks int
}

// Open opens the store directory at path with default options.
func Open(path string) (*Store, error) { return OpenWith(path, OpenOptions{}) }

// OpenWith opens the store directory at path.
func OpenWith(path string, opts OpenOptions) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(path, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	man, err := parseManifest(data)
	if err != nil {
		return nil, err
	}
	cacheCap := opts.CacheBlocks
	if cacheCap == 0 {
		cacheCap = 256
	}
	s := &Store{dir: path, man: man, shards: make([][]int, man.Shards), cache: newBlockCache(cacheCap)}
	// Group the segments by shard, generations oldest first, so every
	// scan reads a shard's generations as one log. parseManifest
	// guarantees the (shard, gen) pairs are in range and unique; sorting
	// here frees readers from assuming any manifest ordering.
	order := make([]int, len(man.Segments))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return man.Segments[order[a]].Gen < man.Segments[order[b]].Gen })
	for _, mi := range order {
		si := man.Segments[mi]
		seg, err := openSegment(filepath.Join(path, si.File), si.Size)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("segment %s: %w", si.File, err)
		}
		seg.gen = si.Gen
		s.shards[si.Shard] = append(s.shards[si.Shard], len(s.segs))
		s.segs = append(s.segs, seg)
	}
	return s, nil
}

// openSegment opens one segment file, verifying magics and loading the
// footer. committedSize, when positive, is the byte size the manifest
// committed: bytes past it are a torn tail from a crashed later session
// and are never read — the logical end of the segment is the committed
// size, wherever the physical file ends. 0 (a version-1 manifest,
// which recorded no sizes) trusts the file size.
func openSegment(path string, committedSize int64) (*segReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if committedSize > 0 {
		if size < committedSize {
			f.Close()
			return nil, corruptf("segment is %d bytes, manifest committed %d", size, committedSize)
		}
		size = committedSize
	}
	minSize := int64(len(magicHeader)) + 16
	if size < minSize {
		f.Close()
		return nil, corruptf("segment is %d bytes, smaller than the %d-byte envelope", size, minSize)
	}
	var head [len(magicHeader)]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		f.Close()
		return nil, corruptf("read header: %v", err)
	}
	if string(head[:]) != magicHeader {
		f.Close()
		return nil, corruptf("bad segment magic %q", head)
	}
	var trailer [16]byte
	if _, err := f.ReadAt(trailer[:], size-16); err != nil {
		f.Close()
		return nil, corruptf("read trailer: %v", err)
	}
	if string(trailer[8:]) != magicTrailer {
		f.Close()
		return nil, corruptf("bad trailer magic %q (truncated segment?)", trailer[8:])
	}
	footerLen := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if footerLen < 0 || footerLen > size-minSize {
		f.Close()
		return nil, corruptf("footer length %d out of range for %d-byte segment", footerLen, size)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(footer, size-16-footerLen); err != nil {
		f.Close()
		return nil, corruptf("read footer: %v", err)
	}
	entries, err := decodeFooter(footer)
	if err != nil {
		f.Close()
		return nil, err
	}
	dataEnd := uint64(size - 16 - footerLen)
	for i, e := range entries {
		// Length is checked on its own first so a huge corrupt value
		// cannot overflow offset+length past the bound.
		if e.offset < uint64(len(magicHeader)) || e.length > dataEnd || e.offset > dataEnd-e.length {
			f.Close()
			return nil, corruptf("block %d spans [%d,%d) outside data region [%d,%d)",
				i, e.offset, e.offset+e.length, len(magicHeader), dataEnd)
		}
	}
	return &segReader{file: filepath.Base(path), f: f, entries: entries}, nil
}

// Manifest returns the store's manifest.
func (s *Store) Manifest() Manifest { return s.man }

// Bounds returns the dataset bounding box recorded in the manifest
// (empty for an empty store).
func (s *Store) Bounds() geo.BBox {
	if len(s.man.BBoxE7) != 4 {
		return geo.BBox{}
	}
	return geo.NewBBox(
		geo.Point{Lat: dequantize(s.man.BBoxE7[0]), Lng: dequantize(s.man.BBoxE7[1])},
		geo.Point{Lat: dequantize(s.man.BBoxE7[2]), Lng: dequantize(s.man.BBoxE7[3])},
	)
}

// TimeSpan returns the dataset time range recorded in the manifest; ok
// is false for an empty store.
func (s *Store) TimeSpan() (from, to time.Time, ok bool) {
	if s.man.Points == 0 {
		return time.Time{}, time.Time{}, false
	}
	return fromMicros(s.man.MinTimeUS), fromMicros(s.man.MaxTimeUS), true
}

// Close releases the segment file handles.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var first error
	for _, seg := range s.segs {
		if seg == nil {
			continue
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ScanOptions filters and tunes a Scan. The zero value scans
// everything serially (or with the worker budget already carried by
// the context).
type ScanOptions struct {
	// BBox keeps only points inside the box; blocks whose footer bbox
	// is disjoint from it are pruned without being read.
	BBox geo.BBox

	// From/To keep only points with From <= t <= To when non-zero;
	// blocks entirely outside the window are pruned without being read.
	From, To time.Time

	// Users keeps only the listed users (nil means all). Non-matching
	// blocks are pruned without being read.
	Users []string

	// Workers overrides the context's internal/par worker budget for
	// this scan: 0 inherits, negative means one worker per CPU.
	Workers int

	// NoCache keeps this scan from inserting decoded blocks into the
	// LRU cache — for one-shot full passes (Load) that would only
	// evict useful entries and pin dead memory. Existing cache entries
	// are still used.
	NoCache bool

	// Stats, when non-nil, receives the scan's pruning and cache
	// counters (written atomically; read after Scan returns).
	Stats *ScanStats
}

// ScanStats reports what a Scan did — the observable proof that
// pruning skipped work.
type ScanStats struct {
	BlocksTotal   int64 // blocks considered across all segments
	BlocksPruned  int64 // skipped on footer stats without being read
	BlocksDecoded int64 // read from disk and decoded
	CacheHits     int64 // served from the LRU block cache
	Points        int64 // points yielded to fn after point filters

	// PeakBufferedUsers is the high-water mark of multi-block users
	// being assembled at once — ScanTraces only, at most one per
	// shard goroutine; a plain Scan (and any single-block user)
	// buffers nothing and leaves it 0.
	PeakBufferedUsers int64
}

// ScanFunc receives one block-run of points: the user and a time-sorted
// slice. A user split across several blocks (a streamed append) is
// delivered in several calls. The slice may be shared with the block
// cache: treat it as read-only and do not retain it.
type ScanFunc func(user string, pts []trace.Point) error

// Scan streams matching block-runs to fn, fanning the store's shards
// across internal/par workers. fn is called concurrently (one goroutine
// per shard at most) and must be safe for that; within a shard, blocks
// arrive generation by generation (oldest first), each in file order.
// Block pruning uses only footer stats; the per-point filters make the
// result exact.
func (s *Store) Scan(ctx context.Context, opts ScanOptions, fn ScanFunc) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if opts.Workers != 0 {
		ctx = par.WithWorkers(ctx, opts.Workers)
	}
	users := userSet(opts.Users)
	stats := opts.Stats
	if stats == nil {
		stats = &ScanStats{}
	}
	err := par.Map(ctx, len(s.shards), func(sh int) error {
		for _, si := range s.shards[sh] {
			seg := s.segs[si]
			for bi := range seg.entries {
				if err := ctx.Err(); err != nil {
					return err
				}
				e := &seg.entries[bi]
				atomic.AddInt64(&stats.BlocksTotal, 1)
				if s.pruned(e, users, opts) {
					atomic.AddInt64(&stats.BlocksPruned, 1)
					s.nPruned.Add(1)
					continue
				}
				user, pts, err := s.block(si, bi, stats, opts.NoCache)
				if err != nil {
					return fmt.Errorf("segment %s block %d: %w", seg.file, bi, err)
				}
				pts = filterPoints(pts, opts)
				if len(pts) == 0 {
					continue
				}
				atomic.AddInt64(&stats.Points, int64(len(pts)))
				if err := fn(user, pts); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return err
}

// pruned reports whether a block's footer stats prove it matches
// nothing — the fast path that skips reading the block entirely.
func (s *Store) pruned(e *blockEntry, users map[string]bool, opts ScanOptions) bool {
	if users != nil && !users[e.user] {
		return true
	}
	if !opts.From.IsZero() && e.maxT < toMicros(opts.From) {
		return true
	}
	if !opts.To.IsZero() && e.minT > toMicros(opts.To) {
		return true
	}
	if !opts.BBox.IsEmpty() {
		if dequantize(e.maxLat) < opts.BBox.MinLat || dequantize(e.minLat) > opts.BBox.MaxLat ||
			dequantize(e.maxLng) < opts.BBox.MinLng || dequantize(e.minLng) > opts.BBox.MaxLng {
			return true
		}
	}
	return false
}

// Matches reports whether a point passes the exact per-point filters
// (From <= t <= To, bbox containment). It is the single definition of
// the filter semantics: pruned store scans apply it after block
// pruning, and cliutil.FilterDataset applies it to in-memory datasets,
// so a filtered batch run and a filtered store-native run always
// select the same points. The user filter is per-trace, not per-point,
// and is not part of this predicate.
func (o ScanOptions) Matches(p trace.Point) bool {
	if !o.From.IsZero() && p.Time.Before(o.From) {
		return false
	}
	if !o.To.IsZero() && p.Time.After(o.To) {
		return false
	}
	if !o.BBox.IsEmpty() && !o.BBox.Contains(p.Point) {
		return false
	}
	return true
}

// filterPoints applies the exact per-point filters, copying only when
// something is dropped.
func filterPoints(pts []trace.Point, opts ScanOptions) []trace.Point {
	if opts.From.IsZero() && opts.To.IsZero() && opts.BBox.IsEmpty() {
		return pts
	}
	all := true
	for _, p := range pts {
		if !opts.Matches(p) {
			all = false
			break
		}
	}
	if all {
		return pts
	}
	out := make([]trace.Point, 0, len(pts))
	for _, p := range pts {
		if opts.Matches(p) {
			out = append(out, p)
		}
	}
	return out
}

// block returns the decoded block, via the LRU cache when possible. The
// CRC recorded in the footer is verified before decoding.
func (s *Store) block(seg, bi int, stats *ScanStats, noCache bool) (string, []trace.Point, error) {
	key := blockKey{seg: seg, block: bi}
	if cb, ok := s.cache.get(key); ok {
		atomic.AddInt64(&stats.CacheHits, 1)
		return cb.user, cb.pts, nil
	}
	sr := s.segs[seg]
	e := &sr.entries[bi]
	data := make([]byte, e.length)
	if _, err := sr.f.ReadAt(data, int64(e.offset)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return "", nil, corruptf("block truncated: %v", err)
		}
		return "", nil, err
	}
	if crc := blockCRC(data); crc != e.crc {
		return "", nil, corruptf("CRC mismatch (stored %08x, computed %08x)", e.crc, crc)
	}
	user, pts, err := decodeBlock(data)
	if err != nil {
		return "", nil, err
	}
	if user != e.user || len(pts) != e.points {
		return "", nil, corruptf("block header (%q, %d pts) disagrees with footer (%q, %d pts)",
			user, len(pts), e.user, e.points)
	}
	atomic.AddInt64(&stats.BlocksDecoded, 1)
	s.nDecoded.Add(1)
	s.nBytes.Add(int64(len(data)))
	if !noCache {
		s.cache.put(key, cachedBlock{user: user, pts: pts})
	}
	return user, pts, nil
}

// CacheStats returns the cumulative block-cache hit/miss counters.
func (s *Store) CacheStats() (hits, misses int64) { return s.cache.stats() }

// RegisterMetrics publishes the store's lifetime read counters on reg
// under stable mstore_* names. The series are scrape-time views over
// the same atomics the per-scan ScanStats are folded from, so a JSON
// stats endpoint and /metrics backed by the same Store cannot
// disagree. Safe to call at any time.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("mstore_blocks_pruned_total",
		"Blocks skipped on footer stats without being read.",
		func() float64 { return float64(s.nPruned.Load()) })
	reg.CounterFunc("mstore_blocks_decoded_total",
		"Blocks read from disk, CRC-checked and decoded.",
		func() float64 { return float64(s.nDecoded.Load()) })
	reg.CounterFunc("mstore_bytes_read_total",
		"Encoded block bytes read from segment files.",
		func() float64 { return float64(s.nBytes.Load()) })
	reg.CounterFunc("mstore_cache_hits_total",
		"Block reads served from the LRU block cache.",
		func() float64 { h, _ := s.cache.stats(); return float64(h) })
	reg.CounterFunc("mstore_cache_misses_total",
		"Block reads that missed the LRU block cache.",
		func() float64 { _, m := s.cache.stats(); return float64(m) })
}

// Load materializes the whole store as a validated trace.Dataset — the
// compatibility path into every batch consumer. Blocks of a fragmented
// user are merged and time-sorted; observations that collapsed onto the
// same on-disk microsecond across blocks keep only the first, so any
// store the Writer accepted loads cleanly. Load fans segments across
// one worker per CPU and bypasses the block cache (a one-shot pass
// would only pin dead memory).
func (s *Store) Load(ctx context.Context) (*trace.Dataset, error) {
	var mu sync.Mutex
	byUser := make(map[string][]trace.Point, s.man.Users)
	err := s.Scan(ctx, ScanOptions{Workers: runtime.NumCPU(), NoCache: true}, func(user string, pts []trace.Point) error {
		mu.Lock()
		byUser[user] = append(byUser[user], pts...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	users := make([]string, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Strings(users)
	traces := make([]*trace.Trace, len(users))
	if err := par.Map(par.WithWorkers(ctx, runtime.NumCPU()), len(users), func(i int) error {
		pts := byUser[users[i]]
		sort.SliceStable(pts, func(a, b int) bool { return pts[a].Time.Before(pts[b].Time) })
		tr, err := trace.New(users[i], dedupeMicros(pts))
		if err != nil {
			return fmt.Errorf("store: user %q: %w", users[i], err)
		}
		traces[i] = tr
		return nil
	}); err != nil {
		return nil, err
	}
	return trace.NewDataset(traces)
}

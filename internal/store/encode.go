package store

import (
	"encoding/binary"
	"fmt"

	"mobipriv/internal/trace"
)

// blockStats are the per-block footer statistics used for pruning.
// Times are Unix microseconds; coordinates are fixed-point CoordScale
// units.
type blockStats struct {
	user   string
	points int
	minT   int64
	maxT   int64
	minLat int64
	maxLat int64
	minLng int64
	maxLng int64
}

// blockEntry is one footer record: where a block lives plus its stats.
type blockEntry struct {
	offset uint64
	length uint64
	crc    uint32
	blockStats
}

// appendBlock encodes one block — a run of pts for a single user — onto
// dst and returns the grown slice together with the block's stats. The
// caller must pass pts sorted by time; the encoder stores the first
// value of each column as a zigzag varint and every subsequent value as
// a zigzag varint delta.
func appendBlock(dst []byte, user string, pts []trace.Point) ([]byte, blockStats) {
	st := blockStats{user: user, points: len(pts)}
	dst = binary.AppendUvarint(dst, uint64(len(user)))
	dst = append(dst, user...)
	dst = binary.AppendUvarint(dst, uint64(len(pts)))

	var prev int64
	for i, p := range pts {
		us := toMicros(p.Time)
		dst = binary.AppendVarint(dst, us-prev)
		prev = us
		if i == 0 || us < st.minT {
			st.minT = us
		}
		if i == 0 || us > st.maxT {
			st.maxT = us
		}
	}
	prev = 0
	for i, p := range pts {
		q := quantize(p.Lat)
		dst = binary.AppendVarint(dst, q-prev)
		prev = q
		if i == 0 || q < st.minLat {
			st.minLat = q
		}
		if i == 0 || q > st.maxLat {
			st.maxLat = q
		}
	}
	prev = 0
	for i, p := range pts {
		q := quantize(p.Lng)
		dst = binary.AppendVarint(dst, q-prev)
		prev = q
		if i == 0 || q < st.minLng {
			st.minLng = q
		}
		if i == 0 || q > st.maxLng {
			st.maxLng = q
		}
	}
	return dst, st
}

// corruptf builds an ErrCorrupt with context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// varintReader decodes varints from an in-memory buffer with bounds
// checking that surfaces as ErrCorrupt.
type varintReader struct {
	buf []byte
	pos int
	err error
}

func (r *varintReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.err = corruptf("bad uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *varintReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.err = corruptf("bad varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *varintReader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.err = corruptf("truncated field at offset %d (want %d bytes, have %d)", r.pos, n, len(r.buf)-r.pos)
		return nil
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

// decodeBlock decodes one block previously written by appendBlock. The
// returned points are freshly allocated.
func decodeBlock(data []byte) (string, []trace.Point, error) {
	r := &varintReader{buf: data}
	user := string(r.bytes(r.uvarint()))
	count := r.uvarint()
	if r.err != nil {
		return "", nil, r.err
	}
	// A conservative lower bound: every point contributes at least one
	// byte to each of the three columns, so a count exceeding a third
	// of the remaining bytes is corruption — checked before allocating.
	if rest := uint64(len(data) - r.pos); count > rest || count*3 > rest {
		return "", nil, corruptf("block count %d exceeds payload (%d bytes left)", count, len(data)-r.pos)
	}
	pts := make([]trace.Point, count)
	var prev int64
	for i := range pts {
		prev += r.varint()
		pts[i].Time = fromMicros(prev)
	}
	prev = 0
	for i := range pts {
		prev += r.varint()
		pts[i].Lat = dequantize(prev)
	}
	prev = 0
	for i := range pts {
		prev += r.varint()
		pts[i].Lng = dequantize(prev)
	}
	if r.err != nil {
		return "", nil, r.err
	}
	if r.pos != len(data) {
		return "", nil, corruptf("block has %d trailing bytes", len(data)-r.pos)
	}
	return user, pts, nil
}

// appendFooter encodes the footer: the block count, then one entry per
// block.
func appendFooter(dst []byte, entries []blockEntry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, e.offset)
		dst = binary.AppendUvarint(dst, e.length)
		dst = binary.AppendUvarint(dst, uint64(e.crc))
		dst = binary.AppendUvarint(dst, uint64(len(e.user)))
		dst = append(dst, e.user...)
		dst = binary.AppendUvarint(dst, uint64(e.points))
		dst = binary.AppendVarint(dst, e.minT)
		dst = binary.AppendVarint(dst, e.maxT)
		dst = binary.AppendVarint(dst, e.minLat)
		dst = binary.AppendVarint(dst, e.maxLat)
		dst = binary.AppendVarint(dst, e.minLng)
		dst = binary.AppendVarint(dst, e.maxLng)
	}
	return dst
}

// decodeFooter decodes a footer written by appendFooter.
func decodeFooter(data []byte) ([]blockEntry, error) {
	r := &varintReader{buf: data}
	count := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if count > uint64(len(data)) { // every entry takes >1 byte
		return nil, corruptf("footer block count %d exceeds footer size %d", count, len(data))
	}
	entries := make([]blockEntry, count)
	for i := range entries {
		e := &entries[i]
		e.offset = r.uvarint()
		e.length = r.uvarint()
		e.crc = uint32(r.uvarint())
		e.user = string(r.bytes(r.uvarint()))
		e.points = int(r.uvarint())
		e.minT = r.varint()
		e.maxT = r.varint()
		e.minLat = r.varint()
		e.maxLat = r.varint()
		e.minLng = r.varint()
		e.maxLng = r.varint()
		if r.err != nil {
			return nil, r.err
		}
	}
	if r.pos != len(data) {
		return nil, corruptf("footer has %d trailing bytes", len(data)-r.pos)
	}
	return entries, nil
}

package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mobipriv/internal/trace"
)

// Writer builds one generation of a store directory. Points are
// buffered per user and flushed to the user's shard as columnar blocks
// whenever a buffer reaches Options.BlockPoints; Close flushes the
// remainder, writes and fsyncs the footers, and commits the generation
// with an atomic manifest swap. The store's readable contents change
// only at that commit: a crash anywhere before it leaves the previous
// manifest (and only the previous data) visible.
//
// Writer is safe for concurrent use, so a streaming service can append
// from several shard goroutines into one store.
type Writer struct {
	dir  string
	opts Options
	fsi  FS
	gen  int // generation this session writes (== committed generations at open)

	mu     sync.Mutex
	segs   []*segWriter             // one per shard, created lazily on first block
	bufs   map[string][]trace.Point // pending points per user
	sealed map[string]bool          // users added via Add (whole traces)
	users  map[string]bool          // every user appended this session
	points int
	closed bool

	prev      *Manifest       // committed manifest carried across a reopen; nil for a fresh store
	prevUsers map[string]bool // users present in committed generations
	rec       RecoveryStats

	// Lifetime write totals, for WriterStats / sink metrics.
	wroteBlocks int64
	wroteBytes  int64
	wrotePoints int64
}

// WriterStats is a snapshot of a Writer's lifetime output — what a
// streaming sink has durably encoded so far.
type WriterStats struct {
	Blocks int64 // blocks written across all segments
	Bytes  int64 // encoded block bytes written
	Points int64 // points written into blocks
}

// Stats snapshots the Writer's lifetime write counters. Safe for
// concurrent use.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WriterStats{Blocks: w.wroteBlocks, Bytes: w.wroteBytes, Points: w.wrotePoints}
}

// RecoveryStats reports what the recovery pass at OpenAppend found, and
// which generation the writer extends — the counters behind the
// service's store_recovery_runs / store_truncated_tails metrics and the
// generation-count gauge.
type RecoveryStats struct {
	// Runs counts recovery passes: 1 after OpenAppend, 0 after Create.
	Runs int64

	// TruncatedTails counts uncommitted bytes dealt with: segment files
	// a crashed session left behind that the manifest does not claim
	// (removed whole), plus committed files with bytes past their
	// recorded size (truncated back).
	TruncatedTails int64

	// Generation is the number of committed generations at open — the
	// generation number this writer's segments carry.
	Generation int64
}

// Recovery snapshots the writer's recovery counters. Safe for
// concurrent use.
func (w *Writer) Recovery() RecoveryStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rec
}

// segWriter accumulates one segment file of the current generation.
type segWriter struct {
	name    string
	f       File
	offset  uint64
	entries []blockEntry
	users   map[string]bool
	points  int
}

// newWriter assembles a Writer; shards is taken from prev when
// extending an existing store, from opts when fresh.
func newWriter(path string, opts Options, fsi FS, prev *Manifest, prevUsers map[string]bool) *Writer {
	shards, gen := opts.Shards, 0
	if prev != nil {
		shards, gen = prev.Shards, prev.Generations
	}
	if prevUsers == nil {
		prevUsers = make(map[string]bool)
	}
	return &Writer{
		dir:       path,
		opts:      opts,
		fsi:       fsi,
		gen:       gen,
		segs:      make([]*segWriter, shards),
		bufs:      make(map[string][]trace.Point),
		sealed:    make(map[string]bool),
		users:     make(map[string]bool),
		prev:      prev,
		prevUsers: prevUsers,
		rec:       RecoveryStats{Generation: int64(gen)},
	}
}

// Create initializes an empty store at path (a directory that must not
// already contain a store) and returns a Writer for its generation 0.
func Create(path string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	fsi := opts.fs()
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", path, err)
	}
	if _, err := os.Stat(filepath.Join(path, manifestName)); err == nil && !opts.Overwrite {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	// Clear the store's own files — a store being overwritten, or the
	// debris of a build that crashed before its first commit. Nothing
	// else in the directory is touched, so a mistyped path cannot wipe
	// foreign data.
	if _, err := removeStoreFiles(path, fsi); err != nil {
		return nil, err
	}
	return newWriter(path, opts, fsi, nil, nil), nil
}

// OpenAppend opens the store at path for continued ingest: the
// returned Writer starts a new generation of segment files beside the
// committed ones, and Close commits them with an atomic manifest swap.
// A missing store is created fresh (with opts.Shards); an existing one
// keeps its shard count, and opts.Shards is ignored.
//
// Before anything is written, OpenAppend runs a recovery pass over the
// directory: a stale manifest temp file and any segment files the
// committed manifest does not claim (the debris of a crashed session)
// are removed, and committed files holding bytes past their recorded
// size are truncated back to it. Committed data is never touched — the
// pass only ever discards bytes no manifest commit ever claimed. What
// it did is reported by Recovery.
func OpenAppend(path string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	fsi := opts.fs()
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	data, err := os.ReadFile(filepath.Join(path, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		// No committed manifest: a brand-new store, or a session that
		// crashed before its first commit. Recovery is the same either
		// way — clear the debris and start generation 0.
		removed, err := removeStoreFiles(path, fsi)
		if err != nil {
			return nil, err
		}
		w := newWriter(path, opts, fsi, nil, nil)
		w.rec.Runs = 1
		w.rec.TruncatedTails = int64(removed)
		return w, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	man, err := parseManifest(data)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}

	rec := RecoveryStats{Runs: 1, Generation: int64(man.Generations)}
	committed := make(map[string]bool, len(man.Segments))
	for i := range man.Segments {
		committed[man.Segments[i].File] = true
	}
	// Remove what no manifest commit ever claimed: the staging manifest
	// and segment files of a crashed, uncommitted session.
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, fmt.Errorf("store: recover %s: %w", path, err)
	}
	for _, e := range entries {
		name := e.Name()
		if committed[name] {
			continue
		}
		isSeg := isSegmentFileName(name)
		if name != manifestTmpName && !isSeg {
			continue
		}
		if err := fsi.Remove(filepath.Join(path, name)); err != nil {
			return nil, fmt.Errorf("store: recover %s: %w", path, err)
		}
		if isSeg {
			rec.TruncatedTails++
		}
	}
	// Verify every committed segment and truncate torn tails. The users
	// recorded in the committed footers are gathered along the way so
	// Add can keep its whole-trace promise across generations and Close
	// can count users exactly.
	prevUsers := make(map[string]bool, man.Users)
	for i := range man.Segments {
		si := &man.Segments[i]
		full := filepath.Join(path, si.File)
		st, err := os.Stat(full)
		if err != nil {
			return nil, corruptf("committed segment %s: %v", si.File, err)
		}
		if si.Size == 0 {
			// v1 manifests record no size: backfill from the file, which
			// a v1 writer always wrote whole (no reopen existed).
			si.Size = st.Size()
		}
		switch {
		case st.Size() < si.Size:
			return nil, corruptf("committed segment %s is %d bytes, manifest committed %d", si.File, st.Size(), si.Size)
		case st.Size() > si.Size:
			if err := fsi.Truncate(full, si.Size); err != nil {
				return nil, fmt.Errorf("store: recover %s: %w", path, err)
			}
			rec.TruncatedTails++
		}
		seg, err := openSegment(full, si.Size)
		if err != nil {
			return nil, fmt.Errorf("store: recover %s: segment %s: %w", path, si.File, err)
		}
		for bi := range seg.entries {
			prevUsers[seg.entries[bi].user] = true
		}
		seg.f.Close()
	}

	w := newWriter(path, opts, fsi, &man, prevUsers)
	w.rec = rec
	return w, nil
}

// removeStoreFiles deletes a store's own files — manifest, staging
// manifest, and segment files of either naming generation — and nothing
// else. Returns how many segment files it removed.
func removeStoreFiles(path string, fsi FS) (int, error) {
	entries, err := os.ReadDir(path)
	if err != nil {
		return 0, fmt.Errorf("store: clear %s: %w", path, err)
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		isSeg := isSegmentFileName(name)
		if name != manifestName && name != manifestTmpName && !isSeg {
			continue
		}
		if err := fsi.Remove(filepath.Join(path, name)); err != nil {
			return removed, fmt.Errorf("store: clear %s: %w", path, err)
		}
		if isSeg {
			removed++
		}
	}
	return removed, nil
}

// seg returns shard i's segment writer, creating the generation's file
// (and writing its magic header) on first use — shards that receive no
// data this session never produce a file. Caller holds mu.
func (w *Writer) seg(i int) (*segWriter, error) {
	if w.segs[i] != nil {
		return w.segs[i], nil
	}
	name := partName(i, w.gen)
	f, err := w.fsi.Create(filepath.Join(w.dir, name))
	if err != nil {
		return nil, fmt.Errorf("store: create segment: %w", err)
	}
	if _, err := f.Write([]byte(magicHeader)); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: write segment header: %w", err)
	}
	w.segs[i] = &segWriter{name: name, f: f, offset: uint64(len(magicHeader)), users: make(map[string]bool)}
	return w.segs[i], nil
}

// abort closes any opened segment files after a failed build. Caller
// holds mu.
func (w *Writer) abort() {
	for _, s := range w.segs {
		if s != nil {
			s.f.Close()
		}
	}
}

// Add writes one whole trace and seals its user: a second Add (or a
// later Append) for the same user fails with ErrDuplicateUser — as does
// an Add for a user already present in a committed generation, since
// readers would merge the fragments and the trace would no longer be
// whole. The trace must be valid (trace.Trace invariant). Because the
// trace is complete, Add flushes it to the user's shard immediately —
// including the sub-block tail — so a store built from millions of Adds
// (a store-native mechanism run, a compaction) holds no per-user
// residue until Close.
func (w *Writer) Add(tr *trace.Trace) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.sealed[tr.User] || len(w.bufs[tr.User]) > 0 || w.users[tr.User] || w.prevUsers[tr.User] {
		return fmt.Errorf("%w: %q", ErrDuplicateUser, tr.User)
	}
	if err := w.append(tr.User, tr.Points); err != nil {
		return err
	}
	if err := w.flushUser(tr.User, len(w.bufs[tr.User])); err != nil {
		return err
	}
	w.sealed[tr.User] = true
	return nil
}

// Append adds points to a user's open trace, creating it on first use.
// Unlike Add it may be called repeatedly for the same user — the
// streaming-sink entry point — and, on a store opened with OpenAppend,
// for users whose earlier points live in committed generations: readers
// merge the fragments across generations exactly as within one. The
// points of each call must be time-ordered; across calls, Load sorts.
func (w *Writer) Append(user string, pts ...trace.Point) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if user == "" {
		return trace.ErrNoUser
	}
	if w.sealed[user] {
		return fmt.Errorf("%w: %q", ErrDuplicateUser, user)
	}
	return w.append(user, pts)
}

// append buffers pts for user and flushes full blocks. Caller holds mu.
func (w *Writer) append(user string, pts []trace.Point) error {
	for _, p := range pts {
		if err := p.Point.Validate(); err != nil {
			return fmt.Errorf("store: user %q: %w", user, err)
		}
	}
	w.users[user] = true
	w.bufs[user] = append(w.bufs[user], pts...)
	w.points += len(pts)
	for len(w.bufs[user]) >= w.opts.BlockPoints {
		if err := w.flushUser(user, w.opts.BlockPoints); err != nil {
			return err
		}
	}
	return nil
}

// flushUser writes up to n buffered points of user as one block into
// the user's shard. Caller holds mu.
func (w *Writer) flushUser(user string, n int) error {
	buf := w.bufs[user]
	if len(buf) == 0 {
		return nil
	}
	if n > len(buf) {
		n = len(buf)
	}
	pts := buf[:n]
	rest := buf[n:]
	// Blocks are encoded time-sorted so delta streams stay small and
	// block time ranges are tight even when the source (a CSV in
	// arbitrary row order) is not. Observations that collapse onto the
	// same on-disk microsecond keep only the first (mirroring
	// traceio.ReadPLT), since no loaded trace could hold both.
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Time.Before(pts[j].Time) })
	if deduped := dedupeMicros(pts); len(deduped) != len(pts) {
		w.points -= len(pts) - len(deduped)
		pts = deduped
	}

	seg, err := w.seg(shardOf(user, len(w.segs)))
	if err != nil {
		return err
	}
	data, st := appendBlock(nil, user, pts)
	if _, err := seg.f.Write(data); err != nil {
		return fmt.Errorf("store: write block: %w", err)
	}
	seg.entries = append(seg.entries, blockEntry{
		offset:     seg.offset,
		length:     uint64(len(data)),
		crc:        blockCRC(data),
		blockStats: st,
	})
	seg.offset += uint64(len(data))
	seg.users[user] = true
	seg.points += len(pts)
	w.wroteBlocks++
	w.wroteBytes += int64(len(data))
	w.wrotePoints += int64(len(pts))
	if len(rest) == 0 {
		delete(w.bufs, user)
	} else {
		w.bufs[user] = rest
	}
	return nil
}

// flushAll writes every buffered run out as a block, in user order so
// rebuilding the same dataset yields a byte-identical store. Caller
// holds mu.
func (w *Writer) flushAll() error {
	pending := make([]string, 0, len(w.bufs))
	for u := range w.bufs {
		pending = append(pending, u)
	}
	sort.Strings(pending)
	for _, u := range pending {
		if err := w.flushUser(u, len(w.bufs[u])); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes all buffered points to their shards regardless of block
// size, bounding the Writer's memory for long-running streaming sinks
// (many users, each far below BlockPoints). The cost is fragmentation —
// more, smaller blocks — which `mobistore compact` undoes offline.
// Flush does not commit: the data becomes part of the store only at
// Close.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.flushAll()
}

// Close flushes every buffered trace, finalizes and fsyncs each new
// segment (footer, trailer), and commits the generation by writing the
// new manifest to a temp file, fsyncing it, renaming it over
// manifest.json and fsyncing the directory. Until the rename lands, the
// previous manifest — and only the previous data — is what any reader
// or recovery pass sees. Close is idempotent; later writes fail with
// ErrClosed. A session that wrote no data commits no segments and does
// not advance the generation count.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true

	if err := w.flushAll(); err != nil {
		w.abort()
		return err
	}

	man := Manifest{
		Format:     "mstore",
		Version:    Version,
		CoordScale: CoordScale,
		TimeUnit:   "us",
		Shards:     len(w.segs),
	}
	first := true
	if w.prev != nil {
		man.Segments = append(man.Segments, w.prev.Segments...)
		man.Generations = w.prev.Generations
		man.Users = len(w.prevUsers)
		man.Points = w.prev.Points
		if w.prev.Points > 0 {
			man.MinTimeUS, man.MaxTimeUS = w.prev.MinTimeUS, w.prev.MaxTimeUS
			if len(w.prev.BBoxE7) == 4 {
				man.BBoxE7 = append([]int64(nil), w.prev.BBoxE7...)
			}
			first = false
		}
	}
	for u := range w.users {
		if !w.prevUsers[u] {
			man.Users++
		}
	}
	// Points is the sum of stored points: a user whose generations
	// repeat a microsecond stores both copies (readers dedup first-wins
	// on merge), exactly as fragments within one generation do.
	man.Points += w.points

	committedNew := false
	for i, seg := range w.segs {
		if seg == nil {
			continue
		}
		if len(seg.entries) == 0 {
			// Created but holding no block (a failed first write): not
			// part of this commit. Best-effort removal; recovery sweeps
			// whatever remains.
			seg.f.Close()
			w.fsi.Remove(filepath.Join(w.dir, seg.name))
			continue
		}
		footer := appendFooter(nil, seg.entries)
		if _, err := seg.f.Write(footer); err != nil {
			w.abort()
			return fmt.Errorf("store: write footer: %w", err)
		}
		var trailer [16]byte
		binary.LittleEndian.PutUint64(trailer[:8], uint64(len(footer)))
		copy(trailer[8:], magicTrailer)
		if _, err := seg.f.Write(trailer[:]); err != nil {
			w.abort()
			return fmt.Errorf("store: write trailer: %w", err)
		}
		// The segment must be durable before a manifest references it:
		// commit order is segment fsync, then manifest swap.
		if err := seg.f.Sync(); err != nil {
			w.abort()
			return fmt.Errorf("store: sync segment: %w", err)
		}
		if err := seg.f.Close(); err != nil {
			return fmt.Errorf("store: close segment: %w", err)
		}
		committedNew = true
		man.Segments = append(man.Segments, SegmentInfo{
			File:   seg.name,
			Shard:  i,
			Gen:    w.gen,
			Size:   int64(seg.offset) + int64(len(footer)) + 16,
			Blocks: len(seg.entries),
			Users:  len(seg.users),
			Points: seg.points,
		})
		for _, e := range seg.entries {
			if first || e.minT < man.MinTimeUS {
				man.MinTimeUS = e.minT
			}
			if first || e.maxT > man.MaxTimeUS {
				man.MaxTimeUS = e.maxT
			}
			if first {
				man.BBoxE7 = []int64{e.minLat, e.minLng, e.maxLat, e.maxLng}
			} else {
				man.BBoxE7[0] = min(man.BBoxE7[0], e.minLat)
				man.BBoxE7[1] = min(man.BBoxE7[1], e.minLng)
				man.BBoxE7[2] = max(man.BBoxE7[2], e.maxLat)
				man.BBoxE7[3] = max(man.BBoxE7[3], e.maxLng)
			}
			first = false
		}
	}
	if committedNew {
		man.Generations = w.gen + 1
	}
	return w.commitManifest(man)
}

// commitManifest writes man to the staging file, fsyncs it, renames it
// over the live manifest and fsyncs the directory — the commit point.
// Caller holds mu.
func (w *Writer) commitManifest(man Manifest) error {
	data, err := encodeManifest(man)
	if err != nil {
		return err
	}
	tmp := filepath.Join(w.dir, manifestTmpName)
	f, err := w.fsi.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close manifest: %w", err)
	}
	if err := w.fsi.Rename(tmp, filepath.Join(w.dir, manifestName)); err != nil {
		return fmt.Errorf("store: commit manifest: %w", err)
	}
	if err := w.fsi.SyncDir(w.dir); err != nil {
		return fmt.Errorf("store: sync store directory: %w", err)
	}
	return nil
}

// dedupeMicros drops points whose timestamp lands on the same on-disk
// microsecond as the previous one; pts must be time-sorted.
func dedupeMicros(pts []trace.Point) []trace.Point {
	if len(pts) < 2 {
		return pts
	}
	out := pts[:1]
	for _, p := range pts[1:] {
		if toMicros(p.Time) > toMicros(out[len(out)-1].Time) {
			out = append(out, p)
		}
	}
	return out
}

// WriteDataset builds a complete store at path from an in-memory
// dataset — the convenience used by mobigen and the batch tools.
func WriteDataset(path string, d *trace.Dataset, opts Options) error {
	w, err := Create(path, opts)
	if err != nil {
		return err
	}
	for _, tr := range d.Traces() {
		if err := w.Add(tr); err != nil {
			w.abortClose()
			return err
		}
	}
	return w.Close()
}

// abortClose marks the writer closed and releases its files after a
// mid-build failure, leaving the partial (uncommitted) directory behind
// for inspection; the next Create or OpenAppend sweeps it.
func (w *Writer) abortClose() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.closed {
		w.closed = true
		w.abort()
	}
}

package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mobipriv/internal/trace"
)

// Writer builds a store directory. Points are buffered per user and
// flushed to the user's shard as columnar blocks whenever a buffer
// reaches Options.BlockPoints; Close flushes the remainder and writes
// the footers and the manifest. A store is readable only after a
// successful Close.
//
// Writer is safe for concurrent use, so a streaming service can append
// from several shard goroutines into one store.
type Writer struct {
	dir  string
	opts Options

	mu     sync.Mutex
	segs   []*segWriter
	bufs   map[string][]trace.Point // pending points per user
	sealed map[string]bool          // users added via Add (whole traces)
	users  map[string]bool          // every user ever appended
	points int
	closed bool

	// Lifetime write totals, for WriterStats / sink metrics.
	wroteBlocks int64
	wroteBytes  int64
	wrotePoints int64
}

// WriterStats is a snapshot of a Writer's lifetime output — what a
// streaming sink has durably encoded so far.
type WriterStats struct {
	Blocks int64 // blocks written across all segments
	Bytes  int64 // encoded block bytes written
	Points int64 // points written into blocks
}

// Stats snapshots the Writer's lifetime write counters. Safe for
// concurrent use.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WriterStats{Blocks: w.wroteBlocks, Bytes: w.wroteBytes, Points: w.wrotePoints}
}

// segWriter accumulates one segment file.
type segWriter struct {
	f       *os.File
	offset  uint64
	entries []blockEntry
	users   map[string]bool
	points  int
}

// Create initializes an empty store at path (a directory that must not
// already contain a store) and returns a Writer for it.
func Create(path string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", path, err)
	}
	if _, err := os.Stat(filepath.Join(path, manifestName)); err == nil {
		if !opts.Overwrite {
			return nil, fmt.Errorf("%w: %s", ErrExists, path)
		}
		if err := removeStoreFiles(path); err != nil {
			return nil, err
		}
	}
	w := &Writer{
		dir:    path,
		opts:   opts,
		segs:   make([]*segWriter, opts.Shards),
		bufs:   make(map[string][]trace.Point),
		sealed: make(map[string]bool),
		users:  make(map[string]bool),
	}
	for i := range w.segs {
		f, err := os.Create(filepath.Join(path, segName(i)))
		if err != nil {
			w.abort()
			return nil, fmt.Errorf("store: create segment: %w", err)
		}
		if _, err := f.WriteString(magicHeader); err != nil {
			w.abort()
			return nil, fmt.Errorf("store: write segment header: %w", err)
		}
		w.segs[i] = &segWriter{f: f, offset: uint64(len(magicHeader)), users: make(map[string]bool)}
	}
	return w, nil
}

// removeStoreFiles deletes an existing store's manifest and segment
// files — and nothing else, so a mistyped path cannot wipe foreign
// data.
func removeStoreFiles(path string) error {
	if err := os.Remove(filepath.Join(path, manifestName)); err != nil {
		return fmt.Errorf("store: overwrite %s: %w", path, err)
	}
	segs, err := filepath.Glob(filepath.Join(path, "seg-*.blk"))
	if err != nil {
		return fmt.Errorf("store: overwrite %s: %w", path, err)
	}
	for _, seg := range segs {
		if err := os.Remove(seg); err != nil {
			return fmt.Errorf("store: overwrite %s: %w", path, err)
		}
	}
	return nil
}

// abort closes any opened segment files after a failed Create.
func (w *Writer) abort() {
	for _, s := range w.segs {
		if s != nil {
			s.f.Close()
		}
	}
}

// Add writes one whole trace and seals its user: a second Add (or a
// later Append) for the same user fails with ErrDuplicateUser. The
// trace must be valid (trace.Trace invariant). Because the trace is
// complete, Add flushes it to the user's shard immediately — including
// the sub-block tail — so a store built from millions of Adds (a
// store-native mechanism run, a compaction) holds no per-user residue
// until Close.
func (w *Writer) Add(tr *trace.Trace) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.sealed[tr.User] || len(w.bufs[tr.User]) > 0 || w.users[tr.User] {
		return fmt.Errorf("%w: %q", ErrDuplicateUser, tr.User)
	}
	if err := w.append(tr.User, tr.Points); err != nil {
		return err
	}
	if err := w.flushUser(tr.User, len(w.bufs[tr.User])); err != nil {
		return err
	}
	w.sealed[tr.User] = true
	return nil
}

// Append adds points to a user's open trace, creating it on first use.
// Unlike Add it may be called repeatedly for the same user — the
// streaming-sink entry point — but not for a user sealed by Add. The
// points of each call must be time-ordered; across calls, Load sorts.
func (w *Writer) Append(user string, pts ...trace.Point) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if user == "" {
		return trace.ErrNoUser
	}
	if w.sealed[user] {
		return fmt.Errorf("%w: %q", ErrDuplicateUser, user)
	}
	return w.append(user, pts)
}

// append buffers pts for user and flushes full blocks. Caller holds mu.
func (w *Writer) append(user string, pts []trace.Point) error {
	for _, p := range pts {
		if err := p.Point.Validate(); err != nil {
			return fmt.Errorf("store: user %q: %w", user, err)
		}
	}
	w.users[user] = true
	w.bufs[user] = append(w.bufs[user], pts...)
	w.points += len(pts)
	for len(w.bufs[user]) >= w.opts.BlockPoints {
		if err := w.flushUser(user, w.opts.BlockPoints); err != nil {
			return err
		}
	}
	return nil
}

// flushUser writes up to n buffered points of user as one block into
// the user's shard. Caller holds mu.
func (w *Writer) flushUser(user string, n int) error {
	buf := w.bufs[user]
	if len(buf) == 0 {
		return nil
	}
	if n > len(buf) {
		n = len(buf)
	}
	pts := buf[:n]
	rest := buf[n:]
	// Blocks are encoded time-sorted so delta streams stay small and
	// block time ranges are tight even when the source (a CSV in
	// arbitrary row order) is not. Observations that collapse onto the
	// same on-disk microsecond keep only the first (mirroring
	// traceio.ReadPLT), since no loaded trace could hold both.
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Time.Before(pts[j].Time) })
	if deduped := dedupeMicros(pts); len(deduped) != len(pts) {
		w.points -= len(pts) - len(deduped)
		pts = deduped
	}

	seg := w.segs[shardOf(user, len(w.segs))]
	data, st := appendBlock(nil, user, pts)
	if _, err := seg.f.Write(data); err != nil {
		return fmt.Errorf("store: write block: %w", err)
	}
	seg.entries = append(seg.entries, blockEntry{
		offset:     seg.offset,
		length:     uint64(len(data)),
		crc:        blockCRC(data),
		blockStats: st,
	})
	seg.offset += uint64(len(data))
	seg.users[user] = true
	seg.points += len(pts)
	w.wroteBlocks++
	w.wroteBytes += int64(len(data))
	w.wrotePoints += int64(len(pts))
	if len(rest) == 0 {
		delete(w.bufs, user)
	} else {
		w.bufs[user] = rest
	}
	return nil
}

// flushAll writes every buffered run out as a block, in user order so
// rebuilding the same dataset yields a byte-identical store. Caller
// holds mu.
func (w *Writer) flushAll() error {
	pending := make([]string, 0, len(w.bufs))
	for u := range w.bufs {
		pending = append(pending, u)
	}
	sort.Strings(pending)
	for _, u := range pending {
		if err := w.flushUser(u, len(w.bufs[u])); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes all buffered points to their shards regardless of block
// size, bounding the Writer's memory for long-running streaming sinks
// (many users, each far below BlockPoints). The cost is fragmentation —
// more, smaller blocks — which `mobistore compact` undoes offline.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.flushAll()
}

// Close flushes every buffered trace, writes each segment's footer and
// trailer, and writes the manifest, after which the store is complete
// and readable. Close is idempotent; later writes fail with ErrClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true

	if err := w.flushAll(); err != nil {
		w.abort()
		return err
	}

	man := Manifest{
		Format:     "mstore",
		Version:    Version,
		CoordScale: CoordScale,
		TimeUnit:   "us",
		Shards:     len(w.segs),
		Users:      len(w.users),
		Points:     w.points,
	}
	first := true
	for i, seg := range w.segs {
		footer := appendFooter(nil, seg.entries)
		if _, err := seg.f.Write(footer); err != nil {
			w.abort()
			return fmt.Errorf("store: write footer: %w", err)
		}
		var trailer [16]byte
		binary.LittleEndian.PutUint64(trailer[:8], uint64(len(footer)))
		copy(trailer[8:], magicTrailer)
		if _, err := seg.f.Write(trailer[:]); err != nil {
			w.abort()
			return fmt.Errorf("store: write trailer: %w", err)
		}
		if err := seg.f.Close(); err != nil {
			return fmt.Errorf("store: close segment: %w", err)
		}
		man.Segments = append(man.Segments, SegmentInfo{
			File:   segName(i),
			Blocks: len(seg.entries),
			Users:  len(seg.users),
			Points: seg.points,
		})
		for _, e := range seg.entries {
			if first || e.minT < man.MinTimeUS {
				man.MinTimeUS = e.minT
			}
			if first || e.maxT > man.MaxTimeUS {
				man.MaxTimeUS = e.maxT
			}
			if first {
				man.BBoxE7 = []int64{e.minLat, e.minLng, e.maxLat, e.maxLng}
			} else {
				man.BBoxE7[0] = min(man.BBoxE7[0], e.minLat)
				man.BBoxE7[1] = min(man.BBoxE7[1], e.minLng)
				man.BBoxE7[2] = max(man.BBoxE7[2], e.maxLat)
				man.BBoxE7[3] = max(man.BBoxE7[3], e.maxLng)
			}
			first = false
		}
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(w.dir, manifestName), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	return nil
}

// dedupeMicros drops points whose timestamp lands on the same on-disk
// microsecond as the previous one; pts must be time-sorted.
func dedupeMicros(pts []trace.Point) []trace.Point {
	if len(pts) < 2 {
		return pts
	}
	out := pts[:1]
	for _, p := range pts[1:] {
		if toMicros(p.Time) > toMicros(out[len(out)-1].Time) {
			out = append(out, p)
		}
	}
	return out
}

// WriteDataset builds a complete store at path from an in-memory
// dataset — the convenience used by mobigen and the batch tools.
func WriteDataset(path string, d *trace.Dataset, opts Options) error {
	w, err := Create(path, opts)
	if err != nil {
		return err
	}
	for _, tr := range d.Traces() {
		if err := w.Add(tr); err != nil {
			w.abortClose()
			return err
		}
	}
	return w.Close()
}

// abortClose marks the writer closed and releases its files after a
// mid-build failure, leaving the partial (manifest-less) directory
// behind for inspection.
func (w *Writer) abortClose() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.closed {
		w.closed = true
		w.abort()
	}
}

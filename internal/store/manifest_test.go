package store

import (
	"errors"
	"strings"
	"testing"
)

// v2doc builds a well-formed v2 manifest document, then lets a test
// break one thing.
func v2doc(mutate func(*Manifest)) []byte {
	man := Manifest{
		Format: "mstore", Version: 2, CoordScale: CoordScale, TimeUnit: "us",
		Shards: 2, Generations: 2,
		Segments: []SegmentInfo{
			{File: partName(0, 0), Shard: 0, Gen: 0, Size: 128, Blocks: 1, Users: 1, Points: 4},
			{File: partName(1, 1), Shard: 1, Gen: 1, Size: 96, Blocks: 1, Users: 1, Points: 2},
		},
		Users: 2, Points: 6, MinTimeUS: 1, MaxTimeUS: 99, BBoxE7: []int64{1, 2, 3, 4},
	}
	if mutate != nil {
		mutate(&man)
	}
	data, err := encodeManifest(man)
	if err != nil {
		panic(err)
	}
	return data
}

// TestParseManifestRejects pins every structural invariant the v2
// parser enforces: each mutation must surface as ErrCorrupt with a
// message naming the problem.
func TestParseManifestRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Manifest)
		want   string
	}{
		{"generation gap", func(m *Manifest) { m.Segments[1].Gen = 0; m.Segments[1].File = partName(1, 0) }, "generation gap"},
		{"gen out of range", func(m *Manifest) { m.Segments[1].Gen = 5; m.Segments[1].File = partName(1, 5) }, "out of range"},
		{"shard out of range", func(m *Manifest) { m.Segments[1].Shard = 9; m.Segments[1].File = partName(9, 1) }, "out of range"},
		{"duplicate slot", func(m *Manifest) {
			m.Segments[1] = m.Segments[0]
			m.Generations = 1
		}, "duplicate segment"},
		{"non-canonical name", func(m *Manifest) { m.Segments[0].File = "shard-0007.g0.seg" }, "named"},
		{"path in name", func(m *Manifest) { m.Segments[0].File = "../escape.seg" }, "named"},
		{"size too small", func(m *Manifest) { m.Segments[0].Size = 10 }, "envelope"},
		{"empty segment committed", func(m *Manifest) { m.Segments[0].Points = 0 }, "never committed"},
		{"negative generations", func(m *Manifest) { m.Generations = -1 }, "generations"},
		{"segments without generations", func(m *Manifest) { m.Generations = 0 }, "zero generations"},
		{"zero shards", func(m *Manifest) { m.Shards = 0; m.Segments = nil; m.Generations = 0 }, "shards"},
		{"bad bbox arity", func(m *Manifest) { m.BBoxE7 = []int64{1, 2} }, "bbox"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseManifest(v2doc(tc.mutate))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseManifestV1Normalizes pins the upgrade path: a version-1
// document parses into the v2 shape — shard i at generation 0, one
// generation, size unknown — so every reader runs on one code path.
func TestParseManifestV1Normalizes(t *testing.T) {
	doc := []byte(`{"format":"mstore","version":1,"coord_scale":1e7,"time_unit":"us","shards":2,` +
		`"segments":[{"file":"seg-0000.blk","blocks":1,"users":1,"points":3},` +
		`{"file":"seg-0001.blk","blocks":2,"users":2,"points":5}],"users":3,"points":8}`)
	man, err := parseManifest(doc)
	if err != nil {
		t.Fatal(err)
	}
	if man.Generations != 1 {
		t.Errorf("Generations = %d, want 1", man.Generations)
	}
	for i, si := range man.Segments {
		if si.Shard != i || si.Gen != 0 || si.Size != 0 {
			t.Errorf("segment %d normalized to shard=%d gen=%d size=%d, want (%d, 0, 0)", i, si.Shard, si.Gen, si.Size, i)
		}
	}
	// A v1 manifest must list exactly one segment per shard.
	if _, err := parseManifest([]byte(`{"format":"mstore","version":1,"coord_scale":1e7,"time_unit":"us","shards":2,` +
		`"segments":[{"file":"seg-0000.blk","blocks":1,"users":1,"points":3}],"users":1,"points":3}`)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short v1 segment list: err = %v, want ErrCorrupt", err)
	}
}

// TestParseManifestLegacyNamesAfterUpgrade pins that a v2 manifest may
// still reference generation-0 segments under their v1 names — the
// state OpenAppend leaves behind after upgrading a v1 store in place.
func TestParseManifestLegacyNamesAfterUpgrade(t *testing.T) {
	man, err := parseManifest(v2doc(func(m *Manifest) {
		m.Segments[0].File = segName(0)
		m.Segments[0].Size = 200
	}))
	if err != nil {
		t.Fatal(err)
	}
	if man.Segments[0].File != segName(0) {
		t.Fatalf("legacy name rewritten to %q", man.Segments[0].File)
	}
	// Only at generation 0: a later generation was never written by a
	// v1 writer, so the legacy spelling there is corruption.
	if _, err := parseManifest(v2doc(func(m *Manifest) {
		m.Segments[1].File = segName(1)
	})); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("legacy name at gen 1: err = %v, want ErrCorrupt", err)
	}
}

// TestSegmentFileNamePatterns pins which files the recovery pass may
// claim as store debris.
func TestSegmentFileNamePatterns(t *testing.T) {
	for name, want := range map[string]bool{
		"shard-0003.g7.seg":     true,
		"seg-0012.blk":          true,
		"manifest.json":         false,
		"manifest.json.tmp":     false,
		"notes.txt":             false,
		"sub/shard-0000.g0.seg": false,
	} {
		if got := isSegmentFileName(name); got != want {
			t.Errorf("isSegmentFileName(%q) = %v, want %v", name, got, want)
		}
	}
}

// Package store implements mobipriv's native on-disk dataset format: a
// sharded, columnar trace store (".mstore") that lets the batch tools,
// the experiment harness and the streaming sink share datasets larger
// than RAM.
//
// # Layout
//
// A store is a directory:
//
//	data.mstore/
//	  manifest.json   format version, shard list, dataset-level stats
//	  seg-0000.blk    segment (shard) files
//	  seg-0001.blk
//	  ...
//
// Traces are sharded by user: a user's blocks always live in the
// segment numbered splitmix64(fnv64a(user)) mod shards (reusing
// internal/rng's finalizer), so per-user lookups touch one file and
// parallel scans partition naturally by segment.
//
// # Segment format
//
// A segment file is a magic header, a sequence of blocks, a footer and
// a fixed-size trailer:
//
//	"MSTORE1\n" | block* | footer | footerLen uint64le | "MSTEND1\n"
//
// Each block holds one contiguous run of observations of a single user,
// encoded columnarly: the user string, the point count, then all
// timestamps, all latitudes and all longitudes as delta streams.
// Timestamps are Unix microseconds; coordinates are fixed-point degrees
// scaled by CoordScale (1e7, i.e. 1e-7° ≈ 1.1 cm resolution). The first
// value of each stream and every delta is a zigzag varint
// (encoding/binary.AppendVarint).
//
// Quantization is the only lossy step of the format and is pinned by
// tests: loading a store built from a dataset whose timestamps are
// microsecond-aligned and whose coordinates are multiples of 1e-7°
// reproduces the dataset exactly.
//
// # Invariants
//
// Three invariants hold for every store the Writer accepts, and every
// reader relies on them:
//
//   - Shard pinning: a user's blocks all live in the single segment
//     selected by splitmix64(fnv64a(user)) mod shards, so per-user
//     reads touch one file and trace assembly (ScanTraces, Load) never
//     has to coordinate across segments.
//   - First-wins microsecond dedup: observations that collapse onto the
//     same on-disk microsecond keep only the first, both within a block
//     (Writer) and when fragments are merged (Load, ScanTraces). Any
//     store the Writer accepted therefore always loads into valid
//     strictly-increasing traces.
//   - Sorted blocks: each block's points are time-sorted at encode
//     time, so block time ranges are tight and single-block traces
//     need no re-sort on read.
//
// The footer records, per block: byte offset and length, a CRC-32
// (IEEE) of the block bytes, the user, the point count, the time range
// and the bounding box. Readers prune scans on these stats — a block
// whose time range or bbox is disjoint from the scan filter is skipped
// without being read or decoded — and verify the CRC before decoding
// what remains.
//
// # API
//
// Writer builds a store from any point source (a traceio decoder, a
// trace.Dataset, or a live stream) via Add/Append; Open returns a Store
// whose Scan fans segments across internal/par workers with bbox, time
// and user filters plus an LRU block cache, whose ScanTraces streams
// whole assembled traces with bounded buffering (the substrate of
// store-native mechanism runs and streaming compaction — see Compact),
// and whose Load materializes a full trace.Dataset for compatibility
// with the batch pipeline.
package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"mobipriv/internal/rng"
)

// Format constants. Changing any of these is a format break and must
// bump Version.
const (
	// Version is the on-disk format version recorded in the manifest.
	Version = 1

	// CoordScale is the fixed-point coordinate scale: degrees are stored
	// as round(deg * CoordScale) (1e-7° ≈ 1.1 cm at the equator).
	CoordScale = 1e7

	// magicHeader opens every segment file; magicTrailer closes it.
	magicHeader  = "MSTORE1\n"
	magicTrailer = "MSTEND1\n"

	// manifestName is the manifest file inside the store directory.
	manifestName = "manifest.json"
)

// Errors returned by the store. Wrapped with context; match with
// errors.Is.
var (
	// ErrCorrupt reports a structurally damaged store: bad magic,
	// truncated footer, CRC mismatch, or an undecodable block.
	ErrCorrupt = errors.New("store: corrupt store")

	// ErrDuplicateUser reports a second Add for a user already added.
	ErrDuplicateUser = errors.New("store: duplicate user")

	// ErrExists reports Create on a path that already holds a store.
	ErrExists = errors.New("store: store already exists")

	// ErrClosed reports use of a closed Writer or Store.
	ErrClosed = errors.New("store: closed")
)

// Options configures Create.
type Options struct {
	// Shards is the number of segment files (default 8). More shards
	// mean more scan parallelism; users are pinned to shards by hash.
	Shards int

	// BlockPoints caps the number of points per block (default 4096).
	// Smaller blocks prune at a finer grain; larger blocks amortize
	// per-block overhead.
	BlockPoints int

	// Overwrite lets Create replace an existing store at the target
	// path (only the store's own files — manifest and segments — are
	// removed). Without it, Create fails with ErrExists, which is the
	// right default for service sinks that must never clobber data.
	Overwrite bool
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.BlockPoints <= 0 {
		o.BlockPoints = 4096
	}
	return o
}

// Manifest is the JSON document tying a store's segments together.
type Manifest struct {
	Format     string        `json:"format"`  // always "mstore"
	Version    int           `json:"version"` // format version
	CoordScale float64       `json:"coord_scale"`
	TimeUnit   string        `json:"time_unit"` // always "us"
	Shards     int           `json:"shards"`
	Segments   []SegmentInfo `json:"segments"`

	// Dataset-level stats, for info tooling and cheap whole-store
	// pruning.
	Users     int   `json:"users"`
	Points    int   `json:"points"`
	MinTimeUS int64 `json:"min_time_us,omitempty"`
	MaxTimeUS int64 `json:"max_time_us,omitempty"`
	// BBoxE7 is [minLat, minLng, maxLat, maxLng] in fixed-point 1e-7
	// degrees; absent for an empty store.
	BBoxE7 []int64 `json:"bbox_e7,omitempty"`
}

// SegmentInfo summarizes one segment file in the manifest.
type SegmentInfo struct {
	File   string `json:"file"`
	Blocks int    `json:"blocks"`
	Users  int    `json:"users"`
	Points int    `json:"points"`
}

// shardOf routes a user to a segment: FNV-1a of the user identifier
// pushed through the splitmix64 finalizer, mod the shard count.
func shardOf(user string, shards int) int {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(user); i++ {
		h ^= uint64(user[i])
		h *= prime64
	}
	return int(rng.Mix(h) % uint64(shards))
}

// quantize converts degrees to fixed-point CoordScale units.
func quantize(deg float64) int64 { return int64(math.Round(deg * CoordScale)) }

// dequantize converts fixed-point units back to degrees.
func dequantize(q int64) float64 { return float64(q) / CoordScale }

// toMicros converts a timestamp to the on-disk microsecond epoch.
func toMicros(t time.Time) int64 { return t.UnixMicro() }

// fromMicros converts an on-disk timestamp back to a UTC time.Time.
func fromMicros(us int64) time.Time { return time.UnixMicro(us).UTC() }

// blockCRC is the checksum over a block's encoded bytes.
func blockCRC(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// segName names the i-th segment file.
func segName(i int) string { return fmt.Sprintf("seg-%04d.blk", i) }

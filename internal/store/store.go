// Package store implements mobipriv's native on-disk dataset format: a
// sharded, columnar trace store (".mstore") that lets the batch tools,
// the experiment harness and the streaming sink share datasets larger
// than RAM.
//
// # Layout
//
// A store is a directory:
//
//	data.mstore/
//	  manifest.json        format version, segment list, dataset stats
//	  shard-0000.g0.seg    shard 0, generation 0
//	  shard-0001.g0.seg    shard 1, generation 0
//	  shard-0000.g1.seg    shard 0, generation 1 (a later append session)
//	  ...
//
// Traces are sharded by user: a user's blocks always live in the shard
// numbered splitmix64(fnv64a(user)) mod shards (reusing internal/rng's
// finalizer), so per-user lookups touch one shard's files and parallel
// scans partition naturally by shard.
//
// A shard may span several generations: every append session opened
// with OpenAppend writes a fresh generation of segment files beside the
// committed ones, and readers scan all generations of a shard, oldest
// first, as one log. Empty segments are never committed, so a shard (or
// a whole generation's shard) with no data simply has no file.
//
// # Durability
//
// A store becomes readable — and a new generation becomes part of it —
// only through an atomic manifest commit: segment files are written and
// fsynced first, then the new manifest is written to a temp file,
// fsynced, renamed over manifest.json, and the directory is fsynced.
// The manifest is therefore always either the old one or the new one.
//
// OpenAppend runs a recovery pass before writing: files a crashed
// session left behind (segment files the manifest does not list, a
// stale manifest temp file) are removed, and any bytes past a committed
// segment's recorded size are truncated. Readers independently ignore
// bytes past the committed size, so a torn tail is never read, let
// alone decoded. RecoveryStats (and the service's store_recovery_runs /
// store_truncated_tails counters) make the pass observable.
//
// # Segment format
//
// A segment file is a magic header, a sequence of blocks, a footer and
// a fixed-size trailer:
//
//	"MSTORE1\n" | block* | footer | footerLen uint64le | "MSTEND1\n"
//
// Each block holds one contiguous run of observations of a single user,
// encoded columnarly: the user string, the point count, then all
// timestamps, all latitudes and all longitudes as delta streams.
// Timestamps are Unix microseconds; coordinates are fixed-point degrees
// scaled by CoordScale (1e7, i.e. 1e-7° ≈ 1.1 cm resolution). The first
// value of each stream and every delta is a zigzag varint
// (encoding/binary.AppendVarint).
//
// Quantization is the only lossy step of the format and is pinned by
// tests: loading a store built from a dataset whose timestamps are
// microsecond-aligned and whose coordinates are multiples of 1e-7°
// reproduces the dataset exactly.
//
// # Invariants
//
// Three invariants hold for every store the Writer accepts, and every
// reader relies on them:
//
//   - Shard pinning: a user's blocks all live in the single shard
//     selected by splitmix64(fnv64a(user)) mod shards — in every
//     generation — so per-user reads touch one shard's files and trace
//     assembly (ScanTraces, Load) never coordinates across shards.
//   - First-wins microsecond dedup: observations that collapse onto the
//     same on-disk microsecond keep only the first, within a block
//     (Writer) and when fragments are merged (Load, ScanTraces) —
//     across blocks and across generations alike, oldest first. Any
//     store the Writer accepted therefore always loads into valid
//     strictly-increasing traces.
//   - Sorted blocks: each block's points are time-sorted at encode
//     time, so block time ranges are tight and single-block traces
//     need no re-sort on read.
//
// The footer records, per block: byte offset and length, a CRC-32
// (IEEE) of the block bytes, the user, the point count, the time range
// and the bounding box. Readers prune scans on these stats — a block
// whose time range or bbox is disjoint from the scan filter is skipped
// without being read or decoded — and verify the CRC before decoding
// what remains.
//
// # API
//
// Writer builds a store from any point source (a traceio decoder, a
// trace.Dataset, or a live stream) via Add/Append; Open returns a Store
// whose Scan fans segments across internal/par workers with bbox, time
// and user filters plus an LRU block cache, whose ScanTraces streams
// whole assembled traces with bounded buffering (the substrate of
// store-native mechanism runs and streaming compaction — see Compact),
// and whose Load materializes a full trace.Dataset for compatibility
// with the batch pipeline.
package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"mobipriv/internal/rng"
)

// Format constants. Changing any of these is a format break and must
// bump Version.
const (
	// Version is the on-disk format version recorded in the manifest.
	// Version 2 added generation-numbered segments, per-segment
	// committed sizes and the atomic manifest commit; version-1 stores
	// are still read (and upgraded in place by OpenAppend).
	Version = 2

	// CoordScale is the fixed-point coordinate scale: degrees are stored
	// as round(deg * CoordScale) (1e-7° ≈ 1.1 cm at the equator).
	CoordScale = 1e7

	// magicHeader opens every segment file; magicTrailer closes it.
	magicHeader  = "MSTORE1\n"
	magicTrailer = "MSTEND1\n"

	// manifestName is the manifest file inside the store directory;
	// manifestTmpName is the staging file a commit renames over it.
	manifestName    = "manifest.json"
	manifestTmpName = manifestName + ".tmp"
)

// Errors returned by the store. Wrapped with context; match with
// errors.Is.
var (
	// ErrCorrupt reports a structurally damaged store: bad magic,
	// truncated footer, CRC mismatch, or an undecodable block.
	ErrCorrupt = errors.New("store: corrupt store")

	// ErrDuplicateUser reports a second Add for a user already added.
	ErrDuplicateUser = errors.New("store: duplicate user")

	// ErrExists reports Create on a path that already holds a store.
	ErrExists = errors.New("store: store already exists")

	// ErrClosed reports use of a closed Writer or Store.
	ErrClosed = errors.New("store: closed")
)

// Options configures Create.
type Options struct {
	// Shards is the number of segment files (default 8). More shards
	// mean more scan parallelism; users are pinned to shards by hash.
	Shards int

	// BlockPoints caps the number of points per block (default 4096).
	// Smaller blocks prune at a finer grain; larger blocks amortize
	// per-block overhead.
	BlockPoints int

	// Overwrite lets Create replace an existing store at the target
	// path (only the store's own files — manifest and segments — are
	// removed). Without it, Create fails with ErrExists. Service sinks
	// that must never clobber data use OpenAppend instead, which
	// extends an existing store with a new generation.
	Overwrite bool

	// FS overrides the filesystem the Writer performs its mutating
	// operations through (segment and manifest writes, the atomic
	// manifest rename, recovery removals/truncations). Nil means the
	// real OS filesystem; tests inject storetest.NewFaultFS to simulate
	// crashes and torn writes at every operation boundary.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.BlockPoints <= 0 {
		o.BlockPoints = 4096
	}
	return o
}

// Manifest is the JSON document tying a store's segments together.
type Manifest struct {
	Format     string        `json:"format"`  // always "mstore"
	Version    int           `json:"version"` // format version
	CoordScale float64       `json:"coord_scale"`
	TimeUnit   string        `json:"time_unit"` // always "us"
	Shards     int           `json:"shards"`
	Segments   []SegmentInfo `json:"segments"`

	// Generations counts the committed append sessions: every
	// generation in [0, Generations) owns at least one segment. A
	// session that commits no data does not advance the count (its
	// generation number is reused), so there are never gaps. 0 for an
	// empty store; normalized to 1 when reading a version-1 manifest.
	Generations int `json:"generations,omitempty"`

	// Dataset-level stats, for info tooling and cheap whole-store
	// pruning.
	Users     int   `json:"users"`
	Points    int   `json:"points"`
	MinTimeUS int64 `json:"min_time_us,omitempty"`
	MaxTimeUS int64 `json:"max_time_us,omitempty"`
	// BBoxE7 is [minLat, minLng, maxLat, maxLng] in fixed-point 1e-7
	// degrees; absent for an empty store.
	BBoxE7 []int64 `json:"bbox_e7,omitempty"`
}

// SegmentInfo summarizes one segment file in the manifest.
type SegmentInfo struct {
	File  string `json:"file"`
	Shard int    `json:"shard"` // hash shard this segment belongs to
	Gen   int    `json:"gen"`   // generation (append session) that wrote it

	// Size is the committed byte size of the file — header through
	// trailer. Bytes past it are a torn tail from a later crashed
	// session: readers never read them, OpenAppend truncates them.
	// 0 (a version-1 manifest) means "unknown, trust the file size".
	Size int64 `json:"size,omitempty"`

	Blocks int `json:"blocks"`
	Users  int `json:"users"`
	Points int `json:"points"`
}

// shardOf routes a user to a segment via the system-wide placement
// contract (rng.Shard): FNV-1a of the user identifier pushed through
// the splitmix64 finalizer, mod the shard count.
func shardOf(user string, shards int) int {
	return rng.Shard(user, shards)
}

// quantize converts degrees to fixed-point CoordScale units.
func quantize(deg float64) int64 { return int64(math.Round(deg * CoordScale)) }

// dequantize converts fixed-point units back to degrees.
func dequantize(q int64) float64 { return float64(q) / CoordScale }

// toMicros converts a timestamp to the on-disk microsecond epoch.
func toMicros(t time.Time) int64 { return t.UnixMicro() }

// fromMicros converts an on-disk timestamp back to a UTC time.Time.
func fromMicros(us int64) time.Time { return time.UnixMicro(us).UTC() }

// blockCRC is the checksum over a block's encoded bytes.
func blockCRC(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// segName names the i-th segment file of a version-1 store (one
// generation, one segment per shard). Kept for reading old stores.
func segName(i int) string { return fmt.Sprintf("seg-%04d.blk", i) }

// partName names the segment file of one (shard, generation) pair.
func partName(shard, gen int) string { return fmt.Sprintf("shard-%04d.g%d.seg", shard, gen) }

package store

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// benchDataset is the shared workload: the same synthetic dataset is
// scanned from CSV (BenchmarkReadCSV) and from the store
// (BenchmarkStoreScan), so the two throughput numbers are directly
// comparable — the acceptance bar is >= 3x points/s for the store.
func benchDataset(b *testing.B) *trace.Dataset {
	b.Helper()
	return exactDataset(b, 64, 512)
}

func reportPoints(b *testing.B, points int) {
	b.ReportMetric(float64(points)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

func BenchmarkStoreBuild(b *testing.B) {
	d := benchDataset(b)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, fmt.Sprintf("bench-%d.mstore", i))
		if err := WriteDataset(path, d, Options{Shards: 8}); err != nil {
			b.Fatal(err)
		}
	}
	reportPoints(b, d.TotalPoints())
}

func BenchmarkStoreScan(b *testing.B) {
	d := benchDataset(b)
	s := buildStore(b, d, Options{Shards: 8})
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := s.Scan(ctx, ScanOptions{Workers: workers}, func(string, []trace.Point) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
			}
			reportPoints(b, d.TotalPoints())
		})
	}
}

// BenchmarkStoreScanCold measures the no-cache path: every iteration
// reads and decodes all blocks from disk.
func BenchmarkStoreScanCold(b *testing.B) {
	d := benchDataset(b)
	dir := filepath.Join(b.TempDir(), "cold.mstore")
	if err := WriteDataset(dir, d, Options{Shards: 8}); err != nil {
		b.Fatal(err)
	}
	s, err := OpenWith(dir, OpenOptions{CacheBlocks: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Scan(ctx, ScanOptions{Workers: 4}, func(string, []trace.Point) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	reportPoints(b, d.TotalPoints())
}

// BenchmarkScanGenerations prices the reopen-for-append layout: the
// same dataset is scanned from a store written in 8 append sessions
// (gens=8) and from its compacted single-generation form (gens=1), so
// the delta is exactly the cost of stitching generations per shard.
func BenchmarkScanGenerations(b *testing.B) {
	d := benchDataset(b)
	traces := d.Traces()
	const sessions = 8

	multi := filepath.Join(b.TempDir(), "multi.mstore")
	for sess := 0; sess < sessions; sess++ {
		w, err := OpenAppend(multi, Options{Shards: 8})
		if err != nil {
			b.Fatal(err)
		}
		for _, tr := range traces {
			lo := sess * tr.Len() / sessions
			hi := (sess + 1) * tr.Len() / sessions
			if lo == hi {
				continue
			}
			if err := w.Append(tr.User, tr.Points[lo:hi]...); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
	ms, err := Open(multi)
	if err != nil {
		b.Fatal(err)
	}
	defer ms.Close()
	if g := ms.Manifest().Generations; g != sessions {
		b.Fatalf("multi store has %d generations, want %d", g, sessions)
	}

	compacted := filepath.Join(b.TempDir(), "compact.mstore")
	cw, err := Create(compacted, Options{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := Compact(context.Background(), ms, cw); err != nil {
		b.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		b.Fatal(err)
	}
	cs, err := Open(compacted)
	if err != nil {
		b.Fatal(err)
	}
	defer cs.Close()

	ctx := context.Background()
	for name, s := range map[string]*Store{"gens=8": ms, "gens=1": cs} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := s.ScanTraces(ctx, ScanOptions{Workers: 4}, func(*trace.Trace) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
			}
			reportPoints(b, d.TotalPoints())
		})
	}
}

// BenchmarkStoreScanPruned scans with a bbox matching nothing: all the
// work is footer pruning, no block is read.
func BenchmarkStoreScanPruned(b *testing.B) {
	d := benchDataset(b)
	s := buildStore(b, d, Options{Shards: 8})
	ctx := context.Background()
	opts := ScanOptions{
		From: time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC),
		To:   time.Date(2101, 1, 1, 0, 0, 0, 0, time.UTC),
		BBox: geo.NewBBox(geo.Point{Lat: 0, Lng: 0}, geo.Point{Lat: 0.001, Lng: 0.001}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Scan(ctx, opts, func(string, []trace.Point) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	reportPoints(b, d.TotalPoints())
}

// BenchmarkReadCSV is the text-parsing baseline BenchmarkStoreScan is
// compared against.
func BenchmarkReadCSV(b *testing.B) {
	d := benchDataset(b)
	var buf bytes.Buffer
	if err := traceio.WriteCSV(&buf, d); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traceio.ReadCSV(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
	reportPoints(b, d.TotalPoints())
}

package store

import (
	"context"
	"fmt"
)

// MergeStats reports what a Merge pass did across all sources.
type MergeStats struct {
	Sources  int   // stores merged
	Users    int   // traces written
	Points   int64 // points written (after microsecond dedup)
	BlocksIn int64 // blocks read across all sources
}

// Merge streams the contents of each source store into w, in source
// order — the fleet-join operation behind `mobistore merge`. Each
// source is compacted into w trace-by-trace (Compact), so merging
// never materializes a dataset: memory stays bounded by the users in
// flight, however many nodes' sinks are being joined.
//
// Sources must hold disjoint user sets. Per-node stores written behind
// the router satisfy this by construction — the placement contract
// (rng.Shard) sends every user to exactly one node — so a duplicate
// user means the inputs are not a partition of one dataset, and the
// error (wrapping ErrDuplicateUser, naming the user) says which
// assumption broke rather than silently merging two users' points.
func Merge(ctx context.Context, srcs []*Store, w *Writer) (MergeStats, error) {
	var ms MergeStats
	for i, s := range srcs {
		cs, err := Compact(ctx, s, w)
		if err != nil {
			return MergeStats{}, fmt.Errorf("store: merge source %d: %w", i, err)
		}
		ms.Sources++
		ms.Users += cs.Users
		ms.Points += cs.Points
		ms.BlocksIn += cs.BlocksIn
	}
	return ms, nil
}

package store

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"mobipriv/internal/trace"
)

// pairResult is everything one ScanTracesPaired run delivered.
type pairResult struct {
	pairs map[string][2]*trace.Trace // user -> (orig, anon); nil side for one-sided
	stats *PairScanStats
}

// collectPairs drains a paired scan, failing on duplicate deliveries.
func collectPairs(t *testing.T, orig, anon *Store, opts ScanOptions) pairResult {
	t.Helper()
	var mu sync.Mutex
	pairs := make(map[string][2]*trace.Trace)
	st, err := ScanTracesPaired(context.Background(), orig, anon, opts, func(o, a *trace.Trace) error {
		user := ""
		if o != nil {
			user = o.User
		} else {
			user = a.User
		}
		mu.Lock()
		defer mu.Unlock()
		if _, dup := pairs[user]; dup {
			return fmt.Errorf("user %q delivered twice", user)
		}
		pairs[user] = [2]*trace.Trace{o, a}
		return nil
	})
	if err != nil {
		t.Fatalf("ScanTracesPaired: %v", err)
	}
	return pairResult{pairs: pairs, stats: st}
}

// quantizedTrace builds a trace whose coordinates and timestamps
// round-trip the store encoding exactly.
func quantizedTrace(user string, seed, points int) *trace.Trace {
	base := time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC)
	pts := make([]trace.Point, points)
	for i := range pts {
		pts[i] = trace.P(
			float64(450_000_000+100_000*seed+37*i)/CoordScale,
			float64(48_000_000+13*i)/CoordScale,
			base.Add(time.Duration(seed*17+i*45)*time.Second),
		)
	}
	return trace.MustNew(user, pts)
}

// buildFragmented writes the traces into a new store via interleaved
// Appends so every user fragments across several blocks.
func buildFragmented(t testing.TB, traces []*trace.Trace, shards, blockPoints int) *Store {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "paired.mstore")
	w, err := Create(dir, Options{Shards: shards, BlockPoints: blockPoints})
	if err != nil {
		t.Fatal(err)
	}
	longest := 0
	for _, tr := range traces {
		if tr.Len() > longest {
			longest = tr.Len()
		}
	}
	for i := 0; i < longest; i++ {
		for _, tr := range traces {
			if i < tr.Len() {
				if err := w.Append(tr.User, tr.Points[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func sameTrace(t *testing.T, want, got *trace.Trace) {
	t.Helper()
	if got == nil {
		t.Fatalf("user %s: missing trace", want.User)
	}
	if want.User != got.User || want.Len() != got.Len() {
		t.Fatalf("trace mismatch: want %v, got %v", want, got)
	}
	for i := range want.Points {
		w, g := want.Points[i], got.Points[i]
		if !w.Time.Equal(g.Time) || w.Lat != g.Lat || w.Lng != g.Lng {
			t.Fatalf("user %s point %d: want %v, got %v", want.User, i, w, g)
		}
	}
}

// TestScanTracesPairedIntersection pins the alignment property on
// stores with different shard counts and overlapping user populations:
// exactly the user intersection is paired, the symmetric difference is
// reported one-sided, and every delivered trace is assembled exactly as
// a single-store scan would.
func TestScanTracesPairedIntersection(t *testing.T) {
	var origTr, anonTr []*trace.Trace
	for u := 0; u < 12; u++ { // orig: u00..u11
		origTr = append(origTr, quantizedTrace(fmt.Sprintf("u%02d", u), u, 7))
	}
	for u := 4; u < 16; u++ { // anon: u04..u15, shifted geometry
		anonTr = append(anonTr, quantizedTrace(fmt.Sprintf("u%02d", u), u+100, 5))
	}
	orig := buildFragmented(t, origTr, 3, 2)
	anon := buildFragmented(t, anonTr, 5, 2)
	origSet := trace.MustNewDataset(origTr)
	anonSet := trace.MustNewDataset(anonTr)

	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			res := collectPairs(t, orig, anon, ScanOptions{Workers: workers})
			if got, want := res.stats.Paired, int64(8); got != want { // u04..u11
				t.Errorf("Paired = %d, want %d", got, want)
			}
			wantOnlyOrig := []string{"u00", "u01", "u02", "u03"}
			wantOnlyAnon := []string{"u12", "u13", "u14", "u15"}
			if !equalStrings(res.stats.OnlyOrig, wantOnlyOrig) {
				t.Errorf("OnlyOrig = %v, want %v", res.stats.OnlyOrig, wantOnlyOrig)
			}
			if !equalStrings(res.stats.OnlyAnon, wantOnlyAnon) {
				t.Errorf("OnlyAnon = %v, want %v", res.stats.OnlyAnon, wantOnlyAnon)
			}
			if len(res.pairs) != 16 {
				t.Fatalf("delivered %d users, want 16", len(res.pairs))
			}
			for user, pair := range res.pairs {
				if wt := origSet.ByUser(user); wt != nil {
					sameTrace(t, wt, pair[0])
				} else if pair[0] != nil {
					t.Errorf("user %s: unexpected orig side", user)
				}
				if wt := anonSet.ByUser(user); wt != nil {
					sameTrace(t, wt, pair[1])
				} else if pair[1] != nil {
					t.Errorf("user %s: unexpected anon side", user)
				}
			}
			if res.stats.Orig.Points != int64(origSet.TotalPoints()) {
				t.Errorf("orig points = %d, want %d", res.stats.Orig.Points, origSet.TotalPoints())
			}
			if res.stats.Anon.Points != int64(anonSet.TotalPoints()) {
				t.Errorf("anon points = %d, want %d", res.stats.Anon.Points, anonSet.TotalPoints())
			}
			// The bound that makes larger-than-RAM evaluation possible:
			// at most one user in flight per scanning goroutine (3 orig
			// segments in pass 1, 5 anon segments in pass 2).
			if res.stats.PeakBufferedUsers == 0 {
				t.Errorf("paired scan reported no in-flight users")
			}
			if res.stats.PeakBufferedUsers > 5 {
				t.Errorf("PeakBufferedUsers = %d > 5 scanning goroutines", res.stats.PeakBufferedUsers)
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestScanTracesPairedSelf pins the degenerate case: a store paired
// with itself has no one-sided users and both sides identical.
func TestScanTracesPairedSelf(t *testing.T) {
	var traces []*trace.Trace
	for u := 0; u < 6; u++ {
		traces = append(traces, quantizedTrace(fmt.Sprintf("s%d", u), u, 6))
	}
	s := buildFragmented(t, traces, 2, 3)
	res := collectPairs(t, s, s, ScanOptions{Workers: 2})
	if res.stats.Paired != 6 || len(res.stats.OnlyOrig) != 0 || len(res.stats.OnlyAnon) != 0 {
		t.Fatalf("self pairing: %+v", res.stats)
	}
	for user, pair := range res.pairs {
		sameTrace(t, pair[0], pair[1])
		if pair[0].User != user {
			t.Errorf("pair keyed %q holds %q", user, pair[0].User)
		}
	}
}

// TestScanTracesPairedFilters pins that the filters apply to both
// sides, that footer pruning is counted per side, and that a user whose
// points survive on one side only is reported one-sided.
func TestScanTracesPairedFilters(t *testing.T) {
	base := time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC)
	mk := func(user string, start time.Time, n int) *trace.Trace {
		pts := make([]trace.Point, n)
		for i := range pts {
			pts[i] = trace.P(45, 4.8+float64(i)/1e4, start.Add(time.Duration(i)*time.Minute))
		}
		return trace.MustNew(user, pts)
	}
	cutoff := base.Add(time.Hour)
	// "early" exists before the cutoff in the anon store only; its orig
	// side spans the cutoff. "late" is past the cutoff on both sides.
	orig := buildFragmented(t, []*trace.Trace{
		mk("early", base, 120), // spans cutoff
		mk("late", cutoff.Add(time.Hour), 5),
	}, 2, 64)
	anon := buildFragmented(t, []*trace.Trace{
		mk("early", base, 30), // entirely before cutoff
		mk("late", cutoff.Add(2*time.Hour), 5),
	}, 3, 64)

	t.Run("time filter one-sides a user", func(t *testing.T) {
		res := collectPairs(t, orig, anon, ScanOptions{From: cutoff})
		if res.stats.Paired != 1 {
			t.Errorf("Paired = %d, want 1 (late)", res.stats.Paired)
		}
		if !equalStrings(res.stats.OnlyOrig, []string{"early"}) {
			t.Errorf("OnlyOrig = %v, want [early]", res.stats.OnlyOrig)
		}
		if len(res.stats.OnlyAnon) != 0 {
			t.Errorf("OnlyAnon = %v, want empty", res.stats.OnlyAnon)
		}
		pair := res.pairs["early"]
		if pair[0] == nil || pair[1] != nil {
			t.Fatalf("early delivered as %v, want orig-only", pair)
		}
		for _, p := range pair[0].Points {
			if p.Time.Before(cutoff) {
				t.Fatalf("point %v before cutoff", p.Time)
			}
		}
		if res.stats.Anon.BlocksPruned == 0 {
			t.Errorf("anon side pruned nothing: %+v", res.stats.Anon)
		}
	})

	t.Run("user filter", func(t *testing.T) {
		res := collectPairs(t, orig, anon, ScanOptions{Users: []string{"late"}})
		if res.stats.Paired != 1 || len(res.pairs) != 1 || res.pairs["late"][0] == nil {
			t.Fatalf("user-filtered pairing: %+v, pairs %v", res.stats, res.pairs)
		}
		if res.stats.Orig.BlocksPruned == 0 || res.stats.Anon.BlocksPruned == 0 {
			t.Errorf("user filter pruned nothing: orig %+v anon %+v", res.stats.Orig, res.stats.Anon)
		}
	})
}

// TestScanTracesPairedProperty is the randomized alignment property:
// for arbitrary overlapping populations, fragmentations and shard
// counts, the paired scan delivers exactly the user intersection as
// pairs and exactly the symmetric difference one-sided.
func TestScanTracesPairedProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for iter := 0; iter < 12; iter++ {
		var origTr, anonTr []*trace.Trace
		origUsers := make(map[string]bool)
		anonUsers := make(map[string]bool)
		for u := 0; u < 14; u++ {
			user := fmt.Sprintf("p%02d", u)
			n := 2 + rnd.Intn(9)
			inOrig := rnd.Intn(3) > 0
			inAnon := rnd.Intn(3) > 0
			if inOrig {
				origTr = append(origTr, quantizedTrace(user, u, n))
				origUsers[user] = true
			}
			if inAnon {
				anonTr = append(anonTr, quantizedTrace(user, u+50, n+1))
				anonUsers[user] = true
			}
		}
		if len(origTr) == 0 || len(anonTr) == 0 {
			continue
		}
		orig := buildFragmented(t, origTr, 1+rnd.Intn(4), 1+rnd.Intn(4))
		anon := buildFragmented(t, anonTr, 1+rnd.Intn(4), 1+rnd.Intn(4))
		res := collectPairs(t, orig, anon, ScanOptions{Workers: 1 + rnd.Intn(4)})

		var wantPaired int64
		var wantOnlyOrig, wantOnlyAnon []string
		for u := range origUsers {
			if anonUsers[u] {
				wantPaired++
			} else {
				wantOnlyOrig = append(wantOnlyOrig, u)
			}
		}
		for u := range anonUsers {
			if !origUsers[u] {
				wantOnlyAnon = append(wantOnlyAnon, u)
			}
		}
		sort.Strings(wantOnlyOrig)
		sort.Strings(wantOnlyAnon)
		if res.stats.Paired != wantPaired {
			t.Fatalf("iter %d: Paired = %d, want %d", iter, res.stats.Paired, wantPaired)
		}
		if !equalStrings(res.stats.OnlyOrig, wantOnlyOrig) {
			t.Fatalf("iter %d: OnlyOrig = %v, want %v", iter, res.stats.OnlyOrig, wantOnlyOrig)
		}
		if !equalStrings(res.stats.OnlyAnon, wantOnlyAnon) {
			t.Fatalf("iter %d: OnlyAnon = %v, want %v", iter, res.stats.OnlyAnon, wantOnlyAnon)
		}
		if int64(len(res.pairs)) != wantPaired+int64(len(wantOnlyOrig)+len(wantOnlyAnon)) {
			t.Fatalf("iter %d: delivered %d users", iter, len(res.pairs))
		}
	}
}

// TestScanTracesPairedErrors pins error propagation and the closed
// guard.
func TestScanTracesPairedErrors(t *testing.T) {
	s := buildFragmented(t, []*trace.Trace{quantizedTrace("e", 1, 4)}, 2, 2)
	boom := errors.New("boom")
	if _, err := ScanTracesPaired(context.Background(), s, s, ScanOptions{}, func(o, a *trace.Trace) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	closed := buildFragmented(t, []*trace.Trace{quantizedTrace("c", 1, 4)}, 1, 2)
	closed.Close()
	if _, err := ScanTracesPaired(context.Background(), s, closed, ScanOptions{}, func(o, a *trace.Trace) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

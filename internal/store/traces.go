package store

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"mobipriv/internal/par"
	"mobipriv/internal/trace"
)

// TraceScanFunc receives one complete, validated trace assembled from
// all of a user's blocks. The trace is freshly built and owned by the
// callee.
type TraceScanFunc func(tr *trace.Trace) error

// ScanTraces streams whole traces out of the store: each user's blocks
// — however fragmented by streaming appends — are merged, time-sorted
// and microsecond-deduplicated (first observation wins, exactly as
// Load), then delivered to fn as one validated trace.
//
// Unlike Load, ScanTraces never materializes the dataset. Each segment
// goroutine gathers one user at a time: the footer indexes every
// user's blocks up front, so the goroutine reads exactly that user's
// blocks, emits the trace, and releases the memory before moving on.
// Peak memory is therefore one user's fragments per segment goroutine
// regardless of how interleaved the segment is; the high-water count
// of concurrently buffered multi-block users lands in
// ScanStats.PeakBufferedUsers (bounded by the goroutine count, and 0
// for a compacted store where every user is a single block). The cost
// of the bound is read order: an interleaved segment is read per-user
// rather than sequentially, while a compacted or Add-built segment
// (contiguous user runs) is still read nearly front to back.
//
// Segments are fanned across internal/par workers like Scan, so fn is
// called concurrently (one goroutine per segment at most) and must be
// safe for that. Within a segment, users are delivered in the file
// order of their first blocks. Users whose every point is removed by
// the bbox/time filters are not delivered.
func (s *Store) ScanTraces(ctx context.Context, opts ScanOptions, fn TraceScanFunc) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if opts.Workers != 0 {
		ctx = par.WithWorkers(ctx, opts.Workers)
	}
	var users map[string]bool
	if opts.Users != nil {
		users = make(map[string]bool, len(opts.Users))
		for _, u := range opts.Users {
			users[u] = true
		}
	}
	stats := opts.Stats
	if stats == nil {
		stats = &ScanStats{}
	}
	// buffered counts users being assembled across all segment
	// goroutines; its high-water mark lands in stats.PeakBufferedUsers.
	var buffered int64
	return par.Map(ctx, len(s.segs), func(i int) error {
		seg := s.segs[i]
		// Group each user's blocks from the footer, preserving the file
		// order of first appearance.
		order := make([]string, 0, len(seg.entries))
		blocks := make(map[string][]int, len(seg.entries))
		for bi := range seg.entries {
			u := seg.entries[bi].user
			if len(blocks[u]) == 0 {
				order = append(order, u)
			}
			blocks[u] = append(blocks[u], bi)
		}
		// readBlock prunes or decodes one block and applies the exact
		// point filters.
		readBlock := func(bi int) ([]trace.Point, error) {
			e := &seg.entries[bi]
			atomic.AddInt64(&stats.BlocksTotal, 1)
			if s.pruned(e, users, opts) {
				atomic.AddInt64(&stats.BlocksPruned, 1)
				return nil, nil
			}
			user, raw, err := s.block(i, bi, stats, opts.NoCache)
			if err != nil {
				return nil, fmt.Errorf("segment %s block %d: %w", seg.file, bi, err)
			}
			if user != e.user {
				return nil, corruptf("segment %s block %d: footer user %q, block user %q", seg.file, bi, e.user, user)
			}
			return filterPoints(raw, opts), nil
		}
		emit := func(user string, pts []trace.Point) error {
			tr, err := trace.New(user, pts)
			if err != nil {
				return fmt.Errorf("store: user %q: %w", user, err)
			}
			atomic.AddInt64(&stats.Points, int64(tr.Len()))
			return fn(tr)
		}
		for _, user := range order {
			if err := ctx.Err(); err != nil {
				return err
			}
			idxs := blocks[user]
			if len(idxs) == 1 {
				// Single-block fast path: block points are already
				// sorted and deduped by the Writer, and trace.New
				// copies, so the (possibly cache-shared) slice is
				// never mutated and nothing is buffered.
				pts, err := readBlock(idxs[0])
				if err != nil {
					return err
				}
				if len(pts) > 0 {
					if err := emit(user, pts); err != nil {
						return err
					}
				}
				continue
			}
			par.PeakAdd(&buffered, &stats.PeakBufferedUsers)
			var buf []trace.Point
			for _, bi := range idxs {
				pts, err := readBlock(bi)
				if err != nil {
					atomic.AddInt64(&buffered, -1)
					return err
				}
				buf = append(buf, pts...)
			}
			atomic.AddInt64(&buffered, -1)
			if len(buf) == 0 {
				continue
			}
			sort.SliceStable(buf, func(a, b int) bool { return buf[a].Time.Before(buf[b].Time) })
			if buf = dedupeMicros(buf); len(buf) > 0 {
				if err := emit(user, buf); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

package store

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"mobipriv/internal/par"
	"mobipriv/internal/trace"
)

// TraceScanFunc receives one complete, validated trace assembled from
// all of a user's blocks. The trace is freshly built and owned by the
// callee.
type TraceScanFunc func(tr *trace.Trace) error

// userBlocks groups a segment's footer entries by user, preserving the
// file order of each user's first block — the iteration order of every
// trace-assembling scan.
func (seg *segReader) userBlocks() (order []string, blocks map[string][]int) {
	order = make([]string, 0, len(seg.entries))
	blocks = make(map[string][]int, len(seg.entries))
	for bi := range seg.entries {
		u := seg.entries[bi].user
		if len(blocks[u]) == 0 {
			order = append(order, u)
		}
		blocks[u] = append(blocks[u], bi)
	}
	return order, blocks
}

// gatherUser assembles one user's points from the given blocks of one
// segment: pruned or decoded block by block, point-filtered, merged,
// time-sorted and microsecond-deduplicated (first observation wins,
// exactly as Load). The result may be empty when every point is pruned
// or filtered away.
//
// In the single-block fast path the returned slice may be shared with
// the block cache: it is already sorted and deduped by the Writer, and
// callers only hand it to trace.New (which copies), so it is never
// mutated and nothing is buffered. Multi-block users are counted on the
// buffered gauge while their fragments are held, and the high-water
// mark folds into peak via par.PeakAdd.
func (s *Store) gatherUser(segIdx int, idxs []int, users map[string]bool, opts ScanOptions, stats *ScanStats, buffered, peak *int64) ([]trace.Point, error) {
	seg := s.segs[segIdx]
	readBlock := func(bi int) ([]trace.Point, error) {
		e := &seg.entries[bi]
		atomic.AddInt64(&stats.BlocksTotal, 1)
		if s.pruned(e, users, opts) {
			atomic.AddInt64(&stats.BlocksPruned, 1)
			return nil, nil
		}
		user, raw, err := s.block(segIdx, bi, stats, opts.NoCache)
		if err != nil {
			return nil, fmt.Errorf("segment %s block %d: %w", seg.file, bi, err)
		}
		if user != e.user {
			return nil, corruptf("segment %s block %d: footer user %q, block user %q", seg.file, bi, e.user, user)
		}
		return filterPoints(raw, opts), nil
	}
	if len(idxs) == 1 {
		return readBlock(idxs[0])
	}
	par.PeakAdd(buffered, peak)
	defer atomic.AddInt64(buffered, -1)
	var buf []trace.Point
	for _, bi := range idxs {
		pts, err := readBlock(bi)
		if err != nil {
			return nil, err
		}
		buf = append(buf, pts...)
	}
	if len(buf) == 0 {
		return nil, nil
	}
	sort.SliceStable(buf, func(a, b int) bool { return buf[a].Time.Before(buf[b].Time) })
	return dedupeMicros(buf), nil
}

// ScanTraces streams whole traces out of the store: each user's blocks
// — however fragmented by streaming appends — are merged, time-sorted
// and microsecond-deduplicated (first observation wins, exactly as
// Load), then delivered to fn as one validated trace.
//
// Unlike Load, ScanTraces never materializes the dataset. Each segment
// goroutine gathers one user at a time: the footer indexes every
// user's blocks up front, so the goroutine reads exactly that user's
// blocks, emits the trace, and releases the memory before moving on.
// Peak memory is therefore one user's fragments per segment goroutine
// regardless of how interleaved the segment is; the high-water count
// of concurrently buffered multi-block users lands in
// ScanStats.PeakBufferedUsers (bounded by the goroutine count, and 0
// for a compacted store where every user is a single block). The cost
// of the bound is read order: an interleaved segment is read per-user
// rather than sequentially, while a compacted or Add-built segment
// (contiguous user runs) is still read nearly front to back.
//
// Segments are fanned across internal/par workers like Scan, so fn is
// called concurrently (one goroutine per segment at most) and must be
// safe for that. Within a segment, users are delivered in the file
// order of their first blocks. Users whose every point is removed by
// the bbox/time filters are not delivered.
func (s *Store) ScanTraces(ctx context.Context, opts ScanOptions, fn TraceScanFunc) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if opts.Workers != 0 {
		ctx = par.WithWorkers(ctx, opts.Workers)
	}
	users := userSet(opts.Users)
	stats := opts.Stats
	if stats == nil {
		stats = &ScanStats{}
	}
	// buffered counts users being assembled across all segment
	// goroutines; its high-water mark lands in stats.PeakBufferedUsers.
	var buffered int64
	return par.Map(ctx, len(s.segs), func(i int) error {
		order, blocks := s.segs[i].userBlocks()
		for _, user := range order {
			if err := ctx.Err(); err != nil {
				return err
			}
			pts, err := s.gatherUser(i, blocks[user], users, opts, stats, &buffered, &stats.PeakBufferedUsers)
			if err != nil {
				return err
			}
			if len(pts) == 0 {
				continue
			}
			tr, err := trace.New(user, pts)
			if err != nil {
				return fmt.Errorf("store: user %q: %w", user, err)
			}
			atomic.AddInt64(&stats.Points, int64(tr.Len()))
			if err := fn(tr); err != nil {
				return err
			}
		}
		return nil
	})
}

// userSet builds the pruning set for a -users style filter; nil means
// no filtering.
func userSet(users []string) map[string]bool {
	if users == nil {
		return nil
	}
	set := make(map[string]bool, len(users))
	for _, u := range users {
		set[u] = true
	}
	return set
}

package store

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"mobipriv/internal/par"
	"mobipriv/internal/trace"
)

// TraceScanFunc receives one complete, validated trace assembled from
// all of a user's blocks. The trace is freshly built and owned by the
// callee.
type TraceScanFunc func(tr *trace.Trace) error

// partBlock addresses one block anywhere in the store: the segment's
// index in Store.segs plus the block's index in that segment's footer.
type partBlock struct{ seg, block int }

// shardUserBlocks groups one shard's footer entries by user across all
// of the shard's generations, preserving the order of each user's first
// block (generations oldest first, file order within each) — the
// iteration order of every trace-assembling scan. Shard pinning makes
// this the complete block set of every listed user.
func (s *Store) shardUserBlocks(sh int) (order []string, blocks map[string][]partBlock) {
	blocks = make(map[string][]partBlock)
	for _, si := range s.shards[sh] {
		seg := s.segs[si]
		for bi := range seg.entries {
			u := seg.entries[bi].user
			if len(blocks[u]) == 0 {
				order = append(order, u)
			}
			blocks[u] = append(blocks[u], partBlock{seg: si, block: bi})
		}
	}
	return order, blocks
}

// gatherUser assembles one user's points from the given blocks (all of
// one shard, generations oldest first): pruned or decoded block by
// block, point-filtered, merged, time-sorted and
// microsecond-deduplicated (first observation wins, exactly as Load).
// The result may be empty when every point is pruned or filtered away.
//
// In the single-block fast path the returned slice may be shared with
// the block cache: it is already sorted and deduped by the Writer, and
// callers only hand it to trace.New (which copies), so it is never
// mutated and nothing is buffered. Multi-block users are counted on the
// buffered gauge while their fragments are held, and the high-water
// mark folds into peak via par.PeakAdd.
func (s *Store) gatherUser(idxs []partBlock, users map[string]bool, opts ScanOptions, stats *ScanStats, buffered, peak *int64) ([]trace.Point, error) {
	readBlock := func(pb partBlock) ([]trace.Point, error) {
		seg := s.segs[pb.seg]
		e := &seg.entries[pb.block]
		atomic.AddInt64(&stats.BlocksTotal, 1)
		if s.pruned(e, users, opts) {
			atomic.AddInt64(&stats.BlocksPruned, 1)
			return nil, nil
		}
		user, raw, err := s.block(pb.seg, pb.block, stats, opts.NoCache)
		if err != nil {
			return nil, fmt.Errorf("segment %s block %d: %w", seg.file, pb.block, err)
		}
		if user != e.user {
			return nil, corruptf("segment %s block %d: footer user %q, block user %q", seg.file, pb.block, e.user, user)
		}
		return filterPoints(raw, opts), nil
	}
	if len(idxs) == 1 {
		return readBlock(idxs[0])
	}
	par.PeakAdd(buffered, peak)
	defer atomic.AddInt64(buffered, -1)
	var buf []trace.Point
	for _, pb := range idxs {
		pts, err := readBlock(pb)
		if err != nil {
			return nil, err
		}
		buf = append(buf, pts...)
	}
	if len(buf) == 0 {
		return nil, nil
	}
	// The stable sort keeps equal-microsecond points in append order
	// (older generation first), so the first-wins winner is the same one
	// a single-session store would have kept.
	sort.SliceStable(buf, func(a, b int) bool { return buf[a].Time.Before(buf[b].Time) })
	return dedupeMicros(buf), nil
}

// ScanTraces streams whole traces out of the store: each user's blocks
// — however fragmented by streaming appends, within a generation or
// across reopen sessions — are merged, time-sorted and
// microsecond-deduplicated (first observation wins, exactly as Load),
// then delivered to fn as one validated trace.
//
// Unlike Load, ScanTraces never materializes the dataset. Each shard
// goroutine gathers one user at a time: the footers index every user's
// blocks across the shard's generations up front, so the goroutine
// reads exactly that user's blocks, emits the trace, and releases the
// memory before moving on. Peak memory is therefore one user's
// fragments per shard goroutine regardless of how interleaved the
// shard is; the high-water count of concurrently buffered multi-block
// users lands in ScanStats.PeakBufferedUsers (bounded by the goroutine
// count, and 0 for a compacted store where every user is a single
// block). The cost of the bound is read order: an interleaved shard is
// read per-user rather than sequentially, while a compacted or
// Add-built store (contiguous user runs, one generation) is still read
// nearly front to back.
//
// Shards are fanned across internal/par workers like Scan, so fn is
// called concurrently (one goroutine per shard at most) and must be
// safe for that. Within a shard, users are delivered in the order of
// their first blocks (generations oldest first). Users whose every
// point is removed by the bbox/time filters are not delivered.
func (s *Store) ScanTraces(ctx context.Context, opts ScanOptions, fn TraceScanFunc) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if opts.Workers != 0 {
		ctx = par.WithWorkers(ctx, opts.Workers)
	}
	users := userSet(opts.Users)
	stats := opts.Stats
	if stats == nil {
		stats = &ScanStats{}
	}
	// buffered counts users being assembled across all segment
	// goroutines; its high-water mark lands in stats.PeakBufferedUsers.
	var buffered int64
	return par.Map(ctx, len(s.shards), func(sh int) error {
		order, blocks := s.shardUserBlocks(sh)
		for _, user := range order {
			if err := ctx.Err(); err != nil {
				return err
			}
			pts, err := s.gatherUser(blocks[user], users, opts, stats, &buffered, &stats.PeakBufferedUsers)
			if err != nil {
				return err
			}
			if len(pts) == 0 {
				continue
			}
			tr, err := trace.New(user, pts)
			if err != nil {
				return fmt.Errorf("store: user %q: %w", user, err)
			}
			atomic.AddInt64(&stats.Points, int64(tr.Len()))
			if err := fn(tr); err != nil {
				return err
			}
		}
		return nil
	})
}

// userSet builds the pruning set for a -users style filter; nil means
// no filtering.
func userSet(users []string) map[string]bool {
	if users == nil {
		return nil
	}
	set := make(map[string]bool, len(users))
	for _, u := range users {
		set[u] = true
	}
	return set
}

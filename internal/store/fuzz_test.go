package store

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"mobipriv/internal/trace"
)

// FuzzBlockDecode throws arbitrary bytes at the .mstore block decoder.
// The decoder must never panic, must be deterministic, and — whenever
// it accepts a block whose values are in the format's realistic domain
// — must round-trip exactly through the encoder.
func FuzzBlockDecode(f *testing.F) {
	// Seed corpus: real blocks of every shape the Writer produces.
	base := time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC)
	seedPts := func(n int) []trace.Point {
		pts := make([]trace.Point, n)
		for i := range pts {
			pts[i] = trace.P(
				float64(457_640_000+37*i)/CoordScale,
				float64(48_357_000-13*i)/CoordScale,
				base.Add(time.Duration(i)*45*time.Second),
			)
		}
		return pts
	}
	for _, n := range []int{1, 2, 17} {
		blk, _ := appendBlock(nil, "user-α", seedPts(n))
		f.Add(blk)
	}
	blk, _ := appendBlock(nil, "", nil)
	f.Add(blk)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		user, pts, err := decodeBlock(data)
		u2, p2, err2 := decodeBlock(data)
		if (err == nil) != (err2 == nil) || user != u2 || len(pts) != len(p2) {
			t.Fatalf("decode not deterministic: (%q,%d,%v) vs (%q,%d,%v)",
				user, len(pts), err, u2, len(p2), err2)
		}
		if err != nil {
			return
		}
		// Exact round-trip is only promised inside the format's domain:
		// coordinates that quantize within WGS84 bounds and timestamps
		// time.UnixMicro represents exactly. Arbitrary accepted varint
		// streams can decode to values outside it, where float/time
		// conversions legitimately lose bits.
		const maxCoord = int64(180 * CoordScale)
		for _, p := range pts {
			if q := quantize(p.Lat); q < -maxCoord || q > maxCoord {
				return
			}
			if q := quantize(p.Lng); q < -maxCoord || q > maxCoord {
				return
			}
			if us := toMicros(p.Time); us < -(1<<53) || us > 1<<53 {
				return
			}
		}
		enc, st := appendBlock(nil, user, pts)
		if st.points != len(pts) {
			t.Fatalf("re-encode stats count %d != %d", st.points, len(pts))
		}
		ru, rp, rerr := decodeBlock(enc)
		if rerr != nil {
			t.Fatalf("re-encoded block rejected: %v", rerr)
		}
		if ru != user || len(rp) != len(pts) {
			t.Fatalf("round trip (%q, %d) != (%q, %d)", ru, len(rp), user, len(pts))
		}
		for i := range pts {
			if rp[i].Lat != pts[i].Lat || rp[i].Lng != pts[i].Lng || !rp[i].Time.Equal(pts[i].Time) {
				t.Fatalf("round trip point %d: %v != %v", i, rp[i], pts[i])
			}
		}
	})
}

// FuzzManifestDecode throws arbitrary bytes at the versioned manifest
// parser. The parser must never panic, must be deterministic, and —
// whenever it accepts a document — must round-trip exactly through the
// encoder: parse(encode(parse(x))) == parse(x). The seed corpus covers
// both format versions, the generation-gap rejection, and real output
// of encodeManifest.
func FuzzManifestDecode(f *testing.F) {
	// Real v2 manifest, as the Writer commits it.
	v2, _ := encodeManifest(Manifest{
		Format: "mstore", Version: 2, CoordScale: CoordScale, TimeUnit: "us",
		Shards: 2, Generations: 2,
		Segments: []SegmentInfo{
			{File: partName(0, 0), Shard: 0, Gen: 0, Size: 128, Blocks: 1, Users: 1, Points: 4},
			{File: partName(1, 1), Shard: 1, Gen: 1, Size: 96, Blocks: 1, Users: 1, Points: 2},
		},
		Users: 2, Points: 6, MinTimeUS: 1, MaxTimeUS: 99, BBoxE7: []int64{1, 2, 3, 4},
	})
	f.Add(v2)
	// Legacy v1 manifest.
	f.Add([]byte(`{"format":"mstore","version":1,"coord_scale":1e7,"time_unit":"us","shards":1,` +
		`"segments":[{"file":"seg-0000.blk","blocks":1,"users":1,"points":3}],"users":1,"points":3}`))
	// Generation gap: gen 0 has no segments while generations is 2.
	f.Add([]byte(`{"format":"mstore","version":2,"coord_scale":1e7,"time_unit":"us","shards":1,"generations":2,` +
		`"segments":[{"file":"shard-0000.g1.seg","shard":0,"gen":1,"size":100,"blocks":1,"users":1,"points":1}],"users":1,"points":1}`))
	f.Add([]byte(`{"format":"mstore","version":2,"coord_scale":1e7,"time_unit":"us","shards":4,"users":0,"points":0}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		man, err := parseManifest(data)
		man2, err2 := parseManifest(data)
		if (err == nil) != (err2 == nil) || !reflect.DeepEqual(man, man2) {
			t.Fatalf("parse not deterministic: (%+v, %v) vs (%+v, %v)", man, err, man2, err2)
		}
		if err != nil {
			return
		}
		// Whatever the parser accepts must re-encode into a document the
		// parser accepts and parses to the same value — the manifest the
		// Writer would commit after carrying man across a reopen.
		for g := range make([]struct{}, man.Generations) {
			found := false
			for _, si := range man.Segments {
				if si.Gen == g {
					found = true
				}
			}
			if !found {
				t.Fatalf("accepted manifest with generation gap at %d: %+v", g, man)
			}
		}
		enc, err := encodeManifest(man)
		if err != nil {
			t.Fatalf("encode accepted manifest: %v", err)
		}
		rt, err := parseManifest(enc)
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v\n%s", err, enc)
		}
		// A v1 document normalizes to the v2 shape on parse; re-encoding
		// keeps the declared version, so compare shape-normalized.
		rt.Version = man.Version
		if !reflect.DeepEqual(man, rt) {
			t.Fatalf("round trip changed manifest:\n%+v\n%+v", man, rt)
		}
	})
}

// FuzzScanTracesPaired drives the paired alignment with arbitrary user
// populations, point spreads and shard counts derived from the fuzz
// input, and checks the alignment invariant: exactly the users present
// on both sides are paired, the symmetric difference is reported
// one-sided, and no user is delivered twice.
func FuzzScanTracesPaired(f *testing.F) {
	f.Add([]byte{0x01, 0x82, 0x43, 0x07, 0x22, 0x91, 0x10, 0xfe})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x00, 0x13, 0x13, 0x13, 0x77})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 256 {
			return
		}
		// Byte i of the input places user (i mod 12): the low crumbs
		// pick the sides, the high bits the point count.
		base := time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC)
		type side struct{ pts map[string][]trace.Point }
		orig := side{pts: make(map[string][]trace.Point)}
		anon := side{pts: make(map[string][]trace.Point)}
		for i, b := range data {
			user := fmt.Sprintf("f%02d", i%12)
			n := 1 + int(b>>4)
			mk := func(salt int) []trace.Point {
				pts := make([]trace.Point, n)
				for k := range pts {
					pts[k] = trace.P(
						float64(450_000_000+1000*salt+17*k)/CoordScale,
						float64(48_000_000+11*k)/CoordScale,
						base.Add(time.Duration(i*3600+k)*time.Second),
					)
				}
				return pts
			}
			if b&1 != 0 {
				orig.pts[user] = append(orig.pts[user], mk(i)...)
			}
			if b&2 != 0 {
				anon.pts[user] = append(anon.pts[user], mk(i+500)...)
			}
		}
		build := func(s side, shards, block int, name string) (*Store, map[string]bool) {
			users := make(map[string]bool)
			dir := filepath.Join(t.TempDir(), name)
			w, err := Create(dir, Options{Shards: shards, BlockPoints: block})
			if err != nil {
				t.Fatal(err)
			}
			for user, pts := range s.pts {
				users[user] = true
				for _, p := range pts {
					if err := w.Append(user, p); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { st.Close() })
			return st, users
		}
		origStore, origUsers := build(orig, 1+int(data[0]%4), 1+int(data[0]%5), "orig.mstore")
		anonStore, anonUsers := build(anon, 1+int(data[len(data)-1]%5), 2, "anon.mstore")

		var mu sync.Mutex
		seen := make(map[string]int)
		st, err := ScanTracesPaired(context.Background(), origStore, anonStore,
			ScanOptions{Workers: 1 + int(data[0]%3)},
			func(o, a *trace.Trace) error {
				mu.Lock()
				defer mu.Unlock()
				switch {
				case o != nil && a != nil:
					seen[o.User] |= 3
				case o != nil:
					seen[o.User] |= 1
				case a != nil:
					seen[a.User] |= 2
				default:
					t.Error("both sides nil")
				}
				return nil
			})
		if err != nil {
			t.Fatalf("ScanTracesPaired: %v", err)
		}
		var wantPaired int64
		for u := range origUsers {
			want := 1
			if anonUsers[u] {
				want = 3
				wantPaired++
			}
			if seen[u] != want {
				t.Fatalf("user %s delivered as %d, want %d", u, seen[u], want)
			}
		}
		for u := range anonUsers {
			if !origUsers[u] && seen[u] != 2 {
				t.Fatalf("anon-only user %s delivered as %d", u, seen[u])
			}
		}
		if int64(len(seen)) != int64(len(origUsers))+int64(len(anonUsers))-wantPaired {
			t.Fatalf("delivered %d users, want %d", len(seen), int64(len(origUsers))+int64(len(anonUsers))-wantPaired)
		}
		if st.Paired != wantPaired {
			t.Fatalf("stats.Paired = %d, want %d", st.Paired, wantPaired)
		}
		if int64(len(st.OnlyOrig))+int64(len(st.OnlyAnon))+st.Paired != int64(len(seen)) {
			t.Fatalf("stats inconsistent with deliveries: %+v", st)
		}
	})
}

package store

import (
	"encoding/json"
	"fmt"
	"path/filepath"
)

// parseManifest decodes and validates a manifest document. It is the
// single entry point for untrusted manifest bytes (Open, OpenAppend,
// FuzzManifestDecode): whatever it accepts satisfies every structural
// invariant the readers rely on, and it never panics.
//
// Both format versions are accepted. A version-1 manifest (one unnamed
// generation, exactly one segment per shard, no committed sizes) is
// normalized into the version-2 shape: segment i becomes shard i of
// generation 0, Generations becomes 1, and Size stays 0 — "committed
// size unknown, trust the file size" — until OpenAppend backfills it.
//
// Version-2 invariants enforced here:
//
//   - every segment names a shard in [0, Shards) and a generation in
//     [0, Generations), and its file name is exactly the canonical name
//     for that (shard, generation) — no path components, no aliases;
//   - (shard, generation) pairs are unique;
//   - every generation in [0, Generations) owns at least one segment —
//     a manifest with a generation gap is corrupt, because the writer
//     only advances Generations when it commits segments;
//   - every segment records a positive committed Size, block/user/point
//     counts are positive (empty segments are never committed), and the
//     dataset stats are coherent (BBoxE7 is absent or 4 values).
func parseManifest(data []byte) (Manifest, error) {
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return Manifest{}, corruptf("manifest: %v", err)
	}
	if man.Format != "mstore" {
		return Manifest{}, corruptf("manifest format %q (want mstore)", man.Format)
	}
	if man.Version != 1 && man.Version != Version {
		return Manifest{}, fmt.Errorf("store: unsupported version %d (have %d)", man.Version, Version)
	}
	if man.CoordScale != CoordScale || man.TimeUnit != "us" {
		return Manifest{}, fmt.Errorf("store: unsupported encoding (coord_scale=%g, time_unit=%q)", man.CoordScale, man.TimeUnit)
	}
	if man.Shards <= 0 {
		return Manifest{}, corruptf("manifest shards %d", man.Shards)
	}
	if man.Users < 0 || man.Points < 0 {
		return Manifest{}, corruptf("manifest counts users=%d points=%d", man.Users, man.Points)
	}
	if n := len(man.BBoxE7); n != 0 && n != 4 {
		return Manifest{}, corruptf("manifest bbox has %d values (want 0 or 4)", n)
	}
	// nil-normalize empty slices so parse(encode(parse(x))) is a fixed
	// point whatever JSON spelling ([] vs absent) the input used.
	if len(man.BBoxE7) == 0 {
		man.BBoxE7 = nil
	}
	if len(man.Segments) == 0 {
		man.Segments = nil
	}

	if man.Version == 1 {
		if len(man.Segments) != man.Shards {
			return Manifest{}, corruptf("manifest lists %d segments for %d shards", len(man.Segments), man.Shards)
		}
		man.Generations = 1
		for i := range man.Segments {
			si := &man.Segments[i]
			if si.File != segName(i) {
				return Manifest{}, corruptf("v1 segment %d named %q (want %q)", i, si.File, segName(i))
			}
			if si.Blocks < 0 || si.Users < 0 || si.Points < 0 {
				return Manifest{}, corruptf("segment %s counts blocks=%d users=%d points=%d", si.File, si.Blocks, si.Users, si.Points)
			}
			si.Shard, si.Gen, si.Size = i, 0, 0
		}
		return man, nil
	}

	if man.Generations < 0 {
		return Manifest{}, corruptf("manifest generations %d", man.Generations)
	}
	if man.Generations == 0 && len(man.Segments) > 0 {
		return Manifest{}, corruptf("manifest lists %d segments but zero generations", len(man.Segments))
	}
	type slot struct{ shard, gen int }
	seen := make(map[slot]bool, len(man.Segments))
	genHasSegs := make([]bool, man.Generations)
	for i := range man.Segments {
		si := &man.Segments[i]
		if si.Shard < 0 || si.Shard >= man.Shards {
			return Manifest{}, corruptf("segment %s shard %d out of range [0,%d)", si.File, si.Shard, man.Shards)
		}
		if si.Gen < 0 || si.Gen >= man.Generations {
			return Manifest{}, corruptf("segment %s generation %d out of range [0,%d)", si.File, si.Gen, man.Generations)
		}
		// The canonical name pins the file inside the store directory: a
		// manifest can never point a reader at a foreign path. Legacy
		// gen-0 names survive an OpenAppend upgrade of a v1 store.
		if si.File != partName(si.Shard, si.Gen) && !(si.Gen == 0 && si.File == segName(si.Shard)) {
			return Manifest{}, corruptf("segment for shard %d gen %d named %q (want %q)",
				si.Shard, si.Gen, si.File, partName(si.Shard, si.Gen))
		}
		if seen[slot{si.Shard, si.Gen}] {
			return Manifest{}, corruptf("duplicate segment for shard %d gen %d", si.Shard, si.Gen)
		}
		seen[slot{si.Shard, si.Gen}] = true
		genHasSegs[si.Gen] = true
		if si.Size <= int64(len(magicHeader))+16 {
			return Manifest{}, corruptf("segment %s committed size %d is smaller than the envelope", si.File, si.Size)
		}
		if si.Blocks <= 0 || si.Users <= 0 || si.Points <= 0 {
			return Manifest{}, corruptf("segment %s counts blocks=%d users=%d points=%d (empty segments are never committed)",
				si.File, si.Blocks, si.Users, si.Points)
		}
	}
	for g, ok := range genHasSegs {
		if !ok {
			return Manifest{}, corruptf("generation %d has no segments (generation gap)", g)
		}
	}
	return man, nil
}

// encodeManifest renders a manifest as the canonical on-disk JSON.
func encodeManifest(man Manifest) ([]byte, error) {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encode manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// isSegmentFileName reports whether name looks like a segment file of
// either naming generation — the set of files the recovery pass may
// remove when the manifest does not claim them.
func isSegmentFileName(name string) bool {
	if name != filepath.Base(name) {
		return false
	}
	newStyle, _ := filepath.Match("shard-*.seg", name)
	oldStyle, _ := filepath.Match("seg-*.blk", name)
	return newStyle || oldStyle
}

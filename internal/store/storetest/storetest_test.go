package storetest

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestCrashDropsUnsyncedBytes pins the durability model: synced bytes
// survive Crash, later un-synced bytes are truncated away, and a file
// never synced at all disappears.
func TestCrashDropsUnsyncedBytes(t *testing.T) {
	dir := t.TempDir()
	fs := New()

	synced := filepath.Join(dir, "synced.seg")
	f, err := fs.Create(synced)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-lost")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	never := filepath.Join(dir, "never.seg")
	g, err := fs.Create(never)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(synced)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable" {
		t.Fatalf("synced file holds %q after crash, want %q", data, "durable")
	}
	if _, err := os.Stat(never); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("never-synced file still exists after crash (stat err %v)", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "late.seg")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Create after Crash: err = %v, want ErrCrashed", err)
	}
}

// TestRenamePinnedBySyncDir pins the rename model: a Rename alone does
// not survive Crash; Rename + SyncDir does.
func TestRenamePinnedBySyncDir(t *testing.T) {
	for _, pinned := range []bool{false, true} {
		dir := t.TempDir()
		fs := New()
		tmp := filepath.Join(dir, "manifest.json.tmp")
		f, err := fs.Create(tmp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("{}")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		final := filepath.Join(dir, "manifest.json")
		if err := fs.Rename(tmp, final); err != nil {
			t.Fatal(err)
		}
		if pinned {
			if err := fs.SyncDir(dir); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Crash(); err != nil {
			t.Fatal(err)
		}
		_, finalErr := os.Stat(final)
		_, tmpErr := os.Stat(tmp)
		if pinned && (finalErr != nil || tmpErr == nil) {
			t.Fatalf("pinned rename: final err %v, tmp err %v; want final present, tmp gone", finalErr, tmpErr)
		}
		if !pinned && (finalErr == nil || tmpErr != nil) {
			t.Fatalf("unpinned rename: final err %v, tmp err %v; want final absent, tmp present", finalErr, tmpErr)
		}
	}
}

// TestTearAtKeepsGarbage pins torn-write behavior: half the payload
// persists through Crash, and the op log records the write.
func TestTearAtKeepsGarbage(t *testing.T) {
	dir := t.TempDir()
	fs := New().TearAt(1) // op 0 = create, op 1 = write
	name := filepath.Join(dir, "torn.seg")
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write: err = %v, want ErrCrashed", err)
	}
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "01234" {
		t.Fatalf("torn file holds %q, want the 5-byte half prefix", data)
	}
	ops := fs.Ops()
	if len(ops) != 2 || ops[1].Kind != OpWrite || ops[1].Bytes != 10 {
		t.Fatalf("op log = %v, want create + 10-byte write", ops)
	}
}

// TestFailAtIsOneShot pins FailAt: the selected operation fails, the
// next one succeeds.
func TestFailAtIsOneShot(t *testing.T) {
	dir := t.TempDir()
	fs := New().FailAt(0)
	if _, err := fs.Create(filepath.Join(dir, "a.seg")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 0: err = %v, want ErrInjected", err)
	}
	f, err := fs.Create(filepath.Join(dir, "b.seg"))
	if err != nil {
		t.Fatalf("op 1 after injected failure: %v", err)
	}
	f.Close()
}

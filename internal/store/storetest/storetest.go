// Package storetest provides the fault-injection filesystem behind the
// store's crash-matrix tests: a store.FS implementation that performs
// real file operations while tracking, per file, which bytes are
// durable (advanced only by Sync) and which would vanish if the machine
// died. Tests drive a Writer through it and then simulate the crash at
// any chosen operation boundary — fail the Nth operation, tear a write
// in half, or cut power with Crash, which drops every un-synced byte,
// keeps torn garbage, and discards renames never pinned by a directory
// sync. The model is deliberately worst-case: nothing written counts as
// durable until an explicit barrier said so, and a torn write's partial
// bytes do survive, so recovery must cope with both missing tails and
// garbage tails.
package storetest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mobipriv/internal/store"
)

// Errors injected by FaultFS. Match with errors.Is.
var (
	// ErrCrashed reports an operation attempted at or after the
	// simulated crash point: it performed nothing.
	ErrCrashed = errors.New("storetest: simulated crash")

	// ErrInjected reports the single operation FailAt selected: it
	// performed nothing, but the filesystem keeps working afterwards.
	ErrInjected = errors.New("storetest: injected fault")
)

// OpKind labels one filesystem operation in the recorded log.
type OpKind string

// The operation kinds FaultFS records — one per store.FS / store.File
// method that mutates state.
const (
	OpCreate   OpKind = "create"
	OpWrite    OpKind = "write"
	OpSync     OpKind = "sync"
	OpClose    OpKind = "close"
	OpRename   OpKind = "rename"
	OpRemove   OpKind = "remove"
	OpTruncate OpKind = "truncate"
	OpSyncDir  OpKind = "syncdir"
)

// Op is one recorded operation: its index N (0-based, the unit
// CrashAfter/FailAt/TearAt count in), what it was, the file it touched
// (base name) and, for writes, the payload size.
type Op struct {
	N     int
	Kind  OpKind
	Name  string
	Bytes int
}

func (o Op) String() string {
	if o.Kind == OpWrite {
		return fmt.Sprintf("#%d %s %s (%d bytes)", o.N, o.Kind, o.Name, o.Bytes)
	}
	return fmt.Sprintf("#%d %s %s", o.N, o.Kind, o.Name)
}

// fileState tracks one file created (or truncated) through the FaultFS.
type fileState struct {
	written int64    // bytes written through the wrapper
	durable int64    // high-water mark made durable by Sync
	torn    bool     // a torn write left partial garbage; Crash keeps it
	f       *os.File // underlying handle while open, nil after Close
}

// rename is a Rename whose durability is still pending a SyncDir.
type rename struct{ oldname, newname string }

// FaultFS is a store.FS that writes through to the real filesystem
// while simulating worst-case durability. Inject it via
// store.Options.FS.
//
// Fault selection (choose at most one per instance, before use):
//
//   - CrashAfter(n): the first n operations succeed; operation n and
//     everything after fail with ErrCrashed and perform nothing.
//   - TearAt(n): operation n must be a write; half its bytes reach the
//     file, then the filesystem crashes as with CrashAfter.
//   - FailAt(n): operation n alone fails with ErrInjected; no crash.
//
// After driving the writer into the fault, call Crash to settle the
// disk into its post-power-loss state: every tracked non-torn file is
// truncated to its synced watermark (removed entirely if never
// synced), torn files keep their garbage bytes, and renames never
// pinned by SyncDir are discarded. Files the FaultFS did not create —
// the committed segments of earlier generations — are never touched.
//
// All methods are safe for concurrent use, matching the Writer's own
// locking.
type FaultFS struct {
	mu         sync.Mutex
	n          int
	ops        []Op
	crashAfter int // crash at op n >= crashAfter; -1 = never
	tearAt     int // tear write op n == tearAt; -1 = never
	failAt     int // fail op n == failAt; -1 = never
	crashed    bool
	files      map[string]*fileState
	pending    []rename
}

var _ store.FS = (*FaultFS)(nil)

// New returns a FaultFS with no fault armed: every operation succeeds
// (and is recorded), which is how a test records the op log it then
// replays with CrashAfter or TearAt.
func New() *FaultFS {
	return &FaultFS{crashAfter: -1, tearAt: -1, failAt: -1, files: make(map[string]*fileState)}
}

// CrashAfter arms a crash at operation n: the first n operations
// succeed, the rest fail with ErrCrashed.
func (fs *FaultFS) CrashAfter(n int) *FaultFS { fs.crashAfter = n; return fs }

// TearAt arms a torn write at operation n: half the payload reaches the
// file, then the filesystem crashes.
func (fs *FaultFS) TearAt(n int) *FaultFS { fs.tearAt = n; return fs }

// FailAt arms a one-shot failure of operation n, with no crash.
func (fs *FaultFS) FailAt(n int) *FaultFS { fs.failAt = n; return fs }

// OpCount returns how many operations have been attempted so far
// (including the one that crashed or failed).
func (fs *FaultFS) OpCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.n
}

// Ops returns a copy of the recorded operation log, including the
// operation that crashed or failed (which performed nothing).
func (fs *FaultFS) Ops() []Op {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]Op(nil), fs.ops...)
}

// begin records one operation and applies the armed fault. It returns
// (tear=true) when this operation is the one TearAt selected. Caller
// holds mu.
func (fs *FaultFS) begin(kind OpKind, name string, bytes int) (tear bool, err error) {
	n := fs.n
	fs.n++
	fs.ops = append(fs.ops, Op{N: n, Kind: kind, Name: filepath.Base(name), Bytes: bytes})
	switch {
	case fs.crashed:
		return false, fmt.Errorf("%w: op #%d %s %s", ErrCrashed, n, kind, filepath.Base(name))
	case fs.crashAfter >= 0 && n >= fs.crashAfter:
		fs.crashed = true
		return false, fmt.Errorf("%w: op #%d %s %s", ErrCrashed, n, kind, filepath.Base(name))
	case fs.tearAt >= 0 && n == fs.tearAt:
		if kind != OpWrite {
			return false, fmt.Errorf("storetest: TearAt(%d) selected a %s of %s, not a write", n, kind, filepath.Base(name))
		}
		fs.crashed = true
		return true, nil
	case fs.failAt >= 0 && n == fs.failAt:
		return false, fmt.Errorf("%w: op #%d %s %s", ErrInjected, n, kind, filepath.Base(name))
	}
	return false, nil
}

// Create creates the named file for writing, tracked from zero bytes.
func (fs *FaultFS) Create(name string) (store.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.begin(OpCreate, name, 0); err != nil {
		return nil, err
	}
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	fs.files[name] = &fileState{f: f}
	return &faultFile{fs: fs, name: name}, nil
}

// Rename records the rename but applies it only at the next SyncDir —
// the worst-case model where an unsynced rename does not survive a
// crash. Until then the old name still holds its content.
func (fs *FaultFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.begin(OpRename, newname, 0); err != nil {
		return err
	}
	fs.pending = append(fs.pending, rename{oldname, newname})
	return nil
}

// Remove deletes the named file immediately.
func (fs *FaultFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.begin(OpRemove, name, 0); err != nil {
		return err
	}
	delete(fs.files, name)
	return os.Remove(name)
}

// Truncate cuts the named file immediately.
func (fs *FaultFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.begin(OpTruncate, name, 0); err != nil {
		return err
	}
	return os.Truncate(name, size)
}

// SyncDir applies and pins every pending rename — the commit point of
// the store's manifest swap under this model.
func (fs *FaultFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.begin(OpSyncDir, dir, 0); err != nil {
		return err
	}
	for _, r := range fs.pending {
		if err := os.Rename(r.oldname, r.newname); err != nil {
			return err
		}
		// The renamed file is durable under its new name; stop tracking
		// it so Crash does not touch it.
		delete(fs.files, r.oldname)
	}
	fs.pending = nil
	return nil
}

// Crash settles the real directory into its post-power-loss state:
// every tracked non-torn file is truncated back to its synced
// watermark (removed entirely when nothing was ever synced — its
// creation was never durable either), torn files keep all their bytes
// including the garbage tail, pending renames are discarded, and any
// still-open handles are closed. Untracked files are untouched. After
// Crash every further operation fails with ErrCrashed; reopen the
// store with a fresh filesystem to continue.
func (fs *FaultFS) Crash() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = true
	fs.pending = nil
	for name, st := range fs.files {
		if st.f != nil {
			st.f.Close()
			st.f = nil
		}
		switch {
		case st.torn:
			// Keep everything, garbage included.
		case st.durable == 0:
			if err := os.Remove(name); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
		default:
			if err := os.Truncate(name, st.durable); err != nil {
				return err
			}
		}
	}
	return nil
}

// faultFile is the store.File wrapper over one tracked file.
type faultFile struct {
	fs   *FaultFS
	name string
}

// Write appends p through to the real file. A torn write delivers only
// the first half of p and then crashes the filesystem.
func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	tear, err := f.fs.begin(OpWrite, f.name, len(p))
	if err != nil {
		return 0, err
	}
	st := f.fs.files[f.name]
	if st == nil || st.f == nil {
		return 0, fmt.Errorf("storetest: write to closed file %s", filepath.Base(f.name))
	}
	if tear {
		half := p[:len(p)/2]
		n, _ := st.f.Write(half)
		st.written += int64(n)
		st.torn = true
		return n, fmt.Errorf("%w: torn write of %s after %d of %d bytes", ErrCrashed, filepath.Base(f.name), n, len(p))
	}
	n, err := st.f.Write(p)
	st.written += int64(n)
	return n, err
}

// Sync advances the file's durable watermark to everything written.
func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, err := f.fs.begin(OpSync, f.name, 0); err != nil {
		return err
	}
	st := f.fs.files[f.name]
	if st == nil || st.f == nil {
		return fmt.Errorf("storetest: sync of closed file %s", filepath.Base(f.name))
	}
	if err := st.f.Sync(); err != nil {
		return err
	}
	st.durable = st.written
	return nil
}

// Close closes the underlying handle. Durability is unchanged: bytes
// not covered by a Sync still vanish at Crash.
func (f *faultFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	st := f.fs.files[f.name]
	if _, err := f.fs.begin(OpClose, f.name, 0); err != nil {
		// The simulated machine is gone, but the test process's real
		// file handle must not leak across the hundreds of matrix
		// iterations sharing it.
		if st != nil && st.f != nil {
			st.f.Close()
			st.f = nil
		}
		return err
	}
	if st == nil || st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}

package store

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mobipriv/internal/par"
	"mobipriv/internal/trace"
)

// PairScanFunc receives the two complete traces of one user, aligned
// across an original and an anonymized store. Exactly one side is nil
// for users present (after filtering) in only one store. Both traces
// are freshly built and owned by the callee.
type PairScanFunc func(orig, anon *trace.Trace) error

// PairScanStats reports what a paired scan did: how many users were
// aligned, which were one-sided, and the per-side block counters that
// prove pruning skipped work.
type PairScanStats struct {
	// Paired counts users delivered with both sides non-nil.
	Paired int64

	// OnlyOrig and OnlyAnon list the users delivered with one side nil
	// — present (with at least one point surviving the filters) in only
	// that store. Sorted.
	OnlyOrig []string
	OnlyAnon []string

	// Orig and Anon are the per-side scan counters. Their
	// PeakBufferedUsers fields stay zero; the paired scan tracks one
	// combined gauge below instead.
	Orig ScanStats
	Anon ScanStats

	// PeakBufferedUsers is the high-water mark of users concurrently in
	// flight — held from the start of a user's first gather until the
	// pair callback returns, so it covers the window where one side's
	// assembled trace is retained while the other side's fragments are
	// gathered. At most one per scanning goroutine, however large the
	// stores: the observable proof that memory is bounded by the worker
	// count.
	PeakBufferedUsers int64
}

// ScanTracesPaired streams the traces of two stores in lockstep,
// aligned by user: for every user it assembles the complete trace from
// each store (merging fragments exactly as ScanTraces) and delivers
// the pair in a single call. The stores may disagree on shard count —
// alignment uses each store's own user-hash routing, not segment
// numbering — and on user population: users present in only one store
// are delivered with the other side nil and recorded in
// PairScanStats.OnlyOrig/OnlyAnon.
//
// The bbox/time/user filters in opts apply to both sides, with footer
// pruning on both (the per-side counters land in stats.Orig and
// stats.Anon). A side whose every point is filtered away counts as
// absent; a user filtered to empty on both sides is not delivered at
// all.
//
// The scan fans the original store's shards across internal/par
// workers; each goroutine walks its shard's users in first-block order
// (generations oldest first), gathering the anonymized side of each
// user through the anonymized store's footer index. A second pass
// sweeps the users that exist only in the anonymized store. fn is
// therefore called concurrently and must be safe for that. Memory
// stays bounded by the goroutine count: at any moment a goroutine
// holds one user's assembled traces, never a dataset.
func ScanTracesPaired(ctx context.Context, orig, anon *Store, opts ScanOptions, fn PairScanFunc) (*PairScanStats, error) {
	if orig.closed.Load() || anon.closed.Load() {
		return nil, ErrClosed
	}
	if opts.Workers != 0 {
		ctx = par.WithWorkers(ctx, opts.Workers)
	}
	users := userSet(opts.Users)
	st := &PairScanStats{}
	// inFlight gauges users being processed (gathered on either side or
	// awaiting delivery); the per-fragment assembly windows inside
	// gatherUser feed a throwaway gauge, because they concern the same
	// user this gauge already counts.
	var inFlight, assembling, assemblingPeak int64

	// Index the anonymized side by user up front (footers only — no
	// block is read): anonBlocks[shard][user] lists the user's blocks
	// across that shard's generations, and shardOf routes a user
	// straight to its shard whatever the shard count. anonOrder keeps
	// each shard's first-block order for the pass-2 sweep.
	anonShards := anon.man.Shards
	anonOrder := make([][]string, anonShards)
	anonBlocks := make([]map[string][]partBlock, anonShards)
	for sh := range anonOrder {
		anonOrder[sh], anonBlocks[sh] = anon.shardUserBlocks(sh)
	}
	// Users present in the original store's footers: the anon-only
	// sweep skips these, because the first pass already considered them
	// (even when their original points were all filtered away).
	origSeen := make(map[string]bool)
	for _, seg := range orig.segs {
		for bi := range seg.entries {
			origSeen[seg.entries[bi].user] = true
		}
	}

	var mu sync.Mutex // guards OnlyOrig/OnlyAnon
	build := func(user string, pts []trace.Point) (*trace.Trace, error) {
		if len(pts) == 0 {
			return nil, nil
		}
		tr, err := trace.New(user, pts)
		if err != nil {
			return nil, fmt.Errorf("store: user %q: %w", user, err)
		}
		return tr, nil
	}
	gatherAnon := func(user string) (*trace.Trace, error) {
		si := shardOf(user, anonShards)
		idxs := anonBlocks[si][user]
		if len(idxs) == 0 {
			return nil, nil
		}
		pts, err := anon.gatherUser(idxs, users, opts, &st.Anon, &assembling, &assemblingPeak)
		if err != nil {
			return nil, err
		}
		tr, err := build(user, pts)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			atomic.AddInt64(&st.Anon.Points, int64(tr.Len()))
		}
		return tr, nil
	}

	// Pass 1: walk the original store; every user found here has both
	// sides resolved, one-sided or not.
	err := par.Map(ctx, len(orig.shards), func(sh int) error {
		order, blocks := orig.shardUserBlocks(sh)
		for _, user := range order {
			if err := ctx.Err(); err != nil {
				return err
			}
			err := func() error {
				// The gauge hold spans both gathers and the delivery:
				// the window where this goroutine retains one user's
				// traces from both stores at once.
				par.PeakAdd(&inFlight, &st.PeakBufferedUsers)
				defer atomic.AddInt64(&inFlight, -1)
				pts, err := orig.gatherUser(blocks[user], users, opts, &st.Orig, &assembling, &assemblingPeak)
				if err != nil {
					return err
				}
				otr, err := build(user, pts)
				if err != nil {
					return err
				}
				atr, err := gatherAnon(user)
				if err != nil {
					return err
				}
				switch {
				case otr == nil && atr == nil:
					return nil
				case otr != nil && atr != nil:
					atomic.AddInt64(&st.Orig.Points, int64(otr.Len()))
					atomic.AddInt64(&st.Paired, 1)
				case otr != nil:
					atomic.AddInt64(&st.Orig.Points, int64(otr.Len()))
					mu.Lock()
					st.OnlyOrig = append(st.OnlyOrig, user)
					mu.Unlock()
				default:
					mu.Lock()
					st.OnlyAnon = append(st.OnlyAnon, user)
					mu.Unlock()
				}
				return fn(otr, atr)
			}()
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Pass 2: sweep the users that exist only in the anonymized store.
	err = par.Map(ctx, len(anonOrder), func(sh int) error {
		for _, user := range anonOrder[sh] {
			if err := ctx.Err(); err != nil {
				return err
			}
			if origSeen[user] {
				continue
			}
			err := func() error {
				par.PeakAdd(&inFlight, &st.PeakBufferedUsers)
				defer atomic.AddInt64(&inFlight, -1)
				atr, err := gatherAnon(user)
				if err != nil || atr == nil {
					return err
				}
				mu.Lock()
				st.OnlyAnon = append(st.OnlyAnon, user)
				mu.Unlock()
				return fn(nil, atr)
			}()
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(st.OnlyOrig)
	sort.Strings(st.OnlyAnon)
	return st, nil
}

// Crash-matrix tests: drive an append session through the storetest
// fault-injection filesystem, simulate a crash at every operation
// boundary (and a torn write at every write boundary), and prove that
// recovery always yields exactly the last committed state — never a
// partial block, never a lost committed trace.
//
// These tests live in the external test package because storetest
// itself imports store: they exercise only the exported API, which is
// also what makes them an honest model of a crashing service process.
package store_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mobipriv/internal/store"
	"mobipriv/internal/store/storetest"
	"mobipriv/internal/trace"
)

var crashBase = time.Date(2025, 9, 1, 8, 0, 0, 0, time.UTC)

// crashPts builds n deterministic points whose coordinates are exact
// multiples of 1e-7° and whose times are microsecond-aligned, so a
// store round-trip is lossless and equality checks are exact.
func crashPts(seed, n int, start time.Time) []trace.Point {
	out := make([]trace.Point, n)
	for i := range out {
		out[i] = trace.P(float64((seed*7+i)%80), float64((seed*13+i)%170), start.Add(time.Duration(i)*time.Minute))
	}
	return out
}

// copyDir clones a store directory file by file, giving each matrix
// iteration a pristine pre-session state.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// loadUsers opens the store and materializes every trace.
func loadUsers(t *testing.T, dir string) map[string][]trace.Point {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open %s: %v", dir, err)
	}
	defer s.Close()
	d, err := s.Load(context.Background())
	if err != nil {
		t.Fatalf("Load %s: %v", dir, err)
	}
	out := make(map[string][]trace.Point, d.Len())
	for _, tr := range d.Traces() {
		out[tr.User] = tr.Points
	}
	return out
}

// samePointsExact asserts two loaded datasets are identical: same
// users, and per user the same points, position and microsecond alike.
func samePointsExact(t *testing.T, got, want map[string][]trace.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("loaded %d users, want %d", len(got), len(want))
	}
	for u, wp := range want {
		gp, ok := got[u]
		if !ok {
			t.Fatalf("user %q missing", u)
		}
		if len(gp) != len(wp) {
			t.Fatalf("user %q has %d points, want %d", u, len(gp), len(wp))
		}
		for i := range wp {
			if !gp[i].Time.Equal(wp[i].Time) || gp[i].Lat != wp[i].Lat || gp[i].Lng != wp[i].Lng {
				t.Fatalf("user %q point %d = %v, want %v", u, i, gp[i], wp[i])
			}
		}
	}
}

// buildCrashBase writes the committed generation-0 store every matrix
// iteration starts from: six users, two blocks each.
func buildCrashBase(t *testing.T, dir string) {
	t.Helper()
	w, err := store.Create(dir, store.Options{Shards: 4, BlockPoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 6; u++ {
		user := fmt.Sprintf("u%02d", u)
		if err := w.Append(user, crashPts(u, 6, crashBase)...); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// runAppendSession is the recorded ingest session the matrix replays:
// it extends two committed users (cross-generation fragments) and adds
// two new ones. Deterministic, so every replay produces the same
// operation sequence.
func runAppendSession(dir string, fsi store.FS) error {
	w, err := store.OpenAppend(dir, store.Options{BlockPoints: 4, FS: fsi})
	if err != nil {
		return err
	}
	later := crashBase.Add(24 * time.Hour)
	for i, user := range []string{"u01", "u03", "x00", "x01"} {
		if err := w.Append(user, crashPts(10+i, 6, later)...); err != nil {
			return err
		}
	}
	return w.Close()
}

// verifyCrashed checks the post-crash contract: the store opens, its
// contents are exactly the last committed state (the base generation,
// or base plus the appended session — nothing in between), and a
// subsequent OpenAppend recovers, accepts new data and commits it.
func verifyCrashed(t *testing.T, dir string, baseWant, fullWant map[string][]trace.Point) {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	gens := s.Manifest().Generations
	s.Close()
	var want map[string][]trace.Point
	switch gens {
	case 1:
		want = baseWant
	case 2:
		want = fullWant
	default:
		t.Fatalf("store has %d generations after crash, want 1 or 2", gens)
	}
	samePointsExact(t, loadUsers(t, dir), want)

	// The crashed directory must be fully writable again: recovery runs
	// once, the new session commits, and nothing of the old data moves.
	w, err := store.OpenAppend(dir, store.Options{BlockPoints: 4})
	if err != nil {
		t.Fatalf("OpenAppend after crash: %v", err)
	}
	if rec := w.Recovery(); rec.Runs != 1 {
		t.Fatalf("Recovery().Runs = %d, want 1", rec.Runs)
	}
	fresh := crashPts(99, 5, crashBase.Add(48*time.Hour))
	if err := w.Append("z-after-crash", fresh...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want2 := make(map[string][]trace.Point, len(want)+1)
	for u, p := range want {
		want2[u] = p
	}
	want2["z-after-crash"] = fresh
	samePointsExact(t, loadUsers(t, dir), want2)
}

// TestCrashMatrix simulates a whole-machine crash after every single
// filesystem operation of an append session — including k == total,
// the crash immediately after a successful commit, which proves the
// commit protocol made everything it needs durable.
func TestCrashMatrix(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.mstore")
	buildCrashBase(t, base)
	baseWant := loadUsers(t, base)

	// Recording pass: the clean run whose op log defines the matrix.
	rec := storetest.New()
	full := filepath.Join(t.TempDir(), "full.mstore")
	copyDir(t, base, full)
	if err := runAppendSession(full, rec); err != nil {
		t.Fatalf("recording session: %v", err)
	}
	fullWant := loadUsers(t, full)
	ops := rec.Ops()
	if len(ops) < 10 {
		t.Fatalf("recorded only %d ops — the session is too small to be a matrix", len(ops))
	}

	for k := 0; k <= len(ops); k++ {
		name := "after-commit"
		if k < len(ops) {
			name = fmt.Sprintf("op%02d-%s-%s", k, ops[k].Kind, ops[k].Name)
		}
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "m.mstore")
			copyDir(t, base, dir)
			ffs := storetest.New().CrashAfter(k)
			err := runAppendSession(dir, ffs)
			if k < len(ops) {
				if !errors.Is(err, storetest.ErrCrashed) {
					t.Fatalf("session err = %v, want ErrCrashed", err)
				}
			} else if err != nil {
				t.Fatalf("uncrashed session: %v", err)
			}
			if err := ffs.Crash(); err != nil {
				t.Fatal(err)
			}
			verifyCrashed(t, dir, baseWant, fullWant)
		})
	}
}

// TestCrashMatrixTornWrites re-runs the matrix with a torn write at
// every write boundary: half the payload persists as a garbage tail.
// No commit can have happened (every write precedes the directory
// sync), so the store must read back as exactly the base generation —
// the torn bytes are never delivered to a scan.
func TestCrashMatrixTornWrites(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.mstore")
	buildCrashBase(t, base)
	baseWant := loadUsers(t, base)

	rec := storetest.New()
	full := filepath.Join(t.TempDir(), "full.mstore")
	copyDir(t, base, full)
	if err := runAppendSession(full, rec); err != nil {
		t.Fatalf("recording session: %v", err)
	}
	fullWant := loadUsers(t, full)

	for _, op := range rec.Ops() {
		if op.Kind != storetest.OpWrite {
			continue
		}
		t.Run(fmt.Sprintf("tear-op%02d-%s", op.N, op.Name), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "t.mstore")
			copyDir(t, base, dir)
			ffs := storetest.New().TearAt(op.N)
			if err := runAppendSession(dir, ffs); !errors.Is(err, storetest.ErrCrashed) {
				t.Fatalf("session err = %v, want ErrCrashed", err)
			}
			if err := ffs.Crash(); err != nil {
				t.Fatal(err)
			}
			s, err := store.Open(dir)
			if err != nil {
				t.Fatalf("Open after torn write: %v", err)
			}
			if g := s.Manifest().Generations; g != 1 {
				t.Fatalf("torn session committed %d generations, want the base 1", g)
			}
			s.Close()
			samePointsExact(t, loadUsers(t, dir), baseWant)
			verifyCrashed(t, dir, baseWant, fullWant)
		})
	}
}

// TestCrashMatrixFreshCreate crashes the very first session of a brand
// new store at every operation boundary: there is nothing committed to
// preserve, so the contract is simply that OpenAppend on the debris
// recovers into a working empty store and the retried session commits.
func TestCrashMatrixFreshCreate(t *testing.T) {
	session := func(dir string, fsi store.FS) error {
		w, err := store.OpenAppend(dir, store.Options{Shards: 3, BlockPoints: 4, FS: fsi})
		if err != nil {
			return err
		}
		for u := 0; u < 4; u++ {
			if err := w.Append(fmt.Sprintf("f%02d", u), crashPts(u, 6, crashBase)...); err != nil {
				return err
			}
		}
		return w.Close()
	}

	rec := storetest.New()
	full := filepath.Join(t.TempDir(), "full.mstore")
	if err := session(full, rec); err != nil {
		t.Fatalf("recording session: %v", err)
	}
	fullWant := loadUsers(t, full)

	for k := 0; k < len(rec.Ops()); k++ {
		op := rec.Ops()[k]
		t.Run(fmt.Sprintf("op%02d-%s-%s", k, op.Kind, op.Name), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "f.mstore")
			ffs := storetest.New().CrashAfter(k)
			if err := session(dir, ffs); !errors.Is(err, storetest.ErrCrashed) {
				t.Fatalf("session err = %v, want ErrCrashed", err)
			}
			if err := ffs.Crash(); err != nil {
				t.Fatal(err)
			}
			// Nothing was committed, so Open must fail — there is no
			// manifest — but a retried session must succeed in full.
			if _, err := store.Open(dir); err == nil {
				t.Fatal("Open succeeded on an uncommitted store")
			}
			if err := session(dir, storetest.New()); err != nil {
				t.Fatalf("retried session: %v", err)
			}
			samePointsExact(t, loadUsers(t, dir), fullWant)
		})
	}
}

// TestRecoveryCrash crashes the recovery pass itself: recovery's own
// removals are interrupted, and the contract is that recovery is
// idempotent — the next OpenAppend finishes the job.
func TestRecoveryCrash(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.mstore")
	buildCrashBase(t, base)
	baseWant := loadUsers(t, base)

	// Leave uncommitted debris: crash an append session near its end,
	// but keep the unsynced segment files on disk (no ffs.Crash), as if
	// the process died but the page cache survived.
	rec := storetest.New()
	probe := filepath.Join(t.TempDir(), "probe.mstore")
	copyDir(t, base, probe)
	if err := runAppendSession(probe, rec); err != nil {
		t.Fatal(err)
	}
	total := rec.OpCount()

	dir := filepath.Join(t.TempDir(), "r.mstore")
	copyDir(t, base, dir)
	if err := runAppendSession(dir, storetest.New().CrashAfter(total-2)); !errors.Is(err, storetest.ErrCrashed) {
		t.Fatal("expected crashed session")
	}

	// First recovery attempt crashes on its very first operation.
	_, err := store.OpenAppend(dir, store.Options{FS: storetest.New().CrashAfter(0)})
	if !errors.Is(err, storetest.ErrCrashed) {
		t.Fatalf("OpenAppend with crashing recovery: err = %v, want ErrCrashed", err)
	}

	// Second attempt must complete recovery and leave a writable store.
	w, err := store.OpenAppend(dir, store.Options{BlockPoints: 4})
	if err != nil {
		t.Fatalf("OpenAppend after crashed recovery: %v", err)
	}
	recov := w.Recovery()
	if recov.Runs != 1 || recov.TruncatedTails == 0 {
		t.Fatalf("Recovery() = %+v, want 1 run with tails cleaned", recov)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	samePointsExact(t, loadUsers(t, dir), baseWant)
}

// TestCommittedTailTruncated pins the committed-file tail path: bytes
// appended to a committed segment behind the store's back (a crashed
// v1-era writer, a filesystem bug) are ignored by readers and cut back
// by recovery, because the manifest records the committed size.
func TestCommittedTailTruncated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tail.mstore")
	buildCrashBase(t, dir)
	want := loadUsers(t, dir)

	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg := s.Manifest().Segments[0]
	s.Close()
	full := filepath.Join(dir, seg.File)
	f, err := os.OpenFile(full, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("garbage tail that was never committed")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Readers ignore the tail outright.
	samePointsExact(t, loadUsers(t, dir), want)

	// Recovery truncates it and counts it.
	w, err := store.OpenAppend(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec := w.Recovery(); rec.TruncatedTails != 1 {
		t.Fatalf("Recovery().TruncatedTails = %d, want 1", rec.TruncatedTails)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(full)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != seg.Size {
		t.Fatalf("segment is %d bytes after recovery, committed size %d", st.Size(), seg.Size)
	}
	samePointsExact(t, loadUsers(t, dir), want)
}

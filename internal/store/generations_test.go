package store

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"mobipriv/internal/trace"
)

// compactLoad compacts s into a fresh single-generation store and
// returns that store's full contents.
func compactLoad(t *testing.T, s *Store) *trace.Dataset {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "compact.mstore")
	w, err := Create(dir, Options{Shards: 4, BlockPoints: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(context.Background(), s, w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	if g := cs.Manifest().Generations; g != 1 {
		t.Fatalf("compacted store has %d generations, want 1", g)
	}
	d, err := cs.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestGenerationEquivalence is the property behind reopen-for-append:
// however a dataset is cut across K OpenAppend sessions, the resulting
// multi-generation store is observationally identical to the store
// written in one session — Load, ScanTraces at several worker counts,
// and Compact all produce the same traces. 20 seeds, random session
// counts and per-user cut points.
func TestGenerationEquivalence(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(seed)))
			d := exactDataset(t, 8, 30)
			single := buildStore(t, d, Options{Shards: 4, BlockPoints: 8})

			// Cut every trace into K contiguous chunks (some empty) and
			// write chunk j in append session j.
			K := 2 + rnd.Intn(4)
			cuts := make(map[string][]int, d.Len())
			for _, tr := range d.Traces() {
				b := make([]int, K+1)
				b[K] = tr.Len()
				for j := 1; j < K; j++ {
					b[j] = rnd.Intn(tr.Len() + 1)
				}
				sort.Ints(b)
				cuts[tr.User] = b
			}
			dir := filepath.Join(t.TempDir(), "gen.mstore")
			committed := 0
			for sess := 0; sess < K; sess++ {
				w, err := OpenAppend(dir, Options{Shards: 4, BlockPoints: 8})
				if err != nil {
					t.Fatalf("session %d: %v", sess, err)
				}
				if g := w.Recovery().Generation; g != int64(committed) {
					t.Errorf("session %d opened at generation %d, want %d", sess, g, committed)
				}
				wrote := false
				for _, tr := range d.Traces() {
					b := cuts[tr.User]
					chunk := tr.Points[b[sess]:b[sess+1]]
					if len(chunk) == 0 {
						continue
					}
					if err := w.Append(tr.User, chunk...); err != nil {
						t.Fatalf("session %d user %q: %v", sess, tr.User, err)
					}
					wrote = true
				}
				if err := w.Close(); err != nil {
					t.Fatalf("session %d close: %v", sess, err)
				}
				if wrote {
					committed++
				}
			}

			gs, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer gs.Close()
			// Sessions that wrote nothing reuse their generation number:
			// the committed count, not K, is what the manifest records.
			if g := gs.Manifest().Generations; g != committed {
				t.Errorf("store has %d generations, %d sessions committed data", g, committed)
			}

			got, err := gs.Load(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			sameDataset(t, d, got)

			for _, workers := range []int{1, 4, 16} {
				var mu sync.Mutex
				var traces []*trace.Trace
				err := gs.ScanTraces(context.Background(), ScanOptions{Workers: workers}, func(tr *trace.Trace) error {
					mu.Lock()
					traces = append(traces, tr)
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Fatalf("ScanTraces workers=%d: %v", workers, err)
				}
				ds, err := trace.NewDataset(traces)
				if err != nil {
					t.Fatalf("ScanTraces workers=%d: %v", workers, err)
				}
				sameDataset(t, d, ds)
			}

			sameDataset(t, compactLoad(t, single), compactLoad(t, gs))
		})
	}
}

// TestOpenAppendRejectsSealedUsers pins the whole-trace promise across
// generations: Add refuses a user whose points already live in a
// committed generation, while Append extends them.
func TestOpenAppendRejectsSealedUsers(t *testing.T) {
	d := exactDataset(t, 3, 8)
	dir := filepath.Join(t.TempDir(), "sealed.mstore")
	if err := WriteDataset(dir, d, Options{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	w, err := OpenAppend(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	user := d.Traces()[0].User
	if err := w.Add(d.Traces()[0]); err == nil {
		t.Fatalf("Add(%q) over a committed generation succeeded, want ErrDuplicateUser", user)
	}
	last := d.ByUser(user).End()
	if err := w.Append(user, trace.P(1, 1, last.Time.Add(time.Minute))); err != nil {
		t.Fatalf("Append(%q) across generations: %v", user, err)
	}
}

package store

import (
	"context"
	"fmt"
	"sync/atomic"

	"mobipriv/internal/trace"
)

// CompactStats reports what a Compact pass did.
type CompactStats struct {
	Users    int   // traces rewritten
	Points   int64 // points rewritten (after microsecond dedup)
	BlocksIn int64 // blocks read from the fragmented input

	// PeakBufferedUsers is the assembly high-water mark inherited from
	// the underlying ScanTraces — at most one multi-block user per
	// segment goroutine.
	PeakBufferedUsers int64
}

// Compact streams the contents of s into w, merging each user's
// fragmented blocks — the typical product of a streaming sink — into
// contiguous, time-sorted, deduplicated runs. It is built on the same
// scan→write plumbing as store-native mechanism runs: segments are
// fanned across the context's internal/par worker budget (serial
// without one), each user's blocks are gathered and handed straight to
// w.Add, and at no point is more than one user's fragments per segment
// goroutine held in memory — however interleaved the input. The caller
// owns both stores: w is left open so the caller can inspect or extend
// it before Close.
func Compact(ctx context.Context, s *Store, w *Writer) (CompactStats, error) {
	var scan ScanStats
	// Count this pass's own Adds: the caller may be extending a Writer
	// that already holds other users.
	var rewritten int64
	err := s.ScanTraces(ctx, ScanOptions{NoCache: true, Stats: &scan}, func(tr *trace.Trace) error {
		if err := w.Add(tr); err != nil {
			return fmt.Errorf("store: compact user %q: %w", tr.User, err)
		}
		atomic.AddInt64(&rewritten, 1)
		return nil
	})
	if err != nil {
		return CompactStats{}, err
	}
	return CompactStats{
		Users:             int(rewritten),
		Points:            scan.Points,
		BlocksIn:          scan.BlocksTotal,
		PeakBufferedUsers: scan.PeakBufferedUsers,
	}, nil
}

package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// exactDataset builds a deterministic dataset whose coordinates are
// exact multiples of 1e-7° and whose timestamps are whole seconds, so
// the store's fixed-point quantization is lossless and round trips can
// be compared exactly.
func exactDataset(t testing.TB, users, pointsEach int) *trace.Dataset {
	t.Helper()
	rnd := rand.New(rand.NewSource(42))
	base := time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC)
	var traces []*trace.Trace
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("u%03d", u)
		// Fixed-point coordinates divided once by CoordScale, so each
		// value is exactly what dequantize produces.
		latQ := int64(rnd.Intn(2*90*1e6)-90*1e6) * 10
		lngQ := int64(rnd.Intn(2*180*1e6)-180*1e6) * 10
		pts := make([]trace.Point, pointsEach)
		for i := range pts {
			pts[i] = trace.P(
				float64(latQ+int64(i))/CoordScale,
				float64(lngQ+int64(i*3))/CoordScale,
				base.Add(time.Duration(u*pointsEach+i*5)*time.Second),
			)
		}
		traces = append(traces, trace.MustNew(user, pts))
	}
	return trace.MustNewDataset(traces)
}

// buildStore writes d into a fresh store under t.TempDir and opens it.
func buildStore(t testing.TB, d *trace.Dataset, opts Options) *Store {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "data.mstore")
	if err := WriteDataset(dir, d, opts); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// sameDataset fails the test unless a and b agree on users, point
// counts, timestamps and coordinates exactly.
func sameDataset(t *testing.T, a, b *trace.Dataset) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("user count %d != %d", a.Len(), b.Len())
	}
	for _, ta := range a.Traces() {
		tb := b.ByUser(ta.User)
		if tb == nil {
			t.Fatalf("user %q missing", ta.User)
		}
		if ta.Len() != tb.Len() {
			t.Fatalf("user %q: %d points != %d", ta.User, ta.Len(), tb.Len())
		}
		for i := range ta.Points {
			pa, pb := ta.Points[i], tb.Points[i]
			if !pa.Time.Equal(pb.Time) {
				t.Fatalf("user %q point %d: time %v != %v", ta.User, i, pa.Time, pb.Time)
			}
			if pa.Lat != pb.Lat || pa.Lng != pb.Lng {
				t.Fatalf("user %q point %d: coords (%v,%v) != (%v,%v)",
					ta.User, i, pa.Lat, pa.Lng, pb.Lat, pb.Lng)
			}
		}
	}
}

// TestRoundTripCSV pins the acceptance criterion: CSV -> store ->
// Load() is identical to ReadCSV for quantization-exact input.
func TestRoundTripCSV(t *testing.T) {
	d := exactDataset(t, 13, 40)
	var buf bytes.Buffer
	if err := traceio.WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := traceio.ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s := buildStore(t, fromCSV, Options{Shards: 4})
	loaded, err := s.Load(context.Background())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	sameDataset(t, fromCSV, loaded)
}

// TestRoundTripProperty drives the encoder through its edge cases:
// negative coordinates, extreme in-range values near the zigzag/varint
// boundaries, single-point traces and sub-second timestamps.
func TestRoundTripProperty(t *testing.T) {
	base := time.Date(1960, 1, 1, 0, 0, 0, 0, time.UTC) // negative Unix epoch
	mk := func(user string, coords [][2]float64) *trace.Trace {
		pts := make([]trace.Point, len(coords))
		for i, c := range coords {
			pts[i] = trace.P(c[0], c[1], base.Add(time.Duration(i)*1500*time.Millisecond))
		}
		return trace.MustNew(user, pts)
	}
	d := trace.MustNewDataset([]*trace.Trace{
		mk("negative", [][2]float64{{-89.9999999, -179.9999999}, {-0.0000001, -0.0000001}, {0, 0}}),
		mk("extremes", [][2]float64{{-90, -180}, {90, 180}}),
		mk("single", [][2]float64{{48.8566, 2.3522}}),
		mk("jumpy", [][2]float64{{89.5, 179.5}, {-89.5, -179.5}, {89.5, 179.5}}),
	})
	s := buildStore(t, d, Options{Shards: 3, BlockPoints: 2})
	loaded, err := s.Load(context.Background())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	sameDataset(t, d, loaded)
}

func TestRoundTripRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	base := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	var traces []*trace.Trace
	for u := 0; u < 20; u++ {
		n := 1 + rnd.Intn(50)
		pts := make([]trace.Point, n)
		ts := base.Add(time.Duration(rnd.Int63n(1e6)) * time.Millisecond)
		for i := range pts {
			ts = ts.Add(time.Duration(1+rnd.Int63n(1e7)) * time.Microsecond)
			pts[i] = trace.P(
				float64(rnd.Int63n(2*90*1e7+1)-90*1e7)/CoordScale,
				float64(rnd.Int63n(2*180*1e7+1)-180*1e7)/CoordScale,
				ts,
			)
		}
		traces = append(traces, trace.MustNew(string(rune('A'+u)), pts))
	}
	d := trace.MustNewDataset(traces)
	s := buildStore(t, d, Options{Shards: 5, BlockPoints: 7})
	loaded, err := s.Load(context.Background())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	sameDataset(t, d, loaded)
}

func TestEmptyStore(t *testing.T) {
	d := trace.MustNewDataset(nil)
	s := buildStore(t, d, Options{Shards: 2})
	loaded, err := s.Load(context.Background())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != 0 {
		t.Fatalf("want empty dataset, got %v", loaded)
	}
	if _, _, ok := s.TimeSpan(); ok {
		t.Error("TimeSpan ok for empty store")
	}
	if !s.Bounds().IsEmpty() {
		t.Errorf("Bounds = %v, want empty", s.Bounds())
	}
}

func TestDuplicateUserRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dup.mstore")
	w, err := Create(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tr := trace.MustNew("alice", []trace.Point{trace.P(1, 2, time.Unix(0, 0))})
	if err := w.Add(tr); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(tr); !errors.Is(err, ErrDuplicateUser) {
		t.Fatalf("second Add: err = %v, want ErrDuplicateUser", err)
	}
	if err := w.Append("alice", trace.P(3, 4, time.Unix(5, 0))); !errors.Is(err, ErrDuplicateUser) {
		t.Fatalf("Append after Add: err = %v, want ErrDuplicateUser", err)
	}
	// Append does allow incremental growth for users not sealed by Add.
	if err := w.Append("bob", trace.P(1, 1, time.Unix(1, 0))); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("bob", trace.P(2, 2, time.Unix(2, 0))); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(trace.MustNew("bob", []trace.Point{trace.P(9, 9, time.Unix(9, 0))})); !errors.Is(err, ErrDuplicateUser) {
		t.Fatalf("Add after Append: err = %v, want ErrDuplicateUser", err)
	}
}

// TestAppendFragmented checks that a user streamed in many small
// appends (several blocks) loads back as one merged, sorted trace.
func TestAppendFragmented(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "frag.mstore")
	w, err := Create(dir, Options{Shards: 2, BlockPoints: 3})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	want := make([]trace.Point, 10)
	for i := range want {
		want[i] = trace.P(10+float64(i)/1e4, 20, base.Add(time.Duration(i)*time.Minute))
	}
	for i := 0; i < len(want); i += 2 {
		if err := w.Append("carol", want[i], want[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr := d.ByUser("carol")
	if tr == nil || tr.Len() != len(want) {
		t.Fatalf("loaded %v, want 10-point carol", tr)
	}
	for i, p := range tr.Points {
		if !p.Time.Equal(want[i].Time) {
			t.Fatalf("point %d: time %v, want %v", i, p.Time, want[i].Time)
		}
	}
	// Several blocks must actually exist for the test to mean anything.
	blocks := 0
	for _, si := range s.Manifest().Segments {
		blocks += si.Blocks
	}
	if blocks < 3 {
		t.Fatalf("manifest reports %d blocks, want >= 3", blocks)
	}
}

func TestScanFiltersAndPruning(t *testing.T) {
	d := exactDataset(t, 16, 32)
	s := buildStore(t, d, Options{Shards: 4, BlockPoints: 8})
	ctx := context.Background()

	t.Run("user filter prunes", func(t *testing.T) {
		user := d.Users()[3]
		var stats ScanStats
		got := 0
		err := s.Scan(ctx, ScanOptions{Users: []string{user}, Stats: &stats}, func(u string, pts []trace.Point) error {
			if u != user {
				t.Errorf("got user %q", u)
			}
			got += len(pts)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != d.ByUser(user).Len() {
			t.Errorf("yielded %d points, want %d", got, d.ByUser(user).Len())
		}
		if stats.BlocksPruned == 0 {
			t.Errorf("no blocks pruned: %+v", stats)
		}
		if stats.BlocksDecoded+stats.CacheHits >= stats.BlocksTotal {
			t.Errorf("pruning did not skip decodes: %+v", stats)
		}
	})

	t.Run("disjoint time window decodes nothing", func(t *testing.T) {
		from, to, _ := s.TimeSpan()
		var stats ScanStats
		err := s.Scan(ctx, ScanOptions{From: to.Add(time.Hour), To: to.Add(2 * time.Hour), Stats: &stats},
			func(string, []trace.Point) error {
				t.Error("unexpected block yielded")
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if stats.BlocksDecoded != 0 || stats.CacheHits != 0 {
			t.Errorf("disjoint scan decoded blocks: %+v", stats)
		}
		if stats.BlocksPruned != stats.BlocksTotal {
			t.Errorf("want all %d blocks pruned, got %d", stats.BlocksTotal, stats.BlocksPruned)
		}
		_ = from
	})

	t.Run("bbox filter is exact", func(t *testing.T) {
		box := geo.NewBBox(geo.Point{Lat: -45, Lng: -90}, geo.Point{Lat: 45, Lng: 90})
		want := 0
		for _, tr := range d.Traces() {
			for _, p := range tr.Points {
				if box.Contains(p.Point) {
					want++
				}
			}
		}
		var stats ScanStats
		got := 0
		err := s.Scan(ctx, ScanOptions{BBox: box, Workers: 4, Stats: &stats}, func(_ string, pts []trace.Point) error {
			for _, p := range pts {
				if !box.Contains(p.Point) {
					t.Errorf("point %v outside bbox", p)
				}
			}
			got += len(pts)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("yielded %d points, want %d", got, want)
		}
	})

	t.Run("cache serves repeat scans", func(t *testing.T) {
		var first, second ScanStats
		discard := func(string, []trace.Point) error { return nil }
		if err := s.Scan(ctx, ScanOptions{Stats: &first}, discard); err != nil {
			t.Fatal(err)
		}
		if err := s.Scan(ctx, ScanOptions{Stats: &second}, discard); err != nil {
			t.Fatal(err)
		}
		if second.CacheHits == 0 {
			t.Errorf("second scan hit no cache: %+v", second)
		}
	})
}

func TestScanConcurrentIsComplete(t *testing.T) {
	d := exactDataset(t, 24, 16)
	s := buildStore(t, d, Options{Shards: 8, BlockPoints: 4})
	got, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameDataset(t, d, got)
}

func TestCreateExisting(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "x.mstore")
	if err := WriteDataset(dir, trace.MustNewDataset(nil), Options{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, Options{}); !errors.Is(err, ErrExists) {
		t.Fatalf("Create over store: err = %v, want ErrExists", err)
	}
	// Overwrite replaces the old store in place.
	d := exactDataset(t, 3, 5)
	if err := WriteDataset(dir, d, Options{Shards: 2, Overwrite: true}); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Manifest().Users != 3 || s.Manifest().Shards != 2 {
		t.Fatalf("overwritten manifest = %+v", s.Manifest())
	}
	// The shard-count change must not leave stale segment files behind:
	// what is on disk is exactly what the new manifest committed.
	want := make(map[string]bool)
	for _, si := range s.Manifest().Segments {
		want[si.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !isSegmentFileName(e.Name()) {
			continue
		}
		if !want[e.Name()] {
			t.Fatalf("stale segment file %s after overwrite (manifest has %v)", e.Name(), s.Manifest().Segments)
		}
		delete(want, e.Name())
	}
	if len(want) != 0 {
		t.Fatalf("committed segment files missing on disk: %v", want)
	}
}

// TestDuplicateTimestampsCollapse pins that data whose timestamps
// collide on the on-disk microsecond (raw PLT dumps, quantization)
// still produces a loadable store: the first observation of each
// colliding run wins, within a block and across appended fragments.
func TestDuplicateTimestampsCollapse(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dupts.mstore")
	w, err := Create(dir, Options{Shards: 1, BlockPoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2025, 4, 1, 12, 0, 0, 0, time.UTC)
	// Same microsecond within one append, and again in a later
	// fragment (separate block).
	if err := w.Append("u", trace.P(1, 1, ts), trace.P(2, 2, ts), trace.P(3, 3, ts.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("u", trace.P(9, 9, ts)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d, err := s.Load(context.Background())
	if err != nil {
		t.Fatalf("Load with duplicate timestamps: %v", err)
	}
	tr := d.ByUser("u")
	if tr == nil || tr.Len() != 2 {
		t.Fatalf("loaded %v, want 2 deduped points", tr)
	}
	if tr.Points[0].Lat != 1 {
		t.Errorf("first-wins violated: kept lat %v", tr.Points[0].Lat)
	}
}

// TestWriterFlushBoundsBuffers pins the streaming-sink memory bound:
// Flush writes out sub-block buffers mid-stream, and appending after a
// Flush still loads back as one merged trace.
func TestWriterFlushBoundsBuffers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "flush.mstore")
	w, err := Create(dir, Options{Shards: 2, BlockPoints: 1000})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2025, 7, 1, 0, 0, 0, 0, time.UTC)
	if err := w.Append("u", trace.P(1, 1, base), trace.P(2, 2, base.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(w.bufs) != 0 {
		t.Fatalf("buffers not drained after Flush: %d users pending", len(w.bufs))
	}
	if err := w.Append("u", trace.P(3, 3, base.Add(2*time.Second))); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tr := d.ByUser("u"); tr == nil || tr.Len() != 3 {
		t.Fatalf("loaded %v, want 3-point u", d.ByUser("u"))
	}
}

// TestOpenRejectsOutOfRangeBlock pins the footer bounds check against
// uint64 overflow: a corrupt entry whose length wraps offset+length
// must surface as ErrCorrupt, not a makeslice panic.
func TestOpenRejectsOutOfRangeBlock(t *testing.T) {
	block, st := appendBlock(nil, "u", []trace.Point{trace.P(1, 2, time.Unix(0, 0))})
	for _, e := range []blockEntry{
		{offset: uint64(len(magicHeader)), length: ^uint64(0) - uint64(len(magicHeader)) + 1, blockStats: st},
		{offset: ^uint64(0) - 2, length: 8, blockStats: st},
		{offset: 0, length: uint64(len(block)), blockStats: st},
	} {
		data := []byte(magicHeader)
		data = append(data, block...)
		footer := appendFooter(nil, []blockEntry{e})
		data = append(data, footer...)
		var trailer [16]byte
		binary.LittleEndian.PutUint64(trailer[:8], uint64(len(footer)))
		copy(trailer[8:], magicTrailer)
		data = append(data, trailer[:]...)
		path := filepath.Join(t.TempDir(), "seg.blk")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := openSegment(path, 0); !errors.Is(err, ErrCorrupt) {
			t.Errorf("entry %+v: err = %v, want ErrCorrupt", e, err)
		}
	}
}

func TestWriterClosed(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c.mstore")
	w, err := Create(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := w.Append("u", trace.P(0, 0, time.Unix(0, 0))); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: err = %v, want ErrClosed", err)
	}
}

// corrupt flips one byte inside the first non-empty segment's block
// region and reports which file it touched.
func corruptSegment(t *testing.T, s *Store, dir string) string {
	t.Helper()
	for _, si := range s.Manifest().Segments {
		if si.Blocks == 0 {
			continue
		}
		path := filepath.Join(dir, si.File)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(magicHeader)+2] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return si.File
	}
	t.Fatal("no non-empty segment to corrupt")
	return ""
}

func TestCorruptBlockDetected(t *testing.T) {
	d := exactDataset(t, 4, 8)
	dir := filepath.Join(t.TempDir(), "bad.mstore")
	if err := WriteDataset(dir, d, Options{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	corruptSegment(t, s, dir)
	s.Close()
	s, err = Open(dir) // footers are intact, Open succeeds
	if err != nil {
		t.Fatalf("Open after block corruption: %v", err)
	}
	defer s.Close()
	err = s.Scan(context.Background(), ScanOptions{}, func(string, []trace.Point) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Scan over corrupt block: err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedFooterDetected(t *testing.T) {
	d := exactDataset(t, 4, 8)
	dir := filepath.Join(t.TempDir(), "trunc.mstore")
	if err := WriteDataset(dir, d, Options{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, partName(0, 0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 16, len(data) / 2} {
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open with %d bytes truncated: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestOpenRejectsBadManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "m.mstore")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"format":"tar"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with wrong format: err = %v, want ErrCorrupt", err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"format":"mstore","version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with future version: err = %v, want version error", err)
	}
}

// TestShardAssignment pins that a user's blocks live only in its hash
// shard, the property pruned per-user scans rely on.
func TestShardAssignment(t *testing.T) {
	d := exactDataset(t, 20, 4)
	s := buildStore(t, d, Options{Shards: 4, BlockPoints: 2})
	for i, seg := range s.segs {
		for _, e := range seg.entries {
			if got := shardOf(e.user, 4); got != i {
				t.Errorf("user %q block in segment %d, hash says %d", e.user, i, got)
			}
		}
	}
}

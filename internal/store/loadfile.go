package store

import (
	"context"
	"strings"

	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// ReadDataset loads a dataset from any supported path: an ".mstore"
// store directory via Open/Load, or CSV/JSONL/PLT text (optionally
// gzipped) via traceio.ReadFile — the one input loader shared by the
// batch command-line tools.
func ReadDataset(ctx context.Context, path string) (*trace.Dataset, error) {
	if strings.HasSuffix(path, ".mstore") {
		s, err := Open(path)
		if err != nil {
			return nil, err
		}
		defer s.Close()
		return s.Load(ctx)
	}
	return traceio.ReadFile(path)
}

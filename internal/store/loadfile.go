package store

import (
	"context"
	"os"
	"path/filepath"
	"strings"

	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// SamePath reports whether a and b name the same file or directory —
// the guard the streaming store-to-store paths (mobianon store-native,
// mobistore compact) use to refuse in-place rewrites, which would
// unlink the input's segments before reading them. Falls back to
// lexical comparison when either path does not exist yet.
func SamePath(a, b string) bool {
	ai, errA := os.Stat(a)
	bi, errB := os.Stat(b)
	if errA == nil && errB == nil {
		return os.SameFile(ai, bi)
	}
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	return errA == nil && errB == nil && aa == bb
}

// ReadDataset loads a dataset from any supported path: an ".mstore"
// store directory via Open/Load, or CSV/JSONL/PLT text (optionally
// gzipped) via traceio.ReadFile — the one input loader shared by the
// batch command-line tools.
func ReadDataset(ctx context.Context, path string) (*trace.Dataset, error) {
	if strings.HasSuffix(path, ".mstore") {
		s, err := Open(path)
		if err != nil {
			return nil, err
		}
		defer s.Close()
		return s.Load(ctx)
	}
	return traceio.ReadFile(path)
}

package store

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mobipriv/internal/trace"
)

// collectTraces drains ScanTraces into a dataset for comparison.
func collectTraces(t *testing.T, s *Store, opts ScanOptions) (*trace.Dataset, ScanStats) {
	t.Helper()
	var (
		mu     sync.Mutex
		traces []*trace.Trace
		stats  ScanStats
	)
	opts.Stats = &stats
	err := s.ScanTraces(context.Background(), opts, func(tr *trace.Trace) error {
		mu.Lock()
		traces = append(traces, tr)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("ScanTraces: %v", err)
	}
	d, err := trace.NewDataset(traces)
	if err != nil {
		t.Fatalf("assemble dataset: %v", err)
	}
	return d, stats
}

// fragmentedStore builds a store the way a streaming sink would: users
// interleaved, many tiny appends each, so every user is spread over
// several blocks of their shard.
func fragmentedStore(t *testing.T, users, pointsEach, blockPoints, shards int) (*Store, *trace.Dataset) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "frag.mstore")
	w, err := Create(dir, Options{Shards: shards, BlockPoints: blockPoints})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2025, 6, 1, 6, 0, 0, 0, time.UTC)
	var traces []*trace.Trace
	pts := make([][]trace.Point, users)
	for u := range pts {
		pts[u] = make([]trace.Point, pointsEach)
		for i := range pts[u] {
			pts[u][i] = trace.P(
				float64(100000*u+10*i)/CoordScale,
				float64(2000000+30*i)/CoordScale,
				base.Add(time.Duration(u*7+i*60)*time.Second),
			)
		}
	}
	// Interleave: one point per user per round.
	for i := 0; i < pointsEach; i++ {
		for u := 0; u < users; u++ {
			if err := w.Append(fmt.Sprintf("u%02d", u), pts[u][i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for u := range pts {
		traces = append(traces, trace.MustNew(fmt.Sprintf("u%02d", u), pts[u]))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, trace.MustNewDataset(traces)
}

// TestScanTracesMatchesLoad pins that trace-by-trace scanning over a
// heavily fragmented multi-shard store assembles exactly what Load
// materializes, while buffering only in-flight users.
func TestScanTracesMatchesLoad(t *testing.T) {
	s, want := fragmentedStore(t, 12, 9, 2, 4)
	got, stats := collectTraces(t, s, ScanOptions{Workers: 4, NoCache: true})
	sameDataset(t, want, got)
	if stats.PeakBufferedUsers == 0 {
		t.Errorf("interleaved store assembled without buffering: %+v", stats)
	}
	// The bound that makes larger-than-RAM runs possible: one user
	// being assembled per segment goroutine (4 workers), however
	// interleaved the segments are.
	if stats.PeakBufferedUsers > 4 {
		t.Errorf("PeakBufferedUsers = %d > 4 segment goroutines", stats.PeakBufferedUsers)
	}
	loaded, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameDataset(t, loaded, got)
}

// TestScanTracesCompactedFastPath pins that a compacted store (one
// block per user) is streamed without any fragment buffering.
func TestScanTracesCompactedFastPath(t *testing.T) {
	d := exactDataset(t, 10, 20)
	s := buildStore(t, d, Options{Shards: 4})
	got, stats := collectTraces(t, s, ScanOptions{Workers: 2})
	sameDataset(t, d, got)
	if stats.PeakBufferedUsers != 0 {
		t.Errorf("compacted store buffered %d users, want 0", stats.PeakBufferedUsers)
	}
}

// TestScanTracesFilters checks user pruning and exact time filtering at
// the trace level.
func TestScanTracesFilters(t *testing.T) {
	s, want := fragmentedStore(t, 8, 6, 2, 2)

	t.Run("user filter", func(t *testing.T) {
		got, stats := collectTraces(t, s, ScanOptions{Users: []string{"u03"}})
		if got.Len() != 1 || got.ByUser("u03") == nil {
			t.Fatalf("got %v, want only u03", got.Users())
		}
		sameDataset(t, trace.MustNewDataset([]*trace.Trace{want.ByUser("u03")}), got)
		if stats.BlocksPruned == 0 {
			t.Errorf("no blocks pruned: %+v", stats)
		}
	})

	t.Run("time filter is exact", func(t *testing.T) {
		from := want.ByUser("u00").Points[2].Time
		got, _ := collectTraces(t, s, ScanOptions{From: from})
		for _, tr := range got.Traces() {
			for _, p := range tr.Points {
				if p.Time.Before(from) {
					t.Fatalf("user %s point %v before filter %v", tr.User, p.Time, from)
				}
			}
		}
		// Count must match a brute-force filter of the source.
		wantPts := 0
		for _, tr := range want.Traces() {
			for _, p := range tr.Points {
				if !p.Time.Before(from) {
					wantPts++
				}
			}
		}
		if got.TotalPoints() != wantPts {
			t.Errorf("filtered scan yielded %d points, want %d", got.TotalPoints(), wantPts)
		}
	})
}

// TestScanTracesPropagatesError pins that a callback error aborts the
// scan.
func TestScanTracesPropagatesError(t *testing.T) {
	s, _ := fragmentedStore(t, 4, 4, 2, 2)
	boom := errors.New("boom")
	err := s.ScanTraces(context.Background(), ScanOptions{}, func(*trace.Trace) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestCompactStreams pins the streaming compaction path: a fragmented
// multi-shard store compacts to one block per user, content-identical
// on Load, with the assembly high-water mark reported.
func TestCompactStreams(t *testing.T) {
	s, want := fragmentedStore(t, 10, 8, 2, 4)
	outDir := filepath.Join(t.TempDir(), "tidy.mstore")
	w, err := Create(outDir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Compact(context.Background(), s, w)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Users != want.Len() || st.Points != int64(want.TotalPoints()) {
		t.Errorf("stats = %+v, want %d users, %d points", st, want.Len(), want.TotalPoints())
	}
	if st.PeakBufferedUsers == 0 {
		t.Errorf("fragmented compact reported no buffering: %+v", st)
	}
	// Compact without a context worker budget scans serially: exactly
	// one user's fragments in memory at any moment.
	if st.PeakBufferedUsers != 1 {
		t.Errorf("serial compact buffered %d users at peak, want 1", st.PeakBufferedUsers)
	}
	c, err := Open(outDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	blocks := 0
	for _, si := range c.Manifest().Segments {
		blocks += si.Blocks
	}
	if blocks != want.Len() {
		t.Errorf("compacted store has %d blocks, want one per user (%d)", blocks, want.Len())
	}
	got, err := c.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameDataset(t, want, got)
}

// TestAddFlushesWholeTrace pins the Writer memory bound store-native
// runs rely on: after Add returns, nothing of the trace lingers in the
// per-user buffers (the sub-block tail included).
func TestAddFlushesWholeTrace(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "addflush.mstore")
	w, err := Create(dir, Options{Shards: 2, BlockPoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC)
	pts := make([]trace.Point, 10) // 2 full blocks + 2-point tail
	for i := range pts {
		pts[i] = trace.P(1, float64(i)/1e4, base.Add(time.Duration(i)*time.Second))
	}
	if err := w.Add(trace.MustNew("tail", pts)); err != nil {
		t.Fatal(err)
	}
	if len(w.bufs) != 0 {
		t.Fatalf("Add left %d users buffered", len(w.bufs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d, err := s.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr := d.ByUser("tail")
	if tr == nil || tr.Len() != len(pts) {
		t.Fatalf("loaded %v, want 10-point tail", tr)
	}
}

package store

import (
	"io"
	"os"
)

// File is the writable-file surface the Writer drives: sequential
// writes, an explicit durability barrier, and close. *os.File satisfies
// it; storetest's fault-injection files wrap it to fail, tear or lose
// writes on a simulated crash.
type File interface {
	io.Writer

	// Sync flushes the file's written bytes to stable storage. The
	// Writer calls it before a segment is referenced by a manifest
	// commit, so a crash after commit can never lose committed bytes.
	Sync() error

	// Close releases the file. Close does not imply durability; only
	// Sync does.
	Close() error
}

// FS is the mutating-filesystem surface the Writer performs its
// durability-relevant operations through: creating and writing segment
// and manifest files, the atomic manifest rename, and the recovery
// pass's removals and truncations. Read paths (Open, Scan) use the real
// filesystem directly — the crash model only needs writes to be
// interceptable.
//
// The default implementation is the real OS filesystem; tests inject
// internal/store/storetest.FaultFS via Options.FS to simulate crashes
// at every operation boundary.
type FS interface {
	// Create creates (or truncates) the named file for writing.
	Create(name string) (File, error)

	// Rename atomically replaces newname with oldname. Durability of
	// the rename is only guaranteed after SyncDir on the parent
	// directory — the commit point of a manifest swap.
	Rename(oldname, newname string) error

	// Remove deletes the named file.
	Remove(name string) error

	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error

	// SyncDir flushes the directory entries of dir — the barrier that
	// makes a preceding Rename (and file creations) durable.
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}

// SyncDir fsyncs the directory best-effort: some filesystems (and some
// platforms) reject fsync on a directory handle, and the portable
// behavior there is the pre-fsync one — the rename is still atomic,
// just not yet guaranteed durable.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	d.Sync()
	return nil
}

// fs returns the configured filesystem, defaulting to the real one.
func (o Options) fs() FS {
	if o.FS != nil {
		return o.FS
	}
	return osFS{}
}

// Package rng holds the tiny deterministic mixing primitives shared by
// the seeded shuffles and per-trace seed derivations, so every consumer
// uses the exact same splitmix64 finalizer.
package rng

// Gamma is the splitmix64 increment (golden-ratio constant).
const Gamma = 0x9e3779b97f4a7c15

// Mix is the splitmix64 finalizer: a bijective avalanche mix of z.
func Mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

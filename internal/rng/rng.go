// Package rng holds the tiny deterministic mixing primitives shared by
// the seeded shuffles and per-trace seed derivations, so every consumer
// uses the exact same splitmix64 finalizer.
//
// It also carries the repository's placement contract: Shard(key, n) =
// Mix(Hash64(key)) % n, with Hash64 an allocation-free 64-bit FNV-1a.
// The stream engine's shards, the store's segment placement, the load
// driver's worker partition, and the multi-node router's node
// assignment all call this one helper, which is what makes an N-node
// fleet's merged output provably identical to a single node's: a
// user's points land in the same shard wherever they are ingested.
package rng

// Gamma is the splitmix64 increment (golden-ratio constant).
const Gamma = 0x9e3779b97f4a7c15

// Mix is the splitmix64 finalizer: a bijective avalanche mix of z.
func Mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

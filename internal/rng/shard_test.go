package rng

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"
)

// TestHash64MatchesStdlib pins Hash64 to hash/fnv's 64-bit FNV-1a. The
// inline implementation exists only to avoid an allocation on the
// routing hot path; it must never diverge from the stdlib definition.
func TestHash64MatchesStdlib(t *testing.T) {
	keys := []string{"", "a", "u0", "user-12345", "Grace Hopper", "\x00\xff", "日本語"}
	for _, k := range keys {
		h := fnv.New64a()
		h.Write([]byte(k))
		if got, want := Hash64(k), h.Sum64(); got != want {
			t.Errorf("Hash64(%q) = %#x, stdlib fnv64a = %#x", k, got, want)
		}
	}
}

// TestShardKnownAnswers pins the placement contract byte-for-byte.
// These vectors were computed from the current implementation and must
// NEVER change: the stream engine's shard pinning, the .mstore segment
// layout, the load driver's worker partitioning and the router's node
// assignment all route by Shard, so changing these values silently
// invalidates every existing store and breaks single-node/multi-node
// equivalence. A failing case here means the formula changed — that is
// a format break, not a refactor.
func TestShardKnownAnswers(t *testing.T) {
	cases := []struct {
		key                     string
		hash, mixed             uint64
		shard3, shard8, shard16 int
	}{
		{"", 0xcbf29ce484222325, 0xf52a15e9a9b5e89b, 0, 3, 11},
		{"u0", 0x08c47a07b5674640, 0x36c69dda1869ce5f, 1, 7, 15},
		{"u1", 0x08c47b07b56747f3, 0x715fdd7b59a9a19f, 2, 7, 15},
		{"u2", 0x08c47c07b56749a6, 0x56ac9e81c11bad70, 0, 0, 0},
		{"alice", 0x508b2abb65a03907, 0xc5d1556d66774a5c, 0, 4, 12},
		{"bob", 0x004d4419134a0a54, 0x6e8572d08b268dec, 0, 4, 12},
		{"carol", 0xafbc913b09910c72, 0x22c0c1c877f6457d, 2, 5, 13},
		{"user-12345", 0x2f1ccdc04341d990, 0x3756be0d506afe5b, 2, 3, 11},
		{"Grace Hopper", 0x5fd11501248dbceb, 0x4009200f28b789bd, 0, 5, 13},
	}
	for _, c := range cases {
		if got := Hash64(c.key); got != c.hash {
			t.Errorf("Hash64(%q) = %#016x, want %#016x", c.key, got, c.hash)
		}
		if got := Mix(Hash64(c.key)); got != c.mixed {
			t.Errorf("Mix(Hash64(%q)) = %#016x, want %#016x", c.key, got, c.mixed)
		}
		for _, n := range []struct{ n, want int }{
			{3, c.shard3}, {8, c.shard8}, {16, c.shard16},
		} {
			if got := Shard(c.key, n.n); got != n.want {
				t.Errorf("Shard(%q, %d) = %d, want %d", c.key, n.n, got, n.want)
			}
		}
	}
}

// TestShardTotalAndDeterministic checks the basic routing contract: for
// every key and every partition count the assignment is in range and
// stable across calls.
func TestShardTotalAndDeterministic(t *testing.T) {
	for n := 1; n <= 17; n++ {
		for i := 0; i < 1000; i++ {
			key := fmt.Sprintf("user-%d", i)
			s := Shard(key, n)
			if s < 0 || s >= n {
				t.Fatalf("Shard(%q, %d) = %d out of range", key, n, s)
			}
			if again := Shard(key, n); again != s {
				t.Fatalf("Shard(%q, %d) not deterministic: %d then %d", key, n, s, again)
			}
		}
	}
}

// TestShardBalance is why the splitmix64 finalizer exists: sequential
// user identifiers ("u0", "u1", ...) are exactly the adversarially
// regular keys whose raw FNV-1a low bits are low-entropy. With the mix,
// every partition of an n-way split over 10k such keys must hold close
// to its fair share.
func TestShardBalance(t *testing.T) {
	const users = 10000
	for _, n := range []int{2, 3, 8, 16} {
		counts := make([]int, n)
		for i := 0; i < users; i++ {
			counts[Shard(fmt.Sprintf("u%d", i), n)]++
		}
		fair := float64(users) / float64(n)
		for s, c := range counts {
			if math.Abs(float64(c)-fair) > 0.25*fair {
				t.Errorf("n=%d shard %d holds %d keys, fair share %.0f (>25%% off)", n, s, c, fair)
			}
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TestShardRebalanceFraction pins the documented mod-n rebalancing
// behavior: resizing a fleet from n to m partitions keeps a key on its
// partition with probability min(n,m)/lcm(n,m) for uniformly mixed
// keys (e.g. 3 -> 4 keeps 1/4 of keys in place, 8 -> 16 keeps 1/2).
// This is the deliberate trade against ring consistent hashing — the
// moved fraction is large but exactly predictable, and placement stays
// provably equal to single-node sharding.
func TestShardRebalanceFraction(t *testing.T) {
	const users = 20000
	for _, c := range []struct{ n, m int }{{3, 4}, {8, 16}, {2, 3}, {4, 6}} {
		stay := 0
		for i := 0; i < users; i++ {
			key := fmt.Sprintf("user-%d", i)
			if Shard(key, c.n) == Shard(key, c.m) {
				stay++
			}
		}
		lcm := c.n / gcd(c.n, c.m) * c.m
		want := float64(min(c.n, c.m)) / float64(lcm)
		got := float64(stay) / float64(users)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("resize %d -> %d: %.3f of keys kept their partition, want ~%.3f (min/lcm)", c.n, c.m, got, want)
		}
	}
}

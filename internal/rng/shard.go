package rng

// Hash64 is 64-bit FNV-1a over s, inlined so hashing a user identifier
// on a routing hot path costs no allocation (identical to hash/fnv).
func Hash64(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Shard assigns key to one of n partitions: Mix(Hash64(key)) mod n.
//
// This single function IS the placement contract of the whole system:
// the stream engine pins a user's state to a shard goroutine with it,
// the .mstore format pins a user's blocks to a segment file with it,
// and the multi-node router pins a user to a worker process with it.
// Because every layer calls this one helper, placement cannot drift
// between them — a refactor that changes the formula fails the pinned
// known-answer vectors in shard_test.go loudly.
//
// The splitmix64 finalizer on top of FNV-1a matters: raw FNV-1a of
// short, similar keys ("u1", "u2", ...) has low-entropy low bits, and
// mod-n routing reads exactly those bits. The avalanche mix spreads
// them so partition sizes stay balanced for adversarially regular key
// sets.
//
// Note what this is NOT: ring consistent hashing. Placement is mod n,
// so changing n remaps most keys (the fraction keeping their partition
// when moving n -> m is min(n,m)/lcm(n,m) for uniformly mixed keys).
// That trade is deliberate — mod-n is the contract the engine and the
// store already honor, and it is what makes a multi-node fleet's
// placement provably equal to a single node's sharding.
func Shard(key string, n int) int {
	return int(Mix(Hash64(key)) % uint64(n))
}

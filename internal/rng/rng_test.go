package rng

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"testing"
)

// TestMixKnownAnswers pins Mix to the reference splitmix64
// implementation (Vigna's splitmix64.c): iterating state += Gamma from
// state 0 and finalizing must reproduce the published first outputs of
// the seed-0 stream. Every seeded shuffle and per-trace seed derivation
// in the repository depends on these exact values.
func TestMixKnownAnswers(t *testing.T) {
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	var s uint64
	for i, w := range want {
		s += Gamma
		if got := Mix(s); got != w {
			t.Errorf("output %d = %#016x, want %#016x", i, got, w)
		}
	}
	if Gamma != 0x9e3779b97f4a7c15 {
		t.Errorf("Gamma = %#016x, want golden-ratio constant", uint64(Gamma))
	}
}

// TestMixDeterministic: same input, same output — the property every
// replay-equivalence guarantee in the repository rests on.
func TestMixDeterministic(t *testing.T) {
	for _, z := range []uint64{0, 1, Gamma, ^uint64(0), 0xdeadbeef} {
		if Mix(z) != Mix(z) {
			t.Fatalf("Mix(%#x) not deterministic", z)
		}
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping any single input bit should flip many output bits: a
	// weak mixer here would correlate "adjacent" users' noise streams.
	for bit := 0; bit < 64; bit++ {
		z := uint64(0x0123456789abcdef)
		d := bits.OnesCount64(Mix(z) ^ Mix(z^1<<bit))
		if d < 16 || d > 48 {
			t.Errorf("flipping bit %d changed %d output bits, want ~32", bit, d)
		}
	}
}

// TestPerSeedUserIndependence exercises the derivation pattern the
// mechanisms use (Mix(seed*Gamma ^ fnv64a(user))): distinct users and
// distinct seeds must yield distinct derived seeds — collisions would
// correlate the noise of different users or different deployments.
func TestPerSeedUserIndependence(t *testing.T) {
	derive := func(seed uint64, user string) uint64 {
		h := fnv.New64a()
		h.Write([]byte(user))
		return Mix(seed*Gamma ^ h.Sum64())
	}
	seen := make(map[uint64]string)
	for seed := uint64(1); seed <= 8; seed++ {
		for i := 0; i < 500; i++ {
			user := fmt.Sprintf("user%03d", i)
			key := derive(seed, user)
			id := fmt.Sprintf("%s@%d", user, seed)
			if prev, dup := seen[key]; dup {
				t.Fatalf("derived seed collision: %s and %s both map to %#x", prev, id, key)
			}
			seen[key] = id
		}
	}
}

// TestMixBijectiveSample spot-checks injectivity (Mix is a bijection on
// uint64): no collisions over a dense input range.
func TestMixBijectiveSample(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<16)
	for z := uint64(0); z < 1<<16; z++ {
		v := Mix(z)
		if prev, dup := seen[v]; dup {
			t.Fatalf("Mix(%d) == Mix(%d) == %#x", z, prev, v)
		}
		seen[v] = z
	}
}

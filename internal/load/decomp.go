package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"mobipriv/internal/obs"
)

// StageLatency summarizes one stage of the server's push-latency
// decomposition, in milliseconds. ShareP99 is this stage's fraction of
// the summed p99s — a rough "where does the tail go" attribution that
// adds up to 1 across the three stages.
type StageLatency struct {
	Count    uint64  `json:"count"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
	ShareP99 float64 `json:"share_p99"`
}

// ServerDecomp is the server-side view of the load just applied,
// snapshotted from GET /stats around the run: how many points the
// engine ingested during the run, how often pushes stalled on
// backpressure, and where per-shard-batch latency went — queue wait
// (batch sat in a shard queue), process (mechanism work) and sink
// (handing output to the sink callback). Joined with the client-side
// ingest quantiles this decomposes the observed p99 end to end.
type ServerDecomp struct {
	PointsIn   int64        `json:"points_in"`
	PushStalls int64        `json:"push_stalls"`
	QueueWait  StageLatency `json:"queue_wait"`
	Process    StageLatency `json:"process"`
	Sink       StageLatency `json:"sink"`
}

// serverStats is the slice of mobiserve's /stats response the driver
// reads back.
type serverStats struct {
	In      int64                   `json:"points_in"`
	Stalls  int64                   `json:"push_stalls"`
	Latency []obs.HistogramSnapshot `json:"latency"`
}

// fetchServerStats reads the target's /stats. Callers treat failure as
// "no server-side view" (a stub target or an older server), not a run
// failure.
func fetchServerStats(ctx context.Context, cfg Config) (*serverStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.Target+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: stats: HTTP %d", resp.StatusCode)
	}
	var st serverStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("load: stats response: %w", err)
	}
	return &st, nil
}

// decompose builds the ServerDecomp from before/after stats snapshots.
// Counters are deltas over the run; the quantiles are the after-run
// histograms (cumulative — against a fresh server they describe
// exactly this run's traffic). Returns nil when the server does not
// publish the decomposition histograms.
func decompose(before, after *serverStats) *ServerDecomp {
	if before == nil || after == nil {
		return nil
	}
	stage := func(name string) (StageLatency, bool) {
		for _, h := range after.Latency {
			if h.Name == name && h.Labels == "" {
				return StageLatency{
					Count: h.Count,
					P50ms: h.P50 * 1e3,
					P95ms: h.P95 * 1e3,
					P99ms: h.P99 * 1e3,
				}, true
			}
		}
		return StageLatency{}, false
	}
	qw, ok1 := stage("stream_queue_wait_seconds")
	pr, ok2 := stage("stream_process_seconds")
	sk, ok3 := stage("stream_sink_seconds")
	if !ok1 || !ok2 || !ok3 {
		return nil
	}
	if denom := qw.P99ms + pr.P99ms + sk.P99ms; denom > 0 {
		qw.ShareP99 = qw.P99ms / denom
		pr.ShareP99 = pr.P99ms / denom
		sk.ShareP99 = sk.P99ms / denom
	}
	return &ServerDecomp{
		PointsIn:   after.In - before.In,
		PushStalls: after.Stalls - before.Stalls,
		QueueWait:  qw,
		Process:    pr,
		Sink:       sk,
	}
}

// Package load is the deterministic replay driver behind cmd/mobiload:
// it generates or loads a traffic trace, fires it at a running
// mobiserve instance over HTTP at a target rate, and reports the
// serving performance (points/s, ingest-latency quantiles, error
// counts) as a persistable benchmark artifact.
//
// Determinism is the design constraint everything else follows from.
// The traffic itself derives from a seed (synthetic commuters) or an
// on-disk .mstore, is globally time-sorted into one arrival order, and
// is partitioned across workers by hash(user) — the same contract the
// server's stream engine shards by — so each user's points are sent by
// exactly one worker in chronological order, whatever the concurrency.
// The TrafficChecksum in the result is computed over the per-worker
// streams in worker order before anything is sent: two runs with the
// same seed and shape produce the same checksum, the same points, the
// same per-user sequences, regardless of scheduling. Latency numbers
// are measured per worker into mergeable histograms (internal/obs) and
// merged order-invariantly, so the report is as reproducible as wall
// clocks allow.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mobipriv/internal/obs"
	otrace "mobipriv/internal/obs/trace"
	"mobipriv/internal/rng"
	"mobipriv/internal/store"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// Config parameterizes a load run.
type Config struct {
	// Target is the base URL of the mobiserve instance, e.g.
	// "http://localhost:8080".
	Target string

	// Store replays an existing .mstore dataset instead of synthesizing
	// traffic. When empty, synthetic commuter traffic is generated from
	// Seed/Users/Days/Sampling.
	Store string

	// Users, Days and Sampling shape the synthetic traffic (defaults:
	// 50 users, 1 day, 60s sampling — synth.DefaultCommuterConfig).
	Users    int
	Days     int
	Sampling time.Duration

	// Seed drives the synthetic generator. Two runs with equal Seed and
	// shape send byte-identical traffic.
	Seed int64

	// Rate is the target send rate in points/s across all workers;
	// 0 means as fast as the server accepts.
	Rate float64

	// Batch is the points per ingest request (default 256, matching
	// mobiserve's default).
	Batch int

	// Workers is the number of concurrent senders (default NumCPU,
	// capped at 8). Users are partitioned across workers by hash, so
	// per-user ordering survives any worker count.
	Workers int

	// MaxPoints truncates the (time-sorted) traffic, for smoke runs.
	MaxPoints int

	// Flush, when set, POSTs /flush after the traffic so withheld
	// points are forced out before the run is scored.
	Flush bool

	// Client overrides the HTTP client (tests); nil uses a dedicated
	// client with sane timeouts.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 50
	}
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Sampling <= 0 {
		c.Sampling = 60 * time.Second
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// Result is the outcome of one load run.
type Result struct {
	// Traffic shape (deterministic for a fixed config).
	Points          int64   `json:"points"`
	TrafficChecksum string  `json:"traffic_checksum"`
	Workers         int     `json:"workers"`
	Batch           int     `json:"batch"`
	TargetRate      float64 `json:"target_rate,omitempty"`

	// Outcome.
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	Accepted   int64   `json:"accepted"`
	Seconds    float64 `json:"seconds"`
	PointsPerS float64 `json:"points_per_s"`

	// Ingest-request latency quantiles, milliseconds.
	IngestP50ms float64 `json:"ingest_p50_ms"`
	IngestP95ms float64 `json:"ingest_p95_ms"`
	IngestP99ms float64 `json:"ingest_p99_ms"`

	// Server is the server-side latency decomposition (queue-wait vs
	// process vs sink), snapshotted from the target's /stats around the
	// run. Nil when the target does not expose /stats or does not
	// publish the decomposition histograms (e.g. a stub).
	Server *ServerDecomp `json:"server,omitempty"`
}

// rec is one point in arrival order.
type rec struct {
	user string
	pt   trace.Point
}

// Run executes one load run against cfg.Target and returns the scored
// result.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Target == "" {
		return nil, errors.New("load: no target URL")
	}
	streams, total, sum, err := buildTraffic(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Points:          total,
		TrafficChecksum: sum,
		Workers:         cfg.Workers,
		Batch:           cfg.Batch,
		TargetRate:      cfg.Rate,
	}

	// Best-effort server snapshot before the traffic: when the target is
	// a real mobiserve the before/after delta attributes the run's p99
	// to queue-wait vs process vs sink; a stub without /stats simply
	// yields no Server block.
	statsBefore, statsErr := fetchServerStats(ctx, cfg)

	var (
		mu       sync.Mutex
		firstErr error
		hists    = make([]*obs.Histogram, len(streams))
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := range streams {
		wg.Add(1)
		hists[w] = obs.NewHistogram()
		go func(w int) {
			defer wg.Done()
			// Each worker paces its own share of the global rate,
			// proportional to its stream size.
			rate := 0.0
			if cfg.Rate > 0 && total > 0 {
				rate = cfg.Rate * float64(len(streams[w])) / float64(total)
			}
			err := sendStream(ctx, cfg, w, streams[w], rate, hists[w], res)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if cfg.Flush {
		if err := postFlush(ctx, cfg); err != nil {
			return nil, err
		}
	}
	res.Seconds = time.Since(start).Seconds()
	if statsErr == nil {
		if statsAfter, err := fetchServerStats(ctx, cfg); err == nil {
			res.Server = decompose(statsBefore, statsAfter)
		}
	}
	if res.Seconds > 0 {
		res.PointsPerS = float64(res.Points) / res.Seconds
	}
	merged := obs.NewHistogram()
	for _, h := range hists {
		merged.Merge(h)
	}
	res.IngestP50ms = merged.Quantile(0.50) * 1e3
	res.IngestP95ms = merged.Quantile(0.95) * 1e3
	res.IngestP99ms = merged.Quantile(0.99) * 1e3
	return res, nil
}

// buildTraffic produces the per-worker send streams, the total point
// count and the traffic checksum — all deterministic for a fixed
// config.
func buildTraffic(ctx context.Context, cfg Config) ([][]rec, int64, string, error) {
	var d *trace.Dataset
	if cfg.Store != "" {
		st, err := store.Open(cfg.Store)
		if err != nil {
			return nil, 0, "", err
		}
		d, err = st.Load(ctx)
		st.Close()
		if err != nil {
			return nil, 0, "", err
		}
	} else {
		scfg := synth.DefaultCommuterConfig()
		scfg.Seed = cfg.Seed
		scfg.Users = cfg.Users
		scfg.Days = cfg.Days
		scfg.Sampling = cfg.Sampling
		gen, err := synth.Commuters(scfg)
		if err != nil {
			return nil, 0, "", err
		}
		d = gen.Dataset
	}

	var all []rec
	for _, tr := range d.Traces() {
		for _, p := range tr.Points {
			all = append(all, rec{user: tr.User, pt: p})
		}
	}
	// One global arrival order: by time, then user for a total order.
	// Each user's points keep their chronological sequence, which is
	// the ordering contract the server's engine relies on.
	sort.SliceStable(all, func(i, j int) bool {
		if !all[i].pt.Time.Equal(all[j].pt.Time) {
			return all[i].pt.Time.Before(all[j].pt.Time)
		}
		return all[i].user < all[j].user
	})
	if cfg.MaxPoints > 0 && len(all) > cfg.MaxPoints {
		all = all[:cfg.MaxPoints]
	}

	// Partition users across workers with the shared placement contract
	// (rng.Shard), mirroring the engine's shard routing: one worker owns
	// all of a user's points.
	streams := make([][]rec, cfg.Workers)
	for _, r := range all {
		streams[userWorker(r.user, cfg.Workers)] = append(streams[userWorker(r.user, cfg.Workers)], r)
	}
	h := fnv.New64a()
	for _, s := range streams {
		for _, r := range s {
			io.WriteString(h, r.user)
			fmt.Fprintf(h, "|%d|%.7f|%.7f\n", r.pt.Time.UnixMicro(), r.pt.Lat, r.pt.Lng)
		}
	}
	return streams, int64(len(all)), strconv.FormatUint(h.Sum64(), 16), nil
}

// userWorker partitions a user onto a sender worker with the shared
// placement contract (rng.Shard) — the same function the stream engine
// shards by and the multi-node router routes by, so one worker owns
// all of a user's points whatever the concurrency.
func userWorker(user string, n int) int {
	return rng.Shard(user, n)
}

// sendStream sends one worker's stream in batches, pacing against rate
// (points/s; 0 = unpaced) and recording per-request latency. Every
// request carries a W3C traceparent derived from (seed, worker,
// request index) — a pure function of the traffic, so replaying the
// same run re-sends identical trace IDs and the server's deterministic
// sampler records the same requests every time.
func sendStream(ctx context.Context, cfg Config, worker int, stream []rec, rate float64, hist *obs.Histogram, res *Result) error {
	var sent int
	var reqIdx uint64
	var buf bytes.Buffer
	start := time.Now()
	for len(stream) > 0 {
		n := cfg.Batch
		if n > len(stream) {
			n = len(stream)
		}
		batch := stream[:n]
		stream = stream[n:]

		if rate > 0 {
			// Sleep until this batch is due under the worker's rate.
			due := start.Add(time.Duration(float64(sent) / rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}

		buf.Reset()
		for _, r := range batch {
			if err := traceio.WriteJSONLRecord(&buf, r.user, r.pt); err != nil {
				return err
			}
		}
		id := otrace.DeriveID(uint64(cfg.Seed), uint64(worker), reqIdx)
		tp := otrace.FormatTraceparent(id,
			otrace.DeriveSpanID(id, 0, "load.request", 0), true)
		reqIdx++
		reqStart := time.Now()
		accepted, err := postIngest(ctx, cfg, buf.Bytes(), tp)
		hist.ObserveDuration(time.Since(reqStart))
		atomic.AddInt64(&res.Requests, 1)
		if err != nil {
			atomic.AddInt64(&res.Errors, 1)
			if ctx.Err() != nil {
				return ctx.Err()
			}
		} else {
			atomic.AddInt64(&res.Accepted, accepted)
		}
		sent += n
	}
	return nil
}

func postIngest(ctx context.Context, cfg Config, body []byte, traceparent string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Target+"/ingest", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("traceparent", traceparent)
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("load: ingest: HTTP %d", resp.StatusCode)
	}
	var out struct {
		Accepted int64 `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("load: ingest response: %w", err)
	}
	return out.Accepted, nil
}

func postFlush(ctx context.Context, cfg Config) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Target+"/flush", nil)
	if err != nil {
		return err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("load: flush: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Bench is the BENCH_serve.json artifact: one load run plus enough
// environment to compare across commits.
type Bench struct {
	Description string            `json:"description"`
	Date        string            `json:"date"`
	Command     string            `json:"command"`
	Environment map[string]string `json:"environment"`
	Results     *Result           `json:"results"`
}

// WriteBench persists the result as a benchmark artifact at path.
func WriteBench(path, command string, res *Result) error {
	b := Bench{
		Description: "mobiserve ingest load test: deterministic seeded replay via mobiload. " +
			"traffic_checksum pins the exact traffic; points_per_s and the ingest latency " +
			"quantiles are the serving perf trajectory tracked across PRs.",
		Date:    time.Now().UTC().Format("2006-01-02"),
		Command: command,
		Environment: map[string]string{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   strconv.Itoa(runtime.NumCPU()),
		},
		Results: res,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package load

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"mobipriv/internal/store"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// newStub builds the test target: /ingest counts decoded points and
// /flush counts calls, mimicking mobiserve's wire contract without the
// engine.
func newStub(t *testing.T) (srv *httptest.Server, points, flushes *atomic.Int64) {
	t.Helper()
	points, flushes = &atomic.Int64{}, &atomic.Int64{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		n := int64(0)
		if err := traceio.DecodeJSONL(r.Body, func(user string, p trace.Point) error {
			n++
			return nil
		}); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		points.Add(n)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]int64{"accepted": n})
	})
	mux.HandleFunc("POST /flush", func(w http.ResponseWriter, r *http.Request) {
		flushes.Add(1)
		json.NewEncoder(w).Encode(map[string]bool{"flushed": true})
	})
	srv = httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, points, flushes
}

// TestRunDeterministic pins the headline contract: same seed and shape
// → same checksum, same point count, everything the server received.
func TestRunDeterministic(t *testing.T) {
	srv, points, flushes := newStub(t)
	cfg := Config{
		Target:  srv.URL,
		Users:   8,
		Days:    1,
		Seed:    42,
		Batch:   100,
		Workers: 4,
		Flush:   true,
	}
	res1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Points == 0 {
		t.Fatal("no traffic generated")
	}
	if res1.Errors != 0 {
		t.Fatalf("%d errors", res1.Errors)
	}
	if res1.Accepted != res1.Points {
		t.Fatalf("accepted %d != sent %d", res1.Accepted, res1.Points)
	}
	if got := points.Load(); got != res1.Points {
		t.Fatalf("server saw %d points, driver sent %d", got, res1.Points)
	}
	if flushes.Load() != 1 {
		t.Fatalf("flushes = %d, want 1", flushes.Load())
	}
	if res1.PointsPerS <= 0 {
		t.Fatalf("points_per_s = %v", res1.PointsPerS)
	}

	res2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res1.TrafficChecksum != res2.TrafficChecksum {
		t.Fatalf("checksum differs across identical runs: %s vs %s",
			res1.TrafficChecksum, res2.TrafficChecksum)
	}
	if res1.Points != res2.Points {
		t.Fatalf("point count differs: %d vs %d", res1.Points, res2.Points)
	}

	// A different seed must produce different traffic.
	cfg.Seed = 43
	res3, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res3.TrafficChecksum == res1.TrafficChecksum {
		t.Fatal("different seeds produced identical traffic checksums")
	}
}

// TestRunMaxPoints pins that MaxPoints truncation is honored.
func TestRunMaxPoints(t *testing.T) {
	srv, points, _ := newStub(t)
	res, err := Run(context.Background(), Config{
		Target:    srv.URL,
		Users:     5,
		Seed:      7,
		MaxPoints: 123,
		Workers:   3,
		Batch:     50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != 123 {
		t.Fatalf("points = %d, want 123", res.Points)
	}
	if points.Load() != 123 {
		t.Fatalf("server saw %d", points.Load())
	}
}

// TestRunStoreTraffic replays traffic from an .mstore instead of synth.
func TestRunStoreTraffic(t *testing.T) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 4
	cfg.Seed = 5
	gen, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "in.mstore")
	if err := store.WriteDataset(dir, gen.Dataset, store.Options{}); err != nil {
		t.Fatal(err)
	}
	srv, points, _ := newStub(t)
	res, err := Run(context.Background(), Config{Target: srv.URL, Store: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(gen.Dataset.TotalPoints())
	if res.Points != want || points.Load() != want {
		t.Fatalf("points = %d (server %d), want %d", res.Points, points.Load(), want)
	}
}

// TestWriteBench pins the artifact shape.
func TestWriteBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	res := &Result{Points: 10, PointsPerS: 100, TrafficChecksum: "abc"}
	if err := WriteBench(path, "mobiload -users 2", res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b Bench
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Results == nil || b.Results.Points != 10 {
		t.Fatalf("bad results: %+v", b.Results)
	}
	if b.Environment["goos"] == "" || b.Command == "" || b.Date == "" {
		t.Fatalf("missing metadata: %+v", b)
	}
}

// TestRunRate sanity-checks pacing: a low target rate stretches the
// run to roughly points/rate seconds.
func TestRunRate(t *testing.T) {
	srv, _, _ := newStub(t)
	start := time.Now()
	res, err := Run(context.Background(), Config{
		Target:    srv.URL,
		Users:     2,
		Seed:      1,
		MaxPoints: 200,
		Batch:     50,
		Workers:   1,
		Rate:      1000, // 200 points at 1000/s ≈ 0.2s minimum
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 100*time.Millisecond {
		t.Fatalf("run finished in %v — pacing not applied", el)
	}
	if res.TargetRate != 1000 {
		t.Fatalf("target rate not recorded: %v", res.TargetRate)
	}
}

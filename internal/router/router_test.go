package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mobipriv/internal/obs"
	"mobipriv/internal/rng"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// stubWorker is a minimal mobiserve stand-in: it counts the points of
// every NDJSON ingest per user and answers the rest of the API well
// enough for the router.
type stubWorker struct {
	mu     sync.Mutex
	points map[string]int // user -> points received
	order  map[string][]int64
	hs     *httptest.Server
}

func newStubWorker(t *testing.T) *stubWorker {
	t.Helper()
	w := &stubWorker{points: make(map[string]int), order: make(map[string][]int64)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(rw http.ResponseWriter, r *http.Request) {
		n := 0
		err := traceio.DecodeJSONL(r.Body, func(user string, p trace.Point) error {
			w.mu.Lock()
			w.points[user]++
			w.order[user] = append(w.order[user], p.Time.UnixMicro())
			w.mu.Unlock()
			n++
			return nil
		})
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(rw).Encode(map[string]any{"accepted": n})
	})
	mux.HandleFunc("POST /flush", func(rw http.ResponseWriter, r *http.Request) {
		json.NewEncoder(rw).Encode(map[string]any{"flushed": true})
	})
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("GET /stats", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		total := 0
		for _, n := range w.points {
			total += n
		}
		w.mu.Unlock()
		json.NewEncoder(rw).Encode(map[string]any{"points_in": total})
	})
	w.hs = httptest.NewServer(mux)
	t.Cleanup(w.hs.Close)
	return w
}

func (w *stubWorker) snapshot() map[string]int {
	w.mu.Lock()
	defer w.mu.Unlock()
	cp := make(map[string]int, len(w.points))
	for u, n := range w.points {
		cp[u] = n
	}
	return cp
}

// testRecords builds a deterministic stream of records across users.
func testRecords(users, perUser int) []struct {
	User string
	P    trace.Point
} {
	base := time.Date(2025, 6, 2, 9, 0, 0, 0, time.UTC)
	var recs []struct {
		User string
		P    trace.Point
	}
	for i := 0; i < perUser; i++ {
		for u := 0; u < users; u++ {
			recs = append(recs, struct {
				User string
				P    trace.Point
			}{fmt.Sprintf("user-%d", u), trace.P(40+float64(u)/100, 5+float64(i)/1e3, base.Add(time.Duration(i)*time.Minute))})
		}
	}
	return recs
}

func ndjson(recs []struct {
	User string
	P    trace.Point
}) *bytes.Buffer {
	var buf bytes.Buffer
	for _, r := range recs {
		traceio.WriteJSONLRecord(&buf, r.User, r.P)
	}
	return &buf
}

func startRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(hs.Close)
	return rt, hs
}

// TestNodeOfMatchesPlacementContract pins the router's user->node
// assignment to the shared helper: total, deterministic, and identical
// to rng.Shard for any node count, so router placement and engine
// sharding can never drift.
func TestNodeOfMatchesPlacementContract(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 5, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("127.0.0.1:%d", 9000+i)
		}
		rt, err := New(Config{Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			u := fmt.Sprintf("user-%d-%d", r.Uint64(), i)
			got := rt.NodeOf(u)
			if got < 0 || got >= n {
				t.Fatalf("NodeOf(%q) = %d out of range [0,%d)", u, got, n)
			}
			if want := rng.Shard(u, n); got != want {
				t.Fatalf("NodeOf(%q) = %d, placement contract says %d", u, got, want)
			}
			if again := rt.NodeOf(u); again != got {
				t.Fatalf("NodeOf(%q) not deterministic", u)
			}
		}
	}
}

// TestIngestAssignmentIndependentOfOrderAndBatching replays the same
// records shuffled and under different batch sizes (including one that
// never fills, so everything rides the tail flush) and asserts every
// node sees exactly the same per-user point counts — assignment
// depends on the user alone, never on arrival order or where batch
// boundaries fall.
func TestIngestAssignmentIndependentOfOrderAndBatching(t *testing.T) {
	recs := testRecords(12, 5)
	want := make(map[int]map[string]int) // node -> user -> points
	for _, batch := range []int{1, 7, 64, 100000} {
		for _, shuffle := range []bool{false, true} {
			ws := []*stubWorker{newStubWorker(t), newStubWorker(t), newStubWorker(t)}
			_, hs := startRouter(t, Config{
				Nodes: []string{ws[0].hs.URL, ws[1].hs.URL, ws[2].hs.URL},
				Batch: batch,
			})
			rs := append([]struct {
				User string
				P    trace.Point
			}(nil), recs...)
			if shuffle {
				rand.New(rand.NewSource(int64(batch))).Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
			}
			resp, err := http.Post(hs.URL+"/ingest", "application/x-ndjson", ndjson(rs))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("batch=%d shuffle=%v: ingest status %d", batch, shuffle, resp.StatusCode)
			}
			for i, w := range ws {
				got := w.snapshot()
				if want[i] == nil {
					want[i] = got
					continue
				}
				if fmt.Sprint(got) != fmt.Sprint(want[i]) {
					t.Errorf("batch=%d shuffle=%v node %d saw %v, first run saw %v", batch, shuffle, i, got, want[i])
				}
			}
		}
	}
	// Sanity: the three nodes partition the users (none empty, all 12
	// users accounted for exactly once).
	users := 0
	for _, m := range want {
		if len(m) == 0 {
			t.Error("a node received no users — degenerate partition")
		}
		users += len(m)
	}
	if users != 12 {
		t.Errorf("nodes hold %d users total, want 12 (disjoint partition)", users)
	}
}

// TestIngestPreservesPerUserOrder pins the ordering half of the
// forwarding contract: however records interleave across users, each
// user's points reach its node in arrival order (batched sends to one
// node are sequential).
func TestIngestPreservesPerUserOrder(t *testing.T) {
	w := newStubWorker(t)
	_, hs := startRouter(t, Config{Nodes: []string{w.hs.URL}, Batch: 3})
	recs := testRecords(5, 20)
	resp, err := http.Post(hs.URL+"/ingest", "application/x-ndjson", ndjson(recs))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	w.mu.Lock()
	defer w.mu.Unlock()
	for u, times := range w.order {
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				t.Fatalf("user %s: point %d arrived out of order", u, i)
			}
		}
	}
}

// TestWorkerDownAtStartup pins the dead-partition behavior: with one
// node down before any traffic, /healthz is 503 naming the node, and
// an ingest that routes points to it fails 503 naming the node rather
// than silently dropping the partition.
func TestWorkerDownAtStartup(t *testing.T) {
	alive := newStubWorker(t)
	// A server that is immediately closed: connection refused, the
	// address provably dead.
	dead := httptest.NewServer(http.NewServeMux())
	deadURL := dead.URL
	dead.Close()
	deadName := strings.TrimPrefix(deadURL, "http://")

	_, hs := startRouter(t, Config{
		Nodes:        []string{alive.hs.URL, deadURL},
		Retries:      1,
		RetryBackoff: time.Millisecond,
	})

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead node: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), deadName) {
		t.Errorf("healthz body does not name the dead node %s: %q", deadName, body)
	}

	resp, err = http.Post(hs.URL+"/ingest", "application/x-ndjson", ndjson(testRecords(12, 1)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest with dead node: status %d, want 503 (body %q)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), deadName) {
		t.Errorf("ingest error does not name the dead node %s: %q", deadName, body)
	}
}

// TestWorkerDiesMidReplay pins the bounded-retry contract: when a
// worker dies partway through a replay, the router retries the
// configured number of times (visible in router_upstream_errors), then
// surfaces the failure to the client; points already forwarded to the
// other node are unaffected.
func TestWorkerDiesMidReplay(t *testing.T) {
	stable := newStubWorker(t)
	dying := newStubWorker(t)
	rt, hs := startRouter(t, Config{
		Nodes:        []string{stable.hs.URL, dying.hs.URL},
		Batch:        4,
		Retries:      2,
		RetryBackoff: time.Millisecond,
	})

	// First replay: both nodes healthy.
	recs := testRecords(10, 2)
	resp, err := http.Post(hs.URL+"/ingest", "application/x-ndjson", ndjson(recs))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest: status %d", resp.StatusCode)
	}

	// The second node dies; the next replay must fail loudly, with the
	// retries accounted per attempt.
	dying.hs.Close()
	dyingName := strings.TrimPrefix(dying.hs.URL, "http://")
	resp, err = http.Post(hs.URL+"/ingest", "application/x-ndjson", ndjson(recs))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest with dying node: status %d, want 503 (body %q)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), dyingName) {
		t.Errorf("error does not name the dead node: %q", body)
	}
	errsVal, ok := rt.Registry().Value("router_upstream_errors", labelNode(dyingName))
	if !ok {
		t.Fatal("router_upstream_errors series missing")
	}
	// 1 initial attempt + 2 retries on the first failing batch; the
	// request aborts after that batch, so exactly 3 attempts failed.
	if errsVal != 3 {
		t.Errorf("router_upstream_errors = %v, want 3 (1 attempt + 2 retries)", errsVal)
	}
	if v, _ := rt.Registry().Value("router_upstream_errors", labelNode(strings.TrimPrefix(stable.hs.URL, "http://"))); v != 0 {
		t.Errorf("healthy node accrued %v upstream errors", v)
	}
}

// TestSlowWorkerTimesOutWithoutLeak pins the timeout contract: a hung
// worker fails the request once the per-request timeout fires, and the
// router leaks no goroutines doing it.
func TestSlowWorkerTimesOutWithoutLeak(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Hang until the router gives up and drops the connection (a
		// real remote worker's goroutines would not be in this
		// process; unwinding on disconnect keeps the NumGoroutine
		// check about the ROUTER's goroutines). The body must be
		// drained first: net/http only watches for the disconnect —
		// and cancels r.Context() — once the request body is consumed.
		io.Copy(io.Discard, r.Body)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer func() { close(release); slow.Close() }()

	_, hs := startRouter(t, Config{
		Nodes:        []string{slow.URL},
		Retries:      -1, // no retries: one attempt, one timeout
		RetryBackoff: time.Millisecond,
		Timeout:      50 * time.Millisecond,
	})

	before := runtime.NumGoroutine()
	start := time.Now()
	resp, err := http.Post(hs.URL+"/ingest", "application/x-ndjson", ndjson(testRecords(3, 1)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow worker: status %d, want 503 (body %q)", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request took %v — the 50ms per-request timeout did not fire", elapsed)
	}
	if !strings.Contains(string(body), "context deadline exceeded") {
		t.Errorf("error does not mention the timeout: %q", body)
	}

	// Give the transport's abandoned request goroutines a moment to
	// unwind (dropping the test client's own idle connections, which
	// are not the router's leak), then check nothing stayed behind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Errorf("goroutines grew from %d to %d after a timed-out upstream request\n%s", before, runtime.NumGoroutine(), buf)
}

func labelNode(name string) obs.Label { return obs.L("node", name) }

// statsWorker serves a canned upstreamStats document, so the router's
// aggregation can be checked against hand-computable sums.
func statsWorker(t *testing.T, st upstreamStats) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(rw http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		json.NewEncoder(rw).Encode(map[string]any{"accepted": 0})
	})
	mux.HandleFunc("POST /flush", func(rw http.ResponseWriter, r *http.Request) {
		json.NewEncoder(rw).Encode(map[string]any{"flushed": true})
	})
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("GET /stats", func(rw http.ResponseWriter, r *http.Request) {
		json.NewEncoder(rw).Encode(st)
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return hs
}

// snapshotOf builds a real histogram snapshot carrying exact state.
func snapshotOf(name string, durs ...time.Duration) obs.HistogramSnapshot {
	h := obs.NewHistogram()
	for _, d := range durs {
		h.ObserveDuration(d)
	}
	return h.Snapshot(name, "")
}

// TestStatsAggregation pins the fleet view: /stats sums the scalars
// across nodes, merges same-name histogram series exactly through
// their sparse-bin snapshots, reports the per-node breakdown, and
// keeps the series sorted by (name, labels). /flush fans out to every
// node and /metrics exposes the router's own counters.
func TestStatsAggregation(t *testing.T) {
	a := statsWorker(t, upstreamStats{
		In: 100, Out: 90, Stalls: 3, Evicted: 1, ActiveUsers: 10, SinkPoints: 80,
		Latency: []obs.HistogramSnapshot{
			snapshotOf("stream_process_seconds", time.Millisecond, 2*time.Millisecond),
			snapshotOf("stream_queue_wait_seconds", 50*time.Microsecond),
		},
	})
	b := statsWorker(t, upstreamStats{
		In: 40, Out: 40, Stalls: 1, Evicted: 0, ActiveUsers: 4, SinkPoints: 40,
		Latency: []obs.HistogramSnapshot{
			snapshotOf("stream_process_seconds", 4*time.Millisecond),
		},
	})
	rt, hs := startRouter(t, Config{Nodes: []string{a.URL, b.URL}})
	if got := len(rt.Nodes()); got != 2 {
		t.Fatalf("Nodes() has %d entries, want 2", got)
	}

	// A little traffic first, so the router's own forwarded counters
	// are nonzero in the aggregate.
	resp, err := http.Post(hs.URL+"/ingest", "application/x-ndjson", ndjson(testRecords(6, 2)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Post(hs.URL+"/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 2 || st.In != 140 || st.Out != 130 || st.Stalls != 4 ||
		st.Evicted != 1 || st.ActiveUsers != 14 || st.SinkPoints != 120 {
		t.Errorf("aggregated scalars wrong: %+v", st)
	}
	if st.Forwarded != 12 {
		t.Errorf("router_forwarded_points = %d, want 12", st.Forwarded)
	}
	if len(st.PerNode) != 2 || st.PerNode[0].In != 100 || st.PerNode[1].In != 40 {
		t.Errorf("per-node breakdown wrong: %+v", st.PerNode)
	}
	// The two stream_process_seconds series merged into one with the
	// exact combined state.
	var proc *obs.HistogramSnapshot
	for i := range st.Latency {
		if st.Latency[i].Name == "stream_process_seconds" && st.Latency[i].Labels == "" {
			proc = &st.Latency[i]
		}
	}
	if proc == nil {
		t.Fatalf("merged stats lack stream_process_seconds: %+v", st.Latency)
	}
	if proc.Count != 3 || proc.SumNs != uint64(7*time.Millisecond) {
		t.Errorf("merged stream_process_seconds count=%d sumNs=%d, want 3 / %d", proc.Count, proc.SumNs, 7*time.Millisecond)
	}
	for i := 1; i < len(st.Latency); i++ {
		l, r := st.Latency[i-1], st.Latency[i]
		if l.Name > r.Name || (l.Name == r.Name && l.Labels > r.Labels) {
			t.Errorf("latency series unsorted at %d: %q/%q after %q/%q", i, r.Name, r.Labels, l.Name, l.Labels)
		}
	}

	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "router_forwarded_points") {
		t.Errorf("/metrics does not expose router_forwarded_points:\n%s", body)
	}
}

// Package router is the multi-node fan-out layer: a thin, stateless
// HTTP router that fronts N mobiserve workers and exposes the same
// ingest API as a single worker, so a client (mobiload, curl) cannot
// tell a fleet from one process.
//
// # Placement
//
// A user is pinned to the worker numbered rng.Shard(user, nodes) —
// splitmix64(fnv64a(user)) mod the node count, the exact hash(user)
// placement contract the stream engine shards by in-process and the
// .mstore format pins segments with. Because every layer routes
// through the one shared helper, a user's points always land on one
// worker in arrival order, and the fleet's output is provably
// byte-equivalent to a single node's: same mechanism state, same
// (seed, user) determinism, just partitioned. Placement is mod-n, not
// ring consistent hashing — resizing the fleet remaps keys
// predictably (the fraction keeping their node moving n -> m workers
// is min(n,m)/lcm(n,m)) and rebalancing is a drain-flush-restart, not
// a live migration.
//
// # Forwarding
//
// Ingest bodies (NDJSON or CSV) are decoded record-at-a-time and
// batched by destination node: one upstream POST per (node, batch)
// rather than per record, over a shared connection-reusing
// http.Client. Sends to one node stay sequential (per-user order is
// part of the contract); distinct nodes flush in parallel. Transient
// upstream failures are retried with bounded exponential backoff;
// exhausting the retries surfaces a 503 naming the failing node —
// a partition is never silently dropped. Each upstream request runs
// under a per-request timeout so a hung worker cannot pin router
// goroutines. Incoming W3C traceparent headers are forwarded upstream
// and echoed on the response, so one trace spans client -> router ->
// worker -> sink.
//
// # Aggregation
//
// GET /stats fans out to every node and merges the responses into the
// single-node wire shape: scalar counters sum; latency histograms
// merge exactly via the sparse-bin HistogramSnapshot state
// (obs.Histogram.MergeSnapshot), so fleet-wide quantiles are
// bit-identical to a single process observing the same values — the
// same merge contract the rest of the codebase's accumulators honor.
// GET /metrics exposes the router's own per-node series:
// router_forwarded_points, router_upstream_errors and the
// router_upstream_seconds latency histogram.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"mobipriv/internal/obs"
	"mobipriv/internal/rng"
	"mobipriv/internal/trace"
	"mobipriv/internal/traceio"
)

// Config parameterizes a Router.
type Config struct {
	// Nodes lists the upstream mobiserve workers, as "host:port" or
	// full "http://host:port" base URLs. Order matters: placement is
	// rng.Shard(user, len(Nodes)) into this slice, so every router in
	// front of the same fleet must list the nodes identically.
	Nodes []string

	// Batch caps the points buffered per destination node before a
	// flush mid-request (default 256, matching mobiserve's ingest
	// batch). The end of the request body always flushes everything.
	Batch int

	// Retries is how many times a failed upstream send is retried
	// (default 2, so up to 3 attempts). Retried failures are transport
	// errors and 5xx responses — a 4xx is the client's fault and is
	// surfaced immediately.
	Retries int

	// RetryBackoff is the initial delay before the first retry,
	// doubling per attempt (default 50ms).
	RetryBackoff time.Duration

	// Timeout bounds each individual upstream request (default 30s).
	// A hung worker fails that request rather than pinning the router.
	Timeout time.Duration

	// Client overrides the upstream HTTP client (tests). Nil means a
	// default client with connection reuse.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Router fans the single-node ingest API out over a fleet of mobiserve
// workers. Construct with New; it is ready to serve via Handler.
type Router struct {
	nodes   []string // normalized base URLs, placement order
	names   []string // host:port label values, same order
	cfg     Config
	client  *http.Client
	reg     *obs.Registry
	started time.Time

	forwarded []*obs.Counter   // router_forwarded_points per node
	upErrors  []*obs.Counter   // router_upstream_errors per node
	upSeconds []*obs.Histogram // router_upstream_seconds per node
}

// New builds a Router over the given fleet. At least one node is
// required; node addresses are normalized to http:// base URLs.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("router: no nodes")
	}
	rt := &Router{
		cfg:     cfg,
		client:  cfg.Client,
		reg:     obs.NewRegistry(),
		started: time.Now(),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	for _, n := range cfg.Nodes {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, errors.New("router: empty node address")
		}
		if !strings.Contains(n, "://") {
			n = "http://" + n
		}
		n = strings.TrimRight(n, "/")
		name := strings.TrimPrefix(strings.TrimPrefix(n, "http://"), "https://")
		rt.nodes = append(rt.nodes, n)
		rt.names = append(rt.names, name)
	}
	for _, name := range rt.names {
		rt.forwarded = append(rt.forwarded, rt.reg.Counter("router_forwarded_points",
			"Points forwarded to each upstream node.", obs.L("node", name)))
		rt.upErrors = append(rt.upErrors, rt.reg.Counter("router_upstream_errors",
			"Failed upstream requests (transport errors and 5xx), by node; each retry attempt counts.", obs.L("node", name)))
		rt.upSeconds = append(rt.upSeconds, rt.reg.Histogram("router_upstream_seconds",
			"Upstream request latency, by node.", obs.L("node", name)))
	}
	obs.RegisterProcessMetrics(rt.reg)
	rt.reg.GaugeFunc("router_nodes",
		"Upstream nodes this router fans out over.",
		func() float64 { return float64(len(rt.nodes)) })
	return rt, nil
}

// Nodes returns the normalized upstream base URLs in placement order.
func (rt *Router) Nodes() []string { return append([]string(nil), rt.nodes...) }

// NodeOf returns the index of the node that owns user — the placement
// contract rng.Shard(user, nodes), shared with the stream engine's
// shard pinning so router-level and engine-level placement can never
// drift.
func (rt *Router) NodeOf(user string) int { return rng.Shard(user, len(rt.nodes)) }

// Registry exposes the router's own metrics registry (the /metrics
// content) for tests and embedding.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Handler returns the router's HTTP API: the mobiserve ingest surface
// (POST /ingest, POST /flush, GET /stats, GET /metrics, GET /healthz)
// served fleet-wide.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", rt.handleIngest)
	mux.HandleFunc("POST /flush", rt.handleFlush)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return mux
}

// rec is one decoded ingest record in flight to a node.
type rec struct {
	user string
	pt   trace.Point
}

// handleIngest decodes the body record-at-a-time, buffers records by
// destination node, and forwards one upstream POST per (node, batch).
// The incoming traceparent (if any) is echoed on the response and
// forwarded on every upstream request.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	tp := r.Header.Get("traceparent")
	if tp != "" {
		w.Header().Set("traceparent", tp)
	}
	bufs := make([][]rec, len(rt.nodes))
	// sent is per-node so the parallel tail flush mutates disjoint
	// slots; the response total is summed after every send is done.
	sent := make([]int, len(rt.nodes))
	send := func(i int) error {
		if len(bufs[i]) == 0 {
			return nil
		}
		if err := rt.sendBatch(r.Context(), i, bufs[i], tp); err != nil {
			return err
		}
		sent[i] += len(bufs[i])
		bufs[i] = bufs[i][:0]
		return nil
	}
	record := func(user string, p trace.Point) error {
		i := rt.NodeOf(user)
		bufs[i] = append(bufs[i], rec{user, p})
		if len(bufs[i]) >= rt.cfg.Batch {
			return send(i)
		}
		return nil
	}
	var err error
	if strings.HasPrefix(r.Header.Get("Content-Type"), "text/csv") {
		err = traceio.DecodeCSV(r.Body, record)
	} else {
		err = traceio.DecodeJSONL(r.Body, record)
	}
	if err == nil {
		// Tail flush: distinct nodes hold disjoint users, so the final
		// per-node batches can fly in parallel without reordering any
		// user's stream.
		err = rt.fanOut(func(i int) error { return send(i) })
	}
	if err != nil {
		rt.httpError(w, err)
		return
	}
	accepted := 0
	for _, n := range sent {
		accepted += n
	}
	writeJSON(w, map[string]any{"accepted": accepted})
}

// sendBatch forwards one batch of records to node i as NDJSON, with
// bounded retry on transient failures (transport errors, 5xx). Every
// failed attempt increments router_upstream_errors{node}; exhausting
// the attempts returns an error naming the node.
func (rt *Router) sendBatch(ctx context.Context, i int, batch []rec, traceparent string) error {
	var body bytes.Buffer
	for _, r := range batch {
		traceio.WriteJSONLRecord(&body, r.user, r.pt)
	}
	err := rt.upstream(ctx, i, http.MethodPost, "/ingest", body.Bytes(), traceparent)
	if err != nil {
		return err
	}
	rt.forwarded[i].Add(uint64(len(batch)))
	return nil
}

// upstream performs one logical request to node i with the router's
// retry/backoff/timeout policy. A non-nil reqBody is sent as NDJSON
// (fresh reader per attempt, so retries are safe).
func (rt *Router) upstream(ctx context.Context, i int, method, path string, reqBody []byte, traceparent string) error {
	var lastErr error
	for attempt := 0; attempt <= rt.cfg.Retries; attempt++ {
		if attempt > 0 {
			backoff := rt.cfg.RetryBackoff << uint(attempt-1)
			select {
			case <-ctx.Done():
				return &NodeError{Node: rt.names[i], Err: fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)}
			case <-time.After(backoff):
			}
		}
		lastErr = rt.attempt(ctx, i, method, path, reqBody, traceparent)
		if lastErr == nil {
			return nil
		}
		rt.upErrors[i].Inc()
		var retry *retryableError
		if !errors.As(lastErr, &retry) {
			break
		}
	}
	return &NodeError{Node: rt.names[i], Err: lastErr}
}

// NodeError reports a failure talking to one specific upstream node,
// so a partition outage is always attributable by name.
type NodeError struct {
	Node string
	Err  error
}

func (e *NodeError) Error() string { return fmt.Sprintf("node %s: %v", e.Node, e.Err) }
func (e *NodeError) Unwrap() error { return e.Err }

// retryableError marks an upstream failure worth retrying: the worker
// may be restarting or momentarily overloaded.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// attempt is one upstream HTTP round trip under the per-request
// timeout, observed into router_upstream_seconds{node}.
func (rt *Router) attempt(ctx context.Context, i int, method, path string, reqBody []byte, traceparent string) error {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.Timeout)
	defer cancel()
	var body io.Reader
	if reqBody != nil {
		body = bytes.NewReader(reqBody)
	}
	req, err := http.NewRequestWithContext(ctx, method, rt.nodes[i]+path, body)
	if err != nil {
		return err
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/x-ndjson")
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	start := time.Now()
	resp, err := rt.client.Do(req)
	rt.upSeconds[i].ObserveDuration(time.Since(start))
	if err != nil {
		return &retryableError{err}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 500 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return &retryableError{fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))}
	}
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

// fanOut runs fn(i) for every node concurrently and returns the first
// error (lowest node index wins, deterministically).
func (rt *Router) fanOut(fn func(i int) error) error {
	errs := make([]error, len(rt.nodes))
	var wg sync.WaitGroup
	for i := range rt.nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fn(i)
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// handleFlush forwards the flush to every node; all must succeed.
func (rt *Router) handleFlush(w http.ResponseWriter, r *http.Request) {
	tp := r.Header.Get("traceparent")
	if tp != "" {
		w.Header().Set("traceparent", tp)
	}
	err := rt.fanOut(func(i int) error {
		return rt.upstream(r.Context(), i, http.MethodPost, "/flush", nil, tp)
	})
	if err != nil {
		rt.httpError(w, err)
		return
	}
	writeJSON(w, map[string]any{"flushed": true})
}

// Check probes every node's /healthz concurrently and returns an
// error naming each unreachable node (nil when the whole fleet
// answers). It is the health contract behind GET /healthz and the
// startup probe in cmd/mobirouter.
func (rt *Router) Check(ctx context.Context) error {
	return rt.fanOut(func(i int) error {
		pctx, cancel := context.WithTimeout(ctx, rt.cfg.Timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, rt.nodes[i]+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			return &NodeError{Node: rt.names[i], Err: err}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return &NodeError{Node: rt.names[i], Err: fmt.Errorf("HTTP %d", resp.StatusCode)}
		}
		return nil
	})
}

// handleHealthz probes every node; any dead node makes the router
// unhealthy with a body naming it, so a partition outage is loud.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := rt.Check(r.Context()); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the router's own registry in Prometheus text
// format.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.reg.WritePrometheus(w)
}

// upstreamStats is the slice of a worker's /stats the router
// aggregates.
type upstreamStats struct {
	In          uint64                  `json:"points_in"`
	Out         uint64                  `json:"points_out"`
	Stalls      uint64                  `json:"push_stalls"`
	Evicted     uint64                  `json:"evicted_users"`
	ActiveUsers int                     `json:"active_users"`
	SinkPoints  uint64                  `json:"sink_store_points"`
	Latency     []obs.HistogramSnapshot `json:"latency"`
}

// nodeStats is the per-node breakdown in the router's /stats.
type nodeStats struct {
	Node        string `json:"node"`
	In          uint64 `json:"points_in"`
	ActiveUsers int    `json:"active_users"`
	Forwarded   uint64 `json:"router_forwarded_points"`
	Errors      uint64 `json:"router_upstream_errors"`
}

// statsResponse is the router's /stats wire format — a superset of the
// single-node fields mobiload's decomposition reads (points_in,
// push_stalls, latency), aggregated fleet-wide.
type statsResponse struct {
	Nodes       int                     `json:"nodes"`
	UptimeS     float64                 `json:"uptime_s"`
	In          uint64                  `json:"points_in"`
	Out         uint64                  `json:"points_out"`
	PointsPerS  float64                 `json:"points_per_s"`
	Stalls      uint64                  `json:"push_stalls"`
	Evicted     uint64                  `json:"evicted_users"`
	ActiveUsers int                     `json:"active_users"`
	SinkPoints  uint64                  `json:"sink_store_points"`
	Forwarded   uint64                  `json:"router_forwarded_points"`
	UpErrors    uint64                  `json:"router_upstream_errors"`
	PerNode     []nodeStats             `json:"per_node"`
	Latency     []obs.HistogramSnapshot `json:"latency"`
}

// handleStats fans out to every node's /stats and merges: scalars sum,
// histograms merge exactly through their sparse-bin snapshots, so the
// fleet-wide quantiles equal a single process having observed
// everything. The response keeps the single-node wire shape (plus
// per-node detail), so mobiload's server-side decomposition works
// unchanged against a router.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := make([]*upstreamStats, len(rt.nodes))
	err := rt.fanOut(func(i int) error {
		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.Timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.nodes[i]+"/stats", nil)
		if err != nil {
			return err
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			return &NodeError{Node: rt.names[i], Err: err}
		}
		defer func() {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		if resp.StatusCode != http.StatusOK {
			return &NodeError{Node: rt.names[i], Err: fmt.Errorf("HTTP %d", resp.StatusCode)}
		}
		var st upstreamStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return &NodeError{Node: rt.names[i], Err: fmt.Errorf("stats: %w", err)}
		}
		stats[i] = &st
		return nil
	})
	if err != nil {
		rt.httpError(w, err)
		return
	}
	up := time.Since(rt.started).Seconds()
	resp := statsResponse{
		Nodes:   len(rt.nodes),
		UptimeS: up,
		Latency: mergeSnapshots(stats),
	}
	for i, st := range stats {
		resp.In += st.In
		resp.Out += st.Out
		resp.Stalls += st.Stalls
		resp.Evicted += st.Evicted
		resp.ActiveUsers += st.ActiveUsers
		resp.SinkPoints += st.SinkPoints
		resp.Forwarded += rt.forwarded[i].Value()
		resp.UpErrors += rt.upErrors[i].Value()
		resp.PerNode = append(resp.PerNode, nodeStats{
			Node:        rt.names[i],
			In:          st.In,
			ActiveUsers: st.ActiveUsers,
			Forwarded:   rt.forwarded[i].Value(),
			Errors:      rt.upErrors[i].Value(),
		})
	}
	if up > 0 {
		resp.PointsPerS = float64(resp.In) / up
	}
	// The router's own upstream latency joins the merged view under its
	// per-node labels.
	resp.Latency = append(resp.Latency, rt.reg.HistogramSnapshots()...)
	sortSnapshots(resp.Latency)
	writeJSON(w, resp)
}

// mergeSnapshots folds every node's histogram series together by
// (name, labels) via the exact sparse-bin state.
func mergeSnapshots(stats []*upstreamStats) []obs.HistogramSnapshot {
	type key struct{ name, labels string }
	merged := make(map[key]*obs.Histogram)
	var order []key
	for _, st := range stats {
		for _, snap := range st.Latency {
			k := key{snap.Name, snap.Labels}
			h := merged[k]
			if h == nil {
				h = obs.NewHistogram()
				merged[k] = h
				order = append(order, k)
			}
			h.MergeSnapshot(snap)
		}
	}
	out := make([]obs.HistogramSnapshot, 0, len(order))
	for _, k := range order {
		out = append(out, merged[k].Snapshot(k.name, k.labels))
	}
	sortSnapshots(out)
	return out
}

// sortSnapshots orders snapshots by (name, labels), the registry's
// canonical exposition order.
func sortSnapshots(s []obs.HistogramSnapshot) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Name != s[j].Name {
			return s[i].Name < s[j].Name
		}
		return s[i].Labels < s[j].Labels
	})
}

// httpError maps an upstream failure onto the router's response:
// request timeout (408) when the client itself went away, service
// unavailable (503) naming the node when part of the fleet cannot be
// reached, and a client error (400) when the body failed to decode.
func (rt *Router) httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	var ne *NodeError
	switch {
	case errors.Is(err, context.Canceled):
		code = http.StatusRequestTimeout
	case errors.As(err, &ne):
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

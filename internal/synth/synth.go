// Package synth generates deterministic, seeded synthetic mobility
// datasets together with their ground truth (the true stop/POI
// intervals). It stands in for the real-life datasets of the paper's
// planned evaluation (Cabspotting, Geolife), reproducing the structural
// features the anonymization mechanisms and attacks interact with:
//
//   - stop clusters: users spend extended periods almost stationary at
//     semantically meaningful places (home, work, taxi stands) — these
//     are the POIs the mechanism must hide;
//   - movement at variable speed along plausible curved routes;
//   - natural path crossings: users share venues and road segments, so
//     trajectories meet in space and time — the mix-zones the swapping
//     step exploits;
//   - GPS sampling at a fixed interval with Gaussian position noise.
//
// Every generator is a pure function of its config (including Seed), so
// experiments are exactly reproducible.
package synth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
)

// Stay is one ground-truth stop: the user was at Center (up to GPS
// noise) from Enter to Leave. Stays are what the POI-retrieval attack
// tries to recover; the generator emits them as labels.
type Stay struct {
	User   string
	Center geo.Point
	Enter  time.Time
	Leave  time.Time
}

// Duration returns the length of the stay.
func (s Stay) Duration() time.Duration { return s.Leave.Sub(s.Enter) }

// Generated bundles a synthetic dataset with its ground truth.
type Generated struct {
	Dataset *trace.Dataset
	// Stays holds every ground-truth stop of at least MinStayLabel
	// duration, in no particular order.
	Stays []Stay
	// Venues are the shared places (work sites, stands, malls) where
	// users naturally meet; useful for mix-zone analyses.
	Venues []geo.Point
}

// StaysOf returns the ground-truth stays of one user, in time order.
func (g *Generated) StaysOf(user string) []Stay {
	var out []Stay
	for _, s := range g.Stays {
		if s.User == user {
			out = append(out, s)
		}
	}
	return out
}

// MinStayLabel is the minimum stop duration recorded as a ground-truth
// stay. Shorter pauses (traffic lights, pickups) are not POIs in the
// sense of Gambs et al. and are not labelled.
const MinStayLabel = 5 * time.Minute

// CommuterConfig parameterizes the Geolife-like workload: individuals
// with homes, workplaces and leisure venues following daily schedules.
type CommuterConfig struct {
	Seed       int64
	Users      int
	Days       int
	Center     geo.Point     // city center
	CityRadius float64       // meters; homes/venues are placed within it
	Sampling   time.Duration // GPS sampling interval
	GPSNoise   float64       // stddev of per-point position noise, meters
	DriveSpeed float64       // mean driving speed, m/s
	Start      time.Time     // midnight of day 0
}

// DefaultCommuterConfig returns the configuration used by the
// experiments: 50 users, 1 day, a 5 km city, 60 s sampling, 5 m GPS
// noise.
func DefaultCommuterConfig() CommuterConfig {
	return CommuterConfig{
		Seed:       1,
		Users:      50,
		Days:       1,
		Center:     geo.Point{Lat: 45.7640, Lng: 4.8357},
		CityRadius: 5000,
		Sampling:   60 * time.Second,
		GPSNoise:   5,
		DriveSpeed: 10,
		Start:      time.Date(2015, 6, 29, 0, 0, 0, 0, time.UTC),
	}
}

func (c CommuterConfig) validate() error {
	switch {
	case c.Users <= 0:
		return errors.New("synth: Users must be positive")
	case c.Days <= 0:
		return errors.New("synth: Days must be positive")
	case c.CityRadius <= 0:
		return errors.New("synth: CityRadius must be positive")
	case c.Sampling <= 0:
		return errors.New("synth: Sampling must be positive")
	case c.GPSNoise < 0:
		return errors.New("synth: GPSNoise must be non-negative")
	case c.DriveSpeed <= 0:
		return errors.New("synth: DriveSpeed must be positive")
	}
	return c.Center.Validate()
}

// Commuters generates the commuter workload.
func Commuters(cfg CommuterConfig) (*Generated, error) {
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("commuters: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Shared venue pool: work sites and leisure venues. Several users per
	// venue creates natural meetings.
	nWork := maxInt(2, cfg.Users/5)
	nLeisure := maxInt(2, cfg.Users/8)
	workSites := randomPlaces(rng, cfg.Center, cfg.CityRadius, nWork)
	leisure := randomPlaces(rng, cfg.Center, cfg.CityRadius, nLeisure)
	venues := append(append([]geo.Point(nil), workSites...), leisure...)

	var traces []*trace.Trace
	var stays []Stay
	for u := 0; u < cfg.Users; u++ {
		user := fmt.Sprintf("user%03d", u)
		home := randomPlace(rng, cfg.Center, cfg.CityRadius)
		work := workSites[rng.Intn(len(workSites))]
		fav := leisure[rng.Intn(len(leisure))]

		b := newBuilder(rng, cfg.Sampling, cfg.GPSNoise, user)
		b.now = cfg.Start
		b.cur = home
		for day := 0; day < cfg.Days; day++ {
			dayStart := cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
			leaveHome := dayStart.Add(7*time.Hour + 30*time.Minute +
				time.Duration(rng.NormFloat64()*float64(30*time.Minute)))
			b.stayUntil(home, leaveHome)
			b.travel(work, jitterSpeed(rng, cfg.DriveSpeed))

			leaveWork := dayStart.Add(17*time.Hour + 30*time.Minute +
				time.Duration(rng.NormFloat64()*float64(45*time.Minute)))
			if leaveWork.Before(b.now.Add(time.Hour)) {
				leaveWork = b.now.Add(8 * time.Hour)
			}
			b.stayUntil(work, leaveWork)

			if rng.Float64() < 0.5 {
				b.travel(fav, jitterSpeed(rng, cfg.DriveSpeed))
				leaveFav := b.now.Add(time.Hour +
					time.Duration(rng.Int63n(int64(90*time.Minute))))
				b.stayUntil(fav, leaveFav)
			}
			b.travel(home, jitterSpeed(rng, cfg.DriveSpeed))
			b.stayUntil(home, dayStart.Add(24*time.Hour))
		}
		tr, err := b.build()
		if err != nil {
			return nil, fmt.Errorf("commuters: user %s: %w", user, err)
		}
		traces = append(traces, tr)
		stays = append(stays, b.stays...)
	}
	ds, err := trace.NewDataset(traces)
	if err != nil {
		return nil, fmt.Errorf("commuters: %w", err)
	}
	return &Generated{Dataset: ds, Stays: stays, Venues: venues}, nil
}

// TaxiConfig parameterizes the Cabspotting-like workload: a fleet of
// vehicles doing passenger trips interleaved with waits at shared
// stands.
type TaxiConfig struct {
	Seed       int64
	Vehicles   int
	TripsEach  int // passenger trips per vehicle
	Center     geo.Point
	CityRadius float64
	Sampling   time.Duration
	GPSNoise   float64
	DriveSpeed float64
	Start      time.Time
}

// DefaultTaxiConfig returns the configuration used by the experiments:
// 40 cabs, 8 trips each, a 6 km city, 30 s sampling.
func DefaultTaxiConfig() TaxiConfig {
	return TaxiConfig{
		Seed:       1,
		Vehicles:   40,
		TripsEach:  8,
		Center:     geo.Point{Lat: 37.7749, Lng: -122.4194},
		CityRadius: 6000,
		Sampling:   30 * time.Second,
		GPSNoise:   8,
		DriveSpeed: 9,
		Start:      time.Date(2015, 6, 29, 6, 0, 0, 0, time.UTC),
	}
}

func (c TaxiConfig) validate() error {
	switch {
	case c.Vehicles <= 0:
		return errors.New("synth: Vehicles must be positive")
	case c.TripsEach <= 0:
		return errors.New("synth: TripsEach must be positive")
	case c.CityRadius <= 0:
		return errors.New("synth: CityRadius must be positive")
	case c.Sampling <= 0:
		return errors.New("synth: Sampling must be positive")
	case c.GPSNoise < 0:
		return errors.New("synth: GPSNoise must be non-negative")
	case c.DriveSpeed <= 0:
		return errors.New("synth: DriveSpeed must be positive")
	}
	return c.Center.Validate()
}

// TaxiFleet generates the taxi workload.
func TaxiFleet(cfg TaxiConfig) (*Generated, error) {
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("taxi fleet: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Shared taxi stands: waiting cabs cluster here (the fleet's POIs)
	// and many trajectories cross.
	nStands := maxInt(3, cfg.Vehicles/6)
	stands := randomPlaces(rng, cfg.Center, cfg.CityRadius*0.8, nStands)

	var traces []*trace.Trace
	var stays []Stay
	for v := 0; v < cfg.Vehicles; v++ {
		user := fmt.Sprintf("cab%03d", v)
		b := newBuilder(rng, cfg.Sampling, cfg.GPSNoise, user)
		b.now = cfg.Start.Add(time.Duration(rng.Int63n(int64(30 * time.Minute))))
		stand := stands[rng.Intn(len(stands))]
		b.cur = stand
		// Initial wait at the stand.
		b.stayUntil(stand, b.now.Add(10*time.Minute+time.Duration(rng.Int63n(int64(20*time.Minute)))))
		for trip := 0; trip < cfg.TripsEach; trip++ {
			pickup := randomPlace(rng, cfg.Center, cfg.CityRadius)
			dropoff := randomPlace(rng, cfg.Center, cfg.CityRadius)
			b.travel(pickup, jitterSpeed(rng, cfg.DriveSpeed))
			// Short pickup pause: under MinStayLabel, not a POI.
			b.stayUntil(pickup, b.now.Add(time.Minute+time.Duration(rng.Int63n(int64(2*time.Minute)))))
			b.travel(dropoff, jitterSpeed(rng, cfg.DriveSpeed))
			// Every few trips, return to a stand and wait (a POI stop).
			if rng.Float64() < 0.4 {
				stand = stands[rng.Intn(len(stands))]
				b.travel(stand, jitterSpeed(rng, cfg.DriveSpeed))
				wait := 8*time.Minute + time.Duration(rng.Int63n(int64(25*time.Minute)))
				b.stayUntil(stand, b.now.Add(wait))
			}
		}
		tr, err := b.build()
		if err != nil {
			return nil, fmt.Errorf("taxi fleet: %s: %w", user, err)
		}
		traces = append(traces, tr)
		stays = append(stays, b.stays...)
	}
	ds, err := trace.NewDataset(traces)
	if err != nil {
		return nil, fmt.Errorf("taxi fleet: %w", err)
	}
	return &Generated{Dataset: ds, Stays: stays, Venues: stands}, nil
}

// RandomWaypointConfig parameterizes the classic random-waypoint model:
// each user repeatedly picks a uniform destination, travels to it at a
// uniform speed and pauses. Hoh & Gruteser evaluated path confusion on
// exactly this model; it serves as the structureless control workload.
type RandomWaypointConfig struct {
	Seed     int64
	Users    int
	Legs     int // move+pause cycles per user
	Center   geo.Point
	Radius   float64
	Sampling time.Duration
	GPSNoise float64
	SpeedMin float64 // m/s
	SpeedMax float64
	PauseMin time.Duration
	PauseMax time.Duration
	Start    time.Time
}

// DefaultRandomWaypointConfig returns the control workload configuration.
func DefaultRandomWaypointConfig() RandomWaypointConfig {
	return RandomWaypointConfig{
		Seed:     1,
		Users:    30,
		Legs:     10,
		Center:   geo.Point{Lat: 45.7640, Lng: 4.8357},
		Radius:   3000,
		Sampling: 30 * time.Second,
		GPSNoise: 5,
		SpeedMin: 1,
		SpeedMax: 15,
		PauseMin: 2 * time.Minute,
		PauseMax: 20 * time.Minute,
		Start:    time.Date(2015, 6, 29, 8, 0, 0, 0, time.UTC),
	}
}

func (c RandomWaypointConfig) validate() error {
	switch {
	case c.Users <= 0:
		return errors.New("synth: Users must be positive")
	case c.Legs <= 0:
		return errors.New("synth: Legs must be positive")
	case c.Radius <= 0:
		return errors.New("synth: Radius must be positive")
	case c.Sampling <= 0:
		return errors.New("synth: Sampling must be positive")
	case c.GPSNoise < 0:
		return errors.New("synth: GPSNoise must be non-negative")
	case c.SpeedMin <= 0 || c.SpeedMax < c.SpeedMin:
		return errors.New("synth: need 0 < SpeedMin <= SpeedMax")
	case c.PauseMin < 0 || c.PauseMax < c.PauseMin:
		return errors.New("synth: need 0 <= PauseMin <= PauseMax")
	}
	return c.Center.Validate()
}

// RandomWaypoint generates the random-waypoint workload.
func RandomWaypoint(cfg RandomWaypointConfig) (*Generated, error) {
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("random waypoint: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var traces []*trace.Trace
	var stays []Stay
	for u := 0; u < cfg.Users; u++ {
		user := fmt.Sprintf("rw%03d", u)
		b := newBuilder(rng, cfg.Sampling, cfg.GPSNoise, user)
		b.now = cfg.Start
		b.cur = randomPlace(rng, cfg.Center, cfg.Radius)
		b.emit() // initial observation
		for leg := 0; leg < cfg.Legs; leg++ {
			dest := randomPlace(rng, cfg.Center, cfg.Radius)
			speed := cfg.SpeedMin + rng.Float64()*(cfg.SpeedMax-cfg.SpeedMin)
			b.travel(dest, speed)
			pause := cfg.PauseMin + time.Duration(rng.Int63n(int64(cfg.PauseMax-cfg.PauseMin)+1))
			b.stayUntil(dest, b.now.Add(pause))
		}
		tr, err := b.build()
		if err != nil {
			return nil, fmt.Errorf("random waypoint: %s: %w", user, err)
		}
		traces = append(traces, tr)
		stays = append(stays, b.stays...)
	}
	ds, err := trace.NewDataset(traces)
	if err != nil {
		return nil, fmt.Errorf("random waypoint: %w", err)
	}
	return &Generated{Dataset: ds, Stays: stays}, nil
}

// randomPlace returns a point uniform over the disk of the given radius.
func randomPlace(rng *rand.Rand, center geo.Point, radius float64) geo.Point {
	// sqrt for uniform area density.
	r := radius * math.Sqrt(rng.Float64())
	theta := rng.Float64() * 360
	return geo.Destination(center, theta, r)
}

func randomPlaces(rng *rand.Rand, center geo.Point, radius float64, n int) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = randomPlace(rng, center, radius)
	}
	return out
}

// jitterSpeed returns mean scaled by a uniform factor in [0.8, 1.2).
func jitterSpeed(rng *rand.Rand, mean float64) float64 {
	return mean * (0.8 + rng.Float64()*0.4)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package synth

import (
	"fmt"
	"math/rand"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/roadnet"
	"mobipriv/internal/trace"
)

// builder incrementally constructs one user's trace by alternating stays
// and travels, emitting GPS observations at the configured sampling
// interval with Gaussian position noise, and recording ground-truth
// stays.
type builder struct {
	rng      *rand.Rand
	sampling time.Duration
	noise    float64
	user     string

	cur   geo.Point // true (noise-free) current position
	now   time.Time // current simulation time
	last  time.Time // time of the last emitted observation
	pts   []trace.Point
	stays []Stay
}

func newBuilder(rng *rand.Rand, sampling time.Duration, noise float64, user string) *builder {
	return &builder{rng: rng, sampling: sampling, noise: noise, user: user}
}

// emit records one observation of the current position at the current
// time, with GPS noise. Observations less than one sampling interval
// apart are suppressed to keep the trace realistic (a GPS logger cannot
// fire faster than its configured rate).
func (b *builder) emit() {
	if len(b.pts) > 0 && b.now.Sub(b.last) < b.sampling {
		return
	}
	p := b.cur
	if b.noise > 0 {
		p = geo.Offset(p, b.rng.NormFloat64()*b.noise, b.rng.NormFloat64()*b.noise)
	}
	b.pts = append(b.pts, trace.Point{Point: p, Time: b.now})
	b.last = b.now
}

// stayUntil keeps the user (almost) stationary at center until the given
// instant, emitting observations at the sampling rate. If the stop is
// long enough it is recorded as a ground-truth Stay.
func (b *builder) stayUntil(center geo.Point, until time.Time) {
	if until.Before(b.now) {
		return
	}
	enter := b.now
	b.cur = center
	for !b.now.After(until) {
		b.emit()
		b.now = b.now.Add(b.sampling)
	}
	// Leave time is the requested one, not the last sample time.
	if until.Sub(enter) >= MinStayLabel {
		b.stays = append(b.stays, Stay{User: b.user, Center: center, Enter: enter, Leave: until})
	}
	b.now = until.Add(time.Nanosecond) // strictly increasing times
}

// travel moves the user from the current position to dest along a
// slightly curved route at (approximately) the given speed, emitting
// observations along the way. On arrival the current position is exactly
// dest.
func (b *builder) travel(dest geo.Point, speed float64) {
	if speed <= 0 {
		speed = 1
	}
	route := b.route(b.cur, dest)
	pl, err := geo.NewPolyline(route)
	if err != nil || pl.Length() == 0 {
		b.cur = dest
		return
	}
	total := pl.Length()
	for travelled := 0.0; travelled < total; {
		// Advance one sampling step at a slightly varying speed.
		step := speed * (0.9 + b.rng.Float64()*0.2) * b.sampling.Seconds()
		travelled += step
		if travelled > total {
			travelled = total
		}
		b.cur = pl.PointAt(travelled)
		b.now = b.now.Add(b.sampling)
		b.emit()
	}
	b.cur = dest
}

// travelVia moves the user to dest along the road network's shortest
// path (from the current position's nearest intersection, through the
// grid, to dest), emitting observations like travel. On arrival the
// current position is exactly dest.
func (b *builder) travelVia(net *roadnet.Network, dest geo.Point, speed float64) error {
	if speed <= 0 {
		speed = 1
	}
	route, err := net.Route(b.cur, dest)
	if err != nil {
		return err
	}
	// Connect the off-grid endpoints to the routed spine.
	full := make([]geo.Point, 0, len(route)+2)
	full = append(full, b.cur)
	full = append(full, route...)
	full = append(full, dest)
	pl, err := geo.NewPolyline(full)
	if err != nil || pl.Length() == 0 {
		b.cur = dest
		return nil
	}
	total := pl.Length()
	for travelled := 0.0; travelled < total; {
		step := speed * (0.9 + b.rng.Float64()*0.2) * b.sampling.Seconds()
		travelled += step
		if travelled > total {
			travelled = total
		}
		b.cur = pl.PointAt(travelled)
		b.now = b.now.Add(b.sampling)
		b.emit()
	}
	b.cur = dest
	return nil
}

// route returns a curved path from a to b: the straight line plus one or
// two laterally displaced waypoints, mimicking street routing without a
// road network.
func (b *builder) route(from, to geo.Point) []geo.Point {
	d := geo.Distance(from, to)
	if d < 50 {
		return []geo.Point{from, to}
	}
	brg := geo.Bearing(from, to)
	n := 1
	if d > 2000 {
		n = 2
	}
	route := make([]geo.Point, 0, n+2)
	route = append(route, from)
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n+1)
		base := geo.Interpolate(from, to, f)
		// Lateral displacement up to 15% of the leg length.
		lateral := (b.rng.Float64() - 0.5) * 0.3 * d
		route = append(route, geo.Destination(base, brg+90, lateral))
	}
	return append(route, to)
}

// build finalizes the trace.
func (b *builder) build() (*trace.Trace, error) {
	if len(b.pts) == 0 {
		return nil, fmt.Errorf("synth: user %s produced no observations", b.user)
	}
	return trace.New(b.user, b.pts)
}

package synth

import (
	"testing"
	"time"

	"mobipriv/internal/geo"
)

func smallCommuters(t *testing.T, seed int64) *Generated {
	t.Helper()
	cfg := DefaultCommuterConfig()
	cfg.Seed = seed
	cfg.Users = 8
	cfg.Sampling = 2 * time.Minute
	g, err := Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCommutersBasics(t *testing.T) {
	g := smallCommuters(t, 1)
	if g.Dataset.Len() != 8 {
		t.Fatalf("users = %d, want 8", g.Dataset.Len())
	}
	if err := g.Dataset.Validate(); err != nil {
		t.Fatalf("generated dataset invalid: %v", err)
	}
	if len(g.Stays) == 0 {
		t.Fatal("commuters must produce ground-truth stays")
	}
	if len(g.Venues) == 0 {
		t.Fatal("commuters must expose shared venues")
	}
	// Every user has at least home + work stays per day.
	for _, u := range g.Dataset.Users() {
		if got := len(g.StaysOf(u)); got < 3 {
			t.Errorf("user %s has %d stays, want >= 3 (home-work-home)", u, got)
		}
	}
}

func TestCommutersDeterministic(t *testing.T) {
	g1 := smallCommuters(t, 42)
	g2 := smallCommuters(t, 42)
	if g1.Dataset.TotalPoints() != g2.Dataset.TotalPoints() {
		t.Fatal("same seed must give identical datasets")
	}
	tr1 := g1.Dataset.Traces()[0]
	tr2 := g2.Dataset.Traces()[0]
	for i := range tr1.Points {
		if !tr1.Points[i].Time.Equal(tr2.Points[i].Time) || !tr1.Points[i].Point.Equal(tr2.Points[i].Point) {
			t.Fatalf("point %d differs between runs with same seed", i)
		}
	}
	g3 := smallCommuters(t, 43)
	if g1.Dataset.TotalPoints() == g3.Dataset.TotalPoints() &&
		g1.Dataset.Traces()[0].Points[10].Point.Equal(g3.Dataset.Traces()[0].Points[10].Point) {
		t.Fatal("different seeds should give different data")
	}
}

func TestCommutersStaysMatchTrace(t *testing.T) {
	g := smallCommuters(t, 7)
	// During each labelled stay, the user's observed positions must be
	// near the stay center (within GPS noise tolerance).
	cfg := DefaultCommuterConfig()
	for _, s := range g.Stays {
		tr := g.Dataset.ByUser(s.User)
		if tr == nil {
			t.Fatalf("stay references unknown user %s", s.User)
		}
		if s.Leave.Before(s.Enter) {
			t.Fatalf("stay leaves before entering: %+v", s)
		}
		if s.Duration() < MinStayLabel {
			t.Fatalf("stay shorter than MinStayLabel: %v", s.Duration())
		}
		n := 0
		for _, p := range tr.Points {
			if p.Time.Before(s.Enter) || p.Time.After(s.Leave) {
				continue
			}
			n++
			if d := geo.Distance(p.Point, s.Center); d > cfg.GPSNoise*6+1 {
				t.Errorf("user %s point at %v is %v m from stay center", s.User, p.Time, d)
			}
		}
		if n == 0 {
			t.Errorf("stay %v..%v of %s has no observations", s.Enter, s.Leave, s.User)
		}
	}
}

func TestCommutersRealisticSpeeds(t *testing.T) {
	g := smallCommuters(t, 3)
	for _, tr := range g.Dataset.Traces() {
		for i, s := range tr.Speeds() {
			if s > 40 { // ~144 km/h: nothing in the model drives that fast
				t.Fatalf("user %s segment %d speed %v m/s is unrealistic", tr.User, i, s)
			}
		}
	}
}

func TestCommutersValidation(t *testing.T) {
	bad := []func(*CommuterConfig){
		func(c *CommuterConfig) { c.Users = 0 },
		func(c *CommuterConfig) { c.Days = 0 },
		func(c *CommuterConfig) { c.CityRadius = -1 },
		func(c *CommuterConfig) { c.Sampling = 0 },
		func(c *CommuterConfig) { c.GPSNoise = -2 },
		func(c *CommuterConfig) { c.DriveSpeed = 0 },
		func(c *CommuterConfig) { c.Center.Lat = 99 },
	}
	for i, mutate := range bad {
		cfg := DefaultCommuterConfig()
		mutate(&cfg)
		if _, err := Commuters(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestTaxiFleetBasics(t *testing.T) {
	cfg := DefaultTaxiConfig()
	cfg.Vehicles = 6
	cfg.TripsEach = 4
	g, err := TaxiFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dataset.Len() != 6 {
		t.Fatalf("vehicles = %d, want 6", g.Dataset.Len())
	}
	if err := g.Dataset.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	if len(g.Stays) == 0 {
		t.Fatal("taxis must produce stand-wait stays")
	}
	// All points inside a generous city bounding box.
	box := geo.BBox{}
	box.Extend(geo.Offset(cfg.Center, -3*cfg.CityRadius, -3*cfg.CityRadius))
	box.Extend(geo.Offset(cfg.Center, 3*cfg.CityRadius, 3*cfg.CityRadius))
	for _, tr := range g.Dataset.Traces() {
		for _, p := range tr.Points {
			if !box.Contains(p.Point) {
				t.Fatalf("point %v far outside city", p)
			}
		}
	}
}

func TestTaxiFleetValidation(t *testing.T) {
	cfg := DefaultTaxiConfig()
	cfg.Vehicles = 0
	if _, err := TaxiFleet(cfg); err == nil {
		t.Error("invalid config accepted")
	}
	cfg = DefaultTaxiConfig()
	cfg.TripsEach = -1
	if _, err := TaxiFleet(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRandomWaypointBasics(t *testing.T) {
	cfg := DefaultRandomWaypointConfig()
	cfg.Users = 5
	cfg.Legs = 4
	g, err := RandomWaypoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dataset.Len() != 5 {
		t.Fatalf("users = %d", g.Dataset.Len())
	}
	if err := g.Dataset.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pauses of >= MinStayLabel show up as stays; with PauseMin=2min and
	// PauseMax=20min some but not necessarily all legs produce stays.
	if len(g.Stays) == 0 {
		t.Fatal("random waypoint should produce some stays")
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	cfg := DefaultRandomWaypointConfig()
	cfg.SpeedMin = 0
	if _, err := RandomWaypoint(cfg); err == nil {
		t.Error("invalid speed accepted")
	}
	cfg = DefaultRandomWaypointConfig()
	cfg.PauseMax = cfg.PauseMin - 1
	if _, err := RandomWaypoint(cfg); err == nil {
		t.Error("invalid pause range accepted")
	}
}

func TestSamplingIntervalRespected(t *testing.T) {
	g := smallCommuters(t, 5)
	cfg := DefaultCommuterConfig()
	cfg.Sampling = 2 * time.Minute
	for _, tr := range g.Dataset.Traces() {
		for i := 1; i < tr.Len(); i++ {
			dt := tr.Points[i].Time.Sub(tr.Points[i-1].Time)
			if dt < cfg.Sampling-time.Second {
				t.Fatalf("user %s: consecutive samples %v apart, sampling %v", tr.User, dt, cfg.Sampling)
			}
		}
	}
}

func TestStaysOfUnknownUser(t *testing.T) {
	g := smallCommuters(t, 1)
	if got := g.StaysOf("nobody"); got != nil {
		t.Fatalf("StaysOf(nobody) = %v", got)
	}
}

package synth

import (
	"testing"
	"time"

	"mobipriv/internal/geo"
)

func smallRoadCommuters(t *testing.T) *Generated {
	t.Helper()
	cfg := DefaultRoadCommuterConfig()
	cfg.Users = 6
	cfg.Sampling = 2 * time.Minute
	cfg.GridRows = 5
	cfg.GridCols = 5
	g, err := RoadCommuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRoadCommutersBasics(t *testing.T) {
	g := smallRoadCommuters(t)
	if g.Dataset.Len() != 6 {
		t.Fatalf("users = %d", g.Dataset.Len())
	}
	if err := g.Dataset.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Stays) == 0 || len(g.Venues) == 0 {
		t.Fatal("stays and venues required")
	}
}

func TestRoadCommutersFollowRoads(t *testing.T) {
	// Between stops, observations lie near the street grid: snap each
	// moving observation to the nearest grid axis and verify the offset
	// is bounded by GPS noise + sampling interpolation.
	cfg := DefaultRoadCommuterConfig()
	cfg.Users = 3
	cfg.Sampling = time.Minute
	cfg.GridRows = 5
	cfg.GridCols = 5
	g, err := RoadCommuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr := geo.NewProjector(cfg.Center)
	block := cfg.BlockSize
	half := float64(cfg.GridRows-1) / 2 * block
	onGrid := func(p geo.Point) bool {
		v := pr.ToXY(p)
		// Within the grid extent (with slack) and near a row, column or
		// diagonal line.
		if v.X < -half-200 || v.X > half+200 || v.Y < -half-200 || v.Y > half+200 {
			return false
		}
		nearAxis := func(c float64) bool {
			m := mod(c+half, block)
			return m < 100 || m > block-100
		}
		if nearAxis(v.X) || nearAxis(v.Y) {
			return true
		}
		// Diagonals: |x|==|y| lines through the center.
		dx, dy := abs(v.X), abs(v.Y)
		return abs(dx-dy) < 150
	}
	var moving, off int
	for _, tr := range g.Dataset.Traces() {
		speeds := tr.Speeds()
		for i, s := range speeds {
			if s < 2 { // stationary or slow: stays, not road segments
				continue
			}
			moving++
			if !onGrid(tr.Points[i+1].Point) {
				off++
			}
		}
	}
	if moving == 0 {
		t.Fatal("no moving observations found")
	}
	if frac := float64(off) / float64(moving); frac > 0.2 {
		t.Fatalf("%.0f%% of moving observations are off the road grid", frac*100)
	}
}

func TestRoadCommutersDeterministic(t *testing.T) {
	g1 := smallRoadCommuters(t)
	g2 := smallRoadCommuters(t)
	if g1.Dataset.TotalPoints() != g2.Dataset.TotalPoints() {
		t.Fatal("same seed must give identical output")
	}
}

func TestRoadCommutersValidation(t *testing.T) {
	bad := []func(*RoadCommuterConfig){
		func(c *RoadCommuterConfig) { c.Users = 0 },
		func(c *RoadCommuterConfig) { c.GridRows = 1 },
		func(c *RoadCommuterConfig) { c.BlockSize = 0 },
		func(c *RoadCommuterConfig) { c.Sampling = 0 },
		func(c *RoadCommuterConfig) { c.DriveSpeed = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultRoadCommuterConfig()
		mutate(&cfg)
		if _, err := RoadCommuters(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func mod(a, b float64) float64 {
	m := a - float64(int(a/b))*b
	if m < 0 {
		m += b
	}
	return m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package synth

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/roadnet"
	"mobipriv/internal/trace"
)

// RoadCommuterConfig parameterizes the road-routed commuter workload:
// like CommuterConfig, but every trip follows shortest paths on a shared
// street grid, so users meet *in motion* on common road segments — the
// kinetic-crossing regime of mix-zones (see internal/roadnet).
type RoadCommuterConfig struct {
	Seed       int64
	Users      int
	Days       int
	Center     geo.Point
	GridRows   int // street grid dimensions
	GridCols   int
	BlockSize  float64 // meters per block
	Sampling   time.Duration
	GPSNoise   float64
	DriveSpeed float64
	Start      time.Time
}

// DefaultRoadCommuterConfig returns the road workload used by E15.
func DefaultRoadCommuterConfig() RoadCommuterConfig {
	return RoadCommuterConfig{
		Seed:       1,
		Users:      50,
		Days:       1,
		Center:     geo.Point{Lat: 45.7640, Lng: 4.8357},
		GridRows:   9,
		GridCols:   9,
		BlockSize:  700,
		Sampling:   60 * time.Second,
		GPSNoise:   5,
		DriveSpeed: 10,
		Start:      time.Date(2015, 6, 29, 0, 0, 0, 0, time.UTC),
	}
}

func (c RoadCommuterConfig) validate() error {
	switch {
	case c.Users <= 0:
		return errors.New("synth: Users must be positive")
	case c.Days <= 0:
		return errors.New("synth: Days must be positive")
	case c.GridRows < 2 || c.GridCols < 2:
		return errors.New("synth: grid must be at least 2x2")
	case c.BlockSize <= 0:
		return errors.New("synth: BlockSize must be positive")
	case c.Sampling <= 0:
		return errors.New("synth: Sampling must be positive")
	case c.GPSNoise < 0:
		return errors.New("synth: GPSNoise must be non-negative")
	case c.DriveSpeed <= 0:
		return errors.New("synth: DriveSpeed must be positive")
	}
	return c.Center.Validate()
}

// RoadCommuters generates the road-routed commuter workload. Homes,
// workplaces and leisure venues snap to street intersections; all trips
// follow shortest paths on the shared grid.
func RoadCommuters(cfg RoadCommuterConfig) (*Generated, error) {
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("road commuters: %w", err)
	}
	net, err := roadnet.NewGrid(cfg.Center, cfg.GridRows, cfg.GridCols, cfg.BlockSize)
	if err != nil {
		return nil, fmt.Errorf("road commuters: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	randomNode := func() geo.Point { return net.Node(rng.Intn(net.NumNodes())) }
	nWork := maxInt(2, cfg.Users/5)
	nLeisure := maxInt(2, cfg.Users/8)
	workSites := make([]geo.Point, nWork)
	for i := range workSites {
		workSites[i] = randomNode()
	}
	leisure := make([]geo.Point, nLeisure)
	for i := range leisure {
		leisure[i] = randomNode()
	}
	venues := append(append([]geo.Point(nil), workSites...), leisure...)

	var traces []*trace.Trace
	var stays []Stay
	for u := 0; u < cfg.Users; u++ {
		user := fmt.Sprintf("ruser%03d", u)
		home := randomNode()
		work := workSites[rng.Intn(len(workSites))]
		fav := leisure[rng.Intn(len(leisure))]

		b := newBuilder(rng, cfg.Sampling, cfg.GPSNoise, user)
		b.now = cfg.Start
		b.cur = home
		for day := 0; day < cfg.Days; day++ {
			dayStart := cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
			leaveHome := dayStart.Add(7*time.Hour + 30*time.Minute +
				time.Duration(rng.NormFloat64()*float64(30*time.Minute)))
			b.stayUntil(home, leaveHome)
			if err := b.travelVia(net, work, jitterSpeed(rng, cfg.DriveSpeed)); err != nil {
				return nil, fmt.Errorf("road commuters: %s: %w", user, err)
			}
			leaveWork := dayStart.Add(17*time.Hour + 30*time.Minute +
				time.Duration(rng.NormFloat64()*float64(45*time.Minute)))
			if leaveWork.Before(b.now.Add(time.Hour)) {
				leaveWork = b.now.Add(8 * time.Hour)
			}
			b.stayUntil(work, leaveWork)
			if rng.Float64() < 0.5 {
				if err := b.travelVia(net, fav, jitterSpeed(rng, cfg.DriveSpeed)); err != nil {
					return nil, fmt.Errorf("road commuters: %s: %w", user, err)
				}
				b.stayUntil(fav, b.now.Add(time.Hour+time.Duration(rng.Int63n(int64(90*time.Minute)))))
			}
			if err := b.travelVia(net, home, jitterSpeed(rng, cfg.DriveSpeed)); err != nil {
				return nil, fmt.Errorf("road commuters: %s: %w", user, err)
			}
			b.stayUntil(home, dayStart.Add(24*time.Hour))
		}
		tr, err := b.build()
		if err != nil {
			return nil, fmt.Errorf("road commuters: %s: %w", user, err)
		}
		traces = append(traces, tr)
		stays = append(stays, b.stays...)
	}
	ds, err := trace.NewDataset(traces)
	if err != nil {
		return nil, fmt.Errorf("road commuters: %w", err)
	}
	return &Generated{Dataset: ds, Stays: stays, Venues: venues}, nil
}

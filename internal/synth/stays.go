package synth

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"mobipriv/internal/geo"
)

// ReadStays parses the ground-truth stays CSV written by cmd/mobigen
// (header "user,lat,lng,enter,leave", RFC 3339 timestamps) — the loader
// shared by the evaluation tools that accept external ground truth.
func ReadStays(r io.Reader) ([]Stay, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read stays: %w", err)
	}
	var out []Stay
	for i, rec := range recs {
		if i == 0 && len(rec) == 5 && rec[0] == "user" {
			continue
		}
		if len(rec) != 5 {
			return nil, fmt.Errorf("stays line %d: want 5 fields, got %d", i+1, len(rec))
		}
		lat, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("stays line %d: lat: %w", i+1, err)
		}
		lng, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("stays line %d: lng: %w", i+1, err)
		}
		enter, err := time.Parse(time.RFC3339, rec[3])
		if err != nil {
			return nil, fmt.Errorf("stays line %d: enter: %w", i+1, err)
		}
		leave, err := time.Parse(time.RFC3339, rec[4])
		if err != nil {
			return nil, fmt.Errorf("stays line %d: leave: %w", i+1, err)
		}
		out = append(out, Stay{
			User:   rec[0],
			Center: geo.Point{Lat: lat, Lng: lng},
			Enter:  enter,
			Leave:  leave,
		})
	}
	return out, nil
}

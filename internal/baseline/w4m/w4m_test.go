package w4m

import (
	"math"
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
)

var (
	t0     = time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	origin = geo.Point{Lat: 45.7640, Lng: 4.8357}
)

// band builds n parallel eastbound traces dy meters apart, all starting
// at t0, 1 hour long, sampled every minute, moving at 5 m/s.
func band(n int, dy float64) []*trace.Trace {
	out := make([]*trace.Trace, n)
	for u := 0; u < n; u++ {
		var pts []trace.Point
		for i := 0; i <= 60; i++ {
			pts = append(pts, trace.Point{
				Point: geo.Offset(origin, float64(i)*300, float64(u)*dy),
				Time:  t0.Add(time.Duration(i) * time.Minute),
			})
		}
		out[u] = trace.MustNew(user(u), pts)
	}
	return out
}

func user(u int) string { return string(rune('a'+u)) + "user" }

func TestAnonymizeEnforcesKDelta(t *testing.T) {
	// 4 users 50 m apart: one cluster, all within delta after translation.
	d := trace.MustNewDataset(band(4, 50))
	cfg := Config{K: 4, Delta: 200}
	res, err := Anonymize(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suppressed) != 0 {
		t.Fatalf("suppressed %v, want none", res.Suppressed)
	}
	if len(res.Clusters) != 1 || len(res.Clusters[0]) != 4 {
		t.Fatalf("clusters = %v", res.Clusters)
	}
	if res.Dataset.Len() != 4 {
		t.Fatalf("published %d traces", res.Dataset.Len())
	}
	// (k,δ) property: at every published instant, every pair is within δ.
	assertKDelta(t, res.Dataset, cfg.Delta)
}

func assertKDelta(t *testing.T, d *trace.Dataset, delta float64) {
	t.Helper()
	traces := d.Traces()
	if len(traces) < 2 {
		return
	}
	ref := traces[0]
	for _, p := range ref.Points {
		for _, other := range traces[1:] {
			q, ok := other.At(p.Time)
			if !ok {
				continue
			}
			if dist := geo.Distance(p.Point, q); dist > delta*1.01 {
				t.Fatalf("pairwise distance %v m > delta %v at %v", dist, delta, p.Time)
			}
		}
	}
}

func TestAnonymizeSuppressesOutliers(t *testing.T) {
	// 4 users close together plus 1 user 50 km away: the loner must be
	// suppressed.
	traces := band(4, 50)
	var far []trace.Point
	for i := 0; i <= 60; i++ {
		far = append(far, trace.Point{
			Point: geo.Offset(origin, float64(i)*300, 50000),
			Time:  t0.Add(time.Duration(i) * time.Minute),
		})
	}
	traces = append(traces, trace.MustNew("zoner", far))
	d := trace.MustNewDataset(traces)
	res, err := Anonymize(d, Config{K: 4, Delta: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suppressed) != 1 || res.Suppressed[0] != "zoner" {
		t.Fatalf("suppressed = %v, want [zoner]", res.Suppressed)
	}
	if res.Dataset.ByUser("zoner") != nil {
		t.Fatal("outlier must not be published")
	}
}

func TestAnonymizeInsufficientUsers(t *testing.T) {
	// Fewer than K users: everything suppressed, empty dataset.
	d := trace.MustNewDataset(band(3, 50))
	res, err := Anonymize(d, Config{K: 4, Delta: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suppressed) != 3 || res.Dataset.Len() != 0 {
		t.Fatalf("suppressed=%v published=%d", res.Suppressed, res.Dataset.Len())
	}
}

func TestAnonymizeDistortsTowardCentroid(t *testing.T) {
	// 4 users 400 m apart: the band is 1200 m wide, delta is 200 m, so
	// everyone must be pulled hard toward the centroid.
	d := trace.MustNewDataset(band(4, 400))
	cfg := Config{K: 4, Delta: 200, MaxRadius: 10000}
	res, err := Anonymize(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset.Len() != 4 {
		t.Fatalf("published %d traces: %v suppressed", res.Dataset.Len(), res.Suppressed)
	}
	assertKDelta(t, res.Dataset, cfg.Delta)
	// Outer users moved by hundreds of meters: distortion is the price
	// of (k,δ)-anonymity — the failure mode the paper criticizes.
	outer := res.Dataset.ByUser(user(0))
	orig := d.ByUser(user(0))
	var minMove float64 = math.Inf(1)
	for _, p := range outer.Points {
		q, ok := orig.At(p.Time)
		if !ok {
			continue
		}
		if dist := geo.Distance(p.Point, q); dist < minMove {
			minMove = dist
		}
	}
	if minMove < 300 {
		t.Errorf("outer user moved only %v m, expected heavy distortion", minMove)
	}
}

func TestAnonymizeMultipleClusters(t *testing.T) {
	// 4 users near origin + 4 users 20 km east: two clusters.
	a := band(4, 50)
	var b []*trace.Trace
	for u := 0; u < 4; u++ {
		var pts []trace.Point
		for i := 0; i <= 60; i++ {
			pts = append(pts, trace.Point{
				Point: geo.Offset(origin, 20000+float64(i)*300, float64(u)*50),
				Time:  t0.Add(time.Duration(i) * time.Minute),
			})
		}
		b = append(b, trace.MustNew(user(u)+"2", pts))
	}
	d := trace.MustNewDataset(append(a, b...))
	res, err := Anonymize(d, Config{K: 4, Delta: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %v, want 2", res.Clusters)
	}
	if res.Dataset.Len() != 8 {
		t.Fatalf("published %d traces, want 8", res.Dataset.Len())
	}
}

func TestAnonymizePreservesStops(t *testing.T) {
	// Wait4Me does NOT hide stops: 4 users all parked at nearby spots for
	// an hour still show stationary clusters after anonymization. This is
	// the contrast with the paper's mechanism.
	var traces []*trace.Trace
	for u := 0; u < 4; u++ {
		var pts []trace.Point
		base := geo.Offset(origin, float64(u)*30, 0)
		for i := 0; i <= 60; i++ {
			pts = append(pts, trace.Point{
				Point: geo.Offset(base, float64(i%2), 0),
				Time:  t0.Add(time.Duration(i) * time.Minute),
			})
		}
		traces = append(traces, trace.MustNew(user(u), pts))
	}
	d := trace.MustNewDataset(traces)
	res, err := Anonymize(d, Config{K: 4, Delta: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Dataset.Traces() {
		if tr.Length() > 100 {
			t.Errorf("user %s travels %v m after anonymization; stop structure destroyed", tr.User, tr.Length())
		}
	}
}

func TestAnonymizeGridTimestamps(t *testing.T) {
	d := trace.MustNewDataset(band(4, 50))
	res, err := Anonymize(d, Config{K: 4, Delta: 200, Grid: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Dataset.Traces() {
		for _, p := range tr.Points {
			if p.Time.Sub(t0)%(2*time.Minute) != 0 {
				t.Fatalf("timestamp %v not on the 2-minute grid", p.Time)
			}
		}
	}
}

func TestAnonymizeValidation(t *testing.T) {
	d := trace.MustNewDataset(band(4, 50))
	for _, cfg := range []Config{
		{K: 1, Delta: 100},
		{K: 4, Delta: 0},
		{K: 4, Delta: 100, Grid: -time.Second},
		{K: 4, Delta: 100, MaxRadius: -1},
	} {
		if _, err := Anonymize(d, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestAnonymizeShortTraceSuppressed(t *testing.T) {
	traces := band(4, 50)
	short := trace.MustNew("short", []trace.Point{
		{Point: origin, Time: t0},
		{Point: geo.Offset(origin, 10, 0), Time: t0.Add(10 * time.Second)},
	})
	traces = append(traces, short)
	d := trace.MustNewDataset(traces)
	res, err := Anonymize(d, Config{K: 4, Delta: 200})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Suppressed {
		if s == "short" {
			found = true
		}
	}
	if !found {
		t.Fatalf("sub-grid trace should be suppressed, got %v", res.Suppressed)
	}
}

func BenchmarkAnonymize(b *testing.B) {
	d := trace.MustNewDataset(band(8, 100))
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anonymize(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Package w4m reimplements the Wait4Me baseline of Abul, Bonchi & Nanni,
// "Anonymization of moving objects databases by clustering and
// perturbation" (Information Systems 2010) — the (k,δ)-anonymity
// mechanism the paper compares against (reference [3]).
//
// Guarantee: every published trajectory belongs to a cluster of at least
// k trajectories that are pairwise within δ meters of each other at
// every published instant, so at every moment a user is indistinguishable
// from at least k−1 others.
//
// The implementation follows the published algorithm's structure with
// documented simplifications (see DESIGN.md):
//
//  1. Synchronization: each trajectory is resampled on a common time
//     grid (Grid step).
//  2. Greedy clustering: repeatedly pick the unassigned pivot and its
//     k−1 nearest trajectories under the synchronized Euclidean distance
//     over their overlapping time span; trajectories with insufficient
//     overlap or distance beyond MaxRadius are outliers.
//  3. Space translation (the "perturbation"): cluster members are
//     trimmed to the cluster's common time span and every position is
//     pulled toward the cluster centroid so that all members fit in a
//     δ-diameter tube.
//  4. Suppression: trajectories in no cluster are removed entirely —
//     exactly Wait4Me's outlier removal.
package w4m

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
)

// Config parameterizes the mechanism.
type Config struct {
	// K is the anonymity set size: every published trajectory moves with
	// at least K-1 others.
	K int
	// Delta is the anonymity tube diameter in meters.
	Delta float64
	// Grid is the synchronization step; trajectories are compared and
	// published at multiples of Grid. Zero means 1 minute.
	Grid time.Duration
	// MaxRadius bounds the synchronized distance at which trajectories
	// may still be clustered together; beyond it they are considered
	// outliers rather than distorted into uselessness. Zero means
	// 25×Delta (generous, like Wait4Me's default trash threshold).
	MaxRadius float64
}

// DefaultConfig returns the operating point used across the experiments.
func DefaultConfig() Config { return Config{K: 4, Delta: 200} }

func (c Config) grid() time.Duration {
	if c.Grid > 0 {
		return c.Grid
	}
	return time.Minute
}

func (c Config) maxRadius() float64 {
	if c.MaxRadius > 0 {
		return c.MaxRadius
	}
	return 25 * c.Delta
}

func (c Config) validate() error {
	switch {
	case c.K < 2:
		return errors.New("w4m: K must be at least 2")
	case c.Delta <= 0:
		return errors.New("w4m: Delta must be positive")
	case c.Grid < 0:
		return errors.New("w4m: Grid must be non-negative")
	case c.MaxRadius < 0:
		return errors.New("w4m: MaxRadius must be non-negative")
	}
	return nil
}

// Result is the outcome of anonymizing a dataset.
type Result struct {
	// Dataset holds the published (k,δ)-anonymous trajectories.
	Dataset *trace.Dataset
	// Suppressed lists users removed as outliers (no cluster of K
	// sufficiently close trajectories).
	Suppressed []string
	// Clusters records the user groups that were published together.
	Clusters [][]string
}

// synced is a trajectory resampled on the common grid.
type synced struct {
	user  string
	start int // first grid index covered
	pos   []geo.XY
}

func (s *synced) at(gi int) (geo.XY, bool) {
	i := gi - s.start
	if i < 0 || i >= len(s.pos) {
		return geo.XY{}, false
	}
	return s.pos[i], true
}

// Anonymize applies the mechanism to the dataset.
func Anonymize(d *trace.Dataset, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("w4m: %w", err)
	}
	res := &Result{}
	if d.Len() == 0 {
		res.Dataset, _ = trace.NewDataset(nil)
		return res, nil
	}
	epoch, _, _ := d.TimeSpan()
	grid := cfg.grid()
	proj := geo.NewProjector(d.Bounds().Center())

	// 1. Synchronize.
	ss := make([]*synced, 0, d.Len())
	for _, tr := range d.Traces() {
		if s := synchronize(tr, epoch, grid, proj); s != nil {
			ss = append(ss, s)
		} else {
			res.Suppressed = append(res.Suppressed, tr.User)
		}
	}

	// 2. Greedy clustering.
	clusters, outliers := cluster(ss, cfg)
	for _, o := range outliers {
		res.Suppressed = append(res.Suppressed, o.user)
	}
	sort.Strings(res.Suppressed)

	// 3. Space translation + output assembly.
	var outTraces []*trace.Trace
	for _, cl := range clusters {
		users := make([]string, len(cl))
		for i, s := range cl {
			users[i] = s.user
		}
		sort.Strings(users)
		res.Clusters = append(res.Clusters, users)
		trs, err := translate(cl, cfg.Delta, epoch, grid, proj)
		if err != nil {
			return nil, err
		}
		outTraces = append(outTraces, trs...)
	}
	ds, err := trace.NewDataset(outTraces)
	if err != nil {
		return nil, fmt.Errorf("w4m: assemble dataset: %w", err)
	}
	res.Dataset = ds
	return res, nil
}

// synchronize resamples tr at grid multiples (relative to epoch) within
// its own span, interpolating between observations. Returns nil when the
// trace covers fewer than two grid instants.
func synchronize(tr *trace.Trace, epoch time.Time, grid time.Duration, proj *geo.Projector) *synced {
	first := int(math.Ceil(float64(tr.Start().Time.Sub(epoch)) / float64(grid)))
	last := int(math.Floor(float64(tr.End().Time.Sub(epoch)) / float64(grid)))
	if last-first+1 < 2 {
		return nil
	}
	s := &synced{user: tr.User, start: first, pos: make([]geo.XY, 0, last-first+1)}
	for gi := first; gi <= last; gi++ {
		p, ok := tr.At(epoch.Add(time.Duration(gi) * grid))
		if !ok {
			// Cannot happen: gi lies within the span; guard anyway.
			return nil
		}
		s.pos = append(s.pos, proj.ToXY(p))
	}
	return s
}

// minOverlap is the minimal number of common grid instants for two
// trajectories to be comparable.
const minOverlap = 2

// syncDist returns the mean Euclidean distance between two synchronized
// trajectories over their common grid instants, or +Inf when they share
// fewer than minOverlap instants.
func syncDist(a, b *synced) float64 {
	lo := maxInt(a.start, b.start)
	hi := minInt(a.start+len(a.pos), b.start+len(b.pos)) // exclusive
	n := hi - lo
	if n < minOverlap {
		return math.Inf(1)
	}
	var sum float64
	for gi := lo; gi < hi; gi++ {
		pa, _ := a.at(gi)
		pb, _ := b.at(gi)
		sum += pa.Dist(pb)
	}
	return sum / float64(n)
}

// cluster greedily forms groups of K trajectories. Pivot selection is
// deterministic (first unassigned in user order). A pivot whose K-1
// nearest comparable trajectories are not all within MaxRadius becomes
// an outlier.
func cluster(ss []*synced, cfg Config) (clusters [][]*synced, outliers []*synced) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].user < ss[j].user })
	unassigned := append([]*synced(nil), ss...)
	for len(unassigned) >= cfg.K {
		pivot := unassigned[0]
		rest := unassigned[1:]
		type cand struct {
			s *synced
			d float64
		}
		cands := make([]cand, 0, len(rest))
		for _, s := range rest {
			cands = append(cands, cand{s: s, d: syncDist(pivot, s)})
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
		if len(cands) < cfg.K-1 || cands[cfg.K-2].d > cfg.maxRadius() {
			outliers = append(outliers, pivot)
			unassigned = rest
			continue
		}
		group := []*synced{pivot}
		taken := make(map[*synced]bool, cfg.K)
		taken[pivot] = true
		for i := 0; i < cfg.K-1; i++ {
			group = append(group, cands[i].s)
			taken[cands[i].s] = true
		}
		clusters = append(clusters, group)
		next := unassigned[:0]
		for _, s := range unassigned {
			if !taken[s] {
				next = append(next, s)
			}
		}
		unassigned = next
	}
	outliers = append(outliers, unassigned...)
	return clusters, outliers
}

// translate trims cluster members to their common span and pulls each
// position into the δ-tube around the centroid trajectory.
func translate(cl []*synced, delta float64, epoch time.Time, grid time.Duration, proj *geo.Projector) ([]*trace.Trace, error) {
	lo := cl[0].start
	hi := cl[0].start + len(cl[0].pos)
	for _, s := range cl[1:] {
		lo = maxInt(lo, s.start)
		hi = minInt(hi, s.start+len(s.pos))
	}
	if hi-lo < minOverlap {
		// Cluster members were chosen by pairwise overlap with the pivot;
		// their common intersection can still collapse. Publish nothing
		// rather than fabricate (mirrors Wait4Me's suppression).
		return nil, nil
	}
	out := make([]*trace.Trace, 0, len(cl))
	for _, s := range cl {
		pts := make([]trace.Point, 0, hi-lo)
		for gi := lo; gi < hi; gi++ {
			p, _ := s.at(gi)
			c := centroidAt(cl, gi)
			// Pull into the tube: cap the distance to the centroid at
			// δ/2, which makes all members pairwise within δ.
			v := p.Sub(c)
			if r := v.Norm(); r > delta/2 {
				p = c.Add(v.Scale(delta / 2 / r))
			}
			pts = append(pts, trace.Point{
				Point: proj.ToPoint(p),
				Time:  epoch.Add(time.Duration(gi) * grid),
			})
		}
		tr, err := trace.New(s.user, pts)
		if err != nil {
			return nil, fmt.Errorf("w4m: publish %q: %w", s.user, err)
		}
		out = append(out, tr)
	}
	return out, nil
}

func centroidAt(cl []*synced, gi int) geo.XY {
	var sum geo.XY
	for _, s := range cl {
		p, _ := s.at(gi)
		sum = sum.Add(p)
	}
	return sum.Scale(1 / float64(len(cl)))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

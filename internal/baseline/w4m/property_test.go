package w4m

import (
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

// Property: on arbitrary synthetic workloads, every published cluster
// satisfies the (k,delta) guarantee — at every published instant, all
// members of a cluster are pairwise within delta.
func TestPropertyKDeltaGuarantee(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		cfg := synth.DefaultCommuterConfig()
		cfg.Seed = seed
		cfg.Users = 9
		cfg.Sampling = 3 * time.Minute
		g, err := synth.Commuters(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wcfg := Config{K: 3, Delta: 500, MaxRadius: 1e9} // force clustering
		res, err := Anonymize(g.Dataset, wcfg)
		if err != nil {
			t.Fatal(err)
		}
		for ci, users := range res.Clusters {
			for i, u := range users {
				tu := res.Dataset.ByUser(u)
				if tu == nil {
					continue // cluster collapsed at translation time
				}
				for _, v := range users[i+1:] {
					tv := res.Dataset.ByUser(v)
					if tv == nil {
						continue
					}
					for _, p := range tu.Points {
						q, ok := tv.At(p.Time)
						if !ok {
							continue
						}
						if d := geo.Distance(p.Point, q); d > wcfg.Delta*1.01 {
							t.Fatalf("seed %d cluster %d: %s-%s at %v are %.1f m apart (> delta %.0f)",
								seed, ci, u, v, p.Time, d, wcfg.Delta)
						}
					}
				}
			}
		}
		// Every published user is in a cluster of size >= K.
		for _, users := range res.Clusters {
			if len(users) < wcfg.K {
				t.Fatalf("seed %d: cluster %v smaller than K", seed, users)
			}
		}
	}
}

// Property: suppressed + published users == input users.
func TestPropertyUserConservation(t *testing.T) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 7
	cfg.Sampling = 3 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Anonymize(g.Dataset, Config{K: 3, Delta: 300})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Dataset.Len() + len(res.Suppressed); got != g.Dataset.Len() {
		// Published users can be fewer when a whole cluster collapses at
		// translation; those users are neither suppressed nor published.
		// The guarantee we hold is: no user is both.
		for _, s := range res.Suppressed {
			if res.Dataset.ByUser(s) != nil {
				t.Fatalf("user %q both suppressed and published", s)
			}
		}
	}
}

func TestAnonymizeEmptyDataset(t *testing.T) {
	empty, err := trace.NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Anonymize(empty, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset.Len() != 0 || len(res.Suppressed) != 0 {
		t.Fatal("empty in, empty out")
	}
}

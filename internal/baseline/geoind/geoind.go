// Package geoind implements the planar Laplace mechanism of Andrés et
// al., "Geo-indistinguishability: Differential Privacy for
// Location-based Systems" (CCS'13) — the location-perturbation baseline
// the paper compares against (reference [2]).
//
// Every observation is displaced independently by polar Laplace noise:
// the angle is uniform and the radius follows the distribution with CDF
// C_ε(r) = 1 − (1 + εr)·e^{−εr}, sampled by inverting the CDF with the
// Lambert W function (branch −1), exactly as in the original paper. The
// mechanism satisfies ε-geo-indistinguishability; its expected
// displacement is 2/ε meters.
package geoind

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"mobipriv/internal/geo"
	"mobipriv/internal/par"
	"mobipriv/internal/rng"
	"mobipriv/internal/trace"
)

// Config parameterizes the mechanism.
type Config struct {
	// Epsilon is the privacy parameter in 1/meters. Typical evaluation
	// range: 0.001 (strong privacy, ~2 km expected noise) to 0.1 (weak,
	// ~20 m).
	Epsilon float64
	// Seed makes the noise reproducible.
	Seed int64
}

// DefaultConfig returns the mid-range operating point used in the
// experiments (expected displacement 2/0.01 = 200 m).
func DefaultConfig() Config { return Config{Epsilon: 0.01, Seed: 1} }

func (c Config) validate() error {
	if c.Epsilon <= 0 || math.IsNaN(c.Epsilon) || math.IsInf(c.Epsilon, 0) {
		return errors.New("geoind: Epsilon must be a positive finite number")
	}
	return nil
}

// Mechanism perturbs traces with planar Laplace noise. Create it with
// New; it is not safe for concurrent use (it owns a rand.Rand).
type Mechanism struct {
	cfg Config
	rng *rand.Rand
}

// New returns a mechanism with the given configuration.
func New(cfg Config) (*Mechanism, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Mechanism{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// NewForUser returns a mechanism whose noise stream is derived from
// (cfg.Seed, user) exactly as PerturbDatasetCtx derives per-trace RNGs,
// so feeding a user's observations through PerturbPoint one at a time
// (in order) reproduces the batch output byte for byte. This is the
// constructor the streaming adapter uses.
func NewForUser(cfg Config, user string) (*Mechanism, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Mechanism{cfg: cfg, rng: rand.New(rand.NewSource(traceSeed(cfg.Seed, user)))}, nil
}

// PerturbPoint displaces one observation by planar Laplace noise,
// advancing the mechanism's noise stream by one draw. The timestamp is
// unchanged.
func (m *Mechanism) PerturbPoint(p trace.Point) trace.Point {
	dx, dy := m.SampleNoise()
	return trace.Point{Point: geo.Offset(p.Point, dx, dy), Time: p.Time}
}

// SampleNoise draws one polar Laplace displacement (dx, dy) in meters.
func (m *Mechanism) SampleNoise() (dx, dy float64) {
	theta := m.rng.Float64() * 2 * math.Pi
	p := m.rng.Float64()
	r := inverseCDF(m.cfg.Epsilon, p)
	return r * math.Cos(theta), r * math.Sin(theta)
}

// inverseCDF returns C_ε^{-1}(p): the radius below which a fraction p of
// the noise mass lies. Following Andrés et al.:
//
//	r = −(1/ε)·(W_{−1}((p−1)/e) + 1)
func inverseCDF(epsilon, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		p = math.Nextafter(1, 0)
	}
	w := lambertWm1((p - 1) / math.E)
	return -(w + 1) / epsilon
}

// lambertWm1 evaluates the secondary real branch W_{−1} of the Lambert W
// function on its domain [−1/e, 0). It solves w·e^w = x with w ≤ −1 by
// Halley iteration from the standard asymptotic initial guess.
func lambertWm1(x float64) float64 {
	if x < -1/math.E || x >= 0 {
		return math.NaN()
	}
	if x == -1/math.E {
		return -1
	}
	// Initial guess: for x → 0⁻, W_{−1}(x) ≈ ln(−x) − ln(−ln(−x));
	// near the branch point, a square-root expansion is better.
	var w float64
	if x > -0.25 {
		l1 := math.Log(-x)
		l2 := math.Log(-l1)
		w = l1 - l2 + l2/l1
	} else {
		// Series around the branch point −1/e.
		p := -math.Sqrt(2 * (1 + math.E*x))
		w = -1 + p - p*p/3
	}
	for i := 0; i < 64; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		if f == 0 {
			break
		}
		// Halley step.
		d := ew*(w+1) - f*(w+2)/(2*(w+1))
		next := w - f/d
		if math.Abs(next-w) < 1e-13*(1+math.Abs(next)) {
			w = next
			break
		}
		w = next
	}
	return w
}

// Perturb returns an anonymized copy of the trace: every position is
// independently displaced by planar Laplace noise; timestamps and the
// user identifier are unchanged.
func (m *Mechanism) Perturb(tr *trace.Trace) (*trace.Trace, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("geoind: %w", err)
	}
	pts := make([]trace.Point, tr.Len())
	for i, p := range tr.Points {
		pts[i] = m.PerturbPoint(p)
	}
	out, err := trace.New(tr.User, pts)
	if err != nil {
		return nil, fmt.Errorf("geoind: build perturbed trace: %w", err)
	}
	return out, nil
}

// PerturbDataset applies Perturb to every trace. Each trace is
// perturbed with an independent RNG derived from (cfg.Seed, user), so
// the output for a given seed does not depend on trace order or on the
// worker count of PerturbDatasetCtx.
func PerturbDataset(d *trace.Dataset, cfg Config) (*trace.Dataset, error) {
	return PerturbDatasetCtx(context.Background(), d, cfg)
}

// PerturbDatasetCtx is PerturbDataset honoring context cancellation and
// fanning the per-trace perturbation across the context's worker budget
// (par.Workers). Per-trace seed derivation keeps the output identical
// to the serial run.
func PerturbDatasetCtx(ctx context.Context, d *trace.Dataset, cfg Config) (*trace.Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	traces := d.Traces()
	out := make([]*trace.Trace, len(traces))
	err := par.Map(ctx, len(traces), func(i int) error {
		m, err := NewForUser(cfg, traces[i].User)
		if err != nil {
			return err
		}
		p, err := m.Perturb(traces[i])
		if err != nil {
			return err
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	ds, err := trace.NewDataset(out)
	if err != nil {
		return nil, fmt.Errorf("geoind: assemble dataset: %w", err)
	}
	return ds, nil
}

// traceSeed derives an independent RNG seed for one trace from the
// dataset seed and the user label, splitmix64-style, so every trace
// gets a decorrelated noise stream.
func traceSeed(seed int64, user string) int64 {
	h := fnv.New64a()
	h.Write([]byte(user))
	return int64(rng.Mix(uint64(seed)*rng.Gamma ^ h.Sum64()))
}

// ExpectedDisplacement returns the mean displacement 2/ε in meters for
// the given privacy parameter — useful for presenting sweep results.
func ExpectedDisplacement(epsilon float64) float64 { return 2 / epsilon }

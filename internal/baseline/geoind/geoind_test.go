package geoind

import (
	"math"
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/stats"
	"mobipriv/internal/trace"
)

var (
	t0     = time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	origin = geo.Point{Lat: 45.7640, Lng: 4.8357}
)

func TestLambertWm1KnownValues(t *testing.T) {
	// Reference values computed to 15 digits with mpmath's lambertw
	// (branch -1); each satisfies w·e^w = x, checked again below.
	tests := []struct{ x, want float64 }{
		{-1 / math.E, -1},
		{-0.1, -3.577152063957297},
		{-0.2, -2.542641357773526},
		{-0.35, -1.349717252192249},
		{-0.01, -6.472775124394005},
		{-1e-6, -16.626508901372475},
	}
	for _, tt := range tests {
		got := lambertWm1(tt.x)
		if math.Abs(got-tt.want) > 1e-9*math.Abs(tt.want) {
			t.Errorf("W_{-1}(%v) = %.15f, want %.15f", tt.x, got, tt.want)
		}
	}
}

func TestLambertWm1Inverse(t *testing.T) {
	// w·e^w must recover x across the domain.
	for _, x := range []float64{-0.3678, -0.3, -0.2, -0.1, -0.01, -1e-4, -1e-8} {
		w := lambertWm1(x)
		if w > -1 {
			t.Errorf("W_{-1}(%v) = %v > -1 (wrong branch)", x, w)
		}
		if back := w * math.Exp(w); math.Abs(back-x) > 1e-12+1e-9*math.Abs(x) {
			t.Errorf("W_{-1}(%v): w·e^w = %v", x, back)
		}
	}
}

func TestLambertWm1OutOfDomain(t *testing.T) {
	for _, x := range []float64{0, 0.5, -0.5, -1} {
		if got := lambertWm1(x); !math.IsNaN(got) {
			t.Errorf("W_{-1}(%v) = %v, want NaN", x, got)
		}
	}
}

func TestInverseCDFMonotoneAndMedian(t *testing.T) {
	const eps = 0.01
	prev := -1.0
	for p := 0.05; p < 1; p += 0.05 {
		r := inverseCDF(eps, p)
		if r <= prev {
			t.Fatalf("inverseCDF not increasing at p=%v", p)
		}
		// Verify against the forward CDF: C(r) = 1 - (1+εr)e^{-εr}.
		c := 1 - (1+eps*r)*math.Exp(-eps*r)
		if math.Abs(c-p) > 1e-9 {
			t.Errorf("C(C^{-1}(%v)) = %v", p, c)
		}
		prev = r
	}
	if got := inverseCDF(eps, 0); got != 0 {
		t.Errorf("inverseCDF(0) = %v", got)
	}
}

func TestSampleNoiseMeanDisplacement(t *testing.T) {
	// E[r] = 2/ε. With ε=0.01 → 200 m. 20k samples give a tight mean.
	m, err := New(Config{Epsilon: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	radii := make([]float64, n)
	for i := range radii {
		dx, dy := m.SampleNoise()
		radii[i] = math.Hypot(dx, dy)
	}
	mean := stats.Mean(radii)
	if math.Abs(mean-200) > 6 { // ~3 sigma of the sample mean
		t.Errorf("mean displacement = %v, want ~200", mean)
	}
	// Median: C(r)=0.5 → r ≈ 167.84/ε·0.01... solve numerically: for
	// ε=0.01, median ≈ 167.835 m.
	med := stats.Median(radii)
	if math.Abs(med-167.8) > 6 {
		t.Errorf("median displacement = %v, want ~167.8", med)
	}
}

func TestSampleNoiseIsotropic(t *testing.T) {
	m, err := New(Config{Epsilon: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sumX, sumY float64
	const n = 20000
	for i := 0; i < n; i++ {
		dx, dy := m.SampleNoise()
		sumX += dx
		sumY += dy
	}
	// Mean vector should be near zero relative to E[r]=200.
	if math.Abs(sumX/n) > 8 || math.Abs(sumY/n) > 8 {
		t.Errorf("noise not centred: mean=(%v, %v)", sumX/n, sumY/n)
	}
}

func TestPerturbPreservesTimesAndUser(t *testing.T) {
	pts := []trace.Point{
		{Point: origin, Time: t0},
		{Point: geo.Offset(origin, 100, 0), Time: t0.Add(time.Minute)},
		{Point: geo.Offset(origin, 200, 0), Time: t0.Add(2 * time.Minute)},
	}
	tr := trace.MustNew("u", pts)
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Perturb(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.User != "u" || out.Len() != 3 {
		t.Fatalf("out = %v", out)
	}
	for i := range pts {
		if !out.Points[i].Time.Equal(pts[i].Time) {
			t.Error("timestamps must be unchanged")
		}
	}
	// Positions must actually move (w.h.p.).
	moved := 0.0
	for i := range pts {
		moved += geo.Distance(out.Points[i].Point, pts[i].Point)
	}
	if moved == 0 {
		t.Error("no displacement at all")
	}
}

func TestPerturbDeterministicPerSeed(t *testing.T) {
	tr := trace.MustNew("u", []trace.Point{
		{Point: origin, Time: t0},
		{Point: geo.Offset(origin, 50, 0), Time: t0.Add(time.Minute)},
	})
	d := trace.MustNewDataset([]*trace.Trace{tr})
	a, err := PerturbDataset(d, Config{Epsilon: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PerturbDataset(d, Config{Epsilon: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Traces()[0].Points {
		if !a.Traces()[0].Points[i].Point.Equal(b.Traces()[0].Points[i].Point) {
			t.Fatal("same seed must give identical noise")
		}
	}
	c, err := PerturbDataset(d, Config{Epsilon: 0.01, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Traces()[0].Points[0].Point.Equal(c.Traces()[0].Points[0].Point) {
		t.Fatal("different seeds should differ")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := New(Config{Epsilon: eps}); err == nil {
			t.Errorf("Epsilon=%v accepted", eps)
		}
	}
}

func TestExpectedDisplacement(t *testing.T) {
	if got := ExpectedDisplacement(0.01); got != 200 {
		t.Errorf("ExpectedDisplacement = %v", got)
	}
}

func TestEpsilonScaling(t *testing.T) {
	// Doubling epsilon halves the expected displacement.
	sample := func(eps float64) float64 {
		m, err := New(Config{Epsilon: eps, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const n = 5000
		for i := 0; i < n; i++ {
			dx, dy := m.SampleNoise()
			sum += math.Hypot(dx, dy)
		}
		return sum / n
	}
	m1 := sample(0.01)
	m2 := sample(0.02)
	if ratio := m1 / m2; math.Abs(ratio-2) > 0.15 {
		t.Errorf("displacement ratio = %v, want ~2", ratio)
	}
}

func BenchmarkPerturbPoint(b *testing.B) {
	m, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = m.SampleNoise()
	}
}

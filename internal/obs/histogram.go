package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucketing reuses the DistortionAcc geometry from
// internal/metrics: observations are quantized to integer nanoseconds
// and binned logarithmically with histSubBins sub-bins per power of
// two (~4.5% relative resolution) in a fixed 1025-slot array covering
// the full uint64 range. All state is atomic integers, so Observe and
// Merge commute exactly.
const (
	histSubBits = 4
	histSubBins = 1 << histSubBits   // 16 sub-bins per power of two
	histBins    = 1 + 64*histSubBins // bin 0 reserved for zero
)

// Histogram is a mergeable, race-safe latency histogram over
// log-spaced nanosecond buckets. Observations are float64 seconds
// (the Prometheus convention); they are quantized to nanoseconds
// internally so the state stays integral and merge-order-invariant.
// Obtain instances from NewHistogram or Registry.Histogram.
type Histogram struct {
	count atomic.Uint64
	sumNs atomic.Uint64
	bins  [histBins]atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Observe records a single observation of v seconds. Negative and NaN
// values are clamped to zero.
func (h *Histogram) Observe(v float64) {
	ns := v * 1e9
	var u uint64
	if ns >= 1 && !math.IsNaN(ns) {
		if ns >= math.MaxUint64 {
			u = math.MaxUint64
		} else {
			u = uint64(ns)
		}
	}
	h.observeNs(u)
}

// ObserveDuration records a single duration observation.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.observeNs(uint64(d))
}

func (h *Histogram) observeNs(ns uint64) {
	h.count.Add(1)
	h.sumNs.Add(ns)
	h.bins[histBin(ns)].Add(1)
}

// Merge folds o into h. Observe and Merge commute: any partition of
// the observations over any number of histograms, merged in any order,
// yields identical state.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	h.count.Add(o.count.Load())
	h.sumNs.Add(o.sumNs.Load())
	for i := range o.bins {
		if n := o.bins[i].Load(); n != 0 {
			h.bins[i].Add(n)
		}
	}
}

// Snapshot returns a full-fidelity snapshot of h under the given series
// name and label signature: the quantile summary JSON views print plus
// the exact mergeable state (integer nanosecond sum, sparse populated
// bins) that MergeSnapshot can fold back into a histogram losslessly.
func (h *Histogram) Snapshot(name, labels string) HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   name,
		Labels: labels,
		Count:  h.count.Load(),
		SumNs:  h.sumNs.Load(),
		Sum:    h.Sum(),
		P50:    h.Quantile(0.50),
		P95:    h.Quantile(0.95),
		P99:    h.Quantile(0.99),
	}
	for i := range h.bins {
		if n := h.bins[i].Load(); n != 0 {
			s.Bins = append(s.Bins, HistogramBin{Bin: i, Count: n})
		}
	}
	return s
}

// MergeSnapshot folds a snapshot's exact state (Count, SumNs, Bins)
// into h. Like Merge it commutes with Observe and with itself: merging
// per-worker snapshots in any order yields the same histogram a single
// process would have produced from the same observations — the property
// the router's fleet-wide /stats aggregation depends on. Bins outside
// the histogram geometry (a corrupt or foreign snapshot) are dropped.
func (h *Histogram) MergeSnapshot(s HistogramSnapshot) {
	if s.Count == 0 {
		return
	}
	h.count.Add(s.Count)
	h.sumNs.Add(s.SumNs)
	for _, b := range s.Bins {
		if b.Bin >= 0 && b.Bin < histBins && b.Count != 0 {
			h.bins[b.Bin].Add(b.Count)
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) in seconds, resolved to
// the lower edge of the containing bucket (~4.5% relative resolution,
// same contract as the metrics accumulators). Returns 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n-1))
	var cum uint64
	for i := 0; i < histBins; i++ {
		cum += h.bins[i].Load()
		if cum > rank {
			return histBinEdge(i)
		}
	}
	return histBinEdge(histBins - 1)
}

// histBin maps a nanosecond value to its histogram bin; mirrors
// distBin in internal/metrics.
func histBin(ns uint64) int {
	if ns == 0 {
		return 0
	}
	l := bits.Len64(ns)
	var sub uint64
	if l > histSubBits+1 {
		sub = (ns >> uint(l-1-histSubBits)) & (histSubBins - 1)
	} else {
		sub = (ns << uint(histSubBits+1-l)) & (histSubBins - 1)
	}
	return 1 + (l-1)*histSubBins + int(sub)
}

// histBinEdge returns the lower edge of a bin, in seconds; mirrors
// distBinEdge in internal/metrics.
func histBinEdge(bin int) float64 {
	if bin == 0 {
		return 0
	}
	l := (bin - 1) / histSubBins
	sub := (bin - 1) % histSubBins
	return math.Ldexp(1+float64(sub)/histSubBins, l) * 1e-9
}

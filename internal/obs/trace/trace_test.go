package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDeriveIDDeterministic pins that ID derivation is a pure function
// and that distinct parts produce distinct IDs.
func TestDeriveIDDeterministic(t *testing.T) {
	a := DeriveID(42, 1, 2, 3)
	b := DeriveID(42, 1, 2, 3)
	if a != b {
		t.Fatalf("DeriveID not deterministic: %v vs %v", a, b)
	}
	if a.IsZero() {
		t.Fatalf("DeriveID returned zero ID")
	}
	seen := map[TraceID]bool{}
	for seed := uint64(0); seed < 4; seed++ {
		for p := uint64(0); p < 64; p++ {
			id := DeriveID(seed, p)
			if seen[id] {
				t.Fatalf("collision at seed=%d part=%d: %v", seed, p, id)
			}
			seen[id] = true
		}
	}
}

// TestSamplingKnownAnswers pins the exact sampling decisions for a
// fixed seed: if the mixing or salt derivation changes, replayed
// mobiload traffic would sample a different request subset, breaking
// the determinism contract. The expected values were computed from the
// current splitmix64 derivation — they are a regression pin, not a
// spec.
func TestSamplingKnownAnswers(t *testing.T) {
	tr := New(Config{SampleRate: 0.25, Seed: 7})
	got := ""
	for i := uint64(0); i < 32; i++ {
		if tr.Sampled(DeriveID(7, i)) {
			got += "1"
		} else {
			got += "0"
		}
	}
	// Recompute once and pin. Density should be near 0.25.
	const want = "00000000111000100010010010110100"
	if got != want {
		t.Fatalf("sampling pattern changed:\n got %s\nwant %s", got, want)
	}

	// Rate bounds.
	always := New(Config{SampleRate: 1, Seed: 7})
	never := New(Config{SampleRate: 0, Seed: 7})
	for i := uint64(0); i < 16; i++ {
		id := DeriveID(7, i)
		if !always.Sampled(id) {
			t.Fatalf("rate 1 must sample everything")
		}
		if never.Sampled(id) {
			t.Fatalf("rate 0 must sample nothing")
		}
	}
	var nilT *Tracer
	if nilT.Sampled(DeriveID(7, 0)) || nilT.Root("x", TraceID{}, 0) != nil {
		t.Fatalf("nil tracer must not sample")
	}
}

// TestSpanIDsDeterministic pins that a replayed trace produces
// byte-identical span IDs: same trace ID, same creation order -> same
// IDs, independent of wall-clock.
func TestSpanIDsDeterministic(t *testing.T) {
	run := func() []string {
		tr := New(Config{SampleRate: 1, Seed: 3})
		id := DeriveID(3, 11)
		root := tr.Root("ingest", id, 0)
		var ids []string
		ids = append(ids, root.SpanID().String())
		for i := 0; i < 3; i++ {
			c := root.Child("engine.batch")
			ids = append(ids, c.SpanID().String())
			c.Record("engine.process", time.Now(), time.Millisecond)
			c.End()
		}
		root.End()
		rs := tr.Recent(1)[0]
		for _, sp := range rs.Spans {
			ids = append(ids, sp.ID.String())
		}
		return ids
	}
	a, b := run(), run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("span IDs differ across identical replays:\n%v\n%v", a, b)
	}
}

// TestRootPublication covers the refcount contract: a root with a
// child still open publishes only after the child ends, and the
// published trace contains both spans sorted by start.
func TestRootPublication(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 1})
	root := tr.Root("req", TraceID{}, 0)
	child := root.Child("work")
	root.End()
	if tr.Published() != 0 {
		t.Fatalf("root published before child ended")
	}
	child.End()
	if tr.Published() != 1 {
		t.Fatalf("root not published after last child ended")
	}
	rs := tr.Recent(1)[0]
	if rs.Name != "req" || len(rs.Spans) != 1 || rs.Spans[0].Kind != "work" {
		t.Fatalf("unexpected published trace: %+v", rs)
	}
	if rs.Spans[0].Parent != rs.Root.ID {
		t.Fatalf("child not parented to root")
	}

	// Hold/Release defers publication the same way.
	r2 := tr.Root("req2", TraceID{}, 0).Hold()
	r2.End()
	if tr.Published() != 1 {
		t.Fatalf("held root published early")
	}
	r2.Release()
	if tr.Published() != 2 {
		t.Fatalf("held root not published after release")
	}
}

// TestRingWraparound fills the flight recorder past capacity and
// checks Recent returns the newest roots, newest first.
func TestRingWraparound(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 5, RingSize: 8})
	for i := 0; i < 20; i++ {
		sp := tr.Root("r", TraceID{}, 0)
		sp.SetAttr(Int("i", int64(i)))
		sp.End()
	}
	recent := tr.Recent(0)
	if len(recent) != 8 {
		t.Fatalf("ring holds %d roots, want 8", len(recent))
	}
	for k, rs := range recent {
		want := itoa(int64(19 - k))
		if len(rs.Root.Attrs) != 1 || rs.Root.Attrs[0].Value != want {
			t.Fatalf("slot %d: got attr %v, want i=%s", k, rs.Root.Attrs, want)
		}
	}
	if got := tr.Recent(3); len(got) != 3 {
		t.Fatalf("Recent(3) returned %d", len(got))
	}
}

// TestRingConcurrent hammers the recorder from many goroutines; run
// under -race this is the lock-freedom proof. Each goroutine also
// builds child spans concurrently against its own root.
func TestRingConcurrent(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 9, RingSize: 16})
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				root := tr.Root("req", tr.DeriveID(uint64(w), uint64(i)), 0)
				c := root.Child("work")
				c.Record("sub", time.Now(), time.Microsecond)
				root.End() // root ends before child: publication must wait
				c.End()
				_ = tr.Recent(4) // concurrent reads
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Published(); got != writers*perWriter {
		t.Fatalf("published %d, want %d", got, writers*perWriter)
	}
	for _, rs := range tr.Recent(0) {
		if len(rs.Spans) != 2 {
			t.Fatalf("trace has %d spans, want 2 (child + recorded sub)", len(rs.Spans))
		}
	}
}

// TestExemplars pins that the slowest root per power-of-two bucket is
// retained even after the ring wraps past it.
func TestExemplars(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 2, RingSize: 4})
	base := time.Unix(1000, 0)
	durations := []time.Duration{
		100 * time.Microsecond, 130 * time.Microsecond, // same bucket: keep 130
		3 * time.Millisecond,
		70 * time.Millisecond,
	}
	for i, d := range durations {
		sp := tr.RootAt("req", tr.DeriveID(uint64(i)), 0, base)
		sp.SetAttr(Int("i", int64(i)))
		sp.EndAt(base.Add(d))
	}
	// Wrap the ring with fast requests; exemplars must survive.
	for i := 0; i < 10; i++ {
		sp := tr.RootAt("req", tr.DeriveID(uint64(100+i)), 0, base)
		sp.EndAt(base.Add(time.Microsecond))
	}
	ex := tr.Exemplars()
	var got []time.Duration
	for _, e := range ex {
		d := e.Root.Root.Duration
		if d < BucketFloor(e.Bucket) || (e.Bucket < 64 && d >= 2*BucketFloor(e.Bucket)) {
			t.Fatalf("exemplar duration %v outside bucket %d [%v, %v)",
				d, e.Bucket, BucketFloor(e.Bucket), 2*BucketFloor(e.Bucket))
		}
		got = append(got, d)
	}
	want := []time.Duration{time.Microsecond, 130 * time.Microsecond, 3 * time.Millisecond, 70 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("got %d exemplars %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("exemplar %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestTraceparentRoundTrip is the property test: format ∘ parse is the
// identity over random valid (id, span, flags) triples, and parse
// rejects a catalogue of malformed headers.
func TestTraceparentRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	for i := 0; i < 2000; i++ {
		id := TraceID{Hi: rnd.Uint64(), Lo: rnd.Uint64()}
		if id.IsZero() {
			id.Lo = 1
		}
		span := SpanID(rnd.Uint64())
		if span == 0 {
			span = 1
		}
		sampled := rnd.Intn(2) == 0
		s := FormatTraceparent(id, span, sampled)
		if len(s) != 55 {
			t.Fatalf("formatted length %d: %q", len(s), s)
		}
		gid, gspan, gsampled, ok := ParseTraceparent(s)
		if !ok || gid != id || gspan != span || gsampled != sampled {
			t.Fatalf("round trip failed for %q: got %v %v %v ok=%v", s, gid, gspan, gsampled, ok)
		}
	}
	bad := []string{
		"",
		"00",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // version ff
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",  // bad flags
		"0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad version
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // ver 00 trailing junk
	}
	for _, s := range bad {
		if _, _, _, ok := ParseTraceparent(s); ok {
			t.Fatalf("accepted malformed traceparent %q", s)
		}
	}
	// A future version may carry extra dash-separated fields.
	future := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extrastate"
	if _, _, _, ok := ParseTraceparent(future); !ok {
		t.Fatalf("rejected future-version traceparent %q", future)
	}
}

// TestSnapshotGoldenJSON builds a fully deterministic trace history
// (explicit clocks, derived IDs) and pins the /debug/traces JSON.
func TestSnapshotGoldenJSON(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 4, RingSize: 4})
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

	root := tr.RootAt("POST /ingest", DeriveID(4, 1), 0, base)
	root.SetAttr(Int("points", 512))
	b := root.ChildAt("engine.batch", base.Add(1*time.Millisecond))
	b.Record("engine.queue_wait", base.Add(1*time.Millisecond), 2*time.Millisecond)
	b.Record("engine.process", base.Add(3*time.Millisecond), 5*time.Millisecond, Int("points", 512))
	b.EndAt(base.Add(8 * time.Millisecond))
	root.EndAt(base.Add(9 * time.Millisecond))

	var buf bytes.Buffer
	if err := tr.Snapshot(10).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `{
  "sample_rate": 1,
  "published": 1,
  "recent": [
    {
      "trace_id": "de298bd98ed48c27ceac458c38313160",
      "name": "POST /ingest",
      "start": "2026-01-02T03:04:05Z",
      "duration_us": 9000,
      "root": {
        "span_id": "73578bb650385ac3",
        "kind": "POST /ingest",
        "start": "2026-01-02T03:04:05Z",
        "duration_us": 9000,
        "attrs": [
          {
            "key": "points",
            "value": "512"
          }
        ]
      },
      "spans": [
        {
          "span_id": "53108cad70e227c9",
          "parent_id": "73578bb650385ac3",
          "kind": "engine.batch",
          "start": "2026-01-02T03:04:05.001Z",
          "duration_us": 7000
        },
        {
          "span_id": "62583d1d87f5b1c1",
          "parent_id": "53108cad70e227c9",
          "kind": "engine.queue_wait",
          "start": "2026-01-02T03:04:05.001Z",
          "duration_us": 2000
        },
        {
          "span_id": "a31792859519b175",
          "parent_id": "53108cad70e227c9",
          "kind": "engine.process",
          "start": "2026-01-02T03:04:05.003Z",
          "duration_us": 5000,
          "attrs": [
            {
              "key": "points",
              "value": "512"
            }
          ]
        }
      ]
    }
  ],
  "exemplars": [
    {
      "bucket": 24,
      "bucket_floor_us": 8388,
      "root": {
        "trace_id": "de298bd98ed48c27ceac458c38313160",
        "name": "POST /ingest",
        "start": "2026-01-02T03:04:05Z",
        "duration_us": 9000,
        "root": {
          "span_id": "73578bb650385ac3",
          "kind": "POST /ingest",
          "start": "2026-01-02T03:04:05Z",
          "duration_us": 9000,
          "attrs": [
            {
              "key": "points",
              "value": "512"
            }
          ]
        },
        "spans": [
          {
            "span_id": "53108cad70e227c9",
            "parent_id": "73578bb650385ac3",
            "kind": "engine.batch",
            "start": "2026-01-02T03:04:05.001Z",
            "duration_us": 7000
          },
          {
            "span_id": "62583d1d87f5b1c1",
            "parent_id": "53108cad70e227c9",
            "kind": "engine.queue_wait",
            "start": "2026-01-02T03:04:05.001Z",
            "duration_us": 2000
          },
          {
            "span_id": "a31792859519b175",
            "parent_id": "53108cad70e227c9",
            "kind": "engine.process",
            "start": "2026-01-02T03:04:05.003Z",
            "duration_us": 5000,
            "attrs": [
              {
                "key": "points",
                "value": "512"
              }
            ]
          }
        ]
      }
    }
  ],
  "kinds": [
    {
      "kind": "POST /ingest",
      "count": 1,
      "total_us": 9000,
      "mean_us": 9000,
      "max_us": 9000
    },
    {
      "kind": "engine.batch",
      "count": 1,
      "total_us": 7000,
      "mean_us": 7000,
      "max_us": 7000
    },
    {
      "kind": "engine.process",
      "count": 1,
      "total_us": 5000,
      "mean_us": 5000,
      "max_us": 5000
    },
    {
      "kind": "engine.queue_wait",
      "count": 1,
      "total_us": 2000,
      "mean_us": 2000,
      "max_us": 2000
    }
  ]
}
`
	if got != want {
		t.Fatalf("snapshot JSON drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The text form must at least render without error and mention the
	// span kinds.
	var txt bytes.Buffer
	if err := tr.Snapshot(10).WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"POST /ingest", "engine.queue_wait", "span kinds:"} {
		if !strings.Contains(txt.String(), needle) {
			t.Fatalf("text snapshot missing %q:\n%s", needle, txt.String())
		}
	}
}

// TestSlowFunc pins the -trace-slow hook: only roots at or above the
// threshold fire it.
func TestSlowFunc(t *testing.T) {
	var slow []*RootSpan
	tr := New(Config{
		SampleRate:    1,
		Seed:          6,
		SlowThreshold: 10 * time.Millisecond,
		SlowFunc:      func(rs *RootSpan) { slow = append(slow, rs) },
	})
	base := time.Unix(0, 0)
	tr.RootAt("fast", DeriveID(6, 1), 0, base).EndAt(base.Add(time.Millisecond))
	tr.RootAt("slow", DeriveID(6, 2), 0, base).EndAt(base.Add(25 * time.Millisecond))
	if len(slow) != 1 || slow[0].Name != "slow" {
		t.Fatalf("slow hook fired %d times (%v), want once for 'slow'", len(slow), slow)
	}
}

// TestNilSpanSafety: the unsampled path carries nil spans through all
// layers; every method must tolerate it.
func TestNilSpanSafety(t *testing.T) {
	var s *Span
	s.SetAttr(A("k", "v"))
	s.Record("x", time.Now(), time.Second)
	c := s.Child("y")
	if c != nil {
		t.Fatalf("nil span Child returned non-nil")
	}
	s.Hold().Release()
	s.End()
	if !s.TraceID().IsZero() || s.SpanID() != 0 {
		t.Fatalf("nil span leaked identity")
	}
}

// TestContextPlumbing round-trips a span through a context.
func TestContextPlumbing(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 8})
	sp := tr.Root("r", TraceID{}, 0)
	ctx := NewContext(t.Context(), sp)
	if FromContext(ctx) != sp {
		t.Fatalf("span lost in context")
	}
	if FromContext(t.Context()) != nil {
		t.Fatalf("empty context returned a span")
	}
	sp.End()
}

// TestExemplarBucketEdges sanity-checks the bucket function against
// its floor inverse.
func TestExemplarBucketEdges(t *testing.T) {
	for _, d := range []time.Duration{0, 1, 2, 3, 1024, time.Millisecond, time.Second, time.Hour} {
		b := exemplarBucket(d)
		if d > 0 && (d < BucketFloor(b) || (b < 64 && d >= 2*BucketFloor(b))) {
			t.Fatalf("duration %v mapped to bucket %d (floor %v)", d, b, BucketFloor(b))
		}
	}
	if exemplarBucket(0) != 0 || BucketFloor(0) != 0 {
		t.Fatalf("zero duration must map to bucket 0")
	}
}

func ExampleFormatTraceparent() {
	id := DeriveID(1, 2)
	fmt.Println(FormatTraceparent(id, DeriveSpanID(id, 0, "client", 0), true))
	// Output: 00-844af5e71708cc94db19b71a8dd87115-deb3542ac257950c-01
}

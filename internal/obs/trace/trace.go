// Package trace is the request-tracing layer of the observability
// substrate: dependency-free spans in the spirit of internal/obs,
// importable from every hot layer without pulling in an external
// tracing stack.
//
// Identity and sampling are deterministic by construction. TraceID and
// SpanID values derive from the splitmix64 finalizer (internal/rng) —
// the same mixing primitive the per-(seed, user) mechanism RNGs use —
// and the head-sampling decision is a pure function of the trace ID
// and the tracer's seed: Mix(id.Lo ^ salt) < threshold. A client that
// derives its trace IDs from a seed (cmd/mobiload does, propagating
// them as W3C traceparent headers) therefore samples the identical
// subset of requests on every replay, and every span ID inside a
// sampled trace is derived from (trace, parent, kind, sequence), so a
// deterministic replay produces byte-identical span IDs.
//
// Cost follows the registry's pay-only-when-registered contract: an
// unsampled request performs one splitmix64 mix and one compare, then
// carries a nil *Span through the layers — every Span method is
// nil-safe and returns immediately. Sampled spans buffer their
// completed children on the root and publish once the root has ended
// AND every child handle has been released (Span.Hold/Release let a
// shard goroutine finish a batch span after the HTTP handler that
// started the root has already returned).
//
// Completed root spans land in a lock-free bounded ring buffer — the
// flight recorder: the most recent N requests are always inspectable
// (GET /debug/traces in mobiserve) with zero steady-state allocation
// beyond the spans themselves. A latency-bucketed exemplar index
// alongside it retains the slowest root span per power-of-two duration
// bucket, so "what did a 300ms request spend its time on" stays
// answerable even after the ring has wrapped past it. Per-kind
// duration summaries aggregate every published span by kind.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobipriv/internal/rng"
)

// TraceID identifies one trace: 128 bits to fill the W3C traceparent
// field, with the low 64 bits (Lo) carrying the identity that sampling
// and span-ID derivation key on.
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports the invalid all-zero trace ID.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the 32-digit lowercase hex form used in traceparent.
func (id TraceID) String() string {
	var b [32]byte
	putHex(b[:16], id.Hi)
	putHex(b[16:], id.Lo)
	return string(b[:])
}

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the 16-digit lowercase hex form used in traceparent.
func (id SpanID) String() string {
	var b [16]byte
	putHex(b[:], uint64(id))
	return string(b[:])
}

func putHex(dst []byte, v uint64) {
	const hex = "0123456789abcdef"
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i] = hex[v&0xf]
		v >>= 4
	}
}

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A is shorthand for constructing an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int is shorthand for an integer-valued Attr.
func Int(key string, v int64) Attr { return Attr{Key: key, Value: itoa(v)} }

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [21]byte
	i := len(b)
	neg := v < 0
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		b[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// Key hashes a string into the uint64 domain DeriveID mixes over
// (FNV-1a, the same base hash the placement contract in internal/rng
// feeds through its splitmix64 finalizer to pick shards and nodes).
func Key(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// DeriveID derives a trace ID from a seed and a sequence of parts by
// folding each part through the splitmix64 finalizer. The derivation
// is a pure function: the same (seed, parts) always name the same
// trace, which is what lets a replaying client re-send the identical
// trace IDs (and therefore hit the identical sampling decisions).
func DeriveID(seed uint64, parts ...uint64) TraceID {
	// The fold must not commute between accumulator and part —
	// multiplying the accumulator by the (odd, hence invertible) gamma
	// before adding the mixed part keeps (seed, a, b) and permutations
	// of it distinct.
	h := rng.Mix(seed + rng.Gamma)
	for _, p := range parts {
		h = rng.Mix(h*rng.Gamma + rng.Mix(p+rng.Gamma))
	}
	id := TraceID{Hi: rng.Mix(h + rng.Gamma), Lo: h}
	if id.IsZero() {
		id.Lo = 1
	}
	return id
}

// DeriveSpanID derives the span ID for (trace, parent, kind, seq).
// Exported so a client emitting a traceparent header can name its own
// root span with the same derivation the server uses.
func DeriveSpanID(id TraceID, parent SpanID, kind string, seq uint64) SpanID {
	s := SpanID(rng.Mix(rng.Mix(id.Lo^uint64(parent)*rng.Gamma) + Key(kind) + seq*rng.Gamma))
	if s == 0 {
		s = 1
	}
	return s
}

// Config parameterizes a Tracer.
type Config struct {
	// SampleRate is the fraction of traces recorded, in [0, 1]. The
	// decision is deterministic per trace ID (see Tracer.Sampled), so
	// rate 0 still costs one mix+compare per request and nothing more.
	SampleRate float64
	// Seed salts the sampling decision and the IDs of locally
	// originated traces. Fixed seed + fixed traffic = fixed sample.
	Seed uint64
	// RingSize bounds the flight recorder (completed root spans
	// retained); 0 means 256.
	RingSize int
	// SlowThreshold, when positive, invokes SlowFunc for every
	// published root span whose duration meets or exceeds it — the
	// hook behind mobiserve's -trace-slow flag.
	SlowThreshold time.Duration
	// SlowFunc receives slow root spans; nil disables the hook. It is
	// called synchronously from whichever goroutine publishes the root
	// (ends the last open span), so it must be quick and concurrency-safe.
	SlowFunc func(*RootSpan)
}

// Tracer samples traces, collects their spans and retains the
// completed roots in the flight recorder. Safe for concurrent use; a
// nil *Tracer is valid and records nothing.
type Tracer struct {
	threshold uint64
	always    bool
	salt      uint64
	seed      uint64
	slow      time.Duration
	slowFn    func(*RootSpan)

	ctr       atomic.Uint64 // locally originated trace IDs
	published atomic.Uint64

	ring  ring
	exem  exemplars
	mu    sync.Mutex
	kinds map[string]*kindAgg
}

// New returns a Tracer for the config.
func New(cfg Config) *Tracer {
	n := cfg.RingSize
	if n <= 0 {
		n = 256
	}
	t := &Tracer{
		salt:   rng.Mix(cfg.Seed ^ rng.Gamma),
		seed:   cfg.Seed,
		slow:   cfg.SlowThreshold,
		slowFn: cfg.SlowFunc,
		kinds:  make(map[string]*kindAgg),
	}
	t.ring.slots = make([]atomic.Pointer[RootSpan], n)
	switch {
	case cfg.SampleRate >= 1:
		t.always = true
	case cfg.SampleRate > 0:
		t.threshold = uint64(cfg.SampleRate * float64(^uint64(0)))
	}
	return t
}

// SampleRate reports the configured sampling rate.
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	if t.always {
		return 1
	}
	return float64(t.threshold) / float64(^uint64(0))
}

// Sampled reports the head-sampling decision for a trace ID: a pure
// function of (id.Lo, seed), so identical traffic replayed against the
// same seed samples the identical requests.
func (t *Tracer) Sampled(id TraceID) bool {
	if t == nil {
		return false
	}
	if t.always {
		return true
	}
	return rng.Mix(id.Lo^t.salt) < t.threshold
}

// NewTraceID mints a locally originated trace ID from the tracer's
// seed and an internal counter.
func (t *Tracer) NewTraceID() TraceID {
	return DeriveID(t.seed, t.ctr.Add(1))
}

// DeriveID derives a trace ID from this tracer's seed and the parts —
// the keyed form servers use for spans not tied to a request (a
// per-user risk update, a per-trace store run).
func (t *Tracer) DeriveID(parts ...uint64) TraceID {
	if t == nil {
		return TraceID{}
	}
	return DeriveID(t.seed, parts...)
}

// Root starts a root span. A zero id mints a local one; a remote id
// (from traceparent) keys the sampling decision so replays sample
// identically, and parent records the remote caller's span. Returns
// nil — at the cost of one mix and one compare — when the trace is not
// sampled; every Span method tolerates the nil.
func (t *Tracer) Root(name string, id TraceID, parent SpanID) *Span {
	if t == nil {
		return nil
	}
	if id.IsZero() {
		id = t.NewTraceID()
	}
	if !t.Sampled(id) {
		return nil
	}
	s := &Span{
		tracer: t,
		trace:  id,
		id:     DeriveSpanID(id, parent, name, 0),
		parent: parent,
		kind:   name,
		start:  time.Now(),
	}
	s.root = s
	s.refs.Store(1)
	return s
}

// RootAt is Root with an explicit start time (tests, replayed clocks).
func (t *Tracer) RootAt(name string, id TraceID, parent SpanID, start time.Time) *Span {
	s := t.Root(name, id, parent)
	if s != nil {
		s.start = start
	}
	return s
}

// Published reports how many root spans have been recorded.
func (t *Tracer) Published() uint64 {
	if t == nil {
		return 0
	}
	return t.published.Load()
}

// SpanData is one completed span as retained by the recorder.
type SpanData struct {
	ID       SpanID
	Parent   SpanID
	Kind     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// RootSpan is one completed trace: the root plus every child span,
// sorted by start time (ties by span ID).
type RootSpan struct {
	Trace TraceID
	Name  string
	Root  SpanData
	Spans []SpanData
}

// Span is one live span. The zero of usefulness is nil: all methods
// are nil-safe no-ops, which is how the unsampled path stays free.
type Span struct {
	tracer *Tracer
	root   *Span
	trace  TraceID
	id     SpanID
	parent SpanID
	kind   string
	start  time.Time
	attrs  []Attr

	childSeq atomic.Uint64

	// Root-only publication state.
	refs  atomic.Int32 // open handles: self + undone children/holds
	data  SpanData     // the root's own completed record, set by End
	mu    sync.Mutex
	done  []SpanData
	ended atomic.Bool
}

// TraceID returns the span's trace ID (zero for nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// SpanID returns the span's ID (zero for nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Start returns the span's start time (zero for nil).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// SetAttr annotates the span. Must be called by the span's owning
// goroutine before End.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// Child starts a child span. The span ID derives from (trace, parent,
// kind, per-parent sequence), so a replay that creates children in the
// same order produces identical IDs. The child holds a reference on
// the root: the trace publishes only after every child has ended, even
// when that happens after the root itself ended (a shard goroutine
// finishing a batch after the HTTP handler returned).
func (s *Span) Child(kind string) *Span {
	return s.child(kind, time.Now())
}

// ChildAt is Child with an explicit start time.
func (s *Span) ChildAt(kind string, start time.Time) *Span {
	return s.child(kind, start)
}

func (s *Span) child(kind string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	root := s.root
	root.refs.Add(1)
	return &Span{
		tracer: s.tracer,
		root:   root,
		trace:  s.trace,
		id:     DeriveSpanID(s.trace, s.id, kind, s.childSeq.Add(1)),
		parent: s.id,
		kind:   kind,
		start:  start,
	}
}

// Record appends an already-completed child span in one call — the
// form the engine uses for intervals it measured itself (queue wait,
// shard processing). Safe to call from the goroutine that owns s.
func (s *Span) Record(kind string, start time.Time, d time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	data := SpanData{
		ID:       DeriveSpanID(s.trace, s.id, kind, s.childSeq.Add(1)),
		Parent:   s.id,
		Kind:     kind,
		Start:    start,
		Duration: d,
		Attrs:    attrs,
	}
	root := s.root
	root.mu.Lock()
	root.done = append(root.done, data)
	root.mu.Unlock()
}

// Hold adds an extra reference on the root, deferring publication
// until a matching Release — for handing a span to another goroutine
// that will finish after the creator. Returns s.
func (s *Span) Hold() *Span {
	if s != nil {
		s.root.refs.Add(1)
	}
	return s
}

// Release drops a reference taken by Hold.
func (s *Span) Release() {
	if s != nil {
		s.root.release()
	}
}

// End completes the span with the current time.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt completes the span at an explicit end time. The duration is
// end.Sub(start) — monotonic when both stamps came from time.Now().
// Ending a span twice is a no-op for roots and must be avoided for
// children.
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	d := end.Sub(s.start)
	if d < 0 {
		d = 0
	}
	data := SpanData{
		ID:       s.id,
		Parent:   s.parent,
		Kind:     s.kind,
		Start:    s.start,
		Duration: d,
		Attrs:    s.attrs,
	}
	root := s.root
	if s == root {
		if !root.ended.CompareAndSwap(false, true) {
			return
		}
		root.data = data
	} else {
		root.mu.Lock()
		root.done = append(root.done, data)
		root.mu.Unlock()
	}
	root.release()
}

// release drops one root reference; the last one out publishes.
func (s *Span) release() {
	if s.refs.Add(-1) != 0 {
		return
	}
	if !s.ended.Load() {
		// Every handle released but the root never ended: drop the
		// trace rather than publish a root with zero duration.
		return
	}
	s.mu.Lock()
	spans := s.done
	s.done = nil
	s.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
	rs := &RootSpan{Trace: s.trace, Name: s.kind, Root: s.data, Spans: spans}
	s.tracer.publish(rs)
}

func (t *Tracer) publish(rs *RootSpan) {
	t.published.Add(1)
	t.ring.put(rs)
	t.exem.offer(rs)
	t.mu.Lock()
	t.noteKind(rs.Root.Kind, rs.Root.Duration)
	for i := range rs.Spans {
		t.noteKind(rs.Spans[i].Kind, rs.Spans[i].Duration)
	}
	t.mu.Unlock()
	if t.slow > 0 && t.slowFn != nil && rs.Root.Duration >= t.slow {
		t.slowFn(rs)
	}
}

// noteKind folds one span duration into the per-kind summary; caller
// holds t.mu.
func (t *Tracer) noteKind(kind string, d time.Duration) {
	agg := t.kinds[kind]
	if agg == nil {
		agg = &kindAgg{}
		t.kinds[kind] = agg
	}
	agg.count++
	agg.totalNs += uint64(d)
	if d > agg.max {
		agg.max = d
	}
}

type kindAgg struct {
	count   uint64
	totalNs uint64
	max     time.Duration
}

// KindSummary aggregates every published span of one kind.
type KindSummary struct {
	Kind  string
	Count uint64
	Total time.Duration
	Max   time.Duration
	Mean  time.Duration
}

// Kinds returns the per-kind duration summaries, sorted by kind.
func (t *Tracer) Kinds() []KindSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]KindSummary, 0, len(t.kinds))
	for kind, agg := range t.kinds {
		ks := KindSummary{
			Kind:  kind,
			Count: agg.count,
			Total: time.Duration(agg.totalNs),
			Max:   agg.max,
		}
		if agg.count > 0 {
			ks.Mean = time.Duration(agg.totalNs / agg.count)
		}
		out = append(out, ks)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// ring is the flight recorder: a lock-free bounded buffer of the most
// recently published root spans. Writers claim a slot with one atomic
// add and store a pointer; readers load pointers. Under wraparound a
// snapshot is best-effort (a slot may already hold a newer trace), but
// it never blocks a writer and never tears a span.
type ring struct {
	slots []atomic.Pointer[RootSpan]
	next  atomic.Uint64
}

func (r *ring) put(rs *RootSpan) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(rs)
}

// snapshot returns up to max root spans, newest first.
func (r *ring) snapshot(max int) []*RootSpan {
	total := r.next.Load()
	n := uint64(len(r.slots))
	if total < n {
		n = total
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]*RootSpan, 0, n)
	for k := uint64(0); k < n; k++ {
		i := total - 1 - k
		if rs := r.slots[i%uint64(len(r.slots))].Load(); rs != nil {
			out = append(out, rs)
		}
	}
	return out
}

// Recent returns up to max of the most recently published root spans,
// newest first (all retained roots when max <= 0).
func (t *Tracer) Recent(max int) []*RootSpan {
	if t == nil {
		return nil
	}
	return t.ring.snapshot(max)
}

// exemplars retains the slowest root span per power-of-two duration
// bucket: bucket k holds the slowest root with duration in
// [2^k, 2^(k+1)) nanoseconds. However long the service runs and
// however often the ring wraps, the worst request of every latency
// class stays retrievable.
type exemplars struct {
	slots [65]atomic.Pointer[RootSpan]
}

// exemplarBucket maps a duration to its bucket index.
func exemplarBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := 0
	for v := uint64(d); v > 1; v >>= 1 {
		b++
	}
	return b + 1
}

// BucketFloor returns the lower duration edge of an exemplar bucket.
func BucketFloor(bucket int) time.Duration {
	if bucket <= 0 {
		return 0
	}
	return time.Duration(1) << uint(bucket-1)
}

func (e *exemplars) offer(rs *RootSpan) {
	slot := &e.slots[exemplarBucket(rs.Root.Duration)]
	for {
		cur := slot.Load()
		if cur != nil && cur.Root.Duration >= rs.Root.Duration {
			return
		}
		if slot.CompareAndSwap(cur, rs) {
			return
		}
	}
}

// Exemplar is the slowest retained root span of one latency bucket.
type Exemplar struct {
	// Bucket is the exemplar-bucket index; the root's duration lies in
	// [BucketFloor(Bucket), 2*BucketFloor(Bucket)).
	Bucket int
	Root   *RootSpan
}

// Exemplars returns the slowest root span per non-empty latency
// bucket, in ascending bucket order.
func (t *Tracer) Exemplars() []Exemplar {
	if t == nil {
		return nil
	}
	var out []Exemplar
	for i := range t.exem.slots {
		if rs := t.exem.slots[i].Load(); rs != nil {
			out = append(out, Exemplar{Bucket: i, Root: rs})
		}
	}
	return out
}

package trace

// W3C traceparent: version "00", 32 hex trace-id, 16 hex parent-id,
// 2 hex flags — "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01".
// This is the only wire format the tracer speaks; it is what lets
// cmd/mobiload (and later the multi-node router) hand mobiserve the
// trace identity instead of minting a fresh one per hop.

const (
	traceparentLen = 55 // 2 + 1 + 32 + 1 + 16 + 1 + 2
	// FlagSampled is the sampled bit of the trace-flags byte.
	FlagSampled = 0x01
)

// FormatTraceparent renders a W3C traceparent header value.
func FormatTraceparent(id TraceID, span SpanID, sampled bool) string {
	var b [traceparentLen]byte
	b[0], b[1], b[2] = '0', '0', '-'
	putHex(b[3:19], id.Hi)
	putHex(b[19:35], id.Lo)
	b[35] = '-'
	putHex(b[36:52], uint64(span))
	b[52] = '-'
	flags := byte(0)
	if sampled {
		flags = FlagSampled
	}
	putHex(b[53:55], uint64(flags))
	return string(b[:])
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any version except the invalid "ff", requires lowercase hex, and
// rejects all-zero trace and span IDs per the spec. ok is false on any
// violation; callers then mint a local trace ID instead.
func ParseTraceparent(s string) (id TraceID, span SpanID, sampled bool, ok bool) {
	if len(s) < traceparentLen {
		return TraceID{}, 0, false, false
	}
	// Version: two hex digits, not "ff". Later versions may append
	// fields after the flags; ignore anything past byte 55 in that
	// case, but version 00 must be exactly 55 bytes.
	ver, vok := parseHex(s[0:2])
	if !vok || ver == 0xff || s[2] != '-' {
		return TraceID{}, 0, false, false
	}
	if ver == 0 && len(s) != traceparentLen {
		return TraceID{}, 0, false, false
	}
	if len(s) > traceparentLen && s[traceparentLen] != '-' {
		return TraceID{}, 0, false, false
	}
	hi, ok1 := parseHex(s[3:19])
	lo, ok2 := parseHex(s[19:35])
	if !ok1 || !ok2 || s[35] != '-' {
		return TraceID{}, 0, false, false
	}
	id = TraceID{Hi: hi, Lo: lo}
	if id.IsZero() {
		return TraceID{}, 0, false, false
	}
	sp, ok3 := parseHex(s[36:52])
	if !ok3 || sp == 0 || s[52] != '-' {
		return TraceID{}, 0, false, false
	}
	flags, ok4 := parseHex(s[53:55])
	if !ok4 {
		return TraceID{}, 0, false, false
	}
	return id, SpanID(sp), flags&FlagSampled != 0, true
}

// parseHex decodes lowercase hex (the only case traceparent allows).
func parseHex(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Snapshot is the zpages view of a tracer: what GET /debug/traces
// serializes. All fields are plain data so the JSON encoding is
// deterministic for a deterministic trace history.
type Snapshot struct {
	SampleRate float64           `json:"sample_rate"`
	Published  uint64            `json:"published"`
	Recent     []RootJSON        `json:"recent"`
	Exemplars  []ExemplarJSON    `json:"exemplars"`
	Kinds      []KindSummaryJSON `json:"kinds"`
}

// RootJSON is one completed trace in wire form.
type RootJSON struct {
	TraceID    string     `json:"trace_id"`
	Name       string     `json:"name"`
	Start      string     `json:"start"`
	DurationUs int64      `json:"duration_us"`
	Root       SpanJSON   `json:"root"`
	Spans      []SpanJSON `json:"spans,omitempty"`
}

// SpanJSON is one span in wire form: hex IDs, RFC3339Nano UTC start,
// microsecond duration.
type SpanJSON struct {
	SpanID     string `json:"span_id"`
	ParentID   string `json:"parent_id,omitempty"`
	Kind       string `json:"kind"`
	Start      string `json:"start"`
	DurationUs int64  `json:"duration_us"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

// ExemplarJSON is the slowest root of one latency bucket in wire form.
type ExemplarJSON struct {
	Bucket        int      `json:"bucket"`
	BucketFloorUs int64    `json:"bucket_floor_us"`
	Root          RootJSON `json:"root"`
}

// KindSummaryJSON aggregates one span kind in wire form.
type KindSummaryJSON struct {
	Kind    string `json:"kind"`
	Count   uint64 `json:"count"`
	TotalUs int64  `json:"total_us"`
	MeanUs  int64  `json:"mean_us"`
	MaxUs   int64  `json:"max_us"`
}

func spanJSON(d SpanData) SpanJSON {
	sj := SpanJSON{
		SpanID:     d.ID.String(),
		Kind:       d.Kind,
		Start:      d.Start.UTC().Format(time.RFC3339Nano),
		DurationUs: d.Duration.Microseconds(),
		Attrs:      d.Attrs,
	}
	if d.Parent != 0 {
		sj.ParentID = d.Parent.String()
	}
	return sj
}

func rootJSON(rs *RootSpan) RootJSON {
	rj := RootJSON{
		TraceID:    rs.Trace.String(),
		Name:       rs.Name,
		Start:      rs.Root.Start.UTC().Format(time.RFC3339Nano),
		DurationUs: rs.Root.Duration.Microseconds(),
		Root:       spanJSON(rs.Root),
	}
	for i := range rs.Spans {
		rj.Spans = append(rj.Spans, spanJSON(rs.Spans[i]))
	}
	return rj
}

// Snapshot captures up to maxRecent recent roots (all retained when
// maxRecent <= 0) plus exemplars and kind summaries.
func (t *Tracer) Snapshot(maxRecent int) Snapshot {
	snap := Snapshot{
		SampleRate: t.SampleRate(),
		Published:  t.Published(),
	}
	for _, rs := range t.Recent(maxRecent) {
		snap.Recent = append(snap.Recent, rootJSON(rs))
	}
	for _, ex := range t.Exemplars() {
		snap.Exemplars = append(snap.Exemplars, ExemplarJSON{
			Bucket:        ex.Bucket,
			BucketFloorUs: BucketFloor(ex.Bucket).Microseconds(),
			Root:          rootJSON(ex.Root),
		})
	}
	for _, ks := range t.Kinds() {
		snap.Kinds = append(snap.Kinds, KindSummaryJSON{
			Kind:    ks.Kind,
			Count:   ks.Count,
			TotalUs: ks.Total.Microseconds(),
			MeanUs:  ks.Mean.Microseconds(),
			MaxUs:   ks.Max.Microseconds(),
		})
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot in the human zpages form: recent roots
// newest first with their child spans indented, then exemplars, then
// kind summaries.
func (s Snapshot) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "tracer: sample_rate=%g published=%d\n", s.SampleRate, s.Published)
	fmt.Fprintf(bw, "\nrecent roots (%d, newest first):\n", len(s.Recent))
	for i := range s.Recent {
		writeRootText(bw, &s.Recent[i])
	}
	fmt.Fprintf(bw, "\nexemplars (slowest per latency bucket):\n")
	for i := range s.Exemplars {
		ex := &s.Exemplars[i]
		fmt.Fprintf(bw, "[>= %s]\n", time.Duration(ex.BucketFloorUs)*time.Microsecond)
		writeRootText(bw, &ex.Root)
	}
	fmt.Fprintf(bw, "\nspan kinds:\n")
	for _, k := range s.Kinds {
		fmt.Fprintf(bw, "  %-24s count=%-8d mean=%-12s max=%-12s total=%s\n",
			k.Kind, k.Count,
			time.Duration(k.MeanUs)*time.Microsecond,
			time.Duration(k.MaxUs)*time.Microsecond,
			time.Duration(k.TotalUs)*time.Microsecond)
	}
	return bw.err
}

func writeRootText(w io.Writer, r *RootJSON) {
	fmt.Fprintf(w, "  %s %s %s (%s)\n",
		r.TraceID, r.Name, time.Duration(r.DurationUs)*time.Microsecond, r.Start)
	for i := range r.Spans {
		sp := &r.Spans[i]
		fmt.Fprintf(w, "    %-24s %-12s span=%s", sp.Kind,
			time.Duration(sp.DurationUs)*time.Microsecond, sp.SpanID)
		for _, a := range sp.Attrs {
			fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
		}
		fmt.Fprintln(w)
	}
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

type ctxKey struct{}

// NewContext returns ctx carrying the span.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Coarse exposition buckets: the 1025 fine bins would bloat every
// scrape, so WritePrometheus rolls them up to power-of-two nanosecond
// upper bounds. Each le = 2^k ns aligns exactly with a fine-bin
// boundary (values of bit length ≤ k occupy bins 1..16k), so the
// rollup is a pure summation — no re-binning error. histExpoBuckets
// lists the exponents k; the spans run ~1µs .. ~17s, which brackets
// any plausible request latency.
var histExpoBuckets = []int{10, 13, 16, 19, 22, 25, 28, 31, 34}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4): families sorted by name,
// series within a family sorted by label signature, each family
// preceded by its # HELP and # TYPE lines. Callback metrics are
// evaluated during the write while the registry lock is held.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		fam := r.families[name]
		bw.WriteString("# HELP ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(fam.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(fam.kind.String())
		bw.WriteByte('\n')

		sigs := make([]string, 0, len(fam.series))
		for sig := range fam.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := fam.series[sig]
			switch {
			case s.hist != nil:
				writeHistogram(bw, fam.name, s)
			case s.fn != nil:
				writeSample(bw, fam.name, s.sig, formatFloat(s.fn()))
			case s.counter != nil:
				writeSample(bw, fam.name, s.sig, strconv.FormatUint(s.counter.Value(), 10))
			case s.gauge != nil:
				writeSample(bw, fam.name, s.sig, formatFloat(s.gauge.Value()))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line.
func writeSample(bw *bufio.Writer, name, sig, value string) {
	bw.WriteString(name)
	if sig != "" {
		bw.WriteByte('{')
		bw.WriteString(sig)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// writeHistogram emits the cumulative _bucket series plus _sum and
// _count for one histogram series.
func writeHistogram(bw *bufio.Writer, name string, s *series) {
	h := s.hist
	// Snapshot bins once so the emitted cumulative counts are
	// consistent even while observations continue concurrently.
	var bins [histBins]uint64
	for i := range h.bins {
		bins[i] = h.bins[i].Load()
	}
	var cum, total uint64
	for _, n := range bins {
		total += n
	}
	next := 0
	for _, k := range histExpoBuckets {
		// Values with bit length ≤ k occupy bins [1, 16k]; bin 0 is zero.
		hi := k*histSubBins + 1 // exclusive upper bin index
		for ; next < hi && next < histBins; next++ {
			cum += bins[next]
		}
		le := formatFloat(ldexpSeconds(k))
		writeSample(bw, name+"_bucket", withLE(s.sig, le), strconv.FormatUint(cum, 10))
	}
	writeSample(bw, name+"_bucket", withLE(s.sig, "+Inf"), strconv.FormatUint(total, 10))
	writeSample(bw, name+"_sum", s.sig, formatFloat(h.Sum()))
	writeSample(bw, name+"_count", s.sig, strconv.FormatUint(total, 10))
}

// ldexpSeconds returns 2^k nanoseconds expressed in seconds.
func ldexpSeconds(k int) float64 {
	v := 1e-9
	for i := 0; i < k; i++ {
		v *= 2
	}
	return v
}

// withLE appends the le label to an existing signature.
func withLE(sig, le string) string {
	if sig == "" {
		return `le="` + le + `"`
	}
	return sig + `,le="` + le + `"`
}

// formatFloat renders a float sample value in the shortest exact form.
func formatFloat(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v > 1.7976931348623157e308:
		return "+Inf"
	case v < -1.7976931348623157e308:
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, quotes and newlines in a label
// value.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

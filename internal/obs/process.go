package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// memStatsCache amortizes runtime.ReadMemStats across the GaugeFuncs
// that read it: one scrape touches several heap series, but ReadMemStats
// stops the world, so all of them share a snapshot no older than
// memStatsTTL.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

const memStatsTTL = time.Second

func (c *memStatsCache) read() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) > memStatsTTL {
		runtime.ReadMemStats(&c.stat)
		c.at = now
	}
	return c.stat
}

// RegisterProcessMetrics publishes process self-metrics on reg:
// uptime (measured from this call), goroutine count, heap usage and GC
// totals from runtime.MemStats (cached ~1s so a scrape of several
// series costs one ReadMemStats), and a constant mobipriv_build_info
// gauge carrying the Go runtime version and the main module version as
// labels. Idempotent per registry in the sense of the registry's own
// contract: re-registering with identical help strings is a no-op
// apart from resetting the uptime epoch.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	cache := &memStatsCache{}
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since process metrics were registered.",
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("process_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("process_heap_inuse_bytes",
		"Bytes in in-use heap spans (runtime.MemStats.HeapInuse).",
		func() float64 { return float64(cache.read().HeapInuse) })
	reg.GaugeFunc("process_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(cache.read().HeapAlloc) })
	reg.CounterFunc("process_alloc_bytes_total",
		"Cumulative bytes allocated for heap objects (runtime.MemStats.TotalAlloc).",
		func() float64 { return float64(cache.read().TotalAlloc) })
	reg.CounterFunc("process_gc_runs_total",
		"Completed GC cycles (runtime.MemStats.NumGC).",
		func() float64 { return float64(cache.read().NumGC) })
	reg.GaugeFunc("mobipriv_build_info",
		"Constant 1, labeled with build metadata.",
		func() float64 { return 1 },
		L("go_version", runtime.Version()),
		L("module_version", moduleVersion()))
}

// moduleVersion reports the main module's version from build info —
// "(devel)" for a working-tree build, "unknown" when build info is
// unavailable (e.g. a bare `go test` binary on old toolchains).
func moduleVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok || bi.Main.Version == "" {
		return "unknown"
	}
	return bi.Main.Version
}

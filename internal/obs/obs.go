// Package obs is the observability substrate: a small, dependency-free
// metrics registry whose instruments — Counter, Gauge and the
// log-bucketed latency Histogram — are race-safe (lock-free atomics on
// every hot-path operation) and mergeable, and whose contents are
// exposed in the Prometheus text format (WritePrometheus) with a
// stable, golden-testable ordering.
//
// The design mirrors the rest of the codebase's accumulator contract:
// a Histogram keeps only merge-order-invariant state (integer bucket
// counts and an integer nanosecond sum), so Observe and Merge commute —
// any partition of the observations over any number of histograms,
// merged in any order, yields bit-identical counts, sums and quantiles.
// That is what lets a load driver fan requests over workers, each with
// a private histogram, and still report deterministic aggregates.
//
// Callback instruments (CounterFunc, GaugeFunc) promote counters that
// already live elsewhere — an engine shard's atomics, a store's scan
// counters — into scrape-time values without double accounting: the
// registry never copies them, it reads them. A value served on a JSON
// endpoint and on /metrics therefore CANNOT disagree when both read
// the registry, which is how mobiserve keeps /stats truthful.
//
// Registration is idempotent: asking for the same (name, labels)
// series again returns the same instrument. Conflicting re-use of a
// name (different kind or help text) panics — that is a programming
// error, not an operational condition.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing counter. The zero value is
// ready to use; obtain shared instances from Registry.Counter.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a float64 value that may go up and down. The zero value is
// ready to use; obtain shared instances from Registry.Gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (atomic read-modify-write).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger — a high-water mark.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// kind discriminates the exposition type of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family: exactly one of the
// instrument fields is set.
type series struct {
	labels []Label
	sig    string // canonical label signature, the sort key

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // CounterFunc / GaugeFunc
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series map[string]*series
}

// Registry holds metric families and writes them out in Prometheus
// text format. Instrument operations (Inc, Set, Observe) are lock-free;
// registration and exposition take the registry lock. Callback metrics
// must not call back into the registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter series (name, labels), creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge series (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram series (name, labels), creating it on
// first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	if s.hist == nil {
		s.hist = NewHistogram()
	}
	return s.hist
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — the bridge that promotes counters already maintained
// elsewhere (engine shard atomics, store scan counters) into the
// registry without double accounting. fn must be safe for concurrent
// use and must not touch the registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindCounter, labels)
	s.fn = fn
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn must be safe for concurrent use and must not touch the
// registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindGauge, labels)
	s.fn = fn
}

// Value returns the current value of the counter or gauge series
// (name, labels); ok is false for absent series and histograms. This is
// the accessor JSON views use so they can never drift from /metrics.
func (r *Registry) Value(name string, labels ...Label) (v float64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		return 0, false
	}
	s := fam.series[signature(sortedLabels(labels))]
	if s == nil {
		return 0, false
	}
	switch {
	case s.fn != nil:
		return s.fn(), true
	case s.counter != nil:
		return float64(s.counter.Value()), true
	case s.gauge != nil:
		return s.gauge.Value(), true
	default:
		return 0, false
	}
}

// HistogramSnapshot is a point-in-time summary of one histogram
// series, the form JSON views (mobiserve /stats, mobiload -verbose)
// surface so operators can read latency without a Prometheus server.
// Quantiles are lower bucket edges in seconds, per the histogram's
// ~4.5% log-bucket resolution.
//
// Beyond the quantiles, a snapshot carries the exact mergeable state —
// the integer nanosecond sum and the sparse populated buckets — so a
// snapshot can be folded back into a Histogram with MergeSnapshot
// without losing fidelity. That is the wire contract the multi-node
// router's aggregated /stats relies on: each worker serializes its
// histograms, the router merges the snapshots, and the fleet-wide
// quantiles are bit-identical to a single process observing the same
// values.
type HistogramSnapshot struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"` // canonical signature, e.g. `route="/ingest"`
	Count  uint64  `json:"count"`
	Sum    float64 `json:"sum_s"`
	P50    float64 `json:"p50_s"`
	P95    float64 `json:"p95_s"`
	P99    float64 `json:"p99_s"`

	// SumNs is the exact integer nanosecond sum (Sum is its lossy
	// float64-seconds rendering); Bins lists the populated buckets of
	// the histogram's fixed log-spaced geometry. Together with Count
	// they are the histogram's full state.
	SumNs uint64         `json:"sum_ns,omitempty"`
	Bins  []HistogramBin `json:"bins,omitempty"`
}

// HistogramBin is one populated bucket in a HistogramSnapshot: the bin
// index within the histogram's fixed 1025-slot log-spaced geometry and
// the number of observations it holds.
type HistogramBin struct {
	Bin   int    `json:"bin"`
	Count uint64 `json:"count"`
}

// HistogramSnapshots summarizes every histogram series in the
// registry, sorted by (name, label signature) — the same canonical
// order WritePrometheus uses, so JSON and exposition views enumerate
// identically.
func (r *Registry) HistogramSnapshots() []HistogramSnapshot {
	r.mu.Lock()
	var hists []struct {
		name, sig string
		h         *Histogram
	}
	for name, fam := range r.families {
		if fam.kind != kindHistogram {
			continue
		}
		for _, s := range fam.series {
			if s.hist != nil {
				hists = append(hists, struct {
					name, sig string
					h         *Histogram
				}{name, s.sig, s.hist})
			}
		}
	}
	r.mu.Unlock()
	sort.Slice(hists, func(i, j int) bool {
		if hists[i].name != hists[j].name {
			return hists[i].name < hists[j].name
		}
		return hists[i].sig < hists[j].sig
	})
	out := make([]HistogramSnapshot, 0, len(hists))
	for _, e := range hists {
		out = append(out, e.h.Snapshot(e.name, e.sig))
	}
	return out
}

// register returns the series for (name, labels), creating family and
// series as needed and enforcing name/kind/help consistency.
func (r *Registry) register(name, help string, k kind, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l.Name, name))
		}
	}
	ls := sortedLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = fam
	} else if fam.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k, fam.kind))
	} else if fam.help != help {
		panic(fmt.Sprintf("obs: metric %q re-registered with different help", name))
	}
	sig := signature(ls)
	s := fam.series[sig]
	if s == nil {
		s = &series{labels: ls, sig: sig}
		fam.series[sig] = s
	}
	return s
}

// sortedLabels returns a copy of labels in canonical (name-sorted)
// order.
func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	return ls
}

// signature renders the canonical label key used to identify a series
// within its family; it doubles as the exposition sort key.
func signature(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name is a legal Prometheus label name.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

package obs

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestSnapshotRoundTrip asserts the wire contract the multi-node
// router's aggregated /stats depends on: per-worker histograms
// serialized as snapshots (through JSON, as they travel over HTTP) and
// folded into a fresh histogram with MergeSnapshot reproduce the exact
// state — count, nanosecond sum, every bin, every quantile — of a
// single histogram that observed all the values directly.
func TestSnapshotRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	direct := NewHistogram()
	workers := make([]*Histogram, 3)
	for i := range workers {
		workers[i] = NewHistogram()
	}
	for i := 0; i < 5000; i++ {
		d := time.Duration(r.Int63n(int64(2 * time.Second)))
		direct.ObserveDuration(d)
		workers[r.Intn(len(workers))].ObserveDuration(d)
	}

	merged := NewHistogram()
	// Merge in reverse order to exercise order-invariance, and push
	// each snapshot through JSON to exercise the wire encoding.
	for i := len(workers) - 1; i >= 0; i-- {
		raw, err := json.Marshal(workers[i].Snapshot("lat", ""))
		if err != nil {
			t.Fatal(err)
		}
		var snap HistogramSnapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatal(err)
		}
		merged.MergeSnapshot(snap)
	}

	got, want := merged.Snapshot("lat", ""), direct.Snapshot("lat", "")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged snapshot differs from direct observation:\ngot  %+v\nwant %+v", got, want)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 1} {
		if merged.Quantile(q) != direct.Quantile(q) {
			t.Errorf("quantile %.2f: merged %v, direct %v", q, merged.Quantile(q), direct.Quantile(q))
		}
	}
}

// TestMergeSnapshotIgnoresForeignBins checks a corrupt or foreign
// snapshot cannot crash or poison a histogram: out-of-range bin indices
// are dropped, count and sum still merge.
func TestMergeSnapshotIgnoresForeignBins(t *testing.T) {
	h := NewHistogram()
	h.MergeSnapshot(HistogramSnapshot{
		Count: 3,
		SumNs: 300,
		Bins:  []HistogramBin{{Bin: -1, Count: 1}, {Bin: histBins, Count: 1}, {Bin: 5, Count: 1}},
	})
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if got := h.Snapshot("x", "").Bins; len(got) != 1 || got[0].Bin != 5 {
		t.Errorf("bins = %+v, want only bin 5", got)
	}
	// Empty snapshots are no-ops.
	h2 := NewHistogram()
	h2.MergeSnapshot(HistogramSnapshot{})
	if h2.Count() != 0 {
		t.Errorf("empty snapshot merged into %d observations", h2.Count())
	}
}

package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeBasics pins the elementary instrument semantics.
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	g.SetMax(10)
	g.SetMax(3)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge after SetMax = %v, want 10", got)
	}
}

// TestRegistryIdempotent pins that re-registering the same series
// returns the same instrument, and that conflicting reuse panics.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "help", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	if c := r.Counter("x_total", "help", L("k", "w")); c == a {
		t.Fatal("different label value returned same counter")
	}
	mustPanic(t, "kind conflict", func() { r.Gauge("x_total", "help") })
	mustPanic(t, "help conflict", func() { r.Counter("x_total", "other help") })
	mustPanic(t, "bad name", func() { r.Counter("9bad", "help") })
	mustPanic(t, "bad label", func() { r.Counter("ok_total", "help", L("bad-label", "v")) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

// TestRegistryValue pins the /stats-as-a-view contract: Value reads
// the same state the exposition writes, including callback metrics.
func TestRegistryValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h").Add(7)
	r.Gauge("g", "h", L("shard", "0")).Set(3)
	n := 41.0
	r.CounterFunc("fn_total", "h", func() float64 { return n })

	if v, ok := r.Value("c_total"); !ok || v != 7 {
		t.Fatalf("Value(c_total) = %v, %v", v, ok)
	}
	if v, ok := r.Value("g", L("shard", "0")); !ok || v != 3 {
		t.Fatalf("Value(g{shard=0}) = %v, %v", v, ok)
	}
	if v, ok := r.Value("fn_total"); !ok || v != 41 {
		t.Fatalf("Value(fn_total) = %v, %v", v, ok)
	}
	n = 42
	if v, _ := r.Value("fn_total"); v != 42 {
		t.Fatalf("callback not re-read: %v", v)
	}
	if _, ok := r.Value("absent"); ok {
		t.Fatal("Value on absent series reported ok")
	}
	if _, ok := r.Value("g", L("shard", "9")); ok {
		t.Fatal("Value on absent labels reported ok")
	}
}

// TestHistogramMergeOrderInvariance pins the accumulator contract the
// package doc promises: any partition of the observations over any
// number of histograms, merged in any order, yields identical state.
func TestHistogramMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	obs := make([]float64, 5000)
	for i := range obs {
		obs[i] = rng.ExpFloat64() * 1e-3 // ~ms-scale latencies
	}

	whole := NewHistogram()
	for _, v := range obs {
		whole.Observe(v)
	}

	// Partition into 7 parts round-robin, merge in a shuffled order.
	parts := make([]*Histogram, 7)
	for i := range parts {
		parts[i] = NewHistogram()
	}
	for i, v := range obs {
		parts[i%len(parts)].Observe(v)
	}
	order := rng.Perm(len(parts))
	merged := NewHistogram()
	for _, i := range order {
		merged.Merge(parts[i])
	}

	if whole.Count() != merged.Count() {
		t.Fatalf("count: whole %d, merged %d", whole.Count(), merged.Count())
	}
	if whole.sumNs.Load() != merged.sumNs.Load() {
		t.Fatalf("sumNs: whole %d, merged %d", whole.sumNs.Load(), merged.sumNs.Load())
	}
	for i := range whole.bins {
		if a, b := whole.bins[i].Load(), merged.bins[i].Load(); a != b {
			t.Fatalf("bin %d: whole %d, merged %d", i, a, b)
		}
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if a, b := whole.Quantile(q), merged.Quantile(q); a != b {
			t.Fatalf("quantile %v: whole %v, merged %v", q, a, b)
		}
	}
}

// TestHistogramQuantile sanity-checks quantiles against a known
// distribution within the documented ~4.5% bucket resolution.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 1..1000 microseconds.
	for i := 1; i <= 1000; i++ {
		h.ObserveDuration(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 400e-6 || p50 > 550e-6 {
		t.Fatalf("p50 = %v, want ~500µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900e-6 || p99 > 1100e-6 {
		t.Fatalf("p99 = %v, want ~990µs", p99)
	}
	wantSum := float64(1000*1001/2) * 1e-6
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}

// TestHistogramObserveClamps pins the edge handling for hostile inputs.
func TestHistogramObserveClamps(t *testing.T) {
	h := NewHistogram()
	h.Observe(-1)
	h.Observe(0)
	h.ObserveDuration(-time.Second)
	if h.Count() != 3 || h.sumNs.Load() != 0 {
		t.Fatalf("count=%d sumNs=%d after clamped observations", h.Count(), h.sumNs.Load())
	}
	if h.bins[0].Load() != 3 {
		t.Fatalf("zero bin = %d, want 3", h.bins[0].Load())
	}
	h.Observe(1e300) // overflow clamps to MaxUint64, must not panic
	if h.Count() != 4 {
		t.Fatalf("count = %d after overflow observe", h.Count())
	}
}

// TestConcurrentInstruments exercises every instrument from many
// goroutines; run under -race this is the package's race test.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	hw := r.Gauge("g_high_water", "h")
	h := r.Histogram("h_seconds", "h")

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				hw.SetMax(float64(i))
				h.ObserveDuration(time.Duration(i) * time.Microsecond)
				// Concurrent registration of the same series must be safe.
				r.Counter("c_total", "h").Add(0)
				if i%500 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	if got := hw.Value(); got != iters-1 {
		t.Fatalf("high-water gauge = %v, want %d", got, iters-1)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

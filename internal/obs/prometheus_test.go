package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the exposition byte-for-byte: family
// ordering, series ordering, HELP/TYPE lines, label escaping, and the
// histogram bucket rollup are all part of the scrape contract.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "sorts last").Add(1)
	r.Counter("app_requests_total", "Requests served", L("route", "/ingest")).Add(12)
	r.Counter("app_requests_total", "Requests served", L("route", "/stats")).Add(3)
	r.Gauge("app_queue_depth", "Queue depth", L("shard", "0")).Set(4)
	r.Gauge("app_queue_depth", "Queue depth", L("shard", "1")).Set(7.5)
	r.GaugeFunc("app_uptime_seconds", "Uptime", func() float64 { return 42.25 })
	r.Counter("esc_total", "help with \\ backslash\nand newline",
		L("v", "quote \" slash \\ nl \n end"),
	).Add(9)

	h := r.Histogram("app_latency_seconds", "Request latency")
	h.ObserveDuration(500 * time.Nanosecond)  // below first le
	h.ObserveDuration(800 * time.Microsecond) // mid-range
	h.ObserveDuration(900 * time.Microsecond) // same coarse bucket
	h.ObserveDuration(250 * time.Millisecond) // upper range
	h.ObserveDuration(30 * time.Second)       // beyond last le → only +Inf

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "expo.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

// TestHistogramExpositionCumulative checks the invariants any
// Prometheus client would assume: buckets are cumulative and
// monotonic, and the +Inf bucket equals _count.
func TestHistogramExpositionCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency")
	for i := 1; i <= 300; i++ {
		h.ObserveDuration(time.Duration(i) * 37 * time.Microsecond)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	var infSeen bool
	var count uint64
	for _, line := range strings.Split(sb.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "lat_seconds_bucket"):
			v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("bucket not cumulative: %q after %d", line, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				infSeen = true
				if v != 300 {
					t.Fatalf("+Inf bucket = %d, want 300", v)
				}
			}
		case strings.HasPrefix(line, "lat_seconds_count"):
			count, _ = strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket emitted")
	}
	if count != 300 {
		t.Fatalf("_count = %d, want 300", count)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(time.Duration(i) * time.Nanosecond)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for s := 0; s < 8; s++ {
		r.Gauge("bench_queue_depth", "bench", L("shard", strconv.Itoa(s))).Set(float64(s))
	}
	r.Counter("bench_points_total", "bench").Add(1 << 20)
	h := r.Histogram("bench_latency_seconds", "bench")
	for i := 0; i < 1000; i++ {
		h.ObserveDuration(time.Duration(i) * time.Microsecond)
	}
	var sb strings.Builder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		if err := r.WritePrometheus(&sb); err != nil {
			b.Fatal(err)
		}
	}
}

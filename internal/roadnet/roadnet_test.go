package roadnet

import (
	"math"
	"testing"

	"mobipriv/internal/geo"
)

var center = geo.Point{Lat: 45.7640, Lng: 4.8357}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(center, 1, 5, 100); err == nil {
		t.Error("1 row accepted")
	}
	if _, err := NewGrid(center, 5, 1, 100); err == nil {
		t.Error("1 col accepted")
	}
	if _, err := NewGrid(center, 3, 3, 0); err == nil {
		t.Error("zero block accepted")
	}
}

func TestGridGeometry(t *testing.T) {
	n, err := NewGrid(center, 5, 7, 200)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumNodes() != 35 {
		t.Fatalf("nodes = %d, want 35", n.NumNodes())
	}
	// The grid is centred: its bounding box center is near 'center'.
	var box geo.BBox
	for i := 0; i < n.NumNodes(); i++ {
		box.Extend(n.Node(i))
	}
	if d := geo.Distance(box.Center(), center); d > 5 {
		t.Errorf("grid center off by %v m", d)
	}
	if w := box.WidthMeters(); math.Abs(w-6*200) > 5 {
		t.Errorf("grid width = %v, want 1200", w)
	}
}

func TestNearest(t *testing.T) {
	n, err := NewGrid(center, 3, 3, 500)
	if err != nil {
		t.Fatal(err)
	}
	// The center of a 3x3 grid is its middle node.
	mid := n.Nearest(center)
	if d := geo.Distance(n.Node(mid), center); d > 1 {
		t.Fatalf("nearest to center is %v m away", d)
	}
	// A point far north-east snaps to the NE corner.
	ne := n.Nearest(geo.Offset(center, 10000, 10000))
	if d := geo.Distance(n.Node(ne), geo.Offset(center, 500, 500)); d > 1 {
		t.Fatalf("NE corner snap off by %v m", d)
	}
}

func TestRouteStraightLine(t *testing.T) {
	n, err := NewGrid(center, 5, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	from := geo.Offset(center, -400, 0) // west edge, middle row
	to := geo.Offset(center, 400, 0)    // east edge, middle row
	route, err := n.Route(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) < 2 {
		t.Fatalf("route too short: %d", len(route))
	}
	// Route length equals the grid distance (800 m straight along the row;
	// diagonals could shorten nothing here).
	var total float64
	for i := 1; i < len(route); i++ {
		total += geo.Distance(route[i-1], route[i])
	}
	if total < 799 || total > 1000 {
		t.Fatalf("route length = %v, want ~800", total)
	}
	if d := geo.Distance(route[0], from); d > 250 {
		t.Errorf("route start %v m from origin", d)
	}
	if d := geo.Distance(route[len(route)-1], to); d > 250 {
		t.Errorf("route end %v m from destination", d)
	}
}

func TestRouteShortestProperty(t *testing.T) {
	// Dijkstra route is never longer than any simple L-shaped walk.
	n, err := NewGrid(center, 6, 6, 150)
	if err != nil {
		t.Fatal(err)
	}
	from := geo.Offset(center, -375, -375)
	to := geo.Offset(center, 375, 375)
	route, err := n.Route(from, to)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := 1; i < len(route); i++ {
		total += geo.Distance(route[i-1], route[i])
	}
	manhattan := 750.0 + 750.0
	if total > manhattan+1 {
		t.Fatalf("route %v m longer than Manhattan %v m", total, manhattan)
	}
	// With diagonal avenues the diagonal route should beat Manhattan.
	if total >= manhattan {
		t.Logf("note: no diagonal advantage found (%v vs %v)", total, manhattan)
	}
}

func TestRouteDegenerate(t *testing.T) {
	n, err := NewGrid(center, 3, 3, 500)
	if err != nil {
		t.Fatal(err)
	}
	route, err := n.Route(center, geo.Offset(center, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 1 {
		t.Fatalf("same-node route = %d points, want 1", len(route))
	}
}

func TestRouteAllPairsReachable(t *testing.T) {
	n, err := NewGrid(center, 4, 4, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n.NumNodes(); i++ {
		for j := 0; j < n.NumNodes(); j++ {
			if _, err := n.Route(n.Node(i), n.Node(j)); err != nil {
				t.Fatalf("route %d->%d failed: %v", i, j, err)
			}
		}
	}
}

func BenchmarkRoute(b *testing.B) {
	n, err := NewGrid(center, 20, 20, 200)
	if err != nil {
		b.Fatal(err)
	}
	from := geo.Offset(center, -1900, -1900)
	to := geo.Offset(center, 1900, 1900)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Route(from, to); err != nil {
			b.Fatal(err)
		}
	}
}

// Package roadnet provides a synthetic road network substrate: a
// Manhattan-style grid with diagonal avenues, Dijkstra shortest-path
// routing, and helpers to route trips along shared streets.
//
// Its purpose in the reproduction: the plain commuter generator routes
// each trip on its own jittered line, so almost all natural mix-zones
// come from *venue co-location*. Real cities funnel traffic through
// shared roads, producing *kinetic crossings* — the zone type where
// trajectory swapping has to beat a velocity-predicting tracker. The
// road-based workload (synth.RoadCommuters) exercises exactly that
// regime; E15 compares the two.
package roadnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"mobipriv/internal/geo"
)

// Network is an undirected road graph embedded in the plane.
//
// Build one with NewGrid; it is immutable afterwards and safe for
// concurrent routing.
type Network struct {
	nodes []geo.Point
	adj   [][]edge // adjacency list
}

type edge struct {
	to   int
	dist float64
}

// NewGrid builds a rows×cols street grid centred at center with the
// given block size in meters, plus the two main diagonals as avenues
// (they create funnel points where many routes cross).
func NewGrid(center geo.Point, rows, cols int, blockSize float64) (*Network, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("roadnet: need at least a 2x2 grid, got %dx%d", rows, cols)
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("roadnet: block size %v must be positive", blockSize)
	}
	n := &Network{nodes: make([]geo.Point, rows*cols)}
	n.adj = make([][]edge, rows*cols)
	// Node layout: row-major, origin at the grid's south-west corner.
	west := -float64(cols-1) / 2 * blockSize
	south := -float64(rows-1) / 2 * blockSize
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			n.nodes[r*cols+c] = geo.Offset(center, west+float64(c)*blockSize, south+float64(r)*blockSize)
		}
	}
	connect := func(a, b int) {
		d := geo.Distance(n.nodes[a], n.nodes[b])
		n.adj[a] = append(n.adj[a], edge{to: b, dist: d})
		n.adj[b] = append(n.adj[b], edge{to: a, dist: d})
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			if c+1 < cols {
				connect(id, id+1)
			}
			if r+1 < rows {
				connect(id, id+cols)
			}
			// Diagonal avenues through the center.
			if r+1 < rows && c+1 < cols && (r == c || r+c == rows-1) {
				connect(id, (r+1)*cols+c+1)
			}
			if r+1 < rows && c > 0 && (r+c == cols-1 || r == c) {
				connect(id, (r+1)*cols+c-1)
			}
		}
	}
	return n, nil
}

// NumNodes returns the number of intersections.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Node returns the position of intersection i.
func (n *Network) Node(i int) geo.Point { return n.nodes[i] }

// Nearest returns the intersection closest to p.
func (n *Network) Nearest(p geo.Point) int {
	best, bestD := 0, math.Inf(1)
	for i, q := range n.nodes {
		if d := geo.FastDistance(p, q); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// ErrNoRoute reports a disconnected origin/destination pair (cannot
// happen on grids built by NewGrid, but Route guards anyway).
var ErrNoRoute = errors.New("roadnet: no route")

// Route returns the shortest path between the intersections nearest to
// from and to, as a polyline of node positions starting at from's
// nearest node and ending at to's nearest node.
func (n *Network) Route(from, to geo.Point) ([]geo.Point, error) {
	src := n.Nearest(from)
	dst := n.Nearest(to)
	if src == dst {
		return []geo.Point{n.nodes[src]}, nil
	}
	const unvisited = -1
	prev := make([]int, len(n.nodes))
	dist := make([]float64, len(n.nodes))
	for i := range prev {
		prev[i] = unvisited
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &nodeQueue{{id: src, dist: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeItem)
		if cur.id == dst {
			break
		}
		if cur.dist > dist[cur.id] {
			continue // stale entry
		}
		for _, e := range n.adj[cur.id] {
			if nd := cur.dist + e.dist; nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = cur.id
				heap.Push(pq, nodeItem{id: e.to, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, ErrNoRoute
	}
	// Reconstruct.
	var rev []int
	for at := dst; at != src; at = prev[at] {
		rev = append(rev, at)
	}
	rev = append(rev, src)
	out := make([]geo.Point, len(rev))
	for i := range rev {
		out[i] = n.nodes[rev[len(rev)-1-i]]
	}
	return out, nil
}

// nodeItem / nodeQueue implement container/heap for Dijkstra.
type nodeItem struct {
	id   int
	dist float64
}

type nodeQueue []nodeItem

func (q nodeQueue) Len() int           { return len(q) }
func (q nodeQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nodeQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)        { *q = append(*q, x.(nodeItem)) }
func (q *nodeQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

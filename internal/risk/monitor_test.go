package risk

import (
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
)

// dwell emits n jittered observations around center starting at start,
// one every step.
func dwell(center geo.Point, start time.Time, n int, step time.Duration) []trace.Point {
	pts := make([]trace.Point, n)
	for i := range pts {
		p := geo.Destination(center, float64(i*67%360), float64(i%5)*4)
		pts[i] = trace.Point{Point: p, Time: start.Add(time.Duration(i) * step)}
	}
	return pts
}

func TestMonitorFlagsRecurrentPOI(t *testing.T) {
	m, err := NewMonitor(DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	home := geo.Point{Lat: 45.76, Lng: 4.83}

	// Day 1: a 10-minute dwell at home. One day is not enough.
	m.Observe("u1", dwell(home, t0, 20, 30*time.Second)...)
	m.EndTrace("u1")
	r, ok := m.User("u1")
	if !ok {
		t.Fatal("user u1 not tracked")
	}
	if r.Flagged {
		t.Errorf("flagged after a single day: %+v", r)
	}
	if r.Stays == 0 {
		t.Errorf("day-1 dwell produced no stay: %+v", r)
	}

	// Day 2: the same place again. Now the POI is stable.
	m.Observe("u1", dwell(home, t0.Add(24*time.Hour), 20, 30*time.Second)...)
	m.EndTrace("u1")
	r, _ = m.User("u1")
	if !r.Flagged {
		t.Errorf("not flagged after recurrence on 2 days: %+v", r)
	}
	if r.TopPOI == nil {
		t.Fatal("flagged user has no top POI")
	}
	if d := geo.FastDistance(geo.Point{Lat: r.TopPOI.Lat, Lng: r.TopPOI.Lng}, home); d > 50 {
		t.Errorf("top POI %v is %0.f m from the true home", r.TopPOI, d)
	}

	users, flagged := m.Counts()
	if users != 1 || flagged != 1 {
		t.Errorf("Counts() = (%d, %d), want (1, 1)", users, flagged)
	}

	// Reset clears the flag.
	if !m.Reset("u1") {
		t.Error("Reset(u1) reported missing user")
	}
	if _, ok := m.User("u1"); ok {
		t.Error("user survived Reset")
	}
}

func TestMonitorDistinctPlacesStayUnflagged(t *testing.T) {
	m, err := NewMonitor(DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := geo.Point{Lat: 45.76, Lng: 4.83}
	// A different dwell location every day: no recurrence anywhere.
	for day := 0; day < 4; day++ {
		spot := geo.Destination(base, float64(day*90), float64(1000*(day+1)))
		m.Observe("u2", dwell(spot, t0.Add(time.Duration(day)*24*time.Hour), 20, 30*time.Second)...)
		m.EndTrace("u2")
	}
	r, _ := m.User("u2")
	if r.Flagged {
		t.Errorf("distinct daily places should not flag: %+v", r)
	}
	if r.POIs < 4 {
		t.Errorf("expected 4 clusters, got %+v", r)
	}
}

func TestMonitorBoundsClusters(t *testing.T) {
	cfg := DefaultMonitorConfig()
	cfg.MaxPOIs = 3
	m, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := geo.Point{Lat: 45.76, Lng: 4.83}
	now := t0
	for i := 0; i < 10; i++ {
		spot := geo.Destination(base, float64(i*36), float64(500*(i+1)))
		m.Observe("u3", dwell(spot, now, 15, 30*time.Second)...)
		m.EndTrace("u3")
		now = now.Add(time.Hour)
	}
	r, _ := m.User("u3")
	if r.POIs > 3 {
		t.Errorf("cluster cap exceeded: %+v", r)
	}
	if r.Stays != 10 {
		t.Errorf("stay count = %d, want 10", r.Stays)
	}
}

func TestMonitorSnapshotSorted(t *testing.T) {
	m, err := NewMonitor(DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	home := geo.Point{Lat: 45.76, Lng: 4.83}
	for _, u := range []string{"zeta", "alpha", "mid"} {
		m.Observe(u, dwell(home, t0, 15, 30*time.Second)...)
		m.EndTrace(u)
	}
	snap := m.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d users, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].User >= snap[i].User {
			t.Errorf("snapshot not sorted: %q before %q", snap[i-1].User, snap[i].User)
		}
	}
	m.ResetAll()
	if users, _ := m.Counts(); users != 0 {
		t.Errorf("ResetAll left %d users", users)
	}
}

func TestMonitorConfigValidate(t *testing.T) {
	cfg := DefaultMonitorConfig()
	cfg.MinDays = 0
	if _, err := NewMonitor(cfg); err == nil {
		t.Error("expected error for MinDays 0")
	}
	cfg = DefaultMonitorConfig()
	cfg.MaxPOIs = 0
	if _, err := NewMonitor(cfg); err == nil {
		t.Error("expected error for MaxPOIs 0")
	}
	cfg = DefaultMonitorConfig()
	cfg.MaxGap = -time.Minute
	if _, err := NewMonitor(cfg); err == nil {
		t.Error("expected error for negative MaxGap")
	}
	cfg = DefaultMonitorConfig()
	cfg.MinPoints = -1
	if _, err := NewMonitor(cfg); err == nil {
		t.Error("expected error for negative MinPoints")
	}
}

// TestMonitorGapSplitsRuns pins the MaxGap contract: two points at the
// same place bracketing a long silence are NOT a stay — exactly the
// shape distance-resampled output produces around a dwell.
func TestMonitorGapSplitsRuns(t *testing.T) {
	cfg := DefaultMonitorConfig()
	cfg.MinPoints = 0 // isolate the gap rule
	m, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	home := geo.Point{Lat: 45.76, Lng: 4.83}
	m.Observe("u",
		trace.Point{Point: home, Time: t0},
		trace.Point{Point: geo.Offset(home, 5, 0), Time: t0.Add(8 * time.Hour)},
	)
	m.EndTrace("u")
	if r, _ := m.User("u"); r.Stays != 0 {
		t.Errorf("gap-bracketing pair counted as a stay: %+v", r)
	}

	// Same pair with splitting disabled IS one (degenerate) stay.
	cfg.MaxGap = 0
	m2, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2.Observe("u",
		trace.Point{Point: home, Time: t0},
		trace.Point{Point: geo.Offset(home, 5, 0), Time: t0.Add(8 * time.Hour)},
	)
	m2.EndTrace("u")
	if r, _ := m2.User("u"); r.Stays != 1 {
		t.Errorf("MaxGap=0 should accept the pair: %+v", r)
	}
}

// TestMonitorMinPointsFilters pins that sparse stays below MinPoints are
// discarded while dense dwells pass.
func TestMonitorMinPointsFilters(t *testing.T) {
	cfg := DefaultMonitorConfig()
	cfg.MinPoints = 4
	m, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	home := geo.Point{Lat: 45.76, Lng: 4.83}
	// 3 points over 10 minutes: a stay, but too sparse to count.
	m.Observe("sparse", dwell(home, t0, 3, 5*time.Minute)...)
	m.EndTrace("sparse")
	if r, _ := m.User("sparse"); r.Stays != 0 {
		t.Errorf("3-point stay should be filtered at MinPoints=4: %+v", r)
	}
	m.Observe("dense", dwell(home, t0, 20, 30*time.Second)...)
	m.EndTrace("dense")
	if r, _ := m.User("dense"); r.Stays != 1 {
		t.Errorf("dense dwell filtered: %+v", r)
	}
}

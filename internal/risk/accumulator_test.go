package risk

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/poi"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

var t0 = time.Date(2015, 6, 29, 8, 0, 0, 0, time.UTC)

// walkTrace builds a random trace mixing dwells and travel legs.
func walkTrace(t *testing.T, seed int64, n int) *trace.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pos := geo.Point{Lat: 45.76, Lng: 4.83}
	now := t0
	pts := make([]trace.Point, 0, n)
	for len(pts) < n {
		if rng.Intn(2) == 0 {
			// Dwell: jitter around pos for a random while.
			for k := rng.Intn(12) + 1; k > 0 && len(pts) < n; k-- {
				p := geo.Destination(pos, rng.Float64()*360, rng.Float64()*40)
				pts = append(pts, trace.Point{Point: p, Time: now})
				now = now.Add(time.Duration(rng.Intn(120)+30) * time.Second)
			}
		} else {
			// Travel: a few long hops.
			for k := rng.Intn(5) + 1; k > 0 && len(pts) < n; k-- {
				pos = geo.Destination(pos, rng.Float64()*360, 150+rng.Float64()*400)
				pts = append(pts, trace.Point{Point: pos, Time: now})
				now = now.Add(time.Duration(rng.Intn(90)+30) * time.Second)
			}
		}
	}
	tr, err := trace.New("walker", pts)
	if err != nil {
		t.Fatalf("trace.New: %v", err)
	}
	return tr
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	cfgs := []poi.Config{
		poi.DefaultConfig(),
		{MaxDiameter: 50, MinDuration: 5 * time.Minute},
		{MaxDiameter: 100, MinDuration: 2 * time.Minute},
		{MaxDiameter: 300, MinDuration: 20 * time.Minute},
	}
	for seed := int64(1); seed <= 20; seed++ {
		tr := walkTrace(t, seed, 400)
		for _, cfg := range cfgs {
			want, err := poi.Stays(tr, cfg)
			if err != nil {
				t.Fatalf("poi.Stays: %v", err)
			}
			acc, err := NewExactAccumulator(cfg)
			if err != nil {
				t.Fatalf("NewExactAccumulator: %v", err)
			}
			got := acc.TraceStays(tr)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d cfg %+v: streaming stays differ\n got %v\nwant %v",
					seed, cfg, got, want)
			}
			if acc.Overflows() != 0 {
				t.Errorf("seed %d: exact accumulator reported overflows", seed)
			}
		}
	}
}

func TestAccumulatorMatchesBatchOnSynth(t *testing.T) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 8
	cfg.Days = 2
	gen, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	pcfg := poi.DefaultConfig()
	for _, tr := range gen.Dataset.Traces() {
		want, err := poi.Stays(tr, pcfg)
		if err != nil {
			t.Fatalf("poi.Stays: %v", err)
		}
		acc, err := NewExactAccumulator(pcfg)
		if err != nil {
			t.Fatalf("NewExactAccumulator: %v", err)
		}
		if got := acc.TraceStays(tr); !reflect.DeepEqual(got, want) {
			t.Errorf("user %s: streaming stays differ from batch (%d vs %d)",
				tr.User, len(got), len(want))
		}
	}
}

func TestAccumulatorReusableAcrossTraces(t *testing.T) {
	cfg := poi.DefaultConfig()
	acc, err := NewExactAccumulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(30); seed < 33; seed++ {
		tr := walkTrace(t, seed, 200)
		want, _ := poi.Stays(tr, cfg)
		if got := acc.TraceStays(tr); !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: reused accumulator diverged from batch", seed)
		}
	}
}

func TestAccumulatorCapOverflow(t *testing.T) {
	// Sub-second sampling against a long MinDuration forces the pending
	// buffer past a tiny cap.
	cfg := poi.Config{MaxDiameter: 200, MinDuration: time.Hour}
	acc, err := NewAccumulator(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := geo.Point{Lat: 45.76, Lng: 4.83}
	for i := 0; i < 100; i++ {
		p := trace.Point{Point: base, Time: t0.Add(time.Duration(i) * time.Second)}
		if _, ok := acc.Push(p); ok {
			t.Fatal("no stay should complete below MinDuration")
		}
	}
	if acc.Overflows() == 0 {
		t.Error("expected pending-buffer overflows with cap 4")
	}
	if len(acc.pending) > 4 {
		t.Errorf("pending grew to %d despite cap 4", len(acc.pending))
	}
}

func TestNewAccumulatorValidates(t *testing.T) {
	if _, err := NewAccumulator(poi.Config{}, 0); err == nil {
		t.Error("expected error for zero config")
	}
	if _, err := NewAccumulator(poi.Config{MaxDiameter: 10, MinDuration: time.Minute, MergeRadius: -1}, 0); err == nil {
		t.Error("expected error for negative MergeRadius")
	}
}

// FuzzAccumulator checks the incremental detector against the batch
// detector on arbitrary inputs: no panics ever, and — when the pending
// buffer never overflowed — stays identical to poi.Stays.
func FuzzAccumulator(f *testing.F) {
	f.Add(int64(1), uint8(50), uint8(20))
	f.Add(int64(7), uint8(3), uint8(90))
	f.Add(int64(42), uint8(255), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, n, cap8 uint8) {
		rng := rand.New(rand.NewSource(seed))
		cfg := poi.Config{
			MaxDiameter: 20 + rng.Float64()*300,
			MinDuration: time.Duration(1+rng.Intn(600)) * time.Second,
		}
		pts := make([]trace.Point, 0, int(n))
		pos := geo.Point{Lat: 45.76, Lng: 4.83}
		now := t0
		for i := 0; i < int(n); i++ {
			pos = geo.Destination(pos, rng.Float64()*360, rng.Float64()*float64(rng.Intn(400)))
			now = now.Add(time.Duration(rng.Intn(300)) * time.Second)
			pts = append(pts, trace.Point{Point: pos, Time: now})
		}

		exact, err := NewExactAccumulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got []poi.Stay
		for _, p := range pts {
			if s, ok := exact.Push(p); ok {
				got = append(got, s)
			}
		}
		if s, ok := exact.Flush(); ok {
			got = append(got, s)
		}

		var want []poi.Stay
		if len(pts) > 0 {
			// Times may repeat (rng.Intn(300) can be 0); the batch loop
			// itself has no strictly-increasing requirement, so feed it
			// directly rather than through trace.New.
			want, err = poi.Stays(&trace.Trace{User: "f", Points: pts}, cfg)
			if err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("uncapped streaming stays diverge from batch:\n got %v\nwant %v", got, want)
		}

		// Capped detector: must not panic, must respect the cap, and
		// must be exact whenever it never overflowed.
		capped, err := NewAccumulator(cfg, int(cap8)+1)
		if err != nil {
			t.Fatal(err)
		}
		var cgot []poi.Stay
		for _, p := range pts {
			if s, ok := capped.Push(p); ok {
				cgot = append(cgot, s)
			}
		}
		if s, ok := capped.Flush(); ok {
			cgot = append(cgot, s)
		}
		if capped.Overflows() == 0 && !reflect.DeepEqual(cgot, want) {
			t.Fatalf("capped detector diverged without overflowing")
		}
		for _, s := range cgot {
			if s.Count <= 0 || s.Leave.Before(s.Enter) {
				t.Fatalf("capped detector emitted malformed stay %+v", s)
			}
		}
	})
}

func BenchmarkRiskStream(b *testing.B) {
	tr := func() *trace.Trace {
		rng := rand.New(rand.NewSource(9))
		pos := geo.Point{Lat: 45.76, Lng: 4.83}
		now := t0
		pts := make([]trace.Point, 100_000)
		for i := range pts {
			pos = geo.Destination(pos, rng.Float64()*360, rng.Float64()*120)
			now = now.Add(30 * time.Second)
			pts[i] = trace.Point{Point: pos, Time: now}
		}
		return &trace.Trace{User: "bench", Points: pts}
	}()
	cfg := DefaultMonitorConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, err := NewAccumulator(cfg.Stay, cfg.MaxPending)
		if err != nil {
			b.Fatal(err)
		}
		stays := 0
		for _, p := range tr.Points {
			if _, ok := acc.Push(p); ok {
				stays++
			}
		}
		acc.Flush()
	}
	b.ReportMetric(float64(len(tr.Points))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

package risk

import (
	"fmt"
	"sort"

	"mobipriv/internal/geo"
	"mobipriv/internal/poi"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

// Score is a precision/recall/F1 triple with raw counts.
type Score struct {
	Precision float64
	Recall    float64
	F1        float64
	Truth     int // number of ground-truth POIs
	Extracted int // number of POIs the attack produced
	Matched   int
}

func newScore(truth, extracted, matched int) Score {
	s := Score{Truth: truth, Extracted: extracted, Matched: matched}
	if extracted > 0 {
		s.Precision = float64(matched) / float64(extracted)
	}
	if truth > 0 {
		s.Recall = float64(matched) / float64(truth)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

// String implements fmt.Stringer.
func (s Score) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (truth=%d extracted=%d matched=%d)",
		s.Precision, s.Recall, s.F1, s.Truth, s.Extracted, s.Matched)
}

// Result bundles the two scorings of one attack run.
//
//   - PerUser: extracted POIs of published identity u are matched against
//     the true POIs of original user u. Meaningful for mechanisms that
//     keep identities aligned (raw, speed smoothing, Geo-I, Wait4Me).
//   - Global: all extracted POI locations (any identity) are matched
//     against all true POI locations. Measures place disclosure
//     regardless of identity, and stays meaningful after swapping.
type Result struct {
	PerUser Score
	Global  Score
}

// AttackConfig parameterizes the POI-retrieval attack.
type AttackConfig struct {
	// POI is the extraction configuration the adversary uses.
	POI poi.Config
	// MatchRadius is the distance in meters within which an extracted
	// POI counts as having retrieved a true POI.
	MatchRadius float64
}

// DefaultAttackConfig returns the attack settings used across the
// experiments.
func DefaultAttackConfig() AttackConfig {
	return AttackConfig{POI: poi.DefaultConfig(), MatchRadius: 250}
}

func (c AttackConfig) validate() error {
	if err := c.POI.Validate(); err != nil {
		return err
	}
	if c.MatchRadius <= 0 {
		return fmt.Errorf("MatchRadius %v must be positive", c.MatchRadius)
	}
	return nil
}

// TruthPOIs clusters the generator's ground-truth stays into per-user
// POI location lists (stays at the same place merge, mirroring what the
// extraction pipeline produces on raw data).
func TruthPOIs(stays []synth.Stay, mergeRadius float64) map[string][]geo.Point {
	byUser := make(map[string][]poi.Stay)
	for _, s := range stays {
		byUser[s.User] = append(byUser[s.User], poi.Stay{
			Center: s.Center, Enter: s.Enter, Leave: s.Leave,
		})
	}
	out := make(map[string][]geo.Point, len(byUser))
	for u, ss := range byUser {
		for _, p := range poi.Cluster(ss, mergeRadius) {
			out[u] = append(out[u], p.Center)
		}
	}
	return out
}

// AttackAcc scores the POI-retrieval attack one published trace at a
// time, with no dataset in memory: each trace runs through an exact
// streaming stay detector, the stays cluster into that user's POIs, and
// only the POI centers (a handful per user) are retained for scoring.
//
// AttackAcc obeys the internal/metrics accumulator contract: feed every
// trace to one accumulator, or shard the traces across several and
// Merge them in any order — Result is identical. The zero value is not
// usable; construct with NewAttackAcc.
type AttackAcc struct {
	cfg       AttackConfig
	truth     map[string][]geo.Point
	extracted map[string][]geo.Point
}

// NewAttackAcc returns an accumulator scoring extractions against the
// given ground-truth POI locations (see TruthPOIs). The truth map is
// shared, not copied; callers must not mutate it while the accumulator
// is live.
func NewAttackAcc(truth map[string][]geo.Point, cfg AttackConfig) (*AttackAcc, error) {
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("risk: attack: %w", err)
	}
	return &AttackAcc{
		cfg:       cfg,
		truth:     truth,
		extracted: make(map[string][]geo.Point),
	}, nil
}

// AddTrace extracts the POIs of one published trace and records their
// centers under the trace's user. Each user's whole trace must go to a
// single accumulator (traces are the unit of sharding, as in
// store.ScanTraces).
func (a *AttackAcc) AddTrace(tr *trace.Trace) {
	if tr == nil || tr.Len() == 0 {
		return
	}
	acc, err := NewExactAccumulator(a.cfg.POI)
	if err != nil {
		// cfg was validated at construction; unreachable.
		panic(err)
	}
	stays := acc.TraceStays(tr)
	pois := poi.Cluster(stays, a.cfg.POI.EffectiveMergeRadius())
	if len(pois) == 0 {
		return
	}
	centers := make([]geo.Point, len(pois))
	for i, p := range pois {
		centers[i] = p.Center
	}
	a.extracted[tr.User] = append(a.extracted[tr.User], centers...)
}

// Merge folds the extractions of b into a. b must not be used after.
func (a *AttackAcc) Merge(b *AttackAcc) {
	if b == nil {
		return
	}
	for u, pts := range b.extracted {
		a.extracted[u] = append(a.extracted[u], pts...)
	}
}

// Result scores the accumulated extractions against the ground truth.
// The pooled point lists are assembled in sorted-user order and each
// user's centers are sorted by position, so the result is deterministic
// and invariant under merge order.
func (a *AttackAcc) Result() Result {
	extracted := make(map[string][]geo.Point, len(a.extracted))
	for u, pts := range a.extracted {
		cp := append([]geo.Point(nil), pts...)
		sortPoints(cp)
		extracted[u] = cp
	}

	var res Result
	// Per-user scoring.
	var tTruth, tExtr, tMatch int
	for _, u := range sortedKeys(a.truth) {
		truePts := a.truth[u]
		m := matchCount(truePts, extracted[u], a.cfg.MatchRadius)
		tTruth += len(truePts)
		tExtr += len(extracted[u])
		tMatch += m
	}
	// Extracted POIs of identities with no ground truth still count as
	// false positives in the per-user view.
	for u, ps := range extracted {
		if _, known := a.truth[u]; !known {
			tExtr += len(ps)
		}
	}
	res.PerUser = newScore(tTruth, tExtr, tMatch)

	// Global scoring: locations only.
	var allTruth, allExtr []geo.Point
	for _, u := range sortedKeys(a.truth) {
		allTruth = append(allTruth, a.truth[u]...)
	}
	for _, u := range sortedKeys(extracted) {
		allExtr = append(allExtr, extracted[u]...)
	}
	res.Global = newScore(len(allTruth), len(allExtr), matchCount(allTruth, allExtr, a.cfg.MatchRadius))
	return res
}

// matchCount greedily matches extracted points to truth points within
// radius, each point used at most once, closest pairs first. Greedy
// matching on sorted distances is optimal for counting matches in this
// bipartite threshold setting in all but adversarial geometries, and is
// deterministic.
func matchCount(truth, extracted []geo.Point, radius float64) int {
	type pair struct {
		t, e int
		d    float64
	}
	var pairs []pair
	for ti, tp := range truth {
		for ei, ep := range extracted {
			if d := geo.FastDistance(tp, ep); d <= radius {
				pairs = append(pairs, pair{t: ti, e: ei, d: d})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].d != pairs[j].d {
			return pairs[i].d < pairs[j].d
		}
		if pairs[i].t != pairs[j].t {
			return pairs[i].t < pairs[j].t
		}
		return pairs[i].e < pairs[j].e
	})
	usedT := make(map[int]bool)
	usedE := make(map[int]bool)
	matched := 0
	for _, p := range pairs {
		if usedT[p.t] || usedE[p.e] {
			continue
		}
		usedT[p.t] = true
		usedE[p.e] = true
		matched++
	}
	return matched
}

func sortedKeys(m map[string][]geo.Point) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortPoints(pts []geo.Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Lat != pts[j].Lat {
			return pts[i].Lat < pts[j].Lat
		}
		return pts[i].Lng < pts[j].Lng
	})
}

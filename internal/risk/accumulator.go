package risk

import (
	"fmt"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/poi"
	"mobipriv/internal/trace"
)

// DefaultMaxPending is the candidate-run buffer cap used when a caller
// passes maxPending <= 0 to NewAccumulator and by DefaultMonitorConfig.
// At 1 Hz sampling it covers a run of more than half an hour before the
// detector sheds state, far beyond any MinDuration in use.
const DefaultMaxPending = 2048

// Accumulator is the incremental stay-point detector: the streaming
// form of poi.Stays. Points enter through Push in time order; a stay is
// returned the moment its run breaks, and Flush drains the run still
// open at end of stream.
//
// State is bounded. A candidate run whose span is still below
// MinDuration is buffered point-by-point (at most MaxPending points);
// the moment the span reaches MinDuration the run is guaranteed to be
// emitted whenever it breaks, so the buffer is compacted into an O(1)
// summary (anchor, centroid accumulator, boundaries). If the pending
// buffer overflows — possible only with sub-second sampling or a huge
// MinDuration — the buffered points are dropped, the newest point is
// kept, and Overflows is incremented; stays whose run never overflowed
// are still exact.
//
// With an unbounded buffer (see NewExactAccumulator) the sequence of
// stays is bit-identical to poi.Stays on the same points: same
// centroids (geo.CentroidAcc folds the observations in the same order),
// same Enter/Leave/Count.
//
// An Accumulator is not safe for concurrent use.
type Accumulator struct {
	cfg        poi.Config
	maxPending int // 0 = unbounded

	pending   []trace.Point // candidate run: all within MaxDiameter of pending[0], span < MinDuration
	run       *runSummary   // compacted run with span >= MinDuration, emission guaranteed
	overflows int
}

// runSummary is the O(1) compaction of a run that already spans
// MinDuration: it can only grow or be emitted, never be re-anchored, so
// the individual points are no longer needed.
type runSummary struct {
	anchor      geo.Point
	enter, last time.Time
	acc         geo.CentroidAcc
}

// NewAccumulator returns a detector for the given stay configuration
// with the pending buffer capped at maxPending points (<= 0 selects
// DefaultMaxPending).
func NewAccumulator(cfg poi.Config, maxPending int) (*Accumulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("risk: %w", err)
	}
	if maxPending <= 0 {
		maxPending = DefaultMaxPending
	}
	return &Accumulator{cfg: cfg, maxPending: maxPending}, nil
}

// NewExactAccumulator returns a detector with an unbounded pending
// buffer: its output is exactly that of poi.Stays. The attack path uses
// it (traces are visited one at a time, so the buffer is transient);
// long-lived per-user monitors should cap the buffer instead.
func NewExactAccumulator(cfg poi.Config) (*Accumulator, error) {
	a, err := NewAccumulator(cfg, 1)
	if err != nil {
		return nil, err
	}
	a.maxPending = 0
	return a, nil
}

// Overflows returns how many times the pending buffer overflowed and
// shed state. Zero means every returned stay is exact.
func (a *Accumulator) Overflows() int { return a.overflows }

// Reset discards all detector state.
func (a *Accumulator) Reset() {
	a.pending = a.pending[:0]
	a.run = nil
}

// Push feeds the next observation and returns the stay completed by it,
// if any. Points must arrive in non-decreasing time order for the
// batch-equivalence guarantee to hold; out-of-order points are
// tolerated (no panic) but detection quality degrades.
func (a *Accumulator) Push(p trace.Point) (poi.Stay, bool) {
	if a.run != nil {
		if geo.FastDistance(a.run.anchor, p.Point) <= a.cfg.MaxDiameter {
			a.run.acc.Add(p.Point)
			a.run.last = p.Time
			return poi.Stay{}, false
		}
		stay := a.emitRun()
		a.pending = append(a.pending[:0], p)
		return stay, true
	}
	if len(a.pending) == 0 {
		a.pending = append(a.pending, p)
		return poi.Stay{}, false
	}
	if geo.FastDistance(a.pending[0].Point, p.Point) <= a.cfg.MaxDiameter {
		a.append(p)
		return poi.Stay{}, false
	}
	// The run broke while still below MinDuration: mirror the batch
	// algorithm's anchor slide (i++). Every sub-run of the buffer spans
	// less than MinDuration, so no stay can be emitted here; we only
	// need the longest suffix that forms a run absorbing p.
	a.slide(p)
	return poi.Stay{}, false
}

// Flush drains the detector at end of stream: the compacted run, if
// one is open, is emitted (the batch detector emits it too — the run
// breaks at end of input with span >= MinDuration). A pending buffer
// spans less than MinDuration by invariant and yields nothing. The
// detector is reset and ready for the next stream.
func (a *Accumulator) Flush() (poi.Stay, bool) {
	if a.run != nil {
		return a.emitRun(), true
	}
	a.pending = a.pending[:0]
	return poi.Stay{}, false
}

// append adds p to the pending run and compacts to a summary once the
// span reaches MinDuration (emission is then guaranteed).
func (a *Accumulator) append(p trace.Point) {
	a.pending = append(a.pending, p)
	if p.Time.Sub(a.pending[0].Time) >= a.cfg.MinDuration {
		a.compact()
		return
	}
	if a.maxPending > 0 && len(a.pending) > a.maxPending {
		a.overflows++
		a.pending = append(a.pending[:0], p)
	}
}

// compact folds the pending buffer into the O(1) run summary.
func (a *Accumulator) compact() {
	r := &runSummary{
		anchor: a.pending[0].Point,
		enter:  a.pending[0].Time,
		last:   a.pending[len(a.pending)-1].Time,
	}
	for _, q := range a.pending {
		r.acc.Add(q.Point)
	}
	a.run = r
	a.pending = a.pending[:0]
}

// emitRun converts the open run summary into its stay and clears it.
func (a *Accumulator) emitRun() poi.Stay {
	center, _ := a.run.acc.Result()
	stay := poi.Stay{
		Center: center,
		Enter:  a.run.enter,
		Leave:  a.run.last,
		Count:  a.run.acc.N(),
	}
	a.run = nil
	return stay
}

// slide advances the anchor one point at a time — exactly the batch
// algorithm's i++ — until the remaining suffix plus p forms a run from
// the new anchor, or the buffer empties and p starts a fresh run.
func (a *Accumulator) slide(p trace.Point) {
	for len(a.pending) > 0 {
		a.pending = a.pending[1:]
		if len(a.pending) == 0 {
			break
		}
		anchor := a.pending[0].Point
		ok := geo.FastDistance(anchor, p.Point) <= a.cfg.MaxDiameter
		for _, q := range a.pending[1:] {
			if !ok {
				break
			}
			ok = geo.FastDistance(anchor, q.Point) <= a.cfg.MaxDiameter
		}
		if ok {
			a.append(p)
			return
		}
	}
	a.pending = append(a.pending[:0], p)
}

// TraceStays runs the detector over a whole trace and returns its
// stays; with an exact accumulator this equals poi.Stays(tr, cfg).
func (a *Accumulator) TraceStays(tr *trace.Trace) []poi.Stay {
	if tr == nil {
		return nil
	}
	var out []poi.Stay
	for _, p := range tr.Points {
		if s, ok := a.Push(p); ok {
			out = append(out, s)
		}
	}
	if s, ok := a.Flush(); ok {
		out = append(out, s)
	}
	return out
}

package risk

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/synth"
)

func commuterFixture(t *testing.T) *synth.Generated {
	t.Helper()
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 12
	cfg.Sampling = 2 * time.Minute
	gen, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	return gen
}

func TestAttackAccMergeOrderInvariance(t *testing.T) {
	gen := commuterFixture(t)
	cfg := DefaultAttackConfig()
	truth := TruthPOIs(gen.Stays, cfg.MatchRadius)
	traces := gen.Dataset.Traces()

	single, err := NewAttackAcc(truth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		single.AddTrace(tr)
	}
	want := single.Result()

	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		parts := make([]*AttackAcc, 4)
		for i := range parts {
			if parts[i], err = NewAttackAcc(truth, cfg); err != nil {
				t.Fatal(err)
			}
		}
		for _, tr := range traces {
			parts[rng.Intn(len(parts))].AddTrace(tr)
		}
		rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
		root := parts[0]
		for _, p := range parts[1:] {
			root.Merge(p)
		}
		if got := root.Result(); !reflect.DeepEqual(got, want) {
			t.Errorf("trial %d: merged result differs\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

func TestAttackAccScoresRawHighly(t *testing.T) {
	gen := commuterFixture(t)
	cfg := DefaultAttackConfig()
	acc, err := NewAttackAcc(TruthPOIs(gen.Stays, cfg.MatchRadius), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range gen.Dataset.Traces() {
		acc.AddTrace(tr)
	}
	res := acc.Result()
	if res.PerUser.F1 < 0.5 {
		t.Errorf("raw data should be highly attackable, got per-user %v", res.PerUser)
	}
	if res.Global.Recall < res.PerUser.Recall {
		t.Errorf("global recall %v should be at least per-user recall %v",
			res.Global.Recall, res.PerUser.Recall)
	}
}

func TestAttackAccIgnoresNilAndEmpty(t *testing.T) {
	cfg := DefaultAttackConfig()
	acc, err := NewAttackAcc(map[string][]geo.Point{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc.AddTrace(nil)
	acc.Merge(nil)
	res := acc.Result()
	if res.PerUser.Extracted != 0 || res.Global.Extracted != 0 {
		t.Errorf("empty accumulator extracted something: %+v", res)
	}
}

func TestMatchCountOneToOne(t *testing.T) {
	base := geo.Point{Lat: 45.76, Lng: 4.83}
	truth := []geo.Point{base, geo.Destination(base, 90, 1000)}
	// Two extracted POIs both near the first truth point: only one match.
	extracted := []geo.Point{geo.Offset(base, 10, 0), geo.Offset(base, -10, 0)}
	if got := matchCount(truth, extracted, 250); got != 1 {
		t.Fatalf("matchCount = %d, want 1 (one-to-one)", got)
	}
	// Perfect pairing.
	extracted = []geo.Point{geo.Offset(base, 10, 0), geo.Offset(geo.Destination(base, 90, 1000), 5, 5)}
	if got := matchCount(truth, extracted, 250); got != 2 {
		t.Fatalf("matchCount = %d, want 2", got)
	}
	// Nothing in range.
	extracted = []geo.Point{geo.Destination(base, 0, 5000)}
	if got := matchCount(truth, extracted, 250); got != 0 {
		t.Fatalf("matchCount = %d, want 0", got)
	}
}

func TestScoreString(t *testing.T) {
	s := newScore(10, 8, 6)
	if s.Precision != 0.75 || s.Recall != 0.6 {
		t.Fatalf("score = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	// Degenerate: no truth, no extraction.
	z := newScore(0, 0, 0)
	if z.Precision != 0 || z.Recall != 0 || z.F1 != 0 {
		t.Fatalf("zero score = %+v", z)
	}
}

func TestNewAttackAccValidates(t *testing.T) {
	cfg := DefaultAttackConfig()
	cfg.MatchRadius = 0
	if _, err := NewAttackAcc(nil, cfg); err == nil {
		t.Error("expected error for zero MatchRadius")
	}
	cfg = DefaultAttackConfig()
	cfg.POI.MaxDiameter = -1
	if _, err := NewAttackAcc(nil, cfg); err == nil {
		t.Error("expected error for invalid POI config")
	}
}

// Package risk turns the POI-retrieval attack of Gambs et al. into a
// streaming primitive with two faces sharing one core.
//
// The core is Accumulator, an online stay-point detector: points are
// Pushed one at a time and stays fall out as soon as their run breaks,
// with bounded per-user state (a candidate-run buffer capped at
// MaxPending plus one O(1) compacted run summary). Uncapped, the
// emitted stays are bit-identical to the batch detector poi.Stays —
// same centroids, same boundaries — which is what lets the offline
// attack move off the in-RAM dataset path.
//
// The first face is AttackAcc, a mergeable scorer of POI retrieval
// (precision/recall/F1 against ground-truth stays) under the same
// Add/Merge commutation contract as internal/metrics: feeding traces to
// one accumulator or sharding them across many and merging produces the
// same Result. metrics.EvalStore rides it over store.ScanTracesPaired,
// so `mobieval -stays` now scores the attack store-natively with flat
// memory.
//
// The second face is Monitor, the live guardrail: mobiserve runs one
// detector per user over the anonymized output stream and flags users
// whose published points still exhibit a stable POI — a cluster
// centroid recurring on at least MinDays distinct days within the merge
// radius. Per-user state stays bounded (capped pending buffer, at most
// MaxPOIs cluster centroids, day sets capped at MinDays).
package risk

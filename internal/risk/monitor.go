package risk

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/obs"
	otrace "mobipriv/internal/obs/trace"
	"mobipriv/internal/poi"
	"mobipriv/internal/trace"
)

// MonitorConfig parameterizes the live risk monitor.
type MonitorConfig struct {
	// Stay is the detector configuration run on the published stream.
	// The default is deliberately tighter than the offline attack's
	// 200 m: a 50 m dwell disk catches raw GPS jitter around a home or
	// workplace but stays below promesse's 100 m spacing, so properly
	// smoothed output forms no runs at all.
	Stay poi.Config
	// MinDays is the number of distinct UTC days a cluster must recur
	// on before the user is flagged. Must be at least 1.
	MinDays int
	// MaxPOIs caps the cluster centroids kept per user; beyond it the
	// weakest unflagged cluster is evicted. Must be at least 1.
	MaxPOIs int
	// MaxPending caps the detector's candidate-run buffer (<= 0 selects
	// DefaultMaxPending).
	MaxPending int
	// MaxGap splits the stream when consecutive published points are
	// further apart in time: the open detector run is drained and a
	// fresh one starts. Without it, two isolated points bracketing a
	// long silence (promesse publishes exactly that around a dwell)
	// would read as one continuous multi-hour stay. Zero disables
	// splitting; negative is invalid.
	MaxGap time.Duration
	// MinPoints is the least number of points a detected stay needs to
	// count as evidence. A genuine dwell leak puts many samples inside
	// the stay disk; distance-resampled output (promesse) can drop two
	// consecutive samples within it where the route doubles back, so
	// 2-point "stays" are noise, not recurrence. Zero accepts all.
	MinPoints int
}

// DefaultMonitorConfig returns the monitoring operating point: 50 m /
// 5 min / 4-point dwells observed without gaps over 30 min, clusters
// merged within 100 m, flag on recurrence across 2 distinct days, at
// most 32 clusters per user.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		Stay:      poi.Config{MaxDiameter: 50, MinDuration: 5 * time.Minute, MergeRadius: 100},
		MinDays:   2,
		MaxPOIs:   32,
		MaxGap:    30 * time.Minute,
		MinPoints: 4,
	}
}

// Validate checks the configuration.
func (c MonitorConfig) Validate() error {
	if err := c.Stay.Validate(); err != nil {
		return err
	}
	if c.MinDays < 1 {
		return errors.New("MinDays must be at least 1")
	}
	if c.MaxPOIs < 1 {
		return errors.New("MaxPOIs must be at least 1")
	}
	if c.MaxGap < 0 {
		return errors.New("MaxGap must not be negative")
	}
	if c.MinPoints < 0 {
		return errors.New("MinPoints must not be negative")
	}
	return nil
}

// Monitor watches an anonymized output stream and flags users whose
// published points still exhibit a stable POI: a stay cluster recurring
// on at least MinDays distinct days within the merge radius. One
// detector plus at most MaxPOIs cluster centroids are kept per user, so
// state is bounded regardless of stream length.
//
// Monitor is safe for concurrent use; mobiserve calls Observe from
// every engine shard.
type Monitor struct {
	cfg MonitorConfig

	mu    sync.Mutex
	users map[string]*userMonitor

	// Lifetime totals (they survive Reset/ResetAll), for RegisterMetrics.
	nStays  atomic.Uint64 // stays absorbed into cluster evidence
	nEvicts atomic.Uint64 // clusters evicted at the MaxPOIs cap

	// tracer, when set by SetTracer, records a "risk.update" root span
	// per Observe batch. Atomic so attaching never races the shard
	// goroutines calling Observe; nil (the default) costs one load.
	tracer atomic.Pointer[otrace.Tracer]
}

// userMonitor is the per-user state: the streaming detector and the
// online clusters its stays fold into.
type userMonitor struct {
	acc      *Accumulator
	last     time.Time // time of the newest observed point, for MaxGap
	clusters []*riskCluster
	stays    int
	obsSeq   uint64 // Observe batches seen, the trace-ID derivation sequence
}

// riskCluster is one online POI cluster: a duration-weighted running
// centroid (mirroring poi.aggregate, anchored at the first stay's
// center) plus the recurrence evidence.
type riskCluster struct {
	pr           *geo.Projector
	wx, wy, wsum float64
	center       geo.Point
	visits       int
	total        time.Duration
	days         map[string]struct{} // distinct UTC days, capped at MinDays
}

// NewMonitor returns a monitor with the given configuration.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("risk: monitor: %w", err)
	}
	return &Monitor{cfg: cfg, users: make(map[string]*userMonitor)}, nil
}

// Config returns the monitor's configuration.
func (m *Monitor) Config() MonitorConfig { return m.cfg }

// SetTracer attaches a tracer: each subsequent Observe batch becomes a
// "risk.update" root span whose trace ID derives from (user, per-user
// sequence), so a deterministic replay samples the identical updates.
// Safe to call at any time; nil detaches.
func (m *Monitor) SetTracer(t *otrace.Tracer) { m.tracer.Store(t) }

// Observe feeds published points of one user, in stream order.
func (m *Monitor) Observe(user string, pts ...trace.Point) {
	if len(pts) == 0 {
		return
	}
	tr := m.tracer.Load()
	m.mu.Lock()
	defer m.mu.Unlock()
	um := m.userLocked(user)
	var sp *otrace.Span
	if tr != nil {
		um.obsSeq++
		sp = tr.Root("risk.update", tr.DeriveID(otrace.Key(user), um.obsSeq), 0)
	}
	before := um.stays
	for _, p := range pts {
		if m.cfg.MaxGap > 0 && !um.last.IsZero() && p.Time.Sub(um.last) > m.cfg.MaxGap {
			if s, ok := um.acc.Flush(); ok {
				m.absorbLocked(um, s)
			}
		}
		um.last = p.Time
		if s, ok := um.acc.Push(p); ok {
			m.absorbLocked(um, s)
		}
	}
	if sp != nil {
		sp.SetAttr(otrace.Int("points", int64(len(pts))),
			otrace.Int("stays", int64(um.stays-before)))
		sp.End()
	}
}

// EndTrace marks the end of the user's current stream segment (engine
// flush or eviction), draining a stay still open in the detector. The
// cluster evidence survives — recurrence across days is the point.
func (m *Monitor) EndTrace(user string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	um, ok := m.users[user]
	if !ok {
		return
	}
	if s, ok := um.acc.Flush(); ok {
		m.absorbLocked(um, s)
	}
	um.last = time.Time{}
}

func (m *Monitor) userLocked(user string) *userMonitor {
	um, ok := m.users[user]
	if !ok {
		acc, err := NewAccumulator(m.cfg.Stay, m.cfg.MaxPending)
		if err != nil {
			// cfg was validated at construction; unreachable.
			panic(err)
		}
		um = &userMonitor{acc: acc}
		m.users[user] = um
	}
	return um
}

// absorbLocked folds a detected stay into the user's clusters: nearest
// centroid within the merge radius, or a new cluster (evicting the
// weakest unflagged one at the cap).
func (m *Monitor) absorbLocked(um *userMonitor, s poi.Stay) {
	if s.Count < m.cfg.MinPoints {
		return
	}
	um.stays++
	m.nStays.Add(1)
	radius := m.cfg.Stay.EffectiveMergeRadius()
	var best *riskCluster
	bestD := radius
	for _, c := range um.clusters {
		if d := geo.FastDistance(c.center, s.Center); d <= bestD {
			best, bestD = c, d
		}
	}
	if best == nil {
		if len(um.clusters) >= m.cfg.MaxPOIs {
			m.evictLocked(um)
		}
		best = &riskCluster{pr: geo.NewProjector(s.Center), days: make(map[string]struct{})}
		um.clusters = append(um.clusters, best)
	}
	w := s.Duration().Seconds()
	if w <= 0 {
		w = 1 // zero-duration stays still count positionally
	}
	v := best.pr.ToXY(s.Center)
	best.wx += v.X * w
	best.wy += v.Y * w
	best.wsum += w
	best.center = best.pr.ToPoint(geo.XY{X: best.wx / best.wsum, Y: best.wy / best.wsum})
	best.visits++
	best.total += s.Duration()
	if len(best.days) < m.cfg.MinDays {
		best.days[s.Enter.UTC().Format("2006-01-02")] = struct{}{}
		if len(best.days) < m.cfg.MinDays {
			best.days[s.Leave.UTC().Format("2006-01-02")] = struct{}{}
		}
	}
}

// evictLocked drops the cluster with the least evidence, never
// preferring a flagged cluster over an unflagged one.
func (m *Monitor) evictLocked(um *userMonitor) {
	worst := 0
	for i, c := range um.clusters {
		w := um.clusters[worst]
		cf, wf := len(c.days) >= m.cfg.MinDays, len(w.days) >= m.cfg.MinDays
		if cf != wf {
			if !cf {
				worst = i
			}
			continue
		}
		if c.total < w.total || (c.total == w.total && c.visits < w.visits) {
			worst = i
		}
	}
	um.clusters = append(um.clusters[:worst], um.clusters[worst+1:]...)
	m.nEvicts.Add(1)
}

// RegisterMetrics publishes the monitor's state on reg under stable
// risk_* names: live user/flag gauges plus lifetime stay and eviction
// counters (which survive Reset). Safe to call at any time.
func (m *Monitor) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("risk_users",
		"Users currently holding monitor state.",
		func() float64 { u, _ := m.Counts(); return float64(u) })
	reg.GaugeFunc("risk_flagged_users",
		"Users whose published output currently shows a recurrent POI.",
		func() float64 { _, f := m.Counts(); return float64(f) })
	reg.CounterFunc("risk_stays_total",
		"Stays absorbed into cluster evidence across the monitor's lifetime.",
		func() float64 { return float64(m.nStays.Load()) })
	reg.CounterFunc("risk_poi_evictions_total",
		"Clusters evicted at the per-user MaxPOIs cap.",
		func() float64 { return float64(m.nEvicts.Load()) })
}

// RiskPOI describes one monitored cluster in a risk report.
type RiskPOI struct {
	Lat          float64 `json:"lat"`
	Lng          float64 `json:"lng"`
	Visits       int     `json:"visits"`
	Days         int     `json:"days"`
	TotalSeconds float64 `json:"total_seconds"`
}

// UserRisk is the externally visible risk state of one user.
type UserRisk struct {
	User    string `json:"user"`
	Flagged bool   `json:"flagged"`
	Stays   int    `json:"stays"`
	POIs    int    `json:"pois"`
	// MaxDays is the largest distinct-day count across the user's
	// clusters (values saturate at the configured MinDays).
	MaxDays int `json:"max_days"`
	// TopPOI is the cluster with the strongest recurrence evidence.
	TopPOI *RiskPOI `json:"top_poi,omitempty"`
}

func (m *Monitor) riskLocked(user string, um *userMonitor) UserRisk {
	r := UserRisk{User: user, Stays: um.stays, POIs: len(um.clusters)}
	var top *riskCluster
	for _, c := range um.clusters {
		if days := len(c.days); days > r.MaxDays {
			r.MaxDays = days
		}
		if top == nil || len(c.days) > len(top.days) ||
			(len(c.days) == len(top.days) && c.total > top.total) {
			top = c
		}
	}
	r.Flagged = r.MaxDays >= m.cfg.MinDays
	if top != nil {
		r.TopPOI = &RiskPOI{
			Lat:          top.center.Lat,
			Lng:          top.center.Lng,
			Visits:       top.visits,
			Days:         len(top.days),
			TotalSeconds: top.total.Seconds(),
		}
	}
	return r
}

// User returns the risk state of one user.
func (m *Monitor) User(user string) (UserRisk, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	um, ok := m.users[user]
	if !ok {
		return UserRisk{}, false
	}
	return m.riskLocked(user, um), true
}

// Snapshot returns the risk state of every observed user, sorted by
// user identifier.
func (m *Monitor) Snapshot() []UserRisk {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]UserRisk, 0, len(m.users))
	for u, um := range m.users {
		out = append(out, m.riskLocked(u, um))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// Counts returns the number of observed users and how many are flagged.
func (m *Monitor) Counts() (users, flagged int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for u, um := range m.users {
		users++
		if m.riskLocked(u, um).Flagged {
			flagged++
		}
	}
	return users, flagged
}

// Reset drops all state of one user, reporting whether it existed.
func (m *Monitor) Reset(user string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.users[user]
	delete(m.users, user)
	return ok
}

// ResetAll drops all monitor state.
func (m *Monitor) ResetAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.users = make(map[string]*userMonitor)
}

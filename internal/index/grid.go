// Package index provides hash-grid spatial and spatio-temporal indexes
// over geographic points. They power the mix-zone crossing detector, the
// POI matcher and the multi-target tracking attack, all of which need
// fast "who is near (p, t)?" queries over hundreds of thousands of
// observations.
//
// A uniform hash grid is the right tool here: mobility data is dense and
// roughly uniformly spread at city scale, queries use a fixed radius, and
// the grid gives O(1) expected insert and query with no balancing logic.
package index

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mobipriv/internal/geo"
)

// cellKey addresses one grid cell.
type cellKey struct {
	cx, cy int
}

// entry is one indexed point with its caller-assigned identifier.
type entry struct {
	pos geo.XY
	id  int
}

// Grid is a uniform hash-grid spatial index mapping points to integer
// identifiers (typically indexes into a caller-side slice).
//
// Grid is not safe for concurrent mutation; build it fully, then query
// from any number of goroutines.
type Grid struct {
	proj *geo.Projector
	size float64 // cell edge in meters
	cell map[cellKey][]entry
	n    int
}

// NewGrid returns an empty grid with the given projection origin and
// cell size in meters. The cell size should be on the order of the
// typical query radius. It panics if cellSize is not positive (a
// programming error, not input-dependent).
func NewGrid(origin geo.Point, cellSize float64) *Grid {
	if cellSize <= 0 {
		panic(fmt.Sprintf("index: cell size %v must be positive", cellSize))
	}
	return &Grid{
		proj: geo.NewProjector(origin),
		size: cellSize,
		cell: make(map[cellKey][]entry),
	}
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return g.n }

// CellSize returns the configured cell edge in meters.
func (g *Grid) CellSize() float64 { return g.size }

func (g *Grid) key(v geo.XY) cellKey {
	return cellKey{
		cx: int(math.Floor(v.X / g.size)),
		cy: int(math.Floor(v.Y / g.size)),
	}
}

// Insert adds a point with its identifier. Duplicate identifiers are
// allowed; the grid does not interpret them.
func (g *Grid) Insert(p geo.Point, id int) {
	v := g.proj.ToXY(p)
	k := g.key(v)
	g.cell[k] = append(g.cell[k], entry{pos: v, id: id})
	g.n++
}

// Within returns the identifiers of all points within radius meters of
// center, in ascending identifier order (deterministic output for
// deterministic experiments).
func (g *Grid) Within(center geo.Point, radius float64) []int {
	if radius < 0 {
		return nil
	}
	c := g.proj.ToXY(center)
	r2 := radius * radius
	lo := g.key(geo.XY{X: c.X - radius, Y: c.Y - radius})
	hi := g.key(geo.XY{X: c.X + radius, Y: c.Y + radius})
	var out []int
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for _, e := range g.cell[cellKey{cx, cy}] {
				d := e.pos.Sub(c)
				if d.X*d.X+d.Y*d.Y <= r2 {
					out = append(out, e.id)
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// Nearest returns the identifier of the indexed point closest to p and
// its distance in meters. ok is false for an empty grid. Ties are broken
// by the smaller identifier.
func (g *Grid) Nearest(p geo.Point) (id int, dist float64, ok bool) {
	if g.n == 0 {
		return 0, 0, false
	}
	c := g.proj.ToXY(p)
	center := g.key(c)
	best := math.Inf(1)
	bestID := 0
	found := false
	// Expanding ring search: scan cells in increasing ring radius; once a
	// candidate is found, finish the ring that could still contain a
	// closer point.
	for ring := 0; ; ring++ {
		// Prune: if the best distance is already smaller than the closest
		// possible point in this ring, stop.
		if found && float64(ring-1)*g.size > best {
			break
		}
		for cx := center.cx - ring; cx <= center.cx+ring; cx++ {
			for cy := center.cy - ring; cy <= center.cy+ring; cy++ {
				// Only the ring border (inner cells were already visited).
				if ring > 0 && cx != center.cx-ring && cx != center.cx+ring &&
					cy != center.cy-ring && cy != center.cy+ring {
					continue
				}
				for _, e := range g.cell[cellKey{cx, cy}] {
					d := e.pos.Dist(c)
					if d < best || (d == best && e.id < bestID) {
						best = d
						bestID = e.id
						found = true
					}
				}
			}
		}
		// Safety bound: the grid extent is finite; once the ring has
		// expanded past every occupied cell there is nothing left to find.
		if ring > g.maxRing(center) {
			break
		}
	}
	if !found {
		return 0, 0, false
	}
	return bestID, best, true
}

// maxRing returns a conservative bound on the ring index needed to cover
// every occupied cell from the given center.
func (g *Grid) maxRing(center cellKey) int {
	m := 0
	for k := range g.cell {
		dx := k.cx - center.cx
		if dx < 0 {
			dx = -dx
		}
		dy := k.cy - center.cy
		if dy < 0 {
			dy = -dy
		}
		if dx > m {
			m = dx
		}
		if dy > m {
			m = dy
		}
	}
	return m
}

// STKey addresses one space-time bucket of an STGrid.
type stKey struct {
	cx, cy, ct int
}

// STGrid is a spatio-temporal hash grid: points are bucketed by position
// (cellSize meters) and time (window duration). It answers "which points
// lie within radius r AND within time window w of (p, t)?" — the core
// query of natural mix-zone detection.
type STGrid struct {
	proj   *geo.Projector
	size   float64
	window time.Duration
	epoch  time.Time
	cell   map[stKey][]stEntry
	n      int
}

type stEntry struct {
	pos geo.XY
	ts  time.Time
	id  int
}

// NewSTGrid returns an empty spatio-temporal grid. cellSize must be
// positive and window must be a positive duration; epoch anchors the time
// bucketing (any instant at or before the data works).
func NewSTGrid(origin geo.Point, cellSize float64, window time.Duration, epoch time.Time) *STGrid {
	if cellSize <= 0 {
		panic(fmt.Sprintf("index: cell size %v must be positive", cellSize))
	}
	if window <= 0 {
		panic(fmt.Sprintf("index: window %v must be positive", window))
	}
	return &STGrid{
		proj:   geo.NewProjector(origin),
		size:   cellSize,
		window: window,
		epoch:  epoch,
		cell:   make(map[stKey][]stEntry),
	}
}

// Len returns the number of indexed points.
func (g *STGrid) Len() int { return g.n }

func (g *STGrid) stkey(v geo.XY, ts time.Time) stKey {
	return stKey{
		cx: int(math.Floor(v.X / g.size)),
		cy: int(math.Floor(v.Y / g.size)),
		ct: int(ts.Sub(g.epoch) / g.window),
	}
}

// Insert adds a point observed at ts with the given identifier.
func (g *STGrid) Insert(p geo.Point, ts time.Time, id int) {
	v := g.proj.ToXY(p)
	k := g.stkey(v, ts)
	g.cell[k] = append(g.cell[k], stEntry{pos: v, ts: ts, id: id})
	g.n++
}

// WithinST returns the identifiers of points within radius meters of p
// and within w of ts (|t - ts| <= w), sorted ascending. radius must not
// exceed the grid cell size times any bound; any radius works but large
// radii degrade to linear scans.
func (g *STGrid) WithinST(p geo.Point, ts time.Time, radius float64, w time.Duration) []int {
	if radius < 0 || w < 0 {
		return nil
	}
	c := g.proj.ToXY(p)
	r2 := radius * radius
	lo := g.stkey(geo.XY{X: c.X - radius, Y: c.Y - radius}, ts.Add(-w))
	hi := g.stkey(geo.XY{X: c.X + radius, Y: c.Y + radius}, ts.Add(w))
	var out []int
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for ct := lo.ct; ct <= hi.ct; ct++ {
				for _, e := range g.cell[stKey{cx, cy, ct}] {
					dt := e.ts.Sub(ts)
					if dt < 0 {
						dt = -dt
					}
					if dt > w {
						continue
					}
					d := e.pos.Sub(c)
					if d.X*d.X+d.Y*d.Y <= r2 {
						out = append(out, e.id)
					}
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

package index

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"mobipriv/internal/geo"
)

var (
	origin = geo.Point{Lat: 45.7640, Lng: 4.8357}
	epoch  = time.Date(2015, 6, 30, 0, 0, 0, 0, time.UTC)
)

func TestGridWithin(t *testing.T) {
	g := NewGrid(origin, 50)
	// Points at known offsets from origin.
	offsets := []struct {
		dx, dy float64
	}{
		{0, 0},    // id 0: distance 0
		{30, 40},  // id 1: distance 50
		{60, 80},  // id 2: distance 100
		{300, 0},  // id 3: distance 300
		{-10, -5}, // id 4: distance ~11.2
	}
	for i, o := range offsets {
		g.Insert(geo.Offset(origin, o.dx, o.dy), i)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d", g.Len())
	}
	tests := []struct {
		radius float64
		want   []int
	}{
		{5, []int{0}},
		{12, []int{0, 4}},
		{51, []int{0, 1, 4}},
		{101, []int{0, 1, 2, 4}},
		{1000, []int{0, 1, 2, 3, 4}},
		{-1, nil},
	}
	for _, tt := range tests {
		got := g.Within(origin, tt.radius)
		if !equalInts(got, tt.want) {
			t.Errorf("Within(r=%v) = %v, want %v", tt.radius, got, tt.want)
		}
	}
}

func TestGridWithinBruteForceAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGrid(origin, 75)
	type pt struct {
		p  geo.Point
		id int
	}
	var pts []pt
	for i := 0; i < 500; i++ {
		p := geo.Offset(origin, rng.Float64()*4000-2000, rng.Float64()*4000-2000)
		g.Insert(p, i)
		pts = append(pts, pt{p, i})
	}
	for trial := 0; trial < 50; trial++ {
		center := geo.Offset(origin, rng.Float64()*4000-2000, rng.Float64()*4000-2000)
		radius := rng.Float64() * 500
		got := g.Within(center, radius)
		var want []int
		pr := geo.NewProjector(origin)
		cv := pr.ToXY(center)
		for _, e := range pts {
			if pr.ToXY(e.p).Dist(cv) <= radius {
				want = append(want, e.id)
			}
		}
		sort.Ints(want)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: Within = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestGridNearest(t *testing.T) {
	g := NewGrid(origin, 50)
	if _, _, ok := g.Nearest(origin); ok {
		t.Fatal("Nearest on empty grid should report not-ok")
	}
	g.Insert(geo.Offset(origin, 100, 0), 1)
	g.Insert(geo.Offset(origin, 20, 0), 2)
	g.Insert(geo.Offset(origin, 3000, 0), 3)
	id, dist, ok := g.Nearest(origin)
	if !ok || id != 2 {
		t.Fatalf("Nearest = %d (ok=%v), want 2", id, ok)
	}
	if dist < 19 || dist > 21 {
		t.Fatalf("Nearest dist = %v, want ~20", dist)
	}
	// Query far away from all points: must still find the closest.
	id, _, ok = g.Nearest(geo.Offset(origin, 10000, 10000))
	if !ok || id != 3 {
		t.Fatalf("far Nearest = %d (ok=%v), want 3", id, ok)
	}
}

func TestGridNearestBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGrid(origin, 100)
	pr := geo.NewProjector(origin)
	var pts []geo.Point
	for i := 0; i < 300; i++ {
		p := geo.Offset(origin, rng.Float64()*5000-2500, rng.Float64()*5000-2500)
		g.Insert(p, i)
		pts = append(pts, p)
	}
	for trial := 0; trial < 30; trial++ {
		q := geo.Offset(origin, rng.Float64()*6000-3000, rng.Float64()*6000-3000)
		gotID, gotDist, ok := g.Nearest(q)
		if !ok {
			t.Fatal("Nearest should succeed")
		}
		qv := pr.ToXY(q)
		bestID, best := -1, 1e18
		for i, p := range pts {
			if d := pr.ToXY(p).Dist(qv); d < best {
				best, bestID = d, i
			}
		}
		if gotID != bestID {
			t.Fatalf("trial %d: Nearest = %d (%.2f m), brute force = %d (%.2f m)",
				trial, gotID, gotDist, bestID, best)
		}
	}
}

func TestGridPanicsOnBadCellSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(0) should panic")
		}
	}()
	NewGrid(origin, 0)
}

func TestSTGridWithinST(t *testing.T) {
	g := NewSTGrid(origin, 100, time.Minute, epoch)
	at := func(dx float64, offset time.Duration, id int) {
		g.Insert(geo.Offset(origin, dx, 0), epoch.Add(offset), id)
	}
	at(0, 0, 0)
	at(10, 30*time.Second, 1)   // near in space and time
	at(10, 10*time.Minute, 2)   // near in space, far in time
	at(5000, 30*time.Second, 3) // far in space, near in time
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	got := g.WithinST(origin, epoch, 50, time.Minute)
	if !equalInts(got, []int{0, 1}) {
		t.Fatalf("WithinST = %v, want [0 1]", got)
	}
	// Wider time window picks up id 2.
	got = g.WithinST(origin, epoch, 50, 15*time.Minute)
	if !equalInts(got, []int{0, 1, 2}) {
		t.Fatalf("WithinST wide = %v, want [0 1 2]", got)
	}
	// Negative inputs.
	if got := g.WithinST(origin, epoch, -1, time.Minute); got != nil {
		t.Fatalf("negative radius = %v", got)
	}
	if got := g.WithinST(origin, epoch, 10, -time.Second); got != nil {
		t.Fatalf("negative window = %v", got)
	}
}

func TestSTGridWindowBoundaryInclusive(t *testing.T) {
	g := NewSTGrid(origin, 100, time.Minute, epoch)
	g.Insert(origin, epoch.Add(time.Minute), 7)
	// |t - ts| == w exactly: inclusive.
	if got := g.WithinST(origin, epoch, 10, time.Minute); !equalInts(got, []int{7}) {
		t.Fatalf("boundary = %v, want [7]", got)
	}
	if got := g.WithinST(origin, epoch, 10, time.Minute-time.Nanosecond); got != nil {
		t.Fatalf("just inside boundary = %v, want nil", got)
	}
}

func TestSTGridBruteForceAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := NewSTGrid(origin, 80, 2*time.Minute, epoch)
	pr := geo.NewProjector(origin)
	type obs struct {
		p  geo.Point
		ts time.Time
		id int
	}
	var all []obs
	for i := 0; i < 400; i++ {
		o := obs{
			p:  geo.Offset(origin, rng.Float64()*3000-1500, rng.Float64()*3000-1500),
			ts: epoch.Add(time.Duration(rng.Intn(3600)) * time.Second),
			id: i,
		}
		g.Insert(o.p, o.ts, o.id)
		all = append(all, o)
	}
	for trial := 0; trial < 40; trial++ {
		q := geo.Offset(origin, rng.Float64()*3000-1500, rng.Float64()*3000-1500)
		qt := epoch.Add(time.Duration(rng.Intn(3600)) * time.Second)
		radius := rng.Float64() * 400
		w := time.Duration(rng.Intn(600)) * time.Second
		got := g.WithinST(q, qt, radius, w)
		var want []int
		qv := pr.ToXY(q)
		for _, o := range all {
			dt := o.ts.Sub(qt)
			if dt < 0 {
				dt = -dt
			}
			if dt <= w && pr.ToXY(o.p).Dist(qv) <= radius {
				want = append(want, o.id)
			}
		}
		sort.Ints(want)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: WithinST = %v, brute = %v", trial, got, want)
		}
	}
}

func TestSTGridPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero cell":   func() { NewSTGrid(origin, 0, time.Minute, epoch) },
		"zero window": func() { NewSTGrid(origin, 10, 0, epoch) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkGridWithin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewGrid(origin, 100)
	for i := 0; i < 100000; i++ {
		g.Insert(geo.Offset(origin, rng.Float64()*20000-10000, rng.Float64()*20000-10000), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Within(origin, 200)
	}
}

func BenchmarkSTGridWithinST(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewSTGrid(origin, 100, time.Minute, epoch)
	for i := 0; i < 100000; i++ {
		p := geo.Offset(origin, rng.Float64()*20000-10000, rng.Float64()*20000-10000)
		g.Insert(p, epoch.Add(time.Duration(rng.Intn(86400))*time.Second), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.WithinST(origin, epoch.Add(12*time.Hour), 200, 5*time.Minute)
	}
}

package geo

import (
	"strings"
	"testing"
)

func TestBBoxEmpty(t *testing.T) {
	var b BBox
	if !b.IsEmpty() {
		t.Fatal("zero BBox should be empty")
	}
	if b.Contains(lyon) {
		t.Fatal("empty box should contain nothing")
	}
	if b.WidthMeters() != 0 || b.HeightMeters() != 0 {
		t.Fatal("empty box should have zero extent")
	}
	if got := b.String(); got != "BBox(empty)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestBBoxExtendContains(t *testing.T) {
	var b BBox
	b.Extend(lyon)
	if !b.Contains(lyon) {
		t.Fatal("box should contain its seed point")
	}
	q := Offset(lyon, 1000, 1000)
	if b.Contains(q) {
		t.Fatal("box should not contain distant point yet")
	}
	b.Extend(q)
	if !b.Contains(q) || !b.Contains(lyon) {
		t.Fatal("box should contain both points after Extend")
	}
	mid := Midpoint(lyon, q)
	if !b.Contains(mid) {
		t.Fatal("box should contain midpoint")
	}
}

func TestBoundsOf(t *testing.T) {
	if _, ok := BoundsOf(nil); ok {
		t.Fatal("BoundsOf(nil) should report not-ok")
	}
	pts := []Point{lyon, Offset(lyon, 500, -300), Offset(lyon, -200, 800)}
	b, ok := BoundsOf(pts)
	if !ok {
		t.Fatal("BoundsOf should succeed")
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bounds should contain %v", p)
		}
	}
}

func TestBBoxUnion(t *testing.T) {
	a := NewBBox(lyon, Offset(lyon, 100, 100))
	c := NewBBox(Offset(lyon, 500, 500), Offset(lyon, 600, 600))
	u := a.Union(c)
	if !u.Contains(lyon) || !u.Contains(Offset(lyon, 600, 600)) {
		t.Fatal("union should contain corners of both boxes")
	}
	var empty BBox
	if got := empty.Union(a); got != a {
		t.Fatal("empty.Union(a) should be a")
	}
	if got := a.Union(empty); got != a {
		t.Fatal("a.Union(empty) should be a")
	}
}

func TestBBoxBuffer(t *testing.T) {
	b := NewBBox(lyon, Offset(lyon, 100, 100))
	big := b.Buffer(50)
	outside := Offset(lyon, -40, -40)
	if b.Contains(outside) {
		t.Fatal("unbuffered box should not contain the probe")
	}
	if !big.Contains(outside) {
		t.Fatal("buffered box should contain the probe")
	}
	var empty BBox
	if !empty.Buffer(10).IsEmpty() {
		t.Fatal("buffering an empty box must stay empty")
	}
	if got := b.Buffer(0); got != b {
		t.Fatal("Buffer(0) should be identity")
	}
}

func TestBBoxExtents(t *testing.T) {
	b := NewBBox(lyon, Offset(lyon, 1000, 2000))
	if w := b.WidthMeters(); w < 995 || w > 1005 {
		t.Errorf("WidthMeters = %v, want ~1000", w)
	}
	if h := b.HeightMeters(); h < 1995 || h > 2005 {
		t.Errorf("HeightMeters = %v, want ~2000", h)
	}
	c := b.Center()
	if d := FastDistance(c, Offset(lyon, 500, 1000)); d > 2 {
		t.Errorf("Center off by %v m", d)
	}
	if !strings.HasPrefix(b.String(), "BBox[") {
		t.Errorf("String() = %q", b.String())
	}
}

package geo

import (
	"math"
	"testing"
)

// zigzag builds a polyline of n segments of the given length with
// alternating bearings, starting at lyon.
func zigzag(n int, segLen float64) []Point {
	pts := make([]Point, 0, n+1)
	p := lyon
	pts = append(pts, p)
	for i := 0; i < n; i++ {
		brg := 45.0
		if i%2 == 1 {
			brg = 135
		}
		p = Destination(p, brg, segLen)
		pts = append(pts, p)
	}
	return pts
}

func TestNewPolylineErrors(t *testing.T) {
	if _, err := NewPolyline(nil); err == nil {
		t.Fatal("NewPolyline(nil) should fail")
	}
	if _, err := NewPolyline([]Point{lyon}); err != nil {
		t.Fatalf("single-vertex polyline should be allowed: %v", err)
	}
}

func TestPolylineLength(t *testing.T) {
	pts := zigzag(10, 100)
	pl, err := NewPolyline(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Length(); math.Abs(got-1000) > 0.01 {
		t.Fatalf("Length = %v, want 1000", got)
	}
	if pl.Len() != 11 {
		t.Fatalf("Len = %d, want 11", pl.Len())
	}
	if got := pl.CumLength(5); math.Abs(got-500) > 0.01 {
		t.Fatalf("CumLength(5) = %v, want 500", got)
	}
}

func TestPolylineImmutable(t *testing.T) {
	pts := zigzag(3, 50)
	pl, err := NewPolyline(pts)
	if err != nil {
		t.Fatal(err)
	}
	orig := pl.Vertex(0)
	pts[0] = Offset(lyon, 9999, 9999)
	if !pl.Vertex(0).Equal(orig) {
		t.Fatal("polyline must copy its input slice")
	}
}

func TestPointAt(t *testing.T) {
	pl, err := NewPolyline(zigzag(4, 250))
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.PointAt(-5); !got.Equal(pl.Vertex(0)) {
		t.Error("PointAt(<0) should clamp to start")
	}
	if got := pl.PointAt(99999); !got.Equal(pl.Vertex(4)) {
		t.Error("PointAt(>len) should clamp to end")
	}
	// A point exactly at a vertex distance.
	if got := pl.PointAt(250); FastDistance(got, pl.Vertex(1)) > 0.01 {
		t.Errorf("PointAt(250) = %v, want vertex 1", got)
	}
	// A mid-segment point is 125 m from both surrounding vertices.
	m := pl.PointAt(125)
	if d := Distance(pl.Vertex(0), m); math.Abs(d-125) > 0.05 {
		t.Errorf("PointAt(125): distance from v0 = %v", d)
	}
}

func TestPointAtDegenerateSegment(t *testing.T) {
	// Repeated vertices create zero-length segments; PointAt must not
	// divide by zero.
	pts := []Point{lyon, lyon, Destination(lyon, 90, 100), lyon}
	pl, err := NewPolyline(pts)
	if err != nil {
		t.Fatal(err)
	}
	got := pl.PointAt(50)
	if d := Distance(lyon, got); math.Abs(d-50) > 0.05 {
		t.Fatalf("PointAt(50) over degenerate segment: %v m from start", d)
	}
}

func TestResample(t *testing.T) {
	pl, err := NewPolyline(zigzag(8, 125))
	if err != nil {
		t.Fatal(err)
	}
	out, err := pl.Resample(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 11 {
		t.Fatalf("Resample(11) returned %d points", len(out))
	}
	if !out[0].Equal(pl.Vertex(0)) || FastDistance(out[10], pl.Vertex(8)) > 1e-6 {
		t.Fatal("Resample must include both endpoints")
	}
	// Even spacing: consecutive distances along the line are equal.
	step := pl.Length() / 10
	for i := 1; i < len(out); i++ {
		d := Distance(out[i-1], out[i])
		// Chord distance can be slightly below arc distance on corners;
		// allow 10% slack (the zigzag has sharp 90-degree corners).
		if d > step*1.05 {
			t.Errorf("gap %d = %v, step %v", i, d, step)
		}
	}
}

func TestResampleErrors(t *testing.T) {
	pl, err := NewPolyline(zigzag(2, 100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Resample(0); err == nil {
		t.Error("Resample(0) should fail")
	}
	if _, err := pl.Resample(1); err == nil {
		t.Error("Resample(1) on non-degenerate polyline should fail")
	}
	single, err := NewPolyline([]Point{lyon})
	if err != nil {
		t.Fatal(err)
	}
	out, err := single.Resample(1)
	if err != nil || len(out) != 1 {
		t.Errorf("Resample(1) on degenerate polyline: %v, %v", out, err)
	}
}

func TestResampleEvery(t *testing.T) {
	pl, err := NewPolyline(zigzag(10, 100))
	if err != nil {
		t.Fatal(err)
	}
	out, err := pl.ResampleEvery(100)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 m at 100 m spacing: starts at 0,100,...,900 plus final vertex.
	if len(out) != 11 {
		t.Fatalf("ResampleEvery(100) returned %d points, want 11", len(out))
	}
	if _, err := pl.ResampleEvery(0); err == nil {
		t.Error("ResampleEvery(0) should fail")
	}
	if _, err := pl.ResampleEvery(-10); err == nil {
		t.Error("ResampleEvery(-10) should fail")
	}
}

func TestResampleEveryDegenerate(t *testing.T) {
	pl, err := NewPolyline([]Point{lyon})
	if err != nil {
		t.Fatal(err)
	}
	out, err := pl.ResampleEvery(50)
	if err != nil || len(out) != 1 {
		t.Fatalf("degenerate ResampleEvery: %v, %v", out, err)
	}
}

func BenchmarkDistance(b *testing.B) {
	q := Destination(lyon, 60, 5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Distance(lyon, q)
	}
}

func BenchmarkFastDistance(b *testing.B) {
	q := Destination(lyon, 60, 5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = FastDistance(lyon, q)
	}
}

func BenchmarkPointAt(b *testing.B) {
	pl, err := NewPolyline(zigzag(1000, 20))
	if err != nil {
		b.Fatal(err)
	}
	total := pl.Length()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pl.PointAt(float64(i%1000) / 1000 * total)
	}
}

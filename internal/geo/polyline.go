package geo

import (
	"errors"
	"fmt"
)

// ErrEmptyPolyline reports an operation on a polyline without vertices.
var ErrEmptyPolyline = errors.New("geo: empty polyline")

// Polyline is an ordered sequence of WGS84 vertices together with the
// cumulative great-circle arc length at each vertex. It supports
// constant-time length queries and logarithmic-time point-at-distance
// queries, which are the workhorses of the speed-smoothing mechanism.
//
// A Polyline is immutable after construction and safe for concurrent use.
type Polyline struct {
	pts []Point
	cum []float64 // cum[i] = arc length from pts[0] to pts[i]
}

// NewPolyline builds a polyline from the given vertices. The slice is
// copied. At least one vertex is required.
func NewPolyline(pts []Point) (*Polyline, error) {
	if len(pts) == 0 {
		return nil, ErrEmptyPolyline
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	cum := make([]float64, len(cp))
	for i := 1; i < len(cp); i++ {
		cum[i] = cum[i-1] + Distance(cp[i-1], cp[i])
	}
	return &Polyline{pts: cp, cum: cum}, nil
}

// Len returns the number of vertices.
func (pl *Polyline) Len() int { return len(pl.pts) }

// Vertex returns the i-th vertex.
func (pl *Polyline) Vertex(i int) Point { return pl.pts[i] }

// Length returns the total arc length in meters.
func (pl *Polyline) Length() float64 { return pl.cum[len(pl.cum)-1] }

// CumLength returns the arc length from the first vertex to vertex i.
func (pl *Polyline) CumLength(i int) float64 { return pl.cum[i] }

// PointAt returns the point at the given arc-length distance (meters)
// from the start, interpolating along the segment containing it.
// Distances are clamped to [0, Length()].
func (pl *Polyline) PointAt(dist float64) Point {
	if dist <= 0 {
		return pl.pts[0]
	}
	total := pl.Length()
	if dist >= total {
		return pl.pts[len(pl.pts)-1]
	}
	// Binary search for the segment whose cumulative range contains dist.
	lo, hi := 0, len(pl.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if pl.cum[mid] < dist {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Now cum[lo-1] < dist <= cum[lo]; interpolate on segment lo-1 -> lo.
	i := lo - 1
	segLen := pl.cum[lo] - pl.cum[i]
	if segLen <= 0 {
		return pl.pts[lo]
	}
	f := (dist - pl.cum[i]) / segLen
	return Interpolate(pl.pts[i], pl.pts[lo], f)
}

// Resample returns n points evenly spaced by arc length along the
// polyline, including both endpoints. n must be at least 2 unless the
// polyline has zero length, in which case a single repeated point is
// acceptable and n must be at least 1.
func (pl *Polyline) Resample(n int) ([]Point, error) {
	if n < 1 {
		return nil, fmt.Errorf("geo: resample count %d < 1", n)
	}
	total := pl.Length()
	if n == 1 {
		if total > 0 {
			return nil, errors.New("geo: cannot resample non-degenerate polyline to a single point")
		}
		return []Point{pl.pts[0]}, nil
	}
	out := make([]Point, n)
	step := total / float64(n-1)
	for i := 0; i < n; i++ {
		out[i] = pl.PointAt(float64(i) * step)
	}
	return out, nil
}

// ResampleEvery returns points spaced exactly spacing meters apart along
// the polyline starting at the first vertex; the final vertex is always
// included as the last point (so the last gap may be shorter). spacing
// must be positive.
func (pl *Polyline) ResampleEvery(spacing float64) ([]Point, error) {
	if spacing <= 0 {
		return nil, fmt.Errorf("geo: spacing %v must be positive", spacing)
	}
	total := pl.Length()
	if total == 0 {
		return []Point{pl.pts[0]}, nil
	}
	n := int(total/spacing) + 1
	out := make([]Point, 0, n+1)
	for d := 0.0; d < total; d += spacing {
		out = append(out, pl.PointAt(d))
	}
	out = append(out, pl.pts[len(pl.pts)-1])
	return out, nil
}

package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// lyon is a reference point used across the tests (the paper's authors'
// home town).
var lyon = Point{Lat: 45.7640, Lng: 4.8357}

func TestNewPoint(t *testing.T) {
	tests := []struct {
		name    string
		lat     float64
		lng     float64
		wantErr bool
	}{
		{name: "valid", lat: 45.0, lng: 4.8, wantErr: false},
		{name: "zero", lat: 0, lng: 0, wantErr: false},
		{name: "extreme valid", lat: -90, lng: 180, wantErr: false},
		{name: "lat too high", lat: 90.01, lng: 0, wantErr: true},
		{name: "lat too low", lat: -91, lng: 0, wantErr: true},
		{name: "lng too high", lat: 0, lng: 180.5, wantErr: true},
		{name: "lng too low", lat: 0, lng: -181, wantErr: true},
		{name: "nan lat", lat: math.NaN(), lng: 0, wantErr: true},
		{name: "inf lng", lat: 0, lng: math.Inf(1), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewPoint(tt.lat, tt.lng)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewPoint(%v, %v) error = %v, wantErr %v", tt.lat, tt.lng, err, tt.wantErr)
			}
		})
	}
}

func TestDistanceKnownValues(t *testing.T) {
	paris := Point{Lat: 48.8566, Lng: 2.3522}
	// Reference great-circle distance Lyon-Paris is ~392 km.
	d := Distance(lyon, paris)
	if d < 380e3 || d > 405e3 {
		t.Fatalf("Distance(lyon, paris) = %v m, want ~392 km", d)
	}
	if got := Distance(lyon, lyon); got != 0 {
		t.Fatalf("Distance(p, p) = %v, want 0", got)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	paris := Point{Lat: 48.8566, Lng: 2.3522}
	if d1, d2 := Distance(lyon, paris), Distance(paris, lyon); math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("distance not symmetric: %v vs %v", d1, d2)
	}
}

func TestFastDistanceAgreesWithHaversine(t *testing.T) {
	// Over city-scale distances the equirectangular approximation must
	// agree with haversine to within 0.1%.
	for _, dm := range []float64{10, 100, 1000, 10000, 50000} {
		q := Destination(lyon, 37, dm)
		exact := Distance(lyon, q)
		fast := FastDistance(lyon, q)
		if relErr := math.Abs(fast-exact) / exact; relErr > 1e-3 {
			t.Errorf("FastDistance at %v m: rel err %v > 0.1%%", dm, relErr)
		}
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	for _, dist := range []float64{1, 50, 500, 5000, 100000} {
		for _, brg := range []float64{0, 45, 90, 135, 180, 270, 359} {
			q := Destination(lyon, brg, dist)
			got := Distance(lyon, q)
			if math.Abs(got-dist) > dist*1e-6+1e-6 {
				t.Errorf("Destination(%v, %v): distance %v, want %v", brg, dist, got, dist)
			}
		}
	}
}

func TestDestinationZeroDistance(t *testing.T) {
	if q := Destination(lyon, 123, 0); !q.Equal(lyon) {
		t.Fatalf("Destination with 0 distance = %v, want %v", q, lyon)
	}
}

func TestBearingCardinal(t *testing.T) {
	north := Destination(lyon, 0, 1000)
	east := Destination(lyon, 90, 1000)
	south := Destination(lyon, 180, 1000)
	west := Destination(lyon, 270, 1000)
	for _, tt := range []struct {
		name string
		to   Point
		want float64
	}{
		{"north", north, 0},
		{"east", east, 90},
		{"south", south, 180},
		{"west", west, 270},
	} {
		got := Bearing(lyon, tt.to)
		diff := math.Abs(got - tt.want)
		if diff > 180 {
			diff = 360 - diff
		}
		if diff > 0.01 {
			t.Errorf("Bearing to %s = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	q := Destination(lyon, 60, 2000)
	if got := Interpolate(lyon, q, 0); !got.Equal(lyon) {
		t.Errorf("Interpolate f=0 = %v, want start", got)
	}
	if got := Interpolate(lyon, q, 1); FastDistance(got, q) > 1e-6 {
		t.Errorf("Interpolate f=1 = %v, want end %v", got, q)
	}
	// Clamping behaviour.
	if got := Interpolate(lyon, q, -3); !got.Equal(lyon) {
		t.Errorf("Interpolate f=-3 = %v, want start", got)
	}
	if got := Interpolate(lyon, q, 7); FastDistance(got, q) > 1e-6 {
		t.Errorf("Interpolate f=7 = %v, want end", got)
	}
}

func TestInterpolateProportional(t *testing.T) {
	q := Destination(lyon, 200, 8000)
	total := Distance(lyon, q)
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		m := Interpolate(lyon, q, f)
		got := Distance(lyon, m)
		want := f * total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Interpolate f=%v: distance from start = %v, want %v", f, got, want)
		}
	}
}

func TestInterpolateDegenerate(t *testing.T) {
	if got := Interpolate(lyon, lyon, 0.5); !got.Equal(lyon) {
		t.Fatalf("Interpolate between identical points = %v, want %v", got, lyon)
	}
}

func TestMidpoint(t *testing.T) {
	q := Destination(lyon, 45, 6000)
	m := Midpoint(lyon, q)
	d1, d2 := Distance(lyon, m), Distance(m, q)
	if math.Abs(d1-d2) > 0.01 {
		t.Fatalf("Midpoint not equidistant: %v vs %v", d1, d2)
	}
}

func TestCentroid(t *testing.T) {
	if _, ok := Centroid(nil); ok {
		t.Fatal("Centroid(nil) should report not-ok")
	}
	c, ok := Centroid([]Point{lyon})
	if !ok || FastDistance(c, lyon) > 1e-6 {
		t.Fatalf("Centroid of single point = %v, %v", c, ok)
	}
	// Centroid of 4 symmetric offsets must be back at the center.
	pts := []Point{
		Offset(lyon, 100, 0),
		Offset(lyon, -100, 0),
		Offset(lyon, 0, 100),
		Offset(lyon, 0, -100),
	}
	c, ok = Centroid(pts)
	if !ok || FastDistance(c, lyon) > 0.01 {
		t.Fatalf("Centroid of symmetric points = %v (dist %v), want %v", c, FastDistance(c, lyon), lyon)
	}
}

// Property: triangle inequality for haversine distance on random
// city-scale points.
func TestDistanceTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy uint16) bool {
		a := Offset(lyon, float64(ax%20000), float64(ay%20000))
		b := Offset(lyon, float64(bx%20000), float64(by%20000))
		c := Offset(lyon, float64(cx%20000), float64(cy%20000))
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Destination followed by Bearing recovers the bearing.
func TestDestinationBearingRoundTrip(t *testing.T) {
	f := func(brg uint16, dist uint16) bool {
		b := float64(brg % 360)
		d := float64(dist%10000) + 1
		q := Destination(lyon, b, d)
		got := Bearing(lyon, q)
		diff := math.Abs(got - b)
		if diff > 180 {
			diff = 360 - diff
		}
		return diff < 0.1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlmostEqual(t *testing.T) {
	q := Offset(lyon, 5, 0)
	if !lyon.AlmostEqual(q, 6) {
		t.Error("points 5 m apart should be AlmostEqual with tol 6")
	}
	if lyon.AlmostEqual(q, 4) {
		t.Error("points 5 m apart should not be AlmostEqual with tol 4")
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{Lat: 1.5, Lng: -2.25}).String(); got != "(1.500000, -2.250000)" {
		t.Fatalf("String() = %q", got)
	}
}

package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProjectorRoundTrip(t *testing.T) {
	pr := NewProjector(lyon)
	for _, v := range []XY{{0, 0}, {100, 0}, {0, 100}, {-2500, 4300}, {80000, -60000}} {
		p := pr.ToPoint(v)
		back := pr.ToXY(p)
		if math.Abs(back.X-v.X) > 1e-6 || math.Abs(back.Y-v.Y) > 1e-6 {
			t.Errorf("round trip %v -> %v -> %v", v, p, back)
		}
	}
}

func TestProjectorPreservesDistance(t *testing.T) {
	pr := NewProjector(lyon)
	for _, d := range []float64{10, 100, 1000, 10000} {
		for _, brg := range []float64{0, 30, 90, 200, 330} {
			q := Destination(lyon, brg, d)
			planar := pr.ToXY(q).Dist(pr.ToXY(lyon))
			if relErr := math.Abs(planar-d) / d; relErr > 2e-3 {
				t.Errorf("projected distance at d=%v brg=%v: rel err %v", d, brg, relErr)
			}
		}
	}
}

func TestProjectorOrigin(t *testing.T) {
	pr := NewProjector(lyon)
	if got := pr.Origin(); !got.Equal(lyon) {
		t.Fatalf("Origin() = %v, want %v", got, lyon)
	}
	if v := pr.ToXY(lyon); v.Norm() > 1e-9 {
		t.Fatalf("ToXY(origin) = %v, want (0,0)", v)
	}
}

func TestOffset(t *testing.T) {
	q := Offset(lyon, 300, 400)
	if d := Distance(lyon, q); math.Abs(d-500) > 0.5 {
		t.Fatalf("Offset(300,400): distance %v, want 500", d)
	}
}

func TestXYArithmetic(t *testing.T) {
	a := XY{X: 3, Y: 4}
	b := XY{X: 1, Y: -1}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := a.Add(b); got != (XY{4, 3}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (XY{2, 5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (XY{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dist(XY{X: 3, Y: 9}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

// Property: projection round-trips arbitrary city-scale displacements.
func TestProjectorRoundTripProperty(t *testing.T) {
	pr := NewProjector(lyon)
	f := func(xi, yi int32) bool {
		v := XY{X: float64(xi % 50000), Y: float64(yi % 50000)}
		back := pr.ToXY(pr.ToPoint(v))
		return math.Abs(back.X-v.X) < 1e-5 && math.Abs(back.Y-v.Y) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

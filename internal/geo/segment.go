package geo

// DistanceToSegment returns the minimal distance in meters from point p
// to the great-circle segment [a, b], computed in a local planar frame
// centred at a (exact to well under 0.1% at city scale).
func DistanceToSegment(p, a, b Point) float64 {
	pr := NewProjector(a)
	pv := pr.ToXY(p)
	bv := pr.ToXY(b)
	// a projects to the origin.
	ab2 := bv.X*bv.X + bv.Y*bv.Y
	if ab2 == 0 {
		return pv.Norm()
	}
	t := (pv.X*bv.X + pv.Y*bv.Y) / ab2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	closest := XY{X: bv.X * t, Y: bv.Y * t}
	return pv.Dist(closest)
}

// DistanceToPolyline returns the minimal distance in meters from p to
// the polyline, scanning every segment. For a polyline with a single
// vertex it degenerates to the point distance.
func (pl *Polyline) DistanceTo(p Point) float64 {
	if len(pl.pts) == 1 {
		return Distance(p, pl.pts[0])
	}
	best := -1.0
	for i := 1; i < len(pl.pts); i++ {
		d := DistanceToSegment(p, pl.pts[i-1], pl.pts[i])
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}

package geo

import (
	"math"
	"testing"
)

func TestDistanceToSegment(t *testing.T) {
	a := lyon
	b := Destination(lyon, 90, 1000) // 1 km east
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"on segment start", a, 0},
		{"on segment end", b, 0},
		{"on segment middle", Destination(lyon, 90, 500), 0},
		{"north of middle", Offset(Destination(lyon, 90, 500), 0, 200), 200},
		{"beyond end", Destination(lyon, 90, 1300), 300},
		{"before start", Destination(lyon, 270, 250), 250},
		{"diagonal off end", Offset(b, 300, 400), 500},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := DistanceToSegment(tt.p, a, b)
			if math.Abs(got-tt.want) > tt.want*0.005+0.5 {
				t.Errorf("DistanceToSegment = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistanceToSegmentDegenerate(t *testing.T) {
	p := Offset(lyon, 120, 0)
	if got := DistanceToSegment(p, lyon, lyon); math.Abs(got-120) > 0.5 {
		t.Fatalf("degenerate segment distance = %v, want 120", got)
	}
}

func TestPolylineDistanceTo(t *testing.T) {
	pts := []Point{
		lyon,
		Destination(lyon, 90, 1000),
		Destination(Destination(lyon, 90, 1000), 0, 1000),
	}
	pl, err := NewPolyline(pts)
	if err != nil {
		t.Fatal(err)
	}
	// A point 150 m north of the middle of the first segment.
	probe := Offset(Destination(lyon, 90, 500), 0, 150)
	if got := pl.DistanceTo(probe); math.Abs(got-150) > 1 {
		t.Errorf("DistanceTo = %v, want 150", got)
	}
	// A vertex itself.
	if got := pl.DistanceTo(pts[1]); got > 0.01 {
		t.Errorf("DistanceTo(vertex) = %v, want 0", got)
	}
	// Single-vertex polyline.
	single, err := NewPolyline([]Point{lyon})
	if err != nil {
		t.Fatal(err)
	}
	if got := single.DistanceTo(Offset(lyon, 30, 40)); math.Abs(got-50) > 0.5 {
		t.Errorf("single-vertex DistanceTo = %v, want 50", got)
	}
}

package geo

import "fmt"

// BBox is an axis-aligned geographic bounding box. It does not support
// boxes spanning the antimeridian (no workload here crosses it).
//
// The zero value is an "empty" box that contains no points; extend it
// with Extend or build one with NewBBox / BoundsOf.
type BBox struct {
	MinLat, MinLng float64
	MaxLat, MaxLng float64
	nonEmpty       bool
}

// NewBBox returns the bounding box with the given corners, normalizing
// the min/max ordering.
func NewBBox(a, b Point) BBox {
	box := BBox{}
	box.Extend(a)
	box.Extend(b)
	return box
}

// BoundsOf returns the tightest bounding box containing all points.
// The second return value is false when pts is empty.
func BoundsOf(pts []Point) (BBox, bool) {
	var box BBox
	for _, p := range pts {
		box.Extend(p)
	}
	return box, box.nonEmpty
}

// IsEmpty reports whether the box contains no points.
func (b BBox) IsEmpty() bool { return !b.nonEmpty }

// Extend grows the box to include p.
func (b *BBox) Extend(p Point) {
	if !b.nonEmpty {
		b.MinLat, b.MaxLat = p.Lat, p.Lat
		b.MinLng, b.MaxLng = p.Lng, p.Lng
		b.nonEmpty = true
		return
	}
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lng < b.MinLng {
		b.MinLng = p.Lng
	}
	if p.Lng > b.MaxLng {
		b.MaxLng = p.Lng
	}
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	out := b
	out.Extend(Point{Lat: o.MinLat, Lng: o.MinLng})
	out.Extend(Point{Lat: o.MaxLat, Lng: o.MaxLng})
	return out
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return b.nonEmpty &&
		p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lng >= b.MinLng && p.Lng <= b.MaxLng
}

// Center returns the geometric center of the box.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lng: (b.MinLng + b.MaxLng) / 2}
}

// Buffer returns the box grown by the given margin in meters on every
// side. Buffering an empty box returns an empty box.
func (b BBox) Buffer(meters float64) BBox {
	if b.IsEmpty() || meters <= 0 {
		return b
	}
	sw := Offset(Point{Lat: b.MinLat, Lng: b.MinLng}, -meters, -meters)
	ne := Offset(Point{Lat: b.MaxLat, Lng: b.MaxLng}, meters, meters)
	return NewBBox(sw, ne)
}

// WidthMeters returns the east-west extent measured along the box's
// central latitude.
func (b BBox) WidthMeters() float64 {
	if b.IsEmpty() {
		return 0
	}
	midLat := (b.MinLat + b.MaxLat) / 2
	return Distance(Point{Lat: midLat, Lng: b.MinLng}, Point{Lat: midLat, Lng: b.MaxLng})
}

// HeightMeters returns the north-south extent.
func (b BBox) HeightMeters() float64 {
	if b.IsEmpty() {
		return 0
	}
	return Distance(Point{Lat: b.MinLat, Lng: b.MinLng}, Point{Lat: b.MaxLat, Lng: b.MinLng})
}

// String implements fmt.Stringer.
func (b BBox) String() string {
	if b.IsEmpty() {
		return "BBox(empty)"
	}
	return fmt.Sprintf("BBox[(%.6f,%.6f)..(%.6f,%.6f)]", b.MinLat, b.MinLng, b.MaxLat, b.MaxLng)
}

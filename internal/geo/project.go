package geo

import "math"

// XY is a point in a local planar (east-north) coordinate frame, in
// meters. X grows eastward, Y grows northward.
type XY struct {
	X float64
	Y float64
}

// Norm returns the Euclidean norm of the vector.
func (v XY) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Sub returns v - w.
func (v XY) Sub(w XY) XY { return XY{X: v.X - w.X, Y: v.Y - w.Y} }

// Add returns v + w.
func (v XY) Add(w XY) XY { return XY{X: v.X + w.X, Y: v.Y + w.Y} }

// Scale returns v scaled by s.
func (v XY) Scale(s float64) XY { return XY{X: v.X * s, Y: v.Y * s} }

// Dist returns the Euclidean distance between v and w in meters.
func (v XY) Dist(w XY) float64 { return v.Sub(w).Norm() }

// Projector converts between WGS84 coordinates and a local planar frame
// centred at an origin point (azimuthal equirectangular projection).
//
// The projection is accurate to well under 0.1% within ~100 km of the
// origin, which is more than enough for city-scale mobility data; it is
// cheap, invertible, and — critically for the anonymization mechanisms —
// locally distance-preserving.
//
// A Projector is immutable and safe for concurrent use.
type Projector struct {
	origin Point
	cosLat float64
}

// NewProjector returns a Projector with the given origin.
func NewProjector(origin Point) *Projector {
	return &Projector{origin: origin, cosLat: math.Cos(origin.latRad())}
}

// Origin returns the projection origin.
func (pr *Projector) Origin() Point { return pr.origin }

// ToXY projects a WGS84 point into the local frame.
func (pr *Projector) ToXY(p Point) XY {
	return XY{
		X: (p.lngRad() - pr.origin.lngRad()) * pr.cosLat * EarthRadius,
		Y: (p.latRad() - pr.origin.latRad()) * EarthRadius,
	}
}

// ToPoint unprojects a local-frame point back to WGS84.
func (pr *Projector) ToPoint(v XY) Point {
	lat := pr.origin.latRad() + v.Y/EarthRadius
	lng := pr.origin.lngRad()
	if pr.cosLat != 0 {
		lng += v.X / (EarthRadius * pr.cosLat)
	}
	return Point{Lat: lat * radToDeg, Lng: normalizeLng(lng * radToDeg)}
}

// Offset returns the point obtained by moving p by (dx, dy) meters
// east/north, using a projection centred at p itself (exact for the
// displacement magnitudes used in this repository).
func Offset(p Point, dx, dy float64) Point {
	return NewProjector(p).ToPoint(XY{X: dx, Y: dy})
}

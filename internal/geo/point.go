// Package geo provides the geodesic primitives used throughout mobipriv:
// WGS84 coordinates, great-circle distances and bearings, destination
// points, local planar projections, bounding boxes and polyline
// (arc-length) arithmetic.
//
// All distances are expressed in meters and all angles in degrees unless
// stated otherwise. The package deliberately uses a spherical Earth model
// (mean radius): mobility traces span at most a few tens of kilometers,
// where the spherical error (<0.5%) is far below GPS noise.
package geo

import (
	"errors"
	"fmt"
	"math"
)

// EarthRadius is the mean Earth radius in meters (IUGG mean radius R1).
const EarthRadius = 6371008.8

// Degree-radian conversion factors.
const (
	degToRad = math.Pi / 180
	radToDeg = 180 / math.Pi
)

// ErrInvalidCoordinate reports a latitude or longitude outside its legal
// range. It is returned (wrapped) by validation helpers.
var ErrInvalidCoordinate = errors.New("geo: invalid coordinate")

// Point is a WGS84 coordinate: latitude and longitude in decimal degrees.
//
// The zero value is the "null island" point (0, 0), which is a valid
// coordinate; code that needs a sentinel should track validity separately.
type Point struct {
	Lat float64 // latitude in degrees, in [-90, 90]
	Lng float64 // longitude in degrees, in [-180, 180]
}

// NewPoint returns a Point after validating its coordinates.
func NewPoint(lat, lng float64) (Point, error) {
	p := Point{Lat: lat, Lng: lng}
	if err := p.Validate(); err != nil {
		return Point{}, err
	}
	return p, nil
}

// Validate checks that the point's coordinates lie in the legal WGS84
// ranges and are not NaN or infinite.
func (p Point) Validate() error {
	if math.IsNaN(p.Lat) || math.IsInf(p.Lat, 0) || p.Lat < -90 || p.Lat > 90 {
		return fmt.Errorf("%w: latitude %v out of [-90, 90]", ErrInvalidCoordinate, p.Lat)
	}
	if math.IsNaN(p.Lng) || math.IsInf(p.Lng, 0) || p.Lng < -180 || p.Lng > 180 {
		return fmt.Errorf("%w: longitude %v out of [-180, 180]", ErrInvalidCoordinate, p.Lng)
	}
	return nil
}

// String implements fmt.Stringer with 6 decimal places (~0.1 m resolution).
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lng)
}

// Equal reports whether two points are exactly equal.
func (p Point) Equal(q Point) bool { return p.Lat == q.Lat && p.Lng == q.Lng }

// AlmostEqual reports whether two points are within tol meters of each
// other, using the fast equirectangular distance.
func (p Point) AlmostEqual(q Point, tol float64) bool {
	return FastDistance(p, q) <= tol
}

// latRad and lngRad return the coordinates in radians.
func (p Point) latRad() float64 { return p.Lat * degToRad }
func (p Point) lngRad() float64 { return p.Lng * degToRad }

// Distance returns the great-circle (haversine) distance in meters
// between p and q.
func Distance(p, q Point) float64 {
	lat1, lat2 := p.latRad(), q.latRad()
	dLat := lat2 - lat1
	dLng := q.lngRad() - p.lngRad()
	sinLat := math.Sin(dLat / 2)
	sinLng := math.Sin(dLng / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLng*sinLng
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadius * math.Asin(math.Sqrt(h))
}

// FastDistance returns the equirectangular approximation of the distance
// in meters between p and q. It is ~5x cheaper than Distance and accurate
// to better than 0.1% for distances under ~100 km away from the poles,
// which covers every workload in this repository. Use it in inner loops
// (clustering, indexing); use Distance when exactness matters.
func FastDistance(p, q Point) float64 {
	x := (q.lngRad() - p.lngRad()) * math.Cos((p.latRad()+q.latRad())/2)
	y := q.latRad() - p.latRad()
	return EarthRadius * math.Sqrt(x*x+y*y)
}

// Bearing returns the initial great-circle bearing in degrees (clockwise
// from true north, in [0, 360)) of the path from p to q.
func Bearing(p, q Point) float64 {
	lat1, lat2 := p.latRad(), q.latRad()
	dLng := q.lngRad() - p.lngRad()
	y := math.Sin(dLng) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLng)
	b := math.Atan2(y, x) * radToDeg
	return math.Mod(b+360, 360)
}

// Destination returns the point reached by travelling dist meters from p
// along the given initial bearing (degrees clockwise from north) on a
// great circle.
func Destination(p Point, bearingDeg, dist float64) Point {
	if dist == 0 {
		return p
	}
	ang := dist / EarthRadius // angular distance
	brng := bearingDeg * degToRad
	lat1 := p.latRad()
	lng1 := p.lngRad()
	sinLat2 := math.Sin(lat1)*math.Cos(ang) + math.Cos(lat1)*math.Sin(ang)*math.Cos(brng)
	lat2 := math.Asin(clamp(sinLat2, -1, 1))
	y := math.Sin(brng) * math.Sin(ang) * math.Cos(lat1)
	x := math.Cos(ang) - math.Sin(lat1)*sinLat2
	lng2 := lng1 + math.Atan2(y, x)
	return Point{Lat: lat2 * radToDeg, Lng: normalizeLng(lng2 * radToDeg)}
}

// Interpolate returns the point a fraction f of the way along the great
// circle from p to q. f is clamped to [0, 1]; Interpolate(p, q, 0) == p and
// Interpolate(p, q, 1) == q up to floating-point error.
func Interpolate(p, q Point, f float64) Point {
	f = clamp(f, 0, 1)
	if f == 0 || p.Equal(q) {
		return p
	}
	if f == 1 {
		return q
	}
	// Spherical linear interpolation (slerp) on unit vectors.
	d := Distance(p, q) / EarthRadius // angular distance
	if d < 1e-12 {
		return p
	}
	sinD := math.Sin(d)
	a := math.Sin((1-f)*d) / sinD
	b := math.Sin(f*d) / sinD
	lat1, lng1 := p.latRad(), p.lngRad()
	lat2, lng2 := q.latRad(), q.lngRad()
	x := a*math.Cos(lat1)*math.Cos(lng1) + b*math.Cos(lat2)*math.Cos(lng2)
	y := a*math.Cos(lat1)*math.Sin(lng1) + b*math.Cos(lat2)*math.Sin(lng2)
	z := a*math.Sin(lat1) + b*math.Sin(lat2)
	lat := math.Atan2(z, math.Sqrt(x*x+y*y))
	lng := math.Atan2(y, x)
	return Point{Lat: lat * radToDeg, Lng: lng * radToDeg}
}

// Midpoint returns the great-circle midpoint of p and q.
func Midpoint(p, q Point) Point { return Interpolate(p, q, 0.5) }

// Centroid returns the spherical centroid (normalized mean of unit
// vectors) of the given points. It returns the zero Point and false when
// pts is empty or the points cancel out (antipodal configurations).
func Centroid(pts []Point) (Point, bool) {
	var acc CentroidAcc
	for _, p := range pts {
		acc.Add(p)
	}
	return acc.Result()
}

// CentroidAcc accumulates a spherical centroid one point at a time —
// the streaming form of Centroid. Adding the same points in the same
// order produces the bit-identical result, which is what lets the
// incremental stay detector (internal/risk) compact a run of buffered
// observations into constant state without drifting from the batch
// computation. The zero value is ready to use.
type CentroidAcc struct {
	x, y, z float64
	n       int
}

// Add folds one point into the accumulator.
func (a *CentroidAcc) Add(p Point) {
	lat, lng := p.latRad(), p.lngRad()
	a.x += math.Cos(lat) * math.Cos(lng)
	a.y += math.Cos(lat) * math.Sin(lng)
	a.z += math.Sin(lat)
	a.n++
}

// N returns the number of points added.
func (a *CentroidAcc) N() int { return a.n }

// Result returns the centroid of the points added so far. It returns
// the zero Point and false when no point was added or the points cancel
// out (antipodal configurations).
func (a *CentroidAcc) Result() (Point, bool) {
	if a.n == 0 {
		return Point{}, false
	}
	n := float64(a.n)
	x, y, z := a.x/n, a.y/n, a.z/n
	norm := math.Sqrt(x*x + y*y + z*z)
	if norm < 1e-12 {
		return Point{}, false
	}
	lat := math.Atan2(z, math.Sqrt(x*x+y*y))
	lng := math.Atan2(y, x)
	return Point{Lat: lat * radToDeg, Lng: lng * radToDeg}, true
}

func normalizeLng(lng float64) float64 {
	for lng > 180 {
		lng -= 360
	}
	for lng < -180 {
		lng += 360
	}
	return lng
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

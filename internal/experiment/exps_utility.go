package experiment

import (
	"mobipriv/internal/metrics"
	"mobipriv/internal/stats"
)

func init() {
	register(Experiment{ID: "E4", Title: "Spatial distortion per mechanism", Run: runE4})
	register(Experiment{ID: "E5", Title: "Area coverage F1 vs cell size", Run: runE5})
	register(Experiment{ID: "E11", Title: "Analyst query suite per mechanism", Run: runE11})
}

// runE4 compares the spatial distortion of each mechanism in both
// directions: published→original (does the published point lie on a real
// path?) and original→published "completeness" (is every real movement
// still represented?). The pipeline variant is excluded here because its
// identities are swapped; its spatial behaviour equals the promesse row
// plus the suppression quantified in E9.
func runE4(s Scale) (*Table, error) {
	g, err := commuterWorkload(s)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:    "E4",
		Title: "Spatial distortion per mechanism (commuter workload)",
		Columns: []string{"mechanism", "pub->orig med (m)", "pub->orig p95 (m)",
			"orig->pub med (m)", "orig->pub p95 (m)"},
	}
	for _, m := range standardMechanisms() {
		if m.name == "pipeline" {
			continue
		}
		published, err := m.apply(g.Dataset)
		if err != nil {
			return nil, err
		}
		dist, err := metrics.DatasetDistortion(g.Dataset, published)
		if err != nil {
			return nil, err
		}
		comp, err := metrics.DatasetCompleteness(g.Dataset, published)
		if err != nil {
			return nil, err
		}
		ds, cs := stats.Summarize(dist), stats.Summarize(comp)
		table.AddRow(m.name, fmtM(ds.Median), fmtM(ds.P95), fmtM(cs.Median), fmtM(cs.P95))
	}
	table.AddNote("expected shape: promesse pub->orig ~0 (published points lie on the original path) and orig->pub bounded by ~epsilon; geo-i median ~100 m to the nearest path segment (point displacement median is 167 m) at eps=0.01; w4m largest")
	return table, nil
}

// runE5 measures how faithfully each mechanism preserves which areas of
// the city were visited, across cell sizes.
func runE5(s Scale) (*Table, error) {
	g, err := commuterWorkload(s)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:      "E5",
		Title:   "Area coverage F1 vs cell size (commuter workload)",
		Columns: []string{"mechanism", "100 m", "200 m", "500 m", "1000 m"},
	}
	cells := []float64{100, 200, 500, 1000}
	for _, m := range standardMechanisms() {
		published, err := m.apply(g.Dataset)
		if err != nil {
			return nil, err
		}
		row := []string{m.name}
		for _, c := range cells {
			cov, err := metrics.Coverage(g.Dataset, published, c)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtF(cov.F1))
		}
		table.AddRow(row...)
	}
	table.AddNote("expected shape: promesse/pipeline F1 near 1 for cells >= epsilon; geo-i degrades at small cells; w4m lowest")
	return table, nil
}

// runE11 runs the analyst query suite: trip lengths, OD flows, popular
// cells, range queries. This is where the paper's own caveat shows up:
// transition (OD) analyses break under swapping while spatial densities
// survive.
func runE11(s Scale) (*Table, error) {
	g, err := commuterWorkload(s)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:      "E11",
		Title:   "Analyst query suite (commuter workload)",
		Columns: []string{"mechanism", "trip len err", "OD accuracy", "popular tau", "range qry err"},
	}
	for _, m := range standardMechanisms() {
		published, err := m.apply(g.Dataset)
		if err != nil {
			return nil, err
		}
		lens, err := metrics.TripLengths(g.Dataset, published)
		if err != nil {
			return nil, err
		}
		od, err := metrics.ODFlows(g.Dataset, published, 500)
		if err != nil {
			return nil, err
		}
		tau, err := metrics.PopularCellsTau(g.Dataset, published, 500, 20)
		if err != nil {
			return nil, err
		}
		rq, err := metrics.RangeQueryError(g.Dataset, published, 100, 500, 1)
		if err != nil {
			return nil, err
		}
		table.AddRow(m.name, fmtF(lens.MeanRelError), fmtF(od.Accuracy), fmtF(tau),
			fmtF(stats.Mean(rq)))
	}
	table.AddNote("expected shape: pipeline keeps popular-cells/coverage-style queries, loses OD (swapping); geo-i loses density detail; w4m loses both")
	table.AddNote("range query error uses 100 random 500 m disc-count queries; promesse/pipeline error reflects time re-distribution, not spatial error")
	return table, nil
}

package experiment

import (
	"fmt"

	"mobipriv/internal/attack/poiattack"
	"mobipriv/internal/attack/reident"
	"mobipriv/internal/core"
	"mobipriv/internal/geo"
	"mobipriv/internal/metrics"
	"mobipriv/internal/mixzone"
	"mobipriv/internal/poi"
	"mobipriv/internal/stats"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

func init() {
	register(Experiment{ID: "E7", Title: "Re-identification vs mix-zone radius, with/without swapping", Run: runE7})
	register(Experiment{ID: "E9", Title: "Natural mix-zone supply vs user density", Run: runE9})
	register(Experiment{ID: "E12", Title: "Pipeline ablations", Run: runE12})
}

// runE7 measures the two re-identification attacks against the mix-zone
// step, sweeping the zone radius, with swapping on and off.
func runE7(s Scale) (*Table, error) {
	g, err := commuterWorkload(s)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:    "E7",
		Title: "Re-identification attacks vs mix-zone radius (commuter workload)",
		Columns: []string{"radius (m)", "swap", "zones", "swaps", "label e2e",
			"kinematic zone acc", "kinematic e2e", "poi-link rate"},
	}
	known := knownPOIs(g)
	for _, radius := range []float64{25, 50, 100, 200} {
		for _, noSwap := range []bool{true, false} {
			cfg := mixzone.DefaultConfig()
			cfg.Radius = radius
			cfg.NoSwap = noSwap
			res, err := mixzone.Apply(g.Dataset, cfg)
			if err != nil {
				return nil, err
			}
			tr, err := reident.Tracker(res, res.Dataset)
			if err != nil {
				return nil, err
			}
			link, err := linkAttack(res, known)
			if err != nil {
				return nil, err
			}
			table.AddRow(fmt.Sprintf("%.0f", radius), fmt.Sprintf("%v", !noSwap),
				fmtI(len(res.Zones)), fmtI(res.SwapCount()), fmtF(labelE2E(res)),
				fmtF(tr.ZoneAccuracy), fmtF(tr.EndToEnd), fmtF(link.Rate))
		}
	}
	table.AddNote("label e2e: attacker simply follows the published identifier; 1.0 without swapping by construction")
	table.AddNote("kinematic: constant-velocity multi-target tracker (Hoh-style) that ignores labels")
	table.AddNote("expected shape: swapping collapses label e2e; the kinematic tracker stays low because most zones are at shared venues where users are interchangeable")
	return table, nil
}

// labelE2E returns the success rate of the trivial label-following
// attacker: the fraction of users still published under their initial
// identity at the end of the observation window (each user's latest
// ground-truth segment).
func labelE2E(res *mixzone.Result) float64 {
	latest := make(map[string]mixzone.Segment)
	for _, s := range res.Segments {
		if prev, ok := latest[s.Original]; !ok || s.To.After(prev.To) {
			latest[s.Original] = s
		}
	}
	if len(latest) == 0 {
		return 1
	}
	correct := 0
	for u, s := range latest {
		if s.Output == u {
			correct++
		}
	}
	return float64(correct) / float64(len(latest))
}

// knownPOIs is the attacker's background knowledge: every user's true
// POI locations.
func knownPOIs(g *synth.Generated) map[string][]geo.Point {
	return poiattack.TruePOIs(g.Stays, 250)
}

// linkAttack runs the POI linker against the mix-zone result's own
// dataset.
func linkAttack(res *mixzone.Result, known map[string][]geo.Point) (reident.LinkResult, error) {
	return linkAttackOn(res.Dataset, res, known)
}

// linkAttackOn runs the POI linker against an arbitrary published
// dataset (e.g. the post-smoothing one) using the majority-owner ground
// truth of the mix-zone result.
func linkAttackOn(published *trace.Dataset, res *mixzone.Result, known map[string][]geo.Point) (reident.LinkResult, error) {
	owner := func(pub string) string {
		best := ""
		var bestDur int64 = -1
		totals := make(map[string]int64)
		for _, s := range res.Segments {
			if s.Output == pub {
				totals[s.Original] += int64(s.To.Sub(s.From))
			}
		}
		for u, d := range totals {
			if d > bestDur || (d == bestDur && u < best) {
				best, bestDur = u, d
			}
		}
		return best
	}
	return reident.LinkByPOI(published, known, owner, poi.DefaultConfig(), 250)
}

// runE9 quantifies the mechanism's raw material: how many natural
// meetings exist as a function of how many users are observed.
func runE9(s Scale) (*Table, error) {
	table := &Table{
		ID:    "E9",
		Title: "Natural mix-zone supply vs user density (commuter workload)",
		Columns: []string{"users", "zones", "swapped zones", "multi-user zones",
			"entropy (bits)", "bits/user", "suppressed pts", "suppressed %"},
	}
	sizes := []int{10, 20, 40}
	if s == Full {
		sizes = []int{20, 50, 100, 200}
	}
	for _, n := range sizes {
		g, err := commuterWorkloadN(s, n)
		if err != nil {
			return nil, err
		}
		res, err := mixzone.Apply(g.Dataset, mixzone.DefaultConfig())
		if err != nil {
			return nil, err
		}
		multi := 0
		counts := make([]int, 0, len(res.Zones))
		for _, z := range res.Zones {
			counts = append(counts, len(z.Participants))
			if len(z.Participants) > 2 {
				multi++
			}
		}
		pct := 0.0
		if tp := g.Dataset.TotalPoints(); tp > 0 {
			pct = 100 * float64(res.Suppressed) / float64(tp)
		}
		bits := zoneEntropy(counts)
		table.AddRow(fmtI(n), fmtI(len(res.Zones)), fmtI(res.SwapCount()), fmtI(multi),
			fmt.Sprintf("%.0f", bits), fmt.Sprintf("%.1f", bits/float64(n)),
			fmtI(res.Suppressed), fmt.Sprintf("%.2f%%", pct))
	}
	table.AddNote("expected shape: zones grow super-linearly with density; suppression concentrates at shared venues where users are stationary, so the removed points carry little spatial information (sizeable percentage for commuters, who are co-located for office hours)")
	return table, nil
}

// runE12 is the ablation study over the design choices listed in
// DESIGN.md §5.
func runE12(s Scale) (*Table, error) {
	g, err := commuterWorkload(s)
	if err != nil {
		return nil, err
	}
	known := knownPOIs(g)
	table := &Table{
		ID:    "E12",
		Title: "Pipeline ablations (commuter workload)",
		Columns: []string{"variant", "poi F1 (global)", "label e2e", "kinematic e2e",
			"poi-link rate", "orig->pub med (m)", "endpoint leak"},
	}

	type variant struct {
		name        string
		smooth      bool
		trim        float64 // passed to core.Config.Trim
		noSwap      bool
		noSuppress  bool
		smoothFirst bool // the rejected ordering: smooth before zone detection
	}
	variants := []variant{
		{name: "full pipeline", smooth: true, trim: -1},
		{name: "no trimming", smooth: true, trim: 0},
		{name: "no suppression", smooth: true, trim: -1, noSuppress: true},
		{name: "no swapping", smooth: true, trim: -1, noSwap: true},
		{name: "no smoothing", smooth: false},
		{name: "smooth-first order", smooth: true, trim: -1, smoothFirst: true},
	}
	for _, v := range variants {
		cfg := mixzone.DefaultConfig()
		cfg.NoSwap = v.noSwap
		cfg.NoSuppress = v.noSuppress

		// Stage inputs depend on the ordering under test. The default
		// (paper-operational) order is swap on original timing, then
		// smooth the composites; the 'smooth-first order' row shows what
		// Figure 1's presentation order would do.
		zoneInput := g.Dataset
		if v.smoothFirst {
			sm, _, err := core.SmoothDataset(g.Dataset, core.Config{Epsilon: 100, Trim: v.trim})
			if err != nil {
				return nil, err
			}
			zoneInput = sm
		}
		res, err := mixzone.Apply(zoneInput, cfg)
		if err != nil {
			return nil, err
		}
		published := res.Dataset
		if v.smooth && !v.smoothFirst {
			sm, _, err := core.SmoothDataset(published, core.Config{Epsilon: 100, Trim: v.trim})
			if err != nil {
				return nil, err
			}
			published = sm
		}
		atk, err := poiattack.Evaluate(published, g.Stays, poiattack.DefaultConfig())
		if err != nil {
			return nil, err
		}
		// The kinematic tracker gets the strongest possible view: the
		// swap-stage output before smoothing re-times it.
		trk, err := reident.Tracker(res, res.Dataset)
		if err != nil {
			return nil, err
		}
		link, err := linkAttackOn(published, res, known)
		if err != nil {
			return nil, err
		}
		dist := "-"
		if v.smooth {
			sm, _, err := core.SmoothDataset(g.Dataset, core.Config{Epsilon: 100, Trim: v.trim})
			if err != nil {
				return nil, err
			}
			ds, err := metrics.DatasetCompleteness(g.Dataset, sm)
			if err != nil {
				return nil, err
			}
			dist = fmtM(stats.Median(ds))
		}
		table.AddRow(v.name, fmtF(atk.Global.F1), fmtF(labelE2E(res)), fmtF(trk.EndToEnd),
			fmtF(link.Rate), dist, fmtF(endpointLeak(g, published)))
	}
	table.AddNote("endpoint leak = fraction of users whose home (first ground-truth stay) is within 50 m of a published trace endpoint")
	table.AddNote("kinematic e2e is measured against the swap-stage output (strongest attacker view, before smoothing re-times it)")
	table.AddNote("expected shape: 'no trimming' leaks endpoints; 'no swapping' restores label e2e to 1; 'no smoothing' restores POI F1; 'smooth-first order' starves the zone supply (label e2e near 1)")
	return table, nil
}

// endpointLeak measures how often a published trace endpoint betrays a
// user's home location.
func endpointLeak(g *synth.Generated, published *trace.Dataset) float64 {
	users := g.Dataset.Users()
	if len(users) == 0 {
		return 0
	}
	leaked := 0
	for _, u := range users {
		stays := g.StaysOf(u)
		if len(stays) == 0 {
			continue
		}
		home := stays[0].Center
		found := false
		for _, tr := range published.Traces() {
			if geo.FastDistance(tr.Start().Point, home) <= 50 ||
				geo.FastDistance(tr.End().Point, home) <= 50 {
				found = true
				break
			}
		}
		if found {
			leaked++
		}
	}
	return float64(leaked) / float64(len(users))
}

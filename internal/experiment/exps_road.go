package experiment

import (
	"fmt"
	"time"

	"mobipriv/internal/attack/reident"
	"mobipriv/internal/geo"
	"mobipriv/internal/mixzone"
	"mobipriv/internal/synth"
)

func init() {
	register(Experiment{ID: "E15", Title: "Zone composition: venue co-location vs road crossings", Run: runE15})
}

// runE15 contrasts the two natural mix-zone regimes. On the free-route
// commuter workload, almost all zones come from venue co-location
// (stationary, kinematically interchangeable users). On the road-routed
// workload, trips funnel through shared streets, adding kinetic
// crossings — the case where a velocity-predicting tracker is strongest
// and suppression/swap placement matters most.
func runE15(s Scale) (*Table, error) {
	table := &Table{
		ID:    "E15",
		Title: "Zone composition and tracker strength per workload",
		Columns: []string{"workload", "zones", "kinetic zones %", "label e2e",
			"kinematic zone acc", "kinematic e2e"},
	}

	free, err := commuterWorkload(s)
	if err != nil {
		return nil, err
	}
	roadCfg := synth.DefaultRoadCommuterConfig()
	if s == Quick {
		roadCfg.Users = 12
		roadCfg.Sampling = 2 * time.Minute
		roadCfg.GridRows, roadCfg.GridCols = 5, 5
	}
	road, err := synth.RoadCommuters(roadCfg)
	if err != nil {
		return nil, err
	}

	for _, wl := range []struct {
		name string
		g    *synth.Generated
	}{{"free-route", free}, {"road-routed", road}} {
		res, err := mixzone.Apply(wl.g.Dataset, mixzone.DefaultConfig())
		if err != nil {
			return nil, err
		}
		kinetic := 0
		for _, z := range res.Zones {
			if isKinetic(wl.g, z) {
				kinetic++
			}
		}
		pct := 0.0
		if len(res.Zones) > 0 {
			pct = 100 * float64(kinetic) / float64(len(res.Zones))
		}
		trk, err := reident.Tracker(res, res.Dataset)
		if err != nil {
			return nil, err
		}
		table.AddRow(wl.name, fmtI(len(res.Zones)), fmt.Sprintf("%.0f%%", pct),
			fmtF(labelE2E(res)), fmtF(trk.ZoneAccuracy), fmtF(trk.EndToEnd))
	}
	table.AddNote("a zone is 'kinetic' when its center is more than 200 m from every shared venue (i.e. users met in motion, not while parked together)")
	table.AddNote("expected shape: road routing raises the kinetic share and with it the tracker's per-zone accuracy; end-to-end tracking still collapses because errors compound across zones")
	return table, nil
}

// isKinetic reports whether the zone happened away from every venue.
func isKinetic(g *synth.Generated, z mixzone.Zone) bool {
	for _, v := range g.Venues {
		if geo.FastDistance(z.Center, v) <= 200 {
			return false
		}
	}
	return true
}

package experiment

import (
	"fmt"

	"mobipriv"
	"mobipriv/internal/baseline/geoind"
	"mobipriv/internal/baseline/w4m"
	"mobipriv/internal/core"
	"mobipriv/internal/trace"
)

// mechanism is one anonymization under evaluation: a name and an
// application function. Mechanisms that drop users return the published
// dataset only; experiments needing ground truth call the underlying
// packages directly.
type mechanism struct {
	name  string
	apply func(*trace.Dataset) (*trace.Dataset, error)
}

// standardMechanisms returns the lineup compared throughout the
// evaluation: raw publication (pseudonyms only, the strawman), the
// paper's full pipeline, its smoothing-only variant, and the two
// baselines from the related-work section.
func standardMechanisms() []mechanism {
	return []mechanism{
		{name: "raw", apply: func(d *trace.Dataset) (*trace.Dataset, error) { return d, nil }},
		{name: "promesse", apply: applySmoothOnly},
		{name: "pipeline", apply: applyPipeline},
		{name: "geo-i(0.01)", apply: func(d *trace.Dataset) (*trace.Dataset, error) {
			return geoind.PerturbDataset(d, geoind.Config{Epsilon: 0.01, Seed: 1})
		}},
		{name: "w4m(4,200)", apply: applyW4MDefault},
	}
}

func applySmoothOnly(d *trace.Dataset) (*trace.Dataset, error) {
	out, _, err := core.SmoothDataset(d, core.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("experiment: promesse: %w", err)
	}
	return out, nil
}

func applyPipeline(d *trace.Dataset) (*trace.Dataset, error) {
	a, err := mobipriv.New(mobipriv.DefaultOptions())
	if err != nil {
		return nil, err
	}
	res, err := a.Anonymize(d)
	if err != nil {
		return nil, fmt.Errorf("experiment: pipeline: %w", err)
	}
	return res.Dataset, nil
}

func applyW4MDefault(d *trace.Dataset) (*trace.Dataset, error) {
	res, err := w4m.Anonymize(d, w4m.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("experiment: w4m: %w", err)
	}
	return res.Dataset, nil
}

package experiment

import (
	"context"
	"fmt"

	"mobipriv"
	"mobipriv/internal/trace"
)

// defaultLineup is the lineup compared throughout the evaluation,
// resolved from the mobipriv mechanism registry: raw publication (the
// strawman), the paper's smoothing-only variant, its full pipeline, and
// the two baselines from the related-work section. New scenarios are
// one mobipriv.Register (or SetLineup) call away.
var defaultLineup = []string{
	"raw",
	"promesse",
	"pipeline",
	"geoi(0.01)",
	"w4m(k=4,delta=200)",
}

var lineup = defaultLineup

// SetLineup replaces the mechanism lineup used by the comparative
// experiments with the given registry specs (validated eagerly).
// Passing nil restores the default lineup.
func SetLineup(specs []string) error {
	if specs == nil {
		lineup = defaultLineup
		return nil
	}
	for _, spec := range specs {
		if _, err := mobipriv.FromSpec(spec); err != nil {
			return fmt.Errorf("experiment: lineup: %w", err)
		}
	}
	lineup = append([]string(nil), specs...)
	return nil
}

// Lineup returns the specs of the current mechanism lineup.
func Lineup() []string { return append([]string(nil), lineup...) }

// mechanism is one anonymization under evaluation, resolved from the
// registry. Mechanisms that drop users return the published dataset
// only; experiments needing ground truth call the underlying packages
// directly.
type mechanism struct {
	name string
	mech mobipriv.Mechanism
}

func (m mechanism) apply(d *trace.Dataset) (*trace.Dataset, error) {
	res, err := m.mech.Apply(context.Background(), d)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", m.name, err)
	}
	return res.Dataset, nil
}

// standardMechanisms resolves the current lineup from the registry.
// The default lineup is known-good, and SetLineup validates eagerly, so
// a resolution failure here is a programmer error.
func standardMechanisms() []mechanism {
	out := make([]mechanism, 0, len(lineup))
	for _, spec := range lineup {
		m, err := mobipriv.FromSpec(spec)
		if err != nil {
			panic(fmt.Sprintf("experiment: lineup spec %q: %v", spec, err))
		}
		out = append(out, mechanism{name: m.Name(), mech: m})
	}
	return out
}

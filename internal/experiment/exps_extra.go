package experiment

import (
	"fmt"
	"math"
	"time"

	"mobipriv"
	"mobipriv/internal/attack/mmc"
	"mobipriv/internal/attack/semantic"
	"mobipriv/internal/core"
	"mobipriv/internal/geo"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

func init() {
	register(Experiment{ID: "E13", Title: "Background-knowledge residual (semantic venue attack)", Run: runE13})
	register(Experiment{ID: "E14", Title: "MMC re-identification (Gambs et al. [1])", Run: runE14})
}

// runE13 quantifies the paper's own §III caveat: after speed smoothing,
// an attacker with venue background knowledge still gets "clues" from
// path proximity but "no certainty". We measure recall@k of true POIs
// among ranked venues, against the random-guessing floor.
func runE13(s Scale) (*Table, error) {
	g, err := commuterWorkload(s)
	if err != nil {
		return nil, err
	}
	// Venue universe: all shared venues plus every user's home (the
	// attacker knows the city, not the users).
	venues := append([]geo.Point(nil), g.Venues...)
	for _, u := range g.Dataset.Users() {
		if stays := g.StaysOf(u); len(stays) > 0 {
			venues = append(venues, stays[0].Center)
		}
	}
	truth := make(map[string][]geo.Point)
	for _, st := range g.Stays {
		truth[st.User] = appendIfFar(truth[st.User], st.Center, 150)
	}

	table := &Table{
		ID:      "E13",
		Title:   "Semantic venue attack: true-POI recall among top-k venues (commuter workload)",
		Columns: []string{"publication", "recall@1", "recall@3", "recall@5", "random@5"},
	}
	smoothed, _, err := core.SmoothDataset(g.Dataset, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rows := []struct {
		name string
		ds   *trace.Dataset
	}{
		{"raw", g.Dataset},
		{"promesse", smoothed},
	}
	cfg := semantic.DefaultConfig()
	for _, row := range rows {
		var recalls []string
		for _, k := range []int{1, 3, 5} {
			r, err := semantic.RecallAtK(row.ds, venues, truth, k, cfg)
			if err != nil {
				return nil, err
			}
			recalls = append(recalls, fmtF(r))
		}
		table.AddRow(row.name, recalls[0], recalls[1], recalls[2],
			fmtF(semantic.RandomBaseline(len(venues), 5)))
	}
	table.AddNote("venue universe: %d venues (shared venues + homes)", len(venues))
	table.AddNote("recall@k = fraction of each user's true POIs found among the k best-scored venues; users have 2-4 POIs, so recall@1 is capped well below 1 even for a perfect attacker")
	table.AddNote("expected shape: raw recall@3 = 1 (certainty); promesse sits between the random floor and raw — clues survive, as §III concedes, but certainty is gone")
	return table, nil
}

func appendIfFar(pts []geo.Point, p geo.Point, minDist float64) []geo.Point {
	for _, q := range pts {
		if geo.FastDistance(p, q) < minDist {
			return pts
		}
	}
	return append(pts, p)
}

// runE14 runs the Mobility-Markov-Chain re-identification of Gambs et
// al. [1]: train on day 1, attack day 2 under each mechanism.
func runE14(s Scale) (*Table, error) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Days = 2
	if s == Quick {
		cfg.Users = 12
		cfg.Sampling = 2 * time.Minute
	} else {
		cfg.Users = 50
		cfg.Sampling = time.Minute
	}
	g, err := synth.Commuters(cfg)
	if err != nil {
		return nil, err
	}
	mid := cfg.Start.Add(24 * time.Hour)
	var trainTraces, testTraces []*trace.Trace
	for _, tr := range g.Dataset.Traces() {
		if d1 := tr.Crop(cfg.Start, mid); d1 != nil {
			trainTraces = append(trainTraces, d1)
		}
		if d2 := tr.Crop(mid, cfg.Start.Add(48*time.Hour)); d2 != nil {
			testTraces = append(testTraces, d2)
		}
	}
	train, err := trace.NewDataset(trainTraces)
	if err != nil {
		return nil, err
	}
	test, err := trace.NewDataset(testTraces)
	if err != nil {
		return nil, err
	}
	chains, skipped, err := mmc.BuildAll(train, mmc.DefaultConfig())
	if err != nil {
		return nil, err
	}

	table := &Table{
		ID:      "E14",
		Title:   "MMC re-identification: train day 1, attack day 2 (commuter workload)",
		Columns: []string{"publication", "re-identified", "rate"},
	}
	ident := func(u string) string { return u }

	raw, err := mmc.Reidentify(test, chains, ident, mmc.DefaultConfig(), 500)
	if err != nil {
		return nil, err
	}
	table.AddRow("raw", fmt.Sprintf("%d/%d", raw.Correct, raw.Total), fmtF(raw.Rate))

	smoothed, _, err := core.SmoothDataset(test, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	sm, err := mmc.Reidentify(smoothed, chains, ident, mmc.DefaultConfig(), 500)
	if err != nil {
		return nil, err
	}
	table.AddRow("promesse", fmt.Sprintf("%d/%d", sm.Correct, sm.Total), fmtF(sm.Rate))

	a, err := mobipriv.New(mobipriv.DefaultOptions())
	if err != nil {
		return nil, err
	}
	res, err := a.Anonymize(test)
	if err != nil {
		return nil, err
	}
	pipe, err := mmc.Reidentify(res.Dataset, chains, res.MajorityOwner, mmc.DefaultConfig(), 500)
	if err != nil {
		return nil, err
	}
	table.AddRow("pipeline", fmt.Sprintf("%d/%d", pipe.Correct, pipe.Total), fmtF(pipe.Rate))

	if len(skipped) > 0 {
		table.AddNote("%d users had no extractable training chain", len(skipped))
	}
	table.AddNote("expected shape: raw near 1; promesse stays high (route geometry still passes the user's own POIs — stop hiding is not route hiding); the pipeline's swapping is what breaks chain matching")
	return table, nil
}

// zoneEntropy returns the total linkage entropy (bits) the zones supply:
// each k-participant zone contributes log2(k!).
func zoneEntropy(participantCounts []int) float64 {
	var bits float64
	for _, k := range participantCounts {
		for i := 2; i <= k; i++ {
			bits += math.Log2(float64(i))
		}
	}
	return bits
}

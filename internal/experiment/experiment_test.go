package experiment

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("registered %d experiments, want 15", len(all))
	}
	// Natural order E1..E12.
	for i, e := range all {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("All()[%d].ID = %s, want %s", i, e.ID, want)
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("E2"); err != nil {
		t.Fatalf("ByID(E2): %v", err)
	}
	_, err := ByID("E99")
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("ByID(E99) error = %v", err)
	}
}

func TestTableRender(t *testing.T) {
	table := &Table{ID: "T", Title: "demo", Columns: []string{"a", "long-column"}}
	table.AddRow("1", "2")
	table.AddRow("333333", "4")
	table.AddNote("hello %d", 42)
	var buf bytes.Buffer
	if err := table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T: demo ==", "long-column", "333333", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Fatal("scale strings")
	}
	if Scale(99).String() == "" {
		t.Fatal("unknown scale should still render")
	}
}

// TestAllExperimentsRunQuick executes every experiment at Quick scale —
// the repository's top-level integration test.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take a few seconds")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table, err := e.Run(Quick)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if len(table.Columns) == 0 {
				t.Fatalf("%s has no columns", e.ID)
			}
			for ri, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Errorf("%s row %d has %d cells, want %d", e.ID, ri, len(row), len(table.Columns))
				}
			}
			var buf bytes.Buffer
			if err := table.Render(&buf); err != nil {
				t.Fatalf("%s render: %v", e.ID, err)
			}
			t.Logf("\n%s", buf.String())
		})
	}
}

func TestNaturalLess(t *testing.T) {
	if !naturalLess("E2", "E10") {
		t.Error("E2 should sort before E10")
	}
	if naturalLess("E10", "E2") {
		t.Error("E10 should not sort before E2")
	}
}

package experiment

import (
	"fmt"
	"time"

	"mobipriv/internal/attack/poiattack"
	"mobipriv/internal/baseline/geoind"
	"mobipriv/internal/core"
	"mobipriv/internal/geo"
	"mobipriv/internal/metrics"
	"mobipriv/internal/mixzone"
	"mobipriv/internal/poi"
	"mobipriv/internal/stats"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

func init() {
	register(Experiment{ID: "E1", Title: "Fig. 1 reproduction: two traces through the pipeline", Run: runE1})
	register(Experiment{ID: "E2", Title: "POI retrieval per mechanism (commuter + taxi)", Run: runE2})
	register(Experiment{ID: "E3", Title: "POI recall vs Geo-I privacy budget", Run: runE3})
	register(Experiment{ID: "E6", Title: "Promesse epsilon sweep: hiding vs distortion", Run: runE6})
}

// runE1 reproduces the paper's Figure 1 quantitatively: two users, each
// with two stops (POIs), whose paths cross once; the table reports what
// an adversary sees at each pipeline stage.
func runE1(Scale) (*Table, error) {
	t0 := time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	origin := geo.Point{Lat: 45.7640, Lng: 4.8357}

	// User A: stop 15 min at west POI, travel east 2 km through the
	// crossing, stop 15 min at east POI.
	mk := func(user string, brg float64) *trace.Trace {
		start := geo.Destination(origin, brg, 1000)
		end := geo.Destination(origin, brg+180, 1000)
		var pts []trace.Point
		now := t0
		for i := 0; i < 30; i++ { // 15 min stop, 30 s sampling
			pts = append(pts, trace.Point{Point: geo.Offset(start, float64(i%2), 0), Time: now})
			now = now.Add(30 * time.Second)
		}
		for d := 100.0; d < 2000; d += 100 { // 10 m/s towards the end point
			pts = append(pts, trace.Point{Point: geo.Interpolate(start, end, d/2000), Time: now})
			now = now.Add(10 * time.Second)
		}
		for i := 0; i < 30; i++ {
			pts = append(pts, trace.Point{Point: geo.Offset(end, float64(i%2), 0), Time: now})
			now = now.Add(30 * time.Second)
		}
		return trace.MustNew(user, pts)
	}
	a := mk("userA", 270) // west -> east
	b := mk("userB", 0)   // north -> south, crossing at the origin
	d := trace.MustNewDataset([]*trace.Trace{a, b})

	table := &Table{
		ID:      "E1",
		Title:   "Fig. 1 reproduction: adversary view per pipeline stage",
		Columns: []string{"stage", "points", "stays found", "POIs found", "zones", "swapped"},
	}
	countStays := func(ds *trace.Dataset) (int, int, error) {
		var nStays, nPOIs int
		for _, tr := range ds.Traces() {
			ss, err := poi.Stays(tr, poi.DefaultConfig())
			if err != nil {
				return 0, 0, err
			}
			nStays += len(ss)
			nPOIs += len(poi.Cluster(ss, 200))
		}
		return nStays, nPOIs, nil
	}

	s0, p0, err := countStays(d)
	if err != nil {
		return nil, err
	}
	table.AddRow("(a) original", fmtI(d.TotalPoints()), fmtI(s0), fmtI(p0), "-", "-")

	smoothed, _, err := core.SmoothDataset(d, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	s1, p1, err := countStays(smoothed)
	if err != nil {
		return nil, err
	}
	table.AddRow("(b) constant speed", fmtI(smoothed.TotalPoints()), fmtI(s1), fmtI(p1), "-", "-")

	// Find a seed that swaps, as in the figure.
	var mz *mixzone.Result
	for seed := int64(1); seed < 32; seed++ {
		cfg := mixzone.DefaultConfig()
		cfg.SwapSeed = seed
		mz, err = mixzone.Apply(smoothed, cfg)
		if err != nil {
			return nil, err
		}
		if mz.SwapCount() > 0 {
			break
		}
	}
	s2, p2, err := countStays(mz.Dataset)
	if err != nil {
		return nil, err
	}
	table.AddRow("(c) after swapping", fmtI(mz.Dataset.TotalPoints()), fmtI(s2), fmtI(p2),
		fmtI(len(mz.Zones)), fmt.Sprintf("%v", mz.SwapCount() > 0))
	table.AddNote("expected shape: 4 stays/4 POIs at stage (a); 0 at (b) and (c); 1 zone swapped at (c)")
	table.AddNote("stage (c) suppressed %d in-zone points", mz.Suppressed)
	return table, nil
}

// runE2 is the headline privacy table: POI retrieval per mechanism on
// both workloads.
func runE2(s Scale) (*Table, error) {
	table := &Table{
		ID:      "E2",
		Title:   "POI retrieval attack per mechanism",
		Columns: []string{"workload", "mechanism", "per-user P", "per-user R", "per-user F1", "global F1"},
	}
	workloads := []struct {
		name string
		gen  func(Scale) (*synth.Generated, error)
	}{
		{"commuter", commuterWorkload},
		{"taxi", taxiWorkload},
	}
	if Overridden() {
		// Both generators would return the same override; one honestly
		// labeled run instead of duplicate rows named after workloads
		// that were never used.
		workloads = workloads[:1]
		workloads[0].name = "dataset"
	}
	for _, wl := range workloads {
		g, err := wl.gen(s)
		if err != nil {
			return nil, err
		}
		for _, m := range standardMechanisms() {
			published, err := m.apply(g.Dataset)
			if err != nil {
				return nil, fmt.Errorf("E2 %s/%s: %w", wl.name, m.name, err)
			}
			res, err := poiattack.Evaluate(published, g.Stays, poiattack.DefaultConfig())
			if err != nil {
				return nil, err
			}
			table.AddRow(wl.name, m.name,
				fmtF(res.PerUser.Precision), fmtF(res.PerUser.Recall), fmtF(res.PerUser.F1),
				fmtF(res.Global.F1))
		}
	}
	table.AddNote("expected shape: raw F1 high; promesse/pipeline F1 near 0; geo-i stays high (the motivating claim); w4m depends on delta (see E8: stops survive but are displaced)")
	return table, nil
}

// runE3 reproduces the motivating claim from the authors' earlier
// measurement [4]: at practical privacy budgets, geo-indistinguishability
// still lets the attack retrieve a large fraction (>= 60%) of POIs.
func runE3(s Scale) (*Table, error) {
	g, err := commuterWorkload(s)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:      "E3",
		Title:   "POI recall vs Geo-I epsilon (commuter workload)",
		Columns: []string{"epsilon (1/m)", "E[noise] (m)", "per-user recall", "per-user F1"},
	}
	for _, eps := range []float64{0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001} {
		published, err := geoind.PerturbDataset(g.Dataset, geoind.Config{Epsilon: eps, Seed: 1})
		if err != nil {
			return nil, err
		}
		res, err := poiattack.Evaluate(published, g.Stays, poiattack.DefaultConfig())
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprintf("%g", eps), fmtM(geoind.ExpectedDisplacement(eps)),
			fmtF(res.PerUser.Recall), fmtF(res.PerUser.F1))
	}
	table.AddNote("expected shape: recall >= 0.6 for eps >= 0.01 (noise <= 200 m), dropping only at impractical noise levels")
	return table, nil
}

// runE6 sweeps the smoothing spacing epsilon: privacy (POI F1) and the
// price paid in spatial distortion and published volume.
func runE6(s Scale) (*Table, error) {
	g, err := commuterWorkload(s)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:    "E6",
		Title: "Promesse epsilon sweep (commuter workload)",
		Columns: []string{"epsilon (m)", "per-user F1", "global F1", "pub->orig med (m)",
			"orig->pub med (m)", "orig->pub p95 (m)", "points kept"},
	}
	for _, eps := range []float64{20, 50, 100, 200, 500} {
		published, _, err := core.SmoothDataset(g.Dataset, core.Config{Epsilon: eps, Trim: -1})
		if err != nil {
			return nil, err
		}
		res, err := poiattack.Evaluate(published, g.Stays, poiattack.DefaultConfig())
		if err != nil {
			return nil, err
		}
		dist, err := metrics.DatasetDistortion(g.Dataset, published)
		if err != nil {
			return nil, err
		}
		comp, err := metrics.DatasetCompleteness(g.Dataset, published)
		if err != nil {
			return nil, err
		}
		ds, cs := stats.Summarize(dist), stats.Summarize(comp)
		table.AddRow(fmt.Sprintf("%.0f", eps), fmtF(res.PerUser.F1), fmtF(res.Global.F1),
			fmtM(ds.Median), fmtM(cs.Median), fmtM(cs.P95), fmtI(published.TotalPoints()))
	}
	table.AddNote("expected shape: F1 low across the sweep; pub->orig ~0 at every epsilon; orig->pub grows with epsilon (corner cutting + trimming)")
	return table, nil
}

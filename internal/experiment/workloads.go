package experiment

import (
	"fmt"
	"time"

	"mobipriv/internal/synth"
)

// commuterWorkload returns the Geolife-like workload at the given scale.
func commuterWorkload(s Scale) (*synth.Generated, error) {
	cfg := synth.DefaultCommuterConfig()
	switch s {
	case Quick:
		cfg.Users = 12
		cfg.Sampling = 2 * time.Minute
	default:
		cfg.Users = 50
		cfg.Sampling = time.Minute
	}
	g, err := synth.Commuters(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: commuter workload: %w", err)
	}
	return g, nil
}

// commuterWorkloadN returns a commuter workload with an explicit user
// count (density sweeps).
func commuterWorkloadN(s Scale, users int) (*synth.Generated, error) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = users
	if s == Quick {
		cfg.Sampling = 2 * time.Minute
	} else {
		cfg.Sampling = time.Minute
	}
	g, err := synth.Commuters(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: commuter workload (%d users): %w", users, err)
	}
	return g, nil
}

// taxiWorkload returns the Cabspotting-like workload at the given scale.
func taxiWorkload(s Scale) (*synth.Generated, error) {
	cfg := synth.DefaultTaxiConfig()
	switch s {
	case Quick:
		cfg.Vehicles = 10
		cfg.TripsEach = 4
		cfg.Sampling = time.Minute
	default:
		cfg.Vehicles = 40
		cfg.TripsEach = 8
		cfg.Sampling = 30 * time.Second
	}
	g, err := synth.TaxiFleet(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: taxi workload: %w", err)
	}
	return g, nil
}

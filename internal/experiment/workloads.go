package experiment

import (
	"errors"
	"fmt"
	"time"

	"mobipriv/internal/synth"
)

// workloadOverride, when set, replaces every synthetic workload: the
// hook cmd/mobibench uses to run the evaluation over a real dataset
// (CSV, JSONL, PLT or a native .mstore store).
var workloadOverride *synth.Generated

// ErrWorkloadOverride reports an experiment that cannot run over a
// fixed dataset because it varies the workload itself (density sweeps);
// labeling identical results with swept parameters would fabricate
// data. Callers running "all" experiments may skip on it.
var ErrWorkloadOverride = errors.New("experiment: workload override (-dataset) is incompatible with experiments that sweep the workload size")

// Overridden reports whether a workload override is active, letting
// multi-workload experiments collapse to a single labeled run instead
// of repeating the same dataset under different workload names.
func Overridden() bool { return workloadOverride != nil }

// SetWorkload overrides all synthetic workloads with g for subsequent
// experiment runs; nil restores the generators. Experiments that need
// ground-truth stays degrade to empty scores when g.Stays is empty.
func SetWorkload(g *synth.Generated) { workloadOverride = g }

// commuterWorkload returns the Geolife-like workload at the given scale.
func commuterWorkload(s Scale) (*synth.Generated, error) {
	if workloadOverride != nil {
		return workloadOverride, nil
	}
	cfg := synth.DefaultCommuterConfig()
	switch s {
	case Quick:
		cfg.Users = 12
		cfg.Sampling = 2 * time.Minute
	default:
		cfg.Users = 50
		cfg.Sampling = time.Minute
	}
	g, err := synth.Commuters(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: commuter workload: %w", err)
	}
	return g, nil
}

// commuterWorkloadN returns a commuter workload with an explicit user
// count (density sweeps).
func commuterWorkloadN(s Scale, users int) (*synth.Generated, error) {
	if workloadOverride != nil {
		return nil, ErrWorkloadOverride
	}
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = users
	if s == Quick {
		cfg.Sampling = 2 * time.Minute
	} else {
		cfg.Sampling = time.Minute
	}
	g, err := synth.Commuters(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: commuter workload (%d users): %w", users, err)
	}
	return g, nil
}

// taxiWorkload returns the Cabspotting-like workload at the given scale.
func taxiWorkload(s Scale) (*synth.Generated, error) {
	if workloadOverride != nil {
		return workloadOverride, nil
	}
	cfg := synth.DefaultTaxiConfig()
	switch s {
	case Quick:
		cfg.Vehicles = 10
		cfg.TripsEach = 4
		cfg.Sampling = time.Minute
	default:
		cfg.Vehicles = 40
		cfg.TripsEach = 8
		cfg.Sampling = 30 * time.Second
	}
	g, err := synth.TaxiFleet(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: taxi workload: %w", err)
	}
	return g, nil
}

package experiment

import (
	"fmt"
	"time"

	"mobipriv/internal/attack/poiattack"
	"mobipriv/internal/baseline/w4m"
	"mobipriv/internal/metrics"
	"mobipriv/internal/stats"
)

func init() {
	register(Experiment{ID: "E8", Title: "Wait4Me (k,delta) sweep", Run: runE8})
	register(Experiment{ID: "E10", Title: "Throughput per mechanism", Run: runE10})
}

// runE8 sweeps Wait4Me's two parameters, showing the privacy knob's cost
// in distortion and suppression and its failure to hide POIs.
func runE8(s Scale) (*Table, error) {
	g, err := commuterWorkload(s)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:    "E8",
		Title: "Wait4Me (k,delta) sweep (commuter workload)",
		Columns: []string{"k", "delta (m)", "suppressed users", "median dist (m)",
			"p95 dist (m)", "poi F1 (per-user)"},
	}
	ks := []int{2, 4, 8}
	deltas := []float64{100, 500, 2000}
	for _, k := range ks {
		for _, delta := range deltas {
			res, err := w4m.Anonymize(g.Dataset, w4m.Config{K: k, Delta: delta})
			if err != nil {
				return nil, err
			}
			if res.Dataset.Len() == 0 {
				table.AddRow(fmtI(k), fmt.Sprintf("%.0f", delta),
					fmtI(len(res.Suppressed)), "-", "-", "-")
				continue
			}
			dist, err := metrics.DatasetDistortion(g.Dataset, res.Dataset)
			if err != nil {
				return nil, err
			}
			sum := stats.Summarize(dist)
			atk, err := poiattack.Evaluate(res.Dataset, g.Stays, poiattack.DefaultConfig())
			if err != nil {
				return nil, err
			}
			table.AddRow(fmtI(k), fmt.Sprintf("%.0f", delta), fmtI(len(res.Suppressed)),
				fmtM(sum.Median), fmtM(sum.P95), fmtF(atk.PerUser.F1))
		}
	}
	table.AddNote("expected shape: distortion grows with k and shrinks with delta; POI F1 stays well above promesse's because stops survive")
	return table, nil
}

// runE10 measures wall-clock throughput (input points per second) of
// each mechanism on the commuter workload.
func runE10(s Scale) (*Table, error) {
	g, err := commuterWorkload(s)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:      "E10",
		Title:   "Anonymization throughput (commuter workload)",
		Columns: []string{"mechanism", "input points", "wall time", "points/s"},
	}
	points := g.Dataset.TotalPoints()
	for _, m := range standardMechanisms() {
		if m.name == "raw" {
			continue
		}
		start := time.Now()
		if _, err := m.apply(g.Dataset); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		pps := float64(points) / elapsed.Seconds()
		table.AddRow(m.name, fmtI(points), elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", pps))
	}
	table.AddNote("single-threaded wall time; see bench_output.txt for per-operation testing.B benchmarks")
	return table, nil
}

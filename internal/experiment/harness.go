// Package experiment implements the evaluation harness: every
// experiment E1..E12 from DESIGN.md §4 is a named, self-contained
// function producing a table that can be rendered to text. The cmd/
// binaries and the repository-level benchmarks are thin wrappers around
// this registry, so the numbers in EXPERIMENTS.md are regenerable with
// one command.
package experiment

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Scale selects the workload size.
type Scale int

const (
	// Quick is used by tests and benchmarks: small workloads, seconds.
	Quick Scale = iota + 1
	// Full is used by cmd/mobibench for the recorded results: the
	// workload sizes documented in EXPERIMENTS.md.
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row; the cell count must match Columns.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-text note rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Experiment is one registered evaluation.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (*Table, error)
}

// ErrUnknownExperiment reports a lookup for an unregistered id.
var ErrUnknownExperiment = errors.New("experiment: unknown id")

// registry is populated in this package's experiment files.
var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// All returns every registered experiment sorted by id (E1, E2, ...,
// E10, E11, E12 in natural order).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return naturalLess(out[i].ID, out[j].ID) })
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
	}
	return e, nil
}

// naturalLess compares "E2" < "E10" numerically.
func naturalLess(a, b string) bool {
	na, nb := 0, 0
	fmt.Sscanf(a, "E%d", &na)
	fmt.Sscanf(b, "E%d", &nb)
	if na != nb {
		return na < nb
	}
	return a < b
}

// fmtF renders a float with 3 decimals.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtM renders a distance in meters with 1 decimal.
func fmtM(v float64) string { return fmt.Sprintf("%.1f", v) }

// fmtI renders an int.
func fmtI(v int) string { return fmt.Sprintf("%d", v) }

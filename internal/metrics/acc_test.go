package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
)

// randomPair builds a deterministic pseudo-random (orig, anon) pair.
func randomPair(rnd *rand.Rand, user string) (*trace.Trace, *trace.Trace) {
	base := time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC)
	mk := func(dy float64, n int) *trace.Trace {
		pts := make([]trace.Point, n)
		for i := range pts {
			pts[i] = trace.Point{
				Point: geo.Offset(origin, float64(i)*80+rnd.Float64()*20, dy+rnd.Float64()*30),
				Time:  base.Add(time.Duration(i) * time.Minute),
			}
		}
		return trace.MustNew(user, pts)
	}
	n := 4 + rnd.Intn(20)
	return mk(0, n), mk(100+rnd.Float64()*400, 3+rnd.Intn(20))
}

// TestAccMergeOrderInvariance is the determinism contract test: feeding
// the same pairs through 1, 4 or 16 accumulators partitioned arbitrarily
// and merged in arbitrary order must reproduce the serial result
// bit-for-bit, for every metric at once (via EvalAcc).
func TestAccMergeOrderInvariance(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	type pair struct{ o, a *trace.Trace }
	var pairs []pair
	for u := 0; u < 40; u++ {
		o, a := randomPair(rnd, fmt.Sprintf("u%02d", u))
		switch u % 7 {
		case 5: // orig-only user
			pairs = append(pairs, pair{o, nil})
		case 6: // anon-only user
			pairs = append(pairs, pair{nil, a})
		default:
			pairs = append(pairs, pair{o, a})
		}
	}
	opts := EvalOptions{Bounds: geo.NewBBox(geo.Offset(origin, -500, -500), geo.Offset(origin, 3000, 3000)), Queries: 20}

	serial, err := NewEvalAcc(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := serial.AddPair(p.o, p.a); err != nil {
			t.Fatal(err)
		}
	}
	want, err := serial.Report()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("partitions=%d", workers), func(t *testing.T) {
			accs := make([]*EvalAcc, workers)
			for i := range accs {
				if accs[i], err = NewEvalAcc(opts); err != nil {
					t.Fatal(err)
				}
			}
			perm := rnd.Perm(len(pairs))
			for i, pi := range perm {
				if err := accs[i%workers].AddPair(pairs[pi].o, pairs[pi].a); err != nil {
					t.Fatal(err)
				}
			}
			root := accs[rnd.Intn(workers)]
			for _, i := range rnd.Perm(workers) {
				if accs[i] != root {
					root.Merge(accs[i])
				}
			}
			got, err := root.Report()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("merged report differs from serial:\nwant %+v\ngot  %+v", want, got)
			}
		})
	}
}

// TestDistortionAccMatchesSamples pins the accumulator's exact fields
// (count, mean, min, max) against the pooled-sample implementation, and
// its histogram quantiles to the documented resolution.
func TestDistortionAccMatchesSamples(t *testing.T) {
	orig := trace.MustNewDataset([]*trace.Trace{
		eastTrace("a", 12, 100, 0),
		eastTrace("b", 9, 100, 1000),
	})
	anon := trace.MustNewDataset([]*trace.Trace{
		eastTrace("a", 12, 100, 60),
		eastTrace("b", 9, 100, 1130),
	})
	samples, err := DatasetDistortion(orig, anon)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewDistortionAcc()
	for _, at := range anon.Traces() {
		if err := acc.AddPair(orig.ByUser(at.User), at); err != nil {
			t.Fatal(err)
		}
	}
	sum := acc.Summary()
	if sum.N != int64(len(samples)) {
		t.Fatalf("N = %d, want %d", sum.N, len(samples))
	}
	var mean, min, max float64
	min = math.Inf(1)
	for _, d := range samples {
		mean += d
		min = math.Min(min, d)
		max = math.Max(max, d)
	}
	mean /= float64(len(samples))
	if math.Abs(sum.Mean-mean) > 1e-6 { // micrometer quantization only
		t.Errorf("Mean = %v, want %v", sum.Mean, mean)
	}
	if sum.Min != min || sum.Max != max {
		t.Errorf("min/max = %v/%v, want %v/%v", sum.Min, sum.Max, min, max)
	}
	// Histogram quantiles are exact to one log bin (~4.5%) plus the
	// micrometer quantization.
	for _, q := range []struct {
		got  float64
		want float64
	}{{sum.P50, quantileOf(samples, 0.5)}, {sum.P95, quantileOf(samples, 0.95)}} {
		if q.want > 1 && math.Abs(q.got-q.want)/q.want > 0.10 {
			t.Errorf("quantile %v strays from %v", q.got, q.want)
		}
	}
}

func quantileOf(xs []float64, q float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[int(q*float64(len(cp)-1))]
}

// TestDistortionAccSketchRegimes pins the two-regime quantile contract:
// under the KLL capacity the quantiles are exact order statistics, and
// in BOTH regimes any partition of the samples merged in any order
// reproduces the serial summary bit-for-bit.
func TestDistortionAccSketchRegimes(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	for _, tc := range []struct {
		name  string
		n     int
		exact bool
	}{
		{"exact", 100, true},       // within stats.DefaultKLLK
		{"histogram", 5000, false}, // beyond capacity
	} {
		t.Run(tc.name, func(t *testing.T) {
			vals := make([]float64, tc.n)
			for i := range vals {
				vals[i] = rnd.Float64() * 900
			}
			serial := NewDistortionAcc()
			for _, v := range vals {
				serial.add(v)
			}
			want := serial.Summary()

			if tc.exact {
				sorted := append([]float64(nil), vals...)
				sort.Float64s(sorted)
				p50 := sorted[int(0.5*float64(len(sorted)-1))]
				p95 := sorted[int(0.95*float64(len(sorted)-1))]
				if want.P50 != p50 || want.P95 != p95 {
					t.Fatalf("exact-regime quantiles %v/%v, want order statistics %v/%v",
						want.P50, want.P95, p50, p95)
				}
			}

			for _, parts := range []int{2, 5} {
				accs := make([]*DistortionAcc, parts)
				for i := range accs {
					accs[i] = NewDistortionAcc()
				}
				for i, pi := range rnd.Perm(len(vals)) {
					accs[i%parts].add(vals[pi])
				}
				root := accs[0]
				for _, i := range rnd.Perm(parts) {
					if accs[i] != root {
						root.Merge(accs[i])
					}
				}
				if got := root.Summary(); !reflect.DeepEqual(want, got) {
					t.Fatalf("parts=%d: merged summary %+v != serial %+v", parts, got, want)
				}
			}
		})
	}
}

// TestDistortionAccIdentity pins the all-zero case: evaluating a
// dataset against itself reports exactly zero distortion everywhere.
func TestDistortionAccIdentity(t *testing.T) {
	tr := eastTrace("u", 20, 100, 0)
	acc := NewDistortionAcc()
	if err := acc.AddPair(tr, tr); err != nil {
		t.Fatal(err)
	}
	s := acc.Summary()
	if s.Mean > 1e-9 || s.P50 != 0 || s.P95 != 0 || s.Max > 1e-9 {
		t.Fatalf("self distortion summary %+v, want all ~0", s)
	}
}

// TestDistBinMonotonic pins the histogram bin geometry: binning is
// monotone in the value and edges invert to the bin's own range.
func TestDistBinMonotonic(t *testing.T) {
	prev := -1
	for _, um := range []uint64{0, 1, 2, 3, 15, 16, 17, 100, 1000, 1e6, 5e6, 1e9, 1e12, math.MaxUint64} {
		b := distBin(um)
		if b < prev {
			t.Fatalf("distBin(%d) = %d < previous %d", um, b, prev)
		}
		prev = b
		if b >= distBins {
			t.Fatalf("distBin(%d) = %d out of range", um, b)
		}
		if um > 0 {
			edge := distBinEdge(b)
			v := float64(um) * 1e-6
			if edge > v*1.0001 {
				t.Fatalf("edge(%d)=%v above value %v", b, edge, v)
			}
			if v > edge*2.2 {
				t.Fatalf("edge(%d)=%v too far below value %v", b, edge, v)
			}
		}
	}
}

// TestU128 pins the wide-sum primitive, including carries.
func TestU128(t *testing.T) {
	var a u128
	a.add(math.MaxUint64)
	a.add(math.MaxUint64)
	a.add(2)
	if a.hi != 2 || a.lo != 0 {
		t.Fatalf("u128 = {%d, %d}, want {2, 0}", a.hi, a.lo)
	}
	var b u128
	b.add(7)
	b.merge(a)
	if b.hi != 2 || b.lo != 7 {
		t.Fatalf("merge = {%d, %d}, want {2, 7}", b.hi, b.lo)
	}
	if got := (u128{hi: 1, lo: 0}).toFloat(); got != 0x1p64 {
		t.Fatalf("toFloat = %v", got)
	}
}

// TestQueryPointsKnownAnswer pins the (seed, index) query derivation:
// these exact centers are what both the batch and the store-native path
// draw for the same seed. Any change here is a format break for
// reproducibility and must be deliberate.
func TestQueryPointsKnownAnswer(t *testing.T) {
	box := geo.NewBBox(geo.Point{Lat: 45.0, Lng: 4.0}, geo.Point{Lat: 46.0, Lng: 5.0})
	want := []struct {
		seed     int64
		i        int
		lat, lng float64
	}{
		{1, 0, 45.874382220330737, 4.6599993482021871},
		{1, 1, 45.034238227451972, 4.5990948659617841},
		{1, 2, 45.549758941641279, 4.5395355936479174},
		{9, 0, 45.122753489358473, 4.524858254087226},
		{9, 1, 45.722525294607927, 4.8213118470033063},
		{9, 2, 45.213302086980072, 4.1803944315026653},
	}
	for _, w := range want {
		pts := queryPoints(box, 3, w.seed)
		if pts[w.i].Lat != w.lat || pts[w.i].Lng != w.lng {
			t.Errorf("queryPoints(seed=%d)[%d] = (%.17g, %.17g), want (%.17g, %.17g)",
				w.seed, w.i, pts[w.i].Lat, pts[w.i].Lng, w.lat, w.lng)
		}
	}
	// The i-th query depends only on (seed, i), not on n — the property
	// the bare math/rand seeding could not give.
	long := queryPoints(box, 10, 1)
	short := queryPoints(box, 3, 1)
	for i := range short {
		if long[i] != short[i] {
			t.Errorf("query %d changed with n: %v vs %v", i, long[i], short[i])
		}
	}
}

// TestRangeQueryAccMatchesFunction pins wrapper and accumulator to each
// other on a split-and-merged run.
func TestRangeQueryAccMatchesFunction(t *testing.T) {
	orig := trace.MustNewDataset([]*trace.Trace{
		eastTrace("a", 30, 100, 0),
		eastTrace("b", 30, 100, 200),
	})
	anon := trace.MustNewDataset([]*trace.Trace{
		eastTrace("a", 25, 100, 400),
		eastTrace("c", 10, 100, 100),
	})
	want, err := RangeQueryError(orig, anon, 40, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := NewRangeQueryAcc(orig.Bounds(), 40, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewRangeQueryAcc(orig.Bounds(), 40, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Split the union across two accumulators, merged.
	a1.AddPair(orig.ByUser("a"), anon.ByUser("a"))
	a2.AddPair(orig.ByUser("b"), nil)
	a2.AddPair(nil, anon.ByUser("c"))
	a1.Merge(a2)
	got, err := a1.Errors()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("accumulator errors differ from RangeQueryError:\nwant %v\ngot  %v", want, got)
	}
}

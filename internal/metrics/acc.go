package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"mobipriv/internal/geo"
	"mobipriv/internal/rng"
	"mobipriv/internal/stats"
	"mobipriv/internal/trace"
)

// This file holds the streaming accumulator form of every metric: one
// accumulator per metric, fed trace pairs with AddPair and combined
// with Merge. The Dataset-level functions in metrics.go are thin
// wrappers that feed a whole dataset through an accumulator, so batch
// and store-native evaluation share one implementation.
//
// The determinism contract every accumulator obeys: AddPair and Merge
// commute — any partition of the input pairs over any number of
// accumulators, merged in any order, yields bit-identical results.
// That is what lets EvalStore fan pairs over a worker pool and still
// match the serial Load()-based path exactly. The rule is achieved by
// keeping only merge-order-invariant state (integer counts,
// integer-quantized sums, min/max folds, set unions) and deferring
// every order-sensitive float computation to the final Result call,
// which operates on values brought into a canonical (sorted) order
// first.

// u128 is an unsigned 128-bit integer accumulator: exact, overflow-safe
// integer sums are addition-order invariant where floating-point sums
// are not.
type u128 struct{ hi, lo uint64 }

func (a *u128) add(v uint64) {
	lo := a.lo + v
	if lo < a.lo {
		a.hi++
	}
	a.lo = lo
}

func (a *u128) merge(b u128) {
	a.add(b.lo)
	a.hi += b.hi
}

// toFloat converts to float64 (rounded; deterministic).
func (a u128) toFloat() float64 {
	return float64(a.hi)*0x1p64 + float64(a.lo)
}

// Distortion histogram geometry: distances are quantized to micrometers
// and binned logarithmically, 16 sub-bins per power of two (~4.5%
// relative resolution). Quantiles read from the histogram are therefore
// approximate to that resolution, while counts, the mean (exact integer
// sum) and min/max are exact.
const (
	distSubBits = 4
	distSubBins = 1 << distSubBits
	distBins    = 1 + 64*distSubBins
)

// distBin maps a micrometer distance to its histogram bin.
func distBin(um uint64) int {
	if um == 0 {
		return 0
	}
	l := bits.Len64(um)
	var sub uint64
	if l > distSubBits+1 {
		sub = (um >> uint(l-1-distSubBits)) & (distSubBins - 1)
	} else {
		sub = (um << uint(distSubBits+1-l)) & (distSubBins - 1)
	}
	return 1 + (l-1)*distSubBins + int(sub)
}

// distBinEdge returns the lower edge of a bin, in meters.
func distBinEdge(bin int) float64 {
	if bin == 0 {
		return 0
	}
	l := (bin - 1) / distSubBins
	sub := (bin - 1) % distSubBins
	return math.Ldexp(1+float64(sub)/distSubBins, l) * 1e-6
}

// DistSummary is the streaming summary of a pooled distance sample.
type DistSummary struct {
	N        int64
	Mean     float64 // exact (integer-sum) mean
	Min, Max float64 // exact
	// P50 and P95 are exact order statistics while the pool fits the
	// KLL sketch (n <= stats.DefaultKLLK), histogram quantiles (~4.5%
	// relative resolution) beyond.
	P50, P95 float64
}

// DistortionAcc pools per-point spatial distortion samples
// (TraceDistortion; with the completeness direction it pools
// CompletenessDistortion). Only users present on both sides contribute,
// so one-sided AddPair calls are no-ops.
//
// Quantiles come from two complementary stores. A fixed-size KLL
// sketch (stats.KLL) holds the raw samples verbatim while the pool is
// small — the exact regime, where P50/P95 are exact order statistics —
// and the log-binned histogram answers once the pool outgrows the
// sketch, at its ~4.5% resolution. Both stores are merge-order
// invariant in the regime they serve (a multiset below capacity,
// integer bucket counts above), and the regime switch depends only on
// the total count, so AddPair and Merge still commute bit-identically.
type DistortionAcc struct {
	reverse bool // completeness: original points vs published path
	n       int64
	sum     u128 // micrometers
	min     float64
	max     float64
	hist    []int64
	sketch  *stats.KLL
}

// NewDistortionAcc returns an accumulator for the published-vs-original
// distortion direction.
func NewDistortionAcc() *DistortionAcc {
	return &DistortionAcc{hist: make([]int64, distBins), sketch: stats.NewKLL(stats.DefaultKLLK)}
}

// NewCompletenessAcc returns an accumulator for the opposite direction:
// every original point's distance to the published path.
func NewCompletenessAcc() *DistortionAcc {
	return &DistortionAcc{reverse: true, hist: make([]int64, distBins), sketch: stats.NewKLL(stats.DefaultKLLK)}
}

// AddPair folds one user's distortion samples into the accumulator.
// Either side nil means the user is one-sided: no samples.
func (a *DistortionAcc) AddPair(orig, anon *trace.Trace) error {
	if orig == nil || anon == nil {
		return nil
	}
	var ds []float64
	var err error
	if a.reverse {
		ds, err = CompletenessDistortion(orig, anon)
	} else {
		ds, err = TraceDistortion(orig, anon)
	}
	if err != nil {
		return err
	}
	for _, d := range ds {
		a.add(d)
	}
	return nil
}

func (a *DistortionAcc) add(d float64) {
	if math.IsNaN(d) || d < 0 {
		d = 0
	}
	if a.n == 0 || d < a.min {
		a.min = d
	}
	if a.n == 0 || d > a.max {
		a.max = d
	}
	a.n++
	um := uint64(math.Round(d * 1e6))
	a.sum.add(um)
	a.hist[distBin(um)]++
	a.sketch.Add(d)
}

// Merge folds another accumulator of the same direction into a.
func (a *DistortionAcc) Merge(b *DistortionAcc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 || b.min < a.min {
		a.min = b.min
	}
	if a.n == 0 || b.max > a.max {
		a.max = b.max
	}
	a.n += b.n
	a.sum.merge(b.sum)
	for i, c := range b.hist {
		a.hist[i] += c
	}
	a.sketch.Merge(b.sketch)
}

// quantile returns the sample quantile: exact (from the KLL sketch's
// verbatim samples) while the pool is within the sketch's capacity,
// the log-histogram's lower bin edge clamped to the exact [min, max]
// envelope beyond. The regime depends only on the total count, so
// partitioned-and-merged accumulators agree with serial ones exactly.
func (a *DistortionAcc) quantile(q float64) float64 {
	if a.n == 0 {
		return 0
	}
	if a.sketch.Exact() {
		return a.sketch.Quantile(q)
	}
	rank := int64(q * float64(a.n-1))
	var cum int64
	for b, c := range a.hist {
		cum += c
		if cum > rank {
			v := distBinEdge(b)
			if v < a.min {
				v = a.min
			}
			if v > a.max {
				v = a.max
			}
			return v
		}
	}
	return a.max
}

// Summary returns the streaming summary; the zero summary when no
// samples were pooled (no common users).
func (a *DistortionAcc) Summary() DistSummary {
	if a.n == 0 {
		return DistSummary{}
	}
	return DistSummary{
		N:    a.n,
		Mean: a.sum.toFloat() / 1e6 / float64(a.n),
		Min:  a.min,
		Max:  a.max,
		P50:  a.quantile(0.5),
		P95:  a.quantile(0.95),
	}
}

// gridder rasterizes points onto the square evaluation grid. The grid
// is anchored at an explicit center so that two scans of the same data
// — batch or store-native, filtered or not — agree cell for cell.
type gridder struct {
	proj *geo.Projector
	cell float64
}

func newGridder(center geo.Point, cellSize float64) (gridder, error) {
	if cellSize <= 0 {
		return gridder{}, fmt.Errorf("metrics: cell size %v must be positive", cellSize)
	}
	return gridder{proj: geo.NewProjector(center), cell: cellSize}, nil
}

func (g gridder) at(p geo.Point) cellID {
	v := g.proj.ToXY(p)
	return cellID{int(math.Floor(v.X / g.cell)), int(math.Floor(v.Y / g.cell))}
}

// CoverageAcc accumulates the visited-cell sets of both datasets.
type CoverageAcc struct {
	grid gridder
	orig map[cellID]struct{}
	anon map[cellID]struct{}
}

// NewCoverageAcc returns a coverage accumulator on a grid of the given
// cell size (meters) anchored at center.
func NewCoverageAcc(center geo.Point, cellSize float64) (*CoverageAcc, error) {
	grid, err := newGridder(center, cellSize)
	if err != nil {
		return nil, err
	}
	return &CoverageAcc{grid: grid, orig: make(map[cellID]struct{}), anon: make(map[cellID]struct{})}, nil
}

// AddPair marks the cells visited by each non-nil side.
func (a *CoverageAcc) AddPair(orig, anon *trace.Trace) {
	mark := func(set map[cellID]struct{}, tr *trace.Trace) {
		if tr == nil {
			return
		}
		for _, p := range tr.Points {
			set[a.grid.at(p.Point)] = struct{}{}
		}
	}
	mark(a.orig, orig)
	mark(a.anon, anon)
}

// Merge unions another accumulator's cell sets into a.
func (a *CoverageAcc) Merge(b *CoverageAcc) {
	for c := range b.orig {
		a.orig[c] = struct{}{}
	}
	for c := range b.anon {
		a.anon[c] = struct{}{}
	}
}

// Result compares the accumulated cell sets.
func (a *CoverageAcc) Result() CoverageResult {
	var hit int
	for c := range a.anon {
		if _, ok := a.orig[c]; ok {
			hit++
		}
	}
	res := CoverageResult{OrigCells: len(a.orig), AnonCells: len(a.anon)}
	if len(a.anon) > 0 {
		res.Precision = float64(hit) / float64(len(a.anon))
	}
	if len(a.orig) > 0 {
		res.Recall = float64(hit) / float64(len(a.orig))
	}
	if res.Precision+res.Recall > 0 {
		res.F1 = 2 * res.Precision * res.Recall / (res.Precision + res.Recall)
	}
	return res
}

// LengthAcc accumulates the per-trace travelled distances of both
// sides. Its state is one float64 per trace — O(users), not O(points).
type LengthAcc struct {
	orig []float64
	anon []float64
}

// NewLengthAcc returns an empty length accumulator.
func NewLengthAcc() *LengthAcc { return &LengthAcc{} }

// AddPair records the length of each non-nil side.
func (a *LengthAcc) AddPair(orig, anon *trace.Trace) {
	if orig != nil {
		a.orig = append(a.orig, orig.Length())
	}
	if anon != nil {
		a.anon = append(a.anon, anon.Length())
	}
}

// Merge appends another accumulator's lengths; Result sorts, so the
// append order never shows.
func (a *LengthAcc) Merge(b *LengthAcc) {
	a.orig = append(a.orig, b.orig...)
	a.anon = append(a.anon, b.anon...)
}

// Result compares the two length distributions. It sorts the samples
// into a canonical order first, so any partition of the input merged in
// any order produces bit-identical statistics.
func (a *LengthAcc) Result() (LengthStats, error) {
	if len(a.orig) == 0 || len(a.anon) == 0 {
		return LengthStats{}, errEmptyDataset
	}
	ol := append([]float64(nil), a.orig...)
	al := append([]float64(nil), a.anon...)
	sort.Float64s(ol)
	sort.Float64s(al)
	ls := LengthStats{
		OrigMean:   stats.Mean(ol),
		AnonMean:   stats.Mean(al),
		OrigMedian: stats.Median(ol),
		AnonMedian: stats.Median(al),
	}
	if ls.OrigMean > 0 {
		ls.MeanRelError = math.Abs(ls.AnonMean-ls.OrigMean) / ls.OrigMean
	}
	var sum float64
	var n int
	for q := 0.1; q < 0.95; q += 0.1 {
		oq := stats.Quantile(ol, q)
		aq := stats.Quantile(al, q)
		if oq > 0 {
			sum += math.Abs(aq-oq) / oq
			n++
		}
	}
	if n > 0 {
		ls.DecileError = sum / float64(n)
	}
	return ls, nil
}

// ODAcc accumulates origin–destination flows: each trace contributes
// one (start cell, end cell) pair on each side it exists.
type ODAcc struct {
	grid       gridder
	origTraces int64
	orig       map[odKey]int64
	anon       map[odKey]int64
}

// NewODAcc returns an OD-flow accumulator on a grid of the given cell
// size anchored at center.
func NewODAcc(center geo.Point, cellSize float64) (*ODAcc, error) {
	grid, err := newGridder(center, cellSize)
	if err != nil {
		return nil, err
	}
	return &ODAcc{grid: grid, orig: make(map[odKey]int64), anon: make(map[odKey]int64)}, nil
}

// AddPair records the OD pair of each non-nil side.
func (a *ODAcc) AddPair(orig, anon *trace.Trace) {
	if orig != nil {
		a.orig[odKey{a.grid.at(orig.Start().Point), a.grid.at(orig.End().Point)}]++
		a.origTraces++
	}
	if anon != nil {
		a.anon[odKey{a.grid.at(anon.Start().Point), a.grid.at(anon.End().Point)}]++
	}
}

// Merge adds another accumulator's flow counts into a.
func (a *ODAcc) Merge(b *ODAcc) {
	a.origTraces += b.origTraces
	for k, c := range b.orig {
		a.orig[k] += c
	}
	for k, c := range b.anon {
		a.anon[k] += c
	}
}

// Result compares the flows as multisets.
func (a *ODAcc) Result() (ODResult, error) {
	if a.origTraces == 0 {
		return ODResult{}, errEmptyOriginal
	}
	var overlap int64
	for k, oc := range a.orig {
		if ac := a.anon[k]; ac < oc {
			overlap += ac
		} else {
			overlap += oc
		}
	}
	return ODResult{
		Accuracy: float64(overlap) / float64(a.origTraces),
		OrigOD:   len(a.orig),
		AnonOD:   len(a.anon),
	}, nil
}

// PopularAcc accumulates per-cell visit counts for the popularity
// ranking comparison.
type PopularAcc struct {
	grid gridder
	topN int
	orig map[cellID]int64
	anon map[cellID]int64
}

// NewPopularAcc returns a popularity accumulator ranking the top n
// cells of a grid of the given cell size anchored at center.
func NewPopularAcc(center geo.Point, cellSize float64, n int) (*PopularAcc, error) {
	if cellSize <= 0 || n <= 1 {
		return nil, fmt.Errorf("metrics: need positive cell size and n > 1 (got %v, %d)", cellSize, n)
	}
	grid, err := newGridder(center, cellSize)
	if err != nil {
		return nil, err
	}
	return &PopularAcc{grid: grid, topN: n, orig: make(map[cellID]int64), anon: make(map[cellID]int64)}, nil
}

// AddPair counts the cell visits of each non-nil side.
func (a *PopularAcc) AddPair(orig, anon *trace.Trace) {
	count := func(m map[cellID]int64, tr *trace.Trace) {
		if tr == nil {
			return
		}
		for _, p := range tr.Points {
			m[a.grid.at(p.Point)]++
		}
	}
	count(a.orig, orig)
	count(a.anon, anon)
}

// Merge adds another accumulator's visit counts into a.
func (a *PopularAcc) Merge(b *PopularAcc) {
	for c, n := range b.orig {
		a.orig[c] += n
	}
	for c, n := range b.anon {
		a.anon[c] += n
	}
}

// Result ranks the original cells by visit count (ties broken by cell
// coordinates, so the ranking is deterministic) and returns the Kendall
// tau of their counts in the anonymized data.
func (a *PopularAcc) Result() (float64, error) {
	return popularTau(a.orig, a.anon, a.topN)
}

// RangeQueryAcc accumulates per-query disc counts for the range-query
// error metric. The query centers are derived from the seed alone (see
// queryPoints), so two scans of the same data — batch or store-native —
// count against the identical query set.
type RangeQueryAcc struct {
	queries   []geo.Point
	radius    float64
	orig      []int64
	anon      []int64
	origTotal int64
	anonTotal int64
}

// NewRangeQueryAcc returns an accumulator for n disc-counting queries
// of the given radius, uniform over box, derived from seed.
func NewRangeQueryAcc(box geo.BBox, n int, radius float64, seed int64) (*RangeQueryAcc, error) {
	if n <= 0 || radius <= 0 {
		return nil, fmt.Errorf("metrics: need positive query count and radius (got %d, %v)", n, radius)
	}
	if box.IsEmpty() {
		return nil, errEmptyOriginal
	}
	return &RangeQueryAcc{
		queries: queryPoints(box, n, seed),
		radius:  radius,
		orig:    make([]int64, n),
		anon:    make([]int64, n),
	}, nil
}

// AddPair counts each non-nil side's points against every query disc.
func (a *RangeQueryAcc) AddPair(orig, anon *trace.Trace) {
	count := func(counts []int64, total *int64, tr *trace.Trace) {
		if tr == nil {
			return
		}
		*total += int64(tr.Len())
		for _, p := range tr.Points {
			for qi, q := range a.queries {
				if geo.FastDistance(p.Point, q) <= a.radius {
					counts[qi]++
				}
			}
		}
	}
	count(a.orig, &a.origTotal, orig)
	count(a.anon, &a.anonTotal, anon)
}

// Merge adds another accumulator's query counts into a. The two must
// have been built with the same parameters.
func (a *RangeQueryAcc) Merge(b *RangeQueryAcc) {
	a.origTotal += b.origTotal
	a.anonTotal += b.anonTotal
	for i := range a.orig {
		a.orig[i] += b.orig[i]
		a.anon[i] += b.anon[i]
	}
}

// Errors returns the per-query relative error of the normalized
// density, exactly as RangeQueryError defines it.
func (a *RangeQueryAcc) Errors() ([]float64, error) {
	if a.origTotal == 0 {
		return nil, errEmptyOriginal
	}
	origTotal := float64(a.origTotal)
	anonTotal := math.Max(float64(a.anonTotal), 1)
	out := make([]float64, len(a.queries))
	for i := range a.queries {
		of := float64(a.orig[i]) / origTotal
		af := float64(a.anon[i]) / anonTotal
		denom := math.Max(of, 1/origTotal) // one original point's worth of density
		out[i] = math.Abs(af-of) / denom
	}
	return out, nil
}

// queryPoints derives the n query centers from the seed, one splitmix64
// stream per query index — the same (seed, key) derivation the
// mechanisms use for per-user randomness, with the query index in the
// key role. Unlike the former bare math/rand seeding, the i-th query
// depends only on (seed, i), never on how many draws preceded it.
func queryPoints(box geo.BBox, n int, seed int64) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		s := uint64(seed)*rng.Gamma ^ rng.Mix(uint64(i)+1)
		out[i] = geo.Point{
			Lat: box.MinLat + unitFloat(rng.Mix(s+rng.Gamma))*(box.MaxLat-box.MinLat),
			Lng: box.MinLng + unitFloat(rng.Mix(s+uint64(rng.Gamma)+uint64(rng.Gamma)))*(box.MaxLng-box.MinLng),
		}
	}
	return out
}

// unitFloat maps 64 random bits to [0, 1) with full 53-bit precision.
func unitFloat(v uint64) float64 { return float64(v>>11) * 0x1p-53 }

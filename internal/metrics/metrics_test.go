package metrics

import (
	"math"
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/stats"
	"mobipriv/internal/trace"
)

var (
	t0     = time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	origin = geo.Point{Lat: 45.7640, Lng: 4.8357}
)

func eastTrace(user string, n int, spacing float64, dy float64) *trace.Trace {
	pts := make([]trace.Point, n)
	for i := range pts {
		pts[i] = trace.Point{
			Point: geo.Offset(origin, float64(i)*spacing, dy),
			Time:  t0.Add(time.Duration(i) * time.Minute),
		}
	}
	return trace.MustNew(user, pts)
}

func TestTraceDistortionZeroForIdentity(t *testing.T) {
	tr := eastTrace("u", 20, 100, 0)
	ds, err := TraceDistortion(tr, tr)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		if d > 0.01 {
			t.Fatalf("self distortion[%d] = %v", i, d)
		}
	}
}

func TestTraceDistortionKnownOffset(t *testing.T) {
	orig := eastTrace("u", 20, 100, 0)
	shifted := eastTrace("u", 20, 100, 150) // parallel path 150 m north
	ds, err := TraceDistortion(orig, shifted)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		if math.Abs(d-150) > 2 {
			t.Fatalf("distortion[%d] = %v, want ~150", i, d)
		}
	}
}

func TestTraceDistortionIgnoresTime(t *testing.T) {
	orig := eastTrace("u", 20, 100, 0)
	// Same geometry, totally different timestamps.
	pts := make([]trace.Point, orig.Len())
	for i, p := range orig.Points {
		pts[i] = trace.Point{Point: p.Point, Time: t0.Add(time.Duration(i) * 7 * time.Hour)}
	}
	warped := trace.MustNew("u", pts)
	ds, err := TraceDistortion(orig, warped)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max(ds) > 0.01 {
		t.Fatalf("time warping should not register as spatial distortion, max=%v", stats.Max(ds))
	}
}

func TestCompletenessDistortionDetectsTrimming(t *testing.T) {
	orig := eastTrace("u", 30, 100, 0) // 2.9 km path
	// Published: only the middle third.
	mid := trace.MustNew("u", append([]trace.Point(nil), orig.Points[10:20]...))
	ds, err := CompletenessDistortion(orig, mid)
	if err != nil {
		t.Fatal(err)
	}
	// The first original point is 1000 m from the published path start.
	if ds[0] < 900 {
		t.Fatalf("completeness[0] = %v, want ~1000", ds[0])
	}
	// Middle points are covered.
	if ds[15] > 1 {
		t.Fatalf("completeness[15] = %v, want ~0", ds[15])
	}
}

func TestDatasetDistortion(t *testing.T) {
	orig := trace.MustNewDataset([]*trace.Trace{
		eastTrace("a", 10, 100, 0),
		eastTrace("b", 10, 100, 1000),
	})
	anon := trace.MustNewDataset([]*trace.Trace{
		eastTrace("a", 10, 100, 50),   // 50 m off
		eastTrace("b", 10, 100, 1100), // 100 m off
	})
	ds, err := DatasetDistortion(orig, anon)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 20 {
		t.Fatalf("pooled %d samples, want 20", len(ds))
	}
	med := stats.Median(ds)
	if med < 40 || med > 110 {
		t.Fatalf("median distortion = %v", med)
	}
}

func TestDatasetDistortionNoCommonUsers(t *testing.T) {
	orig := trace.MustNewDataset([]*trace.Trace{eastTrace("a", 5, 100, 0)})
	anon := trace.MustNewDataset([]*trace.Trace{eastTrace("x", 5, 100, 0)})
	if _, err := DatasetDistortion(orig, anon); err == nil {
		t.Fatal("expected ErrNoCommonUsers")
	}
}

func TestCoveragePerfect(t *testing.T) {
	d := trace.MustNewDataset([]*trace.Trace{eastTrace("a", 20, 100, 0)})
	res, err := Coverage(d, d, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.F1 != 1 || res.Precision != 1 || res.Recall != 1 {
		t.Fatalf("self coverage = %+v", res)
	}
	if res.OrigCells == 0 {
		t.Fatal("no cells visited")
	}
}

func TestCoverageDisplacedData(t *testing.T) {
	orig := trace.MustNewDataset([]*trace.Trace{eastTrace("a", 20, 100, 0)})
	far := trace.MustNewDataset([]*trace.Trace{eastTrace("a", 20, 100, 5000)})
	res, err := Coverage(orig, far, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.F1 != 0 {
		t.Fatalf("disjoint coverage F1 = %v, want 0", res.F1)
	}
	// Coarser cells than the displacement: everything matches again.
	res, err = Coverage(orig, far, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if res.F1 != 1 {
		t.Fatalf("coarse coverage F1 = %v, want 1", res.F1)
	}
}

func TestCoverageValidation(t *testing.T) {
	d := trace.MustNewDataset([]*trace.Trace{eastTrace("a", 5, 100, 0)})
	if _, err := Coverage(d, d, 0); err == nil {
		t.Fatal("cell size 0 accepted")
	}
}

func TestTripLengths(t *testing.T) {
	orig := trace.MustNewDataset([]*trace.Trace{
		eastTrace("a", 11, 100, 0), // 1000 m
		eastTrace("b", 21, 100, 500),
	})
	same, err := TripLengths(orig, orig)
	if err != nil {
		t.Fatal(err)
	}
	if same.MeanRelError > 1e-9 || same.DecileError > 1e-9 {
		t.Fatalf("self comparison: %+v", same)
	}
	// Halved lengths.
	anon := trace.MustNewDataset([]*trace.Trace{
		eastTrace("a", 6, 100, 0), // 500 m
		eastTrace("b", 11, 100, 500),
	})
	halved, err := TripLengths(orig, anon)
	if err != nil {
		t.Fatal(err)
	}
	if halved.MeanRelError < 0.4 || halved.MeanRelError > 0.6 {
		t.Fatalf("MeanRelError = %v, want ~0.5", halved.MeanRelError)
	}
}

func TestODFlows(t *testing.T) {
	orig := trace.MustNewDataset([]*trace.Trace{
		eastTrace("a", 20, 100, 0),
		eastTrace("b", 20, 100, 100),
	})
	res, err := ODFlows(orig, orig, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1 {
		t.Fatalf("self OD accuracy = %v", res.Accuracy)
	}
	// A dataset heading the other way has entirely different OD pairs.
	rev := trace.MustNewDataset([]*trace.Trace{
		eastTrace("a", 20, -100, 0),
		eastTrace("b", 20, -100, 100),
	})
	res, err = ODFlows(orig, rev, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 0 {
		t.Fatalf("reversed OD accuracy = %v, want 0", res.Accuracy)
	}
}

func TestPopularCellsTau(t *testing.T) {
	d := trace.MustNewDataset([]*trace.Trace{
		eastTrace("a", 30, 100, 0),
		eastTrace("b", 30, 100, 50),
		eastTrace("c", 15, 100, 25),
	})
	tau, err := PopularCellsTau(d, d, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tau != 1 {
		t.Fatalf("self tau = %v, want 1", tau)
	}
	if _, err := PopularCellsTau(d, d, 0, 5); err == nil {
		t.Fatal("bad cell size accepted")
	}
	if _, err := PopularCellsTau(d, d, 500, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestRangeQueryError(t *testing.T) {
	d := trace.MustNewDataset([]*trace.Trace{
		eastTrace("a", 30, 100, 0),
		eastTrace("b", 30, 100, 200),
	})
	errsSelf, err := RangeQueryError(d, d, 50, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max(errsSelf) != 0 {
		t.Fatalf("self query error max = %v", stats.Max(errsSelf))
	}
	// Against an empty-ish (displaced) dataset errors are large.
	far := trace.MustNewDataset([]*trace.Trace{eastTrace("a", 30, 100, 50000)})
	errsFar, err := RangeQueryError(d, far, 50, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mean(errsFar) <= stats.Mean(errsSelf) {
		t.Fatal("displaced dataset should have higher query error")
	}
	if _, err := RangeQueryError(d, d, 0, 500, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := RangeQueryError(d, d, 10, -5, 1); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestRangeQueryDeterministic(t *testing.T) {
	d := trace.MustNewDataset([]*trace.Trace{eastTrace("a", 30, 100, 0)})
	e1, err := RangeQueryError(d, d, 20, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := RangeQueryError(d, d, 20, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("same seed must give same queries")
		}
	}
}

package metrics

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mobipriv/internal/cliutil"
	"mobipriv/internal/store"
	"mobipriv/internal/trace"
)

// quantTrace builds a trace whose coordinates and timestamps round-trip
// the store encoding exactly, so Load()ed and streamed views are
// bit-identical to the in-memory original.
func quantTrace(user string, salt, points, cycle int) *trace.Trace {
	base := time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC)
	pts := make([]trace.Point, points)
	for i := range pts {
		pts[i] = trace.P(
			float64(457_000_000+200_000*int64(salt%cycle)+41*int64(i))/store.CoordScale,
			float64(48_000_000+100_000*int64(salt%cycle)+23*int64(i))/store.CoordScale,
			base.Add(time.Duration(salt*311+i*52)*time.Second),
		)
	}
	return trace.MustNew(user, pts)
}

// writeFragmented builds a store from the traces via interleaved
// appends so users fragment across blocks.
func writeFragmented(tb testing.TB, traces []*trace.Trace, shards, blockPoints int, name string) *store.Store {
	tb.Helper()
	dir := filepath.Join(tb.TempDir(), name)
	w, err := store.Create(dir, store.Options{Shards: shards, BlockPoints: blockPoints})
	if err != nil {
		tb.Fatal(err)
	}
	longest := 0
	for _, tr := range traces {
		if tr.Len() > longest {
			longest = tr.Len()
		}
	}
	for i := 0; i < longest; i++ {
		for _, tr := range traces {
			if i < tr.Len() {
				if err := w.Append(tr.User, tr.Points[i]); err != nil {
					tb.Fatal(err)
				}
			}
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	s, err := store.Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	return s
}

// evalFixture builds two overlapping fragmented stores with different
// shard counts: users e00..e19 in the original, e05..e24 anonymized.
func evalFixture(tb testing.TB) (orig, anon *store.Store) {
	var origTr, anonTr []*trace.Trace
	for u := 0; u < 20; u++ {
		origTr = append(origTr, quantTrace(fmt.Sprintf("e%02d", u), u, 10+u%5, 8))
	}
	for u := 5; u < 25; u++ {
		anonTr = append(anonTr, quantTrace(fmt.Sprintf("e%02d", u), u+3, 8+u%7, 8))
	}
	return writeFragmented(tb, origTr, 3, 3, "orig.mstore"),
		writeFragmented(tb, anonTr, 5, 2, "anon.mstore")
}

// TestEvalStoreEquivalence is the headline pin: the streaming,
// worker-parallel EvalStore reports bit-identical metrics to the
// Load()-based EvalDataset path, across worker counts and on heavily
// fragmented multi-shard inputs with one-sided users — and the same
// under bbox/time filters.
func TestEvalStoreEquivalence(t *testing.T) {
	orig, anon := evalFixture(t)
	opts := EvalOptions{Queries: 24}

	origDS, err := orig.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	anonDS, err := anon.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := EvalDataset(origDS, anonDS, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.Distortion.N == 0 {
		t.Fatal("fixture has no common users — equivalence would be vacuous")
	}

	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			o := opts
			o.Scan = store.ScanOptions{Workers: workers}
			got, st, err := EvalStore(context.Background(), orig, anon, o)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("EvalStore differs from Load path:\nwant %+v\ngot  %+v", want, got)
			}
			if st.Paired != 15 || len(st.OnlyOrig) != 5 || len(st.OnlyAnon) != 5 {
				t.Errorf("pair stats = %+v, want 15 paired, 5+5 one-sided", st)
			}
		})
	}

	t.Run("filtered", func(t *testing.T) {
		// A time window cutting into every trace. The grid must be
		// anchored identically on both paths, so pin Bounds explicitly.
		from := time.Date(2025, 6, 1, 8, 30, 0, 0, time.UTC)
		filters := store.ScanOptions{From: from}
		o := opts
		o.Bounds = orig.Bounds()
		o.Scan = filters
		o.Scan.Workers = 4
		got, _, err := EvalStore(context.Background(), orig, anon, o)
		if err != nil {
			t.Fatal(err)
		}
		fo, err := cliutil.FilterDataset(origDS, filters)
		if err != nil {
			t.Fatal(err)
		}
		fa, err := cliutil.FilterDataset(anonDS, filters)
		if err != nil {
			t.Fatal(err)
		}
		bo := opts
		bo.Bounds = orig.Bounds()
		wantF, err := EvalDataset(fo, fa, bo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantF, got) {
			t.Fatalf("filtered EvalStore differs from filtered Load path:\nwant %+v\ngot  %+v", wantF, got)
		}
		if reflect.DeepEqual(want, got) {
			t.Fatal("filter did not change the report — filter test is vacuous")
		}
	})
}

// TestEvalStorePrunes pins that a narrow filter skips whole blocks on
// both sides without reading them.
func TestEvalStorePrunes(t *testing.T) {
	orig, anon := evalFixture(t)
	o := EvalOptions{Queries: 8, Bounds: orig.Bounds()}
	o.Scan = store.ScanOptions{Users: []string{"e07"}}
	_, st, err := EvalStore(context.Background(), orig, anon, o)
	if err != nil {
		t.Fatal(err)
	}
	if st.Paired != 1 {
		t.Errorf("Paired = %d, want 1", st.Paired)
	}
	if st.Orig.BlocksPruned == 0 || st.Anon.BlocksPruned == 0 {
		t.Errorf("no pruning recorded: orig %+v anon %+v", st.Orig, st.Anon)
	}
}

// benchEvalStores builds the benchmark fixture: geography cycles with
// a fixed period so the grid-cell state stays bounded while the user
// count scales.
func benchEvalStores(b *testing.B, users, pointsEach int) (*store.Store, *store.Store) {
	var origTr, anonTr []*trace.Trace
	for u := 0; u < users; u++ {
		origTr = append(origTr, quantTrace(fmt.Sprintf("b%04d", u), u, pointsEach, 12))
		anonTr = append(anonTr, quantTrace(fmt.Sprintf("b%04d", u), u+7, pointsEach, 12))
	}
	return writeFragmented(b, origTr, 4, 1024, "orig.mstore"),
		writeFragmented(b, anonTr, 6, 1024, "anon.mstore")
}

var benchOpts = EvalOptions{Queries: 16}

// BenchmarkEvalStore measures the streaming evaluation path end to end
// in points/s.
func BenchmarkEvalStore(b *testing.B) {
	orig, anon := benchEvalStores(b, 48, 400)
	o := benchOpts
	o.Scan = store.ScanOptions{Workers: runtime.NumCPU()}
	b.ReportAllocs()
	b.ResetTimer()
	var points int64
	for i := 0; i < b.N; i++ {
		r, _, err := EvalStore(context.Background(), orig, anon, o)
		if err != nil {
			b.Fatal(err)
		}
		points += r.OrigPoints + r.AnonPoints
	}
	b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkEvalLoad is the batch baseline: Load both stores, then
// evaluate in memory. Same report, different memory story.
func BenchmarkEvalLoad(b *testing.B) {
	orig, anon := benchEvalStores(b, 48, 400)
	b.ReportAllocs()
	b.ResetTimer()
	var points int64
	for i := 0; i < b.N; i++ {
		od, err := orig.Load(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		ad, err := anon.Load(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		r, err := EvalDataset(od, ad, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		points += r.OrigPoints + r.AnonPoints
	}
	b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkEvalStoreMemory is the flat-memory proof for the acceptance
// criterion: at 10× the dataset (10× the users) the sampled peak heap
// stays flat — bounded by the scanning goroutines' in-flight traces
// plus the accumulator state (grid cells are bounded by geography, the
// length accumulator is 16 bytes per user) — instead of scaling with
// the stores, while the Load path would hold both datasets. The
// peak-heap-KB metric makes the comparison visible; the scale=1 and
// scale=10 lines should agree up to GC noise. (A GC runs before each
// sampled region so leftover fixture garbage cannot masquerade as
// working set.)
func BenchmarkEvalStoreMemory(b *testing.B) {
	const workers, pointsEach = 4, 400
	for _, scale := range []int{1, 10} {
		b.Run(fmt.Sprintf("scale=%d", scale), func(b *testing.B) {
			orig, anon := benchEvalStores(b, 60*scale, pointsEach)
			o := benchOpts
			o.Scan = store.ScanOptions{Workers: workers}
			b.ReportAllocs()
			b.ResetTimer()
			var peakHeap uint64
			for i := 0; i < b.N; i++ {
				runtime.GC()
				stop := make(chan struct{})
				done := make(chan struct{})
				var localPeak atomic.Uint64
				go func() {
					defer close(done)
					var ms runtime.MemStats
					for {
						select {
						case <-stop:
							return
						default:
						}
						runtime.ReadMemStats(&ms)
						if ms.HeapAlloc > localPeak.Load() {
							localPeak.Store(ms.HeapAlloc)
						}
						time.Sleep(time.Millisecond)
					}
				}()
				if _, _, err := EvalStore(context.Background(), orig, anon, o); err != nil {
					b.Fatal(err)
				}
				close(stop)
				<-done
				if localPeak.Load() > peakHeap {
					peakHeap = localPeak.Load()
				}
			}
			b.ReportMetric(float64(peakHeap)/1024, "peak-heap-KB")
		})
	}
}

package metrics

import (
	"fmt"
	"io"

	"mobipriv/internal/geo"
	"mobipriv/internal/risk"
	"mobipriv/internal/stats"
	"mobipriv/internal/store"
	"mobipriv/internal/trace"
)

// EvalOptions configures a full evaluation run (EvalDataset,
// EvalStore). The zero value evaluates with the paper's defaults on a
// grid anchored at the original dataset's bounding box.
type EvalOptions struct {
	// CellSize is the grid cell size in meters for coverage, OD flows
	// and popular cells (default 500).
	CellSize float64

	// TopCells is how many top-ranked cells the popularity metric
	// correlates (default 20).
	TopCells int

	// Queries is the number of random range queries (default 100) and
	// QueryRadius their disc radius in meters (default CellSize).
	Queries     int
	QueryRadius float64

	// Seed derives the range-query centers; see queryPoints for the
	// (seed, index) derivation. Zero is a valid seed.
	Seed int64

	// Bounds anchors the evaluation grid and the query box. When
	// empty, EvalDataset derives it from the original dataset and
	// EvalStore from the original store's manifest — identical values
	// for the same unfiltered data, because the manifest tracks the
	// quantized bounds that Load reproduces. Pass it explicitly to
	// compare filtered runs on a common grid.
	Bounds geo.BBox

	// Scan filters and tunes the paired scan (EvalStore only): bbox,
	// time window, user list and worker count apply to both stores.
	// The NoCache and Stats fields are owned by EvalStore and ignored.
	Scan store.ScanOptions

	// Attack, when non-nil, scores the POI-retrieval attack on the
	// anonymized side alongside the utility metrics; the scores join
	// the Report. The accumulator streams per trace, so enabling it
	// keeps both EvalDataset and EvalStore Load-free.
	Attack *AttackOptions
}

// AttackOptions carries the ground truth and configuration of the
// POI-retrieval attack into an evaluation run.
type AttackOptions struct {
	// Truth maps each original user to their ground-truth POI
	// locations (risk.TruthPOIs).
	Truth map[string][]geo.Point
	// Config parameterizes extraction and matching.
	Config risk.AttackConfig
}

func (o EvalOptions) withDefaults() EvalOptions {
	if o.CellSize == 0 {
		o.CellSize = 500
	}
	if o.TopCells == 0 {
		o.TopCells = 20
	}
	if o.Queries == 0 {
		o.Queries = 100
	}
	if o.QueryRadius == 0 {
		o.QueryRadius = o.CellSize
	}
	return o
}

// EvalAcc bundles one accumulator per metric behind a single
// AddPair/Merge pair — the unit of work the store-native evaluation
// fans over its workers. It obeys the same determinism contract as its
// parts: any partition of the trace pairs over any number of EvalAccs,
// merged in any order, reports bit-identical metrics.
type EvalAcc struct {
	opts EvalOptions

	dist *DistortionAcc
	comp *DistortionAcc
	cov  *CoverageAcc
	lens *LengthAcc
	od   *ODAcc
	pop  *PopularAcc
	rq   *RangeQueryAcc

	origTraces, anonTraces int64
	origPoints, anonPoints int64

	attack *risk.AttackAcc // nil unless opts.Attack is set
}

// NewEvalAcc builds the accumulator bundle. Opts.Bounds must be
// non-empty: it anchors the grid and the query box.
func NewEvalAcc(opts EvalOptions) (*EvalAcc, error) {
	opts = opts.withDefaults()
	if opts.Bounds.IsEmpty() {
		return nil, errEmptyOriginal
	}
	center := opts.Bounds.Center()
	cov, err := NewCoverageAcc(center, opts.CellSize)
	if err != nil {
		return nil, err
	}
	od, err := NewODAcc(center, opts.CellSize)
	if err != nil {
		return nil, err
	}
	pop, err := NewPopularAcc(center, opts.CellSize, opts.TopCells)
	if err != nil {
		return nil, err
	}
	rq, err := NewRangeQueryAcc(opts.Bounds, opts.Queries, opts.QueryRadius, opts.Seed)
	if err != nil {
		return nil, err
	}
	acc := &EvalAcc{
		opts: opts,
		dist: NewDistortionAcc(),
		comp: NewCompletenessAcc(),
		cov:  cov,
		lens: NewLengthAcc(),
		od:   od,
		pop:  pop,
		rq:   rq,
	}
	if opts.Attack != nil {
		if acc.attack, err = risk.NewAttackAcc(opts.Attack.Truth, opts.Attack.Config); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// AddPair folds one user's aligned traces into every metric. Either
// side may be nil for a one-sided user.
func (a *EvalAcc) AddPair(orig, anon *trace.Trace) error {
	if orig == nil && anon == nil {
		return nil
	}
	if orig != nil {
		a.origTraces++
		a.origPoints += int64(orig.Len())
	}
	if anon != nil {
		a.anonTraces++
		a.anonPoints += int64(anon.Len())
	}
	if err := a.dist.AddPair(orig, anon); err != nil {
		return err
	}
	if err := a.comp.AddPair(orig, anon); err != nil {
		return err
	}
	a.cov.AddPair(orig, anon)
	a.lens.AddPair(orig, anon)
	a.od.AddPair(orig, anon)
	a.pop.AddPair(orig, anon)
	a.rq.AddPair(orig, anon)
	if a.attack != nil && anon != nil {
		a.attack.AddTrace(anon)
	}
	return nil
}

// Merge folds another bundle built with the same options into a.
func (a *EvalAcc) Merge(b *EvalAcc) {
	a.origTraces += b.origTraces
	a.anonTraces += b.anonTraces
	a.origPoints += b.origPoints
	a.anonPoints += b.anonPoints
	a.dist.Merge(b.dist)
	a.comp.Merge(b.comp)
	a.cov.Merge(b.cov)
	a.lens.Merge(b.lens)
	a.od.Merge(b.od)
	a.pop.Merge(b.pop)
	a.rq.Merge(b.rq)
	if a.attack != nil {
		a.attack.Merge(b.attack)
	}
}

// Report finalizes every accumulator. It fails when either side ended
// up empty (nothing to evaluate); a missing user intersection only
// degrades the distortion sections, exactly as the batch tools always
// have.
func (a *EvalAcc) Report() (*Report, error) {
	r := &Report{
		CellSize:    a.opts.CellSize,
		TopCells:    a.opts.TopCells,
		Queries:     a.opts.Queries,
		QueryRadius: a.opts.QueryRadius,
		OrigTraces:  a.origTraces,
		AnonTraces:  a.anonTraces,
		OrigPoints:  a.origPoints,
		AnonPoints:  a.anonPoints,
		Distortion:  a.dist.Summary(),
		Coverage:    a.cov.Result(),
	}
	r.Completeness = a.comp.Summary()
	var err error
	if r.Lengths, err = a.lens.Result(); err != nil {
		return nil, err
	}
	if r.OD, err = a.od.Result(); err != nil {
		return nil, err
	}
	if r.QueryErrors, err = a.rq.Errors(); err != nil {
		return nil, err
	}
	if tau, err := a.pop.Result(); err == nil {
		r.PopularTau, r.PopularOK = tau, true
	}
	if a.attack != nil {
		res := a.attack.Result()
		r.Attack = &res
	}
	return r, nil
}

// Report is the full utility report of one evaluation — the same
// struct whichever path produced it (batch EvalDataset or streaming
// EvalStore).
type Report struct {
	CellSize    float64
	TopCells    int
	Queries     int
	QueryRadius float64

	OrigTraces, AnonTraces int64
	OrigPoints, AnonPoints int64

	// Distortion pools published-point-to-original-path distances;
	// Completeness the reverse. Both are zero (N=0) when the datasets
	// share no users.
	Distortion   DistSummary
	Completeness DistSummary

	Coverage CoverageResult
	Lengths  LengthStats
	OD       ODResult

	// PopularTau is valid only when PopularOK (at least two populated
	// cells).
	PopularTau float64
	PopularOK  bool

	// QueryErrors holds the per-query relative errors, in query order.
	QueryErrors []float64

	// Attack holds the POI-retrieval attack scores; nil unless the run
	// was configured with EvalOptions.Attack.
	Attack *risk.Result
}

// WriteText renders the report in the mobieval text format — the one
// pinned by the golden-report test, so metric regressions show up as
// diffs.
func (r *Report) WriteText(w io.Writer) error {
	pr := func(format string, args ...any) (err error) {
		_, err = fmt.Fprintf(w, format, args...)
		return err
	}
	if err := pr("original:   %d traces, %d points\nanonymized: %d traces, %d points\n\n",
		r.OrigTraces, r.OrigPoints, r.AnonTraces, r.AnonPoints); err != nil {
		return err
	}
	if r.Distortion.N == 0 {
		if err := pr("spatial distortion: skipped (no common users)\n"); err != nil {
			return err
		}
	} else {
		d, c := r.Distortion, r.Completeness
		if err := pr("spatial distortion (pub->orig): %s\ncompleteness (orig->pub):       %s\n",
			d, c); err != nil {
			return err
		}
	}
	cov := r.Coverage
	if err := pr("coverage @%.0fm: P=%.3f R=%.3f F1=%.3f (%d->%d cells)\n",
		r.CellSize, cov.Precision, cov.Recall, cov.F1, cov.OrigCells, cov.AnonCells); err != nil {
		return err
	}
	if err := pr("trip lengths: mean %.0f -> %.0f m (rel err %.3f), decile err %.3f\n",
		r.Lengths.OrigMean, r.Lengths.AnonMean, r.Lengths.MeanRelError, r.Lengths.DecileError); err != nil {
		return err
	}
	if err := pr("OD flows @%.0fm: accuracy %.3f (%d -> %d distinct pairs)\n",
		r.CellSize, r.OD.Accuracy, r.OD.OrigOD, r.OD.AnonOD); err != nil {
		return err
	}
	if r.PopularOK {
		if err := pr("popular cells (top %d): kendall tau %.3f\n", r.TopCells, r.PopularTau); err != nil {
			return err
		}
	}
	if err := pr("range queries (%d @%.0fm): mean rel err %.3f, p95 %.3f\n",
		len(r.QueryErrors), r.QueryRadius, stats.Mean(r.QueryErrors), stats.Quantile(r.QueryErrors, 0.95)); err != nil {
		return err
	}
	if r.Attack != nil {
		return pr("\nPOI retrieval attack:\n  per-user: %s\n  global:   %s\n",
			r.Attack.PerUser, r.Attack.Global)
	}
	return nil
}

// String renders a DistSummary on one line.
func (s DistSummary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f",
		s.N, s.Mean, s.Min, s.P50, s.P95, s.Max)
}

// EvalDataset evaluates an anonymized dataset against its original —
// the batch entry point, one accumulator fed serially. The report is
// bit-identical to EvalStore over stores holding the same data.
func EvalDataset(orig, anon *trace.Dataset, opts EvalOptions) (*Report, error) {
	if opts.Bounds.IsEmpty() {
		opts.Bounds = orig.Bounds()
	}
	acc, err := NewEvalAcc(opts)
	if err != nil {
		return nil, err
	}
	var addErr error
	feedDatasets(orig, anon, func(o, a *trace.Trace) {
		if addErr == nil {
			addErr = acc.AddPair(o, a)
		}
	})
	if addErr != nil {
		return nil, addErr
	}
	return acc.Report()
}

package metrics

import (
	"context"
	"sync"

	"mobipriv/internal/store"
	"mobipriv/internal/trace"
)

// EvalStoreStats reports what a store-native evaluation did: traces
// paired, users present in only one store, per-side block pruning
// counters and the peak number of users buffered at once — the
// observable proof that the datasets never existed in memory.
type EvalStoreStats = store.PairScanStats

// EvalStore evaluates an anonymized store against its original without
// materializing either dataset: store.ScanTracesPaired streams the two
// stores in lockstep, aligned by user, and each segment goroutine folds
// its pairs into its own EvalAcc; the per-worker accumulators are
// merged at the end. Because the accumulators are merge-order
// invariant, the report is bit-identical to EvalDataset over the
// Load()ed stores, whatever the worker count.
//
// Peak memory is one user's traces per scanning goroutine plus the
// accumulator state (grid cells, per-trace lengths, histograms) —
// never the datasets. opts.Scan carries the bbox/time/user filters and
// the worker budget; both stores are pruned on their block footers
// before anything is read.
func EvalStore(ctx context.Context, orig, anon *store.Store, opts EvalOptions) (*Report, *EvalStoreStats, error) {
	if opts.Bounds.IsEmpty() {
		opts.Bounds = orig.Bounds()
	}
	root, err := NewEvalAcc(opts)
	if err != nil {
		return nil, nil, err
	}

	// A free list of per-worker accumulators: each callback checks one
	// out, folds its pair, and returns it. The list never exceeds the
	// scan's goroutine count.
	var (
		mu   sync.Mutex
		free []*EvalAcc
		all  []*EvalAcc
	)
	get := func() (*EvalAcc, error) {
		mu.Lock()
		defer mu.Unlock()
		if n := len(free); n > 0 {
			acc := free[n-1]
			free = free[:n-1]
			return acc, nil
		}
		acc, err := NewEvalAcc(opts)
		if err != nil {
			return nil, err
		}
		all = append(all, acc)
		return acc, nil
	}
	put := func(acc *EvalAcc) {
		mu.Lock()
		free = append(free, acc)
		mu.Unlock()
	}

	scan := opts.Scan
	scan.NoCache = true // one-shot pass: caching would only pin dead memory
	scan.Stats = nil
	pstats, err := store.ScanTracesPaired(ctx, orig, anon, scan, func(o, a *trace.Trace) error {
		acc, err := get()
		if err != nil {
			return err
		}
		defer put(acc)
		return acc.AddPair(o, a)
	})
	if err != nil {
		return nil, nil, err
	}
	for _, acc := range all {
		root.Merge(acc)
	}
	r, err := root.Report()
	if err != nil {
		return nil, nil, err
	}
	return r, pstats, nil
}

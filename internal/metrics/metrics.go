// Package metrics implements the utility measures of the evaluation:
// spatial distortion, area coverage, trip-length preservation,
// origin–destination flows, popular-cell ranking and range-query
// accuracy. Together they quantify the paper's utility claim — that
// distorting time instead of space keeps published data useful for
// spatial analyses.
//
// Every metric exists in two forms sharing one implementation: a
// streaming accumulator (DistortionAcc, CoverageAcc, LengthAcc, ODAcc,
// PopularAcc, RangeQueryAcc — see acc.go) fed trace pairs with AddPair
// and combined with Merge, and a Dataset-level function that is a thin
// wrapper feeding a whole in-memory dataset through the accumulator.
// The accumulators obey a determinism contract — AddPair and Merge
// commute, so any partition of the input merged in any order is
// bit-identical — which is what lets EvalStore stream two on-disk
// stores through a worker pool and still match the batch path exactly.
package metrics

import (
	"errors"
	"fmt"
	"sort"

	"mobipriv/internal/stats"
	"mobipriv/internal/trace"
)

// ErrNoCommonUsers reports that two datasets share no user identifiers.
var ErrNoCommonUsers = errors.New("metrics: datasets share no users")

var (
	errEmptyDataset  = errors.New("metrics: empty dataset")
	errEmptyOriginal = errors.New("metrics: empty original dataset")
)

// TraceDistortion returns the spatial distortion sample of one
// anonymized trace versus its original: for every published point, the
// distance in meters to the original path (pure geometry — time is
// ignored, because the mechanism under evaluation distorts time by
// design).
func TraceDistortion(orig, anon *trace.Trace) ([]float64, error) {
	pl, err := orig.Polyline()
	if err != nil {
		return nil, fmt.Errorf("metrics: original path: %w", err)
	}
	out := make([]float64, anon.Len())
	for i, p := range anon.Points {
		out[i] = pl.DistanceTo(p.Point)
	}
	return out, nil
}

// CompletenessDistortion measures the opposite direction: for every
// original point, the distance to the published path. Large values mean
// parts of the original journey are missing from the publication
// (trimming, suppression, heavy perturbation).
func CompletenessDistortion(orig, anon *trace.Trace) ([]float64, error) {
	pl, err := anon.Polyline()
	if err != nil {
		return nil, fmt.Errorf("metrics: published path: %w", err)
	}
	out := make([]float64, orig.Len())
	for i, p := range orig.Points {
		out[i] = pl.DistanceTo(p.Point)
	}
	return out, nil
}

// DatasetDistortion pools TraceDistortion over all users present in both
// datasets (matched by identifier). Users missing from either side are
// skipped; it is an error if no user matches.
func DatasetDistortion(orig, anon *trace.Dataset) ([]float64, error) {
	return pooledDistortion(orig, anon, TraceDistortion)
}

// DatasetCompleteness pools CompletenessDistortion over all users
// present in both datasets (matched by identifier): for every original
// observation, the distance to the user's published path. It is the
// direction in which trimming, suppression and corner-cutting show up.
func DatasetCompleteness(orig, anon *trace.Dataset) ([]float64, error) {
	return pooledDistortion(orig, anon, CompletenessDistortion)
}

func pooledDistortion(orig, anon *trace.Dataset, sample func(o, a *trace.Trace) ([]float64, error)) ([]float64, error) {
	var pooled []float64
	matched := false
	for _, at := range anon.Traces() {
		ot := orig.ByUser(at.User)
		if ot == nil {
			continue
		}
		matched = true
		ds, err := sample(ot, at)
		if err != nil {
			return nil, err
		}
		pooled = append(pooled, ds...)
	}
	if !matched {
		return nil, ErrNoCommonUsers
	}
	return pooled, nil
}

// CoverageResult reports how well the published dataset covers the
// geographic cells visited in the original.
type CoverageResult struct {
	Precision float64 // fraction of published cells that are genuine
	Recall    float64 // fraction of original cells still covered
	F1        float64
	OrigCells int
	AnonCells int
}

// Coverage rasterizes both datasets onto a square grid of the given cell
// size (meters) and compares the visited-cell sets.
func Coverage(orig, anon *trace.Dataset, cellSize float64) (CoverageResult, error) {
	acc, err := NewCoverageAcc(orig.Bounds().Center(), cellSize)
	if err != nil {
		return CoverageResult{}, err
	}
	feedDatasets(orig, anon, func(o, a *trace.Trace) { acc.AddPair(o, a) })
	return acc.Result(), nil
}

// feedDatasets drives an accumulator callback over two datasets the way
// a paired scan would: one call per user of the union, with the side a
// user is missing from nil.
func feedDatasets(orig, anon *trace.Dataset, add func(o, a *trace.Trace)) {
	for _, ot := range orig.Traces() {
		add(ot, anon.ByUser(ot.User))
	}
	for _, at := range anon.Traces() {
		if orig.ByUser(at.User) == nil {
			add(nil, at)
		}
	}
}

type cellID struct{ x, y int }

// LengthStats compares the distribution of per-user travelled distances.
type LengthStats struct {
	OrigMean, AnonMean     float64
	OrigMedian, AnonMedian float64
	// MeanRelError is |AnonMean - OrigMean| / OrigMean.
	MeanRelError float64
	// DecileError is the mean absolute relative error across the nine
	// deciles of the two length distributions (a cheap earth-mover
	// proxy).
	DecileError float64
}

// TripLengths compares trace length distributions of the two datasets.
func TripLengths(orig, anon *trace.Dataset) (LengthStats, error) {
	acc := NewLengthAcc()
	feedDatasets(orig, anon, func(o, a *trace.Trace) { acc.AddPair(o, a) })
	return acc.Result()
}

// ODResult reports origin–destination flow preservation: each trace
// contributes one (start cell, end cell) pair; flows are compared as
// multisets.
type ODResult struct {
	// Accuracy is the overlap fraction: sum over OD pairs of
	// min(orig,anon) counts divided by the number of original traces.
	Accuracy float64
	OrigOD   int // distinct OD pairs in the original
	AnonOD   int
}

// ODFlows compares origin–destination flows on the given cell size. The
// paper predicts this query class breaks under swapping — E11 quantifies
// exactly that.
func ODFlows(orig, anon *trace.Dataset, cellSize float64) (ODResult, error) {
	acc, err := NewODAcc(orig.Bounds().Center(), cellSize)
	if err != nil {
		return ODResult{}, err
	}
	feedDatasets(orig, anon, func(o, a *trace.Trace) { acc.AddPair(o, a) })
	return acc.Result()
}

type odKey struct{ o, d cellID }

// PopularCellsTau ranks grid cells by visit count in the original
// dataset, takes the top n, and returns the Kendall rank correlation of
// their counts in original versus anonymized data. 1 means the
// popularity ranking is perfectly preserved.
func PopularCellsTau(orig, anon *trace.Dataset, cellSize float64, n int) (float64, error) {
	acc, err := NewPopularAcc(orig.Bounds().Center(), cellSize, n)
	if err != nil {
		return 0, err
	}
	feedDatasets(orig, anon, func(o, a *trace.Trace) { acc.AddPair(o, a) })
	return acc.Result()
}

// popularTau ranks the original cells (ties broken by coordinates) and
// correlates the top-n counts across the two sides.
func popularTau(oc, ac map[cellID]int64, n int) (float64, error) {
	type cc struct {
		id cellID
		n  int64
	}
	ranked := make([]cc, 0, len(oc))
	for id, cnt := range oc {
		ranked = append(ranked, cc{id, cnt})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		if ranked[i].id.x != ranked[j].id.x {
			return ranked[i].id.x < ranked[j].id.x
		}
		return ranked[i].id.y < ranked[j].id.y
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	if n < 2 {
		return 0, errors.New("metrics: fewer than 2 populated cells")
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(ranked[i].n)
		ys[i] = float64(ac[ranked[i].id])
	}
	return stats.KendallTau(xs, ys), nil
}

// RangeQueryError runs n random disc-counting queries (centers derived
// from the seed, uniform over the original bounding box, fixed radius)
// against both datasets and returns the per-query relative error of the
// normalized density: the fraction of each dataset's observations
// inside the disc. Using fractions rather than raw counts keeps the
// metric meaningful for mechanisms that change the total number of
// published points (smoothing, suppression).
//
// Query centers are a pure function of (seed, query index) via the
// shared internal/rng derivation — see queryPoints — so every consumer
// of the same seed, batch or store-native, evaluates the identical
// query set.
func RangeQueryError(orig, anon *trace.Dataset, n int, radius float64, seed int64) ([]float64, error) {
	box := orig.Bounds()
	acc, err := NewRangeQueryAcc(box, n, radius, seed)
	if err != nil {
		return nil, err
	}
	feedDatasets(orig, anon, func(o, a *trace.Trace) { acc.AddPair(o, a) })
	return acc.Errors()
}

// Package metrics implements the utility measures of the evaluation:
// spatial distortion, area coverage, trip-length preservation,
// origin–destination flows, popular-cell ranking and range-query
// accuracy. Together they quantify the paper's utility claim — that
// distorting time instead of space keeps published data useful for
// spatial analyses.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mobipriv/internal/geo"
	"mobipriv/internal/stats"
	"mobipriv/internal/trace"
)

// ErrNoCommonUsers reports that two datasets share no user identifiers.
var ErrNoCommonUsers = errors.New("metrics: datasets share no users")

// TraceDistortion returns the spatial distortion sample of one
// anonymized trace versus its original: for every published point, the
// distance in meters to the original path (pure geometry — time is
// ignored, because the mechanism under evaluation distorts time by
// design).
func TraceDistortion(orig, anon *trace.Trace) ([]float64, error) {
	pl, err := orig.Polyline()
	if err != nil {
		return nil, fmt.Errorf("metrics: original path: %w", err)
	}
	out := make([]float64, anon.Len())
	for i, p := range anon.Points {
		out[i] = pl.DistanceTo(p.Point)
	}
	return out, nil
}

// CompletenessDistortion measures the opposite direction: for every
// original point, the distance to the published path. Large values mean
// parts of the original journey are missing from the publication
// (trimming, suppression, heavy perturbation).
func CompletenessDistortion(orig, anon *trace.Trace) ([]float64, error) {
	pl, err := anon.Polyline()
	if err != nil {
		return nil, fmt.Errorf("metrics: published path: %w", err)
	}
	out := make([]float64, orig.Len())
	for i, p := range orig.Points {
		out[i] = pl.DistanceTo(p.Point)
	}
	return out, nil
}

// DatasetDistortion pools TraceDistortion over all users present in both
// datasets (matched by identifier). Users missing from either side are
// skipped; it is an error if no user matches.
func DatasetDistortion(orig, anon *trace.Dataset) ([]float64, error) {
	var pooled []float64
	matched := false
	for _, at := range anon.Traces() {
		ot := orig.ByUser(at.User)
		if ot == nil {
			continue
		}
		matched = true
		ds, err := TraceDistortion(ot, at)
		if err != nil {
			return nil, err
		}
		pooled = append(pooled, ds...)
	}
	if !matched {
		return nil, ErrNoCommonUsers
	}
	return pooled, nil
}

// DatasetCompleteness pools CompletenessDistortion over all users
// present in both datasets (matched by identifier): for every original
// observation, the distance to the user's published path. It is the
// direction in which trimming, suppression and corner-cutting show up.
func DatasetCompleteness(orig, anon *trace.Dataset) ([]float64, error) {
	var pooled []float64
	matched := false
	for _, at := range anon.Traces() {
		ot := orig.ByUser(at.User)
		if ot == nil {
			continue
		}
		matched = true
		ds, err := CompletenessDistortion(ot, at)
		if err != nil {
			return nil, err
		}
		pooled = append(pooled, ds...)
	}
	if !matched {
		return nil, ErrNoCommonUsers
	}
	return pooled, nil
}

// CoverageResult reports how well the published dataset covers the
// geographic cells visited in the original.
type CoverageResult struct {
	Precision float64 // fraction of published cells that are genuine
	Recall    float64 // fraction of original cells still covered
	F1        float64
	OrigCells int
	AnonCells int
}

// Coverage rasterizes both datasets onto a square grid of the given cell
// size (meters) and compares the visited-cell sets.
func Coverage(orig, anon *trace.Dataset, cellSize float64) (CoverageResult, error) {
	if cellSize <= 0 {
		return CoverageResult{}, fmt.Errorf("metrics: cell size %v must be positive", cellSize)
	}
	center := orig.Bounds().Center()
	oc := visitedCells(orig, center, cellSize)
	ac := visitedCells(anon, center, cellSize)
	var hit int
	for c := range ac {
		if oc[c] {
			hit++
		}
	}
	res := CoverageResult{OrigCells: len(oc), AnonCells: len(ac)}
	if len(ac) > 0 {
		res.Precision = float64(hit) / float64(len(ac))
	}
	if len(oc) > 0 {
		res.Recall = float64(hit) / float64(len(oc))
	}
	if res.Precision+res.Recall > 0 {
		res.F1 = 2 * res.Precision * res.Recall / (res.Precision + res.Recall)
	}
	return res, nil
}

type cellID struct{ x, y int }

func visitedCells(d *trace.Dataset, center geo.Point, cellSize float64) map[cellID]bool {
	proj := geo.NewProjector(center)
	out := make(map[cellID]bool)
	for _, tr := range d.Traces() {
		for _, p := range tr.Points {
			v := proj.ToXY(p.Point)
			out[cellID{int(math.Floor(v.X / cellSize)), int(math.Floor(v.Y / cellSize))}] = true
		}
	}
	return out
}

// LengthStats compares the distribution of per-user travelled distances.
type LengthStats struct {
	OrigMean, AnonMean     float64
	OrigMedian, AnonMedian float64
	// MeanRelError is |AnonMean - OrigMean| / OrigMean.
	MeanRelError float64
	// DecileError is the mean absolute relative error across the nine
	// deciles of the two length distributions (a cheap earth-mover
	// proxy).
	DecileError float64
}

// TripLengths compares trace length distributions of the two datasets.
func TripLengths(orig, anon *trace.Dataset) (LengthStats, error) {
	ol := traceLengths(orig)
	al := traceLengths(anon)
	if len(ol) == 0 || len(al) == 0 {
		return LengthStats{}, errors.New("metrics: empty dataset")
	}
	ls := LengthStats{
		OrigMean:   stats.Mean(ol),
		AnonMean:   stats.Mean(al),
		OrigMedian: stats.Median(ol),
		AnonMedian: stats.Median(al),
	}
	if ls.OrigMean > 0 {
		ls.MeanRelError = math.Abs(ls.AnonMean-ls.OrigMean) / ls.OrigMean
	}
	var sum float64
	var n int
	for q := 0.1; q < 0.95; q += 0.1 {
		oq := stats.Quantile(ol, q)
		aq := stats.Quantile(al, q)
		if oq > 0 {
			sum += math.Abs(aq-oq) / oq
			n++
		}
	}
	if n > 0 {
		ls.DecileError = sum / float64(n)
	}
	return ls, nil
}

func traceLengths(d *trace.Dataset) []float64 {
	out := make([]float64, 0, d.Len())
	for _, tr := range d.Traces() {
		out = append(out, tr.Length())
	}
	return out
}

// ODResult reports origin–destination flow preservation: each trace
// contributes one (start cell, end cell) pair; flows are compared as
// multisets.
type ODResult struct {
	// Accuracy is the overlap fraction: sum over OD pairs of
	// min(orig,anon) counts divided by the number of original traces.
	Accuracy float64
	OrigOD   int // distinct OD pairs in the original
	AnonOD   int
}

// ODFlows compares origin–destination flows on the given cell size. The
// paper predicts this query class breaks under swapping — E11 quantifies
// exactly that.
func ODFlows(orig, anon *trace.Dataset, cellSize float64) (ODResult, error) {
	if cellSize <= 0 {
		return ODResult{}, fmt.Errorf("metrics: cell size %v must be positive", cellSize)
	}
	if orig.Len() == 0 {
		return ODResult{}, errors.New("metrics: empty original dataset")
	}
	center := orig.Bounds().Center()
	of := odCounts(orig, center, cellSize)
	af := odCounts(anon, center, cellSize)
	var overlap int
	for k, oc := range of {
		if ac := af[k]; ac < oc {
			overlap += ac
		} else {
			overlap += oc
		}
	}
	return ODResult{
		Accuracy: float64(overlap) / float64(orig.Len()),
		OrigOD:   len(of),
		AnonOD:   len(af),
	}, nil
}

type odKey struct{ o, d cellID }

func odCounts(d *trace.Dataset, center geo.Point, cellSize float64) map[odKey]int {
	proj := geo.NewProjector(center)
	cell := func(p geo.Point) cellID {
		v := proj.ToXY(p)
		return cellID{int(math.Floor(v.X / cellSize)), int(math.Floor(v.Y / cellSize))}
	}
	out := make(map[odKey]int)
	for _, tr := range d.Traces() {
		out[odKey{cell(tr.Start().Point), cell(tr.End().Point)}]++
	}
	return out
}

// PopularCellsTau ranks grid cells by visit count in the original
// dataset, takes the top n, and returns the Kendall rank correlation of
// their counts in original versus anonymized data. 1 means the
// popularity ranking is perfectly preserved.
func PopularCellsTau(orig, anon *trace.Dataset, cellSize float64, n int) (float64, error) {
	if cellSize <= 0 || n <= 1 {
		return 0, fmt.Errorf("metrics: need positive cell size and n > 1 (got %v, %d)", cellSize, n)
	}
	center := orig.Bounds().Center()
	oc := cellCounts(orig, center, cellSize)
	ac := cellCounts(anon, center, cellSize)
	type cc struct {
		id cellID
		n  int
	}
	ranked := make([]cc, 0, len(oc))
	for id, cnt := range oc {
		ranked = append(ranked, cc{id, cnt})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		if ranked[i].id.x != ranked[j].id.x {
			return ranked[i].id.x < ranked[j].id.x
		}
		return ranked[i].id.y < ranked[j].id.y
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	if n < 2 {
		return 0, errors.New("metrics: fewer than 2 populated cells")
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(ranked[i].n)
		ys[i] = float64(ac[ranked[i].id])
	}
	return stats.KendallTau(xs, ys), nil
}

func cellCounts(d *trace.Dataset, center geo.Point, cellSize float64) map[cellID]int {
	proj := geo.NewProjector(center)
	out := make(map[cellID]int)
	for _, tr := range d.Traces() {
		for _, p := range tr.Points {
			v := proj.ToXY(p.Point)
			out[cellID{int(math.Floor(v.X / cellSize)), int(math.Floor(v.Y / cellSize))}]++
		}
	}
	return out
}

// RangeQueryError runs n random disc-counting queries (uniform centers
// over the original bounding box, fixed radius) against both datasets
// and returns the per-query relative error of the normalized density:
// the fraction of each dataset's observations inside the disc. Using
// fractions rather than raw counts keeps the metric meaningful for
// mechanisms that change the total number of published points
// (smoothing, suppression).
func RangeQueryError(orig, anon *trace.Dataset, n int, radius float64, seed int64) ([]float64, error) {
	if n <= 0 || radius <= 0 {
		return nil, fmt.Errorf("metrics: need positive query count and radius (got %d, %v)", n, radius)
	}
	box := orig.Bounds()
	if box.IsEmpty() {
		return nil, errors.New("metrics: empty original dataset")
	}
	origTotal := float64(orig.TotalPoints())
	anonTotal := math.Max(float64(anon.TotalPoints()), 1)
	rng := rand.New(rand.NewSource(seed))
	errsOut := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		q := geo.Point{
			Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
			Lng: box.MinLng + rng.Float64()*(box.MaxLng-box.MinLng),
		}
		of := float64(countWithin(orig, q, radius)) / origTotal
		af := float64(countWithin(anon, q, radius)) / anonTotal
		denom := math.Max(of, 1/origTotal) // one original point's worth of density
		errsOut = append(errsOut, math.Abs(af-of)/denom)
	}
	return errsOut, nil
}

func countWithin(d *trace.Dataset, q geo.Point, radius float64) int {
	var n int
	for _, tr := range d.Traces() {
		for _, p := range tr.Points {
			if geo.FastDistance(p.Point, q) <= radius {
				n++
			}
		}
	}
	return n
}

package metrics

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/risk"
	"mobipriv/internal/store"
	"mobipriv/internal/trace"
)

// attackTruth fabricates ground-truth POI locations near the start of
// each original trace, so the attack has something to retrieve.
func attackTruth(ds *trace.Dataset) map[string][]geo.Point {
	truth := make(map[string][]geo.Point, ds.Len())
	for _, tr := range ds.Traces() {
		truth[tr.User] = []geo.Point{tr.Points[0].Point}
	}
	return truth
}

// TestEvalStoreAttackEquivalence extends the headline equivalence pin
// to the POI attack: with EvalOptions.Attack set, the streaming
// EvalStore reports the same attack scores as the Load-based
// EvalDataset, across worker counts (merge-order invariance under real
// sharding).
func TestEvalStoreAttackEquivalence(t *testing.T) {
	orig, anon := evalFixture(t)
	origDS, err := orig.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	anonDS, err := anon.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	opts := EvalOptions{Queries: 24}
	opts.Attack = &AttackOptions{
		Truth:  attackTruth(origDS),
		Config: risk.AttackConfig{POI: risk.DefaultAttackConfig().POI, MatchRadius: 400},
	}

	want, err := EvalDataset(origDS, anonDS, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.Attack == nil {
		t.Fatal("batch report has no attack section")
	}
	if want.Attack.Global.Extracted == 0 {
		t.Fatal("fixture yields no extracted POIs — equivalence would be vacuous")
	}

	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			o := opts
			o.Scan = store.ScanOptions{Workers: workers}
			got, _, err := EvalStore(context.Background(), orig, anon, o)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Attack, got.Attack) {
				t.Fatalf("store-native attack differs from Load path:\nwant %+v\ngot  %+v",
					want.Attack, got.Attack)
			}
		})
	}
}

// TestReportOmitsAttackByDefault pins that runs without Attack options
// keep the report — and its golden text rendering — unchanged.
func TestReportOmitsAttackByDefault(t *testing.T) {
	orig, anon := evalFixture(t)
	o := EvalOptions{Queries: 8}
	o.Scan = store.ScanOptions{Workers: 2}
	got, _, err := EvalStore(context.Background(), orig, anon, o)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attack != nil {
		t.Fatalf("attack section present without Attack options: %+v", got.Attack)
	}
}

// BenchmarkAttackStore is the flat-memory proof for the attack path:
// `mobieval -stays` at 10× scale must show ~constant peak heap, because
// the attack streams trace by trace and keeps only POI centers. Same
// sampling shape as BenchmarkEvalStoreMemory.
func BenchmarkAttackStore(b *testing.B) {
	const workers, pointsEach = 4, 400
	for _, scale := range []int{1, 10} {
		b.Run(fmt.Sprintf("scale=%d", scale), func(b *testing.B) {
			orig, anon := benchEvalStores(b, 60*scale, pointsEach)
			origDS, err := orig.Load(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			o := benchOpts
			o.Scan = store.ScanOptions{Workers: workers}
			o.Attack = &AttackOptions{
				Truth:  attackTruth(origDS),
				Config: risk.DefaultAttackConfig(),
			}
			origDS = nil
			b.ReportAllocs()
			b.ResetTimer()
			var peakHeap uint64
			var points int64
			for i := 0; i < b.N; i++ {
				runtime.GC()
				stop := make(chan struct{})
				done := make(chan struct{})
				var localPeak atomic.Uint64
				go func() {
					defer close(done)
					var ms runtime.MemStats
					for {
						select {
						case <-stop:
							return
						default:
						}
						runtime.ReadMemStats(&ms)
						if ms.HeapAlloc > localPeak.Load() {
							localPeak.Store(ms.HeapAlloc)
						}
						time.Sleep(time.Millisecond)
					}
				}()
				r, _, err := EvalStore(context.Background(), orig, anon, o)
				if err != nil {
					b.Fatal(err)
				}
				if r.Attack == nil {
					b.Fatal("attack section missing")
				}
				points += r.OrigPoints + r.AnonPoints
				close(stop)
				<-done
				if localPeak.Load() > peakHeap {
					peakHeap = localPeak.Load()
				}
			}
			b.ReportMetric(float64(peakHeap)/1024, "peak-heap-KB")
			b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

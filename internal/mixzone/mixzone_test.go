package mixzone

import (
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
)

var (
	t0     = time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	origin = geo.Point{Lat: 45.7640, Lng: 4.8357}
)

// eastbound returns a trace moving east through origin: from -extent to
// +extent meters (relative to origin along the E-W axis), at speed m/s,
// sampled every step. It passes the origin at half the total duration.
func eastbound(user string, extent, speed float64, step time.Duration) *trace.Trace {
	var pts []trace.Point
	now := t0
	for x := -extent; x <= extent; x += speed * step.Seconds() {
		pts = append(pts, trace.Point{Point: geo.Offset(origin, x, 0), Time: now})
		now = now.Add(step)
	}
	return trace.MustNew(user, pts)
}

// westbound is the mirror image of eastbound.
func westbound(user string, extent, speed float64, step time.Duration) *trace.Trace {
	var pts []trace.Point
	now := t0
	for x := extent; x >= -extent; x -= speed * step.Seconds() {
		pts = append(pts, trace.Point{Point: geo.Offset(origin, x, 0), Time: now})
		now = now.Add(step)
	}
	return trace.MustNew(user, pts)
}

// crossingPair: A eastbound and B westbound, both passing the origin at
// the same instant — one natural crossing.
func crossingPair() *trace.Dataset {
	a := eastbound("alice", 1000, 10, 10*time.Second)
	b := westbound("bob", 1000, 10, 10*time.Second)
	return trace.MustNewDataset([]*trace.Trace{a, b})
}

func TestDetectZonesFindsCrossing(t *testing.T) {
	d := crossingPair()
	zones := DetectZones(d, DefaultConfig())
	if len(zones) != 1 {
		t.Fatalf("detected %d zones, want 1", len(zones))
	}
	z := zones[0]
	if d := geo.Distance(z.Center, origin); d > 150 {
		t.Errorf("zone center %v m from the crossing point", d)
	}
	// Crossing happens at t0 + 100s (alice at x=0 after 1000 m at 10 m/s).
	want := t0.Add(100 * time.Second)
	if diff := z.Time.Sub(want); diff > 30*time.Second || diff < -30*time.Second {
		t.Errorf("zone time = %v, want ~%v", z.Time, want)
	}
	if len(z.Participants) != 2 || z.Participants[0] != "alice" || z.Participants[1] != "bob" {
		t.Errorf("participants = %v", z.Participants)
	}
}

func TestDetectZonesNoMeeting(t *testing.T) {
	// Two users on parallel tracks 2 km apart never meet.
	a := eastbound("alice", 1000, 10, 10*time.Second)
	bpts := make([]trace.Point, 0)
	now := t0
	for x := -1000.0; x <= 1000; x += 100 {
		bpts = append(bpts, trace.Point{Point: geo.Offset(origin, x, 2000), Time: now})
		now = now.Add(10 * time.Second)
	}
	b := trace.MustNew("bob", bpts)
	d := trace.MustNewDataset([]*trace.Trace{a, b})
	if zones := DetectZones(d, DefaultConfig()); len(zones) != 0 {
		t.Fatalf("detected %d zones on parallel tracks", len(zones))
	}
}

func TestDetectZonesSingleUser(t *testing.T) {
	d := trace.MustNewDataset([]*trace.Trace{eastbound("solo", 500, 10, 10*time.Second)})
	if zones := DetectZones(d, DefaultConfig()); zones != nil {
		t.Fatalf("zones = %v for single user", zones)
	}
}

func TestDetectZonesCooldown(t *testing.T) {
	// Two users walking together for 30 minutes: cooldown must coalesce
	// the co-location into few events.
	mk := func(user string, dy float64) *trace.Trace {
		var pts []trace.Point
		now := t0
		for i := 0; i < 60; i++ { // 30 min, 30s sampling, moving east at 1 m/s
			pts = append(pts, trace.Point{Point: geo.Offset(origin, float64(i)*30, dy), Time: now})
			now = now.Add(30 * time.Second)
		}
		return trace.MustNew(user, pts)
	}
	d := trace.MustNewDataset([]*trace.Trace{mk("a", 0), mk("b", 20)})
	cfg := DefaultConfig()
	zones := DetectZones(d, cfg)
	// 30 minutes of co-location with a 15-minute cooldown: at most 3
	// events, at least 1.
	if len(zones) < 1 || len(zones) > 3 {
		t.Fatalf("detected %d zones, want 1..3 with cooldown", len(zones))
	}
}

func TestDetectZonesMultiUser(t *testing.T) {
	// Three users at the same place at the same time: one zone with 3
	// participants.
	mk := func(user string, brg float64) *trace.Trace {
		var pts []trace.Point
		now := t0
		for x := -500.0; x <= 500; x += 100 {
			pts = append(pts, trace.Point{Point: geo.Destination(origin, brg, x), Time: now})
			now = now.Add(10 * time.Second)
		}
		return trace.MustNew(user, pts)
	}
	d := trace.MustNewDataset([]*trace.Trace{mk("a", 0), mk("b", 90), mk("c", 45)})
	zones := DetectZones(d, DefaultConfig())
	if len(zones) != 1 {
		t.Fatalf("detected %d zones, want 1", len(zones))
	}
	if len(zones[0].Participants) != 3 {
		t.Fatalf("participants = %v, want 3 users", zones[0].Participants)
	}
}

func TestApplyConservation(t *testing.T) {
	d := crossingPair()
	res, err := Apply(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Dataset.Validate(); err != nil {
		t.Fatalf("published dataset invalid: %v", err)
	}
	if res.Suppressed == 0 {
		t.Error("crossing should suppress in-zone points")
	}
	if got := res.Dataset.TotalPoints() + res.Suppressed; got != d.TotalPoints() {
		t.Errorf("points out %d + suppressed %d != in %d",
			res.Dataset.TotalPoints(), res.Suppressed, d.TotalPoints())
	}
	// Suppressed points are only those inside the zone.
	z := res.Zones[0]
	for _, tr := range res.Dataset.Traces() {
		for _, p := range tr.Points {
			dt := p.Time.Sub(z.Time)
			if dt < 0 {
				dt = -dt
			}
			if dt <= DefaultConfig().suppressWindow() && geo.FastDistance(p.Point, z.Center) <= z.Radius {
				t.Fatalf("point %v inside the zone survived suppression", p)
			}
		}
	}
}

func TestApplySwapGroundTruth(t *testing.T) {
	d := crossingPair()
	// Try seeds until the permutation actually swaps — uniform over 2
	// permutations, so a handful of seeds suffice.
	var res *Result
	for seed := int64(1); seed < 20; seed++ {
		cfg := DefaultConfig()
		cfg.SwapSeed = seed
		r, err := Apply(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.SwapCount() == 1 {
			res = r
			break
		}
	}
	if res == nil {
		t.Fatal("no seed produced a swap in 20 tries (p < 1e-6)")
	}
	// Before the zone, output "alice" carries alice; after it, bob.
	early := t0.Add(10 * time.Second)
	late := t0.Add(190 * time.Second)
	if u, ok := res.OriginalAt("alice", early); !ok || u != "alice" {
		t.Errorf("OriginalAt(alice, early) = %q, %v", u, ok)
	}
	if u, ok := res.OriginalAt("alice", late); !ok || u != "bob" {
		t.Errorf("OriginalAt(alice, late) = %q, %v (swap not reflected)", u, ok)
	}
	if u, ok := res.OriginalAt("bob", late); !ok || u != "alice" {
		t.Errorf("OriginalAt(bob, late) = %q, %v", u, ok)
	}
	// The published "alice" trace physically continues east-to-west...
	// no: it continues alice's prefix (heading east toward the zone)
	// with bob's suffix (continuing west-to-east? bob moves west).
	// Verify continuity: consecutive points around the seam are within
	// 2×Radius + one sampling step of travel.
	for _, tr := range res.Dataset.Traces() {
		for i := 1; i < tr.Len(); i++ {
			gap := geo.Distance(tr.Points[i-1].Point, tr.Points[i].Point)
			dt := tr.Points[i].Time.Sub(tr.Points[i-1].Time).Seconds()
			if gap > 2*100+dt*15 {
				t.Errorf("output %s: %v m jump at point %d", tr.User, gap, i)
			}
		}
	}
}

func TestApplyNoSwap(t *testing.T) {
	d := crossingPair()
	cfg := DefaultConfig()
	cfg.NoSwap = true
	res, err := Apply(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount() != 0 {
		t.Errorf("SwapCount = %d with NoSwap", res.SwapCount())
	}
	if res.Suppressed == 0 {
		t.Error("NoSwap must still suppress")
	}
	// Identities unchanged: every segment maps an output to itself.
	for _, s := range res.Segments {
		if s.Output != s.Original {
			t.Errorf("segment %+v changed identity despite NoSwap", s)
		}
	}
}

func TestApplyNoSuppress(t *testing.T) {
	d := crossingPair()
	cfg := DefaultConfig()
	cfg.NoSuppress = true
	res, err := Apply(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Suppressed != 0 {
		t.Errorf("Suppressed = %d with NoSuppress", res.Suppressed)
	}
	if res.Dataset.TotalPoints() != d.TotalPoints() {
		t.Error("NoSuppress must keep every point")
	}
}

func TestApplyNoZonesIsIdentity(t *testing.T) {
	a := eastbound("alice", 500, 10, 10*time.Second)
	d := trace.MustNewDataset([]*trace.Trace{a})
	res, err := Apply(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Zones) != 0 || res.Suppressed != 0 {
		t.Fatalf("zones=%d suppressed=%d for single user", len(res.Zones), res.Suppressed)
	}
	if res.Dataset.TotalPoints() != d.TotalPoints() || res.Dataset.Len() != 1 {
		t.Error("dataset must pass through unchanged")
	}
	// Ground truth still covers the whole trace.
	if u, ok := res.OriginalAt("alice", t0.Add(30*time.Second)); !ok || u != "alice" {
		t.Errorf("OriginalAt = %q, %v", u, ok)
	}
}

func TestApplyValidation(t *testing.T) {
	d := crossingPair()
	bad := DefaultConfig()
	bad.Radius = 0
	if _, err := Apply(d, bad); err == nil {
		t.Error("Radius=0 accepted")
	}
	bad = DefaultConfig()
	bad.Window = 0
	if _, err := Apply(d, bad); err == nil {
		t.Error("Window=0 accepted")
	}
	bad = DefaultConfig()
	bad.Cooldown = -time.Second
	if _, err := Apply(d, bad); err == nil {
		t.Error("negative Cooldown accepted")
	}
}

func TestOriginalAtUnknown(t *testing.T) {
	d := crossingPair()
	res, err := Apply(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.OriginalAt("nobody", t0); ok {
		t.Error("unknown output identity should not resolve")
	}
	if _, ok := res.OriginalAt("alice", t0.Add(-time.Hour)); ok {
		t.Error("time outside any segment should not resolve")
	}
}

func TestSegmentsPartitionTimeline(t *testing.T) {
	d := crossingPair()
	cfg := DefaultConfig()
	cfg.SwapSeed = 3
	res, err := Apply(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// For each original user, its segments (grouped over outputs) must
	// tile the trace's time span without gaps.
	for _, u := range d.Users() {
		var segs []Segment
		for _, s := range res.Segments {
			if s.Original == u {
				segs = append(segs, s)
			}
		}
		if len(segs) == 0 {
			t.Fatalf("no segments for %s", u)
		}
		tr := d.ByUser(u)
		if !segs[0].From.Equal(tr.Start().Time) {
			t.Errorf("%s: first segment starts %v, trace starts %v", u, segs[0].From, tr.Start().Time)
		}
		for i := 1; i < len(segs); i++ {
			if !segs[i].From.Equal(segs[i-1].To) {
				t.Errorf("%s: gap between segments %d and %d", u, i-1, i)
			}
		}
		if !segs[len(segs)-1].To.Equal(tr.End().Time) {
			t.Errorf("%s: last segment ends %v, trace ends %v", u, segs[len(segs)-1].To, tr.End().Time)
		}
	}
}

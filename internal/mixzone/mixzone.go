// Package mixzone implements the second step of the paper's pipeline:
// exploiting natural path crossings ("mix-zones", Beresford & Stajano)
// to swap user identifiers and confuse re-identification attacks.
//
// The mechanism never distorts locations: it (1) detects places where
// two or more users naturally pass close to each other in space and
// time, (2) suppresses the few observations inside each zone, and (3)
// applies a uniform random permutation to the identities of the traces
// crossing the zone — a user entering as "A" may leave as "B".
//
// Zones are detected, never fabricated: the paper explicitly avoids
// distorting trajectories to force meetings. Consequently the amount of
// confusion available depends on how often users actually meet (see
// experiment E9).
package mixzone

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/index"
	"mobipriv/internal/trace"
)

// Config parameterizes zone detection and swapping.
type Config struct {
	// Radius is the mix-zone radius in meters: two users within Radius
	// of each other form a zone, and observations within Radius of the
	// zone center are suppressed. Small zones cost little utility.
	Radius float64
	// Window is the co-location tolerance: observations of two users
	// count as a meeting when they are within Radius and their
	// timestamps differ by at most Window.
	Window time.Duration
	// Cooldown is the minimum time between two distinct zone events for
	// the same pair of users, preventing one long co-location (e.g.
	// colleagues at the office) from generating unbounded events.
	Cooldown time.Duration
	// SuppressWindow is the half-width of the time interval around the
	// meeting instant during which participants' in-zone observations
	// are suppressed. Zero means 2×Window.
	SuppressWindow time.Duration
	// SwapSeed seeds the permutation generator; runs are reproducible.
	SwapSeed int64
	// NoSwap disables identity swapping while keeping zone detection and
	// suppression (the E12 ablation).
	NoSwap bool
	// NoSuppress disables point suppression while keeping swapping (the
	// E12 ablation: the seam inside each zone stays visible).
	NoSuppress bool
}

// DefaultConfig returns the operating point used across the experiments.
func DefaultConfig() Config {
	return Config{
		Radius:   100,
		Window:   time.Minute,
		Cooldown: 15 * time.Minute,
		SwapSeed: 1,
	}
}

func (c Config) suppressWindow() time.Duration {
	if c.SuppressWindow > 0 {
		return c.SuppressWindow
	}
	return 2 * c.Window
}

func (c Config) validate() error {
	switch {
	case c.Radius <= 0:
		return errors.New("mixzone: Radius must be positive")
	case c.Window <= 0:
		return errors.New("mixzone: Window must be positive")
	case c.Cooldown < 0:
		return errors.New("mixzone: Cooldown must be non-negative")
	case c.SuppressWindow < 0:
		return errors.New("mixzone: SuppressWindow must be non-negative")
	}
	return nil
}

// Zone is one detected meeting: the participants were pairwise within
// Radius of the center around the meeting instant.
type Zone struct {
	Center       geo.Point
	Radius       float64
	Time         time.Time
	Participants []string // original user identifiers, sorted
}

// SwapRecord is the ground truth of one zone's identity permutation:
// Mapping[in] = out means the output identity that carried original
// user in's trace before the zone carries original user Mapping[in]'s
// trace after it... more precisely, identities are re-assigned so that
// the trace of original user u is published under Assignment[u] after
// the zone (see Result.Segments for the flattened view).
type SwapRecord struct {
	Zone Zone
	// Assignment maps each participant (original user) to the output
	// identity its observations carry after this zone.
	Assignment map[string]string
	// Swapped is false when the drawn permutation was the identity.
	Swapped bool
}

// Segment records which original user's observations an output identity
// carries during [From, To] — the evaluation ground truth for the
// re-identification experiments.
type Segment struct {
	Output   string
	Original string
	From     time.Time
	To       time.Time
}

// Result is the outcome of applying the mix-zone step to a dataset.
type Result struct {
	// Dataset is the published dataset: identities swapped at zones,
	// in-zone observations suppressed.
	Dataset *trace.Dataset
	// Zones lists every detected zone in chronological order.
	Zones []Zone
	// Swaps records the permutation applied at each zone (parallel to
	// Zones).
	Swaps []SwapRecord
	// Segments is the output-identity ↔ original-user ground truth.
	Segments []Segment
	// Suppressed counts the observations removed inside zones.
	Suppressed int
	// DroppedUsers lists output identities that ended up with no
	// observations (possible only for tiny traces fully inside a zone).
	DroppedUsers []string
}

// Apply runs zone detection, suppression and identity swapping on the
// dataset and returns the published dataset plus the evaluation ground
// truth. The input dataset is not modified.
func Apply(d *trace.Dataset, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("mixzone: %w", err)
	}
	zones := DetectZones(d, cfg)
	return applyZones(d, zones, cfg)
}

// DetectZones finds natural meetings in the dataset: instants where two
// or more users are within cfg.Radius of each other and within
// cfg.Window in time. Per pair of users, events closer than
// cfg.Cooldown are coalesced into the first one. Pairwise meetings
// that coincide in space and time merge into multi-user zones. Zones are
// returned in chronological order.
func DetectZones(d *trace.Dataset, cfg Config) []Zone {
	traces := d.Traces()
	if len(traces) < 2 {
		return nil
	}
	from, _, ok := d.TimeSpan()
	if !ok {
		return nil
	}
	// Index every observation.
	type ref struct{ ti, pi int }
	var refs []ref
	grid := index.NewSTGrid(d.Bounds().Center(), cfg.Radius, cfg.Window, from)
	for ti, tr := range traces {
		for pi, p := range tr.Points {
			grid.Insert(p.Point, p.Time, len(refs))
			refs = append(refs, ref{ti, pi})
		}
	}
	// Candidate pairwise meetings, chronological.
	type meeting struct {
		t      time.Time
		center geo.Point
		a, b   int // trace indexes, a < b
	}
	var meetings []meeting
	for _, r := range refs {
		p := traces[r.ti].Points[r.pi]
		for _, nid := range grid.WithinST(p.Point, p.Time, cfg.Radius, cfg.Window) {
			nr := refs[nid]
			if nr.ti <= r.ti { // each unordered trace pair once, skip self
				continue
			}
			// The ST query only generates candidates: observation
			// timestamps of different users are offset, so a neighbor
			// within Window may correspond to a user who passed the same
			// spot up to Window later without ever meeting. Require true
			// simultaneity by interpolating the other trace at p's
			// instant.
			qpos, ok := traces[nr.ti].At(p.Time)
			if !ok || geo.FastDistance(p.Point, qpos) > cfg.Radius {
				continue
			}
			meetings = append(meetings, meeting{
				t:      p.Time,
				center: geo.Midpoint(p.Point, qpos),
				a:      r.ti,
				b:      nr.ti,
			})
		}
	}
	sort.SliceStable(meetings, func(i, j int) bool { return meetings[i].t.Before(meetings[j].t) })

	// Cooldown per pair, then merge concurrent nearby meetings into
	// multi-user zones.
	type pairKey struct{ a, b int }
	lastEvent := make(map[pairKey]time.Time)
	type protoZone struct {
		center  geo.Point
		t       time.Time
		members map[int]bool
	}
	var protos []*protoZone
	for _, m := range meetings {
		key := pairKey{m.a, m.b}
		if last, seen := lastEvent[key]; seen && m.t.Sub(last) < cfg.Cooldown {
			continue
		}
		lastEvent[key] = m.t
		merged := false
		// Scan recent protozones backwards; they are time-ordered.
		for i := len(protos) - 1; i >= 0; i-- {
			z := protos[i]
			if m.t.Sub(z.t) > cfg.Window {
				break
			}
			if geo.FastDistance(z.center, m.center) <= cfg.Radius {
				z.members[m.a] = true
				z.members[m.b] = true
				merged = true
				break
			}
		}
		if !merged {
			protos = append(protos, &protoZone{
				center:  m.center,
				t:       m.t,
				members: map[int]bool{m.a: true, m.b: true},
			})
		}
	}
	zones := make([]Zone, 0, len(protos))
	for _, z := range protos {
		users := make([]string, 0, len(z.members))
		for ti := range z.members {
			users = append(users, traces[ti].User)
		}
		sort.Strings(users)
		zones = append(zones, Zone{
			Center:       z.center,
			Radius:       cfg.Radius,
			Time:         z.t,
			Participants: users,
		})
	}
	return zones
}

// applyZones performs suppression and swapping given the detected zones.
func applyZones(d *trace.Dataset, zones []Zone, cfg Config) (*Result, error) {
	res := &Result{Zones: zones}
	rng := rand.New(rand.NewSource(cfg.SwapSeed))

	// Identity assignment: original user -> output identity carrying its
	// observations right now. Starts as the identity mapping.
	assign := make(map[string]string, d.Len())
	for _, u := range d.Users() {
		assign[u] = u
	}
	// Cut lists: per original user, the (time, identity-after) sequence.
	type cut struct {
		t  time.Time
		id string
	}
	cuts := make(map[string][]cut)

	for _, z := range zones {
		rec := SwapRecord{Zone: z, Assignment: make(map[string]string, len(z.Participants))}
		if cfg.NoSwap {
			for _, u := range z.Participants {
				rec.Assignment[u] = assign[u]
			}
		} else {
			// Uniform random permutation of the participants' current
			// identities (may be the identity permutation).
			ids := make([]string, len(z.Participants))
			for i, u := range z.Participants {
				ids[i] = assign[u]
			}
			perm := rng.Perm(len(ids))
			for i, u := range z.Participants {
				newID := ids[perm[i]]
				if newID != assign[u] {
					rec.Swapped = true
				}
				assign[u] = newID
				rec.Assignment[u] = newID
				cuts[u] = append(cuts[u], cut{t: z.Time, id: newID})
			}
		}
		res.Swaps = append(res.Swaps, rec)
	}

	// Suppression marks, per original user.
	suppress := make(map[string]map[int]bool)
	if !cfg.NoSuppress {
		w := cfg.suppressWindow()
		for _, z := range zones {
			for _, u := range z.Participants {
				tr := d.ByUser(u)
				marks := suppress[u]
				if marks == nil {
					marks = make(map[int]bool)
					suppress[u] = marks
				}
				lo := sort.Search(len(tr.Points), func(i int) bool {
					return !tr.Points[i].Time.Before(z.Time.Add(-w))
				})
				for i := lo; i < len(tr.Points) && !tr.Points[i].Time.After(z.Time.Add(w)); i++ {
					if geo.FastDistance(tr.Points[i].Point, z.Center) <= z.Radius {
						marks[i] = true
					}
				}
			}
		}
	}

	// Emit observations under their interval identity.
	outPoints := make(map[string][]trace.Point, d.Len())
	for _, tr := range d.Traces() {
		u := tr.User
		userCuts := cuts[u]
		cur := u // identity before the first cut
		// Identity during (cutsBefore, t]: walk cuts while emitting.
		ci := 0
		segStart := tr.Start().Time
		marks := suppress[u]
		for pi, p := range tr.Points {
			for ci < len(userCuts) && p.Time.After(userCuts[ci].t) {
				// Close the segment ground truth at each cut.
				res.Segments = append(res.Segments, Segment{
					Output: cur, Original: u, From: segStart, To: userCuts[ci].t,
				})
				cur = userCuts[ci].id
				segStart = userCuts[ci].t
				ci++
			}
			if marks[pi] {
				res.Suppressed++
				continue
			}
			outPoints[cur] = append(outPoints[cur], p)
		}
		// Remaining cuts (after the last point) still advance identity for
		// ground-truth completeness.
		for ci < len(userCuts) {
			res.Segments = append(res.Segments, Segment{
				Output: cur, Original: u, From: segStart, To: userCuts[ci].t,
			})
			cur = userCuts[ci].id
			segStart = userCuts[ci].t
			ci++
		}
		res.Segments = append(res.Segments, Segment{
			Output: cur, Original: u, From: segStart, To: tr.End().Time,
		})
	}

	ids := make([]string, 0, len(outPoints))
	for id := range outPoints {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	outTraces := make([]*trace.Trace, 0, len(ids))
	for _, id := range ids {
		pts := outPoints[id]
		if len(pts) == 0 {
			res.DroppedUsers = append(res.DroppedUsers, id)
			continue
		}
		tr, err := trace.New(id, pts)
		if err != nil {
			return nil, fmt.Errorf("mixzone: assemble output %q: %w", id, err)
		}
		outTraces = append(outTraces, tr)
	}
	// Users whose entire trace was suppressed never appear in outPoints.
	for _, u := range d.Users() {
		if _, ok := outPoints[u]; !ok {
			res.DroppedUsers = append(res.DroppedUsers, u)
		}
	}
	ds, err := trace.NewDataset(outTraces)
	if err != nil {
		return nil, fmt.Errorf("mixzone: assemble dataset: %w", err)
	}
	res.Dataset = ds
	return res, nil
}

// OriginalAt returns the original user whose observations the given
// output identity carries at instant ts, according to the ground-truth
// segments. ok is false when no segment covers (output, ts).
func (r *Result) OriginalAt(output string, ts time.Time) (string, bool) {
	for _, s := range r.Segments {
		if s.Output == output && !ts.Before(s.From) && !ts.After(s.To) {
			return s.Original, true
		}
	}
	return "", false
}

// SwapCount returns how many zones actually permuted identities.
func (r *Result) SwapCount() int {
	n := 0
	for _, s := range r.Swaps {
		if s.Swapped {
			n++
		}
	}
	return n
}

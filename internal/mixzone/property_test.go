package mixzone

import (
	"testing"
	"time"

	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

// applyOnWorkload runs Apply on a small synthetic workload with the
// given seed, returning the inputs and the result.
func applyOnWorkload(t *testing.T, seed int64) (*trace.Dataset, *Result) {
	t.Helper()
	cfg := synth.DefaultCommuterConfig()
	cfg.Seed = seed
	cfg.Users = 8
	cfg.Sampling = 2 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := DefaultConfig()
	mcfg.SwapSeed = seed
	res, err := Apply(g.Dataset, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	return g.Dataset, res
}

// Property: points are conserved — every input observation is either
// published or counted as suppressed.
func TestPropertyPointConservation(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in, res := applyOnWorkload(t, seed)
		if got := res.Dataset.TotalPoints() + res.Suppressed; got != in.TotalPoints() {
			t.Fatalf("seed %d: %d published + %d suppressed != %d input",
				seed, res.Dataset.TotalPoints(), res.Suppressed, in.TotalPoints())
		}
	}
}

// Property: at every instant the identity assignment is a bijection —
// no two original users are ever published under the same identity at
// overlapping times.
func TestPropertyIdentityBijection(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		_, res := applyOnWorkload(t, seed)
		// For every pair of segments with the same output identity,
		// either they belong to the same original user or their time
		// ranges do not overlap (except at the single boundary instant).
		for i, a := range res.Segments {
			for _, b := range res.Segments[i+1:] {
				if a.Output != b.Output || a.Original == b.Original {
					continue
				}
				if a.From.Before(b.To) && b.From.Before(a.To) {
					t.Fatalf("seed %d: identity %q carries both %q and %q during overlapping ranges [%v,%v] and [%v,%v]",
						seed, a.Output, a.Original, b.Original, a.From, a.To, b.From, b.To)
				}
			}
		}
	}
}

// Property: the published dataset is always a valid dataset (sorted
// times, unique users) regardless of the swap pattern.
func TestPropertyOutputValidity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		_, res := applyOnWorkload(t, seed)
		if err := res.Dataset.Validate(); err != nil {
			t.Fatalf("seed %d: published dataset invalid: %v", seed, err)
		}
	}
}

// Property: zone participants always contains at least two distinct
// users, sorted.
func TestPropertyZoneWellFormed(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		_, res := applyOnWorkload(t, seed)
		for zi, z := range res.Zones {
			if len(z.Participants) < 2 {
				t.Fatalf("seed %d zone %d has %d participants", seed, zi, len(z.Participants))
			}
			for i := 1; i < len(z.Participants); i++ {
				if z.Participants[i-1] >= z.Participants[i] {
					t.Fatalf("seed %d zone %d participants not sorted/unique: %v",
						seed, zi, z.Participants)
				}
			}
			if z.Radius <= 0 {
				t.Fatalf("seed %d zone %d has radius %v", seed, zi, z.Radius)
			}
		}
	}
}

// Property: swaps only permute identities among zone participants — the
// assignment values of a swap record are exactly the identities its
// participants carried before the zone.
func TestPropertySwapsArePermutations(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		_, res := applyOnWorkload(t, seed)
		for si, rec := range res.Swaps {
			seen := make(map[string]int)
			for _, out := range rec.Assignment {
				seen[out]++
			}
			for out, n := range seen {
				if n != 1 {
					t.Fatalf("seed %d swap %d: identity %q assigned %d times", seed, si, out, n)
				}
			}
			if len(rec.Assignment) != len(rec.Zone.Participants) {
				t.Fatalf("seed %d swap %d: %d assignments for %d participants",
					seed, si, len(rec.Assignment), len(rec.Zone.Participants))
			}
		}
	}
}

// Property: zones are chronological.
func TestPropertyZonesChronological(t *testing.T) {
	_, res := applyOnWorkload(t, 4)
	for i := 1; i < len(res.Zones); i++ {
		if res.Zones[i].Time.Before(res.Zones[i-1].Time) {
			t.Fatalf("zones out of order at %d", i)
		}
	}
}

package trace

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func sampleDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := NewDataset([]*Trace{
		lineTrace("bob", 5, 10, 10*time.Second),
		lineTrace("alice", 8, 5, 10*time.Second),
		lineTrace("carol", 3, 20, 10*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDataset(t *testing.T) {
	d := sampleDataset(t)
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	if got := d.Users(); got[0] != "alice" || got[1] != "bob" || got[2] != "carol" {
		t.Fatalf("Users = %v, want sorted", got)
	}
	if d.TotalPoints() != 16 {
		t.Fatalf("TotalPoints = %d, want 16", d.TotalPoints())
	}
}

func TestDatasetDuplicateUser(t *testing.T) {
	_, err := NewDataset([]*Trace{
		lineTrace("alice", 3, 10, time.Second),
		lineTrace("alice", 3, 10, time.Second),
	})
	if !errors.Is(err, ErrDuplicateUser) {
		t.Fatalf("error = %v, want ErrDuplicateUser", err)
	}
}

func TestDatasetAddInvalid(t *testing.T) {
	var d Dataset
	if err := d.Add(&Trace{User: "", Points: nil}); err == nil {
		t.Fatal("Add of invalid trace should fail")
	}
	if err := d.Add(lineTrace("zed", 2, 1, time.Second)); err != nil {
		t.Fatalf("Add on zero-value Dataset should work: %v", err)
	}
	if d.ByUser("zed") == nil {
		t.Fatal("ByUser should find added trace")
	}
}

func TestDatasetByUser(t *testing.T) {
	d := sampleDataset(t)
	if got := d.ByUser("bob"); got == nil || got.User != "bob" {
		t.Fatalf("ByUser(bob) = %v", got)
	}
	if got := d.ByUser("nobody"); got != nil {
		t.Fatalf("ByUser(nobody) = %v, want nil", got)
	}
}

func TestDatasetOrderIndependence(t *testing.T) {
	a := lineTrace("a", 2, 1, time.Second)
	b := lineTrace("b", 2, 1, time.Second)
	d1 := MustNewDataset([]*Trace{a, b})
	d2 := MustNewDataset([]*Trace{b, a})
	u1, u2 := d1.Users(), d2.Users()
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatal("dataset iteration order must be insertion-order independent")
		}
	}
}

func TestDatasetTimeSpan(t *testing.T) {
	d := sampleDataset(t)
	from, to, ok := d.TimeSpan()
	if !ok {
		t.Fatal("TimeSpan should succeed")
	}
	if from != t0 {
		t.Errorf("from = %v, want %v", from, t0)
	}
	if want := t0.Add(70 * time.Second); to != want { // alice has 8 points x 10s
		t.Errorf("to = %v, want %v", to, want)
	}
	var empty Dataset
	if _, _, ok := empty.TimeSpan(); ok {
		t.Error("empty dataset TimeSpan should report not-ok")
	}
}

func TestDatasetBounds(t *testing.T) {
	d := sampleDataset(t)
	box := d.Bounds()
	for _, tr := range d.Traces() {
		for _, p := range tr.Points {
			if !box.Contains(p.Point) {
				t.Fatalf("bounds must contain %v", p)
			}
		}
	}
}

func TestDatasetCloneIsDeep(t *testing.T) {
	d := sampleDataset(t)
	cp := d.Clone()
	cp.ByUser("alice").Points[0] = P(0, 0, t0.Add(-time.Hour))
	if d.ByUser("alice").Points[0].Lat == 0 {
		t.Fatal("Clone must deep-copy traces")
	}
	if cp.Len() != d.Len() {
		t.Fatal("Clone must preserve size")
	}
}

func TestDatasetValidate(t *testing.T) {
	d := sampleDataset(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset: %v", err)
	}
	// Corrupt a trace in place.
	d.ByUser("bob").Points[0].Time = t0.Add(time.Hour * 24)
	if err := d.Validate(); err == nil {
		t.Fatal("Validate should detect corrupted trace")
	}
}

func TestDatasetString(t *testing.T) {
	d := sampleDataset(t)
	if s := d.String(); !strings.Contains(s, "3 users") {
		t.Errorf("String() = %q", s)
	}
}

package trace

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"mobipriv/internal/geo"
)

var (
	t0     = time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	origin = geo.Point{Lat: 45.7640, Lng: 4.8357}
)

// lineTrace builds a trace of n points moving east at the given speed
// (m/s) with one point per step seconds.
func lineTrace(user string, n int, speed float64, step time.Duration) *Trace {
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		dist := speed * float64(i) * step.Seconds()
		pts[i] = Point{Point: geo.Destination(origin, 90, dist), Time: t0.Add(time.Duration(i) * step)}
	}
	return MustNew(user, pts)
}

func TestNewValidation(t *testing.T) {
	good := []Point{P(45, 4, t0), P(45.001, 4, t0.Add(time.Minute))}
	tests := []struct {
		name    string
		user    string
		pts     []Point
		wantErr error
	}{
		{name: "ok", user: "u1", pts: good, wantErr: nil},
		{name: "no user", user: "", pts: good, wantErr: ErrNoUser},
		{name: "empty", user: "u1", pts: nil, wantErr: ErrEmptyTrace},
		{
			name: "duplicate timestamp", user: "u1",
			pts:     []Point{P(45, 4, t0), P(45.1, 4, t0)},
			wantErr: ErrUnsortedTrace,
		},
		{
			name: "bad coordinate", user: "u1",
			pts:     []Point{P(95, 4, t0)},
			wantErr: geo.ErrInvalidCoordinate,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.user, tt.pts)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewSortsPoints(t *testing.T) {
	pts := []Point{P(45.002, 4, t0.Add(2*time.Minute)), P(45, 4, t0), P(45.001, 4, t0.Add(time.Minute))}
	tr, err := New("u1", pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tr.Len(); i++ {
		if !tr.Points[i-1].Time.Before(tr.Points[i].Time) {
			t.Fatal("points not sorted after New")
		}
	}
	// Input slice must not be shared.
	pts[0] = P(10, 10, t0.Add(time.Hour))
	if tr.Points[2].Lat == 10 {
		t.Fatal("New must copy the input slice")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid input")
		}
	}()
	MustNew("", nil)
}

func TestDurationLengthSpeed(t *testing.T) {
	// 10 points, 10 m/s, 1 point per 10 s: 90 s total, 900 m.
	tr := lineTrace("u1", 10, 10, 10*time.Second)
	if got := tr.Duration(); got != 90*time.Second {
		t.Errorf("Duration = %v, want 90s", got)
	}
	if got := tr.Length(); math.Abs(got-900) > 0.5 {
		t.Errorf("Length = %v, want 900", got)
	}
	if got := tr.AverageSpeed(); math.Abs(got-10) > 0.01 {
		t.Errorf("AverageSpeed = %v, want 10", got)
	}
	speeds := tr.Speeds()
	if len(speeds) != 9 {
		t.Fatalf("Speeds len = %d, want 9", len(speeds))
	}
	for i, s := range speeds {
		if math.Abs(s-10) > 0.01 {
			t.Errorf("segment %d speed = %v, want 10", i, s)
		}
	}
}

func TestSinglePointTrace(t *testing.T) {
	tr := MustNew("u1", []Point{P(45, 4, t0)})
	if tr.Duration() != 0 || tr.Length() != 0 || tr.AverageSpeed() != 0 {
		t.Error("single-point trace should have zero duration/length/speed")
	}
	if tr.Speeds() != nil {
		t.Error("single-point trace should have nil Speeds")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := lineTrace("u1", 5, 5, time.Second)
	cp := tr.Clone()
	cp.Points[0] = P(0, 0, t0.Add(-time.Hour))
	cp.User = "other"
	if tr.Points[0].Lat == 0 || tr.User == "other" {
		t.Fatal("Clone must not share state")
	}
}

func TestCrop(t *testing.T) {
	tr := lineTrace("u1", 10, 10, 10*time.Second) // t0 .. t0+90s
	got := tr.Crop(t0.Add(20*time.Second), t0.Add(50*time.Second))
	if got == nil || got.Len() != 4 {
		t.Fatalf("Crop returned %v, want 4 points", got)
	}
	if got.Start().Time != t0.Add(20*time.Second) || got.End().Time != t0.Add(50*time.Second) {
		t.Error("Crop bounds are inclusive")
	}
	if tr.Crop(t0.Add(time.Hour), t0.Add(2*time.Hour)) != nil {
		t.Error("Crop outside span should return nil")
	}
}

func TestSplitByGap(t *testing.T) {
	pts := []Point{
		P(45, 4, t0),
		P(45.001, 4, t0.Add(time.Minute)),
		P(45.002, 4, t0.Add(30*time.Minute)), // 29-minute gap
		P(45.003, 4, t0.Add(31*time.Minute)),
	}
	tr := MustNew("u1", pts)
	parts := tr.SplitByGap(5 * time.Minute)
	if len(parts) != 2 {
		t.Fatalf("SplitByGap returned %d parts, want 2", len(parts))
	}
	if parts[0].Len() != 2 || parts[1].Len() != 2 {
		t.Errorf("part sizes = %d, %d, want 2, 2", parts[0].Len(), parts[1].Len())
	}
	if parts[0].User != "u1" || parts[1].User != "u1" {
		t.Error("parts must keep the user identifier")
	}
	// No gap: single part.
	if got := tr.SplitByGap(time.Hour); len(got) != 1 {
		t.Errorf("SplitByGap(1h) = %d parts, want 1", len(got))
	}
}

func TestAt(t *testing.T) {
	tr := lineTrace("u1", 10, 10, 10*time.Second)
	// Exactly on a sample.
	p, ok := tr.At(t0.Add(30 * time.Second))
	if !ok {
		t.Fatal("At within span should succeed")
	}
	if d := geo.Distance(p, tr.Points[3].Point); d > 0.01 {
		t.Errorf("At(sample time) off by %v m", d)
	}
	// Between samples: 35 s -> 350 m east.
	p, ok = tr.At(t0.Add(35 * time.Second))
	if !ok {
		t.Fatal("At between samples should succeed")
	}
	want := geo.Destination(origin, 90, 350)
	if d := geo.Distance(p, want); d > 0.5 {
		t.Errorf("At(35s) off by %v m", d)
	}
	// Outside the span.
	if _, ok := tr.At(t0.Add(-time.Second)); ok {
		t.Error("At before start should fail")
	}
	if _, ok := tr.At(t0.Add(time.Hour)); ok {
		t.Error("At after end should fail")
	}
}

func TestBoundsAndPolyline(t *testing.T) {
	tr := lineTrace("u1", 5, 10, 10*time.Second)
	box := tr.Bounds()
	if box.IsEmpty() {
		t.Fatal("Bounds should not be empty")
	}
	for _, p := range tr.Points {
		if !box.Contains(p.Point) {
			t.Errorf("bounds should contain %v", p)
		}
	}
	pl, err := tr.Polyline()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pl.Length()-tr.Length()) > 1e-9 {
		t.Errorf("polyline length %v != trace length %v", pl.Length(), tr.Length())
	}
}

func TestTraceString(t *testing.T) {
	tr := lineTrace("u1", 3, 10, time.Second)
	s := tr.String()
	if !strings.Contains(s, "u1") || !strings.Contains(s, "3 pts") {
		t.Errorf("String() = %q", s)
	}
	empty := &Trace{User: "x"}
	if !strings.Contains(empty.String(), "empty") {
		t.Errorf("empty String() = %q", empty.String())
	}
}

// Package trace defines the mobility-data model shared by every other
// package in mobipriv: timestamped GPS points, per-user traces and
// multi-user datasets, together with the validation, slicing and
// resampling operations the anonymization mechanisms are built on.
//
// The central invariant, enforced by Validate and assumed everywhere, is
// that the points of a Trace are sorted by strictly increasing time and
// carry valid WGS84 coordinates.
package trace

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mobipriv/internal/geo"
)

// Common validation errors. They are wrapped with positional context, so
// match with errors.Is.
var (
	ErrEmptyTrace    = errors.New("trace: empty trace")
	ErrUnsortedTrace = errors.New("trace: points not in strictly increasing time order")
	ErrNoUser        = errors.New("trace: missing user identifier")
)

// Point is a single GPS observation: a WGS84 position and the instant at
// which it was recorded.
type Point struct {
	geo.Point
	Time time.Time
}

// P is a convenience constructor used heavily in tests and generators.
func P(lat, lng float64, t time.Time) Point {
	return Point{Point: geo.Point{Lat: lat, Lng: lng}, Time: t}
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("%s@%s", p.Point, p.Time.Format(time.RFC3339))
}

// Trace is the chronological sequence of observations of one user.
//
// User holds the published identifier (a pseudonym after anonymization).
// Points must satisfy the package invariant; mutating methods preserve
// it, and Validate checks it.
type Trace struct {
	User   string
	Points []Point
}

// New returns a trace for the given user with a defensive copy of pts,
// sorted by time. It fails if the user is empty, pts is empty, a
// coordinate is invalid, or two points share the same timestamp.
func New(user string, pts []Point) (*Trace, error) {
	if user == "" {
		return nil, ErrNoUser
	}
	if len(pts) == 0 {
		return nil, ErrEmptyTrace
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Time.Before(cp[j].Time) })
	tr := &Trace{User: user, Points: cp}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// MustNew is New that panics on error; for tests and constant data only.
func MustNew(user string, pts []Point) *Trace {
	tr, err := New(user, pts)
	if err != nil {
		panic(err)
	}
	return tr
}

// Validate checks the package invariant: non-empty user and points,
// valid coordinates, strictly increasing timestamps.
func (t *Trace) Validate() error {
	if t.User == "" {
		return ErrNoUser
	}
	if len(t.Points) == 0 {
		return fmt.Errorf("%w: user %q", ErrEmptyTrace, t.User)
	}
	for i, p := range t.Points {
		if err := p.Point.Validate(); err != nil {
			return fmt.Errorf("user %q point %d: %w", t.User, i, err)
		}
		if i > 0 && !t.Points[i-1].Time.Before(p.Time) {
			return fmt.Errorf("%w: user %q points %d..%d (%v >= %v)",
				ErrUnsortedTrace, t.User, i-1, i, t.Points[i-1].Time, p.Time)
		}
	}
	return nil
}

// Len returns the number of points.
func (t *Trace) Len() int { return len(t.Points) }

// Start returns the first observation. The trace must be non-empty.
func (t *Trace) Start() Point { return t.Points[0] }

// End returns the last observation. The trace must be non-empty.
func (t *Trace) End() Point { return t.Points[len(t.Points)-1] }

// Duration returns End().Time.Sub(Start().Time), or zero for traces with
// fewer than two points.
func (t *Trace) Duration() time.Duration {
	if len(t.Points) < 2 {
		return 0
	}
	return t.End().Time.Sub(t.Start().Time)
}

// Length returns the total travelled great-circle distance in meters.
func (t *Trace) Length() float64 {
	var total float64
	for i := 1; i < len(t.Points); i++ {
		total += geo.Distance(t.Points[i-1].Point, t.Points[i].Point)
	}
	return total
}

// AverageSpeed returns the mean speed in m/s over the whole trace, or 0
// if the duration is zero.
func (t *Trace) AverageSpeed() float64 {
	d := t.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return t.Length() / d
}

// Speeds returns the instantaneous speed (m/s) of each of the Len()-1
// segments. Zero-duration segments cannot occur under the invariant.
func (t *Trace) Speeds() []float64 {
	if len(t.Points) < 2 {
		return nil
	}
	out := make([]float64, len(t.Points)-1)
	for i := 1; i < len(t.Points); i++ {
		dt := t.Points[i].Time.Sub(t.Points[i-1].Time).Seconds()
		out[i-1] = geo.Distance(t.Points[i-1].Point, t.Points[i].Point) / dt
	}
	return out
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	cp := make([]Point, len(t.Points))
	copy(cp, t.Points)
	return &Trace{User: t.User, Points: cp}
}

// Positions returns the sequence of geographic positions (dropping time).
func (t *Trace) Positions() []geo.Point {
	out := make([]geo.Point, len(t.Points))
	for i, p := range t.Points {
		out[i] = p.Point
	}
	return out
}

// Bounds returns the bounding box of the trace.
func (t *Trace) Bounds() geo.BBox {
	box, _ := geo.BoundsOf(t.Positions())
	return box
}

// Polyline returns the trace geometry as a geo.Polyline.
func (t *Trace) Polyline() (*geo.Polyline, error) {
	return geo.NewPolyline(t.Positions())
}

// Crop returns a copy of the trace restricted to observations with
// from <= Time <= to, or nil if none fall in the window.
func (t *Trace) Crop(from, to time.Time) *Trace {
	var pts []Point
	for _, p := range t.Points {
		if !p.Time.Before(from) && !p.Time.After(to) {
			pts = append(pts, p)
		}
	}
	if len(pts) == 0 {
		return nil
	}
	return &Trace{User: t.User, Points: pts}
}

// SplitByGap cuts the trace wherever two consecutive observations are
// separated by more than maxGap, returning the resulting sub-traces in
// order. Each sub-trace keeps the original user identifier.
func (t *Trace) SplitByGap(maxGap time.Duration) []*Trace {
	if len(t.Points) == 0 {
		return nil
	}
	var out []*Trace
	start := 0
	for i := 1; i < len(t.Points); i++ {
		if t.Points[i].Time.Sub(t.Points[i-1].Time) > maxGap {
			out = append(out, &Trace{User: t.User, Points: append([]Point(nil), t.Points[start:i]...)})
			start = i
		}
	}
	out = append(out, &Trace{User: t.User, Points: append([]Point(nil), t.Points[start:]...)})
	return out
}

// At returns the interpolated position of the user at time ts, assuming
// straight-line constant-speed movement between consecutive
// observations. The boolean is false when ts falls outside the trace's
// time span.
func (t *Trace) At(ts time.Time) (geo.Point, bool) {
	if len(t.Points) == 0 || ts.Before(t.Start().Time) || ts.After(t.End().Time) {
		return geo.Point{}, false
	}
	// Binary search for the first point at or after ts.
	i := sort.Search(len(t.Points), func(i int) bool { return !t.Points[i].Time.Before(ts) })
	if i < len(t.Points) && t.Points[i].Time.Equal(ts) {
		return t.Points[i].Point, true
	}
	prev, next := t.Points[i-1], t.Points[i]
	span := next.Time.Sub(prev.Time).Seconds()
	f := ts.Sub(prev.Time).Seconds() / span
	return geo.Interpolate(prev.Point, next.Point, f), true
}

// String implements fmt.Stringer.
func (t *Trace) String() string {
	if len(t.Points) == 0 {
		return fmt.Sprintf("Trace(%s, empty)", t.User)
	}
	return fmt.Sprintf("Trace(%s, %d pts, %s..%s, %.0f m)",
		t.User, len(t.Points),
		t.Start().Time.Format(time.RFC3339), t.End().Time.Format(time.RFC3339),
		t.Length())
}

package trace

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mobipriv/internal/geo"
)

// ErrDuplicateUser reports two traces sharing a user identifier within
// one dataset.
var ErrDuplicateUser = errors.New("trace: duplicate user in dataset")

// Dataset is a collection of traces, one per user, as released by a data
// publisher. Traces are kept sorted by user identifier for deterministic
// iteration.
type Dataset struct {
	traces []*Trace
	byUser map[string]*Trace
}

// NewDataset builds a dataset from the given traces. Each trace is
// validated; user identifiers must be unique.
func NewDataset(traces []*Trace) (*Dataset, error) {
	d := &Dataset{byUser: make(map[string]*Trace, len(traces))}
	for _, t := range traces {
		if err := d.Add(t); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// MustNewDataset is NewDataset that panics on error; for tests only.
func MustNewDataset(traces []*Trace) *Dataset {
	d, err := NewDataset(traces)
	if err != nil {
		panic(err)
	}
	return d
}

// Add validates t and inserts it, keeping user order.
func (d *Dataset) Add(t *Trace) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("add trace: %w", err)
	}
	if d.byUser == nil {
		d.byUser = make(map[string]*Trace)
	}
	if _, exists := d.byUser[t.User]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicateUser, t.User)
	}
	d.byUser[t.User] = t
	i := sort.Search(len(d.traces), func(i int) bool { return d.traces[i].User >= t.User })
	d.traces = append(d.traces, nil)
	copy(d.traces[i+1:], d.traces[i:])
	d.traces[i] = t
	return nil
}

// Len returns the number of traces.
func (d *Dataset) Len() int { return len(d.traces) }

// Traces returns the traces in user order. The returned slice must not
// be modified; the traces it points to are shared.
func (d *Dataset) Traces() []*Trace { return d.traces }

// ByUser returns the trace of the given user, or nil.
func (d *Dataset) ByUser(user string) *Trace { return d.byUser[user] }

// Users returns the sorted user identifiers.
func (d *Dataset) Users() []string {
	out := make([]string, len(d.traces))
	for i, t := range d.traces {
		out[i] = t.User
	}
	return out
}

// TotalPoints returns the total number of observations across all traces.
func (d *Dataset) TotalPoints() int {
	var n int
	for _, t := range d.traces {
		n += len(t.Points)
	}
	return n
}

// Bounds returns the bounding box of all observations.
func (d *Dataset) Bounds() geo.BBox {
	var box geo.BBox
	for _, t := range d.traces {
		box = box.Union(t.Bounds())
	}
	return box
}

// TimeSpan returns the earliest and latest observation times. ok is
// false for an empty dataset.
func (d *Dataset) TimeSpan() (from, to time.Time, ok bool) {
	for _, t := range d.traces {
		s, e := t.Start().Time, t.End().Time
		if !ok {
			from, to, ok = s, e, true
			continue
		}
		if s.Before(from) {
			from = s
		}
		if e.After(to) {
			to = e
		}
	}
	return from, to, ok
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		traces: make([]*Trace, len(d.traces)),
		byUser: make(map[string]*Trace, len(d.traces)),
	}
	for i, t := range d.traces {
		cp := t.Clone()
		out.traces[i] = cp
		out.byUser[cp.User] = cp
	}
	return out
}

// Validate re-checks every trace invariant plus user uniqueness.
func (d *Dataset) Validate() error {
	seen := make(map[string]bool, len(d.traces))
	for _, t := range d.traces {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.User] {
			return fmt.Errorf("%w: %q", ErrDuplicateUser, t.User)
		}
		seen[t.User] = true
	}
	return nil
}

// String implements fmt.Stringer.
func (d *Dataset) String() string {
	return fmt.Sprintf("Dataset(%d users, %d points)", d.Len(), d.TotalPoints())
}

package poi

import (
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

var (
	t0     = time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	origin = geo.Point{Lat: 45.7640, Lng: 4.8357}
)

// stopGoTrace builds a trace that stays at A for stayDur, drives east
// 2 km, stays at B for stayDur, with samples every 30 s.
func stopGoTrace(t *testing.T, stayDur time.Duration) (*trace.Trace, geo.Point, geo.Point) {
	t.Helper()
	a := origin
	b := geo.Destination(origin, 90, 2000)
	var pts []trace.Point
	now := t0
	for elapsed := time.Duration(0); elapsed <= stayDur; elapsed += 30 * time.Second {
		pts = append(pts, trace.Point{Point: geo.Offset(a, float64(len(pts)%3), 0), Time: now})
		now = now.Add(30 * time.Second)
	}
	// Drive at 10 m/s: 200 s, a sample every 30 s.
	for d := 300.0; d < 2000; d += 300 {
		pts = append(pts, trace.Point{Point: geo.Destination(a, 90, d), Time: now})
		now = now.Add(30 * time.Second)
	}
	for elapsed := time.Duration(0); elapsed <= stayDur; elapsed += 30 * time.Second {
		pts = append(pts, trace.Point{Point: geo.Offset(b, float64(len(pts)%3), 0), Time: now})
		now = now.Add(30 * time.Second)
	}
	return trace.MustNew("u", pts), a, b
}

func TestStaysDetectsStops(t *testing.T) {
	tr, a, b := stopGoTrace(t, 10*time.Minute)
	stays, err := Stays(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(stays) != 2 {
		t.Fatalf("detected %d stays, want 2", len(stays))
	}
	if d := geo.Distance(stays[0].Center, a); d > 20 {
		t.Errorf("first stay center %v m from A", d)
	}
	if d := geo.Distance(stays[1].Center, b); d > 20 {
		t.Errorf("second stay center %v m from B", d)
	}
	for i, s := range stays {
		if s.Duration() < 9*time.Minute {
			t.Errorf("stay %d duration %v, want ~10 min", i, s.Duration())
		}
		if s.Count < 10 {
			t.Errorf("stay %d has %d points", i, s.Count)
		}
	}
}

func TestStaysIgnoresShortPauses(t *testing.T) {
	tr, _, _ := stopGoTrace(t, 3*time.Minute) // below the 5-minute threshold
	stays, err := Stays(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(stays) != 0 {
		t.Fatalf("detected %d stays in a trace with only short pauses", len(stays))
	}
}

func TestStaysOnConstantSpeedTrace(t *testing.T) {
	// A trace moving at constant speed with uniform spacing has no stays:
	// this is precisely the property the paper's mechanism exploits.
	var pts []trace.Point
	for i := 0; i < 200; i++ {
		pts = append(pts, trace.Point{
			Point: geo.Destination(origin, 90, float64(i)*100), // 100 m spacing
			Time:  t0.Add(time.Duration(i) * 30 * time.Second),
		})
	}
	tr := trace.MustNew("u", pts)
	stays, err := Stays(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(stays) != 0 {
		t.Fatalf("constant-speed trace yielded %d stays, want 0", len(stays))
	}
}

func TestStaysEdgeCases(t *testing.T) {
	if stays, err := Stays(nil, DefaultConfig()); err != nil || stays != nil {
		t.Errorf("nil trace: %v, %v", stays, err)
	}
	single := trace.MustNew("u", []trace.Point{trace.P(45, 4, t0)})
	stays, err := Stays(single, DefaultConfig())
	if err != nil || len(stays) != 0 {
		t.Errorf("single point: %v, %v", stays, err)
	}
}

func TestStaysConfigValidation(t *testing.T) {
	tr, _, _ := stopGoTrace(t, 10*time.Minute)
	for _, cfg := range []Config{
		{MaxDiameter: 0, MinDuration: time.Minute},
		{MaxDiameter: 100, MinDuration: 0},
		{MaxDiameter: 100, MinDuration: time.Minute, MergeRadius: -1},
	} {
		if _, err := Stays(tr, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestClusterMergesRepeatVisits(t *testing.T) {
	mk := func(center geo.Point, enter time.Time, dur time.Duration) Stay {
		return Stay{Center: center, Enter: enter, Leave: enter.Add(dur), Count: 10}
	}
	home := origin
	work := geo.Destination(origin, 90, 3000)
	stays := []Stay{
		mk(home, t0, 8*time.Hour),
		mk(geo.Offset(home, 30, 10), t0.Add(24*time.Hour), 9*time.Hour), // same place, next day
		mk(work, t0.Add(9*time.Hour), 8*time.Hour),
	}
	pois := Cluster(stays, 100)
	if len(pois) != 2 {
		t.Fatalf("clustered into %d POIs, want 2", len(pois))
	}
	// Sorted by total time: home (17h) before work (8h).
	if pois[0].Visits != 2 || pois[0].TotalTime != 17*time.Hour {
		t.Errorf("home POI = %+v", pois[0])
	}
	if d := geo.Distance(pois[0].Center, home); d > 40 {
		t.Errorf("home POI center off by %v m", d)
	}
	if pois[1].Visits != 1 {
		t.Errorf("work POI = %+v", pois[1])
	}
}

func TestClusterTransitive(t *testing.T) {
	// A chain a-b-c where a-c exceeds the radius but a-b and b-c are
	// within it must merge into one POI (union-find transitivity).
	a := origin
	b := geo.Offset(origin, 80, 0)
	c := geo.Offset(origin, 160, 0)
	stays := []Stay{
		{Center: a, Enter: t0, Leave: t0.Add(time.Hour)},
		{Center: b, Enter: t0.Add(2 * time.Hour), Leave: t0.Add(3 * time.Hour)},
		{Center: c, Enter: t0.Add(4 * time.Hour), Leave: t0.Add(5 * time.Hour)},
	}
	if pois := Cluster(stays, 100); len(pois) != 1 {
		t.Fatalf("chain clustered into %d POIs, want 1", len(pois))
	}
	if pois := Cluster(stays, 50); len(pois) != 3 {
		t.Fatalf("tight radius clustered into %d POIs, want 3", len(pois))
	}
}

func TestClusterEmpty(t *testing.T) {
	if got := Cluster(nil, 100); got != nil {
		t.Fatalf("Cluster(nil) = %v", got)
	}
}

func TestClusterZeroDurationStays(t *testing.T) {
	stays := []Stay{
		{Center: origin, Enter: t0, Leave: t0},
		{Center: geo.Offset(origin, 10, 0), Enter: t0, Leave: t0},
	}
	pois := Cluster(stays, 100)
	if len(pois) != 1 || pois[0].Visits != 2 {
		t.Fatalf("zero-duration cluster = %+v", pois)
	}
}

func TestExtractOnSyntheticCommuters(t *testing.T) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 5
	cfg.Sampling = time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ExtractAll(g.Dataset, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Each commuter's extracted POIs must include a point near home and
	// near work (their two longest ground-truth stays).
	for _, u := range g.Dataset.Users() {
		pois := all[u]
		if len(pois) < 2 {
			t.Errorf("user %s: %d POIs extracted, want >= 2", u, len(pois))
			continue
		}
		truth := g.StaysOf(u)
		matched := 0
		for _, ts := range truth {
			for _, p := range pois {
				if geo.Distance(p.Center, ts.Center) <= 250 {
					matched++
					break
				}
			}
		}
		if matched == 0 {
			t.Errorf("user %s: no ground-truth stay matched by extraction", u)
		}
	}
}

func TestPOIString(t *testing.T) {
	p := POI{Center: origin, Visits: 3, TotalTime: time.Hour}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkStays(b *testing.B) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 1
	g, err := synth.Commuters(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr := g.Dataset.Traces()[0]
	pcfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Stays(tr, pcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Package poi implements point-of-interest extraction from mobility
// traces: the stay-point detection of Li et al. / Hariharan & Toyama,
// followed by the density-joinable clustering step of Gambs et al.'s
// "Show Me How You Move" attack pipeline [1] that aggregates repeated
// stays at the same place into POIs.
//
// The same code serves two roles in mobipriv: it is the adversary of the
// POI-retrieval attack (run on published data) and the oracle used to
// characterize raw datasets.
package poi

import (
	"errors"
	"fmt"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
)

// Config parameterizes stay-point detection.
type Config struct {
	// MaxDiameter is the spatial threshold in meters: a stay is a maximal
	// run of consecutive points all within MaxDiameter of the run's first
	// point.
	MaxDiameter float64
	// MinDuration is the minimal time span of a run to count as a stay.
	MinDuration time.Duration
	// MergeRadius is the clustering radius in meters used by Extract to
	// merge stays into POIs; stays whose centers are within MergeRadius
	// are joined transitively. If zero, MaxDiameter is used.
	MergeRadius float64
}

// DefaultConfig returns the attack configuration used across the
// experiments (the classic 200 m / 5 min setting of the POI-retrieval
// literature).
func DefaultConfig() Config {
	return Config{MaxDiameter: 200, MinDuration: 5 * time.Minute}
}

// Validate checks the configuration; every consumer of a Config — the
// batch extractor here, the streaming detector in internal/risk — runs
// the same checks.
func (c Config) Validate() error {
	if c.MaxDiameter <= 0 {
		return errors.New("poi: MaxDiameter must be positive")
	}
	if c.MinDuration <= 0 {
		return errors.New("poi: MinDuration must be positive")
	}
	if c.MergeRadius < 0 {
		return errors.New("poi: MergeRadius must be non-negative")
	}
	return nil
}

// EffectiveMergeRadius returns the clustering radius Extract actually
// uses: MergeRadius when set, MaxDiameter otherwise.
func (c Config) EffectiveMergeRadius() float64 {
	if c.MergeRadius > 0 {
		return c.MergeRadius
	}
	return c.MaxDiameter
}

// Stay is one detected stop: the user remained within a small disk for
// at least MinDuration.
type Stay struct {
	Center geo.Point // centroid of the contributing observations
	Enter  time.Time // first observation of the run
	Leave  time.Time // last observation of the run
	Count  int       // number of contributing observations
}

// Duration returns Leave - Enter.
func (s Stay) Duration() time.Duration { return s.Leave.Sub(s.Enter) }

// Stays runs stay-point detection on a single trace.
//
// The algorithm is the standard one: anchor at point i, extend j while
// every point stays within MaxDiameter of point i; when the extension
// stops, the run [i, j) is a stay iff it spans at least MinDuration.
// Detection then resumes at j (runs never overlap).
func Stays(tr *trace.Trace, cfg Config) ([]Stay, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Len() == 0 {
		return nil, nil
	}
	var out []Stay
	pts := tr.Points
	i := 0
	for i < len(pts) {
		j := i + 1
		for j < len(pts) && geo.FastDistance(pts[i].Point, pts[j].Point) <= cfg.MaxDiameter {
			j++
		}
		span := pts[j-1].Time.Sub(pts[i].Time)
		if span >= cfg.MinDuration {
			centroid, _ := geo.Centroid(positions(pts[i:j]))
			out = append(out, Stay{
				Center: centroid,
				Enter:  pts[i].Time,
				Leave:  pts[j-1].Time,
				Count:  j - i,
			})
			i = j
			continue
		}
		i++
	}
	return out, nil
}

func positions(pts []trace.Point) []geo.Point {
	out := make([]geo.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Point
	}
	return out
}

// POI is a cluster of stays: a place the user visits, with aggregate
// statistics used for ranking and matching.
type POI struct {
	Center    geo.Point     // time-weighted centroid of the stays
	Visits    int           // number of stays merged into this POI
	TotalTime time.Duration // total time spent across all visits
}

// String implements fmt.Stringer.
func (p POI) String() string {
	return fmt.Sprintf("POI{%s visits=%d time=%s}", p.Center, p.Visits, p.TotalTime)
}

// Cluster merges stays whose centers are within mergeRadius of each
// other (transitively, via union-find) into POIs. The POI center is the
// duration-weighted centroid of its stays; output order is by decreasing
// TotalTime, ties broken by visit count then latitude/longitude for
// determinism.
func Cluster(stays []Stay, mergeRadius float64) []POI {
	if len(stays) == 0 {
		return nil
	}
	parent := make([]int, len(stays))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i := 0; i < len(stays); i++ {
		for j := i + 1; j < len(stays); j++ {
			if geo.FastDistance(stays[i].Center, stays[j].Center) <= mergeRadius {
				union(i, j)
			}
		}
	}
	groups := make(map[int][]Stay)
	for i, s := range stays {
		r := find(i)
		groups[r] = append(groups[r], s)
	}
	out := make([]POI, 0, len(groups))
	for _, group := range groups {
		out = append(out, aggregate(group))
	}
	sortPOIs(out)
	return out
}

// aggregate folds a group of stays into one POI.
func aggregate(group []Stay) POI {
	var total time.Duration
	var wx, wy, wsum float64
	pr := geo.NewProjector(group[0].Center)
	for _, s := range group {
		d := s.Duration()
		total += d
		w := d.Seconds()
		if w <= 0 {
			w = 1 // zero-duration stays still count positionally
		}
		v := pr.ToXY(s.Center)
		wx += v.X * w
		wy += v.Y * w
		wsum += w
	}
	center := pr.ToPoint(geo.XY{X: wx / wsum, Y: wy / wsum})
	return POI{Center: center, Visits: len(group), TotalTime: total}
}

func sortPOIs(pois []POI) {
	// Insertion sort: POI lists are short (a handful per user).
	for i := 1; i < len(pois); i++ {
		for j := i; j > 0 && lessPOI(pois[j], pois[j-1]); j-- {
			pois[j], pois[j-1] = pois[j-1], pois[j]
		}
	}
}

// lessPOI orders by decreasing total time, then decreasing visits, then
// position (for full determinism).
func lessPOI(a, b POI) bool {
	if a.TotalTime != b.TotalTime {
		return a.TotalTime > b.TotalTime
	}
	if a.Visits != b.Visits {
		return a.Visits > b.Visits
	}
	if a.Center.Lat != b.Center.Lat {
		return a.Center.Lat < b.Center.Lat
	}
	return a.Center.Lng < b.Center.Lng
}

// Extract runs the full pipeline — stay detection then clustering — on a
// single trace, returning the user's POIs.
func Extract(tr *trace.Trace, cfg Config) ([]POI, error) {
	stays, err := Stays(tr, cfg)
	if err != nil {
		return nil, fmt.Errorf("extract POIs of %q: %w", userOf(tr), err)
	}
	return Cluster(stays, cfg.EffectiveMergeRadius()), nil
}

// ExtractAll runs Extract over a whole dataset, returning the POIs per
// user identifier.
func ExtractAll(d *trace.Dataset, cfg Config) (map[string][]POI, error) {
	out := make(map[string][]POI, d.Len())
	for _, tr := range d.Traces() {
		pois, err := Extract(tr, cfg)
		if err != nil {
			return nil, err
		}
		out[tr.User] = pois
	}
	return out, nil
}

func userOf(tr *trace.Trace) string {
	if tr == nil {
		return "<nil>"
	}
	return tr.User
}

package stream

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"mobipriv/internal/trace"
)

// collector is a Sink accumulating output, safe for concurrent shards.
type collector struct {
	mu  sync.Mutex
	out []Update
}

func (c *collector) sink(batch []Update) {
	c.mu.Lock()
	c.out = append(c.out, batch...)
	c.mu.Unlock()
}

// byUser groups collected output per user, preserving arrival order
// (which, per user, is the engine's processing order).
func (c *collector) byUser() map[string][]trace.Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]trace.Point)
	for _, u := range c.out {
		out[u.User] = append(out[u.User], u.Point)
	}
	return out
}

// startEngine runs the engine in the background and returns a stop
// function that closes it and waits for Run to return.
func startEngine(t *testing.T, cfg Config, f Factory) (*Engine, func()) {
	t.Helper()
	e, err := NewEngine(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()
	stop := func() {
		if err := e.Close(); err != nil && !errors.Is(err, ErrClosed) {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	return e, stop
}

// interleaved builds a time-interleaved stream over several users.
func interleaved(users, pointsPer int) []Update {
	var out []Update
	for i := 0; i < pointsPer; i++ {
		for u := 0; u < users; u++ {
			user := string(rune('a' + u))
			pts := line(pointsPer, 40, 30*time.Second)
			out = append(out, Update{User: user, Point: pts[i]})
		}
	}
	return out
}

func TestEngineReplayDeterministicAcrossShards(t *testing.T) {
	in := interleaved(7, 40)
	run := func(shards int) map[string][]trace.Point {
		var c collector
		e, stop := startEngine(t, Config{Shards: shards, Sink: c.sink},
			func(user string) Mechanism { return Promesse{Epsilon: 100, Window: 300}.New(user) })
		ctx := context.Background()
		for i := 0; i < len(in); i += 16 {
			end := min(i+16, len(in))
			if err := e.Push(ctx, in[i:end]...); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		stop()
		return c.byUser()
	}
	want := run(1)
	if len(want) != 7 {
		t.Fatalf("got %d users, want 7", len(want))
	}
	for _, shards := range []int{2, 4, 16} {
		got := run(shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d users, want %d", shards, len(got), len(want))
		}
		for user, wpts := range want {
			gpts := got[user]
			if len(gpts) != len(wpts) {
				t.Fatalf("shards=%d user %s: %d points, want %d", shards, user, len(gpts), len(wpts))
			}
			for i := range wpts {
				if !gpts[i].Point.Equal(wpts[i].Point) || !gpts[i].Time.Equal(wpts[i].Time) {
					t.Fatalf("shards=%d user %s point %d differs", shards, user, i)
				}
			}
		}
	}
}

func TestEngineStatsAndRelabel(t *testing.T) {
	var c collector
	e, stop := startEngine(t, Config{Shards: 3, Sink: c.sink},
		func(user string) Mechanism {
			return Chain(Passthrough{}.New(user), Pseudonymize{Prefix: "p", Seed: 1}.New(user))
		})
	in := interleaved(5, 10)
	if err := e.Push(context.Background(), in...); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.In != uint64(len(in)) || st.Out != uint64(len(in)) {
		t.Errorf("stats in=%d out=%d, want %d each", st.In, st.Out, len(in))
	}
	if st.ActiveUsers != 0 {
		t.Errorf("after Flush, ActiveUsers = %d, want 0", st.ActiveUsers)
	}
	if len(st.Shards) != 3 {
		t.Errorf("got %d shard stats, want 3", len(st.Shards))
	}
	for user := range c.byUser() {
		if user[0] != 'p' {
			t.Errorf("output user %q not pseudonymized", user)
		}
	}
	stop()
}

func TestEngineIdleEviction(t *testing.T) {
	var c collector
	e, stop := startEngine(t, Config{Shards: 2, IdleTTL: 30 * time.Millisecond, SweepEvery: 10 * time.Millisecond, Sink: c.sink},
		func(user string) Mechanism { return Promesse{Epsilon: 100, Window: 1e9}.New(user) })
	defer stop()
	// The enormous window withholds everything until flush/eviction.
	pts := line(30, 40, 30*time.Second)
	var in []Update
	for _, p := range pts {
		in = append(in, Update{User: "idler", Point: p})
	}
	if err := e.Push(context.Background(), in...); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := e.Stats()
		if st.Evicted == 1 && st.ActiveUsers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle user never evicted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Eviction flushed the withheld points out.
	if got := len(c.byUser()["idler"]); got == 0 {
		t.Error("eviction did not flush withheld points")
	}
}

func TestEngineClosedAndCancelled(t *testing.T) {
	e, stop := startEngine(t, Config{Shards: 1}, func(user string) Mechanism { return Passthrough{}.New(user) })
	stop()
	u := Update{User: "u", Point: line(1, 0, time.Second)[0]}
	if err := e.Push(context.Background(), u); !errors.Is(err, ErrClosed) {
		t.Errorf("Push after Close = %v, want ErrClosed", err)
	}
	if err := e.Flush(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after Close = %v, want ErrClosed", err)
	}

	// A full queue with no consumer exerts backpressure: Push blocks
	// until the context is cancelled.
	e2, err := NewEngine(Config{Shards: 1, QueueDepth: 1}, func(user string) Mechanism { return Passthrough{}.New(user) })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var pushErr error
	for i := 0; i < 10 && pushErr == nil; i++ {
		pushErr = e2.Push(ctx, u)
	}
	if !errors.Is(pushErr, context.DeadlineExceeded) {
		t.Errorf("backpressured Push = %v, want DeadlineExceeded", pushErr)
	}
}

// TestEngineRunAbortUnblocksPush pins the abort contract: when Run's
// context is cancelled while a Push is blocked on a full shard queue,
// the Push must return (nil or ErrClosed) instead of blocking forever
// holding the engine lock, and Close must not deadlock behind it.
func TestEngineRunAbortUnblocksPush(t *testing.T) {
	release := make(chan struct{})
	e, err := NewEngine(Config{Shards: 1, QueueDepth: 1, Sink: func([]Update) { <-release }},
		func(user string) Mechanism { return Passthrough{}.New(user) })
	if err != nil {
		t.Fatal(err)
	}
	rctx, rcancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- e.Run(rctx) }()

	u := Update{User: "u", Point: line(1, 0, time.Second)[0]}
	ctx := context.Background()
	if err := e.Push(ctx, u); err != nil { // shard picks it up, blocks in sink
		t.Fatal(err)
	}
	if err := e.Push(ctx, u); err != nil { // fills the queue
		t.Fatal(err)
	}
	pushDone := make(chan error, 1)
	go func() { pushDone <- e.Push(ctx, u) }() // blocks on the full queue

	time.Sleep(20 * time.Millisecond) // let the third Push block
	rcancel()
	close(release)

	select {
	case err := <-pushDone:
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("aborted Push = %v, want nil or ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Push still blocked after Run abort")
	}
	closeDone := make(chan struct{})
	go func() { e.Close(); close(closeDone) }()
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked after Run abort")
	}
	if err := <-runDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
}

func TestEngineFlushRestartsTraces(t *testing.T) {
	var c collector
	e, stop := startEngine(t, Config{Shards: 1, Sink: c.sink},
		func(user string) Mechanism { return Promesse{Epsilon: 100, Window: 300}.New(user) })
	defer stop()
	ctx := context.Background()
	pts := line(20, 50, 30*time.Second)
	for round := 0; round < 2; round++ {
		for _, p := range pts {
			if err := e.Push(ctx, Update{User: "u", Point: p}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	got := c.byUser()["u"]
	// Two identical traces → identical halves, each starting at pts[0].
	if len(got)%2 != 0 {
		t.Fatalf("odd output count %d after two identical rounds", len(got))
	}
	half := len(got) / 2
	starts := 0
	for _, p := range got {
		if p.Point.Equal(pts[0].Point) {
			starts++
		}
	}
	if starts != 2 {
		t.Errorf("found %d trace starts, want 2 (flush must reset per-user state)", starts)
	}
	for i := 0; i < half; i++ {
		if !got[i].Point.Equal(got[half+i].Point) {
			t.Fatalf("replayed round differs at %d", i)
		}
	}
	// Sanity: per-user output from one shard arrives in order.
	if !sort.SliceIsSorted(got[:half], func(i, j int) bool { return got[i].Time.Before(got[j].Time) }) {
		t.Error("first round not time-ordered")
	}
}

// Package stream is the online counterpart of the batch anonymization
// pipeline: it applies mechanisms to unbounded streams of location
// updates with bounded per-user memory, which is what a serving system
// needs when traces arrive live instead of as recorded datasets.
//
// The unit of work is the per-user Mechanism: a small state machine fed
// one observation at a time (Push) that emits anonymized points as soon
// as they are safe to publish, and drains its remaining state on Flush
// (end of trace, idle eviction, shutdown). Adapters exist for the
// repository's mechanisms:
//
//   - Promesse: windowed speed smoothing (see promesse.go). The batch
//     algorithm of the paper redistributes timestamps uniformly over the
//     WHOLE trace, which requires the complete trace and hence cannot be
//     computed online. The windowed adapter keeps the spatial guarantee
//     exactly — every output point lies on the input path, consecutive
//     outputs are a uniform ε apart, and both endpoints are preserved —
//     and approximates the temporal one: publication timestamps are
//     re-uniformized over a sliding window of Window meters of path, so
//     a stop shorter than the window's time span is smeared across it,
//     while a stop longer than that still shows (the price of bounded
//     memory and latency; the batch pipeline remains the gold standard
//     for recorded data).
//   - GeoI: per-point planar Laplace perturbation. The mechanism is
//     memoryless per point, so the streaming output is byte-identical
//     to the batch baseline for the same (seed, user) derivation; the
//     GeoI.Factory additionally gives each new lifetime of a user (after
//     a flush or idle eviction) an independent noise stream so sessions
//     cannot be differenced against each other.
//   - Pseudonymize: relabels the stream's user identifier with a
//     deterministic per-(seed, user) pseudonym.
//
// Engine (engine.go) scales this to many users: it shards per-user
// state by hash(user), runs one goroutine per shard, applies
// backpressure through bounded shard queues, and bounds memory by
// flushing and evicting users that have been idle longer than a TTL.
package stream

import (
	"mobipriv/internal/trace"
)

// Update is one location observation flowing through the engine: the
// user it belongs to plus the timestamped position.
type Update struct {
	User string
	trace.Point
}

// Mechanism is the online counterpart of mobipriv.Mechanism, holding
// the streaming state of ONE user. Push feeds one observation (in
// non-decreasing time order) and returns the points that became safe to
// publish; Flush ends the trace, draining whatever the mechanism was
// still holding back. After Flush the mechanism is reset and may be
// reused for a fresh trace of the same user.
//
// Implementations need not be safe for concurrent use: the engine
// confines each user to a single shard goroutine.
type Mechanism interface {
	Push(p trace.Point) []trace.Point
	Flush() []trace.Point
}

// Factory creates the per-user streaming state; the engine calls it
// once per (user, lifetime) when the first update of a user arrives.
// Factories must be safe for concurrent use by multiple shards.
type Factory func(user string) Mechanism

// Relabeler is implemented by mechanisms that publish under a different
// user identifier than the input one (pseudonymization). The engine
// consults it once, when the user's state is created.
type Relabeler interface {
	OutUser(in string) string
}

// Chain composes mechanisms into one: every point emitted by stage i is
// pushed through stage i+1, and Flush drains the stages front to back
// so no point is lost in an intermediate buffer. If any stage relabels
// the user, the chain does too (later stages win).
func Chain(stages ...Mechanism) Mechanism {
	return chain(stages)
}

type chain []Mechanism

func (c chain) Push(p trace.Point) []trace.Point {
	out := []trace.Point{p}
	for _, st := range c {
		var next []trace.Point
		for _, q := range out {
			next = append(next, st.Push(q)...)
		}
		out = next
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

func (c chain) Flush() []trace.Point {
	var out []trace.Point
	for _, st := range c {
		// Points already in flight from earlier stages pass through
		// this stage like regular pushes, then the stage drains.
		var next []trace.Point
		for _, q := range out {
			next = append(next, st.Push(q)...)
		}
		next = append(next, st.Flush()...)
		out = next
	}
	return out
}

func (c chain) OutUser(in string) string {
	out := in
	for _, st := range c {
		if r, ok := st.(Relabeler); ok {
			out = r.OutUser(out)
		}
	}
	return out
}

// Passthrough is the identity streaming mechanism (the "raw" adapter):
// every pushed point is published immediately, unchanged.
type Passthrough struct{}

// New implements the factory pattern shared by the adapters.
func (Passthrough) New(user string) Mechanism { return passthrough{} }

type passthrough struct{}

func (passthrough) Push(p trace.Point) []trace.Point { return []trace.Point{p} }
func (passthrough) Flush() []trace.Point             { return nil }

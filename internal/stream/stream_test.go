package stream

import (
	"math"
	"testing"
	"time"

	"mobipriv/internal/baseline/geoind"
	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
)

var t0 = time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)

// line returns a straight northbound trace: n points, step meters apart,
// dt between observations, starting at t0.
func line(n int, step float64, dt time.Duration) []trace.Point {
	pts := make([]trace.Point, n)
	p := geo.Point{Lat: 45.76, Lng: 4.83}
	for i := range pts {
		pts[i] = trace.Point{Point: p, Time: t0.Add(time.Duration(i) * dt)}
		p = geo.Offset(p, 0, step)
	}
	return pts
}

func pushAll(m Mechanism, pts []trace.Point) []trace.Point {
	var out []trace.Point
	for _, p := range pts {
		out = append(out, m.Push(p)...)
	}
	return append(out, m.Flush()...)
}

func TestPromesseUniformSpacingStraightLine(t *testing.T) {
	const eps = 100.0
	m := Promesse{Epsilon: eps, Window: 300}.New("u")
	in := line(50, 40, 30*time.Second) // 49 segments of 40 m ≈ 1960 m path
	out := pushAll(m, in)
	if len(out) < 10 {
		t.Fatalf("got %d points, want many", len(out))
	}
	// Endpoints preserved exactly (position and time).
	if !out[0].Point.Equal(in[0].Point) || !out[0].Time.Equal(in[0].Time) {
		t.Errorf("first point = %v, want %v", out[0], in[0])
	}
	last, rawLast := out[len(out)-1], in[len(in)-1]
	if geo.Distance(last.Point, rawLast.Point) > 1e-6 || !last.Time.Equal(rawLast.Time) {
		t.Errorf("last point = %v, want %v", last, rawLast)
	}
	// Uniform spacing: every gap except the final one is exactly eps on
	// a straight path.
	for i := 1; i < len(out)-1; i++ {
		d := geo.Distance(out[i-1].Point, out[i].Point)
		if math.Abs(d-eps) > 1e-6 {
			t.Errorf("gap %d = %.9f m, want %g", i, d, eps)
		}
	}
	if d := geo.Distance(out[len(out)-2].Point, last.Point); d > eps+1e-6 {
		t.Errorf("final gap = %f m, want <= %g", d, eps)
	}
	// Published timestamps strictly increasing.
	for i := 1; i < len(out); i++ {
		if !out[i].Time.After(out[i-1].Time) {
			t.Fatalf("times not strictly increasing at %d: %v then %v", i, out[i-1].Time, out[i].Time)
		}
	}
}

func TestPromesseCollapsesStationaryJitter(t *testing.T) {
	const eps = 100.0
	// Move 500 m, dwell with 5 m jitter for 30 samples, move 500 m more.
	var in []trace.Point
	p := geo.Point{Lat: 45.76, Lng: 4.83}
	ts := t0
	push := func(q geo.Point) { in = append(in, trace.Point{Point: q, Time: ts}); ts = ts.Add(15 * time.Second) }
	for i := 0; i < 10; i++ {
		push(p)
		p = geo.Offset(p, 0, 50)
	}
	stop := p
	for i := 0; i < 30; i++ {
		push(geo.Offset(stop, float64(i%3)*5, float64(i%2)*5))
	}
	for i := 0; i < 10; i++ {
		p = geo.Offset(p, 0, 50)
		push(p)
	}
	out := pushAll(Promesse{Epsilon: eps}.New("u"), in)
	// The jitter scribble (~30 points within 10 m) must not inflate the
	// path: total path ≈ 1000 m → about 11 samples plus the endpoint.
	if len(out) > 14 {
		t.Errorf("got %d output points; stationary jitter not collapsed", len(out))
	}
	for i := 1; i < len(out); i++ {
		if !out[i].Time.After(out[i-1].Time) {
			t.Fatalf("times not strictly increasing at %d", i)
		}
	}
}

func TestPromesseShortTraceKeepsEndpoints(t *testing.T) {
	// A trace shorter than eps still publishes its two endpoints.
	in := line(5, 10, time.Minute) // 40 m total, eps 100
	out := pushAll(Promesse{Epsilon: 100}.New("u"), in)
	if len(out) != 2 {
		t.Fatalf("got %d points, want 2 (both endpoints): %v", len(out), out)
	}
	if !out[0].Point.Equal(in[0].Point) || geo.Distance(out[1].Point, in[len(in)-1].Point) > 1e-6 {
		t.Errorf("endpoints not preserved: %v", out)
	}
}

func TestPromesseResetsAfterFlush(t *testing.T) {
	m := Promesse{Epsilon: 100}.New("u")
	first := pushAll(m, line(20, 50, 30*time.Second))
	second := pushAll(m, line(20, 50, 30*time.Second))
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("flush did not reset state: %d then %d points", len(first), len(second))
	}
}

func TestGeoIMatchesBatchPerUser(t *testing.T) {
	cfg := geoind.Config{Epsilon: 0.01, Seed: 42}
	in := line(100, 30, 30*time.Second)
	tr := trace.MustNew("alice", in)
	batch, err := geoind.NewForUser(cfg, "alice")
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.Perturb(tr)
	if err != nil {
		t.Fatal(err)
	}
	got := pushAll(GeoI{Epsilon: cfg.Epsilon, Seed: cfg.Seed}.New("alice"), in)
	if len(got) != want.Len() {
		t.Fatalf("streaming emitted %d points, batch %d", len(got), want.Len())
	}
	for i := range got {
		w := want.Points[i]
		if got[i].Lat != w.Lat || got[i].Lng != w.Lng || !got[i].Time.Equal(w.Time) {
			t.Fatalf("point %d: streaming %v, batch %v", i, got[i], w)
		}
	}
}

// TestGeoIFactoryFreshNoisePerIncarnation: a user whose state is
// re-created (post flush/eviction) must NOT replay the first session's
// noise — identical inputs across sessions would otherwise difference
// to the exact relative movement. The first incarnation still matches
// the batch stream, and a fresh factory reproduces it (replay
// determinism).
func TestGeoIFactoryFreshNoisePerIncarnation(t *testing.T) {
	c := GeoI{Epsilon: 0.01, Seed: 1}
	f := c.Factory()
	in := line(20, 30, 30*time.Second)
	first := pushAll(f("alice"), in)
	second := pushAll(f("alice"), in) // same user, new lifetime, same raw input
	same := 0
	for i := range first {
		if first[i].Point.Equal(second[i].Point) {
			same++
		}
	}
	if same == len(first) {
		t.Fatal("second lifetime replayed the first lifetime's noise stream")
	}
	replay := pushAll(c.Factory()("alice"), in)
	for i := range first {
		if !first[i].Point.Equal(replay[i].Point) {
			t.Fatalf("first incarnation not deterministic across factories at %d", i)
		}
	}
	batch := pushAll(c.New("alice"), in)
	for i := range first {
		if !first[i].Point.Equal(batch[i].Point) {
			t.Fatalf("first incarnation differs from the batch-equivalent stream at %d", i)
		}
	}
}

func TestPseudonymizeRelabels(t *testing.T) {
	c := Pseudonymize{Prefix: "p", Seed: 1}
	m := c.New("alice")
	r, ok := m.(Relabeler)
	if !ok {
		t.Fatal("pseudonymizer does not implement Relabeler")
	}
	label := r.OutUser("alice")
	if label == "alice" || label[:1] != "p" {
		t.Fatalf("label = %q", label)
	}
	// Deterministic, user-distinct, seed-distinct.
	if l2 := c.New("alice").(Relabeler).OutUser("alice"); l2 != label {
		t.Errorf("non-deterministic label: %q vs %q", label, l2)
	}
	if other := c.New("bob").(Relabeler).OutUser("bob"); other == label {
		t.Errorf("bob and alice share label %q", label)
	}
	if reseeded := (Pseudonymize{Prefix: "p", Seed: 2}).New("alice").(Relabeler).OutUser("alice"); reseeded == label {
		t.Errorf("seed change kept label %q", label)
	}
	// Points pass through unchanged.
	in := line(3, 50, time.Minute)
	out := pushAll(m, in)
	if len(out) != len(in) {
		t.Fatalf("got %d points, want %d", len(out), len(in))
	}
	for i := range out {
		if !out[i].Point.Equal(in[i].Point) || !out[i].Time.Equal(in[i].Time) {
			t.Errorf("point %d modified: %v", i, out[i])
		}
	}
}

func TestChainComposesAndRelabels(t *testing.T) {
	m := Chain(
		Promesse{Epsilon: 100, Window: 200}.New("alice"),
		Pseudonymize{Prefix: "p", Seed: 1}.New("alice"),
	)
	in := line(30, 50, 30*time.Second)
	direct := pushAll(Promesse{Epsilon: 100, Window: 200}.New("alice"), in)
	chained := pushAll(m, in)
	if len(chained) != len(direct) {
		t.Fatalf("chain emitted %d points, direct %d", len(chained), len(direct))
	}
	for i := range chained {
		if !chained[i].Point.Equal(direct[i].Point) || !chained[i].Time.Equal(direct[i].Time) {
			t.Fatalf("point %d: chain %v, direct %v", i, chained[i], direct[i])
		}
	}
	r, ok := m.(Relabeler)
	if !ok {
		t.Fatal("chain with pseudonymizer does not relabel")
	}
	if out := r.OutUser("alice"); out == "alice" {
		t.Errorf("chain OutUser = %q, want pseudonym", out)
	}
}

func TestPassthrough(t *testing.T) {
	in := line(4, 50, time.Minute)
	out := pushAll(Passthrough{}.New("u"), in)
	if len(out) != len(in) {
		t.Fatalf("got %d points, want %d", len(out), len(in))
	}
}

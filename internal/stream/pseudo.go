package stream

import (
	"fmt"
	"hash/fnv"

	"mobipriv/internal/rng"
	"mobipriv/internal/trace"
)

// Pseudonymize configures the online pseudonymizer and acts as the
// factory for its per-user state: points pass through untouched, but
// the stream is published under a deterministic per-(Seed, user)
// pseudonym.
//
// Unlike the batch Pseudonymize stage, which numbers a KNOWN user
// population through a seeded permutation, a streaming system never
// sees the full population, so the pseudonym is derived by hashing
// (Seed, user) through the shared splitmix64 finalizer: stable across
// restarts and shard layouts, with a 48-bit label space making
// collisions negligible at realistic populations.
type Pseudonymize struct {
	// Prefix names output identities Prefix<12 hex digits>. Empty keeps
	// the original labels (the stage becomes a no-op).
	Prefix string
	// Seed decorrelates pseudonyms between deployments.
	Seed int64
}

// New returns the streaming state for one user.
func (c Pseudonymize) New(user string) Mechanism {
	return pseudoState{label: pseudoLabel(c.Prefix, c.Seed, user)}
}

func pseudoLabel(prefix string, seed int64, user string) string {
	if prefix == "" {
		return user
	}
	h := fnv.New64a()
	h.Write([]byte(user))
	v := rng.Mix(uint64(seed)*rng.Gamma ^ h.Sum64())
	return fmt.Sprintf("%s%012x", prefix, v&0xffffffffffff)
}

type pseudoState struct {
	label string
}

func (st pseudoState) Push(p trace.Point) []trace.Point { return []trace.Point{p} }
func (st pseudoState) Flush() []trace.Point             { return nil }
func (st pseudoState) OutUser(in string) string         { return st.label }

package stream

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mobipriv/internal/obs"
	otrace "mobipriv/internal/obs/trace"
	"mobipriv/internal/par"
	"mobipriv/internal/rng"
)

// ErrClosed reports a Push or Flush against an engine that has been
// closed.
var ErrClosed = errors.New("stream: engine closed")

// Sink receives batches of anonymized output. It is called from shard
// goroutines concurrently and must be safe for concurrent use; it
// should return quickly, as a slow sink stalls its shard (that stall is
// the engine's backpressure propagating downstream). The batch is
// invalidated when the call returns — the shard reuses its backing
// array — so a sink that retains it (channel hand-off, async writer)
// must copy first.
type Sink func(batch []Update)

// Config parameterizes an Engine.
type Config struct {
	// Shards is the number of per-user state partitions, one goroutine
	// each; a user is pinned to hash(user) mod Shards, so per-user
	// ordering is preserved without locks. Zero or negative means 4.
	Shards int
	// QueueDepth is the per-shard queue capacity in batches. When a
	// shard's queue is full, Push blocks — that is the backpressure
	// bounding engine memory. Zero or negative means 64.
	QueueDepth int
	// IdleTTL evicts a user whose last update is older than this: the
	// mechanism is flushed (emitting what it withheld) and its state
	// freed, so abandoned streams do not leak memory. Zero disables
	// eviction.
	IdleTTL time.Duration
	// SweepEvery is the eviction sweep period; zero means IdleTTL/4
	// (clamped to at least 10ms).
	SweepEvery time.Duration
	// Sink receives the anonymized output. Nil discards it (benchmarks).
	Sink Sink
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.IdleTTL / 4
	}
	if c.SweepEvery < 10*time.Millisecond {
		c.SweepEvery = 10 * time.Millisecond
	}
	if c.Sink == nil {
		c.Sink = func([]Update) {}
	}
	return c
}

// Stats is a point-in-time snapshot of engine activity.
type Stats struct {
	// Shards holds one entry per shard, in shard order.
	Shards []ShardStats
	// In, Out, Evicted and Stalls aggregate the per-shard counters.
	In, Out, Evicted, Stalls uint64
	// ActiveUsers is the number of users currently holding state.
	ActiveUsers int
}

// ShardStats describes one shard. The JSON tags are the wire format of
// mobiserve's /stats endpoint.
type ShardStats struct {
	// QueueDepth is the number of batches waiting in the shard queue.
	QueueDepth int `json:"queue_depth"`
	// QueueHighWater is the deepest the shard queue has ever been
	// observed after an enqueue — how close the shard has come to
	// exerting backpressure.
	QueueHighWater int `json:"queue_high_water"`
	// Users is the number of users with live state on this shard.
	Users int `json:"users"`
	// In and Out count points received and published by this shard.
	In  uint64 `json:"points_in"`
	Out uint64 `json:"points_out"`
	// Evicted counts users flushed out by the idle TTL.
	Evicted uint64 `json:"evicted_users"`
	// Stalls counts sends that found the shard queue full and had to
	// block — each one is a backpressure event felt by a producer.
	Stalls uint64 `json:"stalls"`
}

// Engine partitions per-user streaming state across shards and applies
// a Mechanism (built per user by the Factory) to an unbounded stream of
// updates with bounded memory. Construct with NewEngine, start the
// shard goroutines with Run, feed with Push, and stop with Close.
type Engine struct {
	cfg     Config
	factory Factory
	shards  []*shard
	stopped chan struct{} // closed when Run returns; unblocks stuck senders

	mu      sync.RWMutex // guards closed vs. in-flight channel sends
	closed  bool
	started atomic.Bool

	// pushHist, when set by RegisterMetrics, times each Push call. It
	// is an atomic pointer so registration never races the hot path;
	// when nil (the default) Push takes no clock readings at all.
	pushHist atomic.Pointer[obs.Histogram]

	// hists, when set by RegisterMetrics, decomposes per-batch latency
	// into queue-wait, mechanism-process and sink time. Same contract
	// as pushHist: nil means the shard loop takes no extra clock
	// readings.
	hists atomic.Pointer[applyHists]
}

// applyHists are the per-batch latency decomposition histograms. They
// are registered (or not) as one unit so the shard loop tests a single
// pointer.
type applyHists struct {
	queueWait *obs.Histogram
	process   *obs.Histogram
	sink      *obs.Histogram
}

type shardMsg struct {
	batch []Update
	flush chan<- struct{} // non-nil: flush+evict all users, then signal
	sp    *otrace.Span    // non-nil: the batch span; the shard records its children and ends it
	enq   time.Time       // enqueue time when the batch is timed (span or hists)
}

type shard struct {
	idx     int
	hists   *atomic.Pointer[applyHists] // the engine's decomposition histograms
	in      chan shardMsg
	users   map[string]*userState
	factory Factory
	sink    Sink
	ttl     time.Duration
	sweep   time.Duration
	nIn     atomic.Uint64
	nOut    atomic.Uint64
	nEvict  atomic.Uint64
	nStall  atomic.Uint64
	nUsers  atomic.Int64
	qMax    atomic.Int64 // deepest queue observed after an enqueue
	scratch []Update     // reused output batch
}

type userState struct {
	mech     Mechanism
	outUser  string
	lastSeen time.Time
}

// NewEngine returns an engine applying factory-built mechanisms to the
// stream. Run must be called before updates flow.
func NewEngine(cfg Config, factory Factory) (*Engine, error) {
	if factory == nil {
		return nil, errors.New("stream: nil factory")
	}
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:     cfg,
		factory: factory,
		shards:  make([]*shard, cfg.Shards),
		stopped: make(chan struct{}),
	}
	for i := range e.shards {
		e.shards[i] = &shard{
			idx:     i,
			hists:   &e.hists,
			in:      make(chan shardMsg, cfg.QueueDepth),
			users:   make(map[string]*userState),
			factory: factory,
			sink:    cfg.Sink,
			ttl:     cfg.IdleTTL,
			sweep:   cfg.SweepEvery,
		}
	}
	return e, nil
}

// Run drives the shard goroutines (one per shard, fanned out through
// the shared par substrate) and blocks until Close is called or ctx is
// cancelled. It must be called exactly once. Cancelling ctx is an
// ABORT: queued batches and withheld per-user state are dropped without
// flushing, and in-flight Push/Flush calls fail with ErrClosed — use
// Close for a graceful drain.
func (e *Engine) Run(ctx context.Context) error {
	if !e.started.CompareAndSwap(false, true) {
		return errors.New("stream: engine already running")
	}
	defer close(e.stopped)
	n := len(e.shards)
	return par.Map(par.WithWorkers(ctx, n), n, func(i int) error {
		return e.shards[i].run(ctx)
	})
}

// Push routes the updates to their shards, blocking while shard queues
// are full (backpressure) and honoring ctx cancellation. Updates of one
// Push call that share a user keep their relative order. The slice is
// copied before enqueueing, so callers may reuse it immediately.
func (e *Engine) Push(ctx context.Context, updates ...Update) error {
	return e.PushTraced(ctx, nil, updates...)
}

// PushTraced is Push carrying an optional parent span. When sp is
// non-nil, each per-shard batch becomes an "engine.batch" child whose
// queue-wait, process and sink intervals the owning shard records
// before ending it — the root trace publishes only after every shard
// has finished its batches, even if that outlives the HTTP request.
// A nil sp is exactly Push: when the decomposition histograms are also
// unregistered, the shard path takes no extra clock readings.
func (e *Engine) PushTraced(ctx context.Context, sp *otrace.Span, updates ...Update) error {
	if len(updates) == 0 {
		return nil
	}
	if h := e.pushHist.Load(); h != nil {
		start := time.Now()
		defer func() { h.ObserveDuration(time.Since(start)) }()
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	timed := sp != nil || e.hists.Load() != nil
	if len(e.shards) == 1 {
		batch := make([]Update, len(updates))
		copy(batch, updates)
		msg := shardMsg{batch: batch}
		msg.sp, msg.enq = stampBatch(sp, 0, len(batch), timed)
		if err := e.send(ctx, e.shards[0], msg); err != nil {
			msg.sp.End()
			return err
		}
		return nil
	}
	// Partition into one backing array by counting-sort on the shard
	// index (two cheap hash passes, a fixed handful of allocations per
	// call — cheaper than a map of growing slices on the ingest path).
	// Input order is preserved within each shard, and the engine owns
	// the backing, so callers may reuse their slice immediately.
	n := len(e.shards)
	counts := make([]int, n)
	for i := range updates {
		counts[e.shardOf(updates[i].User)]++
	}
	backing := make([]Update, len(updates))
	starts := make([]int, n)
	for i := 1; i < n; i++ {
		starts[i] = starts[i-1] + counts[i-1]
	}
	cursors := make([]int, n)
	copy(cursors, starts)
	for _, u := range updates {
		i := e.shardOf(u.User)
		backing[cursors[i]] = u
		cursors[i]++
	}
	for i := 0; i < n; i++ {
		if counts[i] == 0 {
			continue
		}
		msg := shardMsg{batch: backing[starts[i] : starts[i]+counts[i]]}
		msg.sp, msg.enq = stampBatch(sp, i, counts[i], timed)
		if err := e.send(ctx, e.shards[i], msg); err != nil {
			msg.sp.End() // shard never saw it; don't leak the root ref
			return err
		}
	}
	return nil
}

// stampBatch builds the per-batch span and enqueue timestamp (returned
// by value so the message never escapes to the heap on the untraced
// path). The child span is created here, in the pushing goroutine, so
// a replayed request creates its engine.batch spans in a deterministic
// order: the per-parent sequence numbers — and hence the span IDs —
// depend only on shard iteration order, not on goroutine scheduling.
func stampBatch(sp *otrace.Span, shardIdx, points int, timed bool) (*otrace.Span, time.Time) {
	var enq time.Time
	if timed {
		enq = time.Now()
	}
	var bsp *otrace.Span
	if sp != nil {
		bsp = sp.Child("engine.batch")
		bsp.SetAttr(otrace.Int("shard", int64(shardIdx)), otrace.Int("points", int64(points)))
	}
	return bsp, enq
}

// Flush flushes and evicts every user on every shard, waiting until all
// withheld output has reached the sink. The engine stays usable: the
// next update of a user starts a fresh trace.
func (e *Engine) Flush(ctx context.Context) error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	dones := make([]chan struct{}, len(e.shards))
	var err error
	for i, s := range e.shards {
		dones[i] = make(chan struct{})
		if err = e.send(ctx, s, shardMsg{flush: dones[i]}); err != nil {
			dones[i] = nil
			break
		}
	}
	e.mu.RUnlock()
	for _, done := range dones {
		if done == nil {
			break
		}
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		case <-e.stopped:
			return ErrClosed
		}
	}
	return err
}

// Close flushes every user, stops the shard goroutines and makes
// further Push/Flush calls fail with ErrClosed. Run returns once the
// shards have drained.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.closed = true
	for _, s := range e.shards {
		close(s.in)
	}
	return nil
}

// Stats snapshots the per-shard counters.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(e.shards))}
	for i, s := range e.shards {
		ss := ShardStats{
			QueueDepth:     len(s.in),
			QueueHighWater: int(s.qMax.Load()),
			Users:          int(s.nUsers.Load()),
			In:             s.nIn.Load(),
			Out:            s.nOut.Load(),
			Evicted:        s.nEvict.Load(),
			Stalls:         s.nStall.Load(),
		}
		st.Shards[i] = ss
		st.In += ss.In
		st.Out += ss.Out
		st.Evicted += ss.Evicted
		st.Stalls += ss.Stalls
		st.ActiveUsers += ss.Users
	}
	return st
}

// RegisterMetrics publishes the engine's counters on reg under stable
// stream_* names and enables the push-latency histogram. The counter
// and gauge series are scrape-time views over the same atomics Stats
// reads, so /stats and /metrics cannot disagree. Safe to call at any
// time, including while the engine is running.
func (e *Engine) RegisterMetrics(reg *obs.Registry) {
	e.pushHist.Store(reg.Histogram("stream_push_seconds",
		"Latency of Engine.Push calls (partition + enqueue, including backpressure stalls)."))
	e.hists.Store(&applyHists{
		queueWait: reg.Histogram("stream_queue_wait_seconds",
			"Time a batch waited in its shard queue before the shard picked it up."),
		process: reg.Histogram("stream_process_seconds",
			"Time a shard spent feeding a batch through the per-user mechanisms."),
		sink: reg.Histogram("stream_sink_seconds",
			"Time a shard spent in the sink callback publishing a batch's output."),
	})
	reg.CounterFunc("stream_points_in_total",
		"Points received by the engine.",
		func() float64 { return float64(e.Stats().In) })
	reg.CounterFunc("stream_points_out_total",
		"Anonymized points published to the sink.",
		func() float64 { return float64(e.Stats().Out) })
	reg.CounterFunc("stream_evicted_users_total",
		"Users flushed out by the idle TTL.",
		func() float64 { return float64(e.Stats().Evicted) })
	reg.CounterFunc("stream_push_stalls_total",
		"Sends that found a shard queue full and blocked (backpressure events).",
		func() float64 { return float64(e.Stats().Stalls) })
	reg.GaugeFunc("stream_active_users",
		"Users currently holding per-user mechanism state.",
		func() float64 { return float64(e.Stats().ActiveUsers) })
	for i, s := range e.shards {
		s := s
		shardLabel := obs.L("shard", strconv.Itoa(i))
		reg.GaugeFunc("stream_shard_queue_depth",
			"Batches waiting in the shard queue.",
			func() float64 { return float64(len(s.in)) }, shardLabel)
		reg.GaugeFunc("stream_shard_queue_high_water",
			"Deepest the shard queue has been observed after an enqueue.",
			func() float64 { return float64(s.qMax.Load()) }, shardLabel)
	}
}

// shardOf routes a user to a shard via the system-wide placement
// contract (rng.Shard): splitmix64-mixed FNV-1a mod the shard count —
// the same function the .mstore format and the multi-node router pin
// users with, so in-process sharding and cross-process routing can
// never drift apart.
func (e *Engine) shardOf(user string) int {
	return rng.Shard(user, len(e.shards))
}

// send enqueues one message, blocking until the shard accepts it. The
// stopped channel keeps a sender from blocking forever (holding the
// read lock and deadlocking Close) when Run's context was cancelled and
// the shards died without draining their queues. A first non-blocking
// attempt distinguishes the common fast path from a backpressure stall,
// which is counted before falling back to the blocking select.
func (e *Engine) send(ctx context.Context, s *shard, msg shardMsg) error {
	select {
	case s.in <- msg:
		s.noteDepth()
		return nil
	default:
	}
	s.nStall.Add(1)
	s.qMax.Store(int64(cap(s.in))) // full queue is by definition the high water
	select {
	case s.in <- msg:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-e.stopped:
		return ErrClosed
	}
}

// noteDepth raises the shard's queue high-water mark to the depth just
// observed.
func (s *shard) noteDepth() {
	d := int64(len(s.in))
	for {
		old := s.qMax.Load()
		if d <= old || s.qMax.CompareAndSwap(old, d) {
			return
		}
	}
}

// run is the shard loop: apply batches in arrival order, sweep idle
// users, and on shutdown flush whatever state remains.
func (s *shard) run(ctx context.Context) error {
	var tick <-chan time.Time
	if s.ttl > 0 {
		t := time.NewTicker(s.sweep)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case msg, ok := <-s.in:
			if !ok {
				s.flushAll()
				return nil
			}
			if msg.flush != nil {
				s.flushAll()
				close(msg.flush)
				continue
			}
			s.apply(msg)
		case now := <-tick:
			s.evictIdle(now)
		}
	}
}

// apply feeds one batch through the per-user mechanisms and emits the
// published points as one sink batch. When the batch is timed (a span
// rode along or the decomposition histograms are registered) the
// queue-wait, process and sink intervals are measured and recorded;
// otherwise the only clock reading is the lastSeen stamp the idle
// sweeper needs, exactly as before instrumentation existed.
func (s *shard) apply(msg shardMsg) {
	batch := msg.batch
	hists := s.hists.Load()
	sp := msg.sp
	now := time.Now()
	if !msg.enq.IsZero() {
		qw := now.Sub(msg.enq)
		if qw < 0 {
			qw = 0
		}
		if hists != nil {
			hists.queueWait.ObserveDuration(qw)
		}
		if sp != nil {
			sp.Record("engine.queue_wait", msg.enq, qw)
		}
	}
	out := s.scratch[:0]
	for _, u := range batch {
		st := s.users[u.User]
		if st == nil {
			st = &userState{mech: s.factory(u.User), outUser: u.User}
			if r, ok := st.mech.(Relabeler); ok {
				st.outUser = r.OutUser(u.User)
			}
			s.users[u.User] = st
			s.nUsers.Add(1)
		}
		st.lastSeen = now
		for _, p := range st.mech.Push(u.Point) {
			out = append(out, Update{User: st.outUser, Point: p})
		}
	}
	s.nIn.Add(uint64(len(batch)))
	if hists == nil && sp == nil {
		s.emit(out)
		s.scratch = out[:0]
		return
	}
	tSink := time.Now()
	procD := tSink.Sub(now)
	if hists != nil {
		hists.process.ObserveDuration(procD)
	}
	if sp != nil {
		sp.Record("engine.process", now, procD,
			otrace.Int("points", int64(len(batch))), otrace.Int("out", int64(len(out))))
	}
	s.emit(out)
	sinkD := time.Since(tSink)
	if hists != nil {
		hists.sink.ObserveDuration(sinkD)
	}
	if sp != nil {
		sp.Record("engine.sink", tSink, sinkD)
		sp.End()
	}
	s.scratch = out[:0]
}

func (s *shard) emit(out []Update) {
	if len(out) == 0 {
		return
	}
	s.nOut.Add(uint64(len(out)))
	s.sink(out)
}

func (s *shard) flushAll() {
	var out []Update
	for user, st := range s.users {
		for _, p := range st.mech.Flush() {
			out = append(out, Update{User: st.outUser, Point: p})
		}
		delete(s.users, user)
		s.nUsers.Add(-1)
	}
	s.emit(out)
}

func (s *shard) evictIdle(now time.Time) {
	var out []Update
	for user, st := range s.users {
		if now.Sub(st.lastSeen) < s.ttl {
			continue
		}
		for _, p := range st.mech.Flush() {
			out = append(out, Update{User: st.outUser, Point: p})
		}
		delete(s.users, user)
		s.nUsers.Add(-1)
		s.nEvict.Add(1)
	}
	s.emit(out)
}

// String renders a compact one-line summary, handy in logs.
func (e *Engine) String() string {
	st := e.Stats()
	return fmt.Sprintf("stream.Engine{shards=%d users=%d in=%d out=%d evicted=%d}",
		len(e.shards), st.ActiveUsers, st.In, st.Out, st.Evicted)
}

package stream

import (
	"fmt"
	"sync"

	"mobipriv/internal/baseline/geoind"
	"mobipriv/internal/trace"
)

// GeoI configures the streaming geo-indistinguishability adapter and
// acts as the factory for its per-user state. Planar Laplace noise is
// memoryless per observation, so streaming is the mechanism's natural
// habitat: each pushed point is perturbed and published immediately,
// with zero latency and O(1) per-user state.
//
// The per-user noise stream is derived from (Seed, user) exactly as the
// batch baseline derives per-trace RNGs, so replaying a recorded
// dataset through the streaming engine yields output byte-identical to
// geoind.PerturbDataset for the same seed.
type GeoI struct {
	// Epsilon is the privacy parameter in 1/meters. Must be positive.
	Epsilon float64
	// Seed makes the noise reproducible.
	Seed int64
}

// New returns the streaming state for one user's FIRST lifetime — the
// noise stream that reproduces the batch baseline. It panics on an
// invalid Epsilon (registration-time misconfiguration, like Register).
// Engines whose users can be flushed and return must create state
// through Factory instead, which advances the noise per lifetime.
func (c GeoI) New(user string) Mechanism {
	return c.newIncarnation(user, 0)
}

// Factory returns a concurrency-safe factory giving each lifetime
// ("incarnation") of a user an independent noise stream. The first
// lifetime derives exactly the batch stream, so single-pass replay of a
// recorded dataset stays byte-identical to the batch baseline; state
// re-created after a flush or idle eviction advances to a fresh stream,
// because replaying session 1's draws against session 2's positions
// would let an observer difference the sessions and cancel the noise
// entirely.
//
// Memory stays bounded: per-user lifetime counters are tracked for up
// to maxTrackedUsers; beyond that, every new user's lifetimes draw from
// a globally unique counter instead. That never reuses a noise stream
// (the privacy property), it only forgoes batch-replay determinism for
// the users past the cap — recorded-dataset replays fit well within it.
// Counters are per-process; operators wanting cross-restart freshness
// vary Seed per deployment.
func (c GeoI) Factory() Factory {
	const maxTrackedUsers = 1 << 20
	var (
		mu          sync.Mutex
		incarnation = make(map[string]uint64)
		overflow    uint64
	)
	return func(user string) Mechanism {
		mu.Lock()
		n, seen := incarnation[user]
		switch {
		case seen:
			incarnation[user] = n + 1
		case len(incarnation) < maxTrackedUsers:
			incarnation[user] = 1 // n = 0: the batch-identical stream
		default:
			overflow++
			n = maxTrackedUsers + overflow // unique, never 0, never reused
		}
		mu.Unlock()
		return c.newIncarnation(user, n)
	}
}

func (c GeoI) newIncarnation(user string, n uint64) Mechanism {
	derived := user
	if n > 0 {
		// NUL-separated so no real user label can collide with it.
		derived = fmt.Sprintf("%s\x00incarnation\x00%d", user, n)
	}
	m, err := geoind.NewForUser(geoind.Config{Epsilon: c.Epsilon, Seed: c.Seed}, derived)
	if err != nil {
		panic(fmt.Sprintf("stream: GeoI: %v", err))
	}
	return geoiState{m: m}
}

type geoiState struct {
	m *geoind.Mechanism
}

func (st geoiState) Push(p trace.Point) []trace.Point {
	return []trace.Point{st.m.PerturbPoint(p)}
}

func (st geoiState) Flush() []trace.Point { return nil }

package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"mobipriv/internal/rng"
)

// TestShardAgreesWithPlacementContract asserts the engine's in-process
// shard assignment and the fleet-level node assignment (both rng.Shard)
// agree for 10k random users at several partition counts. This is the
// property that makes a multi-node fleet byte-equivalent to a single
// node: a user lands on worker rng.Shard(user, nodes) and, inside any
// worker, on shard rng.Shard(user, shards) — the same contract at both
// layers, so placement can never drift between the router and the
// engine.
func TestShardAgreesWithPlacementContract(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	users := make([]string, 10000)
	for i := range users {
		switch i % 3 {
		case 0:
			users[i] = fmt.Sprintf("u%d", i)
		case 1:
			users[i] = fmt.Sprintf("user-%d-%d", r.Uint64(), i)
		default:
			b := make([]byte, 1+r.Intn(24))
			for j := range b {
				b[j] = byte(32 + r.Intn(95))
			}
			users[i] = string(b)
		}
	}
	for _, shards := range []int{1, 2, 3, 8, 16} {
		e, stop := startEngine(t, Config{Shards: shards},
			func(user string) Mechanism { return Passthrough{}.New(user) })
		for _, u := range users {
			if got, want := e.shardOf(u), rng.Shard(u, shards); got != want {
				t.Fatalf("shards=%d user=%q: engine shard %d, placement contract says %d", shards, u, got, want)
			}
		}
		stop()
	}
}

package stream

import (
	"context"
	"testing"
	"time"

	"mobipriv/internal/obs"
	otrace "mobipriv/internal/obs/trace"
	"mobipriv/internal/trace"
)

// traceTestEngine starts a 4-shard identity engine, registered on reg
// when non-nil, with cleanup wired to the test.
func traceTestEngine(t *testing.T, reg *obs.Registry) *Engine {
	t.Helper()
	eng, stop := startEngine(t, Config{Shards: 4},
		func(user string) Mechanism { return Passthrough{}.New(user) })
	if reg != nil {
		eng.RegisterMetrics(reg)
	}
	t.Cleanup(stop)
	return eng
}

func tracePoints(n int) []Update {
	out := make([]Update, n)
	base := time.Unix(1_700_000_000, 0)
	for i := range out {
		out[i] = Update{
			User:  "u" + string(rune('a'+i%7)),
			Point: trace.P(48+float64(i)*1e-4, 2+float64(i)*1e-4, base.Add(time.Duration(i)*time.Second)),
		}
	}
	return out
}

// TestPushTracedSpans drives a traced push through the engine and
// checks the published trace decomposes each shard batch into
// queue-wait, process and sink children.
func TestPushTracedSpans(t *testing.T) {
	tr := otrace.New(otrace.Config{SampleRate: 1, Seed: 42})
	eng := traceTestEngine(t, nil)

	root := tr.Root("POST /ingest", tr.DeriveID(1), 0)
	if err := eng.PushTraced(otrace.NewContext(context.Background(), root), root, tracePoints(64)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	root.End()

	deadline := time.Now().Add(5 * time.Second)
	for tr.Published() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("trace never published")
		}
		time.Sleep(time.Millisecond)
	}
	rs := tr.Recent(1)[0]
	counts := map[string]int{}
	batchIDs := map[otrace.SpanID]bool{}
	for _, sp := range rs.Spans {
		counts[sp.Kind]++
		if sp.Kind == "engine.batch" {
			batchIDs[sp.ID] = true
			if sp.Parent != rs.Root.ID {
				t.Fatalf("engine.batch parented to %v, want root %v", sp.Parent, rs.Root.ID)
			}
		}
	}
	nb := counts["engine.batch"]
	if nb == 0 || nb > 4 {
		t.Fatalf("engine.batch count %d, want 1..4 (one per nonempty shard)", nb)
	}
	for _, kind := range []string{"engine.queue_wait", "engine.process", "engine.sink"} {
		if counts[kind] != nb {
			t.Fatalf("%s count %d, want %d (one per batch)", kind, counts[kind], nb)
		}
	}
	// Decomposition children hang off their batch span, not the root.
	for _, sp := range rs.Spans {
		if sp.Kind == "engine.queue_wait" || sp.Kind == "engine.process" || sp.Kind == "engine.sink" {
			if !batchIDs[sp.Parent] {
				t.Fatalf("%s parented to %v, not an engine.batch span", sp.Kind, sp.Parent)
			}
		}
	}
}

// TestPushTracedSpanIDsDeterministic replays the identical traced
// workload on two engines and requires byte-identical span IDs — the
// acceptance criterion that makes sampled traces comparable across
// reruns. Span *IDs* must match even though shard goroutine scheduling
// differs; only durations may vary.
func TestPushTracedSpanIDsDeterministic(t *testing.T) {
	run := func() map[string]bool {
		tr := otrace.New(otrace.Config{SampleRate: 1, Seed: 42})
		eng := traceTestEngine(t, nil)
		pts := tracePoints(64)
		for req := 0; req < 3; req++ {
			root := tr.Root("POST /ingest", tr.DeriveID(uint64(req)), 0)
			if err := eng.PushTraced(context.Background(), root, pts[req*16:(req+1)*16]...); err != nil {
				t.Fatal(err)
			}
			root.End()
		}
		if err := eng.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for tr.Published() < 3 {
			if time.Now().After(deadline) {
				t.Fatal("traces never published")
			}
			time.Sleep(time.Millisecond)
		}
		ids := map[string]bool{}
		for _, rs := range tr.Recent(0) {
			ids[rs.Trace.String()+"/"+rs.Root.ID.String()] = true
			for _, sp := range rs.Spans {
				ids[rs.Trace.String()+"/"+sp.ID.String()] = true
			}
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replays produced %d vs %d span IDs", len(a), len(b))
	}
	for id := range a {
		if !b[id] {
			t.Fatalf("span ID %s missing from replay", id)
		}
	}
}

// TestDecompositionHistograms checks the three stream_*_seconds
// histograms fill in even without a span riding along, and that their
// batch counts agree with each other.
func TestDecompositionHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	eng := traceTestEngine(t, reg)
	if err := eng.Push(context.Background(), tracePoints(128)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := eng.hists.Load()
	if h == nil {
		t.Fatal("histograms not registered")
	}
	qw, pr, sk := h.queueWait.Count(), h.process.Count(), h.sink.Count()
	if qw == 0 || qw != pr || pr != sk {
		t.Fatalf("batch counts disagree: queue_wait=%d process=%d sink=%d", qw, pr, sk)
	}
}

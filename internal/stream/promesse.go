package stream

import (
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
)

// Promesse configures the windowed online speed smoother and acts as
// the factory for its per-user state.
//
// Spatial behaviour matches the batch mechanism (internal/core) with
// trimming disabled: incoming points closer than Epsilon to the last
// kept point are collapsed (stationary GPS jitter would otherwise
// inflate the path at a stop), and the kept path is resampled at a
// uniform Epsilon spacing, every output point lying on it. The first
// and last raw points are always published, so endpoints are preserved
// (a serving system cannot trim ends it has not seen yet; callers who
// need endpoint hiding drop the head and tail of each flushed trace).
//
// Temporal behaviour is where online necessarily differs from the
// paper: batch Promesse spreads timestamps uniformly over the whole
// trace, which needs the complete trace. Here each sample is held back
// until the user has moved Window meters past it, and publication
// timestamps are re-uniformized over the held-back samples: the stop
// time accumulated inside the window is spread evenly across it, so the
// published stream approaches constant speed over any window-sized
// stretch while latency and memory stay bounded by Window/Epsilon
// samples per user.
type Promesse struct {
	// Epsilon is the output spacing in meters. Must be positive.
	Epsilon float64
	// Window is the smoothing horizon in meters of path; samples are
	// withheld until the user has travelled Window meters past them.
	// Zero or negative means 10·Epsilon.
	Window float64
}

func (c Promesse) window() float64 {
	if c.Window <= 0 {
		return 10 * c.Epsilon
	}
	return c.Window
}

// New returns the streaming state for one user. It panics if Epsilon is
// not positive (registration-time misconfiguration, like Register).
func (c Promesse) New(user string) Mechanism {
	if c.Epsilon <= 0 {
		panic("stream: Promesse.Epsilon must be positive")
	}
	return &promesseState{eps: c.Epsilon, window: c.window()}
}

// sample is one resampled point awaiting release: its position, the
// instant the user actually passed it, and its path coordinate.
type sample struct {
	p trace.Point
	s float64
}

type promesseState struct {
	eps, window float64

	started    bool
	lastKept   trace.Point // last point incorporated into the path
	pending    trace.Point // last raw point seen, < eps from lastKept
	hasPending bool

	resid   float64 // path distance from the newest sample to lastKept
	procLen float64 // total kept-path length processed so far

	queue   []sample // samples not yet released
	lastPub time.Time
	hasPub  bool
}

// Push implements Mechanism.
func (st *promesseState) Push(p trace.Point) []trace.Point {
	if !st.started {
		st.started = true
		st.lastKept = p
		st.queue = append(st.queue, sample{p: p, s: 0})
		return st.release(false)
	}
	// Collapse stationary jitter exactly like the batch simplify step:
	// only points at least eps from the last kept point extend the path.
	if geo.FastDistance(st.lastKept.Point, p.Point) < st.eps {
		st.pending, st.hasPending = p, true
		return nil
	}
	st.advance(st.lastKept, p)
	st.lastKept, st.hasPending = p, false
	return st.release(false)
}

// Flush implements Mechanism: the trace ends here, so the pending tail
// joins the path, the exact final raw point is published, and every
// withheld sample is released. The state resets for a fresh trace.
func (st *promesseState) Flush() []trace.Point {
	if !st.started {
		return nil
	}
	if st.hasPending {
		st.advance(st.lastKept, st.pending)
		st.lastKept, st.hasPending = st.pending, false
	}
	if st.resid > 0 {
		// The final raw point is published verbatim (position and
		// passage time), preserving the trace's end.
		st.queue = append(st.queue, sample{p: st.lastKept, s: st.procLen})
	}
	out := st.release(true)
	*st = promesseState{eps: st.eps, window: st.window}
	return out
}

// advance extends the kept path with the segment a→b, generating
// samples every eps meters of path. Sample passage times are
// interpolated linearly in distance along the segment.
func (st *promesseState) advance(a, b trace.Point) {
	d := geo.Distance(a.Point, b.Point)
	for st.resid+d >= st.eps {
		need := st.eps - st.resid
		f := need / d
		pos := geo.Interpolate(a.Point, b.Point, f)
		t := a.Time.Add(time.Duration(float64(b.Time.Sub(a.Time)) * f))
		st.procLen += need
		st.queue = append(st.queue, sample{p: trace.Point{Point: pos, Time: t}, s: st.procLen})
		a = trace.Point{Point: pos, Time: t}
		d -= need
		st.resid = 0
	}
	st.resid += d
	st.procLen += d
}

// release pops every sample the path has moved Window meters past (all
// of them when draining), assigning publication timestamps that spread
// the window's time budget uniformly over the withheld samples: each
// released point gets lastPub + (T_newest − lastPub)/m, where m counts
// the samples still queued. Times are strictly increasing and the final
// drained sample publishes at exactly its passage time.
func (st *promesseState) release(all bool) []trace.Point {
	var out []trace.Point
	for len(st.queue) > 0 && (all || st.procLen-st.queue[0].s >= st.window) {
		m := len(st.queue)
		newest := st.queue[m-1].p.Time
		var pub time.Time
		if !st.hasPub {
			pub = st.queue[0].p.Time // trace start: exact first instant
		} else {
			pub = st.lastPub.Add(time.Duration(float64(newest.Sub(st.lastPub)) / float64(m)))
			if !pub.After(st.lastPub) {
				pub = st.lastPub.Add(time.Nanosecond)
			}
		}
		out = append(out, trace.Point{Point: st.queue[0].p.Point, Time: pub})
		st.lastPub, st.hasPub = pub, true
		st.queue = st.queue[1:]
	}
	return out
}

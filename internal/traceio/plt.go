package traceio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"mobipriv/internal/trace"
)

// DecodePLT reads one Geolife .plt trajectory record-at-a-time — the
// format of the real dataset the paper's evaluation plan names —
// invoking fn for every observation in file order without
// materializing the trace. The file starts with six header lines,
// followed by one observation per line:
//
//	lat,lng,0,altitude,days-since-1899,date,time
//
// e.g. "39.906631,116.385564,0,492,39745.1,2008-10-24,02:09:59".
// The user identifier is supplied by the caller (Geolife encodes it in
// the directory name) and passed through to fn. Timestamp deduplication
// is the batch reader's concern; the raw records stream as recorded.
func DecodePLT(r io.Reader, user string, fn RecordFunc) error {
	r, err := maybeGunzip(r)
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		if line <= 6 { // fixed-size preamble
			continue
		}
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 7 {
			return fmt.Errorf("%w: plt line %d: want 7 fields, got %d", ErrBadRecord, line, len(fields))
		}
		lat, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return fmt.Errorf("%w: plt line %d: lat: %v", ErrBadRecord, line, err)
		}
		lng, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("%w: plt line %d: lng: %v", ErrBadRecord, line, err)
		}
		ts, err := time.Parse("2006-01-02 15:04:05", fields[5]+" "+fields[6])
		if err != nil {
			return fmt.Errorf("%w: plt line %d: time: %v", ErrBadRecord, line, err)
		}
		if err := fn(user, trace.P(lat, lng, ts.UTC())); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read plt: %w", err)
	}
	return nil
}

// ReadPLT parses one Geolife .plt trajectory by batching the streaming
// decoder's records into a validated trace.
func ReadPLT(r io.Reader, user string) (*trace.Trace, error) {
	var pts []trace.Point
	if err := DecodePLT(r, user, func(_ string, p trace.Point) error {
		pts = append(pts, p)
		return nil
	}); err != nil {
		return nil, err
	}
	// Geolife occasionally repeats timestamps; keep the first of each run
	// so the trace invariant (strictly increasing) holds.
	pts = dedupeTimes(pts)
	tr, err := trace.New(user, pts)
	if err != nil {
		return nil, fmt.Errorf("plt: %w", err)
	}
	return tr, nil
}

func dedupeTimes(pts []trace.Point) []trace.Point {
	if len(pts) == 0 {
		return pts
	}
	out := pts[:1]
	for _, p := range pts[1:] {
		if p.Time.After(out[len(out)-1].Time) {
			out = append(out, p)
		}
	}
	return out
}

package traceio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"mobipriv/internal/trace"
)

// ReadPLT parses one trajectory in the Geolife .plt format — the format
// of the real dataset the paper's evaluation plan names. The file starts
// with six header lines, followed by one observation per line:
//
//	lat,lng,0,altitude,days-since-1899,date,time
//
// e.g. "39.906631,116.385564,0,492,39745.1,2008-10-24,02:09:59".
// The user identifier is supplied by the caller (Geolife encodes it in
// the directory name).
func ReadPLT(r io.Reader, user string) (*trace.Trace, error) {
	sc := bufio.NewScanner(r)
	var pts []trace.Point
	line := 0
	for sc.Scan() {
		line++
		if line <= 6 { // fixed-size preamble
			continue
		}
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 7 {
			return nil, fmt.Errorf("%w: plt line %d: want 7 fields, got %d", ErrBadRecord, line, len(fields))
		}
		lat, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: plt line %d: lat: %v", ErrBadRecord, line, err)
		}
		lng, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: plt line %d: lng: %v", ErrBadRecord, line, err)
		}
		ts, err := time.Parse("2006-01-02 15:04:05", fields[5]+" "+fields[6])
		if err != nil {
			return nil, fmt.Errorf("%w: plt line %d: time: %v", ErrBadRecord, line, err)
		}
		pts = append(pts, trace.P(lat, lng, ts.UTC()))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read plt: %w", err)
	}
	// Geolife occasionally repeats timestamps; keep the first of each run
	// so the trace invariant (strictly increasing) holds.
	pts = dedupeTimes(pts)
	tr, err := trace.New(user, pts)
	if err != nil {
		return nil, fmt.Errorf("plt: %w", err)
	}
	return tr, nil
}

func dedupeTimes(pts []trace.Point) []trace.Point {
	if len(pts) == 0 {
		return pts
	}
	out := pts[:1]
	for _, p := range pts[1:] {
		if p.Time.After(out[len(out)-1].Time) {
			out = append(out, p)
		}
	}
	return out
}

package traceio

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/trace"
)

var t0 = time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)

func sample(t *testing.T) *trace.Dataset {
	t.Helper()
	mk := func(user string, n int) *trace.Trace {
		pts := make([]trace.Point, n)
		for i := range pts {
			pts[i] = trace.P(45.76+float64(i)*0.001, 4.83, t0.Add(time.Duration(i)*time.Minute))
		}
		return trace.MustNew(user, pts)
	}
	return trace.MustNewDataset([]*trace.Trace{mk("alice", 4), mk("bob", 3)})
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualDatasets(t, d, got)
}

func TestCSVNoHeader(t *testing.T) {
	in := "alice,2015-06-30T08:00:00Z,45.76,4.83\nalice,2015-06-30T08:01:00Z,45.761,4.83\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.ByUser("alice").Len() != 2 {
		t.Fatalf("parsed %v", d)
	}
}

func TestCSVUnixSeconds(t *testing.T) {
	in := "alice,1435651200,45.76,4.83\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := time.Unix(1435651200, 0).UTC()
	if got := d.ByUser("alice").Start().Time; !got.Equal(want) {
		t.Fatalf("time = %v, want %v", got, want)
	}
}

func TestCSVUnsortedInputIsSorted(t *testing.T) {
	in := "u,2015-06-30T08:05:00Z,45.765,4.83\nu,2015-06-30T08:00:00Z,45.76,4.83\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	tr := d.ByUser("u")
	if !tr.Points[0].Time.Before(tr.Points[1].Time) {
		t.Fatal("reader must sort observations")
	}
}

func TestCSVBadRows(t *testing.T) {
	cases := map[string]string{
		"bad time":     "u,notatime,45,4\n",
		"bad lat":      "u,2015-06-30T08:00:00Z,x,4\n",
		"bad lng":      "u,2015-06-30T08:00:00Z,45,x\n",
		"out of range": "u,2015-06-30T08:00:00Z,95,4\n",
		"wrong fields": "u,2015-06-30T08:00:00Z,45\n",
		"dup time":     "u,2015-06-30T08:00:00Z,45,4\nu,2015-06-30T08:00:00Z,45.1,4\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(in)); err == nil {
				t.Fatalf("expected error for %q", in)
			}
		})
	}
}

func TestCSVBadRecordWrapped(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("u,notatime,45,4\n"))
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("error = %v, want ErrBadRecord", err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	d := sample(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualDatasets(t, d, got)
}

func TestJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{nope")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"user":"","t":"2015-06-30T08:00:00Z","lat":1,"lng":2}`)); err == nil {
		t.Fatal("empty user should fail dataset validation")
	}
}

func TestGeoJSON(t *testing.T) {
	d := sample(t)
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	var fc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &fc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if fc["type"] != "FeatureCollection" {
		t.Fatalf("type = %v", fc["type"])
	}
	features := fc["features"].([]any)
	if len(features) != 2 {
		t.Fatalf("features = %d, want 2", len(features))
	}
	// GeoJSON uses [lng, lat] ordering.
	geom := features[0].(map[string]any)["geometry"].(map[string]any)
	coords := geom["coordinates"].([]any)
	first := coords[0].([]any)
	if first[0].(float64) != 4.83 {
		t.Fatalf("first coordinate should be lng=4.83, got %v", first)
	}
}

func TestGeoJSONSinglePoint(t *testing.T) {
	d := trace.MustNewDataset([]*trace.Trace{
		trace.MustNew("solo", []trace.Point{trace.P(45, 4, t0)}),
	})
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LineString") {
		t.Fatal("single-point trace should still emit a LineString")
	}
}

func assertEqualDatasets(t *testing.T, want, got *trace.Dataset) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	for _, wt := range want.Traces() {
		gt := got.ByUser(wt.User)
		if gt == nil {
			t.Fatalf("missing user %q", wt.User)
		}
		if gt.Len() != wt.Len() {
			t.Fatalf("user %q: %d points, want %d", wt.User, gt.Len(), wt.Len())
		}
		for i := range wt.Points {
			if !gt.Points[i].Time.Equal(wt.Points[i].Time) {
				t.Fatalf("user %q point %d time %v, want %v", wt.User, i, gt.Points[i].Time, wt.Points[i].Time)
			}
			if d := geo.Distance(gt.Points[i].Point, wt.Points[i].Point); d > 1e-6 {
				t.Fatalf("user %q point %d moved %v m", wt.User, i, d)
			}
		}
	}
}

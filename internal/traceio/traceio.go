// Package traceio reads and writes mobility datasets in the formats used
// by the tools and examples:
//
//   - CSV: one observation per row — user,timestamp,lat,lng — with an
//     optional header. Timestamps are RFC 3339 or Unix seconds.
//   - JSONL: one JSON object per line {"user":..,"t":..,"lat":..,"lng":..}.
//   - GeoJSON: write-only export of traces as a FeatureCollection of
//     LineStrings for visual inspection in any GIS viewer.
//
// All readers validate the resulting dataset (sorted times, coordinate
// ranges, unique users) before returning it.
//
// Every reader and streaming decoder transparently decompresses
// gzip-compressed input, detected by the gzip magic bytes rather than
// the file name, so raw ".csv.gz"/".plt.gz" dumps feed straight in.
//
// Each text format also has a record-at-a-time streaming decoder
// (DecodeCSV, DecodeJSONL, DecodePLT) that invokes a callback per
// observation instead of materializing the dataset, so serving systems
// (cmd/mobiserve) and replay tools can process inputs larger than
// memory; the batch readers are thin accumulators over them.
package traceio

import (
	"bufio"
	"compress/gzip"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"mobipriv/internal/trace"
)

// maybeGunzip sniffs r for the gzip magic bytes and, when present,
// returns a decompressing reader; otherwise it returns the (buffered)
// input unchanged. Sniffing content instead of file names lets every
// decoder accept ".gz" dumps and compressed HTTP bodies alike.
func maybeGunzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil || len(magic) < 2 || magic[0] != 0x1f || magic[1] != 0x8b {
		// Short or unreadable input is handed through: the decoder
		// produces its own (better-contextualized) EOF or parse error.
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("traceio: gzip: %w", err)
	}
	return zr, nil
}

// ErrBadRecord reports a malformed input row; it is wrapped with line
// context.
var ErrBadRecord = errors.New("traceio: bad record")

// ErrStop, returned by a Decode* callback, stops decoding early without
// error — the streaming analogue of breaking out of a loop.
var ErrStop = errors.New("traceio: stop decoding")

// RecordFunc receives one observation at a time from the streaming
// decoders. Returning ErrStop ends decoding successfully; any other
// error aborts it.
type RecordFunc func(user string, p trace.Point) error

// csvHeader is the canonical header written by WriteCSV.
var csvHeader = []string{"user", "time", "lat", "lng"}

// WriteCSV writes the dataset as CSV with a header, one observation per
// row in user order, RFC 3339 timestamps.
func WriteCSV(w io.Writer, d *trace.Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	for _, tr := range d.Traces() {
		for _, p := range tr.Points {
			rec := []string{
				tr.User,
				p.Time.UTC().Format(time.RFC3339Nano),
				strconv.FormatFloat(p.Lat, 'f', -1, 64),
				strconv.FormatFloat(p.Lng, 'f', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("write record: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// DecodeCSV reads CSV record-at-a-time, invoking fn for every
// observation in file order without materializing the dataset — the
// entry point for replaying or ingesting files larger than memory. A
// header row (exactly the canonical column names) is skipped.
func DecodeCSV(r io.Reader, fn RecordFunc) error {
	r, err := maybeGunzip(r)
	if err != nil {
		return err
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	line := 0
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("read csv: %w", err)
		}
		line++
		if line == 1 && isHeader(rec) {
			continue
		}
		user := rec[0]
		ts, err := parseTime(rec[1])
		if err != nil {
			return fmt.Errorf("%w: line %d: %v", ErrBadRecord, line, err)
		}
		lat, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return fmt.Errorf("%w: line %d: lat: %v", ErrBadRecord, line, err)
		}
		lng, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return fmt.Errorf("%w: line %d: lng: %v", ErrBadRecord, line, err)
		}
		if err := fn(user, trace.P(lat, lng, ts)); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
}

// ReadCSV parses a dataset from CSV, batching the streaming decoder's
// records. Rows may appear in any order; observations are grouped by
// user and time-sorted.
func ReadCSV(r io.Reader) (*trace.Dataset, error) {
	byUser := make(map[string][]trace.Point)
	if err := DecodeCSV(r, func(user string, p trace.Point) error {
		byUser[user] = append(byUser[user], p)
		return nil
	}); err != nil {
		return nil, err
	}
	return buildDataset(byUser)
}

func isHeader(rec []string) bool {
	if len(rec) != len(csvHeader) {
		return false
	}
	for i, h := range csvHeader {
		if rec[i] != h {
			return false
		}
	}
	return true
}

func parseTime(s string) (time.Time, error) {
	if ts, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return ts, nil
	}
	if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(secs, 0).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("unparseable time %q", s)
}

func buildDataset(byUser map[string][]trace.Point) (*trace.Dataset, error) {
	users := make([]string, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Strings(users)
	traces := make([]*trace.Trace, 0, len(users))
	for _, u := range users {
		tr, err := trace.New(u, byUser[u])
		if err != nil {
			return nil, fmt.Errorf("user %q: %w", u, err)
		}
		traces = append(traces, tr)
	}
	return trace.NewDataset(traces)
}

// jsonlRecord is the wire format of one JSONL observation.
type jsonlRecord struct {
	User string    `json:"user"`
	Time time.Time `json:"t"`
	Lat  float64   `json:"lat"`
	Lng  float64   `json:"lng"`
}

// WriteJSONL writes one JSON object per observation.
func WriteJSONL(w io.Writer, d *trace.Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, tr := range d.Traces() {
		for _, p := range tr.Points {
			rec := jsonlRecord{User: tr.User, Time: p.Time.UTC(), Lat: p.Lat, Lng: p.Lng}
			if err := enc.Encode(rec); err != nil {
				return fmt.Errorf("encode jsonl: %w", err)
			}
		}
	}
	return bw.Flush()
}

// DecodeJSONL reads JSONL record-at-a-time, invoking fn for every
// observation in file order without materializing the dataset.
func DecodeJSONL(r io.Reader, fn RecordFunc) error {
	r, err := maybeGunzip(r)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(r)
	line := 0
	for {
		var rec jsonlRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("%w: line %d: %v", ErrBadRecord, line+1, err)
		}
		line++
		if err := fn(rec.User, trace.P(rec.Lat, rec.Lng, rec.Time)); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
}

// ReadJSONL parses a dataset from JSONL input, batching the streaming
// decoder's records.
func ReadJSONL(r io.Reader) (*trace.Dataset, error) {
	byUser := make(map[string][]trace.Point)
	if err := DecodeJSONL(r, func(user string, p trace.Point) error {
		byUser[user] = append(byUser[user], p)
		return nil
	}); err != nil {
		return nil, err
	}
	return buildDataset(byUser)
}

// WriteJSONLRecord writes one observation as a single JSONL line — the
// streaming counterpart of WriteJSONL, used by serving sinks.
func WriteJSONLRecord(w io.Writer, user string, p trace.Point) error {
	rec := jsonlRecord{User: user, Time: p.Time.UTC(), Lat: p.Lat, Lng: p.Lng}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("encode jsonl: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return err
	}
	return nil
}

// ReadFile reads a dataset file, routing on the extension after
// stripping a trailing ".gz": ".jsonl" -> ReadJSONL, ".plt" -> ReadPLT
// (the user is the file's base name), anything else -> ReadCSV.
// Compression is detected from the content, so a gzipped file without
// the ".gz" suffix also works.
func ReadFile(path string) (*trace.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open: %w", err)
	}
	defer f.Close()
	name := strings.TrimSuffix(path, ".gz")
	switch filepath.Ext(name) {
	case ".jsonl":
		return ReadJSONL(f)
	case ".plt":
		user := strings.TrimSuffix(filepath.Base(name), ".plt")
		tr, err := ReadPLT(f, user)
		if err != nil {
			return nil, err
		}
		return trace.NewDataset([]*trace.Trace{tr})
	default:
		return ReadCSV(f)
	}
}

// DecodeFile streams a dataset file record-at-a-time with the same
// routing as ReadFile.
func DecodeFile(path string, fn RecordFunc) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	defer f.Close()
	name := strings.TrimSuffix(path, ".gz")
	switch filepath.Ext(name) {
	case ".jsonl":
		return DecodeJSONL(f, fn)
	case ".plt":
		return DecodePLT(f, strings.TrimSuffix(filepath.Base(name), ".plt"), fn)
	default:
		return DecodeCSV(f, fn)
	}
}

// geojson types cover the tiny subset needed for LineString export.
type geojsonFeatureCollection struct {
	Type     string           `json:"type"`
	Features []geojsonFeature `json:"features"`
}

type geojsonFeature struct {
	Type       string          `json:"type"`
	Properties map[string]any  `json:"properties"`
	Geometry   geojsonGeometry `json:"geometry"`
}

type geojsonGeometry struct {
	Type        string       `json:"type"`
	Coordinates [][2]float64 `json:"coordinates"` // [lng, lat] per GeoJSON spec
}

// WriteGeoJSON exports every trace as a LineString feature tagged with
// the user identifier, point count and duration in seconds. Single-point
// traces are emitted as degenerate two-vertex lines so that viewers
// render them.
func WriteGeoJSON(w io.Writer, d *trace.Dataset) error {
	fc := geojsonFeatureCollection{Type: "FeatureCollection"}
	for _, tr := range d.Traces() {
		coords := make([][2]float64, 0, tr.Len())
		for _, p := range tr.Points {
			coords = append(coords, [2]float64{p.Lng, p.Lat})
		}
		if len(coords) == 1 {
			coords = append(coords, coords[0])
		}
		fc.Features = append(fc.Features, geojsonFeature{
			Type: "Feature",
			Properties: map[string]any{
				"user":       tr.User,
				"points":     tr.Len(),
				"durationS":  tr.Duration().Seconds(),
				"lengthM":    tr.Length(),
				"avgSpeedMS": tr.AverageSpeed(),
			},
			Geometry: geojsonGeometry{Type: "LineString", Coordinates: coords},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("encode geojson: %w", err)
	}
	return nil
}

package traceio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mobipriv/internal/trace"
)

// TestDecodeCSVStreamsRecords checks the record-at-a-time decoder sees
// every observation in file order and that the batch reader built on
// top of it still produces the same dataset.
func TestDecodeCSVStreamsRecords(t *testing.T) {
	d := sample(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	var users []string
	var count int
	if err := DecodeCSV(bytes.NewReader(buf.Bytes()), func(user string, p trace.Point) error {
		users = append(users, user)
		count++
		if err := p.Point.Validate(); err != nil {
			return err
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != d.TotalPoints() {
		t.Fatalf("decoded %d records, want %d", count, d.TotalPoints())
	}
	// WriteCSV emits in user order: alice's rows before bob's.
	if users[0] != "alice" || users[count-1] != "bob" {
		t.Errorf("record order %v", users)
	}
}

func TestDecodeJSONLEarlyStop(t *testing.T) {
	d := sample(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := DecodeJSONL(&buf, func(user string, p trace.Point) error {
		count++
		if count == 3 {
			return ErrStop
		}
		return nil
	}); err != nil {
		t.Fatalf("ErrStop surfaced as error: %v", err)
	}
	if count != 3 {
		t.Fatalf("decoded %d records after ErrStop, want 3", count)
	}
}

func TestDecodeCSVCallbackError(t *testing.T) {
	boom := errors.New("boom")
	err := DecodeCSV(strings.NewReader("alice,1435651200,45.76,4.83\n"), func(string, trace.Point) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want callback error", err)
	}
}

func TestDecodeCSVBadRecord(t *testing.T) {
	err := DecodeCSV(strings.NewReader("alice,notatime,45.76,4.83\n"), func(string, trace.Point) error {
		return nil
	})
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v, want ErrBadRecord", err)
	}
}

func TestDecodePLTStreamsRecords(t *testing.T) {
	const plt = `Geolife trajectory
WGS 84
Altitude is in Feet
Reserved 3
0,2,255,My Track,0,0,2,8421376
0
39.906631,116.385564,0,492,39745.09,2008-10-24,02:09:59
39.906632,116.385565,0,492,39745.10,2008-10-24,02:10:29
39.906633,116.385566,0,492,39745.11,2008-10-24,02:10:59
`
	var pts []trace.Point
	if err := DecodePLT(strings.NewReader(plt), "007", func(user string, p trace.Point) error {
		if user != "007" {
			t.Fatalf("user = %q", user)
		}
		pts = append(pts, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("decoded %d records, want 3", len(pts))
	}
	// The batch reader over the same decoder agrees.
	tr, err := ReadPLT(strings.NewReader(plt), "007")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 || !tr.Start().Point.Equal(pts[0].Point) {
		t.Fatalf("ReadPLT = %v", tr)
	}
}

func TestWriteJSONLRecordRoundTrip(t *testing.T) {
	d := sample(t)
	var buf bytes.Buffer
	for _, tr := range d.Traces() {
		for _, p := range tr.Points {
			if err := WriteJSONLRecord(&buf, tr.User, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualDatasets(t, d, got)
}

package traceio

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobipriv/internal/trace"
)

func gzipped(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func gzTestDataset(t *testing.T) *trace.Dataset {
	t.Helper()
	base := time.Date(2025, 2, 3, 4, 5, 6, 0, time.UTC)
	return trace.MustNewDataset([]*trace.Trace{
		trace.MustNew("a", []trace.Point{
			trace.P(48.85, 2.35, base),
			trace.P(48.86, 2.36, base.Add(time.Minute)),
		}),
		trace.MustNew("b", []trace.Point{trace.P(-33.9, 151.2, base.Add(time.Hour))}),
	})
}

func TestReadCSVGzip(t *testing.T) {
	d := gzTestDataset(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(gzipped(t, buf.Bytes())))
	if err != nil {
		t.Fatalf("ReadCSV(gzip): %v", err)
	}
	if got.Len() != d.Len() || got.TotalPoints() != d.TotalPoints() {
		t.Fatalf("got %v, want %v", got, d)
	}
	// Plain input still works through the same sniffing path.
	if _, err := ReadCSV(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadCSV(plain): %v", err)
	}
}

func TestReadJSONLGzip(t *testing.T) {
	d := gzTestDataset(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(gzipped(t, buf.Bytes())))
	if err != nil {
		t.Fatalf("ReadJSONL(gzip): %v", err)
	}
	if got.TotalPoints() != d.TotalPoints() {
		t.Fatalf("got %v, want %v", got, d)
	}
}

func TestReadPLTGzip(t *testing.T) {
	plt := strings.Join([]string{
		"Geolife trajectory", "WGS 84", "Altitude is in Feet", "Reserved 3",
		"0,2,255,My Track,0,0,2,8421376", "0",
		"39.906631,116.385564,0,492,39745.1,2008-10-24,02:09:59",
		"39.906702,116.385600,0,492,39745.1,2008-10-24,02:10:29",
	}, "\r\n")
	tr, err := ReadPLT(bytes.NewReader(gzipped(t, []byte(plt))), "u17")
	if err != nil {
		t.Fatalf("ReadPLT(gzip): %v", err)
	}
	if tr.Len() != 2 || tr.User != "u17" {
		t.Fatalf("got %v, want 2-point u17", tr)
	}
}

func TestGzipEmptyAndShortInput(t *testing.T) {
	// Sub-2-byte inputs must not error in the sniffer itself.
	if d, err := ReadCSV(bytes.NewReader(nil)); err != nil || d.Len() != 0 {
		t.Fatalf("empty input: d=%v err=%v", d, err)
	}
	if _, err := ReadCSV(bytes.NewReader([]byte("x"))); err == nil {
		t.Fatal("1-byte garbage: want a CSV error, got nil")
	}
}

func TestReadFileRouting(t *testing.T) {
	d := gzTestDataset(t)
	dir := t.TempDir()

	var csvBuf, jsonlBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jsonlBuf, d); err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{
		"d.csv":       csvBuf.Bytes(),
		"d.csv.gz":    gzipped(t, csvBuf.Bytes()),
		"d.jsonl":     jsonlBuf.Bytes(),
		"d.jsonl.gz":  gzipped(t, jsonlBuf.Bytes()),
		"sneaky.csv":  gzipped(t, csvBuf.Bytes()), // gz content, no .gz suffix
		"untyped.dat": csvBuf.Bytes(),
	}
	for name, data := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", name, err)
		}
		if got.TotalPoints() != d.TotalPoints() {
			t.Errorf("ReadFile(%s) = %v, want %d points", name, got, d.TotalPoints())
		}
	}

	// DecodeFile streams the same records.
	n := 0
	if err := DecodeFile(filepath.Join(dir, "d.csv.gz"), func(string, trace.Point) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != d.TotalPoints() {
		t.Errorf("DecodeFile yielded %d records, want %d", n, d.TotalPoints())
	}
}

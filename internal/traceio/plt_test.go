package traceio

import (
	"strings"
	"testing"
	"time"
)

const pltHeader = `Geolife trajectory
WGS 84
Altitude is in Feet
Reserved 3
0,2,255,My Track,0,0,2,8421376
0
`

func TestReadPLT(t *testing.T) {
	in := pltHeader +
		"39.906631,116.385564,0,492,39745.0902662037,2008-10-24,02:09:59\n" +
		"39.906554,116.385625,0,492,39745.0903240741,2008-10-24,02:10:04\n" +
		"39.906478,116.385683,0,492,39745.0903819444,2008-10-24,02:10:09\n"
	tr, err := ReadPLT(strings.NewReader(in), "geolife000")
	if err != nil {
		t.Fatal(err)
	}
	if tr.User != "geolife000" || tr.Len() != 3 {
		t.Fatalf("trace = %v", tr)
	}
	want := time.Date(2008, 10, 24, 2, 9, 59, 0, time.UTC)
	if !tr.Start().Time.Equal(want) {
		t.Fatalf("start = %v, want %v", tr.Start().Time, want)
	}
	if tr.Start().Lat != 39.906631 {
		t.Fatalf("lat = %v", tr.Start().Lat)
	}
}

func TestReadPLTDuplicateTimestamps(t *testing.T) {
	in := pltHeader +
		"39.906631,116.385564,0,492,39745.1,2008-10-24,02:09:59\n" +
		"39.906554,116.385625,0,492,39745.1,2008-10-24,02:09:59\n" + // duplicate
		"39.906478,116.385683,0,492,39745.2,2008-10-24,02:10:09\n"
	tr, err := ReadPLT(strings.NewReader(in), "u")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("deduped trace has %d points, want 2", tr.Len())
	}
}

func TestReadPLTBadInput(t *testing.T) {
	cases := map[string]string{
		"bad fields": pltHeader + "39.9,116.3,0,492\n",
		"bad lat":    pltHeader + "xx,116.3,0,492,39745.1,2008-10-24,02:09:59\n",
		"bad lng":    pltHeader + "39.9,xx,0,492,39745.1,2008-10-24,02:09:59\n",
		"bad time":   pltHeader + "39.9,116.3,0,492,39745.1,notadate,02:09:59\n",
		"empty body": pltHeader,
		"out of range": pltHeader +
			"99.9,116.3,0,492,39745.1,2008-10-24,02:09:59\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadPLT(strings.NewReader(in), "u"); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

func TestReadPLTSkipsBlankLines(t *testing.T) {
	in := pltHeader +
		"39.906631,116.385564,0,492,39745.1,2008-10-24,02:09:59\n" +
		"\n" +
		"39.906478,116.385683,0,492,39745.2,2008-10-24,02:10:09\n"
	tr, err := ReadPLT(strings.NewReader(in), "u")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("points = %d, want 2", tr.Len())
	}
}

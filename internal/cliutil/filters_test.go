package cliutil

import (
	"testing"
	"time"

	"mobipriv/internal/store"
	"mobipriv/internal/trace"
)

func TestParseBBox(t *testing.T) {
	box, err := ParseBBox("45.7,4.8,45.8,4.9")
	if err != nil {
		t.Fatal(err)
	}
	if box.MinLat != 45.7 || box.MinLng != 4.8 || box.MaxLat != 45.8 || box.MaxLng != 4.9 {
		t.Fatalf("box = %+v", box)
	}
	if box, err := ParseBBox(""); err != nil || !box.IsEmpty() {
		t.Fatalf("empty bbox: %v, %v", box, err)
	}
	// Corners in either order normalize.
	box, err = ParseBBox("45.8,4.9,45.7,4.8")
	if err != nil {
		t.Fatal(err)
	}
	if box.MinLat != 45.7 || box.MaxLat != 45.8 {
		t.Fatalf("unnormalized box: %+v", box)
	}
	for _, bad := range []string{"1,2,3", "a,b,c,d", "1,2,3,4,5"} {
		if _, err := ParseBBox(bad); err == nil {
			t.Errorf("ParseBBox(%q) accepted", bad)
		}
	}
}

func TestParseWhen(t *testing.T) {
	ts, err := ParseWhen("2025-06-01T08:00:00Z")
	if err != nil || ts.UTC() != time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC) {
		t.Fatalf("rfc3339: %v, %v", ts, err)
	}
	ts, err = ParseWhen("1735725600")
	if err != nil || ts.Unix() != 1735725600 {
		t.Fatalf("unix: %v, %v", ts, err)
	}
	if ts, err := ParseWhen(""); err != nil || !ts.IsZero() {
		t.Fatalf("empty: %v, %v", ts, err)
	}
	if _, err := ParseWhen("yesterday"); err == nil {
		t.Error("garbage time accepted")
	}
}

func TestScanFilters(t *testing.T) {
	opts, err := ScanFilters("1,2,3,4", "100", "200", "a,b")
	if err != nil {
		t.Fatal(err)
	}
	if !HasFilters(opts) {
		t.Fatal("filters not detected")
	}
	if len(opts.Users) != 2 || opts.From.Unix() != 100 || opts.To.Unix() != 200 || opts.BBox.IsEmpty() {
		t.Fatalf("opts = %+v", opts)
	}
	empty, err := ScanFilters("", "", "", "")
	if err != nil || HasFilters(empty) {
		t.Fatalf("empty filters: %+v, %v", empty, err)
	}
	if _, err := ScanFilters("bad", "", "", ""); err == nil {
		t.Error("bad bbox accepted")
	}
	if _, err := ScanFilters("", "bad", "", ""); err == nil {
		t.Error("bad from accepted")
	}
	if _, err := ScanFilters("", "", "bad", ""); err == nil {
		t.Error("bad to accepted")
	}
}

func TestFilterDataset(t *testing.T) {
	base := time.Date(2025, 6, 1, 8, 0, 0, 0, time.UTC)
	mk := func(user string, lat float64, n int) *trace.Trace {
		pts := make([]trace.Point, n)
		for i := range pts {
			pts[i] = trace.P(lat, 4.8+float64(i)/1e3, base.Add(time.Duration(i)*time.Minute))
		}
		return trace.MustNew(user, pts)
	}
	d := trace.MustNewDataset([]*trace.Trace{
		mk("in", 45.75, 10),
		mk("out", 48.00, 10),
	})

	// No filters: the same dataset comes straight back.
	same, err := FilterDataset(d, store.ScanOptions{})
	if err != nil || same != d {
		t.Fatalf("no-op filter: %v, %v", same, err)
	}

	// Time window is inclusive on both ends, like the store scan.
	from, to := base.Add(2*time.Minute), base.Add(5*time.Minute)
	got, err := FilterDataset(d, store.ScanOptions{From: from, To: to})
	if err != nil {
		t.Fatal(err)
	}
	if tr := got.ByUser("in"); tr == nil || tr.Len() != 4 {
		t.Fatalf("time filter kept %v, want 4 inclusive points", got.ByUser("in"))
	}

	// A bbox that excludes user "out" entirely drops the trace.
	box, _ := ParseBBox("45.0,4.0,46.0,5.0")
	got, err = FilterDataset(d, store.ScanOptions{BBox: box})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.ByUser("out") != nil {
		t.Fatalf("bbox filter kept %v", got.Users())
	}

	// User filter.
	got, err = FilterDataset(d, store.ScanOptions{Users: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.ByUser("out") == nil {
		t.Fatalf("user filter kept %v", got.Users())
	}
}

package cliutil

import "flag"

// Verbose registers the shared -verbose flag on fs. Every command
// spells it identically: verbose output is per-run statistics (scan
// pruning, cache behavior, peak memory, stage reports) printed to
// stderr, never a change to the command's stdout contract.
func Verbose(fs *flag.FlagSet) *bool {
	return fs.Bool("verbose", false, "print per-run statistics (scan pruning, cache, peak memory) to stderr")
}

// Package cliutil holds the small helpers shared by the command-line
// tools: parsing the -bbox/-from/-to/-users filter flags into
// store.ScanOptions and applying the same filter semantics to
// in-memory datasets, so the batch and store-native paths of mobieval
// and mobianon select identical subsets.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/store"
	"mobipriv/internal/trace"
)

// ParseBBox parses "minLat,minLng,maxLat,maxLng". An empty string
// yields the empty (match-everything) box.
func ParseBBox(s string) (geo.BBox, error) {
	if s == "" {
		return geo.BBox{}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geo.BBox{}, fmt.Errorf("-bbox wants minLat,minLng,maxLat,maxLng")
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geo.BBox{}, fmt.Errorf("-bbox component %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return geo.NewBBox(geo.Point{Lat: vals[0], Lng: vals[1]}, geo.Point{Lat: vals[2], Lng: vals[3]}), nil
}

// ParseWhen parses an RFC 3339 timestamp or Unix seconds; empty means
// "no bound" (the zero time).
func ParseWhen(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if ts, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return ts, nil
	}
	if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(secs, 0).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("unparseable time %q", s)
}

// ParseUsers splits a comma-separated user list; empty means no user
// filter (nil).
func ParseUsers(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// ScanFilters parses the four filter flags into a store.ScanOptions
// carrying only the filters (no worker/cache tuning).
func ScanFilters(bbox, from, to, users string) (store.ScanOptions, error) {
	var opts store.ScanOptions
	var err error
	if opts.BBox, err = ParseBBox(bbox); err != nil {
		return opts, err
	}
	if opts.From, err = ParseWhen(from); err != nil {
		return opts, fmt.Errorf("-from: %w", err)
	}
	if opts.To, err = ParseWhen(to); err != nil {
		return opts, fmt.Errorf("-to: %w", err)
	}
	opts.Users = ParseUsers(users)
	return opts, nil
}

// HasFilters reports whether opts carries any bbox/time/user filter.
func HasFilters(opts store.ScanOptions) bool {
	return !opts.BBox.IsEmpty() || !opts.From.IsZero() || !opts.To.IsZero() || opts.Users != nil
}

// FilterDataset applies the ScanOptions filter semantics to an
// in-memory dataset: keep only the listed users (when set) and, per
// point, the shared store.ScanOptions.Matches predicate — the exact
// filter a pruned store scan applies, so a filtered batch run sees the
// same subset as a filtered store-native run. Traces whose every point
// is filtered away are dropped.
func FilterDataset(d *trace.Dataset, opts store.ScanOptions) (*trace.Dataset, error) {
	if !HasFilters(opts) {
		return d, nil
	}
	var users map[string]bool
	if opts.Users != nil {
		users = make(map[string]bool, len(opts.Users))
		for _, u := range opts.Users {
			users[u] = true
		}
	}
	var kept []*trace.Trace
	for _, tr := range d.Traces() {
		if users != nil && !users[tr.User] {
			continue
		}
		var pts []trace.Point
		for _, p := range tr.Points {
			if opts.Matches(p) {
				pts = append(pts, p)
			}
		}
		if len(pts) == 0 {
			continue
		}
		ftr, err := trace.New(tr.User, pts)
		if err != nil {
			return nil, err
		}
		kept = append(kept, ftr)
	}
	return trace.NewDataset(kept)
}

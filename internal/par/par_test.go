package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if w := Workers(context.Background()); w != 1 {
		t.Fatalf("Workers(plain ctx) = %d, want 1", w)
	}
	if w := Workers(WithWorkers(context.Background(), 7)); w != 7 {
		t.Fatalf("Workers = %d, want 7", w)
	}
	if w := Workers(WithWorkers(context.Background(), 0)); w < 1 {
		t.Fatalf("Workers(WithWorkers 0) = %d, want >= 1 (per-CPU)", w)
	}
}

func TestMapCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		ctx := WithWorkers(context.Background(), workers)
		const n = 100
		hit := make([]int32, n)
		if err := Map(ctx, n, func(i int) error {
			atomic.AddInt32(&hit[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 8} {
		ctx := WithWorkers(context.Background(), workers)
		err := Map(ctx, 50, func(i int) error {
			if i == 25 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestMapHonorsCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(WithWorkers(context.Background(), workers))
		cancel()
		err := Map(ctx, 10, func(i int) error { return nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	if err := Map(context.Background(), 0, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

// Package par provides the small parallel-execution substrate shared by
// the anonymization mechanisms: a context-carried worker count and a
// deterministic index-parallel map.
//
// Parallelism is a property of the runtime, not of any one mechanism.
// The public Runner (mobipriv.NewRunner with mobipriv.WithWorkers)
// stores the worker budget in the context; mechanisms and stages that
// contain embarrassingly parallel per-trace work fan it out with Map.
// Because every item writes only to its own index, the output of a
// parallel run is byte-identical to the serial run.
//
// The invariant every caller relies on: Map never makes determinism
// the worker count's problem. Work items must be independent (their
// only shared state the indexed output slots), and any randomness must
// be derived per item (the mechanisms derive RNGs from (seed, user)),
// so the same inputs produce the same outputs at any worker count.
// This is what lets the store scanner (internal/store), the streaming
// engine (internal/stream) and the store-native Runner path all share
// one substrate.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

type workersKey struct{}

// WithWorkers returns a context carrying a worker budget of n. A value
// of n <= 0 means "one worker per CPU".
func WithWorkers(ctx context.Context, n int) context.Context {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return context.WithValue(ctx, workersKey{}, n)
}

// Workers reports the worker budget carried by the context; a context
// without one yields 1 (serial), so all existing call paths stay
// single-threaded unless a Runner opted in.
func Workers(ctx context.Context) int {
	if n, ok := ctx.Value(workersKey{}).(int); ok && n > 0 {
		return n
	}
	return 1
}

// PeakAdd atomically increments current and folds the new value into
// the peak high-water mark — the lock-free gauge behind the
// "peak buffered users" / "peak in flight" stats of the store scanner
// and the store-native Runner path. Decrement with a plain
// atomic.AddInt64(current, -1).
func PeakAdd(current, peak *int64) {
	v := atomic.AddInt64(current, 1)
	for {
		p := atomic.LoadInt64(peak)
		if v <= p || atomic.CompareAndSwapInt64(peak, p, v) {
			return
		}
	}
}

// Map runs fn(0) .. fn(n-1) using the context's worker budget and
// returns the first error encountered (cancelling the remaining work).
// fn must be safe to call concurrently and should write its result into
// a caller-owned slot at its index; Map itself imposes no ordering, the
// indexed slots do.
func Map(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := Workers(ctx)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := cctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Prefer the outer context's error so cancellation surfaces as
	// context.Canceled rather than a wrapped worker error.
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

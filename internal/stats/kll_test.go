package stats

import (
	"math"
	"sort"
	"testing"

	"mobipriv/internal/rng"
)

// kllValues derives a deterministic pseudo-random sample.
func kllValues(n int, seed uint64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(rng.Mix(seed+uint64(i)*rng.Gamma)>>11) * 0x1p-53 * 1000
	}
	return out
}

// TestKLLExactRegime pins the headline contract: while n <= K the
// sketch returns exact lower order statistics, bit-identical to
// sorting the sample.
func TestKLLExactRegime(t *testing.T) {
	vals := kllValues(100, 7)
	s := NewKLL(256)
	for _, v := range vals {
		s.Add(v)
	}
	if !s.Exact() {
		t.Fatalf("n=%d k=%d should be exact", s.Count(), s.K())
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		want := sorted[int(q*float64(len(sorted)-1))]
		if got := s.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want exact %v", q, got, want)
		}
	}
}

// TestKLLOrderInvarianceExact pins merge-order invariance in the exact
// regime: any partition of the sample over any number of sketches,
// merged in any order, yields bit-identical quantiles.
func TestKLLOrderInvarianceExact(t *testing.T) {
	vals := kllValues(200, 3)
	ref := NewKLL(256)
	for _, v := range vals {
		ref.Add(v)
	}

	// Partition into 3 sketches round-robin, merge in reversed order,
	// and feed one partition in reverse to vary intra-sketch order too.
	parts := make([]*KLL, 3)
	for i := range parts {
		parts[i] = NewKLL(256)
	}
	for i, v := range vals {
		if i%3 == 1 {
			continue
		}
		parts[i%3].Add(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		if i%3 == 1 {
			parts[1].Add(vals[i])
		}
	}
	merged := NewKLL(256)
	for i := len(parts) - 1; i >= 0; i-- {
		merged.Merge(parts[i])
	}
	if !merged.Exact() || merged.Count() != ref.Count() {
		t.Fatalf("merged: exact=%v n=%d, want exact n=%d", merged.Exact(), merged.Count(), ref.Count())
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		if a, b := ref.Quantile(q), merged.Quantile(q); a != b {
			t.Fatalf("Quantile(%v): sequential %v != partitioned %v", q, a, b)
		}
	}
}

// TestKLLDeterministicBeyondCapacity pins that compaction is canonical:
// the same stream always produces the identical sketch, and quantile
// rank error stays small on a smooth sample.
func TestKLLDeterministicBeyondCapacity(t *testing.T) {
	vals := kllValues(10000, 11)
	a, b := NewKLL(64), NewKLL(64)
	for _, v := range vals {
		a.Add(v)
		b.Add(v)
	}
	if a.Exact() {
		t.Fatal("10000 items in a K=64 sketch cannot be exact")
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if qa, qb := a.Quantile(q), b.Quantile(q); qa != qb {
			t.Fatalf("same stream diverged at q=%v: %v vs %v", q, qa, qb)
		}
	}

	// Rank-error bound: the returned value's true rank should be within
	// a few percent of the requested rank (deterministic compaction is
	// biased but bounded).
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got := a.Quantile(q)
		rank := 0
		for rank < len(sorted) && sorted[rank] < got {
			rank++
		}
		if err := math.Abs(float64(rank)/float64(len(sorted)) - q); err > 0.10 {
			t.Errorf("q=%v: value %v has true rank %.3f (error %.3f > 0.10)", q, got, float64(rank)/float64(len(sorted)), err)
		}
	}
}

// TestKLLMergeBeyondCapacity sanity-checks that merging compacted
// sketches still bounds rank error and conserves the count.
func TestKLLMergeBeyondCapacity(t *testing.T) {
	vals := kllValues(8000, 23)
	parts := make([]*KLL, 4)
	for i := range parts {
		parts[i] = NewKLL(64)
	}
	for i, v := range vals {
		parts[i%4].Add(v)
	}
	m := NewKLL(64)
	for _, p := range parts {
		m.Merge(p)
	}
	if m.Count() != uint64(len(vals)) {
		t.Fatalf("count %d, want %d", m.Count(), len(vals))
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.25, 0.5, 0.75} {
		got := m.Quantile(q)
		rank := 0
		for rank < len(sorted) && sorted[rank] < got {
			rank++
		}
		if err := math.Abs(float64(rank)/float64(len(sorted)) - q); err > 0.15 {
			t.Errorf("q=%v: true rank %.3f (error %.3f > 0.15)", q, float64(rank)/float64(len(sorted)), err)
		}
	}
}

// TestKLLEdgeCases covers the empty sketch, NaN, and tiny capacities.
func TestKLLEdgeCases(t *testing.T) {
	s := NewKLL(0) // raised to 2
	if s.K() != 2 {
		t.Fatalf("K = %d, want 2", s.K())
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	s.Add(math.NaN())
	if s.Count() != 0 {
		t.Fatal("NaN must be ignored")
	}
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	if s.Exact() {
		t.Fatal("100 items in K=2 cannot be exact")
	}
	if q := s.Quantile(0.5); q < 10 || q > 90 {
		t.Fatalf("K=2 median %v wildly off", q)
	}
	s.Merge(nil) // must not panic
}

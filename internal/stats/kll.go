package stats

import (
	"math"
	"sort"
)

// KLL is a fixed-size mergeable quantile sketch in the KLL family
// (Karnin–Lang–Liberty), with one deliberate deviation: compaction is
// canonical and deterministic instead of randomized. Each level holds
// at most K items of weight 2^level; when a level overflows it is
// sorted and the odd-ranked items are promoted one level up (doubling
// their weight) while the even-ranked items are discarded. Because the
// compaction of a buffer is a pure function of its contents, two
// sketches fed the same stream are bit-identical — there is no seed to
// thread and no run-to-run jitter — at the cost of the randomized
// variant's unbiasedness (the deterministic rank error stays bounded
// by O(n/K) per level, amortized across levels).
//
// The property the evaluation accumulators build on is the exact
// regime: until more than K items have been added (Exact() reports
// this), no compaction has happened and the sketch's state is the full
// multiset of inputs. In that regime quantiles are exact order
// statistics and — since a multiset has no order — Add and Merge
// commute bit-identically: any partition of the inputs over any number
// of sketches, merged in any order, yields the same state. Beyond the
// exact regime the sketch remains deterministic per stream and its
// quantiles ε-bounded, but different partitions may compact different
// buffers, so callers that require strict merge-order invariance (the
// accumulator contract in internal/metrics) should consult the sketch
// only while Exact() holds and fall back to an order-invariant summary
// afterwards. Exact() itself is order-invariant: it depends only on
// the total count, never on how the inputs were partitioned.
type KLL struct {
	k      int
	n      uint64
	levels [][]float64 // levels[l] items carry weight 1<<l
}

// DefaultKLLK is the per-level capacity used by the evaluation
// accumulators: large enough that the paper-scale runs (tens to
// hundreds of pooled samples) stay in the exact regime, small enough
// that worst-case memory is a few KB per sketch.
const DefaultKLLK = 256

// NewKLL returns an empty sketch with per-level capacity k (minimum 2;
// values below are raised).
func NewKLL(k int) *KLL {
	if k < 2 {
		k = 2
	}
	return &KLL{k: k, levels: [][]float64{make([]float64, 0, k+1)}}
}

// K reports the per-level capacity.
func (s *KLL) K() int { return s.k }

// Count reports the total number of items added (including through
// merges).
func (s *KLL) Count() uint64 { return s.n }

// Exact reports whether the sketch still holds every input verbatim —
// true exactly while Count() <= K(). In this regime Quantile returns
// exact order statistics and the state is a pure function of the input
// multiset.
func (s *KLL) Exact() bool { return s.n <= uint64(s.k) }

// Add folds one value into the sketch. NaN is ignored (a quantile over
// NaN is meaningless and one poisoned sample must not wreck the
// sketch).
func (s *KLL) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.n++
	s.levels[0] = append(s.levels[0], v)
	s.compact()
}

// Merge folds another sketch into s. The two must share the same
// capacity K; merging concatenates the per-level buffers and
// recompacts canonically. While the combined count stays within K the
// result is the exact multiset union, identical whatever the merge
// order.
func (s *KLL) Merge(o *KLL) {
	if o == nil || o.n == 0 {
		return
	}
	for len(s.levels) < len(o.levels) {
		s.levels = append(s.levels, nil)
	}
	for l, buf := range o.levels {
		s.levels[l] = append(s.levels[l], buf...)
	}
	s.n += o.n
	s.compact()
}

// compact cascades the canonical compaction: the lowest overfull level
// is sorted, its odd-ranked items promoted (weight doubles), its
// even-ranked items discarded. An odd-length buffer keeps its largest
// item in place so no weight is lost.
func (s *KLL) compact() {
	for l := 0; l < len(s.levels); l++ {
		if len(s.levels[l]) <= s.k {
			continue
		}
		buf := s.levels[l]
		sort.Float64s(buf)
		keepTop := len(buf)%2 == 1
		pairs := len(buf) / 2
		if l+1 == len(s.levels) {
			s.levels = append(s.levels, make([]float64, 0, s.k+1))
		}
		for i := 0; i < pairs; i++ {
			s.levels[l+1] = append(s.levels[l+1], buf[2*i+1])
		}
		if keepTop {
			buf[0] = buf[len(buf)-1]
			s.levels[l] = buf[:1]
		} else {
			s.levels[l] = buf[:0]
		}
	}
}

// Quantile returns the q-th quantile (q clamped to [0, 1]) as the
// weighted lower order statistic at rank floor(q*(n-1)); 0 on an empty
// sketch. In the exact regime this is the exact sample quantile (lower
// order statistic, matching the histogram accumulators' rank rule).
func (s *KLL) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	type wv struct {
		v float64
		w uint64
	}
	items := make([]wv, 0, s.k)
	for l, buf := range s.levels {
		for _, v := range buf {
			items = append(items, wv{v: v, w: 1 << uint(l)})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	// Compaction preserves total weight exactly (each promoted item
	// doubles while its discarded partner's weight vanishes), so total
	// equals n; summing here keeps the rank honest regardless.
	var total uint64
	for _, it := range items {
		total += it.w
	}
	rank := uint64(q * float64(total-1))
	var cum uint64
	for _, it := range items {
		cum += it.w
		if cum > rank {
			return it.v
		}
	}
	return items[len(items)-1].v
}

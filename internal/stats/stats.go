// Package stats provides the small set of descriptive statistics used by
// the evaluation harness: moments, quantiles, histograms, empirical CDFs
// and rank correlation. Everything operates on float64 slices and is
// deliberately allocation-light.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty reports a statistic requested over an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance, or 0 for samples of size < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest value; it panics on an empty sample.
func Min(xs []float64) float64 {
	mustNonEmpty(xs)
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value; it panics on an empty sample.
func Max(xs []float64) float64 {
	mustNonEmpty(xs)
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func mustNonEmpty(xs []float64) {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
}

// Quantile returns the q-th quantile (q in [0,1]) of the sample using
// linear interpolation between order statistics (type-7, the default of
// R and NumPy). It panics on an empty sample and on q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	mustNonEmpty(xs)
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary holds the descriptive statistics reported in experiment tables.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary in a single sort. It returns the zero
// Summary for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(sorted),
		Mean:   Mean(sorted),
		StdDev: StdDev(sorted),
		Min:    sorted[0],
		P25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		P75:    quantileSorted(sorted, 0.75),
		P95:    quantileSorted(sorted, 0.95),
		P99:    quantileSorted(sorted, 0.99),
		Max:    sorted[len(sorted)-1],
	}
}

// String implements fmt.Stringer with a compact one-line format.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample (copied).
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Inverse returns the smallest sample value v with P(X <= v) >= p.
func (c *CDF) Inverse(p float64) float64 {
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Series samples the CDF at n evenly spaced probabilities for plotting,
// returning (value, probability) pairs.
func (c *CDF) Series(n int) [][2]float64 {
	if n < 2 {
		n = 2
	}
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1)
		out[i] = [2]float64{c.Inverse(p), p}
	}
	return out
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Lo, Hi float64 // range covered
	Width  float64 // bin width
	Counts []int   // one per bin
	Under  int     // values below Lo
	Over   int     // values at or above Hi
}

// NewHistogram bins the sample into n equal bins over [lo, hi).
func NewHistogram(xs []float64, lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram bins %d <= 0", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Width: (hi - lo) / float64(n), Counts: make([]int, n)}
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			i := int((x - lo) / h.Width)
			if i >= n { // guard against floating-point edge
				i = n - 1
			}
			h.Counts[i]++
		}
	}
	return h, nil
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	var n int
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples. It returns 0 when either sample is constant or shorter than 2.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// KendallTau returns the Kendall rank correlation (tau-b, which corrects
// for ties) of two equal-length samples; used to compare popularity
// rankings before and after anonymization. Identical samples give 1 even
// in the presence of tied values. Returns 0 for samples shorter than 2
// or when either sample is constant.
func KendallTau(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) != n || n < 2 {
		return 0
	}
	var concordant, discordant, tiesX, tiesY int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a := xs[i] - xs[j]
			b := ys[i] - ys[j]
			switch {
			case a == 0 && b == 0:
				tiesX++
				tiesY++
			case a == 0:
				tiesX++
			case b == 0:
				tiesY++
			case a*b > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	denom := math.Sqrt(float64(pairs-tiesX) * float64(pairs-tiesY))
	if denom == 0 {
		return 0
	}
	tau := float64(concordant-discordant) / denom
	// Clamp floating-point overshoot so that perfect agreement is exactly ±1.
	if tau > 1 {
		tau = 1
	} else if tau < -1 {
		tau = -1
	}
	return tau
}

package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	defer func() {
		if recover() == nil {
			t.Error("Min(nil) should panic")
		}
	}()
	Min(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median = %v, want 2.5", got)
	}
	if got := Quantile([]float64{42}, 0.7); got != 42 {
		t.Errorf("Quantile singleton = %v, want 42", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Quantile must not sort its input in place")
	}
}

func TestSummarize(t *testing.T) {
	if got := Summarize(nil); got.N != 0 {
		t.Fatalf("empty Summarize = %+v", got)
	}
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) // 0..100
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 || s.Median != 50 || s.Mean != 50 {
		t.Errorf("Summary = %+v", s)
	}
	if s.P25 != 25 || s.P75 != 75 || s.P95 != 95 || s.P99 != 99 {
		t.Errorf("quantiles = %+v", s)
	}
	if s.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestCDF(t *testing.T) {
	if _, err := NewCDF(nil); err == nil {
		t.Fatal("NewCDF(nil) should fail")
	}
	c, err := NewCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if got := c.Inverse(0); got != 1 {
		t.Errorf("Inverse(0) = %v", got)
	}
	if got := c.Inverse(1); got != 3 {
		t.Errorf("Inverse(1) = %v", got)
	}
	if got := c.Inverse(0.5); got != 2 {
		t.Errorf("Inverse(0.5) = %v", got)
	}
	series := c.Series(5)
	if len(series) != 5 || series[0][1] != 0 || series[4][1] != 1 {
		t.Errorf("Series = %v", series)
	}
	if got := c.Series(1); len(got) != 2 {
		t.Errorf("Series(<2) should clamp to 2, got %d", len(got))
	}
}

// Property: CDF.At is monotone and Inverse is a right-inverse.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c, err := NewCDF(raw)
		if err != nil {
			return false
		}
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-1, 0, 0.5, 1, 1.5, 2, 5, 10}
	h, err := NewHistogram(xs, 0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 3 { // 2, 5, 10 (hi is exclusive)
		t.Errorf("Over = %d, want 3", h.Over)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
	wantCounts := []int{2, 1, 1, 0} // [0,0.5): 0,  wait: 0 and 0.5 -> bins 0 and 1
	// bins: [0,0.5)={0}, [0.5,1)={0.5}, [1,1.5)={1}, [1.5,2)={1.5}
	wantCounts = []int{1, 1, 1, 1}
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], want)
		}
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := NewHistogram(nil, 1, 1, 3); err == nil {
		t.Error("empty range should fail")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Pearson perfect = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("Pearson inverse = %v", got)
	}
	if got := Pearson(xs, []float64{1, 1, 1, 1, 1}); got != 0 {
		t.Errorf("Pearson constant = %v", got)
	}
	if got := Pearson(xs, ys[:3]); got != 0 {
		t.Errorf("Pearson length mismatch = %v", got)
	}
}

func TestKendallTau(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := KendallTau(xs, []float64{10, 20, 30, 40}); got != 1 {
		t.Errorf("tau same order = %v", got)
	}
	if got := KendallTau(xs, []float64{40, 30, 20, 10}); got != -1 {
		t.Errorf("tau reversed = %v", got)
	}
	if got := KendallTau(xs, xs[:2]); got != 0 {
		t.Errorf("tau mismatch = %v", got)
	}
	// One swap out of 6 pairs: tau = (5-1)/6.
	if got := KendallTau(xs, []float64{2, 1, 3, 4}); !almostEq(got, 4.0/6.0, 1e-12) {
		t.Errorf("tau one swap = %v", got)
	}
}

// Property: quantile output is within [min, max] and monotone in q.
func TestQuantileProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if math.IsNaN(q1) || math.IsNaN(q2) {
			return true
		}
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(raw, q1), Quantile(raw, q2)
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		return v1 <= v2+1e-9 && v1 >= sorted[0]-1e-9 && v2 <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package reident implements the re-identification attacks used to
// evaluate the trajectory-swapping step:
//
//   - Tracker: a multi-target tracking adversary in the spirit of Hoh &
//     Gruteser [5]. At every mix-zone it predicts each incoming user's
//     continuation by constant-velocity extrapolation and links incoming
//     to outgoing trajectories greedily. Scored per zone and end-to-end.
//   - POI linker: an adversary with background knowledge (each target
//     user's true POI locations) who matches published trajectories to
//     targets by extracted-POI overlap.
//
// Both attacks consume the ground truth recorded by the mixzone package,
// so their reported accuracy is exact.
package reident

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/mixzone"
	"mobipriv/internal/poi"
	"mobipriv/internal/trace"
)

// ZoneLink reports the tracker's performance at one zone.
type ZoneLink struct {
	Zone    mixzone.Zone
	Total   int // participants with observable in/out trajectories
	Correct int // correctly linked participants
}

// TrackerResult aggregates the tracking attack.
type TrackerResult struct {
	PerZone []ZoneLink
	// ZoneAccuracy is the micro-averaged per-zone linking accuracy; 1
	// means every swap was seen through.
	ZoneAccuracy float64
	// EndToEnd is the fraction of users whose identity at the end of the
	// observation period the attacker reconstructs correctly by chaining
	// its per-zone links from the start.
	EndToEnd float64
	// Zones is the number of zones considered.
	Zones int
}

// Tracker runs the multi-target tracking attack against a mix-zone
// result. published must be res.Dataset (it is passed explicitly so
// callers can post-process); the attacker sees only published data — the
// ground truth in res is used exclusively for scoring.
func Tracker(res *mixzone.Result, published *trace.Dataset) (TrackerResult, error) {
	if res == nil || published == nil {
		return TrackerResult{}, errors.New("reident: nil inputs")
	}
	var out TrackerResult
	out.Zones = len(res.Zones)

	// linkOf[zi][in] = attacker's chosen outgoing identity for incoming
	// identity `in` at zone zi.
	links := make([]map[string]string, len(res.Zones))
	var correct, total int
	for zi, z := range res.Zones {
		zl := ZoneLink{Zone: z}
		links[zi] = make(map[string]string)

		// For each participant (original user) u: the identity carrying u
		// flips from in -> out at z.Time. The attacker must recover that
		// mapping from kinematics alone.
		type contestant struct {
			origUser string
			in, out  string
			pred     geo.Point // predicted post-zone position
			predOK   bool
		}
		var cs []contestant
		outFirst := make(map[string]trace.Point) // outgoing identity -> first point after zone
		for _, u := range z.Participants {
			in, okIn := identityAt(res, u, z.Time, true)
			outID, okOut := identityAt(res, u, z.Time, false)
			if !okIn || !okOut {
				continue
			}
			inTr := published.ByUser(in)
			outTr := published.ByUser(outID)
			if inTr == nil || outTr == nil {
				continue
			}
			fp, ok := firstAfter(outTr, z.Time)
			if !ok {
				continue
			}
			outFirst[outID] = fp
			c := contestant{origUser: u, in: in, out: outID}
			c.pred, c.predOK = predict(inTr, z.Time, fp.Time)
			cs = append(cs, c)
		}
		if len(cs) < 2 {
			// Nothing to confuse: zones need at least two observable
			// participants; trivially linked.
			for _, c := range cs {
				links[zi][c.in] = c.out
				zl.Total++
				zl.Correct++
			}
			total += zl.Total
			correct += zl.Correct
			out.PerZone = append(out.PerZone, zl)
			continue
		}
		// Greedy min-distance assignment between predictions and observed
		// outgoing first points.
		type cand struct {
			ci, oi int
			d      float64
		}
		outIDs := make([]string, 0, len(outFirst))
		for id := range outFirst {
			outIDs = append(outIDs, id)
		}
		sort.Strings(outIDs)
		var cands []cand
		for ci, c := range cs {
			for oi, id := range outIDs {
				var d float64
				if c.predOK {
					d = geo.FastDistance(c.pred, outFirst[id].Point)
				} else {
					d = geo.FastDistance(z.Center, outFirst[id].Point)
				}
				cands = append(cands, cand{ci: ci, oi: oi, d: d})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			if cands[i].ci != cands[j].ci {
				return cands[i].ci < cands[j].ci
			}
			return cands[i].oi < cands[j].oi
		})
		usedC := make(map[int]bool)
		usedO := make(map[int]bool)
		for _, c := range cands {
			if usedC[c.ci] || usedO[c.oi] {
				continue
			}
			usedC[c.ci] = true
			usedO[c.oi] = true
			guess := outIDs[c.oi]
			links[zi][cs[c.ci].in] = guess
			zl.Total++
			if guess == cs[c.ci].out {
				zl.Correct++
			}
		}
		total += zl.Total
		correct += zl.Correct
		out.PerZone = append(out.PerZone, zl)
	}
	if total > 0 {
		out.ZoneAccuracy = float64(correct) / float64(total)
	} else {
		out.ZoneAccuracy = 1 // nothing to link: the attacker loses nothing
	}

	// End-to-end: chain the attacker's links from the first observation
	// to the last and compare with the true final identity of each user.
	var e2eTotal, e2eCorrect int
	for _, u := range originalUsers(res) {
		trueFinal, ok := finalIdentity(res, u)
		if !ok {
			continue
		}
		// The attacker starts tracking u under its initial identity (u:
		// identities start as the original labels).
		cur := u
		for zi, z := range res.Zones {
			if !participates(z, u) {
				continue
			}
			if next, ok := links[zi][cur]; ok {
				cur = next
			}
		}
		e2eTotal++
		if cur == trueFinal {
			e2eCorrect++
		}
	}
	if e2eTotal > 0 {
		out.EndToEnd = float64(e2eCorrect) / float64(e2eTotal)
	} else {
		out.EndToEnd = 1
	}
	return out, nil
}

// identityAt returns the output identity carrying original user u just
// before (before=true) or just after the instant ts.
func identityAt(res *mixzone.Result, u string, ts time.Time, before bool) (string, bool) {
	probe := ts.Add(time.Nanosecond)
	if before {
		probe = ts.Add(-time.Nanosecond)
	}
	for _, s := range res.Segments {
		if s.Original != u {
			continue
		}
		if !probe.Before(s.From) && !probe.After(s.To) {
			return s.Output, true
		}
	}
	return "", false
}

func finalIdentity(res *mixzone.Result, u string) (string, bool) {
	var best *mixzone.Segment
	for i := range res.Segments {
		s := &res.Segments[i]
		if s.Original != u {
			continue
		}
		if best == nil || s.To.After(best.To) {
			best = s
		}
	}
	if best == nil {
		return "", false
	}
	return best.Output, true
}

func originalUsers(res *mixzone.Result) []string {
	set := make(map[string]bool)
	for _, s := range res.Segments {
		set[s.Original] = true
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func participates(z mixzone.Zone, u string) bool {
	for _, p := range z.Participants {
		if p == u {
			return true
		}
	}
	return false
}

// firstAfter returns the first observation strictly after ts.
func firstAfter(tr *trace.Trace, ts time.Time) (trace.Point, bool) {
	i := sort.Search(tr.Len(), func(i int) bool { return tr.Points[i].Time.After(ts) })
	if i >= tr.Len() {
		return trace.Point{}, false
	}
	return tr.Points[i], true
}

// predict extrapolates the trace's position at target from its last two
// observations at or before ts (constant-velocity model).
func predict(tr *trace.Trace, ts, target time.Time) (geo.Point, bool) {
	i := sort.Search(tr.Len(), func(i int) bool { return tr.Points[i].Time.After(ts) })
	if i == 0 {
		return geo.Point{}, false
	}
	last := tr.Points[i-1]
	if i < 2 {
		return last.Point, true
	}
	prev := tr.Points[i-2]
	dt := last.Time.Sub(prev.Time).Seconds()
	if dt <= 0 {
		return last.Point, true
	}
	proj := geo.NewProjector(last.Point)
	v := proj.ToXY(last.Point).Sub(proj.ToXY(prev.Point)).Scale(1 / dt)
	ahead := target.Sub(last.Time).Seconds()
	return proj.ToPoint(v.Scale(ahead)), true
}

// LinkResult reports the POI-linker attack.
type LinkResult struct {
	Total   int // published identities attacked
	Correct int // correctly re-identified
	// Rate = Correct / Total.
	Rate float64
}

// LinkByPOI runs the background-knowledge linker: for every published
// trace, extract POIs and match them against each target's known POI
// locations; assign greedily (highest overlap first, one-to-one). truth
// maps each published identity to the original user who should be
// recovered (for un-swapped mechanisms this is the identity function;
// for swapped outputs pass the majority owner).
func LinkByPOI(
	published *trace.Dataset,
	known map[string][]geo.Point,
	truth func(publishedUser string) string,
	cfg poi.Config,
	matchRadius float64,
) (LinkResult, error) {
	if matchRadius <= 0 {
		return LinkResult{}, fmt.Errorf("reident: matchRadius %v must be positive", matchRadius)
	}
	if truth == nil {
		return LinkResult{}, errors.New("reident: nil truth function")
	}
	extracted, err := poi.ExtractAll(published, cfg)
	if err != nil {
		return LinkResult{}, fmt.Errorf("reident: %w", err)
	}
	targets := make([]string, 0, len(known))
	for u := range known {
		targets = append(targets, u)
	}
	sort.Strings(targets)
	pubs := published.Users()

	type cand struct {
		pi, ti int
		score  float64
	}
	var cands []cand
	for pi, p := range pubs {
		var locs []geo.Point
		for _, q := range extracted[p] {
			locs = append(locs, q.Center)
		}
		for ti, t := range targets {
			s := overlapScore(known[t], locs, matchRadius)
			if s > 0 {
				cands = append(cands, cand{pi: pi, ti: ti, score: s})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if cands[i].pi != cands[j].pi {
			return cands[i].pi < cands[j].pi
		}
		return cands[i].ti < cands[j].ti
	})
	usedP := make(map[int]bool)
	usedT := make(map[int]bool)
	var res LinkResult
	res.Total = len(pubs)
	for _, c := range cands {
		if usedP[c.pi] || usedT[c.ti] {
			continue
		}
		usedP[c.pi] = true
		usedT[c.ti] = true
		if truth(pubs[c.pi]) == targets[c.ti] {
			res.Correct++
		}
	}
	if res.Total > 0 {
		res.Rate = float64(res.Correct) / float64(res.Total)
	}
	return res, nil
}

// overlapScore returns the fraction of the target's known POIs that have
// an extracted POI within radius.
func overlapScore(known, extracted []geo.Point, radius float64) float64 {
	if len(known) == 0 {
		return 0
	}
	hit := 0
	for _, k := range known {
		for _, e := range extracted {
			if geo.FastDistance(k, e) <= radius {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(known))
}

package reident

import (
	"testing"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/mixzone"
	"mobipriv/internal/poi"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

var (
	t0     = time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	origin = geo.Point{Lat: 45.7640, Lng: 4.8357}
)

// crossing builds two users crossing at the origin.
func crossing() *trace.Dataset {
	east := func(user string) *trace.Trace {
		var pts []trace.Point
		now := t0
		for x := -1000.0; x <= 1000; x += 100 {
			pts = append(pts, trace.Point{Point: geo.Offset(origin, x, 0), Time: now})
			now = now.Add(10 * time.Second)
		}
		return trace.MustNew(user, pts)
	}
	north := func(user string) *trace.Trace {
		var pts []trace.Point
		now := t0
		for y := -1000.0; y <= 1000; y += 100 {
			pts = append(pts, trace.Point{Point: geo.Offset(origin, 0, y), Time: now})
			now = now.Add(10 * time.Second)
		}
		return trace.MustNew(user, pts)
	}
	return trace.MustNewDataset([]*trace.Trace{east("alice"), north("bob")})
}

func TestTrackerSeesThroughCleanCrossing(t *testing.T) {
	// At a perpendicular crossing with constant speeds, the velocity-
	// predicting tracker should link correctly regardless of swapping —
	// this is the known weakness of mix-zones at clean crossings and the
	// reason the end-to-end metric is about accumulation over many zones.
	d := crossing()
	for seed := int64(1); seed <= 5; seed++ {
		cfg := mixzone.DefaultConfig()
		cfg.SwapSeed = seed
		res, err := mixzone.Apply(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Zones) == 0 {
			t.Fatal("no zone detected at crossing")
		}
		tr, err := Tracker(res, res.Dataset)
		if err != nil {
			t.Fatal(err)
		}
		if tr.ZoneAccuracy < 0.99 {
			t.Errorf("seed %d: tracker accuracy %v at a clean crossing, want ~1", seed, tr.ZoneAccuracy)
		}
		if tr.EndToEnd < 0.99 {
			t.Errorf("seed %d: end-to-end %v at a clean crossing", seed, tr.EndToEnd)
		}
	}
}

// coLocated builds two users who walk together slowly through a meeting
// point and then part ways — the kinematically ambiguous case mix-zones
// thrive on.
func coLocated(sep float64) *trace.Dataset {
	mk := func(user string, postBrg float64) *trace.Trace {
		var pts []trace.Point
		now := t0
		// Approach: both walk east together, sep meters apart laterally.
		dy := sep / 2
		if user == "bob" {
			dy = -sep / 2
		}
		for x := -300.0; x <= 0; x += 15 { // 1.5 m/s walk, 10 s sampling
			pts = append(pts, trace.Point{Point: geo.Offset(origin, x, dy), Time: now})
			now = now.Add(10 * time.Second)
		}
		// Depart in different directions at the same speed.
		for d := 15.0; d <= 300; d += 15 {
			pts = append(pts, trace.Point{Point: geo.Destination(geo.Offset(origin, 0, dy), postBrg, d), Time: now})
			now = now.Add(10 * time.Second)
		}
		return trace.MustNew(user, pts)
	}
	return trace.MustNewDataset([]*trace.Trace{mk("alice", 45), mk("bob", 135)})
}

func TestTrackerGroundTruthConsistency(t *testing.T) {
	// Whatever the attacker's accuracy, the scoring must be internally
	// consistent: when NoSwap is set the correct link is the identity, so
	// a constant-velocity tracker on diverging walkers is perfect.
	d := coLocated(10)
	cfg := mixzone.DefaultConfig()
	cfg.NoSwap = true
	res, err := mixzone.Apply(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Zones) == 0 {
		t.Skip("no zone detected in co-located walk (config drift)")
	}
	tr, err := Tracker(res, res.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if tr.EndToEnd != 1 {
		t.Errorf("NoSwap end-to-end = %v, want 1 (identity never changes)", tr.EndToEnd)
	}
}

func TestTrackerNoZones(t *testing.T) {
	single := trace.MustNewDataset([]*trace.Trace{
		trace.MustNew("solo", []trace.Point{
			{Point: origin, Time: t0},
			{Point: geo.Offset(origin, 100, 0), Time: t0.Add(time.Minute)},
		}),
	})
	res, err := mixzone.Apply(single, mixzone.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Tracker(res, res.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ZoneAccuracy != 1 || tr.EndToEnd != 1 || tr.Zones != 0 {
		t.Errorf("no-zone tracker = %+v", tr)
	}
}

func TestTrackerNilInputs(t *testing.T) {
	if _, err := Tracker(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestTrackerOnSyntheticCommuters(t *testing.T) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 15
	cfg.Sampling = time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mixzone.Apply(g.Dataset, mixzone.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Tracker(res, res.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ZoneAccuracy < 0 || tr.ZoneAccuracy > 1 || tr.EndToEnd < 0 || tr.EndToEnd > 1 {
		t.Fatalf("accuracy out of range: %+v", tr)
	}
	t.Logf("commuters: %d zones, zone accuracy %.2f, end-to-end %.2f",
		tr.Zones, tr.ZoneAccuracy, tr.EndToEnd)
}

func TestLinkByPOIRawData(t *testing.T) {
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 10
	cfg.Sampling = 2 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker knows every user's true POI locations.
	known := make(map[string][]geo.Point)
	for _, s := range g.Stays {
		known[s.User] = append(known[s.User], s.Center)
	}
	res, err := LinkByPOI(g.Dataset, known, func(u string) string { return u }, poi.DefaultConfig(), 250)
	if err != nil {
		t.Fatal(err)
	}
	// On raw pseudonymized data with full background knowledge the
	// linker should re-identify most users.
	if res.Rate < 0.7 {
		t.Errorf("raw link rate = %v (%d/%d), want >= 0.7", res.Rate, res.Correct, res.Total)
	}
}

func TestLinkByPOIValidation(t *testing.T) {
	d := crossing()
	if _, err := LinkByPOI(d, nil, func(u string) string { return u }, poi.DefaultConfig(), 0); err == nil {
		t.Fatal("radius=0 accepted")
	}
	if _, err := LinkByPOI(d, nil, nil, poi.DefaultConfig(), 100); err == nil {
		t.Fatal("nil truth accepted")
	}
}

func TestOverlapScore(t *testing.T) {
	a := origin
	b := geo.Destination(origin, 90, 1000)
	known := []geo.Point{a, b}
	if got := overlapScore(known, []geo.Point{geo.Offset(a, 10, 0)}, 100); got != 0.5 {
		t.Errorf("overlap = %v, want 0.5", got)
	}
	if got := overlapScore(known, []geo.Point{a, b}, 100); got != 1 {
		t.Errorf("overlap = %v, want 1", got)
	}
	if got := overlapScore(nil, []geo.Point{a}, 100); got != 0 {
		t.Errorf("overlap with no knowledge = %v", got)
	}
}

func TestPredictConstantVelocity(t *testing.T) {
	tr := trace.MustNew("u", []trace.Point{
		{Point: origin, Time: t0},
		{Point: geo.Offset(origin, 100, 0), Time: t0.Add(10 * time.Second)}, // 10 m/s east
	})
	p, ok := predict(tr, t0.Add(10*time.Second), t0.Add(20*time.Second))
	if !ok {
		t.Fatal("predict failed")
	}
	want := geo.Offset(origin, 200, 0)
	if d := geo.Distance(p, want); d > 1 {
		t.Fatalf("prediction off by %v m", d)
	}
	// Prediction with a single point degrades to last position.
	single := trace.MustNew("u", []trace.Point{{Point: origin, Time: t0}})
	p, ok = predict(single, t0, t0.Add(10*time.Second))
	if !ok || geo.Distance(p, origin) > 0.01 {
		t.Fatalf("single-point predict = %v, %v", p, ok)
	}
	// No points before ts.
	if _, ok := predict(tr, t0.Add(-time.Hour), t0); ok {
		t.Fatal("predict before first observation should fail")
	}
}

package poiattack

// This file preserves, verbatim, the whole-dataset Evaluate that shipped
// before the streaming rework (poi.ExtractAll over a loaded dataset).
// It exists only as the reference side of TestEvaluateMatchesLegacy:
// the streaming facade must keep producing byte-for-byte identical
// scores. Do not "fix" or modernize it.

import (
	"fmt"
	"sort"

	"mobipriv/internal/geo"
	"mobipriv/internal/poi"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

func legacyNewScore(truth, extracted, matched int) Score {
	s := Score{Truth: truth, Extracted: extracted, Matched: matched}
	if extracted > 0 {
		s.Precision = float64(matched) / float64(extracted)
	}
	if truth > 0 {
		s.Recall = float64(matched) / float64(truth)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

func legacyTruePOIs(stays []synth.Stay, mergeRadius float64) map[string][]geo.Point {
	byUser := make(map[string][]poi.Stay)
	for _, s := range stays {
		byUser[s.User] = append(byUser[s.User], poi.Stay{
			Center: s.Center, Enter: s.Enter, Leave: s.Leave,
		})
	}
	out := make(map[string][]geo.Point, len(byUser))
	for u, ss := range byUser {
		for _, p := range poi.Cluster(ss, mergeRadius) {
			out[u] = append(out[u], p.Center)
		}
	}
	return out
}

func legacyEvaluate(published *trace.Dataset, stays []synth.Stay, cfg Config) (Result, error) {
	if cfg.MatchRadius <= 0 {
		return Result{}, fmt.Errorf("poiattack: MatchRadius %v must be positive", cfg.MatchRadius)
	}
	extracted, err := poi.ExtractAll(published, cfg.POI)
	if err != nil {
		return Result{}, fmt.Errorf("poiattack: %w", err)
	}
	truth := legacyTruePOIs(stays, cfg.MatchRadius)

	var res Result
	// Per-user scoring.
	var tTruth, tExtr, tMatch int
	for u, truePts := range truth {
		var extrPts []geo.Point
		for _, p := range extracted[u] {
			extrPts = append(extrPts, p.Center)
		}
		m := legacyMatchCount(truePts, extrPts, cfg.MatchRadius)
		tTruth += len(truePts)
		tExtr += len(extrPts)
		tMatch += m
	}
	// Extracted POIs of identities with no ground truth still count as
	// false positives in the per-user view.
	for u, ps := range extracted {
		if _, known := truth[u]; !known {
			tExtr += len(ps)
		}
	}
	res.PerUser = legacyNewScore(tTruth, tExtr, tMatch)

	// Global scoring: locations only.
	var allTruth, allExtr []geo.Point
	for _, pts := range truth {
		allTruth = append(allTruth, pts...)
	}
	for _, ps := range extracted {
		for _, p := range ps {
			allExtr = append(allExtr, p.Center)
		}
	}
	res.Global = legacyNewScore(len(allTruth), len(allExtr), legacyMatchCount(allTruth, allExtr, cfg.MatchRadius))
	return res, nil
}

func legacyMatchCount(truth, extracted []geo.Point, radius float64) int {
	type pair struct {
		t, e int
		d    float64
	}
	var pairs []pair
	for ti, tp := range truth {
		for ei, ep := range extracted {
			if d := geo.FastDistance(tp, ep); d <= radius {
				pairs = append(pairs, pair{t: ti, e: ei, d: d})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].d != pairs[j].d {
			return pairs[i].d < pairs[j].d
		}
		if pairs[i].t != pairs[j].t {
			return pairs[i].t < pairs[j].t
		}
		return pairs[i].e < pairs[j].e
	})
	usedT := make(map[int]bool)
	usedE := make(map[int]bool)
	matched := 0
	for _, p := range pairs {
		if usedT[p.t] || usedE[p.e] {
			continue
		}
		usedT[p.t] = true
		usedE[p.e] = true
		matched++
	}
	return matched
}

// Package poiattack implements the POI-retrieval attack used to measure
// how well an anonymization mechanism hides points of interest: the
// adversary runs the extraction pipeline of Gambs et al. [1] on the
// published dataset and the attack's success is scored against the
// generator's ground-truth stays by precision / recall / F1.
//
// Two scorings are reported:
//
//   - PerUser: extracted POIs of published identity u are matched against
//     the true POIs of original user u. Meaningful for mechanisms that
//     keep identities aligned (raw, speed smoothing, Geo-I, Wait4Me).
//   - Global: all extracted POI locations (any identity) are matched
//     against all true POI locations. Measures place disclosure
//     regardless of identity, and stays meaningful after swapping.
package poiattack

import (
	"fmt"
	"sort"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/poi"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

// Score is a precision/recall/F1 triple with raw counts.
type Score struct {
	Precision float64
	Recall    float64
	F1        float64
	Truth     int // number of ground-truth POIs
	Extracted int // number of POIs the attack produced
	Matched   int
}

func newScore(truth, extracted, matched int) Score {
	s := Score{Truth: truth, Extracted: extracted, Matched: matched}
	if extracted > 0 {
		s.Precision = float64(matched) / float64(extracted)
	}
	if truth > 0 {
		s.Recall = float64(matched) / float64(truth)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

// String implements fmt.Stringer.
func (s Score) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (truth=%d extracted=%d matched=%d)",
		s.Precision, s.Recall, s.F1, s.Truth, s.Extracted, s.Matched)
}

// Result bundles the two scorings of one attack run.
type Result struct {
	PerUser Score
	Global  Score
}

// Config parameterizes the attack.
type Config struct {
	// POI is the extraction configuration the adversary uses.
	POI poi.Config
	// MatchRadius is the distance in meters within which an extracted
	// POI counts as having retrieved a true POI.
	MatchRadius float64
}

// DefaultConfig returns the attack settings used across the experiments.
func DefaultConfig() Config {
	return Config{POI: poi.DefaultConfig(), MatchRadius: 250}
}

// TruePOIs clusters the generator's ground-truth stays into per-user POI
// location lists (stays at the same place merge, mirroring what the
// extraction pipeline produces on raw data).
func TruePOIs(stays []synth.Stay, mergeRadius float64) map[string][]geo.Point {
	byUser := make(map[string][]poi.Stay)
	for _, s := range stays {
		byUser[s.User] = append(byUser[s.User], poi.Stay{
			Center: s.Center, Enter: s.Enter, Leave: s.Leave,
		})
	}
	out := make(map[string][]geo.Point, len(byUser))
	for u, ss := range byUser {
		for _, p := range poi.Cluster(ss, mergeRadius) {
			out[u] = append(out[u], p.Center)
		}
	}
	return out
}

// Evaluate runs the attack on the published dataset and scores it
// against the ground truth.
func Evaluate(published *trace.Dataset, stays []synth.Stay, cfg Config) (Result, error) {
	if cfg.MatchRadius <= 0 {
		return Result{}, fmt.Errorf("poiattack: MatchRadius %v must be positive", cfg.MatchRadius)
	}
	extracted, err := poi.ExtractAll(published, cfg.POI)
	if err != nil {
		return Result{}, fmt.Errorf("poiattack: %w", err)
	}
	truth := TruePOIs(stays, cfg.MatchRadius)

	var res Result
	// Per-user scoring.
	var tTruth, tExtr, tMatch int
	for u, truePts := range truth {
		var extrPts []geo.Point
		for _, p := range extracted[u] {
			extrPts = append(extrPts, p.Center)
		}
		m := matchCount(truePts, extrPts, cfg.MatchRadius)
		tTruth += len(truePts)
		tExtr += len(extrPts)
		tMatch += m
	}
	// Extracted POIs of identities with no ground truth still count as
	// false positives in the per-user view.
	for u, ps := range extracted {
		if _, known := truth[u]; !known {
			tExtr += len(ps)
		}
	}
	res.PerUser = newScore(tTruth, tExtr, tMatch)

	// Global scoring: locations only.
	var allTruth, allExtr []geo.Point
	for _, pts := range truth {
		allTruth = append(allTruth, pts...)
	}
	for _, ps := range extracted {
		for _, p := range ps {
			allExtr = append(allExtr, p.Center)
		}
	}
	res.Global = newScore(len(allTruth), len(allExtr), matchCount(allTruth, allExtr, cfg.MatchRadius))
	return res, nil
}

// matchCount greedily matches extracted points to truth points within
// radius, each point used at most once, closest pairs first. Greedy
// matching on sorted distances is optimal for counting matches in this
// bipartite threshold setting in all but adversarial geometries, and is
// deterministic.
func matchCount(truth, extracted []geo.Point, radius float64) int {
	type pair struct {
		t, e int
		d    float64
	}
	var pairs []pair
	for ti, tp := range truth {
		for ei, ep := range extracted {
			if d := geo.FastDistance(tp, ep); d <= radius {
				pairs = append(pairs, pair{t: ti, e: ei, d: d})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].d != pairs[j].d {
			return pairs[i].d < pairs[j].d
		}
		if pairs[i].t != pairs[j].t {
			return pairs[i].t < pairs[j].t
		}
		return pairs[i].e < pairs[j].e
	})
	usedT := make(map[int]bool)
	usedE := make(map[int]bool)
	matched := 0
	for _, p := range pairs {
		if usedT[p.t] || usedE[p.e] {
			continue
		}
		usedT[p.t] = true
		usedE[p.e] = true
		matched++
	}
	return matched
}

// HideDuration is a convenience threshold re-exported for callers that
// label ground truth themselves.
const HideDuration = 5 * time.Minute

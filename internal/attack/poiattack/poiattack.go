// Package poiattack implements the POI-retrieval attack used to measure
// how well an anonymization mechanism hides points of interest: the
// adversary runs the extraction pipeline of Gambs et al. [1] on the
// published dataset and the attack's success is scored against the
// generator's ground-truth stays by precision / recall / F1.
//
// Since the streaming rework the package is a thin batch facade over
// internal/risk: Evaluate feeds each published trace to a
// risk.AttackAcc (no whole-dataset state, stays detected incrementally)
// and returns its Result. Scores are pinned identical to the historical
// in-memory implementation by TestEvaluateMatchesLegacy. Store-native
// callers — mobieval -stays — skip this facade and drive the
// accumulator straight from store.ScanTracesPaired via
// metrics.EvalOptions.Attack.
//
// Two scorings are reported:
//
//   - PerUser: extracted POIs of published identity u are matched against
//     the true POIs of original user u. Meaningful for mechanisms that
//     keep identities aligned (raw, speed smoothing, Geo-I, Wait4Me).
//   - Global: all extracted POI locations (any identity) are matched
//     against all true POI locations. Measures place disclosure
//     regardless of identity, and stays meaningful after swapping.
package poiattack

import (
	"fmt"
	"time"

	"mobipriv/internal/geo"
	"mobipriv/internal/risk"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

// Score is a precision/recall/F1 triple with raw counts.
type Score = risk.Score

// Result bundles the two scorings of one attack run.
type Result = risk.Result

// Config parameterizes the attack.
type Config = risk.AttackConfig

// DefaultConfig returns the attack settings used across the experiments.
func DefaultConfig() Config { return risk.DefaultAttackConfig() }

// TruePOIs clusters the generator's ground-truth stays into per-user POI
// location lists (stays at the same place merge, mirroring what the
// extraction pipeline produces on raw data).
func TruePOIs(stays []synth.Stay, mergeRadius float64) map[string][]geo.Point {
	return risk.TruthPOIs(stays, mergeRadius)
}

// Evaluate runs the attack on the published dataset and scores it
// against the ground truth.
func Evaluate(published *trace.Dataset, stays []synth.Stay, cfg Config) (Result, error) {
	acc, err := risk.NewAttackAcc(TruePOIs(stays, cfg.MatchRadius), cfg)
	if err != nil {
		return Result{}, fmt.Errorf("poiattack: %w", err)
	}
	if published != nil {
		for _, tr := range published.Traces() {
			acc.AddTrace(tr)
		}
	}
	return acc.Result(), nil
}

// HideDuration is a convenience threshold re-exported for callers that
// label ground truth themselves.
const HideDuration = 5 * time.Minute

package poiattack

import (
	"testing"
	"time"

	"mobipriv/internal/core"
	"mobipriv/internal/geo"
	"mobipriv/internal/synth"
)

func commuters(t testing.TB, users int) *synth.Generated {
	t.Helper()
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = users
	cfg.Sampling = 2 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEvaluateRawDataHighF1(t *testing.T) {
	g := commuters(t, 10)
	res, err := Evaluate(g.Dataset, g.Stays, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// On raw data the attack must retrieve nearly all POIs.
	if res.PerUser.Recall < 0.85 {
		t.Errorf("raw per-user recall = %v, want >= 0.85 (%s)", res.PerUser.Recall, res.PerUser)
	}
	if res.PerUser.F1 < 0.7 {
		t.Errorf("raw per-user F1 = %v, want >= 0.7 (%s)", res.PerUser.F1, res.PerUser)
	}
	if res.Global.F1 < 0.7 {
		t.Errorf("raw global F1 = %v (%s)", res.Global.F1, res.Global)
	}
}

func TestEvaluateSmoothedDataLowF1(t *testing.T) {
	g := commuters(t, 10)
	sm, _, err := core.SmoothDataset(g.Dataset, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Evaluate(g.Dataset, g.Stays, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	anon, err := Evaluate(sm, g.Stays, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The headline reproduction: speed smoothing slashes the attack's F1.
	if anon.PerUser.F1 > raw.PerUser.F1/2 {
		t.Errorf("smoothing did not halve F1: raw %s -> anon %s", raw.PerUser, anon.PerUser)
	}
	if anon.PerUser.Precision > 0.5 {
		t.Errorf("smoothed precision = %v, want low (stays detected, if any, are spread along the path)",
			anon.PerUser.Precision)
	}
}

func TestEvaluateMatchRadiusValidation(t *testing.T) {
	g := commuters(t, 3)
	cfg := DefaultConfig()
	cfg.MatchRadius = 0
	if _, err := Evaluate(g.Dataset, g.Stays, cfg); err == nil {
		t.Fatal("MatchRadius=0 accepted")
	}
}

func TestTruePOIsMergesRepeatStays(t *testing.T) {
	t0 := time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	home := geo.Point{Lat: 45.76, Lng: 4.83}
	work := geo.Destination(home, 90, 3000)
	stays := []synth.Stay{
		{User: "u", Center: home, Enter: t0, Leave: t0.Add(8 * time.Hour)},
		{User: "u", Center: geo.Offset(home, 20, 0), Enter: t0.Add(20 * time.Hour), Leave: t0.Add(30 * time.Hour)},
		{User: "u", Center: work, Enter: t0.Add(9 * time.Hour), Leave: t0.Add(17 * time.Hour)},
		{User: "v", Center: work, Enter: t0.Add(9 * time.Hour), Leave: t0.Add(17 * time.Hour)},
	}
	truth := TruePOIs(stays, 250)
	if len(truth["u"]) != 2 {
		t.Errorf("user u: %d true POIs, want 2 (home merged)", len(truth["u"]))
	}
	if len(truth["v"]) != 1 {
		t.Errorf("user v: %d true POIs, want 1", len(truth["v"]))
	}
}

func TestMatchCountOneToOne(t *testing.T) {
	base := geo.Point{Lat: 45.76, Lng: 4.83}
	truth := []geo.Point{base, geo.Destination(base, 90, 1000)}
	// Two extracted POIs both near the first truth point: only one match.
	extracted := []geo.Point{geo.Offset(base, 10, 0), geo.Offset(base, -10, 0)}
	if got := matchCount(truth, extracted, 250); got != 1 {
		t.Fatalf("matchCount = %d, want 1 (one-to-one)", got)
	}
	// Perfect pairing.
	extracted = []geo.Point{geo.Offset(base, 10, 0), geo.Offset(geo.Destination(base, 90, 1000), 5, 5)}
	if got := matchCount(truth, extracted, 250); got != 2 {
		t.Fatalf("matchCount = %d, want 2", got)
	}
	// Nothing in range.
	extracted = []geo.Point{geo.Destination(base, 0, 5000)}
	if got := matchCount(truth, extracted, 250); got != 0 {
		t.Fatalf("matchCount = %d, want 0", got)
	}
}

func TestScoreString(t *testing.T) {
	s := newScore(10, 8, 6)
	if s.Precision != 0.75 || s.Recall != 0.6 {
		t.Fatalf("score = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	// Degenerate: no truth, no extraction.
	z := newScore(0, 0, 0)
	if z.Precision != 0 || z.Recall != 0 || z.F1 != 0 {
		t.Fatalf("zero score = %+v", z)
	}
}

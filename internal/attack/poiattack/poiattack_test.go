package poiattack

import (
	"testing"
	"time"

	"mobipriv/internal/core"
	"mobipriv/internal/geo"
	"mobipriv/internal/poi"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

func commuters(t testing.TB, users int) *synth.Generated {
	t.Helper()
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = users
	cfg.Sampling = 2 * time.Minute
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEvaluateRawDataHighF1(t *testing.T) {
	g := commuters(t, 10)
	res, err := Evaluate(g.Dataset, g.Stays, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// On raw data the attack must retrieve nearly all POIs.
	if res.PerUser.Recall < 0.85 {
		t.Errorf("raw per-user recall = %v, want >= 0.85 (%s)", res.PerUser.Recall, res.PerUser)
	}
	if res.PerUser.F1 < 0.7 {
		t.Errorf("raw per-user F1 = %v, want >= 0.7 (%s)", res.PerUser.F1, res.PerUser)
	}
	if res.Global.F1 < 0.7 {
		t.Errorf("raw global F1 = %v (%s)", res.Global.F1, res.Global)
	}
}

func TestEvaluateSmoothedDataLowF1(t *testing.T) {
	g := commuters(t, 10)
	sm, _, err := core.SmoothDataset(g.Dataset, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Evaluate(g.Dataset, g.Stays, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	anon, err := Evaluate(sm, g.Stays, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The headline reproduction: speed smoothing slashes the attack's F1.
	if anon.PerUser.F1 > raw.PerUser.F1/2 {
		t.Errorf("smoothing did not halve F1: raw %s -> anon %s", raw.PerUser, anon.PerUser)
	}
	if anon.PerUser.Precision > 0.5 {
		t.Errorf("smoothed precision = %v, want low (stays detected, if any, are spread along the path)",
			anon.PerUser.Precision)
	}
}

func TestEvaluateMatchRadiusValidation(t *testing.T) {
	g := commuters(t, 3)
	cfg := DefaultConfig()
	cfg.MatchRadius = 0
	if _, err := Evaluate(g.Dataset, g.Stays, cfg); err == nil {
		t.Fatal("MatchRadius=0 accepted")
	}
}

func TestTruePOIsMergesRepeatStays(t *testing.T) {
	t0 := time.Date(2015, 6, 30, 8, 0, 0, 0, time.UTC)
	home := geo.Point{Lat: 45.76, Lng: 4.83}
	work := geo.Destination(home, 90, 3000)
	stays := []synth.Stay{
		{User: "u", Center: home, Enter: t0, Leave: t0.Add(8 * time.Hour)},
		{User: "u", Center: geo.Offset(home, 20, 0), Enter: t0.Add(20 * time.Hour), Leave: t0.Add(30 * time.Hour)},
		{User: "u", Center: work, Enter: t0.Add(9 * time.Hour), Leave: t0.Add(17 * time.Hour)},
		{User: "v", Center: work, Enter: t0.Add(9 * time.Hour), Leave: t0.Add(17 * time.Hour)},
	}
	truth := TruePOIs(stays, 250)
	if len(truth["u"]) != 2 {
		t.Errorf("user u: %d true POIs, want 2 (home merged)", len(truth["u"]))
	}
	if len(truth["v"]) != 1 {
		t.Errorf("user v: %d true POIs, want 1", len(truth["v"]))
	}
}

// TestEvaluateMatchesLegacy pins the streaming-backed Evaluate to the
// historical whole-dataset implementation (kept verbatim in
// legacy_test.go): identical scores, raw and anonymized alike.
func TestEvaluateMatchesLegacy(t *testing.T) {
	g := commuters(t, 10)
	sm, _, err := core.SmoothDataset(g.Dataset, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		DefaultConfig(),
		{POI: poi.Config{MaxDiameter: 100, MinDuration: 10 * time.Minute, MergeRadius: 150}, MatchRadius: 100},
	}
	for _, cfg := range cfgs {
		for name, ds := range map[string]*trace.Dataset{"raw": g.Dataset, "smoothed": sm} {
			got, err := Evaluate(ds, g.Stays, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := legacyEvaluate(ds, g.Stays, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s cfg %+v: streaming Evaluate diverged from legacy\n got %+v\nwant %+v",
					name, cfg, got, want)
			}
		}
	}
}

package mmc

import (
	"errors"
	"math"
	"testing"
	"time"

	"mobipriv"
	"mobipriv/internal/core"
	"mobipriv/internal/geo"
	"mobipriv/internal/synth"
	"mobipriv/internal/trace"
)

var (
	t0     = time.Date(2015, 6, 29, 0, 0, 0, 0, time.UTC)
	origin = geo.Point{Lat: 45.7640, Lng: 4.8357}
)

// dailyTrace builds a home->work->home day with long stays, sampled
// every minute.
func dailyTrace(user string, home, work geo.Point) *trace.Trace {
	var pts []trace.Point
	now := t0
	stay := func(p geo.Point, d time.Duration) {
		for elapsed := time.Duration(0); elapsed < d; elapsed += time.Minute {
			pts = append(pts, trace.Point{Point: geo.Offset(p, float64(len(pts)%3), 0), Time: now})
			now = now.Add(time.Minute)
		}
	}
	move := func(from, to geo.Point) {
		d := geo.Distance(from, to)
		for cur := 300.0; cur < d; cur += 300 { // 5 m/s at 1-min sampling
			pts = append(pts, trace.Point{Point: geo.Interpolate(from, to, cur/d), Time: now})
			now = now.Add(time.Minute)
		}
	}
	stay(home, 7*time.Hour)
	move(home, work)
	stay(work, 8*time.Hour)
	move(work, home)
	stay(home, 6*time.Hour)
	return trace.MustNew(user, pts)
}

func TestBuildChain(t *testing.T) {
	home := origin
	work := geo.Destination(origin, 90, 3000)
	ch, err := Build(dailyTrace("u", home, work), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.States) != 2 {
		t.Fatalf("states = %d, want 2 (home, work)", len(ch.States))
	}
	// Home has the larger time share and must be state 0.
	if d := geo.Distance(ch.States[0], home); d > 250 {
		t.Errorf("state 0 is %v m from home", d)
	}
	if ch.Weight[0] <= ch.Weight[1] {
		t.Errorf("weights not ordered: %v", ch.Weight)
	}
	if math.Abs(ch.Weight[0]+ch.Weight[1]-1) > 1e-9 {
		t.Errorf("weights do not sum to 1: %v", ch.Weight)
	}
	// Transitions: rows are probability distributions.
	for i, row := range ch.Trans {
		var sum float64
		for _, p := range row {
			if p < 0 {
				t.Fatalf("negative transition prob in row %d", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Home <-> work transitions dominate.
	if ch.Trans[0][1] < ch.Trans[0][0] {
		t.Errorf("home->work prob %v should beat home->home %v", ch.Trans[0][1], ch.Trans[0][0])
	}
}

func TestBuildNoStates(t *testing.T) {
	// Constant-speed trace: no stays, no chain.
	var pts []trace.Point
	for i := 0; i < 100; i++ {
		pts = append(pts, trace.Point{
			Point: geo.Destination(origin, 90, float64(i)*200),
			Time:  t0.Add(time.Duration(i) * time.Minute),
		})
	}
	_, err := Build(trace.MustNew("u", pts), DefaultConfig())
	if !errors.Is(err, ErrNoStates) {
		t.Fatalf("error = %v, want ErrNoStates", err)
	}
}

func TestDistanceProperties(t *testing.T) {
	home := origin
	work := geo.Destination(origin, 90, 3000)
	other := geo.Destination(origin, 180, 4000)
	a, err := Build(dailyTrace("a", home, work), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(dailyTrace("b", geo.Offset(home, 50, 0), geo.Offset(work, 50, 0)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(dailyTrace("c", other, geo.Destination(other, 45, 2500)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dSelf := Distance(a, a, 500)
	dNear := Distance(a, b, 500)
	dFar := Distance(a, c, 500)
	if dSelf > 1 {
		t.Errorf("self distance = %v, want ~0", dSelf)
	}
	if dNear >= dFar {
		t.Errorf("near distance %v should beat far distance %v", dNear, dFar)
	}
	// Symmetry.
	if diff := math.Abs(Distance(a, b, 500) - Distance(b, a, 500)); diff > 1e-9 {
		t.Errorf("distance not symmetric: diff %v", diff)
	}
}

func TestReidentifyRawVsSmoothed(t *testing.T) {
	// Training data: day 1 of a commuter population; test data: day 2
	// of the same simulation (same homes/works, fresh schedules).
	cfg := synth.DefaultCommuterConfig()
	cfg.Users = 10
	cfg.Sampling = 2 * time.Minute
	cfg.Days = 2
	g, err := synth.Commuters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid := cfg.Start.Add(24 * time.Hour)
	var trainTraces, testTraces []*trace.Trace
	for _, tr := range g.Dataset.Traces() {
		if day1 := tr.Crop(cfg.Start, mid); day1 != nil {
			trainTraces = append(trainTraces, day1)
		}
		if day2 := tr.Crop(mid, cfg.Start.Add(48*time.Hour)); day2 != nil {
			testTraces = append(testTraces, day2)
		}
	}
	train := trace.MustNewDataset(trainTraces)
	test := trace.MustNewDataset(testTraces)

	chains, skipped, err := BuildAll(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) > 2 {
		t.Fatalf("too many users without training chains: %v", skipped)
	}

	ident := func(u string) string { return u }
	raw, err := Reidentify(test, chains, ident, DefaultConfig(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Rate < 0.7 {
		t.Errorf("raw day-2 re-identification = %v (%d/%d), want >= 0.7",
			raw.Rate, raw.Correct, raw.Total)
	}

	// Smoothing alone does NOT defeat this adversary: the pseudo-stays it
	// extracts lie on the user's own route, which passes through her own
	// home and workplace, so nearest-chain matching still succeeds. This
	// is an honest negative result: stop hiding is not route hiding.
	smoothed, _, err := core.SmoothDataset(test, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Reidentify(smoothed, chains, ident, DefaultConfig(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Rate > raw.Rate {
		t.Errorf("smoothing should not increase MMC re-identification: %v -> %v", raw.Rate, sm.Rate)
	}

	// The full pipeline (swapping) is what breaks route-based matching:
	// published traces are composites of several users' routes.
	a, err := mobipriv.New(mobipriv.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Anonymize(test)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Reidentify(res.Dataset, chains, res.MajorityOwner, DefaultConfig(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Rate > raw.Rate/2 {
		t.Errorf("pipeline did not halve MMC re-identification: %v -> %v", raw.Rate, pipe.Rate)
	}
}

func TestReidentifyValidation(t *testing.T) {
	d := trace.MustNewDataset([]*trace.Trace{dailyTrace("u", origin, geo.Destination(origin, 90, 2000))})
	if _, err := Reidentify(d, nil, nil, DefaultConfig(), 500); err == nil {
		t.Fatal("nil truth accepted")
	}
}

func TestDistanceDefaultRadius(t *testing.T) {
	a, err := Build(dailyTrace("a", origin, geo.Destination(origin, 90, 3000)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := Distance(a, a, 0); got > 1 {
		t.Fatalf("Distance with default radius = %v", got)
	}
}
